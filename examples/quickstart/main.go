// Quickstart: create a replicated persistent object, bind to it through
// the naming and binding service, run atomic actions against it, and watch
// the St view shrink when a store node crashes at commit time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/replica"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A small distributed system: 1 naming/binding node, 2 server nodes,
	// 3 store nodes, 1 client — and one persistent counter object whose
	// state is replicated on all three stores.
	w, err := harness.New(harness.Options{Servers: 2, Stores: 3, Clients: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("object:", w.Objects[0])
	sv, _ := w.CurrentSvView(ctx, 0)
	st, _ := w.CurrentStView(ctx, 0)
	fmt.Printf("Sv = %v\nSt = %v\n\n", sv, st)

	// Bind inside an atomic action and increment the counter.
	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 1)
	act := b.Actions.BeginTop()
	bd, err := b.Bind(ctx, act, w.Objects[0])
	if err != nil {
		log.Fatal(err)
	}
	res, err := bd.Invoke(ctx, "add", []byte("41"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within action %s: counter = %s\n", act.ID(), res)
	if _, err := act.Commit(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("action committed; state checkpointed to all 3 stores")
	for _, stn := range w.Sts {
		v, _ := w.Cluster.Node(stn).Store().Read(w.Objects[0])
		fmt.Printf("  %s: value=%s seq=%d\n", stn, v.Data, v.Seq)
	}

	// Crash one store; the next commit excludes it from St (§4.2).
	fmt.Println("\ncrashing st3 ...")
	w.Cluster.Node("st3").Crash()
	r := w.RunCounterAction(ctx, b, 0, 1)
	fmt.Printf("next action committed=%v, excluded stores=%d\n", r.Committed, r.ExcludedStores)
	st, _ = w.CurrentStView(ctx, 0)
	fmt.Println("St is now:", st)

	// Recover it: catch up under an action, then Include (§4.2).
	fmt.Println("\nrecovering st3 ...")
	w.Cluster.Node("st3").Recover(nil)
	if err := core.RecoverStoreNode(ctx, w.Cluster.Node("st3"), "db", w.Objects); err != nil {
		log.Fatal(err)
	}
	st, _ = w.CurrentStView(ctx, 0)
	fmt.Println("St after recovery:", st)
	v, _ := w.Cluster.Node("st3").Store().Read(w.Objects[0])
	fmt.Printf("st3 caught up: value=%s seq=%d\n", v.Data, v.Seq)
}
