// Quickstart: create a replicated persistent object, run closure-style
// atomic actions against it through the public pkg/arjuna API, and watch
// the St view shrink when a store node crashes at commit time — then grow
// back when the node recovers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/arjuna"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// A small distributed system: 1 naming/binding node, 2 server nodes,
	// 3 store nodes, 1 client — and one persistent counter object whose
	// state is replicated on all three stores.
	sys, err := arjuna.Open(arjuna.WithServers(2), arjuna.WithStores(3))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	obj := sys.Objects()[0]
	fmt.Println("object:", obj)
	sv, _ := sys.ServerView(ctx, obj)
	st, _ := sys.StoreView(ctx, obj)
	fmt.Printf("Sv = %v\nSt = %v\n\n", sv, st)

	cl, err := sys.Client("c1")
	if err != nil {
		log.Fatal(err)
	}

	// The whole begin → bind → invoke → commit lifecycle is one closure.
	_, err = cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		res, err := tx.Object(obj).Invoke(ctx, "add", []byte("41"))
		if err != nil {
			return err
		}
		fmt.Printf("within action %s: counter = %s\n", tx.ID(), res)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("action committed; state checkpointed to all 3 stores")
	for _, stn := range sys.Stores() {
		data, seq, _ := sys.StoreState(string(stn), obj)
		fmt.Printf("  %s: value=%s seq=%d\n", stn, data, seq)
	}

	// Crash one store; the next commit excludes it from St (§4.2).
	fmt.Println("\ncrashing st3 ...")
	_ = sys.Crash("st3")
	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
		return err
	})
	fmt.Printf("next action committed=%v, excluded stores=%v\n", err == nil, rep.ExcludedStores)
	st, _ = sys.StoreView(ctx, obj)
	fmt.Println("St is now:", st)

	// Recover it: catch up under an action, then Include (§4.2).
	fmt.Println("\nrecovering st3 ...")
	if err := sys.Recover(ctx, "st3"); err != nil {
		log.Fatal(err)
	}
	st, _ = sys.StoreView(ctx, obj)
	fmt.Println("St after recovery:", st)
	data, seq, _ := sys.StoreState("st3", obj)
	fmt.Printf("st3 caught up: value=%s seq=%d\n", data, seq)
}
