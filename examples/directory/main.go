// Directory: a replicated, persistent name directory built on the public
// API — a structured (gob-encoded map) object class rather than a plain
// counter, served under active replication so that a server crash
// mid-workload is masked.
//
// Run with: go run ./examples/directory
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"log"
	"sort"
	"strings"

	"repro/pkg/arjuna"
)

// dirState is the directory's persistent state.
type dirState struct {
	Entries map[string]string
}

func encodeState(s dirState) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func decodeState(data []byte) dirState {
	var s dirState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		panic(err)
	}
	if s.Entries == nil {
		s.Entries = map[string]string{}
	}
	return s
}

// directoryClass maps names to values; "put k=v", "del k", "get k",
// "list".
func directoryClass() *arjuna.Class {
	return &arjuna.Class{
		Name: "directory",
		Init: func() []byte { return encodeState(dirState{Entries: map[string]string{}}) },
		Methods: map[string]arjuna.Method{
			"put": func(state, args []byte) ([]byte, []byte, error) {
				kv := strings.SplitN(string(args), "=", 2)
				if len(kv) != 2 {
					return nil, nil, fmt.Errorf("put wants k=v, got %q", args)
				}
				s := decodeState(state)
				s.Entries[kv[0]] = kv[1]
				return encodeState(s), []byte("ok"), nil
			},
			"del": func(state, args []byte) ([]byte, []byte, error) {
				s := decodeState(state)
				delete(s.Entries, string(args))
				return encodeState(s), []byte("ok"), nil
			},
			"get": func(state, args []byte) ([]byte, []byte, error) {
				s := decodeState(state)
				v, ok := s.Entries[string(args)]
				if !ok {
					return state, nil, fmt.Errorf("no entry %q", args)
				}
				return state, []byte(v), nil
			},
			"list": func(state, args []byte) ([]byte, []byte, error) {
				s := decodeState(state)
				keys := make([]string, 0, len(s.Entries))
				for k := range s.Entries {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				var b strings.Builder
				for _, k := range keys {
					fmt.Fprintf(&b, "%s=%s\n", k, s.Entries[k])
				}
				return state, []byte(b.String()), nil
			},
		},
		ReadOnly: map[string]bool{"get": true, "list": true},
	}
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	// Active replication across all three servers: every put is delivered
	// to the replicas in total order.
	sys, err := arjuna.Open(
		arjuna.WithServers(3),
		arjuna.WithStores(2),
		arjuna.WithClass(directoryClass()),
		arjuna.WithScheme(arjuna.SchemeStandard),
		arjuna.WithPolicy(arjuna.Active),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	dirID, err := sys.CreateObject(ctx, "directory", encodeState(dirState{Entries: map[string]string{}}))
	if err != nil {
		log.Fatal(err)
	}
	cl, err := sys.Client("c1")
	if err != nil {
		log.Fatal(err)
	}

	do := func(method, args string) string {
		var out []byte
		_, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			var err error
			out, err = tx.Object(dirID).Invoke(ctx, method, []byte(args))
			return err
		})
		if err != nil {
			fmt.Printf("  %s %q -> aborted: %v\n", method, args, err)
			return ""
		}
		return string(out)
	}

	fmt.Println("populating the directory under active replication (3 replicas)...")
	do("put", "db=db-node")
	do("put", "alpha=10.0.0.1")
	do("put", "beta=10.0.0.2")
	fmt.Println(do("list", ""))

	fmt.Println("crashing replica sv2 mid-workload (masked by active replication)...")
	_ = sys.Crash("sv2")
	do("put", "gamma=10.0.0.3")
	do("del", "beta")
	fmt.Println(do("list", ""))

	fmt.Println("lookup gamma:", do("get", "gamma"))
	fmt.Println("directory remained available throughout the replica crash")
}
