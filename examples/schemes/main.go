// Schemes: a side-by-side demonstration of the paper's three database
// access schemes (Figures 6-8). A server node crashes mid-workload; the
// output shows who pays the failure-discovery cost afterwards and how the
// Sv view evolves in each scheme.
//
// Run with: go run ./examples/schemes [-scheme all|standard|independent|nested]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/pkg/arjuna"
)

func main() {
	log.SetFlags(0)
	schemeName := flag.String("scheme", "all", "scheme to demonstrate: all | standard | independent | nested")
	flag.Parse()

	schemes := []arjuna.Scheme{arjuna.SchemeStandard, arjuna.SchemeIndependent, arjuna.SchemeNestedTopLevel}
	if *schemeName != "all" {
		s, err := arjuna.ParseScheme(*schemeName)
		if err != nil {
			log.Fatal(err)
		}
		schemes = []arjuna.Scheme{s}
	}

	ctx := context.Background()
	for _, scheme := range schemes {
		fmt.Printf("=== scheme: %s ===\n", scheme)
		if err := demo(ctx, scheme); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}

func demo(ctx context.Context, scheme arjuna.Scheme) error {
	sys, err := arjuna.Open(
		arjuna.WithServers(2),
		arjuna.WithStores(2),
		arjuna.WithClients(3),
		arjuna.WithScheme(scheme),
	)
	if err != nil {
		return err
	}
	defer sys.Close()
	obj := sys.Objects()[0]
	sv, _ := sys.ServerView(ctx, obj)
	fmt.Println("initial Sv:", sv)

	clients := make([]*arjuna.Client, 0, 3)
	for _, c := range sys.ClientNodes() {
		cl, err := sys.Client(string(c))
		if err != nil {
			return err
		}
		clients = append(clients, cl)
	}
	addOne := func(cl *arjuna.Client) *arjuna.CommitReport {
		rep, _ := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
			return err
		})
		return rep
	}

	// Everyone runs one action; then sv1 crashes; then each client runs
	// two more.
	for _, cl := range clients {
		rep := addOne(cl)
		fmt.Printf("  %s pre-crash action: committed=%v probes=%d\n", cl.Name(), rep.Committed, len(rep.BrokenServers))
	}

	fmt.Println("  -- sv1 crashes --")
	_ = sys.Crash("sv1")

	for round := 1; round <= 2; round++ {
		for _, cl := range clients {
			rep := addOne(cl)
			fmt.Printf("  %s post-crash action %d: committed=%v probes=%d\n", cl.Name(), round, rep.Committed, len(rep.BrokenServers))
		}
	}
	sv, _ = sys.ServerView(ctx, obj)
	fmt.Println("final Sv:", sv)
	switch scheme {
	case arjuna.SchemeStandard:
		fmt.Println("  (standard: Sv stays stale — every post-crash action probed sv1 'the hard way')")
	default:
		fmt.Println("  (enhanced: the first post-crash action removed sv1 — later actions probe nothing)")
	}
	return nil
}
