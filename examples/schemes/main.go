// Schemes: a side-by-side demonstration of the paper's three database
// access schemes (Figures 6-8). A server node crashes mid-workload; the
// output shows who pays the failure-discovery cost afterwards and how the
// Sv view evolves in each scheme.
//
// Run with: go run ./examples/schemes
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/replica"
)

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	for _, scheme := range []core.Scheme{core.SchemeStandard, core.SchemeIndependent, core.SchemeNestedTopLevel} {
		fmt.Printf("=== scheme: %s ===\n", scheme)
		w, err := harness.New(harness.Options{Servers: 2, Stores: 2, Clients: 3})
		if err != nil {
			log.Fatal(err)
		}
		sv, _ := w.CurrentSvView(ctx, 0)
		fmt.Println("initial Sv:", sv)

		// Everyone runs one action; then sv1 crashes; then each client
		// runs two more.
		for _, c := range w.Clients {
			b := w.Binder(c, scheme, replica.SingleCopyPassive, 1)
			r := w.RunCounterAction(ctx, b, 0, 1)
			fmt.Printf("  %s pre-crash action: committed=%v probes=%d\n", c, r.Committed, r.Probes)
		}

		fmt.Println("  -- sv1 crashes --")
		w.Cluster.Node("sv1").Crash()

		for round := 1; round <= 2; round++ {
			for _, c := range w.Clients {
				b := w.Binder(c, scheme, replica.SingleCopyPassive, 1)
				r := w.RunCounterAction(ctx, b, 0, 1)
				fmt.Printf("  %s post-crash action %d: committed=%v probes=%d\n", c, round, r.Committed, r.Probes)
			}
		}
		sv, _ = w.CurrentSvView(ctx, 0)
		fmt.Println("final Sv:", sv)
		switch scheme {
		case core.SchemeStandard:
			fmt.Println("  (standard: Sv stays stale — every post-crash action probed sv1 'the hard way')")
		default:
			fmt.Println("  (enhanced: the first post-crash action removed sv1 — later actions probe nothing)")
		}
		fmt.Println()
	}
}
