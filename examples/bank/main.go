// Bank: replicated persistent accounts with crash-tolerant transfers.
//
// Each account is a persistent replicated object; a transfer is one atomic
// action binding BOTH accounts, so the two debits/credits commit or abort
// together (multi-object two-phase commit). Mid-run we crash a store node
// and a server node and show that the money-conservation invariant holds
// throughout.
//
// Run with: go run ./examples/bank
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strconv"

	"repro/internal/uid"
	"repro/pkg/arjuna"
)

// accountClass is a persistent bank account holding a decimal balance.
func accountClass() *arjuna.Class {
	parse := func(state []byte) int64 {
		n, _ := strconv.ParseInt(string(state), 10, 64)
		return n
	}
	return &arjuna.Class{
		Name: "account",
		Init: func() []byte { return []byte("0") },
		Methods: map[string]arjuna.Method{
			"deposit": func(state, args []byte) ([]byte, []byte, error) {
				amount, err := strconv.ParseInt(string(args), 10, 64)
				if err != nil || amount < 0 {
					return nil, nil, fmt.Errorf("bad amount %q", args)
				}
				out := []byte(strconv.FormatInt(parse(state)+amount, 10))
				return out, out, nil
			},
			"withdraw": func(state, args []byte) ([]byte, []byte, error) {
				amount, err := strconv.ParseInt(string(args), 10, 64)
				if err != nil || amount < 0 {
					return nil, nil, fmt.Errorf("bad amount %q", args)
				}
				bal := parse(state)
				if bal < amount {
					return nil, nil, errors.New("insufficient funds")
				}
				out := []byte(strconv.FormatInt(bal-amount, 10))
				return out, out, nil
			},
			"balance": func(state, args []byte) ([]byte, []byte, error) {
				return state, state, nil
			},
		},
		ReadOnly: map[string]bool{"balance": true},
	}
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	sys, err := arjuna.Open(
		arjuna.WithServers(2),
		arjuna.WithStores(2),
		arjuna.WithClass(accountClass()),
		arjuna.WithScheme(arjuna.SchemeIndependent),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Create two accounts with initial balances.
	alice, err := sys.CreateObject(ctx, "account", []byte("1000"))
	if err != nil {
		log.Fatal(err)
	}
	bob, err := sys.CreateObject(ctx, "account", []byte("500"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("created accounts alice (1000) and bob (500); invariant: total = 1500")

	cl, err := sys.Client("c1")
	if err != nil {
		log.Fatal(err)
	}

	// A transfer binds both accounts in ONE atomic action: either both
	// the withdraw and the deposit commit, or neither does.
	transfer := func(from, to uid.UID, amount int64) error {
		amt := []byte(strconv.FormatInt(amount, 10))
		_, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			if _, err := tx.Object(from).Invoke(ctx, "withdraw", amt); err != nil {
				return err
			}
			_, err := tx.Object(to).Invoke(ctx, "deposit", amt)
			return err
		})
		return err
	}

	balanceAt := func(id uid.UID) int64 {
		data, _, err := sys.CommittedState(id)
		if err != nil {
			log.Fatal(err)
		}
		n, _ := strconv.ParseInt(string(data), 10, 64)
		return n
	}
	audit := func(when string) {
		a, bb := balanceAt(alice), balanceAt(bob)
		fmt.Printf("%-34s alice=%-5d bob=%-5d total=%d\n", when, a, bb, a+bb)
		if a+bb != 1500 {
			log.Fatalf("INVARIANT VIOLATED: total = %d", a+bb)
		}
	}

	audit("initially:")
	if err := transfer(alice, bob, 200); err != nil {
		log.Fatal(err)
	}
	audit("after transfer alice->bob 200:")

	// Insufficient funds aborts the whole action — no partial debit.
	if err := transfer(bob, alice, 10_000); err != nil {
		fmt.Println("transfer bob->alice 10000 aborted:", errors.Is(err, arjuna.ErrAborted))
	}
	audit("after aborted transfer:")

	// A store crashes: transfers keep committing on the surviving store,
	// the dead one is excluded from St.
	_ = sys.Crash("st2")
	if err := transfer(bob, alice, 300); err != nil {
		log.Fatal(err)
	}
	audit("after st2 crash + transfer 300:")

	// A server crashes mid-fleet: the enhanced scheme repairs Sv and the
	// next transfer proceeds on the other server.
	_ = sys.Crash("sv1")
	if err := transfer(alice, bob, 50); err != nil {
		log.Fatal(err)
	}
	audit("after sv1 crash + transfer 50:")

	fmt.Println("\nall audits passed — failure atomicity and permanence held throughout")
}
