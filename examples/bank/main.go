// Bank: replicated persistent accounts with crash-tolerant transfers.
//
// Each account is a persistent replicated object; a transfer is one atomic
// action binding BOTH accounts, so the two debits/credits commit or abort
// together (multi-object two-phase commit). Mid-run we crash a store node
// and a server node and show that the money-conservation invariant holds
// throughout.
//
// Run with: go run ./examples/bank
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"strconv"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/object"
	"repro/internal/replica"
	"repro/internal/uid"
)

// accountClass is a persistent bank account holding a decimal balance.
func accountClass() *object.Class {
	parse := func(state []byte) int64 {
		n, _ := strconv.ParseInt(string(state), 10, 64)
		return n
	}
	return &object.Class{
		Name: "account",
		Init: func() []byte { return []byte("0") },
		Methods: map[string]object.Method{
			"deposit": func(state, args []byte) ([]byte, []byte, error) {
				amount, err := strconv.ParseInt(string(args), 10, 64)
				if err != nil || amount < 0 {
					return nil, nil, fmt.Errorf("bad amount %q", args)
				}
				out := []byte(strconv.FormatInt(parse(state)+amount, 10))
				return out, out, nil
			},
			"withdraw": func(state, args []byte) ([]byte, []byte, error) {
				amount, err := strconv.ParseInt(string(args), 10, 64)
				if err != nil || amount < 0 {
					return nil, nil, fmt.Errorf("bad amount %q", args)
				}
				bal := parse(state)
				if bal < amount {
					return nil, nil, errors.New("insufficient funds")
				}
				out := []byte(strconv.FormatInt(bal-amount, 10))
				return out, out, nil
			},
			"balance": func(state, args []byte) ([]byte, []byte, error) {
				return state, state, nil
			},
		},
		ReadOnly: map[string]bool{"balance": true},
	}
}

func main() {
	log.SetFlags(0)
	ctx := context.Background()

	reg := object.NewRegistry()
	reg.Register(accountClass())
	w, err := harness.New(harness.Options{
		Servers: 2, Stores: 2, Clients: 1, Registry: reg,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Create two accounts with initial balances.
	dbCli := core.Client{RPC: w.Cluster.Node("c1").Client(), DB: "db"}
	gen := uid.NewGenerator("bank", 1)
	alice, bob := gen.New(), gen.New()
	for _, acc := range []struct {
		id      uid.UID
		initial string
	}{{alice, "1000"}, {bob, "500"}} {
		if err := core.CreateObject(ctx, dbCli, w.Mgrs["c1"], acc.id, "account", []byte(acc.initial), w.Svs, w.Sts); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("created accounts alice (1000) and bob (500); invariant: total = 1500")

	b := w.Binder("c1", core.SchemeIndependent, replica.SingleCopyPassive, 1)

	transfer := func(from, to uid.UID, amount int64) error {
		act := b.Actions.BeginTop()
		bdFrom, err := b.Bind(ctx, act, from)
		if err != nil {
			_ = act.Abort(ctx)
			return err
		}
		bdTo, err := b.Bind(ctx, act, to)
		if err != nil {
			_ = act.Abort(ctx)
			return err
		}
		amt := []byte(strconv.FormatInt(amount, 10))
		if _, err := bdFrom.Invoke(ctx, "withdraw", amt); err != nil {
			_ = act.Abort(ctx)
			return err
		}
		if _, err := bdTo.Invoke(ctx, "deposit", amt); err != nil {
			_ = act.Abort(ctx)
			return err
		}
		_, err = act.Commit(ctx)
		return err
	}

	balanceAt := func(id uid.UID) int64 {
		// Read straight from a store replica (committed state).
		for _, st := range w.Sts {
			n := w.Cluster.Node(st)
			if !n.Up() {
				continue
			}
			if v, err := n.Store().Read(id); err == nil {
				n, _ := strconv.ParseInt(string(v.Data), 10, 64)
				return n
			}
		}
		log.Fatal("no store holds the account")
		return 0
	}
	audit := func(when string) {
		a, bb := balanceAt(alice), balanceAt(bob)
		fmt.Printf("%-34s alice=%-5d bob=%-5d total=%d\n", when, a, bb, a+bb)
		if a+bb != 1500 {
			log.Fatalf("INVARIANT VIOLATED: total = %d", a+bb)
		}
	}

	audit("initially:")
	if err := transfer(alice, bob, 200); err != nil {
		log.Fatal(err)
	}
	audit("after transfer alice->bob 200:")

	// Insufficient funds aborts the whole action — no partial debit.
	if err := transfer(bob, alice, 10_000); err != nil {
		fmt.Println("transfer bob->alice 10000 aborted:", errors.Unwrap(err) != nil || true)
	}
	audit("after aborted transfer:")

	// A store crashes: transfers keep committing on the surviving store,
	// the dead one is excluded from St.
	w.Cluster.Node("st2").Crash()
	if err := transfer(bob, alice, 300); err != nil {
		log.Fatal(err)
	}
	audit("after st2 crash + transfer 300:")

	// A server crashes mid-fleet: the enhanced scheme repairs Sv and the
	// next transfer proceeds on the other server.
	w.Cluster.Node("sv1").Crash()
	if err := transfer(alice, bob, 50); err != nil {
		log.Fatal(err)
	}
	audit("after sv1 crash + transfer 50:")

	fmt.Println("\nall audits passed — failure atomicity and permanence held throughout")
}
