package arjuna

import (
	"errors"

	"repro/internal/core"
	"repro/internal/lockmgr"
	"repro/internal/object"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/transport"
)

// The package's typed error taxonomy. Every error returned by System,
// Client, Txn and Object is classified against these sentinels, so callers
// branch with errors.Is rather than matching message strings or rpc codes:
//
//	_, err := cl.Atomic(ctx, body)
//	switch {
//	case errors.Is(err, arjuna.ErrLockRefused):   // contention — retry later
//	case errors.Is(err, arjuna.ErrUnknownObject): // no such UID registered
//	case errors.Is(err, arjuna.ErrNoServers):     // no functioning server
//	}
//
// The underlying cause (e.g. the *rpc.AppError carrying the wire-level
// code) stays on the chain and remains reachable via errors.As.
var (
	// ErrAborted reports that an atomic action ended by aborting: the
	// closure returned an error, a bind or invoke failed, or two-phase
	// commit could not prepare. All effects of the action were undone.
	ErrAborted = errors.New("arjuna: action aborted")
	// ErrLockRefused reports a refused database lock acquire or promotion
	// (the paper's §4.2.1 conflict); the action aborted and may be retried.
	ErrLockRefused = errors.New("arjuna: lock refused")
	// ErrOverloaded reports overload backpressure: an object's bounded
	// lock wait queue was full, or the wait deadline passed before the
	// lock was granted. The action aborted; Atomic treats it as retryable
	// with jittered exponential backoff, shedding load instead of letting
	// hot-key convoys grow without bound.
	ErrOverloaded = errors.New("arjuna: overloaded")
	// ErrUnknownObject reports an operation on a UID the group view
	// database has no entry for.
	ErrUnknownObject = errors.New("arjuna: unknown object")
	// ErrNoServers reports that no functioning server could be bound or
	// remained bound (§3.2) — the action must abort.
	ErrNoServers = errors.New("arjuna: no functioning servers")
	// ErrNotQuiescent reports an Insert attempted while the object's use
	// lists are non-empty (§4.1.3).
	ErrNotQuiescent = errors.New("arjuna: object not quiescent")
	// ErrUnreachable reports a node that could not be contacted at the
	// transport level (crashed, unregistered, or partitioned).
	ErrUnreachable = errors.New("arjuna: node unreachable")
	// ErrPeerUnavailable reports a call refused locally because the peer's
	// circuit breaker is open: recent calls to it failed, so the client
	// skipped the network round instead of burning another timeout. It is
	// a sub-case of ErrUnreachable (errors.Is matches both) with its own
	// identity so callers — and Atomic's retry policy — can tell "known
	// sick, degraded mode" from a fresh transport failure. The peer is
	// re-probed after a cooldown; recovery and partition heal close the
	// breaker immediately.
	ErrPeerUnavailable = errors.New("arjuna: peer unavailable (circuit breaker open)")
	// ErrUnknownMethod reports an invocation of a method the object's
	// class does not define.
	ErrUnknownMethod = errors.New("arjuna: unknown method")
	// ErrUnknownNode reports a node name the deployment does not contain.
	ErrUnknownNode = errors.New("arjuna: unknown node")
	// ErrNotSharded reports a sharding-only operation (e.g. Rebalance) on
	// a deployment opened without WithShards.
	ErrNotSharded = errors.New("arjuna: deployment is not sharded")
	// ErrLeaseStale reports that a transaction mixing lease-served reads
	// with server-side work found, at commit time, that a leased snapshot
	// it read had been invalidated or had expired. The action aborted;
	// Atomic retries it, and the retry re-reads through the servers (the
	// stale cache entry is gone by construction).
	ErrLeaseStale = errors.New("arjuna: leased read went stale before commit")
)

// taggedError glues a sentinel onto an underlying cause so that both
// errors.Is(err, sentinel) and errors.As against the cause's chain work.
type taggedError struct {
	tag   error
	cause error
}

func (e *taggedError) Error() string   { return e.tag.Error() + ": " + e.cause.Error() }
func (e *taggedError) Unwrap() []error { return []error{e.tag, e.cause} }

// tag attaches sentinel t to cause unless it is already on the chain.
func tag(t, cause error) error {
	if cause == nil {
		return t
	}
	if errors.Is(cause, t) {
		return cause
	}
	return &taggedError{tag: t, cause: cause}
}

// MapError classifies an error from the underlying protocol stack into the
// package's taxonomy, attaching the matching sentinel while preserving the
// original chain. Errors that already carry a sentinel, and errors that
// match no category, are returned unchanged.
func MapError(err error) error {
	if err == nil {
		return nil
	}
	// A breaker fast-fail can sit below any of the aggregate categories
	// (e.g. ErrNoServers when every server's breaker is open), so the
	// sub-case sentinel is attached first, whatever else classifies.
	if errors.Is(err, rpc.ErrPeerUnavailable) {
		err = tag(ErrPeerUnavailable, err)
	}
	switch {
	case errors.Is(err, replica.ErrNoServers):
		return tag(ErrNoServers, err)
	case errors.Is(err, transport.ErrOverloaded):
		// Mux per-connection backpressure joins the lock-queue overloads
		// in the retry-with-backoff class.
		return tag(ErrOverloaded, err)
	case errors.Is(err, transport.ErrUnreachable):
		// Breaker fast-fails land here too (a peerDownError unwraps to
		// transport.ErrUnreachable, so the exclusion paths below the
		// facade fire on them unchanged).
		return tag(ErrUnreachable, err)
	case errors.Is(err, lockmgr.ErrOverloaded):
		return tag(ErrOverloaded, err)
	case errors.Is(err, lockmgr.ErrRefused):
		return tag(ErrLockRefused, err)
	}
	switch rpc.CodeOf(err) {
	case object.CodeOverloaded:
		return tag(ErrOverloaded, err)
	case core.CodeLockRefused, rpc.CodeRefused:
		return tag(ErrLockRefused, err)
	case core.CodeUnknownObject, rpc.CodeNotFound:
		return tag(ErrUnknownObject, err)
	case core.CodeNotQuiescent:
		return tag(ErrNotQuiescent, err)
	case rpc.CodeNoSuchMethod:
		return tag(ErrUnknownMethod, err)
	}
	return err
}
