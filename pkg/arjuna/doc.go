// Package arjuna is the public front door to the naming-and-binding
// service for persistent replicated objects reproduced from Little, McCue
// & Shrivastava, "Maintaining Information about Persistent Replicated
// Objects in a Distributed System" (ICDCS '93).
//
// The package assembles a deployment — server nodes, store nodes, client
// nodes, a group view database, and a transport (in-memory simulator or
// real TCP sockets) — behind functional options, and exposes the paper's
// machinery through a context-first, closure-style API:
//
//	sys, err := arjuna.Open(
//		arjuna.WithServers(2),
//		arjuna.WithStores(3),
//	)
//	defer sys.Close()
//
//	cl, err := sys.Client("c1")
//	obj := sys.Objects()[0]
//
//	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
//		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("41"))
//		return err
//	})
//
// Atomic runs the whole begin → bind → invoke → commit-or-abort lifecycle
// of one top-level atomic action: the closure's work commits if it returns
// nil and aborts (with all effects undone) if it returns an error, and
// transient lock refusals (§4.2.1 of the paper) are retried with bounded
// backoff. Failure anatomy — which server bindings broke, which store
// nodes were excluded from the St view at commit — is reported through the
// returned CommitReport, and failures are classified by the package's
// typed error taxonomy (ErrLockRefused, ErrUnknownObject, ErrNoServers,
// ErrAborted, …) so callers use errors.Is / errors.As instead of string
// matching.
//
// # Read-only commit semantics
//
// Commit processing runs a voting two-phase commit with the §4.1.2 read
// optimisation: a participant that only read votes read-only at prepare
// time, releases its locks and use counts right there, and takes no
// part in phase two. An action all of whose participants voted
// read-only therefore commits with zero phase-two round trips and no
// outcome-log write (presumed abort makes the record redundant), and an
// action with a single participant writing through at most one store
// commits in one combined prepare+commit round. The CommitReport's vote
// anatomy shows which of these fired: ReadOnlyVoters / CommitVoters
// count the phase-one votes, OnePhase marks the combined round, and
// OutcomeLogged reports whether a commit record was written at all.
// Pair ClientReadOnly (bind to any convenient server, no use-list
// updates) with read-only methods to keep the entire action — binding,
// invocation and commitment — on shared read locks and single rounds.
//
// # Cached read leases
//
// WithReadLeases(ttl) takes the read-only fast path one step further:
// it removes the round trips entirely. Object servers attach a leased
// snapshot of the object — state, version, TTL — to read-path
// invocations; every client node keeps the snapshots in a shared lease
// cache (with a small per-client L1 on top); and an Atomic whose body
// performs only read-only methods on lease-valid objects completes with
// ZERO RPCs and zero lock-manager traffic. The guarantee is the usual
// lease one: a snapshot is served only while its lease is valid, and no
// commit that supersedes a leased version is acknowledged to its writer
// until every lease on the old version is invalidated — delivered over
// the same ordered multicast that carries group state — or has provably
// expired. A read served from the cache is therefore never staler than
// the last acknowledged commit; what is given up is only the exclusion
// a server-side read lock would add, which a read-only action does not
// need. An Atomic that MIXES leased reads with server-side work gets
// that exclusion back at commit time: each leased read is revalidated
// through its server under the action's read lock (one extra RPC per
// leased object), and a version mismatch aborts with ErrLeaseStale and
// retries through the servers — so mixed transactions serialize exactly
// as if every read had gone to the servers, and the zero-RPC fast path
// is reserved for the all-read case that needs no locks at all.
// CommitReport.LeaseReads counts the invocations an action served
// from cache, and System.LeaseStats exposes the deployment-wide per-tier
// hit rates and grant/invalidation/waitout counters.
//
// Expiry and invalidation are the two ways a cached lease dies, and
// they are deliberately asymmetric. Invalidation is the fast, common
// path: a commit that advances a leased object's version multicasts an
// invalidation to the holders it knows and proceeds as soon as delivery
// is confirmed. Expiry is the backstop: when a holder cannot be reached
// (crashed, partitioned), the committing server waits out the lease
// clock — bounded by the grants it actually issued, at worst 2×TTL —
// before the commit is acknowledged, so an unreachable holder delays
// that one writer but never breaks the guarantee. Client clocks are
// never trusted: a client computes its cached expiry from an instant
// taken BEFORE its request was sent, so the cache's view of a lease is
// always at least as conservative as the granting server's.
//
// The costs, so they are not discovered in production: (1) the first
// version-advancing commit after an object-server instance activates
// pays a one-time 2×TTL wait — a freshly activated server cannot yet
// know which leases a predecessor granted, so it assumes the worst;
// later commits invalidate eagerly and pay nothing unless a holder is
// unreachable. (2) A grant against a long-idle instance triggers a
// store probe (a majority of stores must confirm the server still holds
// the latest committed version) before the server will vouch for its
// snapshot; the probe costs one store round trip on that read and
// refuses the grant — falling back to plain server reads — if the
// stores have moved on. (3) When a granting view-primary fails during
// phase two of a commit, the committing CLIENT waits out 2×TTL before
// Atomic returns: the commit is durable, but nobody is left to confirm
// the fence, so the acknowledgement is delayed until every lease the
// primary could have granted has expired. (4) Rebalance fences the
// source shard's leases before the move commits; the one residual race
// is a source server that is partitioned away at move time — its
// grants cannot be fenced or waited out by the target, so a holder may
// serve the pre-move state for up to its remaining TTL. Choose the TTL
// accordingly: long enough to amortise a read-heavy working set,
// short enough that a 2×TTL waitout is an acceptable worst-case commit
// delay.
//
// Leases apply under single-copy passive replication (the policy where
// a single view-primary serves reads and can therefore vouch for, and
// later invalidate, every grant); other policies ignore the option.
//
// # Commutative operations and hot-key batching
//
// A class may declare methods Commutative: applying any set of them in
// any order yields the same final state (a counter's "add" is the
// canonical case). Every method marked commutative must commute with
// every other marked method of its class, not just with itself.
// Client.Apply exploits the declaration: it runs a single-operation
// action whose invocation is declared the action's entire write set, and
// when the object's write lock is already held, the server folds the
// operation into the current holder's commit round instead of queueing
// for the lock (flat combining). N contending writers then cost one lock
// wait and one two-phase commit instead of N of each — the folded
// operations are applied after the leader's pre-write snapshot, so the
// leader's abort undoes the whole batch and atomicity is preserved. The
// CommitReport's Batched/BatchSize fields report when a write rode
// another action's commit; semantically the result is identical to an
// un-batched Atomic, only cheaper.
//
// # Overload backpressure
//
// WithLockQueue(depth, wait) bounds every object server's per-object
// lock wait queues: at most depth waiters queue on one lock, none longer
// than wait. Grants are strictly FIFO (no barging), so the bound also
// bounds any waiter's delay. Over-limit acquires fail fast with
// ErrOverloaded; Atomic and Apply treat that — like ErrLockRefused — as
// retryable, sleeping a capped, jittered exponential backoff between
// attempts so refused clients spread out instead of re-colliding. The
// CommitReport's Overloads and QueueWait fields expose the pressure a
// call experienced. Unbounded queues (the default) never refuse, at the
// cost of unbounded tail latency on hot objects.
//
// Two more valves complete the stack. ClientFastBind applies the paper's
// §4.2.1 type-specific locking to the bind action itself: the group view
// is read under a shared lock and the use-count bump takes a commutative
// Adjust lock that other binders and readers share, so binds to a hot
// object stop convoying behind one another's exclusive bind window (the
// exclusive repair pass still runs whenever a bind finds failed servers).
// WithAdmission(n) is the outermost valve: it caps how many top-level
// Atomic actions are in flight across the whole deployment, parking
// surplus callers cheaply at the gate — before any bind, lock or commit
// work — instead of letting offered concurrency beyond the deployment's
// efficient operating point thrash the machinery into negative scaling.
//
// The three database access schemes of §4 (standard, independent
// top-level, nested top-level) and the three replication policies of §2.3
// (single-copy passive, active, coordinator-cohort) are selected per
// system or per client via options; Crash/Recover drive the §4.1.2/§4.2
// failure and recovery protocols for whole nodes.
//
// # Sharding
//
// WithShards(n) splits the deployment into n independent groups, each
// with its own group view database and its own server and store nodes,
// under a placement service that maps every object UID to a shard:
//
//	sys, err := arjuna.Open(
//		arjuna.WithShards(3),
//		arjuna.WithServers(2), // per shard
//		arjuna.WithStores(2),  // per shard
//	)
//
// Placement is consistent hashing over the shard set plus a directory of
// explicit overrides — the paper's §5 observation (naming data needs no
// atomic discipline because binding failures are detected and retried)
// applied one level up, to the object→group map itself. Clients resolve
// and cache placements transparently inside Atomic: an action touching
// objects of one shard runs exactly as in an unsharded deployment,
// keeping the one-phase and all-read-only fast paths, while an action
// spanning shards enlists participants from several groups under one
// coordinator and commits through the same voting two-phase protocol.
//
// System.Rebalance(ctx, id, shard) migrates an object between shards
// using the §4.2 catch-up machinery (deregister once quiescent, install
// the latest committed state at the target group, re-register, flip the
// placement override). Each override bumps the object's placement epoch;
// a client that cached the stale shard discovers the move on its next
// bind (unknown-object from the old group), re-resolves, and retries
// against the new shard — it can never commit against the old one,
// because the old group no longer registers the object.
//
// # Failure resilience
//
// Every node carries a per-peer circuit breaker in its RPC client
// (enabled by default; WithoutBreakers disables, WithBreakerConfig
// tunes). A breaker trips after Threshold transport-level failures in a
// sliding Window of calls to one peer; while open, further calls to
// that peer fail locally and immediately with ErrPeerUnavailable
// instead of burning another transport timeout — so a sick node costs
// the deployment one timeout per caller, not one per call. A fast-fail
// still satisfies errors.Is(err, ErrUnreachable), so the §4.1.2/§4.2
// exclusion-and-repair machinery fires on it exactly as on a real
// transport failure; Atomic treats it as retryable with a longer
// backoff class than lock conflicts (the peer needs recovery, not a
// few milliseconds of spacing), and the CommitReport's BreakerSkipped
// field names the peers an attempt skipped, marking the action as
// having run in degraded mode. After a Cooldown the breaker goes
// half-open and admits exactly one probe; a successful probe — or the
// peer's Recover, or a healed partition — closes it.
//
// Health is observable and actively monitored. Every node serves a
// health RPC (incarnation epoch, stable-store backlog, its own breaker
// states) surfaced through System.Health and System.BreakerStats;
// WithHealthDetector(interval) runs a background heartbeat loop that
// pings every node, reports persistent missers via System.Suspected,
// and — when a suspected peer answers again — resets the whole
// deployment's breakers toward it so recovery is noticed at heartbeat
// granularity rather than per-caller probe cadence.
//
// In sharded deployments the placement service itself is replicated
// (WithPlacementReplicas, default 3): writes go through the primary
// replica and are pushed synchronously to the others with per-object
// epoch fencing, so a replayed or reordered update can never regress
// the directory; clients read from any replica and fail over — fast,
// when a breaker is already open — so any single replica death leaves
// bind and re-bind live. A replica that missed updates while crashed
// pulls the full directory from the primary on recovery. Stale reads
// are safe end to end: a client acting on an outdated mapping gets
// unknown-object from the wrong group, re-resolves and retries, exactly
// as with a stale cached placement.
//
// # Stable storage
//
// By default every node's "stable" store is in memory: it survives the
// simulated Crash/Recover cycle but dies with the process. WithDataDir
// turns it into real stable storage:
//
//	sys, err := arjuna.Open(
//		arjuna.WithStores(3),
//		arjuna.WithDataDir("/var/lib/arjuna"),
//	)
//
// Each node then owns a directory under the data dir holding an
// append-only, CRC-checked WAL plus a periodic snapshot (see
// internal/storage). Committed object versions, prepared 2PC intentions
// and the coordinators' commit records are fsynced at their protocol
// commit points — group commit coalesces concurrent fsyncs by default
// (WithDiskOptions tunes this). Crash drops the node's entire process
// state; Recover replays the directory, truncating any torn WAL tail,
// and resolves replayed in-doubt intentions against the coordinators'
// logs before rejoining the St views. Opening a new deployment on an
// existing data dir resumes from the stored state.
package arjuna
