package arjuna

import (
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
	"time"

	"repro/internal/action"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/uid"
)

// System is one assembled deployment: a group view database node, server
// nodes, store nodes, and client nodes on a common transport. It is the
// only constructor of the underlying harness/binder machinery — all
// application code goes through System and the Clients it hands out.
type System struct {
	cfg config
	w   *harness.World

	// viewMgr mints the short-lived top-level actions behind the view
	// and recovery helpers, separate from any client's actions.
	viewMgr *action.Manager
	// janitors sweep use-lists: one per group view database.
	janitors []*core.Janitor
	gen      *uid.Generator
	// admit, when non-nil, is the WithAdmission gate: a slot must be held
	// for the duration of every top-level Atomic.
	admit chan struct{}
	// detector, when non-nil, is the WithHealthDetector heartbeat loop.
	detector *sim.Detector

	mu      sync.Mutex
	created []uid.UID
	closed  bool
}

// Open assembles a deployment from functional options and returns it
// ready for use: nodes up, classes registered, and the configured number
// of counter objects created and registered in the group view database.
func Open(opts ...Option) (*System, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	var reg *object.Registry
	if len(cfg.classes) > 0 {
		reg = object.NewRegistry()
		reg.Register(harness.CounterClass())
		for _, cl := range cfg.classes {
			reg.Register(cl)
		}
	}
	w, err := harness.New(harness.Options{
		Servers:    cfg.servers,
		Stores:     cfg.stores,
		Clients:    cfg.clients,
		Objects:    cfg.objects,
		Shards:     cfg.shards,
		Net:        cfg.net,
		Network:    cfg.network,
		Registry:   reg,
		DataDir:    cfg.dataDir,
		Disk:       cfg.disk,
		LockLimits: cfg.lockLimits,

		NoBreakers:        cfg.noBreakers,
		Breakers:          cfg.breakers,
		PlacementReplicas: cfg.placementReplicas,
		LeaseTTL:          cfg.leaseTTL,
	})
	if err != nil {
		return nil, fmt.Errorf("arjuna: open: %w", err)
	}
	janitors := make([]*core.Janitor, len(w.Groups))
	for i := range w.Groups {
		janitors[i] = core.NewJanitor(w.Groups[i].DB)
	}
	s := &System{
		cfg:      cfg,
		w:        w,
		viewMgr:  action.NewManager("arjuna-sys", nil),
		janitors: janitors,
		gen:      uid.NewGenerator("app", 1),
	}
	if cfg.admission > 0 {
		s.admit = make(chan struct{}, cfg.admission)
	}
	if cfg.healthInterval > 0 && len(w.Clients) > 0 {
		s.detector = sim.NewDetector(w.Cluster, w.Cluster.Node(w.Clients[0]), cfg.healthInterval)
		s.detector.Start()
	}
	return s, nil
}

// Close tears the deployment down: every node's stable storage is shut
// down (flushing and releasing disk-backed directories, so a new Open on
// the same data dir can take their locks) and the transport is closed
// when the deployment runs over a closeable one (e.g. TCP); the
// in-memory network needs no teardown. Close is idempotent.
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.detector != nil {
		s.detector.Stop()
	}
	var err error
	for _, n := range s.w.Cluster.Nodes() {
		if serr := n.Store().Shutdown(); err == nil {
			err = serr
		}
	}
	net := s.w.Cluster.Net()
	if f, ok := net.(*transport.Faulty); ok {
		net = f.Inner() // the wrapper owns no sockets; the inner transport does
	}
	switch c := net.(type) {
	case interface{ Close() error }:
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	case interface{ Close() }:
		c.Close()
	}
	return err
}

// Client returns a client bound to the named client node (c1..cN), with
// the deployment's default scheme, policy and degree unless overridden by
// options.
func (s *System) Client(name string, opts ...ClientOption) (*Client, error) {
	addr := transport.Addr(name)
	if s.w.Mgrs[addr] == nil {
		return nil, fmt.Errorf("arjuna: client node %q: %w", name, ErrUnknownNode)
	}
	cc := clientConfig{
		scheme:  s.cfg.scheme,
		policy:  s.cfg.policy,
		degree:  s.cfg.degree,
		retries: defaultRetries,
		backoff: defaultBackoff,
	}
	for _, o := range opts {
		o(&cc)
	}
	if cc.degree < 0 {
		if cc.policy == SingleCopyPassive {
			cc.degree = 1
		} else {
			cc.degree = 0 // all servers in the view
		}
	}
	var binder core.ActionBinder
	if s.w.Sharded() {
		sb := s.w.ShardBinder(addr, cc.scheme, cc.policy, cc.degree)
		sb.ReadOnly = cc.readOnly
		sb.FastBind = cc.fastBind
		binder = sb
	} else {
		b := s.w.Binder(addr, cc.scheme, cc.policy, cc.degree)
		b.ReadOnly = cc.readOnly
		b.FastBind = cc.fastBind
		binder = b
	}
	cl := &Client{sys: s, name: addr, binder: binder, cfg: cc}
	if _, ok := s.w.LeaseCaches[addr]; ok && cc.policy == SingleCopyPassive {
		// The client's L1 over its node's shared L2 lease cache. Leases
		// are granted by the view-primary under single-copy passive
		// replication only; other policies read through the replicas.
		cl.leases = s.w.LeaseLocal(addr, 0)
	}
	return cl, nil
}

// LeaseStats aggregates the read-lease machinery's counters since Open.
// All fields are zero unless the deployment was opened WithReadLeases.
type LeaseStats struct {
	// L1Hits/L1Misses and L2Hits/L2Misses are the tiered lease cache's
	// per-tier lookup outcomes, summed across all client nodes.
	L1Hits, L1Misses int64
	L2Hits, L2Misses int64
	// Grants counts leases granted by object servers; GrantsRefused
	// counts grant attempts refused because the server could not confirm
	// it holds the object's latest committed version.
	Grants, GrantsRefused int64
	// Invalidations counts invalidation multicasts delivered to holders
	// by committing servers; Invalidated counts cache entries they
	// killed. Waitouts counts commits that could not confirm delivery
	// and waited out the lease clock instead.
	Invalidations, Invalidated, Waitouts int64
}

// LeaseStats reports the read-lease counters (cache hit rates, grants,
// invalidations, waitouts) accumulated by the whole deployment.
func (s *System) LeaseStats() LeaseStats {
	get := func(name string) int64 {
		if c, ok := s.w.Metrics.LookupCounter(name); ok {
			return c.Value()
		}
		return 0
	}
	return LeaseStats{
		L1Hits:        get("lease.l1.hits"),
		L1Misses:      get("lease.l1.misses"),
		L2Hits:        get("lease.l2.hits"),
		L2Misses:      get("lease.l2.misses"),
		Grants:        get("lease.grants"),
		GrantsRefused: get("lease.fence"),
		Invalidations: get("lease.invalidations"),
		Invalidated:   get("lease.invalidated"),
		Waitouts:      get("lease.waitouts"),
	}
}

// Objects returns the UIDs of the counter objects created at Open time.
func (s *System) Objects() []uid.UID {
	return append([]uid.UID(nil), s.w.Objects...)
}

// Servers, Stores and ClientNodes return the deployment's node names.
func (s *System) Servers() []transport.Addr {
	return append([]transport.Addr(nil), s.w.Svs...)
}

// Stores returns the store node names.
func (s *System) Stores() []transport.Addr {
	return append([]transport.Addr(nil), s.w.Sts...)
}

// ClientNodes returns the client node names.
func (s *System) ClientNodes() []transport.Addr {
	return append([]transport.Addr(nil), s.w.Clients...)
}

// CreateObject installs a new persistent object of a registered class:
// its initial state is written to every store node, then the object is
// registered in the group view database with all servers and stores in
// its Sv/St views. The new UID is returned.
func (s *System) CreateObject(ctx context.Context, class string, initState []byte) (uid.UID, error) {
	id := s.gen.New()
	// Placement decides the shard from the UID; the object is created in
	// that shard's group (the only group, when unsharded).
	g := s.w.GroupOf(id)
	creator := core.Client{RPC: s.w.Cluster.Node(s.w.Clients[0]).Client(), DB: g.DB.Addr()}
	if err := core.CreateObject(ctx, creator, s.w.Mgrs[s.w.Clients[0]], id, class, initState, g.Svs, g.Sts); err != nil {
		return uid.Nil, MapError(err)
	}
	s.mu.Lock()
	s.created = append(s.created, id)
	s.mu.Unlock()
	return id, nil
}

// ShardInfo describes one shard of a sharded deployment: its group view
// database node and the server and store nodes of its group.
type ShardInfo struct {
	// ID is the 1-based shard number.
	ID int
	// DB is the shard's group view database node.
	DB transport.Addr
	// Servers and Stores are the shard's object-server and object-store
	// node sets.
	Servers []transport.Addr
	Stores  []transport.Addr
}

// ShardCount returns the number of shards (1 when unsharded).
func (s *System) ShardCount() int { return len(s.w.Groups) }

// Shards returns the placement table: every shard with its database,
// server and store nodes. Unsharded deployments report one shard.
func (s *System) Shards() []ShardInfo {
	out := make([]ShardInfo, len(s.w.Groups))
	for i := range s.w.Groups {
		g := &s.w.Groups[i]
		out[i] = ShardInfo{
			ID:      g.ID,
			DB:      g.DB.Addr(),
			Servers: append([]transport.Addr(nil), g.Svs...),
			Stores:  append([]transport.Addr(nil), g.Sts...),
		}
	}
	return out
}

// ShardOf returns the shard an object currently lives on, per the
// placement service: the consistent-hash shard unless a rebalance has
// recorded an explicit override. Always 1 when unsharded.
func (s *System) ShardOf(id uid.UID) int {
	return s.w.GroupOf(id).ID
}

// Rebalance migrates an object to the target shard (1-based): the
// object is deregistered from its current group once quiescent, its
// latest committed state installed at the target group's stores through
// the §4.2 catch-up machinery, registered in the target group's
// database, and the placement override updated with a bumped epoch so
// clients holding the stale mapping re-bind instead of committing
// against the old shard. Requires WithShards.
func (s *System) Rebalance(ctx context.Context, id uid.UID, target int) error {
	if !s.w.Sharded() {
		return fmt.Errorf("arjuna: rebalance: %w", ErrNotSharded)
	}
	return MapError(s.w.Rebalance(ctx, id, target))
}

// RebalanceBatch migrates a whole batch of objects to the target shard
// under one migration action: every object is deregistered, caught up and
// re-registered as in Rebalance, but the placement overrides flip in a
// single service-side critical section (one AssignBatch round, one epoch
// bump per object) — a concurrent client observes the old or the new
// placement of the batch, never a torn mixture. Requires WithShards.
func (s *System) RebalanceBatch(ctx context.Context, ids []uid.UID, target int) error {
	if !s.w.Sharded() {
		return fmt.Errorf("arjuna: rebalance: %w", ErrNotSharded)
	}
	return MapError(s.w.RebalanceBatch(ctx, ids, target))
}

// Crash fail-silences a node: its volatile state is lost and it leaves
// the network; its stable store survives for recovery.
func (s *System) Crash(node string) error {
	n := s.w.Cluster.Node(transport.Addr(node))
	if n == nil {
		return fmt.Errorf("arjuna: crash %q: %w", node, ErrUnknownNode)
	}
	n.Crash()
	return nil
}

// Recover restarts a crashed node and runs the paper's recovery protocol
// for its role: a recovering store node refreshes its object states and
// Includes itself back into the St views (§4.2); a recovering server node
// re-Inserts itself into the Sv views once the objects are quiescent
// (§4.1.2). Other node kinds just rejoin the network.
func (s *System) Recover(ctx context.Context, node string) error {
	addr := transport.Addr(node)
	n := s.w.Cluster.Node(addr)
	if n == nil {
		return fmt.Errorf("arjuna: recover %q: %w", node, ErrUnknownNode)
	}
	n.Recover(nil)
	// Recovery talks to the node's own group: its database registers the
	// objects whose views the node must rejoin.
	g := s.w.GroupFor(addr)
	ids := g.DB.Objects()
	switch {
	case slices.Contains(s.w.Sts, addr):
		return MapError(core.RecoverStoreNode(ctx, n, g.DB.Addr(), ids))
	case slices.Contains(s.w.Svs, addr):
		return MapError(core.RecoverServerNode(ctx, n, g.DB.Addr(), ids))
	}
	return nil
}

// ServerView reads the object's current Sv view (the nodes capable of
// running a server for it) outside any client action.
func (s *System) ServerView(ctx context.Context, id uid.UID) ([]transport.Addr, error) {
	return s.view(ctx, id, false)
}

// StoreView reads the object's current St view (the nodes whose stores
// hold its latest mutually consistent state) outside any client action.
func (s *System) StoreView(ctx context.Context, id uid.UID) ([]transport.Addr, error) {
	return s.view(ctx, id, true)
}

func (s *System) view(ctx context.Context, id uid.UID, wantSt bool) ([]transport.Addr, error) {
	cli := core.Client{RPC: s.w.Cluster.Node(s.w.Clients[0]).Client(), DB: s.w.GroupOf(id).DB.Addr()}
	act := s.viewMgr.BeginTop()
	var view []transport.Addr
	var err error
	if wantSt {
		view, _, err = cli.GetView(ctx, act.ID(), id)
	} else {
		view, _, err = cli.GetServer(ctx, act.ID(), id, false, false)
	}
	_ = cli.EndAction(ctx, act.ID(), true)
	_, _ = act.Commit(ctx)
	return view, MapError(err)
}

// StoreState reads the committed (value, seq) of one object directly from
// one store node's stable store — committed state inspection for demos,
// audits and tests. The node must be up.
func (s *System) StoreState(node string, id uid.UID) ([]byte, uint64, error) {
	n := s.w.Cluster.Node(transport.Addr(node))
	if n == nil {
		return nil, 0, fmt.Errorf("arjuna: store state at %q: %w", node, ErrUnknownNode)
	}
	if !n.Up() {
		return nil, 0, fmt.Errorf("arjuna: store state at %q: node is down: %w", node, ErrUnreachable)
	}
	v, err := n.Store().Read(id)
	if err != nil {
		return nil, 0, tag(ErrUnknownObject, err)
	}
	return v.Data, v.Seq, nil
}

// CommittedState returns the object's latest committed (highest-seq)
// state among the live store nodes holding it.
func (s *System) CommittedState(id uid.UID) ([]byte, uint64, error) {
	var best []byte
	var bestSeq uint64
	found := false
	for _, st := range s.w.Sts {
		n := s.w.Cluster.Node(st)
		if n == nil || !n.Up() {
			continue
		}
		if v, err := n.Store().Read(id); err == nil && (!found || v.Seq > bestSeq) {
			best, bestSeq, found = v.Data, v.Seq, true
		}
	}
	if !found {
		return nil, 0, fmt.Errorf("arjuna: no live store holds %v: %w", id, ErrUnknownObject)
	}
	return best, bestSeq, nil
}

// NodeStatus describes one node of the deployment.
type NodeStatus struct {
	// Name is the node's address (db, sv1.., st1.., c1..).
	Name transport.Addr
	// Kind is "db", "server", "store" or "client".
	Kind string
	// Up reports whether the node is functioning.
	Up bool
	// Epoch is the node's incarnation number; it increases on recovery.
	Epoch uint32
}

// Status reports every node of the deployment, sorted by name.
func (s *System) Status() []NodeStatus {
	var out []NodeStatus
	for _, n := range s.w.Cluster.Nodes() {
		out = append(out, NodeStatus{
			Name:  n.Name(),
			Kind:  s.kindOf(n.Name()),
			Up:    n.Up(),
			Epoch: n.Epoch(),
		})
	}
	return out
}

func (s *System) kindOf(addr transport.Addr) string {
	for i := range s.w.Groups {
		if addr == s.w.Groups[i].DB.Addr() {
			return "db"
		}
	}
	switch {
	case s.w.Sharded() && slices.Contains(s.w.PlaceAddrs, addr):
		return "placement"
	case slices.Contains(s.w.Svs, addr):
		return "server"
	case slices.Contains(s.w.Sts, addr):
		return "store"
	case slices.Contains(s.w.Clients, addr):
		return "client"
	default:
		return "node"
	}
}

// BreakerStat describes one per-peer circuit breaker on one node.
type BreakerStat struct {
	// Node is the breaker's owner; Peer is the node it guards calls to.
	Node, Peer transport.Addr
	// State is "closed", "open" or "half-open".
	State string
	// Failures counts failed calls in the breaker's sliding Window.
	Failures, Window int
}

// BreakerStats reports every non-pristine circuit breaker in the
// deployment (one entry per node/peer pair that has recorded at least
// one outcome), sorted by node then peer. Empty when breakers are
// disabled (WithoutBreakers).
func (s *System) BreakerStats() []BreakerStat {
	var out []BreakerStat
	for _, n := range s.w.Cluster.Nodes() {
		bk := n.Breakers()
		if bk == nil {
			continue
		}
		for _, st := range bk.Snapshot() {
			out = append(out, BreakerStat{
				Node:     n.Name(),
				Peer:     st.Peer,
				State:    st.State.String(),
				Failures: st.Failures,
				Window:   st.Window,
			})
		}
	}
	return out
}

// NodeHealth is one node's answer to the health RPC: its incarnation
// epoch, stable-store transaction backlog and breaker states as the node
// itself sees them. Up=false entries carry only the name.
type NodeHealth struct {
	Node         transport.Addr
	Up           bool
	Epoch        uint32
	StorePending int
	Breakers     []BreakerStat
}

// Health polls every node's health endpoint from the first client node
// and reports the answers, sorted by node name. Nodes that are down (or
// unreachable within ctx) are reported with Up=false.
func (s *System) Health(ctx context.Context) []NodeHealth {
	cli := s.w.Cluster.Node(s.w.Clients[0]).Client()
	// Health checks must reach suspected peers too: bypass breakers.
	cli.Breakers = nil
	var out []NodeHealth
	for _, n := range s.w.Cluster.Nodes() {
		h := NodeHealth{Node: n.Name()}
		if resp, err := sim.Health(ctx, cli, n.Name()); err == nil {
			h.Up = true
			h.Epoch = resp.Epoch
			h.StorePending = resp.StorePending
			for _, b := range resp.Breakers {
				h.Breakers = append(h.Breakers, BreakerStat{
					Node:     n.Name(),
					Peer:     b.Peer,
					State:    b.State,
					Failures: b.Failures,
					Window:   b.Window,
				})
			}
		}
		out = append(out, h)
	}
	return out
}

// Suspected returns the peers the WithHealthDetector loop currently
// suspects (consecutive heartbeat misses past its threshold), sorted.
// Nil when no detector is configured.
func (s *System) Suspected() []transport.Addr {
	if s.detector == nil {
		return nil
	}
	return s.detector.Suspected()
}

// SweepReport is the result of one use-list janitor pass (§4.1.3).
type SweepReport = core.SweepReport

// Sweep runs the use-list janitor once over every group view database:
// it probes client nodes recorded in use lists, and for crashed ones
// aborts their database actions and clears their counters. Sharded
// deployments merge the per-group reports.
func (s *System) Sweep(ctx context.Context) SweepReport {
	var merged SweepReport
	dead := map[transport.Addr]bool{}
	for _, j := range s.janitors {
		rep := j.Sweep(ctx)
		for _, c := range rep.DeadClients {
			dead[c] = true
		}
		merged.AbortedActions += rep.AbortedActions
		merged.ClearedCounters += rep.ClearedCounters
	}
	merged.DeadClients = sortedAddrs(dead)
	return merged
}

// Faults returns the in-memory network's programmable fault plan, or nil
// when the deployment runs over a real transport.
func (s *System) Faults() *transport.Faults {
	return s.w.Cluster.Faults()
}

// ServiceStats describes the RPC traffic of one service across the
// deployment since Open.
type ServiceStats struct {
	// Service is the RPC service name (e.g. "group", "objectstore").
	Service string
	// Calls is the number of calls issued; TransportErrors counts the
	// calls that failed at the transport (unreachable, lost messages).
	Calls           int64
	TransportErrors int64
	// MeanLatency and MaxLatency aggregate the per-call round-trip time.
	MeanLatency time.Duration
	MaxLatency  time.Duration
	// P50/P99/P999 are round-trip latency percentiles from the service's
	// log-bucketed histogram (±~2% relative error; max is exact).
	P50  time.Duration
	P99  time.Duration
	P999 time.Duration
}

// Stats returns per-service RPC call counts and latencies accumulated by
// every node of the deployment, sorted by service name. The counters are
// cumulative since Open.
func (s *System) Stats() []ServiceStats {
	reg := s.w.Metrics
	var out []ServiceStats
	for _, name := range reg.CounterNames() {
		trimmed, ok := strings.CutSuffix(name, ".calls")
		if !ok {
			continue
		}
		service, ok := strings.CutPrefix(trimmed, "rpc.")
		if !ok {
			continue
		}
		// Read-only lookups: observing stats must not create registry
		// entries (that would change a later StatsSnapshot).
		s := ServiceStats{Service: service}
		if c, ok := reg.LookupCounter(name); ok {
			s.Calls = c.Value()
		}
		if c, ok := reg.LookupCounter("rpc." + service + ".transport-errors"); ok {
			s.TransportErrors = c.Value()
		}
		if lat, ok := reg.LookupLatency("rpc." + service); ok {
			s.MeanLatency = lat.Mean()
			s.MaxLatency = lat.Max()
		}
		if h, ok := reg.LookupHistogram("rpc." + service); ok {
			ms := func(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }
			s.P50 = ms(h.Percentile(0.50))
			s.P99 = ms(h.Percentile(0.99))
			s.P999 = ms(h.Percentile(0.999))
		}
		out = append(out, s)
	}
	return out
}

// StatsSnapshot renders the deployment's full metrics registry (RPC call
// counts, latencies, and anything experiments recorded) as a
// deterministic multi-line report.
func (s *System) StatsSnapshot() string {
	return s.w.Metrics.Snapshot()
}

// String implements fmt.Stringer.
func (s *System) String() string {
	var b strings.Builder
	if s.w.Sharded() {
		fmt.Fprintf(&b, "arjuna.System(%d shards × (db + %d servers + %d stores) + %d clients, scheme=%v, policy=%v",
			len(s.w.Groups), s.cfg.servers, s.cfg.stores, len(s.w.Clients), s.cfg.scheme, s.cfg.policy)
	} else {
		fmt.Fprintf(&b, "arjuna.System(db + %d servers + %d stores + %d clients, scheme=%v, policy=%v",
			len(s.w.Svs), len(s.w.Sts), len(s.w.Clients), s.cfg.scheme, s.cfg.policy)
	}
	net := s.w.Cluster.Net()
	if f, ok := net.(*transport.Faulty); ok {
		net = f.Inner()
	}
	switch net.(type) {
	case *transport.TCP:
		b.WriteString(", transport=tcp")
	case *transport.TCPMux:
		b.WriteString(", transport=mux")
	}
	b.WriteString(")")
	return b.String()
}
