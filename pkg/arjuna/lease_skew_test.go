package arjuna

// In-package test: it reaches into the client's lease cache to
// re-install a superseded snapshot, standing in for an invalidation
// record still in flight toward the holder.

import (
	"context"
	"testing"
	"time"
)

// TestMixedTxnRejectsStaleLeasedRead pins the commit-time revalidation
// of leased reads in transactions that also do server-side work. The
// hazard is write skew: T1 lease-reads X and writes Y; a concurrent T2
// that read Y and advanced X can release T1's Y-lock wait (read-only
// voters release at phase one) while T2's invalidation of X is still in
// flight, so T1's snapshot of X looks locally valid all the way through
// its own commit. Revalidation upgrades the leased read to a locked
// server read, which must observe the new version and abort the attempt.
func TestMixedTxnRejectsStaleLeasedRead(t *testing.T) {
	sys, err := Open(
		WithServers(2), WithStores(2), WithObjects(2),
		WithReadLeases(500*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	cl, err := sys.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	objX, objY := sys.Objects()[0], sys.Objects()[1]

	if _, _, err := cl.Apply(ctx, objX, "add", []byte("7")); err != nil {
		t.Fatalf("seed X: %v", err)
	}
	// Warm the lease on X: the server read harvests a grant.
	if _, err := cl.Atomic(ctx, func(tx *Txn) error {
		_, rerr := tx.Object(objX).Read(ctx, "get", nil)
		return rerr
	}); err != nil {
		t.Fatalf("warm read: %v", err)
	}
	e, ok := cl.leases.Get(objX, time.Now())
	if !ok {
		t.Fatal("no lease cached after warm read")
	}
	stale := e.Snap

	// T2 advances X to 12; its commit invalidates the cached lease.
	if _, _, err := cl.Apply(ctx, objX, "add", []byte("5")); err != nil {
		t.Fatalf("advance X: %v", err)
	}
	// Reopen the race window: re-install the superseded snapshot, as if
	// T2's invalidation multicast had not reached this holder yet. Its
	// expiry is pushed far past the end of the test so ONLY revalidation
	// — never expiry — can explain the stale snapshot not committing.
	stale.Expiry = time.Now().Add(30 * time.Second)
	cl.leases.Put(stale)

	// T1 is the mixed transaction: lease-read X, write X's value into Y.
	// Without revalidation it would commit Y=7 against X=12 — the
	// non-serializable outcome.
	rep, err := cl.Atomic(ctx, func(tx *Txn) error {
		v, rerr := tx.Object(objX).Read(ctx, "get", nil)
		if rerr != nil {
			return rerr
		}
		_, rerr = tx.Object(objY).Invoke(ctx, "add", v)
		return rerr
	})
	if err != nil {
		t.Fatalf("mixed txn: %v", err)
	}
	if rep.Attempts < 2 {
		t.Fatalf("mixed txn committed on attempt %d; the stale leased read was never revalidated", rep.Attempts)
	}
	state, _, err := sys.CommittedState(objY)
	if err != nil {
		t.Fatal(err)
	}
	if string(state) != "12" {
		t.Fatalf("Y = %q after mixed txn; want 12 (7 means the stale snapshot committed)", state)
	}
}

// TestPureLeaseReadSkipsRevalidation keeps the flip side honest: a
// transaction that ONLY lease-reads must not be dragged onto the server
// path by revalidation — each read was individually valid when served,
// which is the lease guarantee, and the zero-RPC property is the whole
// point of the cache. Objects are pre-seeded, so no commit (and no
// first-commit grace wait) is needed anywhere in the test.
func TestPureLeaseReadSkipsRevalidation(t *testing.T) {
	sys, err := Open(
		WithServers(2), WithStores(2),
		WithReadLeases(30*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	cl, err := sys.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	obj := sys.Objects()[0]
	read := func() *CommitReport {
		rep, err := cl.Atomic(ctx, func(tx *Txn) error {
			_, rerr := tx.Object(obj).Read(ctx, "get", nil)
			return rerr
		})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return rep
	}
	read() // harvest the grant
	before := totalCalls(sys)
	if rep := read(); rep.LeaseReads != 1 || rep.Attempts != 1 {
		t.Fatalf("pure lease read: LeaseReads=%d Attempts=%d; want 1, 1", rep.LeaseReads, rep.Attempts)
	}
	if after := totalCalls(sys); after != before {
		t.Fatalf("pure lease-read txn issued %d RPCs; revalidation must not touch it", after-before)
	}
}

func totalCalls(sys *System) int64 {
	var n int64
	for _, s := range sys.Stats() {
		n += s.Calls
	}
	return n
}
