package arjuna

import (
	"time"

	"repro/internal/core"
	"repro/internal/lockmgr"
	"repro/internal/object"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Scheme selects the database access structure of §4 — how the group view
// database is read and repaired relative to the client action.
type Scheme = core.Scheme

// The three access schemes (Figures 6–8 of the paper).
const (
	SchemeStandard       = core.SchemeStandard
	SchemeIndependent    = core.SchemeIndependent
	SchemeNestedTopLevel = core.SchemeNestedTopLevel
)

// ParseScheme maps a flag/config spelling ("standard", "independent",
// "nested", or a full String() form) to a Scheme.
func ParseScheme(s string) (Scheme, error) { return core.ParseScheme(s) }

// Policy selects the object replication discipline of §2.3.
type Policy = replica.Policy

// The three replication policies.
const (
	SingleCopyPassive = replica.SingleCopyPassive
	Active            = replica.Active
	CoordinatorCohort = replica.CoordinatorCohort
)

// ParsePolicy maps a flag/config spelling ("single", "active", "cohort",
// or a full String() form) to a Policy.
func ParsePolicy(s string) (Policy, error) { return replica.ParsePolicy(s) }

// Class describes an application object type: its initial state and its
// methods. Register classes at Open time with WithClass.
type Class = object.Class

// Method is one object method: (state, args) → (newState, result, error).
type Method = object.Method

// config is the assembled deployment description.
type config struct {
	servers int
	stores  int
	clients int
	objects int
	shards  int

	net     transport.MemOptions
	network transport.Network

	dataDir string
	disk    storage.DiskOptions

	scheme Scheme
	policy Policy
	degree int // <0 = auto: 1 for single-copy passive, all otherwise

	lockLimits lockmgr.Limits
	admission  int

	noBreakers        bool
	breakers          BreakerConfig
	healthInterval    time.Duration
	placementReplicas int

	leaseTTL time.Duration

	classes []*Class
}

func defaultConfig() config {
	return config{
		servers: 2,
		stores:  2,
		clients: 1,
		objects: 1,
		scheme:  SchemeIndependent,
		policy:  SingleCopyPassive,
		degree:  -1,
	}
}

// Option configures Open.
type Option func(*config)

// WithServers sets the number of object-server nodes (sv1..svN).
func WithServers(n int) Option { return func(c *config) { c.servers = n } }

// WithStores sets the number of object-store nodes (st1..stN).
func WithStores(n int) Option { return func(c *config) { c.stores = n } }

// WithClients sets the number of client nodes (c1..cN).
func WithClients(n int) Option { return func(c *config) { c.clients = n } }

// WithObjects sets how many pre-created counter objects the deployment
// starts with (each replicated across all servers and stores of its
// shard). Further objects of any registered class are created with
// System.CreateObject.
func WithObjects(n int) Option { return func(c *config) { c.objects = n } }

// WithShards splits the deployment into n independent groups, each with
// its own group view database (db1..dbN) and its own WithServers servers
// and WithStores stores — the per-node counts become per-shard counts. A
// placement service maps each object to a shard by consistent hashing,
// with an explicit-override directory on top, and every Client binds
// through it transparently: actions touching one shard keep the
// one-phase and read-only fast paths, actions spanning shards enlist
// participants from several groups under one coordinator. n <= 1 keeps
// the classic single-group deployment (one "db" node) unchanged.
func WithShards(n int) Option { return func(c *config) { c.shards = n } }

// WithScheme sets the deployment's default database access scheme;
// individual clients may override it with ClientScheme.
func WithScheme(s Scheme) Option { return func(c *config) { c.scheme = s } }

// WithPolicy sets the deployment's default replication policy; individual
// clients may override it with ClientPolicy.
func WithPolicy(p Policy) Option { return func(c *config) { c.policy = p } }

// WithDegree sets the default desired number of activated replicas per
// binding (|Sv'| of §3.2); 0 means all servers in the view. The default
// is 1 under single-copy passive replication and all otherwise.
func WithDegree(d int) Option { return func(c *config) { c.degree = d } }

// WithLockQueue bounds every object server's per-object lock wait queues:
// at most depth waiters may queue on one lock, and no waiter waits longer
// than wait before being refused. Either bound at zero leaves that
// dimension unbounded. Over-limit acquires fail with ErrOverloaded, which
// Atomic retries with jittered exponential backoff — backpressure that
// keeps a hot object's queue (and its tail latency) bounded instead of
// letting every delayed client pile up behind the lock.
func WithLockQueue(depth int, wait time.Duration) Option {
	return func(c *config) { c.lockLimits = lockmgr.Limits{MaxQueue: depth, MaxWait: wait} }
}

// WithAdmission caps how many top-level Atomic actions may be in flight
// across the whole deployment at once. Beyond the lock-queue bounds —
// which refuse work already deep inside the system — the admission gate
// is the outermost backpressure valve: when offered concurrency exceeds
// the deployment's efficient operating point, surplus callers park
// cheaply at the gate instead of thrashing the bind, lock and commit
// machinery, which is what turns extra clients into negative scaling.
// An admitted action holds its slot through its retries, so its backoff
// capacity is not resold. 0 (the default) means no gate.
func WithAdmission(n int) Option {
	return func(c *config) { c.admission = n }
}

// BreakerConfig tunes the per-peer circuit breakers: a breaker trips
// after Threshold failures in its Window most recent calls and fast-fails
// further calls with ErrPeerUnavailable until a Cooldown-spaced probe
// succeeds. The zero value selects the defaults (window 10, threshold 5,
// cooldown 250ms).
type BreakerConfig = rpc.BreakerConfig

// WithoutBreakers disables the per-peer circuit breakers, restoring the
// pre-breaker behaviour where every call to a dead peer burns a full
// transport timeout. Mainly useful for comparing degraded-mode latency
// with and without fast-fail in benchmarks.
func WithoutBreakers() Option { return func(c *config) { c.noBreakers = true } }

// WithBreakerConfig tunes the circuit breakers' window, trip threshold
// and probe cooldown. Zero fields keep their defaults.
func WithBreakerConfig(cfg BreakerConfig) Option {
	return func(c *config) { c.breakers = cfg }
}

// WithHealthDetector runs a background heartbeat failure detector from
// the first client node: every interval it pings every other node,
// marks peers suspected after consecutive misses, and — when a suspected
// peer answers again — resets the whole deployment's breakers toward it
// so recovery is noticed promptly rather than after per-caller probe
// cooldowns. Zero (the default) runs no detector.
func WithHealthDetector(interval time.Duration) Option {
	return func(c *config) { c.healthInterval = interval }
}

// WithPlacementReplicas sets how many replicas back the placement
// service of a sharded deployment (n < 1 selects the default of 3).
// Writes go through the first replica and are synchronously pushed to
// the others with epoch fencing; clients fail reads over to any
// surviving replica, so any single replica death leaves bind and
// re-bind live. Ignored without WithShards.
func WithPlacementReplicas(n int) Option {
	return func(c *config) { c.placementReplicas = n }
}

// DefaultLeaseTTL is the read-lease lifetime WithReadLeases selects when
// given a non-positive TTL.
const DefaultLeaseTTL = 250 * time.Millisecond

// WithReadLeases enables cached read leases with the given TTL
// (DefaultLeaseTTL when ttl <= 0). Object servers then attach a leased
// snapshot — state, version, ttl — to read-path invocations, every
// client node runs a shared lease cache (with a small per-client L1 on
// top), and a Client whose Atomic body only performs read-only methods
// on lease-valid objects completes with zero RPCs and zero lock-manager
// traffic. Commits stay safe: a commit that advances a leased object's
// version invalidates the holders over the ordered multicast — or, when
// a holder cannot be reached, waits out the lease clock — before it is
// acknowledged. See the package documentation for the exact guarantee
// and the costs (a 2×TTL grace on the first commit after an instance
// activates, and a store probe on grants to long-idle objects).
//
// Leases apply to single-copy passive replication; other policies
// ignore them.
func WithReadLeases(ttl time.Duration) Option {
	return func(c *config) {
		if ttl <= 0 {
			ttl = DefaultLeaseTTL
		}
		c.leaseTTL = ttl
	}
}

// WithClass registers an application object class in addition to the
// built-in "counter" class.
func WithClass(cl *Class) Option {
	return func(c *config) { c.classes = append(c.classes, cl) }
}

// WithDataDir roots every node's stable storage in dir: committed
// object versions, prepared 2PC intentions and the coordinators' commit
// records live in per-node WAL+snapshot directories under dir
// (dir/st1, dir/c1, ...). Crash then drops the node's whole process
// state — as a real machine failure would — and Recover replays the
// node's directory before running the §4.1.2/§4.2 recovery protocols,
// so committed state survives actual process death and a deployment
// reopened on the same directory resumes where it left off. Without
// this option stable storage is in-memory: "stable" only with respect
// to simulated crashes, gone with the process.
func WithDataDir(dir string) Option {
	return func(c *config) { c.dataDir = dir }
}

// WithDiskOptions tunes the disk engine used with WithDataDir — the
// fsync discipline (group commit by default) and the WAL compaction
// threshold.
func WithDiskOptions(opts storage.DiskOptions) Option {
	return func(c *config) { c.disk = opts }
}

// WithMemNetwork tunes the default in-memory network (latency, jitter,
// seed). Ignored when WithNetwork/WithTCP selects another transport.
func WithMemNetwork(opts transport.MemOptions) Option {
	return func(c *config) { c.net = opts }
}

// WithNetwork runs the deployment over an explicit transport instead of
// the in-memory simulator. Fault injection (System.Faults) is only
// available on the in-memory network.
func WithNetwork(net transport.Network) Option {
	return func(c *config) { c.network = net }
}

// WithTCP runs the deployment over real loopback TCP sockets,
// demonstrating that the whole protocol stack is transport-agnostic.
func WithTCP() Option {
	return func(c *config) { c.network = transport.NewTCP() }
}

// WithTCPMux runs the deployment over real loopback sockets with one
// multiplexed connection per node pair: concurrent calls are pipelined on
// the shared connection and demultiplexed by request ID, instead of each
// call taking a pooled connection of its own.
func WithTCPMux() Option {
	return func(c *config) { c.network = transport.NewTCPMux() }
}

// clientConfig describes one Client's binding behaviour.
type clientConfig struct {
	scheme   Scheme
	policy   Policy
	degree   int
	readOnly bool
	fastBind bool
	retries  int
	backoff  time.Duration
}

// ClientOption configures System.Client.
type ClientOption func(*clientConfig)

// ClientScheme overrides the deployment's default access scheme for this
// client.
func ClientScheme(s Scheme) ClientOption { return func(c *clientConfig) { c.scheme = s } }

// ClientPolicy overrides the deployment's default replication policy for
// this client.
func ClientPolicy(p Policy) ClientOption { return func(c *clientConfig) { c.policy = p } }

// ClientDegree overrides the deployment's default replication degree for
// this client (0 = all servers in the view).
func ClientDegree(d int) ClientOption { return func(c *clientConfig) { c.degree = d } }

// ClientReadOnly applies the §4.1.2 read optimisation: the client binds to
// any one convenient server and never touches use lists. Only read-only
// methods should be invoked through such a client.
func ClientReadOnly() ClientOption { return func(c *clientConfig) { c.readOnly = true } }

// ClientFastBind makes the enhanced schemes' bind action use commutative
// locking: Sv is read under a shared lock and the use-count Increment
// takes an Adjust lock that other adjusters and readers share, so binds
// to a hot object no longer convoy behind one another's exclusive bind
// window. The exclusive Figure 7 pass still runs whenever a bind finds
// failed servers to repair, preserving Sv-repair and quiescence
// semantics. No effect under SchemeStandard or ClientReadOnly.
func ClientFastBind() ClientOption { return func(c *clientConfig) { c.fastBind = true } }

// ClientRetry bounds Atomic's retry loop for transient lock refusals:
// at most attempts tries in total, sleeping backoff (doubling each time)
// between them. attempts < 1 is treated as 1; a zero backoff retries
// immediately.
func ClientRetry(attempts int, backoff time.Duration) ClientOption {
	return func(c *clientConfig) {
		if attempts < 1 {
			attempts = 1
		}
		c.retries = attempts
		c.backoff = backoff
	}
}
