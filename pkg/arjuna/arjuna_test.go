package arjuna_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/lockmgr"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/uid"
	"repro/pkg/arjuna"
)

func openT(t *testing.T, opts ...arjuna.Option) *arjuna.System {
	t.Helper()
	sys, err := arjuna.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	return sys
}

func clientT(t *testing.T, sys *arjuna.System, name string, opts ...arjuna.ClientOption) *arjuna.Client {
	t.Helper()
	cl, err := sys.Client(name, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func counterValue(t *testing.T, sys *arjuna.System, id uid.UID) string {
	t.Helper()
	data, _, err := sys.CommittedState(id)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestAtomicCommitsOnNilError(t *testing.T) {
	sys := openT(t)
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		out, err := tx.Object(obj).Invoke(ctx, "add", []byte("41"))
		if err != nil {
			return err
		}
		if string(out) != "41" {
			return fmt.Errorf("unexpected result %q", out)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Atomic: %v", err)
	}
	if !rep.Committed || rep.Attempts != 1 {
		t.Fatalf("report = %+v, want committed on first attempt", rep)
	}
	if got := counterValue(t, sys, obj); got != "41" {
		t.Fatalf("committed state = %q, want 41", got)
	}
}

func TestAtomicAbortsOnError(t *testing.T) {
	sys := openT(t)
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	errBoom := errors.New("boom")
	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		if _, err := tx.Object(obj).Invoke(ctx, "add", []byte("5")); err != nil {
			return err
		}
		return errBoom
	})
	if !errors.Is(err, arjuna.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("err = %v, want the closure's cause on the chain", err)
	}
	if rep.Committed {
		t.Fatalf("report claims committed after abort: %+v", rep)
	}
	if got := counterValue(t, sys, obj); got != "0" {
		t.Fatalf("state after abort = %q, want 0 (all effects undone)", got)
	}
}

func TestAtomicRetriesThenSucceedsOnTransientLockRefusal(t *testing.T) {
	sys := openT(t)
	cl := clientT(t, sys, "c1", arjuna.ClientRetry(5, 0))
	obj := sys.Objects()[0]
	ctx := context.Background()

	// The first two attempts fail with a real wire-level lock-refused
	// error, as a contended group view database would produce (§4.2.1).
	attempts := 0
	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		attempts++
		if attempts <= 2 {
			return fmt.Errorf("bind: %w", rpc.Errorf(core.CodeLockRefused, "simulated contention"))
		}
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("7"))
		return err
	})
	if err != nil {
		t.Fatalf("Atomic after retries: %v", err)
	}
	if rep.Attempts != 3 || attempts != 3 {
		t.Fatalf("attempts = %d (report %d), want 3", attempts, rep.Attempts)
	}
	if got := counterValue(t, sys, obj); got != "7" {
		t.Fatalf("committed state = %q, want 7", got)
	}
}

func TestAtomicExhaustsRetriesOnPersistentLockRefusal(t *testing.T) {
	sys := openT(t)
	cl := clientT(t, sys, "c1", arjuna.ClientRetry(3, 0))
	obj := sys.Objects()[0]
	ctx := context.Background()

	attempts := 0
	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		attempts++
		_ = obj
		return rpc.Errorf(core.CodeLockRefused, "still contended")
	})
	if !errors.Is(err, arjuna.ErrLockRefused) || !errors.Is(err, arjuna.ErrAborted) {
		t.Fatalf("err = %v, want ErrLockRefused and ErrAborted", err)
	}
	if attempts != 3 || rep.Attempts != 3 {
		t.Fatalf("attempts = %d (report %d), want all 3 retries consumed", attempts, rep.Attempts)
	}
}

func TestAtomicUnknownObject(t *testing.T) {
	sys := openT(t)
	cl := clientT(t, sys, "c1")
	ctx := context.Background()

	ghost := uid.NewGenerator("ghost", 1).New()
	_, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(ghost).Invoke(ctx, "add", []byte("1"))
		return err
	})
	if !errors.Is(err, arjuna.ErrUnknownObject) {
		t.Fatalf("err = %v, want ErrUnknownObject", err)
	}
	if !errors.Is(err, arjuna.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted too", err)
	}
}

func TestAtomicNoServers(t *testing.T) {
	sys := openT(t)
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	for _, sv := range sys.Servers() {
		if err := sys.Crash(string(sv)); err != nil {
			t.Fatal(err)
		}
	}
	_, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
		return err
	})
	if !errors.Is(err, arjuna.ErrNoServers) {
		t.Fatalf("err = %v, want ErrNoServers", err)
	}
}

func TestAtomicUnknownMethod(t *testing.T) {
	sys := openT(t)
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	_, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "frobnicate", nil)
		return err
	})
	if !errors.Is(err, arjuna.ErrUnknownMethod) {
		t.Fatalf("err = %v, want ErrUnknownMethod", err)
	}
}

// TestErrorsIsMatchesSentinels feeds MapError the real error shapes the
// protocol stack produces — wire-level *rpc.AppError codes and the
// internal sentinel errors — and checks each maps to its public sentinel
// while keeping the cause reachable via errors.As.
func TestErrorsIsMatchesSentinels(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"db lock refused", rpc.Errorf(core.CodeLockRefused, "x"), arjuna.ErrLockRefused},
		{"server lock refused", rpc.Errorf(rpc.CodeRefused, "x"), arjuna.ErrLockRefused},
		{"lockmgr refused", fmt.Errorf("acquire: %w", lockmgr.ErrRefused), arjuna.ErrLockRefused},
		{"unknown object", rpc.Errorf(core.CodeUnknownObject, "x"), arjuna.ErrUnknownObject},
		{"not found", rpc.Errorf(rpc.CodeNotFound, "x"), arjuna.ErrUnknownObject},
		{"not quiescent", rpc.Errorf(core.CodeNotQuiescent, "x"), arjuna.ErrNotQuiescent},
		{"no such method", rpc.Errorf(rpc.CodeNoSuchMethod, "x"), arjuna.ErrUnknownMethod},
		{"no servers", fmt.Errorf("activate: %w", replica.ErrNoServers), arjuna.ErrNoServers},
		{"unreachable", fmt.Errorf("call: %w", transport.ErrUnreachable), arjuna.ErrUnreachable},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Wrapped once more, as binder/replica layers do with %w.
			mapped := arjuna.MapError(fmt.Errorf("core: op(x): %w", tc.err))
			if !errors.Is(mapped, tc.want) {
				t.Fatalf("MapError(%v) = %v, does not match %v", tc.err, mapped, tc.want)
			}
			var ae *rpc.AppError
			if errors.As(tc.err, &ae) {
				var got *rpc.AppError
				if !errors.As(mapped, &got) || got.Code != ae.Code {
					t.Fatalf("MapError(%v) lost the underlying *rpc.AppError", tc.err)
				}
			}
		})
	}
	if got := arjuna.MapError(nil); got != nil {
		t.Fatalf("MapError(nil) = %v", got)
	}
	plain := errors.New("unclassified")
	if got := arjuna.MapError(plain); got != plain {
		t.Fatalf("MapError(unclassified) = %v, want unchanged", got)
	}
}

func TestCrashExcludeRecoverStore(t *testing.T) {
	sys := openT(t, arjuna.WithStores(3))
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	if err := sys.Crash("st3"); err != nil {
		t.Fatal(err)
	}
	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ExcludedStores) != 1 || rep.ExcludedStores[0] != "st3" {
		t.Fatalf("excluded = %v, want [st3]", rep.ExcludedStores)
	}
	st, err := sys.StoreView(ctx, obj)
	if err != nil || len(st) != 2 {
		t.Fatalf("St after exclude = %v (%v), want 2 nodes", st, err)
	}

	if err := sys.Recover(ctx, "st3"); err != nil {
		t.Fatal(err)
	}
	st, err = sys.StoreView(ctx, obj)
	if err != nil || len(st) != 3 {
		t.Fatalf("St after recovery = %v (%v), want 3 nodes", st, err)
	}
	data, seq, err := sys.StoreState("st3", obj)
	if err != nil || string(data) != "1" || seq != 2 {
		t.Fatalf("st3 state = %q seq=%d (%v), want caught-up copy", data, seq, err)
	}
}

func TestReadOnlyClient(t *testing.T) {
	sys := openT(t)
	rw := clientT(t, sys, "c1")
	ro := clientT(t, sys, "c1", arjuna.ClientReadOnly())
	obj := sys.Objects()[0]
	ctx := context.Background()

	if _, err := rw.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("9"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if _, err := ro.Atomic(ctx, func(tx *arjuna.Txn) error {
		var err error
		got, err = tx.Object(obj).Read(ctx, "get", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if string(got) != "9" {
		t.Fatalf("read = %q, want 9", got)
	}
}

func TestClientUnknownNode(t *testing.T) {
	sys := openT(t)
	if _, err := sys.Client("c99"); !errors.Is(err, arjuna.ErrUnknownNode) {
		t.Fatalf("Client(c99) err = %v, want ErrUnknownNode", err)
	}
	if err := sys.Crash("nope"); !errors.Is(err, arjuna.ErrUnknownNode) {
		t.Fatalf("Crash(nope) err = %v, want ErrUnknownNode", err)
	}
}

func TestMultiObjectAtomicity(t *testing.T) {
	sys := openT(t, arjuna.WithObjects(2))
	cl := clientT(t, sys, "c1")
	objs := sys.Objects()
	ctx := context.Background()

	// Update both objects; fail after the second update: neither commits.
	errBoom := errors.New("boom")
	_, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		if _, err := tx.Object(objs[0]).Invoke(ctx, "add", []byte("1")); err != nil {
			return err
		}
		if _, err := tx.Object(objs[1]).Invoke(ctx, "add", []byte("2")); err != nil {
			return err
		}
		return errBoom
	})
	if !errors.Is(err, arjuna.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	for i, id := range objs {
		if got := counterValue(t, sys, id); got != "0" {
			t.Fatalf("object %d = %q after multi-object abort, want 0", i, got)
		}
	}

	// And the committing variant updates both.
	if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		if _, err := tx.Object(objs[0]).Invoke(ctx, "add", []byte("1")); err != nil {
			return err
		}
		_, err := tx.Object(objs[1]).Invoke(ctx, "add", []byte("2"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if a, b := counterValue(t, sys, objs[0]), counterValue(t, sys, objs[1]); a != "1" || b != "2" {
		t.Fatalf("committed states = %q,%q, want 1,2", a, b)
	}
}

func TestOpenOverTCP(t *testing.T) {
	variants := []struct {
		name string
		opt  arjuna.Option
	}{
		{"pooled", arjuna.WithTCP()},
		{"mux", arjuna.WithTCPMux()},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			sys := openT(t, v.opt)
			cl := clientT(t, sys, "c1")
			obj := sys.Objects()[0]
			ctx := context.Background()

			rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
				_, err := tx.Object(obj).Invoke(ctx, "add", []byte("13"))
				return err
			})
			if err != nil || !rep.Committed {
				t.Fatalf("Atomic over TCP: %v (%+v)", err, rep)
			}
			if got := counterValue(t, sys, obj); got != "13" {
				t.Fatalf("committed state over TCP = %q, want 13", got)
			}

			// The typed error taxonomy survives the real wire: app error codes
			// travel in the rpc envelope, not as in-memory Go values.
			_, err = cl.Atomic(ctx, func(tx *arjuna.Txn) error {
				_, err := tx.Object(obj).Invoke(ctx, "frobnicate", nil)
				return err
			})
			if !errors.Is(err, arjuna.ErrUnknownMethod) {
				t.Fatalf("err over TCP = %v, want ErrUnknownMethod", err)
			}
			if err := sys.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

func TestStatsExposeRPCTraffic(t *testing.T) {
	sys := openT(t)
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
		return err
	}); err != nil {
		t.Fatalf("Atomic: %v", err)
	}

	stats := sys.Stats()
	if len(stats) == 0 {
		t.Fatal("Stats() empty after a committed transaction")
	}
	byService := make(map[string]arjuna.ServiceStats, len(stats))
	for _, s := range stats {
		byService[s.Service] = s
	}
	// A committed counter action must at minimum have driven the object
	// server (invocation) and the object stores (commit-time copy).
	for _, svc := range []string{"objsrv", "objectstore"} {
		s, ok := byService[svc]
		if !ok {
			t.Fatalf("Stats() missing service %q (got %v)", svc, stats)
		}
		if s.Calls <= 0 {
			t.Fatalf("service %q: calls = %d", svc, s.Calls)
		}
		if s.MeanLatency < 0 || s.MaxLatency < s.MeanLatency {
			t.Fatalf("service %q: implausible latencies %+v", svc, s)
		}
	}
	snap := sys.StatsSnapshot()
	if !strings.Contains(snap, "rpc.objectstore.calls") {
		t.Fatalf("snapshot missing rpc counters:\n%s", snap)
	}
}

func TestReadOnlyAtomicSkipsPhaseTwoAndOutcomeLog(t *testing.T) {
	// §4.1.2 end to end: a read-only action's binding votes read-only at
	// prepare, so the commit runs zero phase-two RPCs and writes no
	// outcome-log record — visible in the CommitReport vote anatomy.
	sys := openT(t, arjuna.WithServers(2), arjuna.WithStores(2))
	cl := clientT(t, sys, "c1", arjuna.ClientReadOnly())
	obj := sys.Objects()[0]
	ctx := context.Background()

	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Read(ctx, "get", nil)
		return err
	})
	if err != nil {
		t.Fatalf("read-only atomic: %v", err)
	}
	if !rep.Committed {
		t.Fatal("not committed")
	}
	if rep.ReadOnlyVoters != 1 || rep.CommitVoters != 0 {
		t.Fatalf("votes = %d read-only / %d commit, want 1/0", rep.ReadOnlyVoters, rep.CommitVoters)
	}
	if rep.OutcomeLogged {
		t.Fatal("read-only commit must not write an outcome-log record")
	}
}

func TestSingleStoreWriteCommitsOnePhase(t *testing.T) {
	// With one server and one store the whole commit collapses into a
	// single combined prepare+commit round and no outcome-log write.
	sys := openT(t, arjuna.WithServers(1), arjuna.WithStores(1))
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("5"))
		return err
	})
	if err != nil {
		t.Fatalf("atomic: %v", err)
	}
	if !rep.OnePhase || rep.CommitVoters != 1 || rep.OutcomeLogged {
		t.Fatalf("report = %+v, want a one-phase commit with no log write", rep)
	}
	if got := counterValue(t, sys, obj); got != "5" {
		t.Fatalf("counter = %q, want 5", got)
	}
}

func TestMultiStoreWriteStaysTwoPhase(t *testing.T) {
	// Several St stores need the outcome log to stay mutually consistent:
	// the one-phase fast path must refuse and fall back.
	sys := openT(t, arjuna.WithServers(1), arjuna.WithStores(3))
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("5"))
		return err
	})
	if err != nil {
		t.Fatalf("atomic: %v", err)
	}
	if rep.OnePhase || !rep.OutcomeLogged || rep.CommitVoters != 1 {
		t.Fatalf("report = %+v, want ordinary logged 2PC", rep)
	}
	// All three stores hold the same committed version.
	for _, st := range []string{"st1", "st2", "st3"} {
		data, seq, err := sys.StoreState(st, obj)
		if err != nil || string(data) != "5" || seq != 2 {
			t.Fatalf("%s state = %q@%d err=%v, want 5@2", st, data, seq, err)
		}
	}
}

func TestOnePhaseLostReplyResolvesThroughTwoPhase(t *testing.T) {
	// The combined prepare+commit executes at the server but its reply is
	// lost. The handle must not report an abort (the store has committed);
	// it declares the one-phase attempt ineligible and the 2PC fallback
	// resolves the doubt: the re-prepare finds the action already released
	// — a read-only vote — and the committed state stands.
	sys := openT(t, arjuna.WithServers(1), arjuna.WithStores(1))
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	sys.Faults().DropReplies(1, func(req transport.Request) bool {
		return req.Service == "objsrv" && req.Method == "PrepareCommit"
	})
	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("9"))
		return err
	})
	if err != nil {
		t.Fatalf("atomic with lost one-phase reply: %v", err)
	}
	if !rep.Committed {
		t.Fatal("not committed")
	}
	if rep.OnePhase {
		t.Fatal("lost reply must force the 2PC fallback, not a one-phase report")
	}
	if got := counterValue(t, sys, obj); got != "9" {
		t.Fatalf("counter = %q, want 9 (the combined round's effect must stand)", got)
	}
}

func TestDataDirDurableCrashRecover(t *testing.T) {
	// WithDataDir: stable state lives on disk. A crashed store loses its
	// whole process image; recovery replays the WAL and rejoins St with
	// the committed state intact.
	dir := t.TempDir()
	sys := openT(t, arjuna.WithServers(1), arjuna.WithStores(2), arjuna.WithDataDir(dir))
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	for i := 0; i < 3; i++ {
		if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, err := tx.Object(obj).Invoke(ctx, "add", []byte("2"))
			return err
		}); err != nil {
			t.Fatalf("add %d: %v", i, err)
		}
	}
	if err := sys.Crash("st1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.StoreState("st1", obj); !errors.Is(err, arjuna.ErrUnreachable) {
		t.Fatalf("crashed store state err = %v, want ErrUnreachable", err)
	}
	// Work continues on the surviving store (st1 is excluded from St).
	if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("2"))
		return err
	}); err != nil {
		t.Fatalf("add with st1 down: %v", err)
	}
	if err := sys.Recover(ctx, "st1"); err != nil {
		t.Fatalf("recover st1: %v", err)
	}
	data, seq, err := sys.StoreState("st1", obj)
	if err != nil || string(data) != "8" {
		t.Fatalf("st1 after disk recovery = %q@%d (%v), want 8 (caught up)", data, seq, err)
	}
	if got := counterValue(t, sys, obj); got != "8" {
		t.Fatalf("counter = %q, want 8", got)
	}
}

func TestDataDirStateOutlivesDeployment(t *testing.T) {
	// A second deployment opened on the same data dir resumes from the
	// first one's committed state — the property no in-memory backend can
	// offer.
	dir := t.TempDir()
	var obj uid.UID
	{
		sys := openT(t, arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithDataDir(dir))
		cl := clientT(t, sys, "c1")
		obj = sys.Objects()[0]
		ctx := context.Background()
		if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, err := tx.Object(obj).Invoke(ctx, "add", []byte("41"))
			return err
		}); err != nil {
			t.Fatal(err)
		}
		// Close flushes and releases every node's directory lock; the
		// second deployment could not open the dir while this one lives.
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
	}
	sys2 := openT(t, arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithDataDir(dir))
	data, seq, err := sys2.StoreState("st1", obj)
	if err != nil || string(data) != "41" || seq != 2 {
		t.Fatalf("replayed state = %q@%d (%v), want 41@2", data, seq, err)
	}
}
