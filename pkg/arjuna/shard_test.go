package arjuna_test

import (
	"context"
	"errors"
	"slices"
	"strconv"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
	"repro/pkg/arjuna"
)

// crossShardPair returns two pre-created objects the placement service
// put on different shards. Object UIDs are minted deterministically, so
// the pair is stable across runs.
func crossShardPair(t *testing.T, sys *arjuna.System) (a, b uid.UID) {
	t.Helper()
	objs := sys.Objects()
	for _, x := range objs[1:] {
		if sys.ShardOf(x) != sys.ShardOf(objs[0]) {
			return objs[0], x
		}
	}
	t.Fatalf("all %d objects landed on shard %d; raise WithObjects", len(objs), sys.ShardOf(objs[0]))
	return
}

func TestShardedPlacementTable(t *testing.T) {
	sys := openT(t,
		arjuna.WithShards(3), arjuna.WithServers(1), arjuna.WithStores(1),
		arjuna.WithObjects(8))
	if sys.ShardCount() != 3 {
		t.Fatalf("ShardCount = %d, want 3", sys.ShardCount())
	}
	shards := sys.Shards()
	seen := map[transport.Addr]bool{}
	for i, sh := range shards {
		if sh.ID != i+1 {
			t.Fatalf("shard %d has ID %d", i, sh.ID)
		}
		if len(sh.Servers) != 1 || len(sh.Stores) != 1 {
			t.Fatalf("shard %d topology = %d servers / %d stores, want 1/1", sh.ID, len(sh.Servers), len(sh.Stores))
		}
		// Every shard's nodes are its own: groups share nothing.
		for _, n := range append([]transport.Addr{sh.DB}, append(sh.Servers, sh.Stores...)...) {
			if seen[n] {
				t.Fatalf("node %s appears in two shards", n)
			}
			seen[n] = true
		}
	}
	counts := map[int]int{}
	for _, id := range sys.Objects() {
		s := sys.ShardOf(id)
		if s < 1 || s > 3 {
			t.Fatalf("object %v placed on shard %d outside [1,3]", id, s)
		}
		counts[s]++
	}
	if len(counts) < 2 {
		t.Fatalf("8 objects all hashed to one shard: %v", counts)
	}

	// Every object is usable through the placement-aware client.
	cl := clientT(t, sys, "c1")
	ctx := context.Background()
	for _, id := range sys.Objects() {
		if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, err := tx.Object(id).Invoke(ctx, "add", []byte("1"))
			return err
		}); err != nil {
			t.Fatalf("add on shard-%d object: %v", sys.ShardOf(id), err)
		}
		if got := counterValue(t, sys, id); got != "1" {
			t.Fatalf("object on shard %d = %q, want 1", sys.ShardOf(id), got)
		}
	}
}

func TestShardedSingleShardKeepsFastPaths(t *testing.T) {
	// Sharding must not tax actions that stay on one shard: a write
	// through a single-server single-store group still collapses to the
	// combined one-phase round, and a read-only action still skips phase
	// two and the outcome log.
	sys := openT(t, arjuna.WithShards(3), arjuna.WithServers(1), arjuna.WithStores(1))
	obj := sys.Objects()[0]
	ctx := context.Background()

	rep, err := clientT(t, sys, "c1").Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("5"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OnePhase || rep.OutcomeLogged || rep.CommitVoters != 1 {
		t.Fatalf("single-shard write report = %+v, want one-phase, unlogged", rep)
	}

	rep, err = clientT(t, sys, "c1", arjuna.ClientReadOnly()).Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Read(ctx, "get", nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ReadOnlyVoters != 1 || rep.CommitVoters != 0 || rep.OutcomeLogged {
		t.Fatalf("single-shard read report = %+v, want all-read-only, unlogged", rep)
	}
}

func TestCrossShardCommitAndAbort(t *testing.T) {
	sys := openT(t,
		arjuna.WithShards(3), arjuna.WithServers(1), arjuna.WithStores(1),
		arjuna.WithObjects(8))
	cl := clientT(t, sys, "c1")
	a, b := crossShardPair(t, sys)
	ctx := context.Background()

	// Commit: one coordinator, participants on two groups, ordinary
	// logged 2PC (the one-phase path must refuse across shards).
	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		if _, err := tx.Object(a).Invoke(ctx, "add", []byte("3")); err != nil {
			return err
		}
		_, err := tx.Object(b).Invoke(ctx, "add", []byte("5"))
		return err
	})
	if err != nil {
		t.Fatalf("cross-shard atomic: %v", err)
	}
	if rep.OnePhase || !rep.OutcomeLogged || rep.CommitVoters != 2 {
		t.Fatalf("cross-shard report = %+v, want 2 commit voters through logged 2PC", rep)
	}
	if va, vb := counterValue(t, sys, a), counterValue(t, sys, b); va != "3" || vb != "5" {
		t.Fatalf("committed states = %q,%q, want 3,5", va, vb)
	}

	// Abort: failing after both updates must undo both shards.
	errBoom := errors.New("boom")
	if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		if _, err := tx.Object(a).Invoke(ctx, "add", []byte("10")); err != nil {
			return err
		}
		if _, err := tx.Object(b).Invoke(ctx, "add", []byte("10")); err != nil {
			return err
		}
		return errBoom
	}); !errors.Is(err, arjuna.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if va, vb := counterValue(t, sys, a), counterValue(t, sys, b); va != "3" || vb != "5" {
		t.Fatalf("states after cross-shard abort = %q,%q, want 3,5 (unchanged)", va, vb)
	}
}

func TestCrossShardCommitSurvivesParticipantCrash(t *testing.T) {
	// One store of shard B dies the instant its commit vote is on the
	// wire — it will only learn the outcome from the coordinator's log at
	// restart. The cross-shard action must still commit through the
	// surviving replica, and recovery must apply the in-doubt intention
	// exactly once.
	sys := openT(t,
		arjuna.WithShards(3), arjuna.WithServers(1), arjuna.WithStores(2),
		arjuna.WithObjects(8))
	cl := clientT(t, sys, "c1")
	a, b := crossShardPair(t, sys)
	ctx := context.Background()

	target := sys.Shards()[sys.ShardOf(b)-1].Stores[0]
	rule := transport.ToMethod(target, store.ServiceName, store.MethodPrepare)
	sys.Faults().OnReply(1, rule, func(transport.Request) { _ = sys.Crash(string(target)) })

	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		if _, err := tx.Object(a).Invoke(ctx, "add", []byte("3")); err != nil {
			return err
		}
		_, err := tx.Object(b).Invoke(ctx, "add", []byte("5"))
		return err
	})
	if err != nil {
		t.Fatalf("cross-shard atomic with crashed participant: %v", err)
	}
	if !rep.Committed {
		t.Fatal("not committed")
	}
	if !slices.Contains(rep.ExcludedStores, target) {
		t.Fatalf("excluded stores = %v, want %s (crashed after voting)", rep.ExcludedStores, target)
	}
	if va, vb := counterValue(t, sys, a), counterValue(t, sys, b); va != "3" || vb != "5" {
		t.Fatalf("committed states = %q,%q, want 3,5", va, vb)
	}

	// Recovery resolves the prepared intention against the outcome log
	// and rejoins the St view with the committed version.
	if err := sys.Recover(ctx, string(target)); err != nil {
		t.Fatal(err)
	}
	data, seq, err := sys.StoreState(string(target), b)
	if err != nil || string(data) != "5" || seq != 2 {
		t.Fatalf("recovered store state = %q@%d (%v), want 5@2", data, seq, err)
	}
	st, err := sys.StoreView(ctx, b)
	if err != nil || len(st) != 2 {
		t.Fatalf("St after recovery = %v (%v), want both stores", st, err)
	}
}

func TestCrossShardAbortCleansCrashedParticipant(t *testing.T) {
	// The abort-side in-doubt shape across shards: shard B's only store
	// dies AND its prepare acknowledgement is lost, so the coordinator
	// aborts while the dead store holds a prepared intention. Shard A's
	// already-prepared half must roll back, and presumed abort must
	// discard the orphaned intention at recovery. (With a second store in
	// the view this same fault commits instead — the §4.2 exclusion rule —
	// which TestCrossShardCommitSurvivesParticipantCrash covers.)
	sys := openT(t,
		arjuna.WithShards(3), arjuna.WithServers(1), arjuna.WithStores(1),
		arjuna.WithObjects(8))
	cl := clientT(t, sys, "c1")
	a, b := crossShardPair(t, sys)
	ctx := context.Background()

	target := sys.Shards()[sys.ShardOf(b)-1].Stores[0]
	rule := transport.ToMethod(target, store.ServiceName, store.MethodPrepare)
	sys.Faults().DropReplies(1, rule)
	sys.Faults().OnReply(1, rule, func(transport.Request) { _ = sys.Crash(string(target)) })

	if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		if _, err := tx.Object(a).Invoke(ctx, "add", []byte("7")); err != nil {
			return err
		}
		_, err := tx.Object(b).Invoke(ctx, "add", []byte("7"))
		return err
	}); !errors.Is(err, arjuna.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted (prepare ack lost with the node)", err)
	}
	// Shard A's participant rolled back; shard B's store is down, its
	// committed state inspected after recovery below.
	if va := counterValue(t, sys, a); va != "0" {
		t.Fatalf("shard A state after aborted cross-shard action = %q, want 0", va)
	}

	if err := sys.Recover(ctx, string(target)); err != nil {
		t.Fatal(err)
	}
	data, seq, err := sys.StoreState(string(target), b)
	if err != nil || string(data) != "0" || seq != 1 {
		t.Fatalf("recovered store state = %q@%d (%v), want initial 0@1 (intention discarded)", data, seq, err)
	}
	// The cleaned shard keeps working.
	if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(b).Invoke(ctx, "add", []byte("2"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, sys, b); got != "2" {
		t.Fatalf("post-recovery value = %q, want 2", got)
	}
}

func TestRebalanceMovesObjectAndStaleClientRebinds(t *testing.T) {
	sys := openT(t, arjuna.WithShards(3), arjuna.WithServers(1), arjuna.WithStores(1))
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	// The client binds once pre-move, caching the object's placement.
	if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("5"))
		return err
	}); err != nil {
		t.Fatal(err)
	}

	src := sys.ShardOf(obj)
	target := src%3 + 1
	if err := sys.Rebalance(ctx, obj, target); err != nil {
		t.Fatalf("rebalance %d → %d: %v", src, target, err)
	}
	if got := sys.ShardOf(obj); got != target {
		t.Fatalf("ShardOf after rebalance = %d, want %d", got, target)
	}
	// Value continuity: the committed state moved with the object.
	if got := counterValue(t, sys, obj); got != "5" {
		t.Fatalf("state after rebalance = %q, want 5", got)
	}
	st, err := sys.StoreView(ctx, obj)
	if err != nil {
		t.Fatal(err)
	}
	want := sys.Shards()[target-1].Stores
	if !slices.Equal(st, want) {
		t.Fatalf("St after rebalance = %v, want target shard's stores %v", st, want)
	}

	// The same client still holds the stale placement. Its next bind hits
	// the old shard, sees the object gone, re-resolves through the bumped
	// epoch and retries on the new shard — invisibly to the caller, and
	// still on the single-shard fast path.
	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("7"))
		return err
	})
	if err != nil {
		t.Fatalf("stale client after rebalance: %v", err)
	}
	if !rep.OnePhase {
		t.Fatalf("post-rebalance report = %+v, want one-phase on the new shard", rep)
	}
	if got := counterValue(t, sys, obj); got != "12" {
		t.Fatalf("state = %q, want 12 (both adds applied once)", got)
	}
}

func TestRebalanceBatchMovesAllUnderOneEpochBump(t *testing.T) {
	sys := openT(t, arjuna.WithShards(3), arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithObjects(6))
	cl := clientT(t, sys, "c1")
	ctx := context.Background()

	// Seed distinct values so continuity is checked per object.
	objs := sys.Objects()
	for i, obj := range objs {
		delta := strconv.Itoa(i + 1)
		if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, err := tx.Object(obj).Invoke(ctx, "add", []byte(delta))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Move the whole namespace to shard 2 — including objects already
	// there, which the batch move must skip, and objects from several
	// distinct source shards committed under the one migration action.
	const target = 2
	if err := sys.RebalanceBatch(ctx, objs, target); err != nil {
		t.Fatalf("batch rebalance: %v", err)
	}
	for i, obj := range objs {
		if got := sys.ShardOf(obj); got != target {
			t.Fatalf("object %d on shard %d after batch move, want %d", i, got, target)
		}
		if got, want := counterValue(t, sys, obj), strconv.Itoa(i+1); got != want {
			t.Fatalf("object %d state = %q after batch move, want %q", i, got, want)
		}
	}

	// The batch is usable at the target — the stale client re-binds
	// through the bumped epochs.
	for _, obj := range objs {
		if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, err := tx.Object(obj).Invoke(ctx, "add", []byte("10"))
			return err
		}); err != nil {
			t.Fatalf("post-move write to %v: %v", obj, err)
		}
	}
}

func TestRebalanceRefusesWhileActionInFlight(t *testing.T) {
	// Rebalance rides the §4.2 quiescence rule: while an action holds the
	// object in a use list, Deregister refuses, so a migration can never
	// yank an object out from under an in-flight binding.
	sys := openT(t, arjuna.WithShards(3), arjuna.WithServers(1), arjuna.WithStores(1))
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	bound := make(chan struct{})
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			if _, err := tx.Object(obj).Invoke(ctx, "add", []byte("2")); err != nil {
				return err
			}
			close(bound)
			<-release
			return nil
		})
		done <- err
	}()
	<-bound

	src := sys.ShardOf(obj)
	target := src%3 + 1
	rctx, cancel := context.WithTimeout(ctx, 250*time.Millisecond)
	err := sys.Rebalance(rctx, obj, target)
	cancel()
	if err == nil {
		t.Fatal("rebalance succeeded while an action held the object in use")
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight action: %v", err)
	}
	if got := counterValue(t, sys, obj); got != "2" {
		t.Fatalf("state = %q, want 2 (the racing action won)", got)
	}

	// Quiescent now: the same migration goes through, state intact.
	if err := sys.Rebalance(ctx, obj, target); err != nil {
		t.Fatalf("rebalance after quiescence: %v", err)
	}
	if got, s := counterValue(t, sys, obj), sys.ShardOf(obj); got != "2" || s != target {
		t.Fatalf("after rebalance: state=%q shard=%d, want 2 on shard %d", got, s, target)
	}
}

func TestRebalanceUnsharded(t *testing.T) {
	sys := openT(t)
	if err := sys.Rebalance(context.Background(), sys.Objects()[0], 2); !errors.Is(err, arjuna.ErrNotSharded) {
		t.Fatalf("err = %v, want ErrNotSharded", err)
	}
}
