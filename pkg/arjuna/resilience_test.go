package arjuna_test

import (
	"context"
	"errors"
	"slices"
	"testing"
	"time"

	"repro/pkg/arjuna"

	"repro/internal/transport"
)

// openResilient builds a small deployment with aggressive breakers (trip
// after 2 failures, probe never expires within the test) so breaker
// behaviour is observable without burning timeouts.
func openResilient(t *testing.T, extra ...arjuna.Option) *arjuna.System {
	t.Helper()
	opts := append([]arjuna.Option{
		arjuna.WithServers(2),
		arjuna.WithStores(2),
		arjuna.WithBreakerConfig(arjuna.BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour}),
	}, extra...)
	return openT(t, opts...)
}

func TestAtomicFastFailsThroughOpenBreaker(t *testing.T) {
	sys := openResilient(t)
	cl := clientT(t, sys, "c1", arjuna.ClientRetry(1, 0))
	obj := sys.Objects()[0]
	ctx := context.Background()

	// Warm up: a healthy commit, so the client's caches are populated.
	if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
		return err
	}); err != nil {
		t.Fatalf("healthy atomic: %v", err)
	}

	// Kill both servers: the client's own activation calls fail, the
	// breakers trip, and subsequent attempts fast-fail with the typed
	// sentinel (still classified ErrNoServers — the breaker cause rides
	// along on the chain).
	if err := sys.Crash("sv1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Crash("sv2"); err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 6; i++ {
		_, last = cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
			return err
		})
		if last == nil {
			t.Fatal("atomic succeeded with every server down")
		}
		if errors.Is(last, arjuna.ErrPeerUnavailable) {
			break
		}
	}
	if !errors.Is(last, arjuna.ErrPeerUnavailable) {
		t.Fatalf("err = %v, want ErrPeerUnavailable after breakers trip", last)
	}
	// Still ErrNoServers — degraded mode does not change the category a
	// caller branches on, it adds a more specific cause.
	if !errors.Is(last, arjuna.ErrNoServers) {
		t.Fatalf("err = %v, want ErrNoServers too", last)
	}

	// The report names the skipped peers.
	rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
		return err
	})
	if err == nil {
		t.Fatal("atomic succeeded with every server down")
	}
	if len(rep.BreakerSkipped) == 0 {
		t.Fatalf("report = %+v, want BreakerSkipped naming the servers", rep)
	}
	for _, p := range rep.BreakerSkipped {
		if p != "sv1" && p != "sv2" {
			t.Fatalf("unexpected skipped peer %q", p)
		}
	}

	// BreakerStats surfaces the open breakers.
	var open []arjuna.BreakerStat
	for _, st := range sys.BreakerStats() {
		if st.State == "open" {
			open = append(open, st)
		}
	}
	if len(open) == 0 {
		t.Fatalf("BreakerStats = %+v, want at least one open breaker", sys.BreakerStats())
	}

	// Recovery resets the breakers toward the servers; commits work again.
	if err := sys.Recover(ctx, "sv1"); err != nil {
		t.Fatalf("recover sv1: %v", err)
	}
	if err := sys.Recover(ctx, "sv2"); err != nil {
		t.Fatalf("recover sv2: %v", err)
	}
	if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
		_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
		return err
	}); err != nil {
		t.Fatalf("atomic after recovery: %v", err)
	}
}

func TestWithoutBreakersDisablesFastFail(t *testing.T) {
	sys := openT(t, arjuna.WithoutBreakers())
	cl := clientT(t, sys, "c1", arjuna.ClientRetry(1, 0))
	obj := sys.Objects()[0]
	ctx := context.Background()

	if err := sys.Crash("st1"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Crash("st2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		_, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
			return err
		})
		if errors.Is(err, arjuna.ErrPeerUnavailable) {
			t.Fatalf("breaker fast-fail with WithoutBreakers: %v", err)
		}
	}
	if stats := sys.BreakerStats(); len(stats) != 0 {
		t.Fatalf("BreakerStats = %+v, want none", stats)
	}
}

func TestHealthEndpointAndDetector(t *testing.T) {
	sys := openResilient(t, arjuna.WithHealthDetector(5*time.Millisecond))
	ctx := context.Background()

	// Every node answers the health RPC while healthy.
	for _, h := range sys.Health(ctx) {
		if !h.Up {
			t.Fatalf("node %s reported down while healthy", h.Node)
		}
	}
	if sus := sys.Suspected(); len(sus) != 0 {
		t.Fatalf("suspected = %v, want none", sus)
	}

	// A crashed node turns up suspected, and Health marks it down.
	if err := sys.Crash("sv1"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !slices.Contains(sys.Suspected(), transport.Addr("sv1")) {
		if time.Now().After(deadline) {
			t.Fatalf("detector never suspected sv1: %v", sys.Suspected())
		}
		time.Sleep(2 * time.Millisecond)
	}
	hctx, cancel := context.WithTimeout(ctx, 200*time.Millisecond)
	defer cancel()
	for _, h := range sys.Health(hctx) {
		if h.Node == "sv1" && h.Up {
			t.Fatal("health reports crashed sv1 as up")
		}
	}

	// Recovery clears the suspicion.
	if err := sys.Recover(ctx, "sv1"); err != nil {
		t.Fatalf("recover sv1: %v", err)
	}
	for slices.Contains(sys.Suspected(), transport.Addr("sv1")) {
		if time.Now().After(deadline) {
			t.Fatalf("detector never cleared sv1: %v", sys.Suspected())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestPlacementReplicaDeathKeepsBindsLive(t *testing.T) {
	sys := openT(t,
		arjuna.WithShards(2),
		arjuna.WithObjects(4),
		arjuna.WithBreakerConfig(arjuna.BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour}),
	)
	ctx := context.Background()
	obj := sys.Objects()[0]

	// All three placement replicas are part of the deployment's status.
	var placements []transport.Addr
	for _, st := range sys.Status() {
		if st.Kind == "placement" {
			placements = append(placements, st.Name)
		}
	}
	if len(placements) != 3 {
		t.Fatalf("placement replicas = %v, want 3", placements)
	}

	// Killing any single replica leaves bind and commit live: a fresh
	// client (no cached placement) must resolve through a survivor.
	for _, victim := range placements {
		if err := sys.Crash(string(victim)); err != nil {
			t.Fatal(err)
		}
		cl := clientT(t, sys, "c1")
		if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
			return err
		}); err != nil {
			t.Fatalf("atomic with placement replica %s down: %v", victim, err)
		}
		if err := sys.Recover(ctx, string(victim)); err != nil {
			t.Fatalf("recover %s: %v", victim, err)
		}
	}
}

func TestWithPlacementReplicasOne(t *testing.T) {
	sys := openT(t, arjuna.WithShards(2), arjuna.WithPlacementReplicas(1))
	var placements []transport.Addr
	for _, st := range sys.Status() {
		if st.Kind == "placement" {
			placements = append(placements, st.Name)
		}
	}
	if len(placements) != 1 {
		t.Fatalf("placement replicas = %v, want 1", placements)
	}
	cl := clientT(t, sys, "c1")
	if _, err := cl.Atomic(context.Background(), func(tx *arjuna.Txn) error {
		_, err := tx.Object(sys.Objects()[0]).Invoke(context.Background(), "add", []byte("1"))
		return err
	}); err != nil {
		t.Fatalf("atomic: %v", err)
	}
}
