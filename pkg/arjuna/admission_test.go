package arjuna_test

import (
	"context"
	"errors"
	"strconv"
	"testing"
	"time"

	"repro/pkg/arjuna"
)

// TestAdmissionGateSerializes: with WithAdmission(1) only one top-level
// Atomic is in flight at a time — a second caller parks at the gate until
// the first action's slot frees, then runs and commits normally.
func TestAdmissionGateSerializes(t *testing.T) {
	sys, err := arjuna.Open(
		arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithClients(2),
		arjuna.WithAdmission(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	obj := sys.Objects()[0]

	c1, err := sys.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sys.Client("c2")
	if err != nil {
		t.Fatal(err)
	}

	holderIn := make(chan struct{})
	release := make(chan struct{})
	holderDone := make(chan error, 1)
	go func() {
		_, err := c1.Atomic(context.Background(), func(tx *arjuna.Txn) error {
			close(holderIn)
			<-release
			_, ierr := tx.Object(obj).Invoke(context.Background(), "add", []byte("1"))
			return ierr
		})
		holderDone <- err
	}()
	<-holderIn

	// The second Atomic must be parked at the gate: its closure must not
	// have started while the first action holds the only slot.
	entered := make(chan struct{})
	gatedDone := make(chan error, 1)
	go func() {
		_, err := c2.Atomic(context.Background(), func(tx *arjuna.Txn) error {
			close(entered)
			_, ierr := tx.Object(obj).Invoke(context.Background(), "add", []byte("1"))
			return ierr
		})
		gatedDone <- err
	}()
	select {
	case <-entered:
		t.Fatal("second Atomic ran while the first held the only admission slot")
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-holderDone; err != nil {
		t.Fatalf("holder commit: %v", err)
	}
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("second Atomic never admitted after the slot freed")
	}
	if err := <-gatedDone; err != nil {
		t.Fatalf("gated commit: %v", err)
	}
	if got := counterValue(t, sys, obj); got != strconv.Itoa(2) {
		t.Fatalf("counter = %q, want 2", got)
	}
}

// TestAdmissionGateCancel: a caller whose context expires while parked at
// the admission gate aborts cleanly — ErrAborted carrying the context's
// error — without having started any action work.
func TestAdmissionGateCancel(t *testing.T) {
	sys, err := arjuna.Open(
		arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithClients(2),
		arjuna.WithAdmission(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	c1, err := sys.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sys.Client("c2")
	if err != nil {
		t.Fatal(err)
	}

	holderIn := make(chan struct{})
	release := make(chan struct{})
	holderDone := make(chan error, 1)
	go func() {
		_, err := c1.Atomic(context.Background(), func(tx *arjuna.Txn) error {
			close(holderIn)
			<-release
			return nil
		})
		holderDone <- err
	}()
	<-holderIn

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	rep, err := c2.Atomic(ctx, func(tx *arjuna.Txn) error {
		t.Error("closure ran despite the gate being full")
		return nil
	})
	if !errors.Is(err, arjuna.ErrAborted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("gated cancel error = %v, want ErrAborted wrapping deadline", err)
	}
	if rep == nil || rep.Committed {
		t.Fatalf("report = %+v, want non-nil uncommitted", rep)
	}

	close(release)
	if err := <-holderDone; err != nil {
		t.Fatalf("holder commit: %v", err)
	}
}

// TestFastBindClientCommits: the ClientFastBind option threads through
// System.Client to the binder — actions bind with commutative use-count
// locking and still commit correct state.
func TestFastBindClientCommits(t *testing.T) {
	sys, err := arjuna.Open(arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithClients(1))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	obj := sys.Objects()[0]

	cl, err := sys.Client("c1", arjuna.ClientFastBind())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.Atomic(context.Background(), func(tx *arjuna.Txn) error {
			_, ierr := tx.Object(obj).Invoke(context.Background(), "add", []byte("1"))
			return ierr
		}); err != nil {
			t.Fatalf("atomic %d: %v", i, err)
		}
	}
	if got := counterValue(t, sys, obj); got != strconv.Itoa(3) {
		t.Fatalf("counter = %q, want 3", got)
	}
}
