package arjuna_test

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
	"repro/pkg/arjuna"
)

// chaosSeed pins the simulated network's latency schedule for the
// crash-mid-batched-commit scenarios so a failure replays exactly.
const chaosSeed = 9

// batchUnderHeldLock parks one transaction on obj's write lock, launches
// followers Apply-ing delta each (they enqueue behind the held lock), then
// releases the holder so its commit carries the folded batch. It returns
// the holder's commit error and the followers' per-op results.
func batchUnderHeldLock(t *testing.T, sys *arjuna.System, followers int, retries int) (holderErr error, committed, batched int64, followerErrs []error) {
	t.Helper()
	obj := sys.Objects()[0]
	holder, err := sys.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	locked := make(chan struct{})
	release := make(chan struct{})
	holderDone := make(chan error, 1)
	go func() {
		_, err := holder.Atomic(context.Background(), func(tx *arjuna.Txn) error {
			if _, err := tx.Object(obj).Invoke(context.Background(), "add", []byte("1")); err != nil {
				return err
			}
			close(locked)
			<-release
			return nil
		})
		holderDone <- err
	}()
	<-locked

	errsMu := sync.Mutex{}
	var wg sync.WaitGroup
	var nCommitted, nBatched int64
	for i := 0; i < followers; i++ {
		cl, err := sys.Client("c"+strconv.Itoa(i+2), arjuna.ClientRetry(retries, time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, rep, err := cl.Apply(context.Background(), obj, "add", []byte("1"))
			if err == nil {
				atomic.AddInt64(&nCommitted, 1)
				if rep.Batched {
					atomic.AddInt64(&nBatched, 1)
				}
				return
			}
			errsMu.Lock()
			followerErrs = append(followerErrs, err)
			errsMu.Unlock()
		}()
	}
	// The followers bind and enqueue behind the held write lock; give them
	// ample real time (the simulated network adds at most a few ms) before
	// the holder's commit drains the queue.
	time.Sleep(150 * time.Millisecond)
	close(release)
	holderErr = <-holderDone
	wg.Wait()
	return holderErr, nCommitted, nBatched, followerErrs
}

// TestBatchedCommitSurvivesStoreCrash crashes one of two St replicas the
// instant its prepare vote for the batch-carrying commit is on the wire.
// The commit must go through via the surviving replica with every folded
// op included — all N commit — and recovery must catch the crashed store
// up to the full batched state, not some partial fold.
func TestBatchedCommitSurvivesStoreCrash(t *testing.T) {
	sys := openT(t,
		arjuna.WithServers(1), arjuna.WithStores(2), arjuna.WithClients(6),
		arjuna.WithMemNetwork(transport.MemOptions{
			BaseLatency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond, Seed: chaosSeed,
		}))
	obj := sys.Objects()[0]
	target := sys.Stores()[0]
	rule := transport.ToMethod(target, store.ServiceName, store.MethodPrepare)
	sys.Faults().OnReply(1, rule, func(transport.Request) { _ = sys.Crash(string(target)) })

	const followers = 4
	holderErr, committed, batched, followerErrs := batchUnderHeldLock(t, sys, followers, 10)
	if holderErr != nil {
		t.Fatalf("carrying commit with crashed store: %v", holderErr)
	}
	for _, err := range followerErrs {
		t.Errorf("follower: %v", err)
	}
	if committed != followers {
		t.Fatalf("committed followers = %d, want %d", committed, followers)
	}
	if batched == 0 {
		t.Fatal("no follower was folded into the carrying commit")
	}

	want := strconv.Itoa(1 + followers)
	if got := counterValue(t, sys, obj); got != want {
		t.Fatalf("counter = %q after batched commit through surviving store, want %q", got, want)
	}

	// The crashed replica recovers to the complete batched state.
	if err := sys.Recover(context.Background(), string(target)); err != nil {
		t.Fatal(err)
	}
	data, _, err := sys.StoreState(string(target), obj)
	if err != nil || string(data) != want {
		t.Fatalf("recovered store state = %q (%v), want %q", data, err, want)
	}
	t.Logf("committed=%d batched=%d", committed, batched)
}

// TestBatchedCommitAbortsAtomically kills the only store just as the
// batch-carrying one-phase write-back is on the wire (the write never
// lands). The carrying action and every folded op must abort — none of
// the N commit — and after recovery the counter shows no partial fold.
func TestBatchedCommitAbortsAtomically(t *testing.T) {
	sys := openT(t,
		arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithClients(6),
		arjuna.WithMemNetwork(transport.MemOptions{
			BaseLatency: 200 * time.Microsecond, Jitter: 100 * time.Microsecond, Seed: chaosSeed,
		}))
	obj := sys.Objects()[0]
	target := sys.Stores()[0]
	// Crash the store the instant the write-back reaches it: the OnRequest
	// hook runs before delivery, so the crashed node's endpoint is gone and
	// the write never lands.
	rule := transport.ToMethod(target, store.ServiceName, store.MethodCommitOnePhase)
	sys.Faults().OnRequest(1, rule, func(transport.Request) { _ = sys.Crash(string(target)) })

	const followers = 4
	holderErr, committed, _, followerErrs := batchUnderHeldLock(t, sys, followers, 1)
	if !errors.Is(holderErr, arjuna.ErrAborted) {
		t.Fatalf("carrying commit err = %v, want ErrAborted (store died under the write-back)", holderErr)
	}
	if committed != 0 {
		t.Fatalf("%d folded ops committed while their carrying action aborted", committed)
	}
	if len(followerErrs) != followers {
		t.Fatalf("follower errors = %d, want %d (all aborted with the batch)", len(followerErrs), followers)
	}
	for _, err := range followerErrs {
		if !errors.Is(err, arjuna.ErrAborted) {
			t.Errorf("follower err = %v, want ErrAborted", err)
		}
	}

	// Recovery finds the pre-batch state: the snapshot restore undid the
	// leader's own write and every fold with it.
	if err := sys.Recover(context.Background(), string(target)); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, sys, obj); got != "0" {
		t.Fatalf("counter after recovery = %q, want 0 (no partial batch)", got)
	}
	// The object remains usable: a fresh solo add commits cleanly.
	cl, err := sys.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Apply(context.Background(), obj, "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if got := counterValue(t, sys, obj); got != "1" {
		t.Fatalf("counter after post-recovery add = %q, want 1", got)
	}
}
