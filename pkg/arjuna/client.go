package arjuna

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"time"

	"repro/internal/action"
	"repro/internal/core"
	"repro/internal/lease"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/uid"
)

// Default Atomic retry bounds for transient refusals (lock conflicts and
// overload backpressure); override per client with ClientRetry.
const (
	defaultRetries = 3
	defaultBackoff = 2 * time.Millisecond
	// maxBackoff caps the exponential growth of the retry delay; beyond
	// this, longer sleeps only add latency without shedding more load.
	maxBackoff = 250 * time.Millisecond
)

// retryDelay returns the sleep before retrying after the n-th failed
// attempt (1-based): exponential growth from base, capped at maxBackoff,
// with ±50% jitter so clients refused together do not retry together —
// the single shared policy for lock refusals and overload backpressure.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Client runs atomic actions from one client node. Obtain with
// System.Client; a Client is safe for sequential use (one Atomic at a
// time — run concurrent workloads from separate Clients).
type Client struct {
	sys  *System
	name transport.Addr
	// binder is the classic single-group binder, or the placement-aware
	// one when the deployment is sharded.
	binder core.ActionBinder
	cfg    clientConfig
	// leases is the client's L1 view over its node's shared lease cache;
	// nil unless the deployment was opened WithReadLeases (and the
	// client replicates single-copy passive).
	leases *lease.Local
}

// Name returns the client's node address.
func (c *Client) Name() transport.Addr { return c.name }

// CommitReport describes the aftermath of one Atomic call: whether it
// committed, how many attempts it took, and the failure anatomy the
// binding and commit protocols observed along the way.
type CommitReport struct {
	// Committed reports whether the action's effects are permanent.
	Committed bool
	// Attempts is the number of times the action body ran (>1 when
	// transient lock refusals were retried).
	Attempts int
	// BrokenServers lists server bindings found broken during the final
	// attempt — the "hard way" failure-discovery cost of §4.1.
	BrokenServers []transport.Addr
	// ExcludedStores lists store nodes excluded from St views during
	// commit processing of the final attempt (§4.2).
	ExcludedStores []transport.Addr
	// PhaseTwoErrors lists participants whose phase-two commit call
	// failed after the commit point. The action IS committed; such
	// participants learn the outcome from the log at recovery.
	PhaseTwoErrors []error
	// ReadOnlyVoters and CommitVoters count the phase-one votes of the
	// final attempt (§4.1.2's read optimisation made visible): read-only
	// voters were released after phase one and took no part in phase two.
	ReadOnlyVoters int
	CommitVoters   int
	// OnePhase reports that the commit ran as a single combined
	// prepare+commit round with the action's only participant.
	OnePhase bool
	// OutcomeLogged reports whether the coordinator wrote a commit record.
	// All-read-only and one-phase commits skip the write — presumed abort
	// means no recovery will ever ask about them.
	OutcomeLogged bool
	// Batched reports that the action's write was folded into another
	// action's commit round (flat combining): the server executed it under
	// the lock holder's 2PC, and this action's own commit processing
	// finished locally with nothing to send.
	Batched bool
	// BatchSize is the number of operations the commit round that carried
	// this action's write folded — as the carrying leader or as a folded
	// follower (0 when the write was not part of any batch).
	BatchSize int
	// Overloads counts the attempts refused with ErrOverloaded across the
	// whole Atomic call (the final attempt included, if it failed so).
	Overloads int
	// QueueWait is the longest server-side lock or combiner-queue wait
	// observed by the final attempt's invocations.
	QueueWait time.Duration
	// BreakerSkipped lists peers the final attempt never called because
	// their circuit breakers were open — the action ran in degraded mode,
	// routing around nodes already known sick.
	BreakerSkipped []transport.Addr
	// LeaseReads counts the final attempt's invocations served entirely
	// from the client's lease cache — zero RPCs and zero lock-manager
	// traffic each (WithReadLeases).
	LeaseReads int
}

// Txn is one running atomic action. It is handed to the closure passed to
// Atomic and is only valid for the closure's duration.
type Txn struct {
	c       *Client
	act     *action.Action
	objects map[uid.UID]*Object
	// notes records the peers this action's calls skipped via breaker
	// fast-fail; surfaced as CommitReport.BreakerSkipped. The note
	// context is attached per call site (bind/invoke/commit) rather than
	// by wrapping runOnce's context, because the closure invokes objects
	// under the CALLER's context, not a derived one.
	notes *rpc.BreakerNotes
	// leased records the lease entries whose snapshots served this
	// action's cache-hit reads, for commit-time revalidation.
	leased []*lease.Entry
}

// noted attaches the transaction's breaker-note recorder to ctx.
func (t *Txn) noted(ctx context.Context) context.Context {
	return rpc.ContextWithNotes(ctx, t.notes)
}

// ID returns the underlying action's hierarchical identifier.
func (t *Txn) ID() string { return t.act.ID() }

// Object returns a handle on the identified persistent object. The handle
// is bound through the naming and binding service lazily, on its first
// Invoke/Read; repeated calls return the same handle.
func (t *Txn) Object(id uid.UID) *Object {
	if o, ok := t.objects[id]; ok {
		return o
	}
	o := &Object{t: t, id: id}
	t.objects[id] = o
	return o
}

// Object is a bound (or about-to-be-bound) handle on one persistent
// replicated object within one atomic action.
type Object struct {
	t       *Txn
	id      uid.UID
	bd      *core.Binding
	bindErr error
	// batched records that a solo invocation was folded into another
	// action's commit (surfaced in the CommitReport).
	batched bool
}

// ID returns the object's identifier.
func (o *Object) ID() uid.UID { return o.id }

func (o *Object) bind(ctx context.Context) error {
	if o.bindErr != nil {
		return o.bindErr
	}
	if o.bd != nil {
		return nil
	}
	bd, err := o.t.c.binder.Bind(o.t.noted(ctx), o.t.act, o.id)
	if err != nil {
		o.bindErr = MapError(err)
		return o.bindErr
	}
	o.bd = bd
	return nil
}

// Invoke calls a method on the object under the transaction's action,
// binding first if necessary. Errors are classified against the package's
// sentinels; returning one from the Atomic closure aborts the action.
//
// With WithReadLeases, a read-only method on an object the client holds
// a valid lease for — and has not yet bound in this action — runs
// locally on the leased snapshot instead: zero RPCs, zero lock-manager
// traffic.
func (o *Object) Invoke(ctx context.Context, method string, args []byte) ([]byte, error) {
	if out, ok := o.leasedRead(method, args); ok {
		return out, nil
	}
	if err := o.bind(ctx); err != nil {
		return nil, err
	}
	t0 := time.Now()
	out, err := o.bd.Invoke(o.t.noted(ctx), method, args)
	if err != nil {
		return nil, MapError(err)
	}
	o.harvestLease(t0)
	return out, nil
}

// leasedRead serves a read-only method from the client's lease cache
// when the object is still unbound and a valid lease is held. Once the
// object is bound, the action may already have written it, so reads
// must go to the server, whose locks give read-your-writes. Any
// anomaly (unknown class, non-read-only method, method error) falls
// back to the server path so semantics match the leaseless client.
func (o *Object) leasedRead(method string, args []byte) ([]byte, bool) {
	lc := o.t.c.leases
	if lc == nil || o.bd != nil || o.bindErr != nil {
		return nil, false
	}
	e, ok := lc.Get(o.id, time.Now())
	if !ok {
		return nil, false
	}
	cls, err := o.t.c.sys.w.Registry.Lookup(e.Snap.Class)
	if err != nil || !cls.IsReadOnly(method) {
		return nil, false
	}
	fn, err := cls.Method(method)
	if err != nil {
		return nil, false
	}
	_, out, err := fn(e.Snap.State, args)
	if err != nil {
		return nil, false
	}
	o.t.leased = append(o.t.leased, e)
	return out, true
}

// harvestLease caches a lease the server attached to an invocation.
// The snapshot's expiry is computed from t0 — an instant BEFORE the
// request was sent — so whatever the clocks did, the cached lease dies
// no later than the granting server believes it does.
func (o *Object) harvestLease(t0 time.Time) {
	lc := o.t.c.leases
	if lc == nil {
		return
	}
	if g, ok := o.bd.LeaseGrant(); ok {
		lc.Put(lease.Snapshot{UID: o.id, Class: g.Class, State: g.State, Seq: g.Seq, Expiry: t0.Add(g.TTL)})
	}
}

// Read invokes a read-only method. It is Invoke under a name that states
// intent; pair it with a ClientReadOnly client for the §4.1.2 read
// optimisation.
func (o *Object) Read(ctx context.Context, method string, args []byte) ([]byte, error) {
	return o.Invoke(ctx, method, args)
}

// apply is the solo-invoke path behind Client.Apply.
func (o *Object) apply(ctx context.Context, method string, args []byte) ([]byte, error) {
	if err := o.bind(ctx); err != nil {
		return nil, err
	}
	out, batched, err := o.bd.InvokeSolo(o.t.noted(ctx), method, args)
	if err != nil {
		return nil, MapError(err)
	}
	o.batched = batched
	return out, nil
}

// Atomic runs fn inside one top-level atomic action: begin, let fn bind
// and invoke objects through the Txn, then commit — or abort, undoing all
// effects, if fn returns an error or commit cannot prepare. Transient
// refusals — lock conflicts (ErrLockRefused, the §4.2.1 conflict) and
// overload backpressure (ErrOverloaded, a full or expired lock wait
// queue) — are retried with capped, jittered exponential backoff per the
// client's ClientRetry setting.
//
// The returned error is nil exactly when the action committed; otherwise
// it carries ErrAborted plus the classified cause. The CommitReport is
// non-nil in both cases and describes the final attempt.
func (c *Client) Atomic(ctx context.Context, fn func(tx *Txn) error) (*CommitReport, error) {
	if gate := c.sys.admit; gate != nil {
		// WithAdmission: hold one in-flight slot for the whole action,
		// retries included. Parking here is the cheap place to wait —
		// before any bind, lock or 2PC work has been started.
		select {
		case gate <- struct{}{}:
			defer func() { <-gate }()
		case <-ctx.Done():
			return &CommitReport{}, tag(ErrAborted, ctx.Err())
		}
	}
	var rep *CommitReport
	var err error
	overloads := 0
	for attempt := 1; ; attempt++ {
		rep, err = c.runOnce(ctx, fn)
		rep.Attempts = attempt
		if errors.Is(err, ErrOverloaded) {
			overloads++
		}
		rep.Overloads = overloads
		// A breaker fast-fail is retryable too — the sick peer may have
		// been excluded from the view by the failed attempt's recovery
		// path, or its probe may readmit it — but in its own backoff
		// class: conflicts clear in milliseconds, sick nodes in cooldowns,
		// so the breaker class backs off from a 4× higher base.
		breakerFail := errors.Is(err, ErrPeerUnavailable)
		retryable := errors.Is(err, ErrLockRefused) || errors.Is(err, ErrOverloaded) ||
			errors.Is(err, ErrLeaseStale) || breakerFail
		if err == nil || attempt >= c.cfg.retries || !retryable {
			return rep, err
		}
		base := c.cfg.backoff
		if breakerFail {
			base *= 4
		}
		if d := retryDelay(base, attempt); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return rep, tag(ErrAborted, ctx.Err())
			case <-t.C:
			}
		}
	}
}

// Apply runs a single-operation atomic action: bind the object, invoke
// method once — declared as the action's entire write set — and commit.
// For a method the object's class marks Commutative, the server may fold
// the operation into the current write-lock holder's commit round instead
// of queueing for the lock (flat combining); the report's Batched field
// says whether that happened. Semantically Apply is exactly
// Atomic(one Invoke); the solo declaration is what makes the fold legal.
func (c *Client) Apply(ctx context.Context, id uid.UID, method string, args []byte) ([]byte, *CommitReport, error) {
	var result []byte
	rep, err := c.Atomic(ctx, func(tx *Txn) error {
		out, aerr := tx.Object(id).apply(ctx, method, args)
		result = out
		return aerr
	})
	if err != nil {
		return nil, rep, err
	}
	return result, rep, nil
}

// runOnce executes one begin → fn → commit/abort cycle.
func (c *Client) runOnce(ctx context.Context, fn func(tx *Txn) error) (*CommitReport, error) {
	act := c.binder.BeginTop()
	tx := &Txn{c: c, act: act, objects: make(map[uid.UID]*Object), notes: &rpc.BreakerNotes{}}
	// Abort on every path that does not reach commit — including a panic
	// inside fn — so no action is left running.
	committed := false
	defer func() {
		if !committed && act.Status() == action.StatusRunning {
			_ = act.Abort(context.WithoutCancel(ctx))
		}
	}()

	if err := fn(tx); err != nil {
		// Abort with cancellation stripped: fn may have failed BECAUSE ctx
		// is done, and the abort's participant RPCs must still run or the
		// action's remote locks leak for the process lifetime.
		_ = act.Abort(context.WithoutCancel(ctx))
		return tx.report(false), tag(ErrAborted, MapError(err))
	}
	if err := tx.revalidateLeases(ctx); err != nil {
		_ = act.Abort(context.WithoutCancel(ctx))
		return tx.report(false), tag(ErrAborted, err)
	}
	acrep, err := act.Commit(tx.noted(ctx))
	if err != nil {
		// A failed prepare has already rolled the participants back.
		return tx.report(false), tag(ErrAborted, MapError(err))
	}
	committed = true
	rep := tx.report(true)
	rep.PhaseTwoErrors = acrep.PhaseTwoErrors
	rep.ReadOnlyVoters = acrep.ReadOnlyVoters
	rep.CommitVoters = acrep.CommitVoters
	rep.OnePhase = acrep.OnePhase
	rep.OutcomeLogged = acrep.OutcomeLogged
	return rep, nil
}

// revalidateLeases upgrades, just before commit, every leased read of a
// transaction that also did server-side work into a LOCKED server read:
// the object is bound and its coordinator asked — under the action's
// read lock — for its committed version. A matching version proves the
// leased snapshot is still the latest committed state, and the read lock
// (strict 2PL, held through this action's commit) keeps it so, making
// the transaction equivalent to one that read through the servers. A
// local validity check would NOT suffice: a concurrent commit's lease
// invalidation is confirmed before that writer's locks release, but the
// multicast can still be in flight when THIS transaction — unblocked by
// a different participant's earlier release — reaches its commit, so
// only the server's lock queue gives a race-free answer. On mismatch the
// cached entry is killed so the retry re-reads through the servers.
// A pure lease-read transaction (nothing bound) skips the check: each
// read was individually valid when served, which is exactly the lease
// guarantee.
func (t *Txn) revalidateLeases(ctx context.Context) error {
	if len(t.leased) == 0 {
		return nil
	}
	bound := false
	for _, o := range t.objects {
		if o.bd != nil {
			bound = true
			break
		}
	}
	if !bound {
		return nil
	}
	checked := make(map[uid.UID]bool, len(t.leased))
	for _, e := range t.leased {
		id := e.Snap.UID
		if checked[id] {
			continue
		}
		checked[id] = true
		o := t.objects[id]
		if o == nil {
			return ErrLeaseStale
		}
		if err := o.bind(ctx); err != nil {
			t.c.leases.Invalidate(id)
			return err
		}
		seq, err := o.bd.LeaseCheck(t.noted(ctx))
		if err != nil {
			// Unreachable coordinator, refused lock, dead context — the
			// snapshot cannot be vouched for. Kill it so the retry takes
			// the plain server path, and classify the cause for the
			// retry loop.
			t.c.leases.Invalidate(id)
			return MapError(err)
		}
		if seq != e.Snap.Seq {
			t.c.leases.Invalidate(id)
			return ErrLeaseStale
		}
	}
	return nil
}

// report collects the failure anatomy from every bound object.
func (t *Txn) report(committed bool) *CommitReport {
	rep := &CommitReport{Committed: committed, LeaseReads: len(t.leased)}
	broken := map[transport.Addr]bool{}
	excluded := map[transport.Addr]bool{}
	for _, o := range t.objects {
		if o.bd == nil {
			continue
		}
		for _, sv := range o.bd.BrokenServers() {
			broken[sv] = true
		}
		for _, st := range o.bd.FailedStores() {
			excluded[st] = true
		}
		if o.batched {
			rep.Batched = true
		}
		if bs := o.bd.BatchSize(); bs > rep.BatchSize {
			rep.BatchSize = bs
		}
		if w := o.bd.QueueWait(); w > rep.QueueWait {
			rep.QueueWait = w
		}
	}
	rep.BrokenServers = sortedAddrs(broken)
	rep.ExcludedStores = sortedAddrs(excluded)
	rep.BreakerSkipped = t.notes.Skipped()
	return rep
}

func sortedAddrs(set map[transport.Addr]bool) []transport.Addr {
	if len(set) == 0 {
		return nil
	}
	out := make([]transport.Addr, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
