package arjuna_test

import (
	"context"
	"testing"
	"time"

	"repro/pkg/arjuna"
)

func totalRPCs(sys *arjuna.System) int64 {
	var n int64
	for _, s := range sys.Stats() {
		n += s.Calls
	}
	return n
}

// TestReadLeaseZeroRPC drives the facade's whole lease loop and pins the
// headline property: a lease-valid read-only Atomic completes with ZERO
// RPCs (asserted against the deployment-wide rpc call counters), and a
// committed write invalidates the cache before the writer sees its
// commit acknowledged.
func TestReadLeaseZeroRPC(t *testing.T) {
	sys, err := arjuna.Open(
		arjuna.WithServers(2), arjuna.WithStores(3),
		arjuna.WithReadLeases(500*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	cl, err := sys.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	obj := sys.Objects()[0]

	if _, _, err := cl.Apply(ctx, obj, "add", []byte("7")); err != nil {
		t.Fatalf("add: %v", err)
	}

	read := func() ([]byte, *arjuna.CommitReport) {
		var out []byte
		rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			var rerr error
			out, rerr = tx.Object(obj).Read(ctx, "get", nil)
			return rerr
		})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return out, rep
	}

	// First read misses the cache, goes to the server, harvests a grant.
	out, rep := read()
	if string(out) != "7" || rep.LeaseReads != 0 {
		t.Fatalf("first read = %q, LeaseReads=%d; want 7, 0", out, rep.LeaseReads)
	}

	// Second read must be a pure cache hit: zero RPCs anywhere in the
	// deployment.
	before := totalRPCs(sys)
	out, rep = read()
	if string(out) != "7" || rep.LeaseReads != 1 {
		t.Fatalf("second read = %q, LeaseReads=%d; want 7, 1", out, rep.LeaseReads)
	}
	if after := totalRPCs(sys); after != before {
		t.Fatalf("leased read issued %d RPCs, want 0", after-before)
	}
	ls := sys.LeaseStats()
	if ls.Grants == 0 || ls.L1Hits == 0 {
		t.Fatalf("lease stats %+v: want non-zero Grants and L1Hits", ls)
	}

	// A committed write invalidates the holder before it is acknowledged,
	// so the very next read sees the new value.
	if _, _, err := cl.Apply(ctx, obj, "add", []byte("3")); err != nil {
		t.Fatalf("second add: %v", err)
	}
	out, _ = read()
	if string(out) != "10" {
		t.Fatalf("read after write = %q, want 10", out)
	}
	if sys.LeaseStats().Invalidations == 0 {
		t.Fatal("no invalidation multicasts recorded")
	}
}

// TestRebalanceFencesPreMoveLeases pins the move-time lease fence. The
// TTL is far longer than the test, so if the next read after a
// Rebalance is not lease-served, only the fence — never expiry — can
// explain it: without the fence, a commit on the target shard could
// never reach the source-granted holder (each server invalidates only
// the holders it granted), and the stale snapshot would keep serving
// for the rest of its 30s lease.
func TestRebalanceFencesPreMoveLeases(t *testing.T) {
	sys := openT(t,
		arjuna.WithShards(2), arjuna.WithServers(1), arjuna.WithStores(1),
		arjuna.WithReadLeases(30*time.Second))
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	read := func() (string, *arjuna.CommitReport) {
		var out []byte
		rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			var rerr error
			out, rerr = tx.Object(obj).Read(ctx, "get", nil)
			return rerr
		})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return string(out), rep
	}

	// Objects are pre-seeded at seq 1, so the first read grants a lease
	// without any commit (and hence without the first-commit grace).
	read()
	if out, rep := read(); out != "0" || rep.LeaseReads != 1 {
		t.Fatalf("pre-move read = %q, LeaseReads=%d; want lease-served 0", out, rep.LeaseReads)
	}

	invalBefore := sys.LeaseStats().Invalidated
	src := sys.ShardOf(obj)
	if err := sys.Rebalance(ctx, obj, src%2+1); err != nil {
		t.Fatalf("rebalance: %v", err)
	}

	// The pre-move lease has ~30s of TTL left, yet it must never serve
	// another read: the move passivated the source instance, which
	// invalidated the holder over the multicast.
	out, rep := read()
	if rep.LeaseReads != 0 {
		t.Fatalf("stale pre-move lease served a read after rebalance (value %q)", out)
	}
	if out != "0" {
		t.Fatalf("post-move read = %q, want 0", out)
	}
	if sys.LeaseStats().Invalidated == invalBefore {
		t.Fatal("move did not invalidate the pre-move lease holder")
	}

	// Leasing itself survives the move: that server-path read harvested a
	// fresh grant from the target shard, so the next read is served from
	// cache again.
	if out, rep := read(); out != "0" || rep.LeaseReads != 1 {
		t.Fatalf("post-move leased read = %q, LeaseReads=%d; want lease-served 0", out, rep.LeaseReads)
	}
}

// TestRebalanceThenCommitOnNewShard is the end-to-end flow of the same
// hazard with a realistic TTL: lease, move, commit on the new shard,
// read — the read must observe the new-shard commit, never the cached
// pre-move snapshot.
func TestRebalanceThenCommitOnNewShard(t *testing.T) {
	sys := openT(t,
		arjuna.WithShards(2), arjuna.WithServers(1), arjuna.WithStores(1),
		arjuna.WithReadLeases(150*time.Millisecond))
	cl := clientT(t, sys, "c1")
	obj := sys.Objects()[0]
	ctx := context.Background()

	read := func() (string, *arjuna.CommitReport) {
		var out []byte
		rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			var rerr error
			out, rerr = tx.Object(obj).Read(ctx, "get", nil)
			return rerr
		})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return string(out), rep
	}

	read() // grant a lease on the source shard
	src := sys.ShardOf(obj)
	if err := sys.Rebalance(ctx, obj, src%2+1); err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if _, _, err := cl.Apply(ctx, obj, "add", []byte("7")); err != nil {
		t.Fatalf("add on new shard: %v", err)
	}
	out, rep := read()
	if out != "7" {
		t.Fatalf("read after new-shard commit = %q, want 7 (LeaseReads=%d)", out, rep.LeaseReads)
	}
}

// TestReadLeaseSecondClientSharesL2 checks the tier split: a second
// client on the same node misses its own L1 but hits the node's shared
// L2 for a lease the first client harvested.
func TestReadLeaseSecondClientSharesL2(t *testing.T) {
	sys, err := arjuna.Open(
		arjuna.WithServers(2), arjuna.WithStores(2),
		arjuna.WithReadLeases(500*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	ctx := context.Background()
	obj := sys.Objects()[0]
	cl1, err := sys.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	cl2, err := sys.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	read := func(cl *arjuna.Client) *arjuna.CommitReport {
		rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, rerr := tx.Object(obj).Read(ctx, "get", nil)
			return rerr
		})
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		return rep
	}
	read(cl1) // miss + grant
	l2Before := sys.LeaseStats().L2Hits
	if rep := read(cl2); rep.LeaseReads != 1 {
		t.Fatalf("second client's read not lease-served (LeaseReads=%d)", rep.LeaseReads)
	}
	if sys.LeaseStats().L2Hits == l2Before {
		t.Fatal("second client's read did not hit the shared L2")
	}
}
