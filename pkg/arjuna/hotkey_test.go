package arjuna_test

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/arjuna"
)

// TestApplyBatchesUnderContention checks the flat-combining invariants in
// two rounds. First a deterministic fold: a holder parks on the object's
// write lock while followers enqueue, so every follower must ride the
// holder's commit. Then organic contention: many concurrent solo adds,
// where the final value must equal the sum of every committed delta (fold
// correctness — batched execution must match sequential execution).
func TestApplyBatchesUnderContention(t *testing.T) {
	sys, err := arjuna.Open(arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithClients(8))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	obj := sys.Objects()[0]

	const followers = 4
	holderErr, folded, foldBatched, followerErrs := batchUnderHeldLock(t, sys, followers, 10)
	if holderErr != nil {
		t.Fatalf("holder commit: %v", holderErr)
	}
	for _, err := range followerErrs {
		t.Fatalf("follower: %v", err)
	}
	if folded != followers || foldBatched != followers {
		t.Fatalf("followers committed=%d batched=%d, want %d folded into the held commit",
			folded, foldBatched, followers)
	}
	if got := counterValue(t, sys, obj); got != strconv.Itoa(1+followers) {
		t.Fatalf("counter = %q after deterministic fold, want %d", got, 1+followers)
	}

	const perClient = 25
	var wg sync.WaitGroup
	var committed, batched, leaderBatches int64
	errCh := make(chan error, 8)
	for i := 0; i < 8; i++ {
		name := "c" + strconv.Itoa(i+1)
		cl, err := sys.Client(name, arjuna.ClientRetry(10, 2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				_, rep, err := cl.Apply(context.Background(), obj, "add", []byte("1"))
				if err != nil {
					errCh <- fmt.Errorf("%s apply %d: %w", name, j, err)
					return
				}
				atomic.AddInt64(&committed, 1)
				if rep.Batched {
					atomic.AddInt64(&batched, 1)
				} else if rep.BatchSize > 1 {
					atomic.AddInt64(&leaderBatches, 1)
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	data, _, err := sys.CommittedState(obj)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := strconv.Atoi(string(data))
	if int64(got) != int64(1+followers)+committed {
		t.Fatalf("counter = %d after %d committed organic adds on a base of %d",
			got, committed, 1+followers)
	}
	t.Logf("organic: committed=%d batched=%d leader-batches=%d", committed, batched, leaderBatches)
}

// TestApplyMatchesSequential runs the same operation mix once through
// contended Apply and once sequentially through plain Atomic, and demands
// identical final states — batching must be semantically invisible.
func TestApplyMatchesSequential(t *testing.T) {
	deltas := make([]int, 40)
	want := 0
	for i := range deltas {
		deltas[i] = (i%7 - 3) * (i + 1) // mixed signs and magnitudes
		want += deltas[i]
	}

	sys, err := arjuna.Open(arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithClients(4))
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	obj := sys.Objects()[0]

	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for c := 0; c < 4; c++ {
		cl, err := sys.Client("c"+strconv.Itoa(c+1), arjuna.ClientRetry(10, time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		part := deltas[c*10 : (c+1)*10]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, d := range part {
				if _, _, err := cl.Apply(context.Background(), obj, "add", []byte(strconv.Itoa(d))); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	data, _, err := sys.CommittedState(obj)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := strconv.Atoi(string(data)); got != want {
		t.Fatalf("contended Apply total = %d, sequential semantics demand %d", got, want)
	}
}

// TestOverloadBackpressure bounds the lock queue hard, parks a slow
// transaction on the object's write lock, and checks the taxonomy end to
// end: contenders arriving behind the full queue are refused with
// ErrOverloaded (counted in the CommitReport), and refused operations
// leave no trace in the committed state.
func TestOverloadBackpressure(t *testing.T) {
	sys, err := arjuna.Open(
		arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithClients(7),
		arjuna.WithLockQueue(1, 5*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	obj := sys.Objects()[0]

	// The holder takes the write lock via an ordinary (non-solo) invoke and
	// then dawdles, so every contender below finds the lock held for the
	// whole window.
	holder, err := sys.Client("c1")
	if err != nil {
		t.Fatal(err)
	}
	locked := make(chan struct{})
	release := make(chan struct{})
	holderDone := make(chan error, 1)
	go func() {
		_, err := holder.Atomic(context.Background(), func(tx *arjuna.Txn) error {
			if _, err := tx.Object(obj).Invoke(context.Background(), "add", []byte("1")); err != nil {
				return err
			}
			close(locked)
			<-release
			return nil
		})
		holderDone <- err
	}()
	<-locked

	// Six contenders against a one-slot queue: at most one can park (and
	// its 5ms wait deadline expires inside the hold window anyway), so
	// every one must come back ErrOverloaded — after retrying with backoff,
	// as the Overloads counter proves.
	var wg sync.WaitGroup
	var overloaded, overloadAttempts, committed int64
	var badErr atomic.Value
	for i := 0; i < 6; i++ {
		cl, err := sys.Client("c"+strconv.Itoa(i+2), arjuna.ClientRetry(2, time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, rep, err := cl.Apply(context.Background(), obj, "add", []byte("1"))
			if rep != nil {
				atomic.AddInt64(&overloadAttempts, int64(rep.Overloads))
			}
			switch {
			case err == nil:
				atomic.AddInt64(&committed, 1)
			case errors.Is(err, arjuna.ErrOverloaded):
				atomic.AddInt64(&overloaded, 1)
			case errors.Is(err, arjuna.ErrLockRefused):
				// A waiter that parked and timed out right at a release can
				// surface as a plain refusal; acceptable, just not counted.
			default:
				badErr.Store(err)
			}
		}()
	}
	wg.Wait()
	close(release)
	if err := <-holderDone; err != nil {
		t.Fatalf("holder: %v", err)
	}
	if err, ok := badErr.Load().(error); ok {
		t.Fatalf("unexpected error class: %v", err)
	}
	if overloaded == 0 {
		t.Fatalf("no contender was refused with ErrOverloaded (committed=%d)", committed)
	}
	if overloadAttempts == 0 {
		t.Fatal("CommitReport.Overloads never counted an overload refusal")
	}

	data, _, err := sys.CommittedState(obj)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := strconv.Atoi(string(data))
	if want := 1 + committed; int64(got) != want {
		t.Fatalf("counter = %d, want %d (holder + %d committed contenders)", got, want, committed)
	}
	t.Logf("overloaded=%d committed=%d overload-attempts=%d", overloaded, committed, overloadAttempts)
}
