// Benchmarks: one per experiment in DESIGN.md's index (E1-E12). The paper
// (ICDCS '93) has no measurement tables — its figures are protocol
// diagrams — so each benchmark times the executable scenario that
// reproduces the corresponding figure or claim and reports the shape
// metric (divergence count, availability, probes, abort rate) via
// b.ReportMetric. Absolute times are simulator-relative; the shapes are
// the reproduction target (see EXPERIMENTS.md).
package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/action"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/harness"
	"repro/internal/lockmgr"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/transport"
	"repro/pkg/arjuna"
)

// BenchmarkE1Divergence — Figure 1: reply loss to a replica group, naive
// vs sequencer-ordered multicast.
func BenchmarkE1Divergence(b *testing.B) {
	var naive, ordered int
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE1(experiments.E1Config{Replicas: 3, Trials: 6})
		if err != nil {
			b.Fatal(err)
		}
		naive += r.NaiveDiverged
		ordered += r.OrderedDiverged
	}
	b.ReportMetric(float64(naive)/float64(b.N), "naive-divergences/op")
	b.ReportMetric(float64(ordered)/float64(b.N), "ordered-divergences/op")
}

func benchAvailability(b *testing.B, cfg experiments.AvailConfig) {
	committed, total := 0, 0
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		r, err := experiments.RunAvailability(cfg)
		if err != nil {
			b.Fatal(err)
		}
		committed += r.Committed
		total += r.Committed + r.Aborted
		if r.InconsistentStores != 0 {
			b.Fatalf("store consistency violated %d times", r.InconsistentStores)
		}
	}
	b.ReportMetric(float64(committed)/float64(total), "availability")
}

// BenchmarkE2Unreplicated — Figure 2: |Sv|=|St|=1 at p=0.3.
func BenchmarkE2Unreplicated(b *testing.B) {
	benchAvailability(b, experiments.AvailConfig{
		Servers: 1, Stores: 1, Policy: replica.SingleCopyPassive,
		CrashProb: 0.3, Trials: 20,
	})
}

// BenchmarkE3StateReplication — Figure 3: |Sv|=1, |St|=3 at p=0.3.
func BenchmarkE3StateReplication(b *testing.B) {
	benchAvailability(b, experiments.AvailConfig{
		Servers: 1, Stores: 3, Policy: replica.SingleCopyPassive,
		CrashProb: 0.3, Trials: 20,
	})
}

// BenchmarkE4ServerReplication — Figure 4: |Sv|=3, |St|=1, one replica
// crashed mid-action (masked by active replication).
func BenchmarkE4ServerReplication(b *testing.B) {
	benchAvailability(b, experiments.AvailConfig{
		Servers: 3, Stores: 1, Policy: replica.Active,
		CrashProb: 0, CrashDuring: true, Trials: 20,
	})
}

// BenchmarkE5General — Figure 5: |Sv|=3, |St|=3 at p=0.3.
func BenchmarkE5General(b *testing.B) {
	benchAvailability(b, experiments.AvailConfig{
		Servers: 3, Stores: 3, Policy: replica.Active,
		CrashProb: 0.3, Trials: 20,
	})
}

func benchScheme(b *testing.B, scheme core.Scheme) {
	probesAfter := 0
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunScheme(experiments.SchemeConfig{
			Scheme: scheme, Servers: 2, Stores: 1, Clients: 4,
			ActionsPerClient: 4, CrashAfter: 4, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Aborted != 0 {
			b.Fatalf("aborts: %d", r.Aborted)
		}
		probesAfter += r.ProbesAfter
	}
	b.ReportMetric(float64(probesAfter)/float64(b.N), "post-crash-probes/op")
}

// BenchmarkE6StandardScheme — Figure 6: static Sv, every client probes the
// dead server.
func BenchmarkE6StandardScheme(b *testing.B) { benchScheme(b, core.SchemeStandard) }

// BenchmarkE7IndependentScheme — Figure 7: independent top-level DB
// actions repair Sv; only the first client probes.
func BenchmarkE7IndependentScheme(b *testing.B) { benchScheme(b, core.SchemeIndependent) }

// BenchmarkE8NestedTopLevel — Figure 8: nested top-level DB actions.
func BenchmarkE8NestedTopLevel(b *testing.B) { benchScheme(b, core.SchemeNestedTopLevel) }

// BenchmarkE9ExcludeLock — §4.2.1: commit-time Exclude under 4 concurrent
// readers, exclude-write lock vs read→write promotion.
func BenchmarkE9ExcludeLock(b *testing.B) {
	ewAborts, wlAborts := 0, 0
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE9(experiments.E9Config{Readers: 4, Trials: 2})
		if err != nil {
			b.Fatal(err)
		}
		ewAborts += r.ExcludeWriteAborts
		wlAborts += r.WriteLockAborts
	}
	b.ReportMetric(float64(ewAborts)/float64(b.N), "exclude-write-aborts/op")
	b.ReportMetric(float64(wlAborts)/float64(b.N), "write-lock-aborts/op")
}

// BenchmarkE10ReadOptimisation — §4.1.2: read-only binding vs full
// enhanced-scheme binding.
func BenchmarkE10ReadOptimisation(b *testing.B) {
	var opt, full float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE10(experiments.E10Config{
			Servers: 3, Readers: 4, ReadsPerClient: 5,
			Latency: 50 * time.Microsecond, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		opt += r.OptimisedMillis
		full += r.FullBindMillis
	}
	b.ReportMetric(opt/float64(b.N), "optimised-ms/op")
	b.ReportMetric(full/float64(b.N), "fullbind-ms/op")
}

// BenchmarkE11StoreRecovery — §4.2: crash, Exclude window, catch-up,
// Include.
func BenchmarkE11StoreRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE11(experiments.E11Config{
			Stores: 3, ActionsBefore: 2, ActionsDuring: 2, ActionsAfter: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !r.CaughtUp || !r.FinalConsist {
			b.Fatalf("recovery failed: caughtUp=%v consistent=%v", r.CaughtUp, r.FinalConsist)
		}
	}
}

// BenchmarkE12NonAtomicNameServer — §5 extension: Sv in a non-atomic name
// server, St database carries binding consistency alone.
func BenchmarkE12NonAtomicNameServer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunE12(experiments.E12Config{
			Servers: 2, Stores: 2, Actions: 10, CrashEvery: 4, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !r.NonAtomicConsistent {
			b.Fatal("non-atomic variant violated store consistency")
		}
	}
}

// BenchmarkActionThroughput measures raw end-to-end action cost on the
// simulator (bind → invoke → 2PC commit) for each replication policy — an
// ablation for DESIGN.md's commit-processing design notes.
func BenchmarkActionThroughput(b *testing.B) {
	for _, tc := range []struct {
		name   string
		policy replica.Policy
		deg    int
	}{
		{"single-copy", replica.SingleCopyPassive, 1},
		{"active-3", replica.Active, 0},
		{"coordinator-cohort-3", replica.CoordinatorCohort, 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			w, err := harness.New(harness.Options{Servers: 3, Stores: 2, Clients: 1})
			if err != nil {
				b.Fatal(err)
			}
			bd := w.Binder("c1", core.SchemeStandard, tc.policy, tc.deg)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := w.RunCounterAction(ctx, bd, 0, 1)
				if !r.Committed {
					b.Fatalf("action failed: %v", r.Err)
				}
			}
		})
	}
}

// BenchmarkCommitDurability measures the price of real stable storage on
// the end-to-end commit path (bind → invoke → 2PC with fsynced
// intentions, commit records and phase-two applies), with 4 concurrent
// clients committing to disjoint objects:
//
//   - mem: the in-memory backend (the simulation default) — the floor.
//   - disk-sync-each: per-node WAL on disk, one fsync per Sync call.
//   - disk-group-commit: the same WAL with concurrent fsyncs coalesced;
//     under concurrent commit traffic this must beat disk-sync-each,
//     because one fsync acknowledges several clients' records.
func BenchmarkCommitDurability(b *testing.B) {
	const workers = 4
	for _, tc := range []struct {
		name string
		disk bool
		sync storage.SyncMode
	}{
		{"mem", false, 0},
		{"disk-sync-each", true, storage.SyncEach},
		{"disk-group-commit", true, storage.SyncGroup},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opts := harness.Options{Servers: 1, Stores: 1, Clients: workers, Objects: workers}
			if tc.disk {
				opts.DataDir = b.TempDir()
				opts.Disk = storage.DiskOptions{Sync: tc.sync}
			}
			w, err := harness.New(opts)
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			var next atomic.Int64
			var wg sync.WaitGroup
			var failed atomic.Int64
			for k := 0; k < workers; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					bd := w.Binder(w.Clients[k], core.SchemeStandard, replica.SingleCopyPassive, 0)
					for next.Add(1) <= int64(b.N) {
						if r := w.RunCounterAction(ctx, bd, k, 1); !r.Committed {
							failed.Add(1)
							return
						}
					}
				}(k)
			}
			wg.Wait()
			if failed.Load() > 0 {
				b.Fatalf("%d workers failed to commit", failed.Load())
			}
		})
	}
}

// BenchmarkMulticastAblation measures the ordered-vs-naive multicast cost
// (the price of the Figure 1 guarantee) at a fixed group size.
func BenchmarkMulticastAblation(b *testing.B) {
	var orderedSum, naiveSum float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := experiments.MeasureMulticastCost([]int{3}, 10, 0)
		if err != nil {
			b.Fatal(err)
		}
		orderedSum += points[0].OrderedMicros
		naiveSum += points[0].NaiveMicros
	}
	b.ReportMetric(orderedSum/float64(b.N), "ordered-us/msg")
	b.ReportMetric(naiveSum/float64(b.N), "naive-us/msg")
}

// BenchmarkMulticastPipelined measures ordered multicast under pipelined
// load: 8 concurrent senders against a 3-member group with a 200µs
// per-leg latency. The batched sequencer orders every request that
// arrives during an in-flight fan-out in the next frame, so it sustains
// more than one message per sequencer round (reported as msgs/round) and
// the per-message cost drops well below the solo round-trip cost.
func BenchmarkMulticastPipelined(b *testing.B) {
	var micros, perRound float64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := experiments.MeasurePipelinedMulticast(3, 8, 5, 200*time.Microsecond)
		if err != nil {
			b.Fatal(err)
		}
		micros += p.Micros
		perRound += p.MsgsPerRound()
	}
	b.ReportMetric(micros/float64(b.N), "ordered-us/msg")
	b.ReportMetric(perRound/float64(b.N), "msgs/round")
}

// BenchmarkMulticastGroupSize measures ordered-multicast latency across
// group sizes under a fixed 200µs per-leg network latency. With the
// concurrent sequencer fan-out the per-message cost should grow
// sub-linearly in the member count (the serial relay grew additively:
// every extra member added two legs to every message).
func BenchmarkMulticastGroupSize(b *testing.B) {
	for _, members := range []int{3, 5, 7} {
		b.Run(fmt.Sprintf("members-%d", members), func(b *testing.B) {
			var orderedSum float64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				points, err := experiments.MeasureMulticastCost([]int{members}, 5, 200*time.Microsecond)
				if err != nil {
					b.Fatal(err)
				}
				orderedSum += points[0].OrderedMicros
			}
			b.ReportMetric(orderedSum/float64(b.N), "ordered-us/msg")
		})
	}
}

// slowParticipant is a 2PC participant whose prepare and commit each cost
// a fixed delay — the stand-in for a store round trip. A read-only
// participant pays the prepare delay, votes read-only, and (per the
// voting contract) is excluded from phase two.
type slowParticipant struct {
	name     string
	delay    time.Duration
	readOnly bool
}

func (p *slowParticipant) Name() string { return p.name }
func (p *slowParticipant) Prepare(ctx context.Context, tx string) (action.Vote, error) {
	time.Sleep(p.delay)
	if p.readOnly {
		return action.VoteReadOnly, nil
	}
	return action.VoteCommit, nil
}
func (p *slowParticipant) Commit(ctx context.Context, tx string) error {
	time.Sleep(p.delay)
	return nil
}
func (p *slowParticipant) Abort(ctx context.Context, tx string) error { return nil }

func bench2PC(b *testing.B, participants int, readOnly bool) {
	mgr := action.NewManager("bench2pc", nil)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		act := mgr.BeginTop()
		for j := 0; j < participants; j++ {
			p := &slowParticipant{name: fmt.Sprintf("p%d", j), delay: 200 * time.Microsecond, readOnly: readOnly}
			if err := act.Enlist(p); err != nil {
				b.Fatal(err)
			}
		}
		rep, err := act.Commit(ctx)
		if err != nil {
			b.Fatal(err)
		}
		if readOnly && (rep.CommitVoters != 0 || rep.OutcomeLogged) {
			b.Fatalf("read-only commit ran phase two: %+v", rep)
		}
	}
}

// Benchmark2PCParticipants measures top-level commit latency against the
// participant count, each participant costing 200µs per phase. With the
// concurrent two-phase commit the total should stay near 2 × 200µs
// regardless of the participant count; the serial commit grew by 400µs
// per participant.
func Benchmark2PCParticipants(b *testing.B) {
	for _, participants := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("participants-%d", participants), func(b *testing.B) {
			bench2PC(b, participants, false)
		})
	}
}

// Benchmark2PCParticipantsReadOnly is the §4.1.2 read-optimisation
// variant: every participant votes read-only, so phase two and the
// outcome-log write vanish and the commit costs a single 200µs prepare
// round — about half the mixed-vote commit.
func Benchmark2PCParticipantsReadOnly(b *testing.B) {
	for _, participants := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("participants-%d", participants), func(b *testing.B) {
			bench2PC(b, participants, true)
		})
	}
}

// BenchmarkLockContention measures the striped lock table: each parallel
// worker acquires and releases a write lock on its own key. With one
// global mutex every acquire serialised through a single cache line; the
// striped table scales with the keys touching distinct stripes. The
// same-key variant is the upper contention bound for comparison.
func BenchmarkLockContention(b *testing.B) {
	ctx := context.Background()
	b.Run("disjoint-keys", func(b *testing.B) {
		lm := lockmgr.New(lockmgr.NoNesting)
		var worker atomic.Int64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			id := worker.Add(1)
			owner := lockmgr.Owner(fmt.Sprintf("w%d", id))
			key := fmt.Sprintf("key-%d", id)
			for pb.Next() {
				if err := lm.Acquire(ctx, owner, key, lockmgr.Write); err != nil {
					b.Error(err)
					return
				}
				if err := lm.Release(owner, key, lockmgr.Write); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
	b.Run("same-key", func(b *testing.B) {
		lm := lockmgr.New(lockmgr.NoNesting)
		var worker atomic.Int64
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			id := worker.Add(1)
			owner := lockmgr.Owner(fmt.Sprintf("w%d", id))
			for pb.Next() {
				if err := lm.Acquire(ctx, owner, "hot", lockmgr.Read); err != nil {
					b.Error(err)
					return
				}
				if err := lm.Release(owner, "hot", lockmgr.Read); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// BenchmarkHotKeyContention measures commutative-op batching on a single
// hot counter: every worker hammers the same object with solo adds. The
// apply-batched variant goes through Client.Apply, so ops queued behind
// the write-lock holder fold into its commit round (flat combining); the
// invoke-unbatched variant is the same add through a plain Atomic+Invoke,
// where every op queues for the lock and pays its own 2PC — the hot-key
// tail this PR's tentpole eliminates. batched-frac reports the fraction
// of operations that rode another action's commit.
func BenchmarkHotKeyContention(b *testing.B) {
	const workers = 16
	for _, tc := range []struct {
		name string
		solo bool
	}{
		{"apply-batched", true},
		{"invoke-unbatched", false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sys, err := arjuna.Open(
				arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithClients(workers))
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			obj := sys.Objects()[0]
			clients := make([]*arjuna.Client, workers)
			for k := range clients {
				cl, err := sys.Client(fmt.Sprintf("c%d", k+1), arjuna.ClientRetry(100, time.Millisecond))
				if err != nil {
					b.Fatal(err)
				}
				clients[k] = cl
			}
			ctx := context.Background()
			var next, batched, failed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for k := 0; k < workers; k++ {
				wg.Add(1)
				go func(cl *arjuna.Client) {
					defer wg.Done()
					for next.Add(1) <= int64(b.N) {
						if tc.solo {
							_, rep, err := cl.Apply(ctx, obj, "add", []byte("1"))
							if err != nil {
								failed.Add(1)
								return
							}
							if rep.Batched {
								batched.Add(1)
							}
							continue
						}
						if _, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
							_, err := tx.Object(obj).Invoke(ctx, "add", []byte("1"))
							return err
						}); err != nil {
							failed.Add(1)
							return
						}
					}
				}(clients[k])
			}
			wg.Wait()
			b.StopTimer()
			if failed.Load() > 0 {
				b.Fatalf("%d workers failed", failed.Load())
			}
			b.ReportMetric(float64(batched.Load())/float64(b.N), "batched-frac")
		})
	}
}

// BenchmarkBindOnly measures the naming-and-binding round per scheme with
// no failures — the direct cost comparison of Figures 6-8.
func BenchmarkBindOnly(b *testing.B) {
	for _, tc := range []struct {
		name   string
		scheme core.Scheme
	}{
		{"standard", core.SchemeStandard},
		{"independent", core.SchemeIndependent},
		{"nested-top-level", core.SchemeNestedTopLevel},
	} {
		b.Run(tc.name, func(b *testing.B) {
			w, err := harness.New(harness.Options{Servers: 2, Stores: 2, Clients: 1})
			if err != nil {
				b.Fatal(err)
			}
			bd := w.Binder("c1", tc.scheme, replica.SingleCopyPassive, 1)
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				act := bd.Actions.BeginTop()
				if _, err := bd.Bind(ctx, act, w.Objects[0]); err != nil {
					b.Fatal(err)
				}
				if _, err := act.Commit(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchTotalRPCs sums every service's call counter across the deployment
// — the "did this path touch the network at all" probe.
func benchTotalRPCs(sys *arjuna.System) int64 {
	var n int64
	for _, s := range sys.Stats() {
		n += s.Calls
	}
	return n
}

// BenchmarkLeasedRead — the read-lease headline number. The in-memory
// network is given a 50µs per-message-leg latency so the comparison is
// honest: a server read pays real round trips, a lease hit pays none.
//
//   - hit: leases on, cache warm — every read is served from the
//     client's L1 snapshot. Asserts the timed loop issued ZERO RPCs
//     anywhere in the deployment and ran ≥100× faster than the
//     leaseless round trip under the same network.
//   - expired-miss: leases on, but a TTL so short every read finds its
//     cached lease dead — the degraded path: a full server read plus
//     grant probe and harvest on every operation.
//   - leaseless: the same deployment without WithReadLeases.
func BenchmarkLeasedRead(b *testing.B) {
	const legLatency = 50 * time.Microsecond
	open := func(b *testing.B, extra ...arjuna.Option) (*arjuna.System, *arjuna.Client) {
		opts := []arjuna.Option{
			arjuna.WithServers(1), arjuna.WithStores(1), arjuna.WithClients(1),
			arjuna.WithMemNetwork(transport.MemOptions{BaseLatency: legLatency}),
		}
		sys, err := arjuna.Open(append(opts, extra...)...)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { sys.Close() })
		cl, err := sys.Client("c1", arjuna.ClientReadOnly())
		if err != nil {
			b.Fatal(err)
		}
		return sys, cl
	}
	ctx := context.Background()
	read := func(b *testing.B, sys *arjuna.System, cl *arjuna.Client) *arjuna.CommitReport {
		obj := sys.Objects()[0]
		rep, err := cl.Atomic(ctx, func(tx *arjuna.Txn) error {
			_, rerr := tx.Object(obj).Read(ctx, "get", nil)
			return rerr
		})
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}

	// Sample the leaseless per-read cost once, up front, so the hit
	// sub-benchmark can assert its ≥100× criterion against a number
	// measured under the exact same network.
	sysBase, clBase := open(b)
	read(b, sysBase, clBase) // one unmeasured read warms code paths
	const sample = 64
	t0 := time.Now()
	for i := 0; i < sample; i++ {
		read(b, sysBase, clBase)
	}
	baseline := time.Since(t0) / sample

	b.Run("hit", func(b *testing.B) {
		sys, cl := open(b, arjuna.WithReadLeases(time.Hour))
		read(b, sys, cl) // miss: goes to the server, harvests the grant
		if rep := read(b, sys, cl); rep.LeaseReads != 1 {
			b.Fatalf("warm read not lease-served (LeaseReads=%d)", rep.LeaseReads)
		}
		before := benchTotalRPCs(sys)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rep := read(b, sys, cl); rep.LeaseReads != 1 {
				b.Fatalf("read %d fell off the lease path (LeaseReads=%d)", i, rep.LeaseReads)
			}
		}
		b.StopTimer()
		if rpcs := benchTotalRPCs(sys) - before; rpcs != 0 {
			b.Fatalf("lease-hit loop issued %d RPCs over %d reads, want 0", rpcs, b.N)
		}
		perOp := b.Elapsed() / time.Duration(b.N)
		b.ReportMetric(float64(baseline)/float64(perOp), "speedup")
		// A single iteration is all scheduling noise; the ratio gate needs
		// a few reads to mean anything (CI pins this at -benchtime 100x).
		if b.N >= 10 && perOp*100 > baseline {
			b.Fatalf("lease hit = %v/op, round trip = %v/op: speedup %.1f× is under the 100× bar",
				perOp, baseline, float64(baseline)/float64(perOp))
		}
	})
	b.Run("expired-miss", func(b *testing.B) {
		sys, cl := open(b, arjuna.WithReadLeases(time.Nanosecond))
		read(b, sys, cl)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rep := read(b, sys, cl); rep.LeaseReads != 0 {
				b.Fatalf("read %d was lease-served despite a dead TTL", i)
			}
		}
	})
	b.Run("leaseless", func(b *testing.B) {
		sys, cl := open(b)
		read(b, sys, cl)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			read(b, sys, cl)
		}
	})
}
