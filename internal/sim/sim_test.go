package sim

import (
	"context"
	"errors"
	"testing"

	"path/filepath"

	"repro/internal/action"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
)

func TestAddAndLookup(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	a := c.Add("alpha")
	b := c.Add("beta")
	if c.Node("alpha") != a || c.Node("beta") != b {
		t.Fatal("lookup mismatch")
	}
	if c.Node("ghost") != nil {
		t.Fatal("unknown node should be nil")
	}
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0].Name() != "alpha" {
		t.Fatalf("nodes = %v", nodes)
	}
	if got := c.UpNodes(); len(got) != 2 {
		t.Fatalf("up = %v", got)
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	c.Add("alpha")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Add("alpha")
}

func TestCrashMakesUnreachableAndWipesVolatile(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	c.Add("beta")
	n.SetVolatile("activated", 42)

	// A service registered on alpha is callable...
	n.Server().Handle("ping", "Ping", rpc.Method(func(ctx context.Context, from transport.Addr, req struct{}) (string, error) {
		return "pong", nil
	}))
	cli := c.Node("beta").Client()
	if _, err := rpc.Invoke[struct{}, string](context.Background(), cli, "alpha", "ping", "Ping", struct{}{}); err != nil {
		t.Fatalf("pre-crash call: %v", err)
	}

	n.Crash()
	if n.Up() {
		t.Fatal("node should be down")
	}
	if _, ok := n.Volatile("activated"); ok {
		t.Fatal("volatile storage should be wiped")
	}
	if _, err := rpc.Invoke[struct{}, string](context.Background(), cli, "alpha", "ping", "Ping", struct{}{}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("post-crash call err = %v", err)
	}
	if got := c.UpNodes(); len(got) != 1 || got[0] != "beta" {
		t.Fatalf("up = %v", got)
	}
}

func TestStableStoreSurvivesCrash(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	gen := uid.NewGenerator("t", 1)
	id := gen.New()
	n.Store().Put(id, []byte("persistent"), 1)
	n.Crash()
	n.Recover(nil)
	v, err := n.Store().Read(id)
	if err != nil || string(v.Data) != "persistent" {
		t.Fatalf("stable data lost: %+v %v", v, err)
	}
}

func TestRecoverBumpsEpochAndRunsHooksAndReconnects(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	c.Add("beta")
	n.Server().Handle("ping", "Ping", rpc.Method(func(ctx context.Context, from transport.Addr, req struct{}) (string, error) {
		return "pong", nil
	}))
	hookRuns := 0
	n.OnRecover(func(node *Node) {
		if node != n {
			t.Error("hook got wrong node")
		}
		hookRuns++
	})
	e0 := n.Epoch()
	n.Crash()
	n.Recover(nil)
	if n.Epoch() != e0+1 {
		t.Fatalf("epoch = %d, want %d", n.Epoch(), e0+1)
	}
	if hookRuns != 1 {
		t.Fatalf("hook runs = %d", hookRuns)
	}
	cli := c.Node("beta").Client()
	if _, err := rpc.Invoke[struct{}, string](context.Background(), cli, "alpha", "ping", "Ping", struct{}{}); err != nil {
		t.Fatalf("post-recover call: %v", err)
	}
}

func TestCrashRecoverIdempotent(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	n.Crash()
	n.Crash() // no-op
	n.Recover(nil)
	e := n.Epoch()
	n.Recover(nil) // no-op
	if n.Epoch() != e {
		t.Fatal("recover of an up node must not bump epoch")
	}
}

func TestRecoveryResolvesPendingIntentionsAgainstLog(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	gen := uid.NewGenerator("t", 1)
	idA, idB := gen.New(), gen.New()
	n.Store().Put(idA, []byte("a0"), 1)
	n.Store().Put(idB, []byte("b0"), 1)
	if err := n.Store().Prepare("tx-win", []store.Write{{UID: idA, Data: []byte("a1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Store().Prepare("tx-lose", []store.Write{{UID: idB, Data: []byte("b1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	log := action.NewMemLog()
	log.Record("tx-win", store.OutcomeCommitted)
	n.Crash()
	n.Recover(log)
	if v, _ := n.Store().Read(idA); string(v.Data) != "a1" {
		t.Fatal("committed intention not applied at recovery")
	}
	if v, _ := n.Store().Read(idB); string(v.Data) != "b0" {
		t.Fatal("undecided intention should be rolled back")
	}
}

func TestVolatileAccessors(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	n.SetVolatile("k", "v")
	if v, ok := n.Volatile("k"); !ok || v != "v" {
		t.Fatal("volatile get failed")
	}
	n.DeleteVolatile("k")
	if _, ok := n.Volatile("k"); ok {
		t.Fatal("delete failed")
	}
}

func TestOutcomeResolverConsultedOnNilLogRecovery(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	id := uid.NewGenerator("t", 1).New()
	n.Store().Put(id, []byte("v0"), 1)
	if err := n.Store().Prepare("tx-1", []store.Write{{UID: id, Data: []byte("v1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	log := action.NewMemLog()
	log.Record("tx-1", store.OutcomeCommitted)
	var resolvedFor *Node
	c.SetOutcomeResolver(func(rn *Node) store.OutcomeLog {
		resolvedFor = rn
		return log
	})
	n.Crash()
	n.Recover(nil)
	if resolvedFor != n {
		t.Fatal("resolver not consulted (or wrong node) for nil-log recovery")
	}
	if v, _ := n.Store().Read(id); string(v.Data) != "v1" {
		t.Fatal("resolver's committed outcome not applied")
	}
	// An explicit log still overrides the resolver.
	if err := n.Store().Prepare("tx-2", []store.Write{{UID: id, Data: []byte("v2"), Seq: 3}}); err != nil {
		t.Fatal(err)
	}
	resolvedFor = nil
	n.Crash()
	n.Recover(action.NewMemLog()) // empty: presumed abort
	if resolvedFor != nil {
		t.Fatal("resolver must not be consulted when a log is passed")
	}
	if v, _ := n.Store().Read(id); string(v.Data) != "v1" {
		t.Fatal("explicit empty log should abort the pending intention")
	}
}

// diskCluster builds a cluster whose every node gets a disk backend
// under dir.
func diskCluster(t *testing.T, dir string) *Cluster {
	t.Helper()
	c := NewCluster(transport.MemOptions{})
	c.SetStorage(func(name transport.Addr) storage.Factory {
		return storage.DiskFactory(filepath.Join(dir, string(name)), storage.DiskOptions{})
	})
	return c
}

// TestDiskNodeCrashDropsAllProcessState is the acceptance criterion of
// the stable-storage refactor: crashing a disk-backed node leaves NO
// object or intention state in process memory — the store answers
// nothing while down — and recovery reloads everything from the
// directory.
func TestDiskNodeCrashDropsAllProcessState(t *testing.T) {
	c := diskCluster(t, t.TempDir())
	n := c.Add("alpha")
	id := uid.NewGenerator("t", 1).New()
	if err := n.Store().Put(id, []byte("durable"), 1); err != nil {
		t.Fatal(err)
	}
	if err := n.Store().Prepare("tx-1", []store.Write{{UID: id, Data: []byte("d2"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}

	n.Crash()
	// The crashed process holds nothing: maps dropped, backend closed.
	if _, ok := n.Store().SeqOf(id); ok {
		t.Fatal("committed state still visible in process memory after crash")
	}
	if pend := n.Store().PendingTxs(); len(pend) != 0 {
		t.Fatalf("prepared intentions still in process memory: %v", pend)
	}
	if _, err := n.Store().Read(id); !errors.Is(err, store.ErrClosed) {
		t.Fatalf("read on crashed disk node = %v, want store.ErrClosed", err)
	}

	// ReopenStable makes the durable state inspectable without bringing
	// the node up (the chaos harness's in-doubt accounting).
	if err := n.ReopenStable(); err != nil {
		t.Fatal(err)
	}
	if n.Up() {
		t.Fatal("ReopenStable must not bring the node up")
	}
	if pend := n.Store().PendingTxs(); len(pend) != 1 || pend[0] != "tx-1" {
		t.Fatalf("reloaded pending = %v, want [tx-1]", pend)
	}

	// Recovery with a committed outcome applies the replayed intention.
	log := action.NewMemLog()
	log.Record("tx-1", store.OutcomeCommitted)
	n.Recover(log)
	v, err := n.Store().Read(id)
	if err != nil || string(v.Data) != "d2" || v.Seq != 2 {
		t.Fatalf("after recovery: %q/%d (%v), want d2/2", v.Data, v.Seq, err)
	}
	if n.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", n.Epoch())
	}
}

// TestDiskNodeStateSurvivesBeyondTheNode: a second cluster over the same
// directory — the real restart, new process image — sees the first one's
// committed state.
func TestDiskNodeStateSurvivesBeyondTheNode(t *testing.T) {
	dir := t.TempDir()
	id := uid.NewGenerator("t", 1).New()
	c1 := diskCluster(t, dir)
	n1 := c1.Add("alpha")
	if err := n1.Store().Put(id, []byte("gen-1"), 7); err != nil {
		t.Fatal(err)
	}
	n1.Crash() // closes the files so a new open sees a clean directory

	c2 := diskCluster(t, dir)
	n2 := c2.Add("alpha")
	v, err := n2.Store().Read(id)
	if err != nil || string(v.Data) != "gen-1" || v.Seq != 7 {
		t.Fatalf("state did not survive process replacement: %+v (%v)", v, err)
	}
}
