package sim

import (
	"context"
	"errors"
	"testing"

	"repro/internal/action"
	"repro/internal/rpc"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
)

func TestAddAndLookup(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	a := c.Add("alpha")
	b := c.Add("beta")
	if c.Node("alpha") != a || c.Node("beta") != b {
		t.Fatal("lookup mismatch")
	}
	if c.Node("ghost") != nil {
		t.Fatal("unknown node should be nil")
	}
	nodes := c.Nodes()
	if len(nodes) != 2 || nodes[0].Name() != "alpha" {
		t.Fatalf("nodes = %v", nodes)
	}
	if got := c.UpNodes(); len(got) != 2 {
		t.Fatalf("up = %v", got)
	}
}

func TestDuplicateAddPanics(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	c.Add("alpha")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Add("alpha")
}

func TestCrashMakesUnreachableAndWipesVolatile(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	c.Add("beta")
	n.SetVolatile("activated", 42)

	// A service registered on alpha is callable...
	n.Server().Handle("ping", "Ping", rpc.Method(func(ctx context.Context, from transport.Addr, req struct{}) (string, error) {
		return "pong", nil
	}))
	cli := c.Node("beta").Client()
	if _, err := rpc.Invoke[struct{}, string](context.Background(), cli, "alpha", "ping", "Ping", struct{}{}); err != nil {
		t.Fatalf("pre-crash call: %v", err)
	}

	n.Crash()
	if n.Up() {
		t.Fatal("node should be down")
	}
	if _, ok := n.Volatile("activated"); ok {
		t.Fatal("volatile storage should be wiped")
	}
	if _, err := rpc.Invoke[struct{}, string](context.Background(), cli, "alpha", "ping", "Ping", struct{}{}); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("post-crash call err = %v", err)
	}
	if got := c.UpNodes(); len(got) != 1 || got[0] != "beta" {
		t.Fatalf("up = %v", got)
	}
}

func TestStableStoreSurvivesCrash(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	gen := uid.NewGenerator("t", 1)
	id := gen.New()
	n.Store().Put(id, []byte("persistent"), 1)
	n.Crash()
	n.Recover(nil)
	v, err := n.Store().Read(id)
	if err != nil || string(v.Data) != "persistent" {
		t.Fatalf("stable data lost: %+v %v", v, err)
	}
}

func TestRecoverBumpsEpochAndRunsHooksAndReconnects(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	c.Add("beta")
	n.Server().Handle("ping", "Ping", rpc.Method(func(ctx context.Context, from transport.Addr, req struct{}) (string, error) {
		return "pong", nil
	}))
	hookRuns := 0
	n.OnRecover(func(node *Node) {
		if node != n {
			t.Error("hook got wrong node")
		}
		hookRuns++
	})
	e0 := n.Epoch()
	n.Crash()
	n.Recover(nil)
	if n.Epoch() != e0+1 {
		t.Fatalf("epoch = %d, want %d", n.Epoch(), e0+1)
	}
	if hookRuns != 1 {
		t.Fatalf("hook runs = %d", hookRuns)
	}
	cli := c.Node("beta").Client()
	if _, err := rpc.Invoke[struct{}, string](context.Background(), cli, "alpha", "ping", "Ping", struct{}{}); err != nil {
		t.Fatalf("post-recover call: %v", err)
	}
}

func TestCrashRecoverIdempotent(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	n.Crash()
	n.Crash() // no-op
	n.Recover(nil)
	e := n.Epoch()
	n.Recover(nil) // no-op
	if n.Epoch() != e {
		t.Fatal("recover of an up node must not bump epoch")
	}
}

func TestRecoveryResolvesPendingIntentionsAgainstLog(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	gen := uid.NewGenerator("t", 1)
	idA, idB := gen.New(), gen.New()
	n.Store().Put(idA, []byte("a0"), 1)
	n.Store().Put(idB, []byte("b0"), 1)
	if err := n.Store().Prepare("tx-win", []store.Write{{UID: idA, Data: []byte("a1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Store().Prepare("tx-lose", []store.Write{{UID: idB, Data: []byte("b1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	log := action.NewMemLog()
	log.Record("tx-win", store.OutcomeCommitted)
	n.Crash()
	n.Recover(log)
	if v, _ := n.Store().Read(idA); string(v.Data) != "a1" {
		t.Fatal("committed intention not applied at recovery")
	}
	if v, _ := n.Store().Read(idB); string(v.Data) != "b0" {
		t.Fatal("undecided intention should be rolled back")
	}
}

func TestVolatileAccessors(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	n.SetVolatile("k", "v")
	if v, ok := n.Volatile("k"); !ok || v != "v" {
		t.Fatal("volatile get failed")
	}
	n.DeleteVolatile("k")
	if _, ok := n.Volatile("k"); ok {
		t.Fatal("delete failed")
	}
}

func TestOutcomeResolverConsultedOnNilLogRecovery(t *testing.T) {
	c := NewCluster(transport.MemOptions{})
	n := c.Add("alpha")
	id := uid.NewGenerator("t", 1).New()
	n.Store().Put(id, []byte("v0"), 1)
	if err := n.Store().Prepare("tx-1", []store.Write{{UID: id, Data: []byte("v1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	log := action.NewMemLog()
	log.Record("tx-1", store.OutcomeCommitted)
	var resolvedFor *Node
	c.SetOutcomeResolver(func(rn *Node) store.OutcomeLog {
		resolvedFor = rn
		return log
	})
	n.Crash()
	n.Recover(nil)
	if resolvedFor != n {
		t.Fatal("resolver not consulted (or wrong node) for nil-log recovery")
	}
	if v, _ := n.Store().Read(id); string(v.Data) != "v1" {
		t.Fatal("resolver's committed outcome not applied")
	}
	// An explicit log still overrides the resolver.
	if err := n.Store().Prepare("tx-2", []store.Write{{UID: id, Data: []byte("v2"), Seq: 3}}); err != nil {
		t.Fatal(err)
	}
	resolvedFor = nil
	n.Crash()
	n.Recover(action.NewMemLog()) // empty: presumed abort
	if resolvedFor != nil {
		t.Fatal("resolver must not be consulted when a log is passed")
	}
	if v, _ := n.Store().Read(id); string(v.Data) != "v1" {
		t.Fatal("explicit empty log should abort the pending intention")
	}
}
