// Package sim models the hardware of the paper's system (§2.1): fail-silent
// workstations with stable object stores and volatile memory, connected by
// a local-area network.
//
// A Node either works as specified or stops (Crash). Crashing wipes the
// node's volatile storage and disconnects it from the network; its stable
// store survives — by default because the in-memory backend value is
// kept, or, when the cluster's StorageProvider gave the node a disk
// backend, because the state genuinely lives on disk and every in-process
// byte of it is dropped at the crash. Recover reconnects the node with a
// new incarnation number, reloads persistent stable storage, re-runs
// stable-store recovery against an outcome log, and then invokes any
// recovery protocols services have registered (e.g. the §4.1.2 server
// re-Insert, or the §4.2 store catch-up and Include).
package sim

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/transport"
)

// PingService/PingMethod name the liveness probe every node answers;
// MethodHealth is the richer health report on the same service.
const (
	PingService  = "node"
	PingMethod   = "Ping"
	MethodHealth = "Health"
)

// Ping probes a node's liveness from the given client.
func Ping(ctx context.Context, cli rpc.Client, node transport.Addr) error {
	_, err := rpc.Invoke[struct{}, string](ctx, cli, node, PingService, PingMethod, struct{}{})
	return err
}

// BreakerRec is one peer's breaker state inside a HealthResp.
type BreakerRec struct {
	Peer     transport.Addr
	State    string
	Failures int
	Window   int
}

// HealthResp is a node's health report: incarnation, stable-store queue
// depth (pending prepared transactions), and the node's view of its
// peers' circuit breakers.
type HealthResp struct {
	Node         transport.Addr
	Epoch        uint32
	StorePending int
	Breakers     []BreakerRec
}

// Health fetches node's health report from the given client.
func Health(ctx context.Context, cli rpc.Client, node transport.Addr) (HealthResp, error) {
	return rpc.Invoke[struct{}, HealthResp](ctx, cli, node, PingService, MethodHealth, struct{}{})
}

// Node is one simulated workstation.
type Node struct {
	name    transport.Addr
	cluster *Cluster
	// srv holds the node's service handlers — the "executable binary of
	// the code for the object's methods" (§3.1), which resides in stable
	// storage and therefore survives crashes.
	srv    *rpc.Server
	stable *store.Store
	// persistent marks a node whose stable storage lives outside process
	// memory (a cluster storage provider supplied its backend factory):
	// Crash drops every byte of the store's in-process state, Recover
	// reloads it from the backend.
	persistent bool

	// breakers is the node's per-peer circuit breaker set (nil when the
	// cluster runs without breakers). Breakers are volatile caller-side
	// state about OTHER nodes, so they deliberately survive this node's
	// own Crash/Recover untouched — except that Recover resets every
	// node's breaker toward the recovering node (it is provably back).
	breakers *rpc.Breakers

	mu        sync.Mutex
	up        bool
	epoch     uint32
	volatile  map[string]any
	onRecover []func(*Node)
}

// Name returns the node's network address.
func (n *Node) Name() transport.Addr { return n.name }

// Store returns the node's stable object store.
func (n *Node) Store() *store.Store { return n.stable }

// Server returns the node's RPC dispatch table, used by services to
// register handlers.
func (n *Node) Server() *rpc.Server { return n.srv }

// Client returns an RPC client originating from this node. Calls issued
// through it are recorded in the cluster's metrics registry.
func (n *Node) Client() rpc.Client {
	return rpc.Client{Net: n.cluster.net, From: n.name, Metrics: n.cluster.metrics, Breakers: n.breakers}
}

// Breakers returns the node's circuit breaker set, or nil when the
// cluster runs without breakers.
func (n *Node) Breakers() *rpc.Breakers { return n.breakers }

// Metrics returns the cluster-wide metrics registry, for services on this
// node that record their own instrumentation.
func (n *Node) Metrics() *metrics.Registry { return n.cluster.metrics }

// Up reports whether the node is functioning.
func (n *Node) Up() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.up
}

// Epoch returns the node's incarnation number; it increases on every
// recovery.
func (n *Node) Epoch() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.epoch
}

// SetVolatile stores v in the node's volatile memory; it is lost on crash.
func (n *Node) SetVolatile(key string, v any) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.volatile[key] = v
}

// Volatile fetches a value from volatile memory.
func (n *Node) Volatile(key string) (any, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.volatile[key]
	return v, ok
}

// DeleteVolatile removes a key from volatile memory.
func (n *Node) DeleteVolatile(key string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.volatile, key)
}

// OnRecover registers a recovery protocol run (in registration order)
// whenever the node recovers from a crash.
func (n *Node) OnRecover(f func(*Node)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.onRecover = append(n.onRecover, f)
}

// Crash fail-silently stops the node: it disappears from the network and
// its volatile storage is lost. On a node with persistent (disk-backed)
// stable storage the whole process state goes too — the store's maps are
// dropped and its files closed; only the backend's directory survives,
// exactly like a real machine losing power. Crashing a crashed node is a
// no-op.
func (n *Node) Crash() {
	n.mu.Lock()
	if !n.up {
		n.mu.Unlock()
		return
	}
	n.up = false
	n.volatile = make(map[string]any)
	n.mu.Unlock()
	if n.persistent {
		_ = n.stable.Shutdown()
	}
	n.cluster.net.Unregister(n.name)
}

// ReopenStable reloads a persistent node's stable store from its backend
// without bringing the node up — the inspection hook recovery tooling
// (and the chaos harness's in-doubt accounting) uses to see a crashed
// node's durable state. It is a no-op for in-memory nodes and for stores
// already open; Recover calls it implicitly.
func (n *Node) ReopenStable() error {
	if !n.persistent {
		return nil
	}
	return n.stable.Reopen()
}

// Recover restarts a crashed node: new incarnation, stable-store recovery
// against log, network re-registration, then the registered recovery
// protocols. A nil log uses the cluster's outcome resolver when one is
// installed (SetOutcomeResolver) — the restarting node then asks each
// pending transaction's coordinator for the recorded outcome — and
// otherwise aborts all pending intentions (presumed abort). Recovering a
// functioning node is a no-op.
func (n *Node) Recover(log store.OutcomeLog) {
	n.mu.Lock()
	if n.up {
		n.mu.Unlock()
		return
	}
	n.up = true
	n.epoch++
	n.volatile = make(map[string]any)
	hooks := make([]func(*Node), len(n.onRecover))
	copy(hooks, n.onRecover)
	n.mu.Unlock()

	// A persistent node's process state was dropped at crash time;
	// reload it from the backend before anything consults the store. A
	// reopen failure is unrecoverable setup-level breakage (the
	// simulation owns the directories), so it panics rather than leaving
	// a half-recovered node.
	if err := n.ReopenStable(); err != nil {
		panic(fmt.Sprintf("sim: recover %s: %v", n.name, err))
	}
	if log == nil {
		log = n.cluster.outcomeLog(n)
	}
	// Resolve prepared-but-undecided intentions BEFORE rejoining the
	// network: an in-doubt participant must not serve (or catch up over)
	// state whose fate it has not yet settled.
	n.stable.Recover(log)
	n.cluster.net.Register(n.name, n.srv.Handler())
	// The node is provably back: closing everyone's breaker toward it
	// saves the cooldown+probe round the detector would otherwise need.
	n.cluster.ResetBreakersFor(n.name)
	for _, f := range hooks {
		f(n)
	}
}

// Cluster is a set of nodes on one network. The network is usually the
// in-memory simulator (NewCluster), but any transport.Network works
// (NewClusterOn) — the protocol stack above is transport-agnostic.
type Cluster struct {
	net     transport.Network
	metrics *metrics.Registry

	mu         sync.Mutex
	nodes      map[transport.Addr]*Node
	resolver   func(*Node) store.OutcomeLog
	storage    StorageProvider
	breakerCfg *rpc.BreakerConfig
}

// StorageProvider supplies the stable-storage backend factory for a node
// about to be added; returning nil keeps the default in-process memory
// backend. A non-nil factory marks the node persistent: Crash drops all
// process state and Recover reloads from the backend (see Node.Crash).
type StorageProvider func(name transport.Addr) storage.Factory

// NewCluster returns an empty cluster over a fresh in-memory network.
func NewCluster(opts transport.MemOptions) *Cluster {
	return NewClusterOn(transport.NewMem(opts, nil))
}

// NewClusterOn returns an empty cluster over the given network — e.g. a
// transport.TCP for real-socket deployments. Fault injection (Faults) is
// only available on the in-memory network.
func NewClusterOn(net transport.Network) *Cluster {
	return &Cluster{
		net:     net,
		metrics: &metrics.Registry{},
		nodes:   make(map[transport.Addr]*Node),
	}
}

// Net returns the underlying network.
func (c *Cluster) Net() transport.Network { return c.net }

// Metrics returns the cluster-wide metrics registry, which accumulates
// per-service RPC call counts and latencies from every node's client.
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// SetOutcomeResolver installs the default recovery-time outcome log:
// Node.Recover(nil) consults resolver(node) to settle the node's pending
// intentions, so a restarting in-doubt participant queries coordinators
// instead of blindly presuming abort. The resolver is invoked at recovery
// time with the recovering node (so lookups originate from that node's
// own client). A nil resolver restores the plain presumed-abort default.
func (c *Cluster) SetOutcomeResolver(resolver func(*Node) store.OutcomeLog) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resolver = resolver
}

// outcomeLog returns the recovery log for n from the installed resolver,
// or nil (presumed abort) when none is installed.
func (c *Cluster) outcomeLog(n *Node) store.OutcomeLog {
	c.mu.Lock()
	r := c.resolver
	c.mu.Unlock()
	if r == nil {
		return nil
	}
	return r(n)
}

// SetStorage installs the cluster's stable-storage provider. It must be
// called before nodes are added; nodes already created keep their
// in-memory backends.
func (c *Cluster) SetStorage(p StorageProvider) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storage = p
}

// SetBreakers turns on per-peer circuit breakers for every node added
// after the call (zero config fields take their defaults). Like
// SetStorage it must run before nodes are added. On the in-memory
// network it also hooks the fault plan's heal events so breakers toward
// a healed peer close immediately instead of waiting out a cooldown.
func (c *Cluster) SetBreakers(cfg rpc.BreakerConfig) {
	c.mu.Lock()
	c.breakerCfg = &cfg
	c.mu.Unlock()
	if f := c.Faults(); f != nil {
		f.SetHealHook(func(a, b transport.Addr) {
			if a == "" && b == "" {
				c.ResetAllBreakers()
				return
			}
			c.ResetBreakersFor(a)
			c.ResetBreakersFor(b)
		})
	}
}

// ResetBreakersFor closes every node's breaker toward peer — called when
// peer is known to be reachable again (recovery, partition heal).
func (c *Cluster) ResetBreakersFor(peer transport.Addr) {
	for _, n := range c.Nodes() {
		if n.breakers != nil {
			n.breakers.Reset(peer)
		}
	}
}

// ResetAllBreakers closes every breaker on every node.
func (c *Cluster) ResetAllBreakers() {
	for _, n := range c.Nodes() {
		if n.breakers != nil {
			n.breakers.ResetAll()
		}
	}
}

// Faults returns the network's fault plan, or nil when the underlying
// network exposes none. Mem carries a plan natively; any other transport
// (the mux TCP transport in particular) gains one by wrapping it in
// transport.NewFaulty.
func (c *Cluster) Faults() *transport.Faults {
	if f, ok := c.net.(interface{ Faults() *transport.Faults }); ok {
		return f.Faults()
	}
	return nil
}

// Add creates a functioning node with the given name. Adding a duplicate
// name panics: cluster composition is test/experiment setup code where a
// duplicate is always a bug.
func (c *Cluster) Add(name transport.Addr) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[name]; ok {
		panic(fmt.Sprintf("sim: duplicate node %q", name))
	}
	factory, persistent := storage.MemFactory(), false
	if c.storage != nil {
		if f := c.storage(name); f != nil {
			factory, persistent = f, true
		}
	}
	stable, err := store.OpenWith(string(name), factory)
	if err != nil {
		// Cluster composition is test/experiment setup code; an unopenable
		// stable store there is always a configuration bug.
		panic(fmt.Sprintf("sim: open stable store %q: %v", name, err))
	}
	n := &Node{
		name:       name,
		cluster:    c,
		srv:        rpc.NewServer(),
		stable:     stable,
		persistent: persistent,
		up:         true,
		epoch:      1,
		volatile:   make(map[string]any),
	}
	if c.breakerCfg != nil {
		n.breakers = rpc.NewBreakers(*c.breakerCfg)
	}
	// Every node exports its stable object store over RPC — the Object
	// Storage service of §2.2.
	store.RegisterService(n.srv, n.stable)
	// Plus the live in-doubt sweep: resolve pending intentions whose
	// outcomes are affirmatively recorded, routed through the cluster's
	// outcome resolver. Registered here (not in store.RegisterService)
	// because only the simulation layer knows the coordinator routing.
	n.srv.Handle(store.ServiceName, store.MethodResolveDecided, rpc.Method(func(ctx context.Context, from transport.Addr, req store.ResolveReq) (store.ResolveResp, error) {
		applied, aborted := n.stable.ResolveDecided(c.outcomeLog(n))
		return store.ResolveResp{Applied: applied, Aborted: aborted}, nil
	}))
	// And a liveness probe, used by failure-detection/cleanup protocols
	// (the paper mentions the Object Server database "could periodically
	// check if its clients are functioning", §4.1.3).
	n.srv.Handle(PingService, PingMethod, rpc.Method(func(context.Context, transport.Addr, struct{}) (string, error) {
		return "pong", nil
	}))
	// The health report behind the heartbeat detector and System.Health:
	// what the probe answers, plus what this node sees of its peers.
	n.srv.Handle(PingService, MethodHealth, rpc.Method(func(context.Context, transport.Addr, struct{}) (HealthResp, error) {
		resp := HealthResp{Node: n.name, Epoch: n.Epoch(), StorePending: len(n.stable.PendingTxs())}
		if n.breakers != nil {
			for _, st := range n.breakers.Snapshot() {
				resp.Breakers = append(resp.Breakers, BreakerRec{
					Peer: st.Peer, State: st.State.String(), Failures: st.Failures, Window: st.Window,
				})
			}
		}
		return resp, nil
	}))
	c.nodes[name] = n
	c.net.Register(name, n.srv.Handler())
	return n
}

// Node returns the named node, or nil.
func (c *Cluster) Node(name transport.Addr) *Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nodes[name]
}

// Nodes returns all nodes sorted by name.
func (c *Cluster) Nodes() []*Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// UpNodes returns the names of functioning nodes, sorted.
func (c *Cluster) UpNodes() []transport.Addr {
	var out []transport.Addr
	for _, n := range c.Nodes() {
		if n.Up() {
			out = append(out, n.name)
		}
	}
	return out
}
