package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/transport"
)

// newBreakerCluster builds a three-node cluster with fast breakers.
func newBreakerCluster(t *testing.T) (*Cluster, *Node, *Node, *Node) {
	t.Helper()
	c := NewCluster(transport.MemOptions{})
	c.SetBreakers(rpc.BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour})
	a := c.Add("alpha")
	b := c.Add("beta")
	g := c.Add("gamma")
	return c, a, b, g
}

// trip drives a's breaker toward peer open via failed pings.
func trip(t *testing.T, a *Node, peer transport.Addr) {
	t.Helper()
	cli := a.Client()
	for i := 0; i < 2; i++ {
		if err := Ping(context.Background(), cli, peer); err == nil {
			t.Fatalf("ping %d to crashed %s succeeded", i, peer)
		}
	}
	if st := a.Breakers().State(peer); st != rpc.StateOpen {
		t.Fatalf("breaker(%s) = %v, want open", peer, st)
	}
}

func TestClusterBreakersTripAndFastFail(t *testing.T) {
	_, a, b, _ := newBreakerCluster(t)
	b.Crash()
	trip(t, a, b.Name())
	err := Ping(context.Background(), a.Client(), b.Name())
	if !errors.Is(err, rpc.ErrPeerUnavailable) {
		t.Fatalf("err = %v, want fast-fail ErrPeerUnavailable", err)
	}
	if !errors.Is(err, transport.ErrUnreachable) {
		t.Fatal("fast-fail must also match ErrUnreachable")
	}
}

func TestRecoverResetsBreakersClusterWide(t *testing.T) {
	_, a, b, g := newBreakerCluster(t)
	b.Crash()
	trip(t, a, b.Name())
	trip(t, g, b.Name())
	b.Recover(nil)
	if st := a.Breakers().State(b.Name()); st != rpc.StateClosed {
		t.Fatalf("alpha's breaker after recover = %v, want closed", st)
	}
	if st := g.Breakers().State(b.Name()); st != rpc.StateClosed {
		t.Fatalf("gamma's breaker after recover = %v, want closed", st)
	}
	if err := Ping(context.Background(), a.Client(), b.Name()); err != nil {
		t.Fatalf("ping after recover: %v", err)
	}
}

func TestHealHookResetsBreakers(t *testing.T) {
	c, a, b, _ := newBreakerCluster(t)
	c.Faults().Partition("alpha", "beta")
	trip(t, a, b.Name())
	c.Faults().Heal("alpha", "beta")
	if st := a.Breakers().State(b.Name()); st != rpc.StateClosed {
		t.Fatalf("breaker after heal = %v, want closed", st)
	}
	if err := Ping(context.Background(), a.Client(), b.Name()); err != nil {
		t.Fatalf("ping after heal: %v", err)
	}
	// Clear() resets everything.
	c.Faults().Partition("alpha", "beta")
	trip(t, a, b.Name())
	c.Faults().Clear()
	if st := a.Breakers().State(b.Name()); st != rpc.StateClosed {
		t.Fatalf("breaker after Clear = %v, want closed", st)
	}
}

func TestHealthRPC(t *testing.T) {
	_, a, b, _ := newBreakerCluster(t)
	b.Crash()
	trip(t, a, b.Name())
	h, err := Health(context.Background(), b.Client(), a.Name())
	if err != nil {
		t.Fatalf("health: %v", err)
	}
	// b is crashed but its CLIENT still works (calls originate fine); we
	// asked a for its report.
	if h.Node != "alpha" || h.Epoch != 1 {
		t.Fatalf("health = %+v", h)
	}
	var found bool
	for _, rec := range h.Breakers {
		if rec.Peer == "beta" && rec.State == "open" {
			found = true
		}
	}
	if !found {
		t.Fatalf("alpha's health report misses the open breaker toward beta: %+v", h.Breakers)
	}
}

func TestDetectorSuspectsAndResets(t *testing.T) {
	c, a, b, g := newBreakerCluster(t)
	d := NewDetector(c, a, 5*time.Millisecond)
	d.Suspicion = 2
	d.Start()
	defer d.Stop()

	b.Crash()
	trip(t, g, b.Name())
	deadline := time.Now().Add(2 * time.Second)
	for {
		s := d.Suspected()
		if len(s) == 1 && s[0] == "beta" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("detector never suspected beta: %v", s)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Recover WITHOUT the built-in reset path exercising the detector's:
	// re-trip gamma's breaker after recovery, then let a heartbeat land.
	b.Recover(nil)
	b.Crash()
	trip(t, g, b.Name())
	b.Recover(nil)
	// Recover already reset it; trip once more while up is impossible, so
	// instead verify the detector clears suspicion and the breaker stays
	// closed once heartbeats land again.
	deadline = time.Now().Add(2 * time.Second)
	for {
		if len(d.Suspected()) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("detector never cleared suspicion: %v", d.Suspected())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st := g.Breakers().State(b.Name()); st != rpc.StateClosed {
		t.Fatalf("breaker after detector reset = %v, want closed", st)
	}
}
