package sim

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// Detector is a heartbeat-based failure detector: from one origin node it
// pings every other cluster node on a fixed interval and marks a peer
// suspected after Suspicion consecutive failures. When a suspected peer
// answers again, the detector clears the suspicion AND resets every
// node's circuit breaker toward it — the closed-loop path from "the node
// is back" to "stop fast-failing calls to it" that does not depend on a
// fault-plan heal event (which real deployments do not get).
//
// Heartbeats ride the origin node's own client WITHOUT its breakers:
// the detector must keep probing exactly the peers everyone else has
// given up on, so its pings bypass the breaker fast-fail.
type Detector struct {
	cluster  *Cluster
	origin   *Node
	interval time.Duration
	timeout  time.Duration

	// Suspicion is how many consecutive heartbeat failures mark a peer
	// suspected (default 3). Set before Start.
	Suspicion int

	mu        sync.Mutex
	misses    map[transport.Addr]int
	suspected map[transport.Addr]bool
	stop      chan struct{}
	done      chan struct{}
}

// NewDetector returns a stopped detector probing from origin every
// interval. Each probe's timeout is the interval (a heartbeat slower
// than the next heartbeat is a miss).
func NewDetector(cluster *Cluster, origin *Node, interval time.Duration) *Detector {
	return &Detector{
		cluster:   cluster,
		origin:    origin,
		interval:  interval,
		timeout:   interval,
		Suspicion: 3,
		misses:    make(map[transport.Addr]int),
		suspected: make(map[transport.Addr]bool),
	}
}

// Start launches the heartbeat loop. Starting a started detector is a
// no-op.
func (d *Detector) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go d.run(d.stop, d.done)
}

// Stop halts the heartbeat loop and waits for it to exit. Stopping a
// stopped detector is a no-op.
func (d *Detector) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Suspected returns the currently suspected peers, sorted.
func (d *Detector) Suspected() []transport.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]transport.Addr, 0, len(d.suspected))
	for p, s := range d.suspected {
		if s {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (d *Detector) run(stop, done chan struct{}) {
	defer close(done)
	ticker := time.NewTicker(d.interval)
	defer ticker.Stop()
	// Probe without breakers: a suspected peer must keep being probed.
	cli := d.origin.Client()
	cli.Breakers = nil
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		for _, n := range d.cluster.Nodes() {
			if n.name == d.origin.name {
				continue
			}
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), d.timeout)
			err := Ping(ctx, cli, n.name)
			cancel()
			d.observe(n.name, err == nil)
		}
	}
}

// observe folds one heartbeat outcome into the suspicion state.
func (d *Detector) observe(peer transport.Addr, ok bool) {
	d.mu.Lock()
	if !ok {
		d.misses[peer]++
		if d.misses[peer] >= d.Suspicion {
			d.suspected[peer] = true
		}
		d.mu.Unlock()
		return
	}
	wasSuspected := d.suspected[peer]
	d.misses[peer] = 0
	d.suspected[peer] = false
	d.mu.Unlock()
	if wasSuspected {
		// Recovery after suspicion: the peer answered a real request, so
		// every breaker toward it can close now rather than probe later.
		d.cluster.ResetBreakersFor(peer)
	}
}
