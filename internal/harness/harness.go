// Package harness assembles full simulated deployments — cluster, group
// view database, object servers, stores, clients, registered objects — for
// the examples, experiments and benchmarks. It is the reusable "testbed"
// on which every figure of the paper is reproduced.
package harness

import (
	"context"
	"fmt"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/action"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/lease"
	"repro/internal/lockmgr"
	"repro/internal/metrics"
	"repro/internal/object"
	"repro/internal/placement"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
)

// CounterClass returns the canonical test object: a persistent integer
// counter with a read-only "get" and a mutating "add".
func CounterClass() *object.Class {
	return &object.Class{
		Name: "counter",
		Init: func() []byte { return []byte("0") },
		Methods: map[string]object.Method{
			"add": func(state, args []byte) ([]byte, []byte, error) {
				n, err := strconv.Atoi(string(state))
				if err != nil {
					return nil, nil, fmt.Errorf("counter: corrupt state %q", state)
				}
				d, err := strconv.Atoi(string(args))
				if err != nil {
					return nil, nil, fmt.Errorf("counter: bad delta %q", args)
				}
				out := []byte(strconv.Itoa(n + d))
				return out, out, nil
			},
			"get": func(state, args []byte) ([]byte, []byte, error) {
				return state, state, nil
			},
		},
		ReadOnly: map[string]bool{"get": true},
		// Additions commute: the server may fold queued solo adds into one
		// execution and one commit (flat combining).
		Commutative: map[string]bool{"add": true},
	}
}

// Options sizes a World.
type Options struct {
	// Servers, Stores, Clients are node counts (sv1.., st1.., c1..). With
	// Shards > 1 Servers and Stores are PER-SHARD counts; clients are
	// shared across shards.
	Servers int
	Stores  int
	Clients int
	// Shards partitions the deployment into that many independent
	// server/store groups, each with its own group view database
	// (db1..dbS), plus a placement service node mapping objects to groups.
	// 0 or 1 keeps the classic single-group topology (node "db", no
	// placement service) byte-for-byte.
	Shards int
	// Objects is how many counter objects to create (all with full Sv/St).
	Objects int
	// Net configures the in-memory network (latency, jitter, seed).
	Net transport.MemOptions
	// Network, when non-nil, overrides Net with an explicit transport —
	// e.g. transport.NewTCP() for a real-socket deployment. Fault
	// injection is only available on the default in-memory network.
	Network transport.Network
	// Registry overrides the class registry (default: counter only).
	Registry *object.Registry
	// DataDir, when non-empty, switches every node's stable storage to
	// the disk-backed WAL+snapshot engine rooted at DataDir/<node>:
	// committed versions, prepared intentions and the clients' outcome
	// logs all live on disk, a crash drops the node's whole process
	// state, and recovery replays the directory.
	DataDir string
	// Disk tunes the disk engine (sync discipline, compaction
	// threshold); only meaningful with DataDir set.
	Disk storage.DiskOptions
	// LockLimits bounds every object server's per-object lock wait queues
	// (depth cap and wait deadline); the zero value leaves them unbounded.
	LockLimits lockmgr.Limits
	// NoBreakers disables the per-peer circuit breakers that every node
	// otherwise gets by default.
	NoBreakers bool
	// Breakers tunes the circuit breakers (zero fields take the rpc
	// package defaults). Ignored with NoBreakers.
	Breakers rpc.BreakerConfig
	// PlacementReplicas is how many placement service replicas a sharded
	// world runs (nodes "placement", "placement2", ...). 0 selects the
	// default of 3; 1 keeps the classic single placement node.
	PlacementReplicas int
	// LeaseTTL, when positive, enables cached read leases: every object
	// server grants leased read snapshots with this TTL, and every client
	// node gets a shared lease cache (World.LeaseCaches) that receives
	// invalidation multicasts. Binders built by the world then request
	// leases on read-path invocations.
	LeaseTTL time.Duration
}

// DefaultPlacementReplicas is the placement replica count a sharded world
// gets when Options does not choose one.
const DefaultPlacementReplicas = 3

// Group is one shard's server/store group and its group view database.
type Group struct {
	ID  int // 1-based shard ID
	DB  *core.DB
	Svs []transport.Addr
	Sts []transport.Addr
}

// World is an assembled deployment.
type World struct {
	Cluster *sim.Cluster
	// DB is the first (or only) group's database; Svs/Sts concatenate all
	// groups' nodes, so single-group code and whole-deployment sweeps keep
	// working unchanged on sharded worlds.
	DB      *core.DB
	Objects []uid.UID
	Svs     []transport.Addr
	Sts     []transport.Addr
	Clients []transport.Addr
	Mgrs    map[transport.Addr]*action.Manager
	Metrics *metrics.Registry
	// Registry is the class registry every server (and the lease-read
	// fast path) resolves classes against.
	Registry *object.Registry
	// LeaseCaches holds each client node's shared L2 lease cache; empty
	// unless Options.LeaseTTL was set.
	LeaseCaches map[transport.Addr]*lease.Cache
	// leaseTTL echoes Options.LeaseTTL so binders can carry it into
	// commit processing (the phase-two lease-clock waitout).
	leaseTTL time.Duration
	// Groups lists every shard's group; len 1 when unsharded.
	Groups []Group
	// Place is the placement service's primary replica (nil when
	// unsharded).
	Place *placement.Service
	// PlaceAddr is the primary placement node's address.
	PlaceAddr transport.Addr
	// Places lists every placement replica (primary first); len 1 when
	// the world runs a single placement node.
	Places []*placement.Service
	// PlaceAddrs lists every placement node address, primary first.
	PlaceAddrs []transport.Addr
}

// New builds a world: one db node, the requested servers/stores/clients,
// and Options.Objects registered counter objects.
func New(opts Options) (*World, error) {
	if opts.Servers < 1 || opts.Stores < 1 || opts.Clients < 1 {
		return nil, fmt.Errorf("harness: need at least one server, store and client (got %d/%d/%d)",
			opts.Servers, opts.Stores, opts.Clients)
	}
	if opts.Objects < 1 {
		opts.Objects = 1
	}
	reg := opts.Registry
	if reg == nil {
		reg = object.NewRegistry()
		reg.Register(CounterClass())
	}
	net := opts.Network
	if net == nil {
		net = transport.NewMem(opts.Net, nil)
	}
	w := &World{
		Cluster:     sim.NewClusterOn(net),
		Mgrs:        make(map[transport.Addr]*action.Manager),
		Registry:    reg,
		LeaseCaches: make(map[transport.Addr]*lease.Cache),
		leaseTTL:    opts.LeaseTTL,
	}
	// The world shares the cluster's registry, so RPC-layer call counts
	// and latencies land next to whatever the harness records itself.
	w.Metrics = w.Cluster.Metrics()
	if !opts.NoBreakers {
		w.Cluster.SetBreakers(opts.Breakers)
	}
	if opts.DataDir != "" {
		dataDir, disk := opts.DataDir, opts.Disk
		w.Cluster.SetStorage(func(name transport.Addr) storage.Factory {
			return storage.DiskFactory(filepath.Join(dataDir, string(name)), disk)
		})
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	if shards == 1 {
		w.Groups = []Group{{ID: 1, DB: core.NewDB(w.Cluster.Add("db"))}}
	} else {
		for s := 1; s <= shards; s++ {
			w.Groups = append(w.Groups, Group{ID: s, DB: core.NewDB(w.Cluster.Add(transport.Addr("db" + strconv.Itoa(s))))})
		}
	}
	w.DB = w.Groups[0].DB
	for i := 0; i < shards*opts.Servers; i++ {
		name := transport.Addr("sv" + strconv.Itoa(i+1))
		n := w.Cluster.Add(name)
		m := object.NewManager(n, reg)
		m.SetLockLimits(opts.LockLimits)
		m.EnableGroupInvocation(group.NewHost(n.Server(), n.Client()))
		if opts.LeaseTTL > 0 {
			m.EnableLeases(opts.LeaseTTL)
		}
		w.Svs = append(w.Svs, name)
		g := &w.Groups[i/opts.Servers]
		g.Svs = append(g.Svs, name)
	}
	for i := 0; i < shards*opts.Stores; i++ {
		name := transport.Addr("st" + strconv.Itoa(i+1))
		w.Cluster.Add(name)
		w.Sts = append(w.Sts, name)
		g := &w.Groups[i/opts.Stores]
		g.Sts = append(g.Sts, name)
	}
	if shards > 1 {
		replicas := opts.PlacementReplicas
		if replicas <= 0 {
			replicas = DefaultPlacementReplicas
		}
		nodes := make([]*sim.Node, replicas)
		for i := range nodes {
			name := transport.Addr("placement")
			if i > 0 {
				name = transport.Addr("placement" + strconv.Itoa(i+1))
			}
			nodes[i] = w.Cluster.Add(name)
			w.PlaceAddrs = append(w.PlaceAddrs, name)
		}
		infos := make([]placement.ShardInfo, len(w.Groups))
		for i, g := range w.Groups {
			infos[i] = placement.ShardInfo{ID: g.ID, DB: g.DB.Addr(), Svs: g.Svs, Sts: g.Sts}
		}
		w.Places = placement.NewReplicatedGroup(nodes, infos)
		w.Place = w.Places[0]
		w.PlaceAddr = w.PlaceAddrs[0]
	}
	for i := 0; i < opts.Clients; i++ {
		name := transport.Addr("c" + strconv.Itoa(i+1))
		n := w.Cluster.Add(name)
		// The coordinator's outcome log shares the client node's stable
		// storage backend: with DataDir set, commit records are on disk in
		// the client's own directory; otherwise they live in the node's
		// in-memory backend exactly as before. Resolved per call so the
		// log follows the backend across a crash/reopen cycle.
		w.Mgrs[name] = action.NewManager(string(name), action.NewBackendLogFunc(n.Store().Backend))
		// The client is the 2PC coordinator for its actions; its outcome
		// log must answer recovery-time queries from restarting
		// participants (presumed abort: no record means abort — but an
		// action still inside commit processing answers "unavailable",
		// which is why the manager, not the raw log, serves lookups).
		action.RegisterLogService(n.Server(), w.Mgrs[name])
		if opts.LeaseTTL > 0 {
			// The client node's group host receives the invalidation
			// multicasts committing servers send to lease holders.
			w.LeaseCaches[name] = lease.NewCache(group.NewHost(n.Server(), n.Client()), w.Metrics)
		}
		w.Clients = append(w.Clients, name)
	}
	// Recovering nodes resolve in-doubt intentions by asking the
	// transaction's coordinator, identified by the action ID's origin —
	// which, by the manager construction above, is the client's address.
	w.Cluster.SetOutcomeResolver(func(n *sim.Node) store.OutcomeLog {
		return w.OutcomeLogFor(n)
	})
	rpcc := w.Cluster.Node(w.Clients[0]).Client()
	gen := uid.NewGenerator("obj", 1)
	for i := 0; i < opts.Objects; i++ {
		id := gen.New()
		g := w.GroupOf(id)
		creator := core.Client{RPC: rpcc, DB: g.DB.Addr()}
		if err := core.CreateObject(context.Background(), creator, w.Mgrs[w.Clients[0]], id, "counter", []byte("0"), g.Svs, g.Sts); err != nil {
			return nil, fmt.Errorf("harness: create object %d: %w", i, err)
		}
		w.Objects = append(w.Objects, id)
	}
	return w, nil
}

// Sharded reports whether the world has more than one group.
func (w *World) Sharded() bool { return w.Place != nil }

// GroupOf returns the group an object currently lives in, per the
// placement service (the only group, when unsharded).
func (w *World) GroupOf(id uid.UID) *Group {
	if w.Place == nil {
		return &w.Groups[0]
	}
	shard, _ := w.Place.Lookup(id)
	return &w.Groups[shard-1]
}

// GroupFor returns the group a node belongs to (its database, server or
// store set), or the first group for nodes outside any (clients, the
// placement node).
func (w *World) GroupFor(node transport.Addr) *Group {
	for i := range w.Groups {
		g := &w.Groups[i]
		if g.DB.Addr() == node {
			return g
		}
		for _, sv := range g.Svs {
			if sv == node {
				return g
			}
		}
		for _, st := range g.Sts {
			if st == node {
				return g
			}
		}
	}
	return &w.Groups[0]
}

// Rebalance moves an object to the target shard (1-based), using the
// first client node as the migration coordinator.
func (w *World) Rebalance(ctx context.Context, id uid.UID, target int) error {
	return w.RebalanceBatch(ctx, []uid.UID{id}, target)
}

// RebalanceBatch moves a batch of objects to the target shard under one
// migration action and one placement epoch bump per object (a single
// AssignBatch round), using the first client node as the coordinator.
func (w *World) RebalanceBatch(ctx context.Context, ids []uid.UID, target int) error {
	if w.Place == nil {
		return fmt.Errorf("harness: Rebalance requires a sharded world")
	}
	client := w.Clients[0]
	pc := placement.NewClient(w.Cluster.Node(client).Client(), w.PlaceAddrs...)
	return placement.Move(ctx, pc, w.Mgrs[client], w.Cluster.Node(client).Client(), ids, target, w.leaseTTL > 0)
}

// ShardBinder builds a shard-aware binder for the named client. Requires
// a sharded world.
func (w *World) ShardBinder(client transport.Addr, scheme core.Scheme, policy replica.Policy, degree int) *placement.Binder {
	if w.Place == nil {
		panic("harness: ShardBinder requires a sharded world")
	}
	rpcc := w.Cluster.Node(client).Client()
	return &placement.Binder{
		Place:       placement.NewClient(rpcc, w.PlaceAddrs...),
		Actions:     w.Mgrs[client],
		ClientNode:  client,
		RPC:         rpcc,
		Scheme:      scheme,
		Policy:      policy,
		Degree:      degree,
		LeaseHolder: w.leaseHolderFor(client),
		LeaseTTL:    w.leaseTTL,
	}
}

// leaseHolderFor names the client as a lease holder when the world runs
// with leases enabled (the client node then has a cache to hold them).
func (w *World) leaseHolderFor(client transport.Addr) transport.Addr {
	if _, ok := w.LeaseCaches[client]; ok {
		return client
	}
	return ""
}

// LeaseLocal builds a per-client L1 lease cache over the client node's
// shared L2. Requires Options.LeaseTTL to have been set.
func (w *World) LeaseLocal(client transport.Addr, capacity int) *lease.Local {
	c, ok := w.LeaseCaches[client]
	if !ok {
		panic("harness: LeaseLocal requires Options.LeaseTTL")
	}
	return lease.NewLocal(c, capacity)
}

// AnyBinder returns the natural binder for the world: shard-aware when
// sharded, the classic single-group binder otherwise.
func (w *World) AnyBinder(client transport.Addr, scheme core.Scheme, policy replica.Policy, degree int) core.ActionBinder {
	if w.Sharded() {
		return w.ShardBinder(client, scheme, policy, degree)
	}
	return w.Binder(client, scheme, policy, degree)
}

// OutcomeLogFor returns the recovery-time outcome log a node (or a
// restart-equivalent sweep on its behalf) should resolve pending
// intentions against: transaction origins route to the coordinating
// client's outcome-log service; origins that name no client yield the
// affirmative no-record answer (presumed abort).
func (w *World) OutcomeLogFor(n *sim.Node) store.OutcomeLog {
	return action.OriginLog{
		Client: n.Client(),
		Resolve: func(origin string) (transport.Addr, bool) {
			a := transport.Addr(origin)
			_, ok := w.Mgrs[a]
			return a, ok
		},
	}
}

// Binder builds a binder for the named client.
func (w *World) Binder(client transport.Addr, scheme core.Scheme, policy replica.Policy, degree int) *core.Binder {
	return &core.Binder{
		DB:          core.Client{RPC: w.Cluster.Node(client).Client(), DB: "db"},
		Actions:     w.Mgrs[client],
		ClientNode:  client,
		Scheme:      scheme,
		Policy:      policy,
		Degree:      degree,
		LeaseHolder: w.leaseHolderFor(client),
		LeaseTTL:    w.leaseTTL,
	}
}

// ActionResult describes one workload action.
type ActionResult struct {
	Committed bool
	Err       error
	// Tx is the action's identifier — the key recovery-time outcome
	// queries are made under.
	Tx string
	// CommitFailed distinguishes a failure of Commit itself from a
	// bind/invoke failure (which the runner resolved by aborting): only a
	// failed Commit can leave the outcome genuinely unobservable when the
	// caller's context died mid-protocol.
	CommitFailed bool
	// Result is the (first) invocation's reply, e.g. the counter value
	// after an add — workload checkers use it as an ordering breadcrumb.
	Result []byte
	// Probes counts server bindings that were found broken during the
	// action ("the hard way" discovery cost).
	Probes int
	// ExcludedStores counts St nodes excluded at commit.
	ExcludedStores int
	// OnePhase reports that the commit took the single-participant
	// combined round (no outcome-log record).
	OnePhase bool
	// PreparedStores lists the St nodes that held the action's prepared
	// (or one-phase committed) writes — the chaos harness's chain-fork
	// breadcrumb.
	PreparedStores []transport.Addr
	// Leased reports that a read was served entirely from the local
	// lease cache — zero RPCs, zero lock-manager traffic.
	Leased bool
}

// RunCounterAction executes one client action against object idx: bind,
// add delta, commit. Errors abort the action and are reported in the
// result rather than returned — workload drivers count them.
func (w *World) RunCounterAction(ctx context.Context, b core.ActionBinder, idx int, delta int) ActionResult {
	act := b.BeginTop()
	res := ActionResult{Tx: act.ID()}
	bd, err := b.Bind(ctx, act, w.Objects[idx])
	if err != nil {
		_ = act.Abort(ctx)
		res.Err = err
		return res
	}
	out, err := bd.Invoke(ctx, "add", []byte(strconv.Itoa(delta)))
	if err != nil {
		_ = act.Abort(ctx)
		res.Err = err
		res.Probes = len(bd.BrokenServers())
		return res
	}
	res.Result = out
	rep, err := act.Commit(ctx)
	if err != nil {
		res.Err = err
		res.CommitFailed = true
		res.Probes = len(bd.BrokenServers())
		return res
	}
	res.Committed = true
	res.OnePhase = rep.OnePhase
	res.Probes = len(bd.BrokenServers())
	res.ExcludedStores = len(bd.FailedStores())
	res.PreparedStores = bd.PreparedStores()
	return res
}

// RunTransferAction executes one bank-style transfer: a single action
// binds objects from and to, subtracts amount from the first and adds it
// to the second. Both bindings are participants of one top-level action,
// so the transfer is failure-atomic across the two objects — the
// conservation workload of the chaos harness.
func (w *World) RunTransferAction(ctx context.Context, b core.ActionBinder, from, to int, amount int) ActionResult {
	act := b.BeginTop()
	res := ActionResult{Tx: act.ID()}
	abort := func(err error) ActionResult {
		_ = act.Abort(ctx)
		res.Err = err
		return res
	}
	bdFrom, err := b.Bind(ctx, act, w.Objects[from])
	if err != nil {
		return abort(err)
	}
	bdTo, err := b.Bind(ctx, act, w.Objects[to])
	if err != nil {
		return abort(err)
	}
	out, err := bdFrom.Invoke(ctx, "add", []byte(strconv.Itoa(-amount)))
	if err != nil {
		return abort(err)
	}
	res.Result = out
	if _, err := bdTo.Invoke(ctx, "add", []byte(strconv.Itoa(amount))); err != nil {
		return abort(err)
	}
	if _, err := act.Commit(ctx); err != nil {
		res.Err = err
		res.CommitFailed = true
		return res
	}
	res.Committed = true
	res.ExcludedStores = len(bdFrom.FailedStores()) + len(bdTo.FailedStores())
	return res
}

// RunReadAction executes one read-only action (get) against object idx.
func (w *World) RunReadAction(ctx context.Context, b core.ActionBinder, idx int) ActionResult {
	act := b.BeginTop()
	bd, err := b.Bind(ctx, act, w.Objects[idx])
	if err != nil {
		_ = act.Abort(ctx)
		return ActionResult{Err: err}
	}
	if _, err := bd.Invoke(ctx, "get", nil); err != nil {
		_ = act.Abort(ctx)
		return ActionResult{Err: err, Probes: len(bd.BrokenServers())}
	}
	if _, err := act.Commit(ctx); err != nil {
		return ActionResult{Err: err, Probes: len(bd.BrokenServers())}
	}
	return ActionResult{Committed: true, Probes: len(bd.BrokenServers())}
}

// RunLeasedReadAction executes one read of object idx that may be served
// from the client's lease cache: while a valid lease is held the read
// runs the class's read-only "get" locally on the cached snapshot, with
// zero RPCs. On a miss it falls back to a regular read-only action whose
// invocation requests a fresh lease, and caches any grant.
func (w *World) RunLeasedReadAction(ctx context.Context, b core.ActionBinder, lc *lease.Local, idx int) ActionResult {
	id := w.Objects[idx]
	if e, ok := lc.Get(id, time.Now()); ok {
		if cls, err := w.Registry.Lookup(e.Snap.Class); err == nil && cls.IsReadOnly("get") {
			if fn, err := cls.Method("get"); err == nil {
				if _, out, err := fn(e.Snap.State, nil); err == nil {
					return ActionResult{Committed: true, Leased: true, Result: out}
				}
			}
		}
	}
	// Miss (or an unexpected class/method problem): take the slow path.
	// The grant's client-side expiry is measured from BEFORE the invoke
	// is sent, so it is conservative under any clock relation.
	t0 := time.Now()
	act := b.BeginTop()
	res := ActionResult{Tx: act.ID()}
	bd, err := b.Bind(ctx, act, id)
	if err != nil {
		_ = act.Abort(ctx)
		res.Err = err
		return res
	}
	out, err := bd.Invoke(ctx, "get", nil)
	if err != nil {
		_ = act.Abort(ctx)
		res.Err = err
		return res
	}
	res.Result = out
	if g, ok := bd.LeaseGrant(); ok {
		lc.Put(lease.Snapshot{UID: id, Class: g.Class, State: g.State, Seq: g.Seq, Expiry: t0.Add(g.TTL)})
	}
	if _, err := act.Commit(ctx); err != nil {
		res.Err = err
		res.CommitFailed = true
		return res
	}
	res.Committed = true
	return res
}

// StoreSeqs returns each live store node's committed (value, seq) for
// object idx; missing entries are skipped. Used by consistency checks.
func (w *World) StoreSeqs(idx int) map[transport.Addr]uint64 {
	out := make(map[transport.Addr]uint64)
	for _, st := range w.Sts {
		n := w.Cluster.Node(st)
		if seq, ok := n.Store().SeqOf(w.Objects[idx]); ok {
			out[st] = seq
		}
	}
	return out
}

// CurrentStView reads St for object idx outside any client action,
// against the object's own group database.
func (w *World) CurrentStView(ctx context.Context, idx int) ([]transport.Addr, error) {
	cli := core.Client{RPC: w.Cluster.Node("c1").Client(), DB: w.GroupOf(w.Objects[idx]).DB.Addr()}
	act := w.Mgrs["c1"].BeginTop()
	st, _, err := cli.GetView(ctx, act.ID(), w.Objects[idx])
	_ = cli.EndAction(ctx, act.ID(), true)
	_, _ = act.Commit(ctx)
	return st, err
}

// CurrentSvView reads Sv for object idx outside any client action,
// against the object's own group database.
func (w *World) CurrentSvView(ctx context.Context, idx int) ([]transport.Addr, error) {
	cli := core.Client{RPC: w.Cluster.Node("c1").Client(), DB: w.GroupOf(w.Objects[idx]).DB.Addr()}
	act := w.Mgrs["c1"].BeginTop()
	sv, _, err := cli.GetServer(ctx, act.ID(), w.Objects[idx], false, false)
	_ = cli.EndAction(ctx, act.ID(), true)
	_, _ = act.Commit(ctx)
	return sv, err
}
