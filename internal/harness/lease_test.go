package harness

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replica"
)

// TestLeasedReadBasics exercises the whole lease loop on a tiny world:
// a read grants a lease, the next read is served from cache with zero
// RPCs, and a committed write invalidates the cached snapshot before
// the writer observes its commit.
func TestLeasedReadBasics(t *testing.T) {
	// Modest TTL: the first version-advancing commit waits out a 2×TTL
	// grace for leases a prior server incarnation might have granted.
	w, err := New(Options{Servers: 2, Stores: 3, Clients: 1, Objects: 1, LeaseTTL: 250 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 0)
	lc := w.LeaseLocal("c1", 0)

	if res := w.RunCounterAction(ctx, b, 0, 5); res.Err != nil {
		t.Fatalf("add: %v", res.Err)
	}

	// First read misses, runs a real action, and harvests a grant.
	res := w.RunLeasedReadAction(ctx, b, lc, 0)
	if res.Err != nil || res.Leased {
		t.Fatalf("first read: err=%v leased=%v", res.Err, res.Leased)
	}
	if string(res.Result) != "5" {
		t.Fatalf("first read = %q, want 5", res.Result)
	}

	// Second read is a pure cache hit.
	res = w.RunLeasedReadAction(ctx, b, lc, 0)
	if res.Err != nil || !res.Leased {
		t.Fatalf("second read: err=%v leased=%v (want cache hit)", res.Err, res.Leased)
	}
	if string(res.Result) != "5" {
		t.Fatalf("second read = %q, want 5", res.Result)
	}
	if hits := w.Metrics.Counter("lease.l1.hits").Value(); hits == 0 {
		t.Fatal("no L1 hits recorded")
	}

	// A committed write must invalidate the holder before the commit is
	// acknowledged: the very next leased read may not serve the stale 5.
	if res := w.RunCounterAction(ctx, b, 0, 3); res.Err != nil {
		t.Fatalf("second add: %v", res.Err)
	}
	res = w.RunLeasedReadAction(ctx, b, lc, 0)
	if res.Err != nil {
		t.Fatalf("read after write: %v", res.Err)
	}
	if string(res.Result) != "8" {
		t.Fatalf("read after write = %q (leased=%v), want 8", res.Result, res.Leased)
	}
	if inv := w.Metrics.Counter("lease.invalidated").Value(); inv == 0 {
		t.Fatal("no invalidations recorded — commit did not reach the holder")
	}
}
