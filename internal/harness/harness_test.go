package harness

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/action"
	"repro/internal/core"
	"repro/internal/object"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/transport"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options should fail")
	}
	if _, err := New(Options{Servers: 1, Stores: 0, Clients: 1}); err == nil {
		t.Fatal("zero stores should fail")
	}
}

func TestWorldShape(t *testing.T) {
	w, err := New(Options{Servers: 2, Stores: 3, Clients: 2, Objects: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Svs) != 2 || len(w.Sts) != 3 || len(w.Clients) != 2 || len(w.Objects) != 2 {
		t.Fatalf("world shape: %d/%d/%d/%d", len(w.Svs), len(w.Sts), len(w.Clients), len(w.Objects))
	}
	// Objects are installed at every store with seq 1.
	for i := range w.Objects {
		seqs := w.StoreSeqs(i)
		if len(seqs) != 3 {
			t.Fatalf("object %d on %d stores", i, len(seqs))
		}
		for st, seq := range seqs {
			if seq != 1 {
				t.Fatalf("object %d at %s seq=%d", i, st, seq)
			}
		}
	}
	sv, err := w.CurrentSvView(context.Background(), 0)
	if err != nil || len(sv) != 2 {
		t.Fatalf("sv view = %v (%v)", sv, err)
	}
	st, err := w.CurrentStView(context.Background(), 0)
	if err != nil || len(st) != 3 {
		t.Fatalf("st view = %v (%v)", st, err)
	}
}

func TestRunCounterActionLifecycle(t *testing.T) {
	w, err := New(Options{Servers: 1, Stores: 1, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 1)
	r := w.RunCounterAction(ctx, b, 0, 5)
	if !r.Committed || r.Err != nil {
		t.Fatalf("result = %+v", r)
	}
	r = w.RunReadAction(ctx, b, 0)
	if !r.Committed {
		t.Fatalf("read result = %+v", r)
	}
	// Crash everything: action fails but reports instead of panicking.
	w.Cluster.Node("sv1").Crash()
	r = w.RunCounterAction(ctx, b, 0, 1)
	if r.Committed || r.Err == nil {
		t.Fatalf("crashed-world result = %+v", r)
	}
}

func TestCounterClassBadInputs(t *testing.T) {
	c := CounterClass()
	add := c.Methods["add"]
	if _, _, err := add([]byte("7"), []byte("oops")); err == nil {
		t.Fatal("bad delta should error")
	}
	if _, _, err := add([]byte("junk"), []byte("1")); err == nil {
		t.Fatal("corrupt state should error")
	}
	newState, out, err := add([]byte("7"), []byte("3"))
	if err != nil || string(newState) != "10" || string(out) != "10" {
		t.Fatalf("add: %s %s %v", newState, out, err)
	}
}

// TestInDoubtStoreResolvesToCommitOnRestart drives the paper's hardest
// recovery shape end to end: a store node crashes after acknowledging a
// prepare (it voted commit) and before phase two reaches it. The action
// commits; the store restarts with a prepared-but-undecided intention and
// must learn the outcome from the coordinator's log — the full
// OriginLog -> outcome-log-service wiring — and apply it.
func TestInDoubtStoreResolvesToCommitOnRestart(t *testing.T) {
	w, err := New(Options{Servers: 1, Stores: 2, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st2 := w.Cluster.Node("st2")
	// The moment st2's prepare acknowledgement is on the wire, the node
	// dies: it has voted commit but will never hear the outcome online.
	w.Cluster.Faults().OnReply(1,
		transport.ToMethod("st2", store.ServiceName, store.MethodPrepare),
		func(transport.Request) { st2.Crash() })

	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 0)
	res := w.RunCounterAction(ctx, b, 0, 1)
	if !res.Committed {
		t.Fatalf("action should commit (st1 carries it): %v", res.Err)
	}
	if pend := st2.Store().PendingTxs(); len(pend) != 1 {
		t.Fatalf("st2 pending intentions = %v, want exactly the in-doubt tx", pend)
	}
	if seq, _ := st2.Store().SeqOf(w.Objects[0]); seq != 1 {
		t.Fatalf("st2 committed seq = %d before restart, want 1", seq)
	}

	// Restart with no explicit log: the cluster's resolver routes the
	// outcome query to coordinator c1 by the transaction's origin.
	st2.Recover(nil)
	if pend := st2.Store().PendingTxs(); len(pend) != 0 {
		t.Fatalf("in-doubt intention survived restart: %v", pend)
	}
	v, err := st2.Store().Read(w.Objects[0])
	if err != nil || string(v.Data) != "1" || v.Seq != 2 {
		t.Fatalf("st2 after restart = %q/%d (%v), want logged commit applied (1/2)", v.Data, v.Seq, err)
	}
}

// TestInDoubtStoreResolvesToAbortOnRestart is the presumed-abort twin: st1
// records the intention but its acknowledgement is lost and the node dies;
// st2 never receives its prepare at all. No store acknowledged, so the
// action aborts. At restart the coordinator's log says aborted and st1's
// in-doubt intention must be rolled back. (Two stores keep the commit on
// the ordinary 2PC path — a single store would take the one-phase round,
// which records no intention to be in doubt about.)
func TestInDoubtStoreResolvesToAbortOnRestart(t *testing.T) {
	w, err := New(Options{Servers: 1, Stores: 2, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st1 := w.Cluster.Node("st1")
	rule := transport.ToMethod("st1", store.ServiceName, store.MethodPrepare)
	w.Cluster.Faults().OnReply(1, rule, func(transport.Request) { st1.Crash() })
	w.Cluster.Faults().DropReplies(1, rule)
	w.Cluster.Faults().DropRequests(1, transport.ToMethod("st2", store.ServiceName, store.MethodPrepare))

	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 0)
	res := w.RunCounterAction(ctx, b, 0, 1)
	if res.Committed {
		t.Fatal("action must abort: no store acknowledged the prepare")
	}
	if pend := st1.Store().PendingTxs(); len(pend) != 1 {
		t.Fatalf("st1 pending intentions = %v, want the in-doubt tx", pend)
	}

	st1.Recover(nil)
	if pend := st1.Store().PendingTxs(); len(pend) != 0 {
		t.Fatalf("in-doubt intention survived restart: %v", pend)
	}
	v, err := st1.Store().Read(w.Objects[0])
	if err != nil || string(v.Data) != "0" || v.Seq != 1 {
		t.Fatalf("st1 after restart = %q/%d (%v), want rolled back (0/1)", v.Data, v.Seq, err)
	}
}

// TestServerCrashAfterPrepareDoesNotStrandCommit exercises the phase-two
// fallback: the object server dies after relaying a successful prepare, so
// the commit decision can no longer flow through it. The committed state
// must still land at the stores (directly), not sit stranded as
// intentions until every store restarts.
func TestServerCrashAfterPrepareDoesNotStrandCommit(t *testing.T) {
	w, err := New(Options{Servers: 1, Stores: 2, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	sv1 := w.Cluster.Node("sv1")
	w.Cluster.Faults().OnReply(1,
		transport.ToMethod("sv1", object.ServiceName, object.MethodPrepare),
		func(transport.Request) { sv1.Crash() })

	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 0)
	res := w.RunCounterAction(ctx, b, 0, 1)
	if !res.Committed {
		t.Fatalf("action voted commit everywhere; it must commit: %v", res.Err)
	}
	for _, st := range w.Sts {
		n := w.Cluster.Node(st)
		if pend := n.Store().PendingTxs(); len(pend) != 0 {
			t.Fatalf("%s still holds intentions after direct commit: %v", st, pend)
		}
		v, err := n.Store().Read(w.Objects[0])
		if err != nil || string(v.Data) != "1" || v.Seq != 2 {
			t.Fatalf("%s = %q/%d (%v), want committed 1/2", st, v.Data, v.Seq, err)
		}
	}
}

// TestTransferConservesTotal sanity-checks the bank workload primitive.
func TestTransferConservesTotal(t *testing.T) {
	w, err := New(Options{Servers: 1, Stores: 2, Clients: 1, Objects: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := w.Binder("c1", core.SchemeIndependent, replica.SingleCopyPassive, 0)
	if res := w.RunTransferAction(ctx, b, 0, 1, 5); !res.Committed {
		t.Fatalf("transfer: %v", res.Err)
	}
	total := 0
	for i := range w.Objects {
		v, err := w.Cluster.Node("st1").Store().Read(w.Objects[i])
		if err != nil {
			t.Fatal(err)
		}
		n, err := strconv.Atoi(string(v.Data))
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 0 {
		t.Fatalf("total after transfer = %d, want 0 (conservation)", total)
	}
}

// TestInDoubtIntentionSurvivesUnreachableCoordinator: a participant that
// voted commit must NOT presume abort just because its coordinator is
// unreachable at restart — the commit record may exist unread. The
// intention stays pending through the partitioned restart and resolves to
// the logged outcome once the coordinator answers.
func TestInDoubtIntentionSurvivesUnreachableCoordinator(t *testing.T) {
	w, err := New(Options{Servers: 1, Stores: 2, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st2 := w.Cluster.Node("st2")
	w.Cluster.Faults().OnReply(1,
		transport.ToMethod("st2", store.ServiceName, store.MethodPrepare),
		func(transport.Request) { st2.Crash() })

	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 0)
	if res := w.RunCounterAction(ctx, b, 0, 1); !res.Committed {
		t.Fatalf("action should commit: %v", res.Err)
	}

	// Restart while the coordinator is unreachable: the in-doubt
	// intention must survive, and the committed state must NOT appear
	// (the store cannot know the outcome yet).
	w.Cluster.Faults().Partition("st2", "c1")
	st2.Recover(nil)
	if pend := st2.Store().PendingTxs(); len(pend) != 1 {
		t.Fatalf("pending after partitioned restart = %v, want the in-doubt tx kept", pend)
	}
	if seq, _ := st2.Store().SeqOf(w.Objects[0]); seq != 1 {
		t.Fatalf("st2 seq = %d after partitioned restart, want still 1", seq)
	}

	// Heal and retry the resolution (a restart-equivalent sweep): now the
	// logged commit applies.
	w.Cluster.Faults().Heal("st2", "c1")
	st2.Store().Recover(action.OriginLog{Client: st2.Client()})
	if pend := st2.Store().PendingTxs(); len(pend) != 0 {
		t.Fatalf("pending after heal = %v, want resolved", pend)
	}
	if v, err := st2.Store().Read(w.Objects[0]); err != nil || string(v.Data) != "1" || v.Seq != 2 {
		t.Fatalf("st2 = %q/%d (%v), want logged commit applied", v.Data, v.Seq, err)
	}
}

// TestPartitionedRelayCommitsStoreDirectly pins the chaos-found chain
// fork (counter seed 7): st2 acks its prepare, then a partition cuts the
// server's path to it, so the phase-two relay through sv1 fails while
// the client's own path to st2 is fine. The commit must reach st2
// directly — leaving the acknowledged update only as a pending intention
// invites a later action to find st2 busy, exclude the sole holder of
// the latest state, and rebuild the same version on a stale base,
// dropping this committed update.
func TestPartitionedRelayCommitsStoreDirectly(t *testing.T) {
	w, err := New(Options{Servers: 1, Stores: 2, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The instant st2's prepare ack is on the wire, partition sv1<->st2:
	// the vote stands, but the server can no longer relay the outcome.
	w.Cluster.Faults().OnReply(1,
		transport.ToMethod("st2", store.ServiceName, store.MethodPrepare),
		func(transport.Request) { w.Cluster.Faults().Partition("sv1", "st2") })

	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 0)
	res := w.RunCounterAction(ctx, b, 0, 1)
	if !res.Committed {
		t.Fatalf("action must commit: %v", res.Err)
	}
	st2 := w.Cluster.Node("st2")
	if pend := st2.Store().PendingTxs(); len(pend) != 0 {
		t.Fatalf("st2 left with pending intentions %v — the direct commit fallback did not run", pend)
	}
	v, err := st2.Store().Read(w.Objects[0])
	if err != nil || string(v.Data) != "1" || v.Seq != 2 {
		t.Fatalf("st2 = %q/%d (%v), want committed 1/2 via the client's direct path", v.Data, v.Seq, err)
	}
	if res.ExcludedStores != 0 {
		t.Fatalf("st2 excluded (%d) despite the healed commit — it still holds the latest state", res.ExcludedStores)
	}
}

// TestBusyPinResolvesToCommitInsteadOfExclusion pins the second
// chaos-found chain-fork shape (counter seed 8): action X commits but
// BOTH its phase-two commit relay and the client's direct retry to st1
// are lost, leaving st1 pinned by X's prepared-but-committed intention.
// The next action must not give up on st1 (excluding the holder of the
// latest state and rebuilding X's version on a stale base): the
// write-back's busy retry asks st1 to resolve affirmatively-decided
// pins first, which applies X's commit and lets the new prepare extend
// the healed chain.
func TestBusyPinResolvesToCommitInsteadOfExclusion(t *testing.T) {
	w, err := New(Options{Servers: 1, Stores: 2, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Eat st1's store-level commit twice: the server's relay and the
	// client's direct fallback.
	w.Cluster.Faults().DropRequests(2, transport.ToMethod("st1", store.ServiceName, store.MethodCommit))

	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 0)
	resX := w.RunCounterAction(ctx, b, 0, 1)
	if !resX.Committed {
		t.Fatalf("action X must commit (st2 carries it): %v", resX.Err)
	}
	st1 := w.Cluster.Node("st1")
	if pend := st1.Store().PendingTxs(); len(pend) != 1 {
		t.Fatalf("st1 pending = %v, want X's stuck committed intention", pend)
	}

	resY := w.RunCounterAction(ctx, b, 0, 1)
	if !resY.Committed {
		t.Fatalf("action Y must commit: %v", resY.Err)
	}
	if resY.ExcludedStores != 0 {
		t.Fatalf("Y excluded %d stores — the busy pin should have resolved to X's commit instead", resY.ExcludedStores)
	}
	if pend := st1.Store().PendingTxs(); len(pend) != 0 {
		t.Fatalf("st1 still pinned after resolution: %v", pend)
	}
	v, err := st1.Store().Read(w.Objects[0])
	if err != nil || string(v.Data) != "2" || v.Seq != 3 {
		t.Fatalf("st1 = %q/%d (%v), want the healed chain at 2/3", v.Data, v.Seq, err)
	}
}
