package harness

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/replica"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options should fail")
	}
	if _, err := New(Options{Servers: 1, Stores: 0, Clients: 1}); err == nil {
		t.Fatal("zero stores should fail")
	}
}

func TestWorldShape(t *testing.T) {
	w, err := New(Options{Servers: 2, Stores: 3, Clients: 2, Objects: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Svs) != 2 || len(w.Sts) != 3 || len(w.Clients) != 2 || len(w.Objects) != 2 {
		t.Fatalf("world shape: %d/%d/%d/%d", len(w.Svs), len(w.Sts), len(w.Clients), len(w.Objects))
	}
	// Objects are installed at every store with seq 1.
	for i := range w.Objects {
		seqs := w.StoreSeqs(i)
		if len(seqs) != 3 {
			t.Fatalf("object %d on %d stores", i, len(seqs))
		}
		for st, seq := range seqs {
			if seq != 1 {
				t.Fatalf("object %d at %s seq=%d", i, st, seq)
			}
		}
	}
	sv, err := w.CurrentSvView(context.Background(), 0)
	if err != nil || len(sv) != 2 {
		t.Fatalf("sv view = %v (%v)", sv, err)
	}
	st, err := w.CurrentStView(context.Background(), 0)
	if err != nil || len(st) != 3 {
		t.Fatalf("st view = %v (%v)", st, err)
	}
}

func TestRunCounterActionLifecycle(t *testing.T) {
	w, err := New(Options{Servers: 1, Stores: 1, Clients: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 1)
	r := w.RunCounterAction(ctx, b, 0, 5)
	if !r.Committed || r.Err != nil {
		t.Fatalf("result = %+v", r)
	}
	r = w.RunReadAction(ctx, b, 0)
	if !r.Committed {
		t.Fatalf("read result = %+v", r)
	}
	// Crash everything: action fails but reports instead of panicking.
	w.Cluster.Node("sv1").Crash()
	r = w.RunCounterAction(ctx, b, 0, 1)
	if r.Committed || r.Err == nil {
		t.Fatalf("crashed-world result = %+v", r)
	}
}

func TestCounterClassBadInputs(t *testing.T) {
	c := CounterClass()
	add := c.Methods["add"]
	if _, _, err := add([]byte("7"), []byte("oops")); err == nil {
		t.Fatal("bad delta should error")
	}
	if _, _, err := add([]byte("junk"), []byte("1")); err == nil {
		t.Fatal("corrupt state should error")
	}
	newState, out, err := add([]byte("7"), []byte("3"))
	if err != nil || string(newState) != "10" || string(out) != "10" {
		t.Fatalf("add: %s %s %v", newState, out, err)
	}
}
