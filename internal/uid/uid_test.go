package uid

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNilUID(t *testing.T) {
	var u UID
	if !u.IsNil() {
		t.Fatal("zero UID should be nil")
	}
	if u.String() != "<nil-uid>" {
		t.Fatalf("nil UID string = %q", u.String())
	}
	parsed, err := Parse(u.String())
	if err != nil {
		t.Fatalf("Parse(nil string): %v", err)
	}
	if !parsed.IsNil() {
		t.Fatal("parsed nil UID should be nil")
	}
}

func TestGeneratorSequence(t *testing.T) {
	g := NewGenerator("alpha", 3)
	u1 := g.New()
	u2 := g.New()
	if u1 == u2 {
		t.Fatalf("consecutive UIDs equal: %v", u1)
	}
	if u1.Origin != "alpha" || u1.Epoch != 3 {
		t.Fatalf("unexpected origin/epoch: %+v", u1)
	}
	if u2.Seq != u1.Seq+1 {
		t.Fatalf("sequence not monotonic: %d then %d", u1.Seq, u2.Seq)
	}
	if g.Origin() != "alpha" {
		t.Fatalf("Origin() = %q", g.Origin())
	}
}

func TestGeneratorConcurrentUniqueness(t *testing.T) {
	g := NewGenerator("beta", 1)
	const workers, per = 8, 200
	var mu sync.Mutex
	seen := make(map[UID]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]UID, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, g.New())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, u := range local {
				if seen[u] {
					t.Errorf("duplicate UID %v", u)
				}
				seen[u] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*per {
		t.Fatalf("expected %d unique UIDs, got %d", workers*per, len(seen))
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []UID{
		{Origin: "node-1", Epoch: 0, Seq: 1},
		{Origin: "a:b", Epoch: 42, Seq: 1 << 60},
		{Origin: "x", Epoch: 4294967295, Seq: 0},
	}
	for _, want := range cases {
		got, err := Parse(want.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", want.String(), err)
		}
		if got != want {
			t.Fatalf("round trip %v != %v", got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "noseps", "a:b", "a:xx:1", "a:1:xx", ":1:2"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	f := func(origin string, epoch uint32, seq uint64) bool {
		if origin == "" {
			return true // empty origin is rejected by design
		}
		u := UID{Origin: origin, Epoch: epoch, Seq: seq}
		got, err := Parse(u.String())
		return err == nil && got == u
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
