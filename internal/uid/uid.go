// Package uid provides unique identifiers for persistent objects and
// atomic actions.
//
// The paper (§2.2) assumes an Object Storage service that assigns unique
// identifiers (UIDs) to persistent objects; the naming and binding service
// maps user-given names to UIDs and UIDs to location information. Arjuna
// UIDs combined a host identifier, a timestamp and a sequence number; we
// keep the same three-part structure but derive the parts from a generator
// so that tests can be deterministic.
package uid

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
)

// UID identifies a persistent object, an atomic action, or any other
// system entity that must be named uniquely across the (simulated)
// distributed system. The zero value is the nil UID.
type UID struct {
	// Origin identifies the generator (conventionally a node name) that
	// created the UID.
	Origin string
	// Epoch distinguishes successive incarnations of the same origin
	// (e.g. a node before and after a crash).
	Epoch uint32
	// Seq is a per-origin, per-epoch sequence number.
	Seq uint64
}

// Nil is the zero UID, used to mean "no object".
var Nil UID

// IsNil reports whether u is the nil UID.
func (u UID) IsNil() bool { return u == Nil }

// String renders the UID in the canonical "origin:epoch:seq" form.
func (u UID) String() string {
	if u.IsNil() {
		return "<nil-uid>"
	}
	return u.Origin + ":" + strconv.FormatUint(uint64(u.Epoch), 10) + ":" + strconv.FormatUint(u.Seq, 10)
}

// Parse converts the canonical string form back into a UID.
func Parse(s string) (UID, error) {
	if s == "<nil-uid>" {
		return Nil, nil
	}
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return Nil, fmt.Errorf("uid: malformed %q: missing seq separator", s)
	}
	j := strings.LastIndexByte(s[:i], ':')
	if j < 0 {
		return Nil, fmt.Errorf("uid: malformed %q: missing epoch separator", s)
	}
	epoch, err := strconv.ParseUint(s[j+1:i], 10, 32)
	if err != nil {
		return Nil, fmt.Errorf("uid: malformed epoch in %q: %w", s, err)
	}
	seq, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil {
		return Nil, fmt.Errorf("uid: malformed seq in %q: %w", s, err)
	}
	if s[:j] == "" {
		return Nil, fmt.Errorf("uid: malformed %q: empty origin", s)
	}
	return UID{Origin: s[:j], Epoch: uint32(epoch), Seq: seq}, nil
}

// Generator mints UIDs for one origin. It is safe for concurrent use.
// The zero value is usable but mints UIDs with an empty origin; use
// NewGenerator in normal code.
type Generator struct {
	origin string
	epoch  uint32
	seq    atomic.Uint64
}

// NewGenerator returns a generator whose UIDs carry the given origin and
// epoch (incarnation number).
func NewGenerator(origin string, epoch uint32) *Generator {
	return &Generator{origin: origin, epoch: epoch}
}

// New mints the next UID.
func (g *Generator) New() UID {
	return UID{Origin: g.origin, Epoch: g.epoch, Seq: g.seq.Add(1)}
}

// Origin returns the generator's origin name.
func (g *Generator) Origin() string { return g.origin }
