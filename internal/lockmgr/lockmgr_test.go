package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func ctxShort(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	t.Cleanup(cancel)
	return ctx
}

func TestCompatibilityMatrix(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{Read, Read, true},
		{Read, ExcludeWrite, true},
		{ExcludeWrite, Read, true},
		{ExcludeWrite, ExcludeWrite, false},
		{Read, Write, false},
		{Write, Read, false},
		{Write, Write, false},
		{Write, ExcludeWrite, false},
		{ExcludeWrite, Write, false},
		{Adjust, Adjust, true},
		{Adjust, Read, true},
		{Read, Adjust, true},
		{Adjust, Write, false},
		{Write, Adjust, false},
		{Adjust, ExcludeWrite, false},
		{ExcludeWrite, Adjust, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%s,%s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSharedReaders(t *testing.T) {
	m := New(nil)
	for _, o := range []Owner{"a", "b", "c"} {
		if err := m.Acquire(context.Background(), o, "k", Read); err != nil {
			t.Fatalf("reader %s: %v", o, err)
		}
	}
	if got := len(m.HolderModes("k")); got != 3 {
		t.Fatalf("holders = %d, want 3", got)
	}
}

func TestWriteExcludesAll(t *testing.T) {
	m := New(nil)
	if err := m.Acquire(context.Background(), "w", "k", Write); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctxShort(t), "r", "k", Read); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("read under write: %v", err)
	}
	if err := m.TryAcquire("x", "k", Write); !errors.Is(err, ErrRefused) {
		t.Fatalf("write under write: %v", err)
	}
}

func TestExcludeWriteSharesWithReaders(t *testing.T) {
	// §4.2.1: exclude-write can be shared with read locks.
	m := New(nil)
	if err := m.Acquire(context.Background(), "r1", "k", Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(context.Background(), "r2", "k", Read); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire("excluder", "k", ExcludeWrite); err != nil {
		t.Fatalf("exclude-write alongside readers should succeed: %v", err)
	}
	// But a second exclude-writer conflicts.
	if err := m.TryAcquire("excluder2", "k", ExcludeWrite); !errors.Is(err, ErrRefused) {
		t.Fatalf("second exclude-write: %v", err)
	}
	// And a writer conflicts.
	if err := m.TryAcquire("w", "k", Write); !errors.Is(err, ErrRefused) {
		t.Fatalf("write alongside exclude-write: %v", err)
	}
}

func TestPromotionReadToWriteRefusedUnderSharedReaders(t *testing.T) {
	// §4.2.1: with several read locks held, a read->write promotion request
	// is refused; read->exclude-write succeeds.
	m := New(nil)
	for _, o := range []Owner{"me", "other1", "other2"} {
		if err := m.Acquire(context.Background(), o, "k", Read); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.TryPromote("me", "k", Read, Write); !errors.Is(err, ErrRefused) {
		t.Fatalf("read->write with other readers: %v, want refused", err)
	}
	if err := m.TryPromote("me", "k", Read, ExcludeWrite); err != nil {
		t.Fatalf("read->exclude-write with other readers: %v", err)
	}
	if !m.Holds("me", "k", ExcludeWrite) {
		t.Fatal("promotion did not take effect")
	}
}

func TestPromotionReadToWriteSoleReader(t *testing.T) {
	m := New(nil)
	if err := m.Acquire(context.Background(), "me", "k", Read); err != nil {
		t.Fatal(err)
	}
	if err := m.TryPromote("me", "k", Read, Write); err != nil {
		t.Fatalf("sole-reader promotion: %v", err)
	}
	if !m.Holds("me", "k", Write) {
		t.Fatal("expected write hold after promotion")
	}
}

func TestPromoteWithoutHoldingRefused(t *testing.T) {
	m := New(nil)
	if err := m.TryPromote("ghost", "k", Read, Write); !errors.Is(err, ErrRefused) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Acquire(context.Background(), "o", "k", Write); err != nil {
		t.Fatal(err)
	}
	if err := m.TryPromote("o", "k", Read, Write); !errors.Is(err, ErrRefused) {
		t.Fatalf("promoting mode not held: %v", err)
	}
}

func TestReleaseWakesWaiter(t *testing.T) {
	m := New(nil)
	if err := m.Acquire(context.Background(), "a", "k", Write); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- m.Acquire(context.Background(), "b", "k", Write)
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("waiter should be blocked, got %v", err)
	default:
	}
	if err := m.Release("a", "k", Write); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiter: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestReleaseAll(t *testing.T) {
	m := New(nil)
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := m.Acquire(context.Background(), "a", k, Write); err != nil {
			t.Fatal(err)
		}
	}
	m.ReleaseAll("a")
	for _, k := range []string{"k1", "k2", "k3"} {
		if err := m.TryAcquire("b", k, Write); err != nil {
			t.Fatalf("after ReleaseAll, %s: %v", k, err)
		}
	}
}

func TestReleaseErrors(t *testing.T) {
	m := New(nil)
	if err := m.Release("nobody", "k", Read); err == nil {
		t.Fatal("releasing unheld entry should error")
	}
	if err := m.Acquire(context.Background(), "a", "k", Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Release("a", "k", Write); err == nil {
		t.Fatal("releasing wrong mode should error")
	}
}

func TestReentrancy(t *testing.T) {
	m := New(nil)
	if err := m.Acquire(context.Background(), "a", "k", Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(context.Background(), "a", "k", Read); err != nil {
		t.Fatal(err)
	}
	if err := m.Release("a", "k", Read); err != nil {
		t.Fatal(err)
	}
	// Still held once.
	if !m.Holds("a", "k", Read) {
		t.Fatal("re-entrant lock dropped too early")
	}
	if err := m.Release("a", "k", Read); err != nil {
		t.Fatal(err)
	}
	if m.Holds("a", "k", Read) {
		t.Fatal("lock retained after final release")
	}
}

// nested ancestry for Moss-rule tests: parent "p" of child "p/c" etc.
type pathAncestry struct{}

func (pathAncestry) IsAncestorOf(a, d Owner) bool {
	return len(a) < len(d) && strings.HasPrefix(string(d), string(a)+"/")
}

func TestMossRuleChildAcquiresUnderParent(t *testing.T) {
	m := New(pathAncestry{})
	if err := m.Acquire(context.Background(), "p", "k", Write); err != nil {
		t.Fatal(err)
	}
	// Child may acquire despite parent's conflicting hold.
	if err := m.TryAcquire("p/c", "k", Write); err != nil {
		t.Fatalf("child under parent: %v", err)
	}
	// Unrelated action may not.
	if err := m.TryAcquire("q", "k", Read); !errors.Is(err, ErrRefused) {
		t.Fatalf("stranger: %v", err)
	}
	// Sibling may not (holder p/c is not its ancestor).
	if err := m.TryAcquire("p/d", "k", Write); !errors.Is(err, ErrRefused) {
		t.Fatalf("sibling: %v", err)
	}
}

func TestInheritMergesToParent(t *testing.T) {
	m := New(pathAncestry{})
	if err := m.Acquire(context.Background(), "p/c", "k", Write); err != nil {
		t.Fatal(err)
	}
	m.Inherit("p/c", "p")
	if !m.Holds("p", "k", Write) {
		t.Fatal("parent should hold after inherit")
	}
	if m.Holds("p/c", "k", Read) {
		t.Fatal("child should hold nothing after inherit")
	}
	// A new child of p can still get the lock (parent is ancestor).
	if err := m.TryAcquire("p/c2", "k", Write); err != nil {
		t.Fatalf("new child: %v", err)
	}
}

func TestHoldsSemantics(t *testing.T) {
	m := New(nil)
	if err := m.Acquire(context.Background(), "a", "k", Write); err != nil {
		t.Fatal(err)
	}
	if !m.Holds("a", "k", Read) {
		t.Fatal("write should imply read strength")
	}
	if !m.Holds("a", "k", ExcludeWrite) {
		t.Fatal("write should satisfy exclude-write checks")
	}
	if m.Holds("b", "k", Read) {
		t.Fatal("non-holder must not hold")
	}
}

func TestConcurrentAcquireReleaseNoLostWakeups(t *testing.T) {
	m := New(nil)
	const n = 16
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := Owner(rune('A' + i))
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for j := 0; j < 50; j++ {
				if err := m.Acquire(ctx, o, "hot", Write); err != nil {
					errs <- err
					return
				}
				if err := m.Release(o, "hot", Write); err != nil {
					errs <- err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := m.HolderModes("hot"); len(got) != 0 {
		t.Fatalf("leftover holders: %v", got)
	}
}

// Property: mutual exclusion — a mixed workload of try-acquires never
// yields two simultaneous conflicting holders.
func TestPropertyNoConflictingHolders(t *testing.T) {
	f := func(ops []uint8) bool {
		m := New(nil)
		type held struct {
			owner Owner
			mode  Mode
		}
		var holds []held
		owners := []Owner{"o1", "o2", "o3", "o4"}
		modes := []Mode{Read, Write, ExcludeWrite}
		for _, op := range ops {
			owner := owners[int(op)%len(owners)]
			mode := modes[int(op/4)%len(modes)]
			if op%2 == 0 {
				if err := m.TryAcquire(owner, "k", mode); err == nil {
					holds = append(holds, held{owner, mode})
				}
			} else if len(holds) > 0 {
				h := holds[len(holds)-1]
				holds = holds[:len(holds)-1]
				if err := m.Release(h.owner, "k", h.mode); err != nil {
					return false
				}
			}
			// Invariant: all pairs of distinct holders' strongest modes
			// must be compatible.
			hm := m.HolderModes("k")
			for i := 0; i < len(hm); i++ {
				for j := i + 1; j < len(hm); j++ {
					if !Compatible(hm[i].Mode, hm[j].Mode) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" || ExcludeWrite.String() != "exclude-write" {
		t.Fatal("mode strings wrong")
	}
	if Mode(0).String() != "mode(0)" {
		t.Fatal("unknown mode string wrong")
	}
}

func TestStripedDisjointKeysFullLifecycle(t *testing.T) {
	// Hammer the striped table from many goroutines on disjoint keys —
	// acquire, promote, release, release-all — and verify per-key holder
	// state stays exact. Run with -race to check the stripe discipline.
	m := New(NoNesting)
	const workers = 16
	const keysPerWorker = 40
	var wg sync.WaitGroup
	ctx := context.Background()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			owner := Owner(fmt.Sprintf("owner-%d", w))
			for k := 0; k < keysPerWorker; k++ {
				key := fmt.Sprintf("key-%d-%d", w, k)
				if err := m.Acquire(ctx, owner, key, Read); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				if err := m.TryPromote(owner, key, Read, Write); err != nil {
					t.Errorf("promote: %v", err)
					return
				}
				if !m.Holds(owner, key, Write) {
					t.Errorf("%s lost write on %s", owner, key)
					return
				}
			}
			// Half release key by key, half in one sweep.
			if w%2 == 0 {
				for k := 0; k < keysPerWorker; k++ {
					key := fmt.Sprintf("key-%d-%d", w, k)
					if err := m.Release(owner, key, Write); err != nil {
						t.Errorf("release: %v", err)
					}
				}
			} else {
				m.ReleaseAll(owner)
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for k := 0; k < keysPerWorker; k++ {
			key := fmt.Sprintf("key-%d-%d", w, k)
			if hm := m.HolderModes(key); len(hm) != 0 {
				t.Fatalf("%s still held: %v", key, hm)
			}
		}
	}
}

func TestStripedPromotionContentionOneKey(t *testing.T) {
	// All contenders on ONE key (one stripe): shared readers, then each
	// tries the §4.2.1 commit-time promotions. Read→Write must be refused
	// while other readers hold; read→ExcludeWrite succeeds for exactly one
	// holder at a time.
	m := New(NoNesting)
	ctx := context.Background()
	const readers = 8
	for i := 0; i < readers; i++ {
		if err := m.Acquire(ctx, Owner(fmt.Sprintf("r%d", i)), "entry", Read); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	var excludeWins, writeWins atomic.Int32
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			owner := Owner(fmt.Sprintf("r%d", i))
			if err := m.TryPromote(owner, "entry", Read, Write); err == nil {
				writeWins.Add(1)
			}
			if err := m.TryPromote(owner, "entry", Read, ExcludeWrite); err == nil {
				excludeWins.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if writeWins.Load() != 0 {
		t.Fatalf("read→write promoted %d times under %d shared readers, want 0", writeWins.Load(), readers)
	}
	if excludeWins.Load() != 1 {
		t.Fatalf("read→exclude-write promoted %d times, want exactly 1", excludeWins.Load())
	}
}

func TestStripedInheritAcrossStripes(t *testing.T) {
	// A child holding locks on keys that hash to different stripes must
	// inherit them all to the parent atomically enough that the parent can
	// release everything afterwards.
	anc := AncestryFunc(func(a, d Owner) bool {
		return len(a) < len(d) && strings.HasPrefix(string(d), string(a)+"/")
	})
	m := New(anc)
	ctx := context.Background()
	const keys = 64
	for k := 0; k < keys; k++ {
		if err := m.Acquire(ctx, "top/child", fmt.Sprintf("k%d", k), Write); err != nil {
			t.Fatal(err)
		}
	}
	m.Inherit("top/child", "top")
	for k := 0; k < keys; k++ {
		if !m.Holds("top", fmt.Sprintf("k%d", k), Write) {
			t.Fatalf("k%d not inherited", k)
		}
	}
	m.ReleaseAll("top")
	for k := 0; k < keys; k++ {
		if err := m.TryAcquire("stranger", fmt.Sprintf("k%d", k), Write); err != nil {
			t.Fatalf("k%d not released after inherit+release-all: %v", k, err)
		}
	}
}

// --- fair bounded queue tests (ISSUE 7) ---

func TestFIFOFairnessNoBarging(t *testing.T) {
	// Writers queue behind a held write lock; releases must grant them in
	// strict arrival order, and a late-arriving compatible reader must not
	// barge past queued writers.
	m := New(nil)
	if err := m.Acquire(context.Background(), "holder", "k", Write); err != nil {
		t.Fatal(err)
	}
	const waiters = 8
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := Owner(fmt.Sprintf("w%d", i))
			if err := m.Acquire(context.Background(), o, "k", Write); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			if err := m.Release(o, "k", Write); err != nil {
				t.Errorf("waiter %d release: %v", i, err)
			}
		}(i)
		// Ensure waiter i is queued before waiter i+1 starts, so arrival
		// order is deterministic.
		for {
			if m.QueueDepth("k") == i+1 {
				break
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	// With 8 writers queued, a new reader — compatible with nothing held
	// once the writer releases, but behind the queue — must refuse to barge.
	if err := m.TryAcquire("late-reader", "k", Read); !errors.Is(err, ErrRefused) {
		t.Fatalf("reader barged past queued writers: %v", err)
	}
	if err := m.Release("holder", "k", Write); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("grant order %v, want strict FIFO", order)
		}
	}
}

func TestQueueCapRefusesWithErrOverloaded(t *testing.T) {
	m := NewLimited(nil, Limits{MaxQueue: 2})
	if err := m.Acquire(context.Background(), "holder", "k", Write); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			o := Owner(fmt.Sprintf("q%d", i))
			err := m.Acquire(context.Background(), o, "k", Write)
			if err == nil {
				m.ReleaseAll(o)
			}
			errs <- err
		}(i)
	}
	for m.QueueDepth("k") != 2 {
		time.Sleep(100 * time.Microsecond)
	}
	// Third waiter is over the cap: typed refusal, no queueing.
	if err := m.Acquire(context.Background(), "over", "k", Write); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-cap acquire: %v, want ErrOverloaded", err)
	}
	if d := m.QueueDepth("k"); d != 2 {
		t.Fatalf("queue depth after refusal = %d, want 2", d)
	}
	m.ReleaseAll("holder")
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("queued waiter: %v", err)
		}
	}
}

func TestMaxWaitExpiresWithErrOverloaded(t *testing.T) {
	m := NewLimited(nil, Limits{MaxWait: 20 * time.Millisecond})
	if err := m.Acquire(context.Background(), "holder", "k", Write); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Acquire(context.Background(), "waiter", "k", Write)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expired waiter: %v, want ErrOverloaded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline did not bound the wait")
	}
	// The expired waiter must be fully gone: queue empty, and a release
	// must not grant to it.
	if d := m.QueueDepth("k"); d != 0 {
		t.Fatalf("queue depth after expiry = %d, want 0", d)
	}
	m.ReleaseAll("holder")
	if err := m.TryAcquire("next", "k", Write); err != nil {
		t.Fatalf("lock not clean after expiry: %v", err)
	}
}

func TestCancelledWaiterUnblocksQueueBehindIt(t *testing.T) {
	// reader holds; writer W queues; readers R1,R2 queue behind W (no
	// barging). Cancelling W must let R1,R2 be granted alongside the holder.
	m := New(nil)
	if err := m.Acquire(context.Background(), "r0", "k", Read); err != nil {
		t.Fatal(err)
	}
	wctx, wcancel := context.WithCancel(context.Background())
	werr := make(chan error, 1)
	go func() { werr <- m.Acquire(wctx, "W", "k", Write) }()
	for m.QueueDepth("k") != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	rerrs := make(chan error, 2)
	for i := 1; i <= 2; i++ {
		go func(i int) {
			rerrs <- m.Acquire(context.Background(), Owner(fmt.Sprintf("r%d", i)), "k", Read)
		}(i)
	}
	for m.QueueDepth("k") != 3 {
		time.Sleep(100 * time.Microsecond)
	}
	wcancel()
	if err := <-werr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled writer: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := <-rerrs; err != nil {
			t.Fatalf("reader behind cancelled writer: %v", err)
		}
	}
	if got := len(m.HolderModes("k")); got != 3 {
		t.Fatalf("holders = %d, want r0,r1,r2", got)
	}
}

func TestReentrantAcquireOvertakesOwnQueue(t *testing.T) {
	// An owner already holding the entry must not deadlock behind strangers
	// waiting on it: its re-entrant acquire may overtake the queue.
	m := New(nil)
	if err := m.Acquire(context.Background(), "a", "k", Read); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(context.Background(), "w", "k", Write) }()
	for m.QueueDepth("k") != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	// Re-entrant read by the holder: must succeed immediately, not queue
	// behind the writer that is waiting for the holder itself.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := m.Acquire(ctx, "a", "k", Read); err != nil {
		t.Fatalf("re-entrant acquire deadlocked behind own queue: %v", err)
	}
	m.ReleaseAll("a")
	if err := <-done; err != nil {
		t.Fatalf("writer after release: %v", err)
	}
	m.ReleaseAll("w")
}

func TestMossChildOvertakesQueue(t *testing.T) {
	// Parent holds write; a stranger queues; the parent's child must still
	// be granted (Moss's rule) — parking it behind the stranger would
	// deadlock, since the parent cannot release until the child finishes.
	m := New(pathAncestry{})
	if err := m.Acquire(context.Background(), "p", "k", Write); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(context.Background(), "q", "k", Write) }()
	for m.QueueDepth("k") != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := m.Acquire(ctx, "p/c", "k", Write); err != nil {
		t.Fatalf("child deadlocked behind stranger: %v", err)
	}
	m.ReleaseAll("p/c")
	m.ReleaseAll("p")
	if err := <-done; err != nil {
		t.Fatalf("stranger after release: %v", err)
	}
}

// countingObserver records observer callbacks for tests.
type countingObserver struct {
	queued, granted, overloaded atomic.Int64
}

func (c *countingObserver) LockQueued(int)            { c.queued.Add(1) }
func (c *countingObserver) LockGranted(time.Duration) { c.granted.Add(1) }
func (c *countingObserver) LockOverloaded()           { c.overloaded.Add(1) }

func TestObserverCounts(t *testing.T) {
	m := NewLimited(nil, Limits{MaxQueue: 1})
	obs := &countingObserver{}
	m.SetObserver(obs)
	if err := m.Acquire(context.Background(), "holder", "k", Write); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(context.Background(), "w1", "k", Write) }()
	for m.QueueDepth("k") != 1 {
		time.Sleep(100 * time.Microsecond)
	}
	if err := m.Acquire(context.Background(), "w2", "k", Write); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over cap: %v", err)
	}
	m.ReleaseAll("holder")
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if obs.queued.Load() != 1 || obs.granted.Load() != 1 || obs.overloaded.Load() != 1 {
		t.Fatalf("observer queued=%d granted=%d overloaded=%d, want 1/1/1",
			obs.queued.Load(), obs.granted.Load(), obs.overloaded.Load())
	}
}

func TestAdjustSharesWithAdjustersAndReaders(t *testing.T) {
	m := New(nil)
	// The fast-bind shape: hold Read, add Adjust on the same key — and let
	// concurrent binders do the same simultaneously.
	for _, o := range []Owner{"a", "b", "c"} {
		if err := m.Acquire(context.Background(), o, "k", Read); err != nil {
			t.Fatalf("read %s: %v", o, err)
		}
		if err := m.Acquire(context.Background(), o, "k", Adjust); err != nil {
			t.Fatalf("adjust %s: %v", o, err)
		}
	}
	// A structural writer (Insert/Remove) is excluded while any adjuster
	// holds on.
	if err := m.TryAcquire("w", "k", Write); !errors.Is(err, ErrRefused) {
		t.Fatalf("write alongside adjusters: err = %v, want ErrRefused", err)
	}
	for _, o := range []Owner{"a", "b", "c"} {
		m.ReleaseAll(o)
	}
	if err := m.TryAcquire("w", "k", Write); err != nil {
		t.Fatalf("write after adjusters drained: %v", err)
	}
}

func TestWriteExcludesAdjustUntilReleased(t *testing.T) {
	m := New(nil)
	if err := m.Acquire(context.Background(), "w", "k", Write); err != nil {
		t.Fatal(err)
	}
	granted := make(chan error, 1)
	go func() { granted <- m.Acquire(context.Background(), "adj", "k", Adjust) }()
	select {
	case err := <-granted:
		t.Fatalf("adjust granted alongside writer: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll("w")
	if err := <-granted; err != nil {
		t.Fatalf("adjust after writer released: %v", err)
	}
}
