// Package lockmgr implements the lock management the paper's naming and
// binding databases rely on (§4.1, §4.2.1).
//
// Three lock modes are provided:
//
//   - Read: shared; used by GetServer/GetView (§4.1).
//   - Write: exclusive; used by Insert/Remove/Include and, in the
//     write-locked bind scheme, the use-list operations Increment/
//     Decrement (§4.1.2–4.1.3).
//   - Adjust: the commutative-update lock for use-list counters.
//     Increment and Decrement commute with each other, so Adjust is
//     compatible with Read and with other Adjust holders but conflicts
//     with Write — concurrent binds adjust the counters in parallel while
//     a recovering server's Insert (which needs the exact quiescent
//     truth) still excludes every adjuster.
//   - ExcludeWrite: the paper's type-specific lock (§4.2.1) — compatible
//     with Read locks but not with Write or other ExcludeWrite holders, so
//     a committing server can Exclude failed store nodes while concurrent
//     clients still hold read locks on the same entry.
//
// Owners are atomic actions. Nested actions follow Moss's rule: a lock may
// be granted if every conflicting holder is an ancestor of the requester;
// when a nested action commits, its locks are inherited by its parent and
// released only when the top-level action completes.
//
// Waiting is fair and optionally bounded: blocked acquirers join a
// per-key FIFO queue and are granted strictly in arrival order (no
// barging — a newly arriving compatible request queues behind earlier
// waiters rather than overtaking them). A Manager built with Limits
// refuses waiters beyond the queue-depth cap and expires waiters past the
// wait deadline with ErrOverloaded, converting server-side convoys into a
// typed signal the caller can back off on.
package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"time"
)

// Mode is a lock mode. The zero value is invalid (Uber style: enums start
// at one).
type Mode int

// Lock modes, weakest to strongest for promotion ordering.
const (
	Read Mode = iota + 1
	Adjust
	ExcludeWrite
	Write
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Read:
		return "read"
	case Adjust:
		return "adjust"
	case ExcludeWrite:
		return "exclude-write"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Compatible reports whether two modes held by different owners can
// coexist on one entry.
func Compatible(a, b Mode) bool {
	switch {
	case a == Read && b == Read:
		return true
	case a == Adjust && (b == Adjust || b == Read), b == Adjust && a == Read:
		return true
	case a == Read && b == ExcludeWrite, a == ExcludeWrite && b == Read:
		return true
	default:
		return false
	}
}

// Owner identifies a lock holder — conventionally an action UID string.
type Owner string

// Ancestry answers ancestor queries between owners. IsAncestorOf must
// return true when ancestor is a proper ancestor of descendant (not for
// equal owners; the manager handles self separately).
type Ancestry interface {
	IsAncestorOf(ancestor, descendant Owner) bool
}

// AncestryFunc adapts a function to the Ancestry interface.
type AncestryFunc func(ancestor, descendant Owner) bool

// IsAncestorOf implements Ancestry.
func (f AncestryFunc) IsAncestorOf(a, d Owner) bool { return f(a, d) }

// NoNesting is an Ancestry under which no owner is an ancestor of another;
// suitable when only top-level actions take locks.
var NoNesting Ancestry = AncestryFunc(func(Owner, Owner) bool { return false })

// ErrRefused reports that a non-blocking acquire or promote found a
// conflicting holder (or, under fair queueing, an earlier conflicting
// waiter it must not overtake).
var ErrRefused = errors.New("lockmgr: lock refused")

// ErrOverloaded reports that a blocking acquire was refused by admission
// control: the key's wait queue was at its depth cap, or the waiter's
// queueing time exceeded the wait deadline. The lock was NOT granted; the
// caller should shed load (abort and retry with backoff) rather than
// queue deeper.
var ErrOverloaded = errors.New("lockmgr: overloaded")

// Limits bounds a Manager's per-key wait queues. The zero value means
// unbounded waiting (the classic discipline).
type Limits struct {
	// MaxQueue caps how many acquirers may wait on one key at once;
	// further blocking acquires fail fast with ErrOverloaded. 0 = no cap.
	MaxQueue int
	// MaxWait caps how long one acquirer may sit in a wait queue; a
	// waiter that exceeds it is removed and fails with ErrOverloaded.
	// 0 = wait forever (until ctx is done).
	MaxWait time.Duration
}

// Observer receives queue observability events. Implementations must be
// safe for concurrent use; hooks run on lock-acquisition paths and must
// be cheap.
type Observer interface {
	// LockQueued fires when an acquirer starts waiting; depth is the
	// queue depth including it.
	LockQueued(depth int)
	// LockGranted fires when a queued acquirer is granted, with its
	// queueing time.
	LockGranted(wait time.Duration)
	// LockOverloaded fires when an acquirer is refused by the queue cap
	// or expired by the wait deadline.
	LockOverloaded()
}

// holder records one owner's grip on an entry: per-mode re-entrancy counts.
type holder struct {
	counts map[Mode]int
}

func (h *holder) strongest() Mode {
	switch {
	case h.counts[Write] > 0:
		return Write
	case h.counts[ExcludeWrite] > 0:
		return ExcludeWrite
	case h.counts[Adjust] > 0:
		return Adjust
	case h.counts[Read] > 0:
		return Read
	default:
		return 0
	}
}

func (h *holder) empty() bool {
	return h.counts[Read] == 0 && h.counts[Adjust] == 0 &&
		h.counts[Write] == 0 && h.counts[ExcludeWrite] == 0
}

// waiter is one parked blocking acquire. ready is closed (with granted
// set, under the stripe lock) when the grant happens, so a receive on
// ready observes a fully granted lock.
type waiter struct {
	owner   Owner
	mode    Mode
	ready   chan struct{}
	granted bool
}

type entry struct {
	holders map[Owner]*holder
	// waiters is the FIFO wait queue: grants happen strictly in arrival
	// order, each performed synchronously under the stripe lock by
	// whichever release made it possible — there is no wake-then-race
	// window for a newcomer to barge through.
	waiters []*waiter
}

// stripeCount and ownerShardCount size the two hash-sharded tables. Both
// are powers of two so the hash maps to a shard with a mask.
const (
	stripeCount     = 32
	ownerShardCount = 16
)

// stripe is one independently locked slice of the key space.
type stripe struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// ownerShard is one independently locked slice of the per-owner key
// index (the old byOwner map).
type ownerShard struct {
	mu   sync.Mutex
	keys map[Owner]map[string]struct{}
}

// Manager is a lock table keyed by string. It is safe for concurrent
// use. The table is sharded by key hash into independently locked
// stripes, and the per-owner key index by owner hash, so concurrent
// actions touching disjoint keys never contend on a common mutex.
//
// Lock ordering: an owner shard may be taken while holding a key stripe,
// never the reverse — whole-owner operations (ReleaseAll, Inherit)
// snapshot the owner's keys first, drop the shard lock, and then visit
// the key stripes. The price of striping is that those whole-owner
// operations are no longer atomic with respect to concurrent acquires by
// the same owner; that is fine, because they run only when the owning
// action has ended and can no longer issue acquires.
type Manager struct {
	ancestry Ancestry
	limits   Limits
	obs      Observer
	seed     maphash.Seed
	stripes  [stripeCount]stripe
	owners   [ownerShardCount]ownerShard
}

// New returns a Manager using the given ancestry; nil means NoNesting.
// Waiting is unbounded; use NewLimited for admission control.
func New(ancestry Ancestry) *Manager {
	return NewLimited(ancestry, Limits{})
}

// NewLimited returns a Manager whose per-key wait queues are bounded by
// limits.
func NewLimited(ancestry Ancestry, limits Limits) *Manager {
	if ancestry == nil {
		ancestry = NoNesting
	}
	m := &Manager{ancestry: ancestry, limits: limits, seed: maphash.MakeSeed()}
	for i := range m.stripes {
		m.stripes[i].entries = make(map[string]*entry)
	}
	for i := range m.owners {
		m.owners[i].keys = make(map[Owner]map[string]struct{})
	}
	return m
}

// SetObserver attaches queue observability hooks. Call before the manager
// sees concurrent traffic.
func (m *Manager) SetObserver(o Observer) { m.obs = o }

// Limits returns the manager's admission-control bounds.
func (m *Manager) Limits() Limits { return m.limits }

// stripeOf returns the stripe owning key. Callers lock st.mu.
func (m *Manager) stripeOf(key string) *stripe {
	return &m.stripes[maphash.String(m.seed, key)&(stripeCount-1)]
}

// shardOf returns the owner shard owning owner. Callers lock sh.mu.
func (m *Manager) shardOf(owner Owner) *ownerShard {
	return &m.owners[maphash.String(m.seed, string(owner))&(ownerShardCount-1)]
}

// indexKey records key under owner in the owner index.
func (m *Manager) indexKey(owner Owner, key string) {
	sh := m.shardOf(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	keys, ok := sh.keys[owner]
	if !ok {
		keys = make(map[string]struct{})
		sh.keys[owner] = keys
	}
	keys[key] = struct{}{}
}

// unindexKey removes key from owner's index entry.
func (m *Manager) unindexKey(owner Owner, key string) {
	sh := m.shardOf(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if keys := sh.keys[owner]; keys != nil {
		delete(keys, key)
		if len(keys) == 0 {
			delete(sh.keys, owner)
		}
	}
}

// takeKeys removes and returns owner's whole key index entry.
func (m *Manager) takeKeys(owner Owner) map[string]struct{} {
	sh := m.shardOf(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	keys := sh.keys[owner]
	delete(sh.keys, owner)
	return keys
}

func (st *stripe) entryLocked(key string) *entry {
	e, ok := st.entries[key]
	if !ok {
		e = &entry{holders: make(map[Owner]*holder)}
		st.entries[key] = e
	}
	return e
}

// grantableLocked reports whether owner may take mode on e given current
// holders: every conflicting holder must be the owner itself or one of its
// ancestors (Moss's rule).
func (m *Manager) grantableLocked(e *entry, owner Owner, mode Mode) bool {
	for other, h := range e.holders {
		if other == owner {
			continue
		}
		om := h.strongest()
		if om == 0 {
			continue
		}
		if Compatible(mode, om) {
			continue
		}
		if !m.ancestry.IsAncestorOf(other, owner) {
			return false
		}
	}
	return true
}

// mayOvertakeLocked reports whether owner may be granted immediately even
// though earlier waiters are queued. Fairness says no — except when
// queueing could deadlock against locks the owner's own action family
// already holds on this entry: a re-entrant acquire (or blocking
// promotion) by a current holder, and a nested action whose ancestor
// holds the entry (Moss's rule — the ancestor cannot release until the
// descendant finishes), must not park behind strangers waiting for that
// very holder to let go.
func (m *Manager) mayOvertakeLocked(e *entry, owner Owner) bool {
	if len(e.waiters) == 0 {
		return true
	}
	if _, ok := e.holders[owner]; ok {
		return true
	}
	for other := range e.holders {
		if m.ancestry.IsAncestorOf(other, owner) {
			return true
		}
	}
	return false
}

// grantLocked adds one unit of mode for owner on e and indexes the key
// under the owner; the entry's stripe is held.
func (m *Manager) grantLocked(e *entry, key string, owner Owner, mode Mode) {
	h, ok := e.holders[owner]
	if !ok {
		h = &holder{counts: make(map[Mode]int)}
		e.holders[owner] = h
	}
	h.counts[mode]++
	m.indexKey(owner, key)
}

// grantWaitersLocked hands the entry's lock to queued waiters strictly in
// FIFO order: the head is granted while grantable (consecutive compatible
// waiters — e.g. a run of readers — are granted together), and granting
// stops at the first waiter that still conflicts. Performed under the
// stripe lock, so no concurrently arriving acquire can barge between a
// release and the grant it enables.
func (m *Manager) grantWaitersLocked(e *entry, key string) {
	for len(e.waiters) > 0 {
		w := e.waiters[0]
		if !m.grantableLocked(e, w.owner, w.mode) {
			break
		}
		e.waiters = e.waiters[1:]
		m.grantLocked(e, key, w.owner, w.mode)
		w.granted = true
		close(w.ready)
	}
}

// gcLocked garbage-collects an entry with no holders and no waiters.
func (st *stripe) gcLocked(e *entry, key string) {
	if len(e.holders) == 0 && len(e.waiters) == 0 {
		delete(st.entries, key)
	}
}

// Acquire blocks until owner holds mode on key or ctx is done. Re-entrant:
// an owner may acquire the same or a different mode repeatedly; each
// successful Acquire needs a matching Release (or a ReleaseAll).
//
// Waiting is FIFO-fair: if other acquirers are already queued, a new
// request queues behind them even when it is compatible with the current
// holders (no barging), unless queueing would deadlock against the
// owner's own holds (re-entrancy, blocking promotion, Moss ancestry).
// Under a Manager with Limits, a full queue or an expired wait deadline
// fails with ErrOverloaded.
//
// An owner that already holds a weaker mode and acquires a stronger one is
// performing a blocking promotion; the non-blocking variant used at commit
// time is TryPromote.
func (m *Manager) Acquire(ctx context.Context, owner Owner, key string, mode Mode) error {
	st := m.stripeOf(key)
	st.mu.Lock()
	e := st.entryLocked(key)
	if m.grantableLocked(e, owner, mode) && m.mayOvertakeLocked(e, owner) {
		m.grantLocked(e, key, owner, mode)
		st.mu.Unlock()
		return nil
	}
	if m.limits.MaxQueue > 0 && len(e.waiters) >= m.limits.MaxQueue {
		st.gcLocked(e, key)
		st.mu.Unlock()
		if m.obs != nil {
			m.obs.LockOverloaded()
		}
		return fmt.Errorf("lockmgr: acquire %s on %q for %s: %d already waiting: %w",
			mode, key, owner, m.limits.MaxQueue, ErrOverloaded)
	}
	w := &waiter{owner: owner, mode: mode, ready: make(chan struct{})}
	e.waiters = append(e.waiters, w)
	depth := len(e.waiters)
	st.mu.Unlock()
	if m.obs != nil {
		m.obs.LockQueued(depth)
	}
	start := time.Now()

	var deadline <-chan time.Time
	if m.limits.MaxWait > 0 {
		t := time.NewTimer(m.limits.MaxWait)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case <-w.ready:
		if m.obs != nil {
			m.obs.LockGranted(time.Since(start))
		}
		return nil
	case <-ctx.Done():
		// Cancellation never keeps a racing grant: abandonWaiter undoes it.
		m.abandonWaiter(st, key, w, false)
		return fmt.Errorf("lockmgr: acquire %s on %q for %s: %w", mode, key, owner, ctx.Err())
	case <-deadline:
		if !m.abandonWaiter(st, key, w, true) {
			// Granted in the same instant the deadline fired: keep it.
			if m.obs != nil {
				m.obs.LockGranted(time.Since(start))
			}
			return nil
		}
		if m.obs != nil {
			m.obs.LockOverloaded()
		}
		return fmt.Errorf("lockmgr: acquire %s on %q for %s: waited %s: %w",
			mode, key, owner, m.limits.MaxWait, ErrOverloaded)
	}
}

// abandonWaiter removes w from key's queue after a cancellation or
// deadline. It reports true when the wait is abandoned (the caller must
// return its error). When the grant already happened: with keepIfGranted
// the grant stands and false is returned (the caller returns success);
// otherwise the grant is undone — release one unit — and true is
// returned.
func (m *Manager) abandonWaiter(st *stripe, key string, w *waiter, keepIfGranted bool) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		// Only reachable when a racing ReleaseAll for this owner already
		// dropped the granted lock and GC'd the entry; nothing is held
		// either way, so report the wait abandoned.
		return true
	}
	if w.granted {
		if keepIfGranted {
			return false
		}
		m.releaseOneLocked(st, e, key, w.owner, w.mode)
		return true
	}
	for i, q := range e.waiters {
		if q == w {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			break
		}
	}
	// Removing a waiter can unblock the ones behind it (a cancelled
	// writer between readers).
	m.grantWaitersLocked(e, key)
	st.gcLocked(e, key)
	return true
}

// releaseOneLocked drops one unit of mode held by owner and hands the
// entry to queued waiters; stripe held.
func (m *Manager) releaseOneLocked(st *stripe, e *entry, key string, owner Owner, mode Mode) {
	h, ok := e.holders[owner]
	if !ok || h.counts[mode] == 0 {
		return
	}
	h.counts[mode]--
	if h.empty() {
		delete(e.holders, owner)
		m.unindexKey(owner, key)
	}
	m.grantWaitersLocked(e, key)
	st.gcLocked(e, key)
}

// TryAcquire is a non-blocking Acquire: it either grants immediately or
// returns ErrRefused. The paper's Insert operation uses this shape — it
// "will only succeed when there are no clients using A" (§4.1.2). Like
// Acquire it refuses to overtake queued waiters, so it cannot starve the
// FIFO queue.
func (m *Manager) TryAcquire(owner Owner, key string, mode Mode) error {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entryLocked(key)
	if !m.grantableLocked(e, owner, mode) || !m.mayOvertakeLocked(e, owner) {
		st.gcLocked(e, key)
		return fmt.Errorf("%s on %q for %s: %w", mode, key, owner, ErrRefused)
	}
	m.grantLocked(e, key, owner, mode)
	return nil
}

// TryPromote atomically converts one unit of owner's hold from mode `from`
// to mode `to`. It refuses (ErrRefused) if any other non-ancestor holder
// conflicts with `to`, or if owner does not hold `from`.
//
// This is the §4.2.1 commit-time step: read → Write promotion is refused
// while other clients hold read locks, whereas read → ExcludeWrite
// succeeds alongside them.
func (m *Manager) TryPromote(owner Owner, key string, from, to Mode) error {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		return fmt.Errorf("promote on %q: owner %s holds nothing: %w", key, owner, ErrRefused)
	}
	h, ok := e.holders[owner]
	if !ok || h.counts[from] == 0 {
		return fmt.Errorf("promote on %q: owner %s does not hold %s: %w", key, owner, from, ErrRefused)
	}
	if !m.grantableLocked(e, owner, to) {
		return fmt.Errorf("promote %s->%s on %q for %s: %w", from, to, key, owner, ErrRefused)
	}
	h.counts[from]--
	h.counts[to]++
	return nil
}

// Release drops one unit of mode held by owner on key. Releasing a lock
// not held is a programming error and is reported.
func (m *Manager) Release(owner Owner, key string, mode Mode) error {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		return fmt.Errorf("lockmgr: release %s on %q: no such entry", mode, key)
	}
	h, ok := e.holders[owner]
	if !ok || h.counts[mode] == 0 {
		return fmt.Errorf("lockmgr: release %s on %q: not held by %s", mode, key, owner)
	}
	m.releaseOneLocked(st, e, key, owner, mode)
	return nil
}

// ReleaseAll drops every lock held by owner — the end of a top-level
// action. The owner's key set is snapshotted first; the owner must no
// longer be acquiring (its action has ended).
func (m *Manager) ReleaseAll(owner Owner) {
	for key := range m.takeKeys(owner) {
		st := m.stripeOf(key)
		st.mu.Lock()
		if e := st.entries[key]; e != nil {
			delete(e.holders, owner)
			m.grantWaitersLocked(e, key)
			st.gcLocked(e, key)
		}
		st.mu.Unlock()
	}
}

// Inherit transfers all locks held by child to parent — nested-action
// commit. If the parent already holds locks on a key the counts merge.
// The child's key set is snapshotted first; the child must no longer be
// acquiring (it has committed).
func (m *Manager) Inherit(child, parent Owner) {
	for key := range m.takeKeys(child) {
		st := m.stripeOf(key)
		st.mu.Lock()
		e := st.entries[key]
		if e == nil {
			st.mu.Unlock()
			continue
		}
		ch, ok := e.holders[child]
		if !ok {
			st.mu.Unlock()
			continue
		}
		ph, ok := e.holders[parent]
		if !ok {
			ph = &holder{counts: make(map[Mode]int)}
			e.holders[parent] = ph
		}
		for mode, n := range ch.counts {
			ph.counts[mode] += n
		}
		delete(e.holders, child)
		m.indexKey(parent, key)
		// Inheritance can change the effective holder set (e.g. child and
		// parent both held read; merging may not wake anyone, but entries
		// with the child as sole blocker now have the parent — ancestry
		// relations differ), so re-evaluate the wait queue.
		m.grantWaitersLocked(e, key)
		st.gcLocked(e, key)
		st.mu.Unlock()
	}
}

// QueueDepth reports how many acquirers are waiting on key, for
// inspection and tests.
func (m *Manager) QueueDepth(key string) int {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		return 0
	}
	return len(e.waiters)
}

// HolderModes reports, for inspection and tests, the strongest mode each
// owner holds on key, sorted by owner for determinism.
func (m *Manager) HolderModes(key string) []struct {
	Owner Owner
	Mode  Mode
} {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		return nil
	}
	out := make([]struct {
		Owner Owner
		Mode  Mode
	}, 0, len(e.holders))
	for o, h := range e.holders {
		out = append(out, struct {
			Owner Owner
			Mode  Mode
		}{o, h.strongest()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

// Holds reports whether owner currently holds at least `mode`-strength
// access on key (a Write holder Holds Read, per promotion ordering; note
// ExcludeWrite does not imply Read semantics — it is checked exactly).
func (m *Manager) Holds(owner Owner, key string, mode Mode) bool {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		return false
	}
	h, ok := e.holders[owner]
	if !ok {
		return false
	}
	if mode == ExcludeWrite {
		return h.counts[ExcludeWrite] > 0 || h.counts[Write] > 0
	}
	return h.strongest() >= mode
}
