// Package lockmgr implements the lock management the paper's naming and
// binding databases rely on (§4.1, §4.2.1).
//
// Three lock modes are provided:
//
//   - Read: shared; used by GetServer/GetView (§4.1).
//   - Write: exclusive; used by Insert/Remove/Include and the use-list
//     operations Increment/Decrement (§4.1.2–4.1.3).
//   - ExcludeWrite: the paper's type-specific lock (§4.2.1) — compatible
//     with Read locks but not with Write or other ExcludeWrite holders, so
//     a committing server can Exclude failed store nodes while concurrent
//     clients still hold read locks on the same entry.
//
// Owners are atomic actions. Nested actions follow Moss's rule: a lock may
// be granted if every conflicting holder is an ancestor of the requester;
// when a nested action commits, its locks are inherited by its parent and
// released only when the top-level action completes.
package lockmgr

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
)

// Mode is a lock mode. The zero value is invalid (Uber style: enums start
// at one).
type Mode int

// Lock modes, weakest to strongest for promotion ordering.
const (
	Read Mode = iota + 1
	ExcludeWrite
	Write
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Read:
		return "read"
	case ExcludeWrite:
		return "exclude-write"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Compatible reports whether two modes held by different owners can
// coexist on one entry.
func Compatible(a, b Mode) bool {
	switch {
	case a == Read && b == Read:
		return true
	case a == Read && b == ExcludeWrite, a == ExcludeWrite && b == Read:
		return true
	default:
		return false
	}
}

// Owner identifies a lock holder — conventionally an action UID string.
type Owner string

// Ancestry answers ancestor queries between owners. IsAncestorOf must
// return true when ancestor is a proper ancestor of descendant (not for
// equal owners; the manager handles self separately).
type Ancestry interface {
	IsAncestorOf(ancestor, descendant Owner) bool
}

// AncestryFunc adapts a function to the Ancestry interface.
type AncestryFunc func(ancestor, descendant Owner) bool

// IsAncestorOf implements Ancestry.
func (f AncestryFunc) IsAncestorOf(a, d Owner) bool { return f(a, d) }

// NoNesting is an Ancestry under which no owner is an ancestor of another;
// suitable when only top-level actions take locks.
var NoNesting Ancestry = AncestryFunc(func(Owner, Owner) bool { return false })

// ErrRefused reports that a non-blocking acquire or promote found a
// conflicting holder.
var ErrRefused = errors.New("lockmgr: lock refused")

// holder records one owner's grip on an entry: per-mode re-entrancy counts.
type holder struct {
	counts map[Mode]int
}

func (h *holder) strongest() Mode {
	switch {
	case h.counts[Write] > 0:
		return Write
	case h.counts[ExcludeWrite] > 0:
		return ExcludeWrite
	case h.counts[Read] > 0:
		return Read
	default:
		return 0
	}
}

func (h *holder) empty() bool {
	return h.counts[Read] == 0 && h.counts[Write] == 0 && h.counts[ExcludeWrite] == 0
}

type entry struct {
	holders map[Owner]*holder
	// wait is closed and replaced whenever a lock is released, waking
	// blocked acquirers to retry.
	wait chan struct{}
}

// stripeCount and ownerShardCount size the two hash-sharded tables. Both
// are powers of two so the hash maps to a shard with a mask.
const (
	stripeCount     = 32
	ownerShardCount = 16
)

// stripe is one independently locked slice of the key space.
type stripe struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// ownerShard is one independently locked slice of the per-owner key
// index (the old byOwner map).
type ownerShard struct {
	mu   sync.Mutex
	keys map[Owner]map[string]struct{}
}

// Manager is a lock table keyed by string. It is safe for concurrent
// use. The table is sharded by key hash into independently locked
// stripes, and the per-owner key index by owner hash, so concurrent
// actions touching disjoint keys never contend on a common mutex.
//
// Lock ordering: an owner shard may be taken while holding a key stripe,
// never the reverse — whole-owner operations (ReleaseAll, Inherit)
// snapshot the owner's keys first, drop the shard lock, and then visit
// the key stripes. The price of striping is that those whole-owner
// operations are no longer atomic with respect to concurrent acquires by
// the same owner; that is fine, because they run only when the owning
// action has ended and can no longer issue acquires.
type Manager struct {
	ancestry Ancestry
	seed     maphash.Seed
	stripes  [stripeCount]stripe
	owners   [ownerShardCount]ownerShard
}

// New returns a Manager using the given ancestry; nil means NoNesting.
func New(ancestry Ancestry) *Manager {
	if ancestry == nil {
		ancestry = NoNesting
	}
	m := &Manager{ancestry: ancestry, seed: maphash.MakeSeed()}
	for i := range m.stripes {
		m.stripes[i].entries = make(map[string]*entry)
	}
	for i := range m.owners {
		m.owners[i].keys = make(map[Owner]map[string]struct{})
	}
	return m
}

// stripeOf returns the stripe owning key. Callers lock st.mu.
func (m *Manager) stripeOf(key string) *stripe {
	return &m.stripes[maphash.String(m.seed, key)&(stripeCount-1)]
}

// shardOf returns the owner shard owning owner. Callers lock sh.mu.
func (m *Manager) shardOf(owner Owner) *ownerShard {
	return &m.owners[maphash.String(m.seed, string(owner))&(ownerShardCount-1)]
}

// indexKey records key under owner in the owner index.
func (m *Manager) indexKey(owner Owner, key string) {
	sh := m.shardOf(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	keys, ok := sh.keys[owner]
	if !ok {
		keys = make(map[string]struct{})
		sh.keys[owner] = keys
	}
	keys[key] = struct{}{}
}

// unindexKey removes key from owner's index entry.
func (m *Manager) unindexKey(owner Owner, key string) {
	sh := m.shardOf(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if keys := sh.keys[owner]; keys != nil {
		delete(keys, key)
		if len(keys) == 0 {
			delete(sh.keys, owner)
		}
	}
}

// takeKeys removes and returns owner's whole key index entry.
func (m *Manager) takeKeys(owner Owner) map[string]struct{} {
	sh := m.shardOf(owner)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	keys := sh.keys[owner]
	delete(sh.keys, owner)
	return keys
}

func (st *stripe) entryLocked(key string) *entry {
	e, ok := st.entries[key]
	if !ok {
		e = &entry{holders: make(map[Owner]*holder), wait: make(chan struct{})}
		st.entries[key] = e
	}
	return e
}

// grantableLocked reports whether owner may take mode on e given current
// holders: every conflicting holder must be the owner itself or one of its
// ancestors (Moss's rule).
func (m *Manager) grantableLocked(e *entry, owner Owner, mode Mode) bool {
	for other, h := range e.holders {
		if other == owner {
			continue
		}
		om := h.strongest()
		if om == 0 {
			continue
		}
		if Compatible(mode, om) {
			continue
		}
		if !m.ancestry.IsAncestorOf(other, owner) {
			return false
		}
	}
	return true
}

// grantLocked adds one unit of mode for owner on e and indexes the key
// under the owner; the entry's stripe is held.
func (m *Manager) grantLocked(e *entry, key string, owner Owner, mode Mode) {
	h, ok := e.holders[owner]
	if !ok {
		h = &holder{counts: make(map[Mode]int)}
		e.holders[owner] = h
	}
	h.counts[mode]++
	m.indexKey(owner, key)
}

// Acquire blocks until owner holds mode on key or ctx is done. Re-entrant:
// an owner may acquire the same or a different mode repeatedly; each
// successful Acquire needs a matching Release (or a ReleaseAll).
//
// An owner that already holds a weaker mode and acquires a stronger one is
// performing a blocking promotion; the non-blocking variant used at commit
// time is TryPromote.
func (m *Manager) Acquire(ctx context.Context, owner Owner, key string, mode Mode) error {
	st := m.stripeOf(key)
	for {
		st.mu.Lock()
		e := st.entryLocked(key)
		if m.grantableLocked(e, owner, mode) {
			m.grantLocked(e, key, owner, mode)
			st.mu.Unlock()
			return nil
		}
		wait := e.wait
		st.mu.Unlock()
		select {
		case <-ctx.Done():
			return fmt.Errorf("lockmgr: acquire %s on %q for %s: %w", mode, key, owner, ctx.Err())
		case <-wait:
		}
	}
}

// TryAcquire is a non-blocking Acquire: it either grants immediately or
// returns ErrRefused. The paper's Insert operation uses this shape — it
// "will only succeed when there are no clients using A" (§4.1.2).
func (m *Manager) TryAcquire(owner Owner, key string, mode Mode) error {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entryLocked(key)
	if !m.grantableLocked(e, owner, mode) {
		return fmt.Errorf("%s on %q for %s: %w", mode, key, owner, ErrRefused)
	}
	m.grantLocked(e, key, owner, mode)
	return nil
}

// TryPromote atomically converts one unit of owner's hold from mode `from`
// to mode `to`. It refuses (ErrRefused) if any other non-ancestor holder
// conflicts with `to`, or if owner does not hold `from`.
//
// This is the §4.2.1 commit-time step: read → Write promotion is refused
// while other clients hold read locks, whereas read → ExcludeWrite
// succeeds alongside them.
func (m *Manager) TryPromote(owner Owner, key string, from, to Mode) error {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		return fmt.Errorf("promote on %q: owner %s holds nothing: %w", key, owner, ErrRefused)
	}
	h, ok := e.holders[owner]
	if !ok || h.counts[from] == 0 {
		return fmt.Errorf("promote on %q: owner %s does not hold %s: %w", key, owner, from, ErrRefused)
	}
	if !m.grantableLocked(e, owner, to) {
		return fmt.Errorf("promote %s->%s on %q for %s: %w", from, to, key, owner, ErrRefused)
	}
	h.counts[from]--
	h.counts[to]++
	return nil
}

// Release drops one unit of mode held by owner on key. Releasing a lock
// not held is a programming error and is reported.
func (m *Manager) Release(owner Owner, key string, mode Mode) error {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		return fmt.Errorf("lockmgr: release %s on %q: no such entry", mode, key)
	}
	h, ok := e.holders[owner]
	if !ok || h.counts[mode] == 0 {
		return fmt.Errorf("lockmgr: release %s on %q: not held by %s", mode, key, owner)
	}
	h.counts[mode]--
	if h.empty() {
		delete(e.holders, owner)
		m.unindexKey(owner, key)
	}
	st.wakeLocked(e, key)
	return nil
}

// ReleaseAll drops every lock held by owner — the end of a top-level
// action. The owner's key set is snapshotted first; the owner must no
// longer be acquiring (its action has ended).
func (m *Manager) ReleaseAll(owner Owner) {
	for key := range m.takeKeys(owner) {
		st := m.stripeOf(key)
		st.mu.Lock()
		if e := st.entries[key]; e != nil {
			delete(e.holders, owner)
			st.wakeLocked(e, key)
		}
		st.mu.Unlock()
	}
}

// Inherit transfers all locks held by child to parent — nested-action
// commit. If the parent already holds locks on a key the counts merge.
// The child's key set is snapshotted first; the child must no longer be
// acquiring (it has committed).
func (m *Manager) Inherit(child, parent Owner) {
	for key := range m.takeKeys(child) {
		st := m.stripeOf(key)
		st.mu.Lock()
		e := st.entries[key]
		if e == nil {
			st.mu.Unlock()
			continue
		}
		ch, ok := e.holders[child]
		if !ok {
			st.mu.Unlock()
			continue
		}
		ph, ok := e.holders[parent]
		if !ok {
			ph = &holder{counts: make(map[Mode]int)}
			e.holders[parent] = ph
		}
		for mode, n := range ch.counts {
			ph.counts[mode] += n
		}
		delete(e.holders, child)
		m.indexKey(parent, key)
		// Inheritance can change the effective holder set (e.g. child and
		// parent both held read; merging may not wake anyone, but entries
		// with the child as sole blocker now have the parent — ancestry
		// relations differ), so wake waiters to re-evaluate.
		st.wakeLocked(e, key)
		st.mu.Unlock()
	}
}

// wakeLocked wakes the entry's waiters and garbage-collects it when no
// holders remain; the stripe is held.
func (st *stripe) wakeLocked(e *entry, key string) {
	close(e.wait)
	e.wait = make(chan struct{})
	if len(e.holders) == 0 {
		delete(st.entries, key)
	}
}

// HolderModes reports, for inspection and tests, the strongest mode each
// owner holds on key, sorted by owner for determinism.
func (m *Manager) HolderModes(key string) []struct {
	Owner Owner
	Mode  Mode
} {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		return nil
	}
	out := make([]struct {
		Owner Owner
		Mode  Mode
	}, 0, len(e.holders))
	for o, h := range e.holders {
		out = append(out, struct {
			Owner Owner
			Mode  Mode
		}{o, h.strongest()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

// Holds reports whether owner currently holds at least `mode`-strength
// access on key (a Write holder Holds Read, per promotion ordering; note
// ExcludeWrite does not imply Read semantics — it is checked exactly).
func (m *Manager) Holds(owner Owner, key string, mode Mode) bool {
	st := m.stripeOf(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.entries[key]
	if !ok {
		return false
	}
	h, ok := e.holders[owner]
	if !ok {
		return false
	}
	if mode == ExcludeWrite {
		return h.counts[ExcludeWrite] > 0 || h.counts[Write] > 0
	}
	return h.strongest() >= mode
}
