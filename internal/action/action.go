// Package action implements the Atomic Action service of the paper (§2.2):
// nested atomic actions with the properties of serialisability, failure
// atomicity and permanence of effect, in the style of Arjuna.
//
// Three structuring forms from §4.1 are supported:
//
//   - standard nested actions — Begin(parent) creates a child whose effects
//     commit *into* the parent (locks and participants are inherited) and
//     become permanent only when the top-level action commits;
//   - independent top-level actions — BeginTop() with no enclosing action;
//   - nested top-level actions — BeginTop() invoked from within another
//     action; it commits independently of the enclosing action, which is
//     precisely the semantics Figure 8 relies on.
//
// Top-level commitment runs two-phase commit over the enlisted
// Participants; the commit point is a record in the coordinator's
// OutcomeLog, which recovering participants consult (presumed abort).
package action

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/conc"
	"repro/internal/lockmgr"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/uid"
)

// Status is an action's lifecycle state.
type Status int

// Action statuses.
const (
	StatusRunning Status = iota + 1
	StatusPreparing
	StatusCommitted
	StatusAborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusPreparing:
		return "preparing"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Errors reported by action lifecycle operations.
var (
	// ErrNotRunning reports a Commit/Abort on an action that already ended,
	// or beginning a child under an ended parent.
	ErrNotRunning = errors.New("action: not running")
	// ErrChildrenActive reports a Commit attempted while nested children
	// are still running.
	ErrChildrenActive = errors.New("action: children still active")
	// ErrPrepareFailed reports that two-phase commit aborted because a
	// participant could not prepare.
	ErrPrepareFailed = errors.New("action: participant failed to prepare")
	// ErrOutcomeLog reports that the commit record could not be made
	// durable: the action aborts, because without the record no recovery
	// could ever learn the commit.
	ErrOutcomeLog = errors.New("action: outcome log write failed")
	// ErrOutcomeUnknown marks a commit failure whose outcome the
	// coordinator could not determine: a one-phase attempt ended
	// ambiguously (the reply was lost after the request may have been
	// delivered) and the two-phase fallback could not reach the
	// participant to resolve the doubt — the combined round may have
	// committed at the participant's store with no way to report it.
	// Callers must treat such an action as in doubt, never as a definite
	// abort; the next activation of the object observes the true state.
	ErrOutcomeUnknown = errors.New("action: outcome unknown")
)

// Vote is a participant's phase-one answer (§4.1.2's read optimisation
// made explicit in the commit protocol).
type Vote int

// Phase-one votes.
const (
	// VoteCommit: the participant has stably prepared updates and needs a
	// phase-two Commit (or Abort) to learn the outcome.
	VoteCommit Vote = iota + 1
	// VoteReadOnly: the participant only read — it has released its
	// resources during Prepare and takes no part in phase two. Presumed
	// abort makes this safe: a read-only participant never consults the
	// outcome log because it has nothing to resolve.
	VoteReadOnly
)

// String implements fmt.Stringer.
func (v Vote) String() string {
	switch v {
	case VoteCommit:
		return "commit"
	case VoteReadOnly:
		return "read-only"
	default:
		return fmt.Sprintf("vote(%d)", int(v))
	}
}

// Participant is a resource that takes part in two-phase commit of a
// top-level action. tx is the top-level action's ID (the commit record
// key). Prepare returns the participant's vote; a VoteReadOnly
// participant must have released its resources by the time Prepare
// returns and is excluded from phase two. Abort may be invoked for a tx
// that never prepared (or voted read-only); it must be a no-op then.
type Participant interface {
	Name() string
	Prepare(ctx context.Context, tx string) (Vote, error)
	Commit(ctx context.Context, tx string) error
	Abort(ctx context.Context, tx string) error
}

// ErrOnePhaseIneligible is returned by a OnePhaser that cannot commit in
// a single combined round this time (e.g. the write would fan out to
// several stable stores, which needs the coordinator's outcome log to
// stay atomic). The coordinator falls back to ordinary two-phase commit;
// the participant must be left exactly as if CommitOnePhase was never
// called.
var ErrOnePhaseIneligible = errors.New("action: one-phase commit ineligible")

// OnePhaser is an optional Participant extension: when a top-level
// action has exactly one participant there is nothing to coordinate, so
// the commit decision can be delegated to the participant itself in a
// single combined prepare+commit round — one RPC instead of two, and no
// outcome-log write (the decision never outlives the call).
//
// CommitOnePhase either commits the participant's updates (VoteCommit),
// finds there was nothing to write and releases (VoteReadOnly), or
// fails — in which case the participant must be rolled back or left
// recoverable under presumed abort. ErrOnePhaseIneligible asks the
// coordinator to run ordinary 2PC instead.
type OnePhaser interface {
	CommitOnePhase(ctx context.Context, tx string) (Vote, error)
}

// Ancestry is the lockmgr ancestry induced by the action ID scheme: a
// child's ID is its parent's ID plus a "/"-separated suffix.
var Ancestry lockmgr.Ancestry = lockmgr.AncestryFunc(func(a, d lockmgr.Owner) bool {
	return len(a) < len(d) && strings.HasPrefix(string(d), string(a)+"/")
})

// Log records and reports transaction outcomes; it is the commit-record
// service of the 2PC coordinator. Record returns an error when the
// record could not be made durable — the coordinator must then abort
// rather than commit, because the commit point IS the durable record.
// Forget prunes a record that no participant can ever ask about again
// (every phase-two ack is in), so the log does not grow forever.
type Log interface {
	Record(tx string, o store.Outcome) error
	Forget(tx string) error
	store.OutcomeLog
}

// MemLog is an in-memory Log. The zero value is ready to use. Kept for
// tests that want a bare map; the default coordinator log is a
// BackendLog on the node's stable storage.
type MemLog struct {
	mu sync.Mutex
	m  map[string]store.Outcome
}

// NewMemLog returns an empty log.
func NewMemLog() *MemLog { return &MemLog{m: make(map[string]store.Outcome)} }

// Record implements Log.
func (l *MemLog) Record(tx string, o store.Outcome) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.m == nil {
		l.m = make(map[string]store.Outcome)
	}
	l.m[tx] = o
	return nil
}

// Forget implements Log.
func (l *MemLog) Forget(tx string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.m, tx)
	return nil
}

// Len returns the number of live records — what the outcome-log GC test
// asserts shrinks back to zero.
func (l *MemLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.m)
}

// Lookup implements store.OutcomeLog.
func (l *MemLog) Lookup(tx string) store.Outcome {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.m[tx]
}

// BackendLog is a Log whose records live in a storage.Backend — the
// coordinator's commit-record log on stable storage. Record syncs before
// returning (the commit point must be durable before phase two);
// Forget's delete is appended without a sync, since resurrecting a
// pruned record after a crash is harmless (it just gets pruned again).
type BackendLog struct {
	b func() storage.Backend
}

// NewBackendLog returns a log over the fixed backend b.
func NewBackendLog(b storage.Backend) *BackendLog {
	return &BackendLog{b: func() storage.Backend { return b }}
}

// NewBackendLogFunc returns a log that resolves its backend on every
// call. A node passes its store's current backend this way — commit
// records then share the node's stable storage AND follow it across a
// crash/reopen cycle, which replaces the backend instance (a captured
// one would stay closed forever).
func NewBackendLogFunc(b func() storage.Backend) *BackendLog {
	return &BackendLog{b: b}
}

// Record implements Log. A shut-down backend (the node is crashed)
// refuses: no durable record, no commit.
func (l *BackendLog) Record(tx string, o store.Outcome) error {
	b := l.b()
	if b == nil {
		return storage.ErrClosed
	}
	if err := b.PutOutcome(tx, uint8(o)); err != nil {
		return err
	}
	return b.Sync()
}

// Forget implements Log.
func (l *BackendLog) Forget(tx string) error {
	b := l.b()
	if b == nil {
		return storage.ErrClosed
	}
	return b.DeleteOutcome(tx)
}

// Lookup implements store.OutcomeLog. A backend that cannot answer (shut
// down mid-crash) reports OutcomeUnavailable — not "no record".
func (l *BackendLog) Lookup(tx string) store.Outcome {
	b := l.b()
	if b == nil {
		return store.OutcomeUnavailable
	}
	o, ok, err := b.Outcome(tx)
	if err != nil {
		return store.OutcomeUnavailable
	}
	if !ok {
		return store.OutcomeUnknown
	}
	return store.Outcome(o)
}

// Manager creates actions for one client/node.
type Manager struct {
	gen *uid.Generator
	log Log

	// inflight tracks top-level actions currently inside commit
	// processing — from before the first prepare RPC until the outcome
	// is durably recorded (or the action finished without a record).
	// Recovery-time lookups for these answer OutcomeUnavailable: a
	// participant's restart racing a LIVE commit must not read the
	// not-yet-written record as an affirmative "no record" and presume
	// abort — that rolls back a vote whose transaction is about to
	// commit. The set is volatile on purpose: if the coordinator itself
	// dies mid-flight it will never decide, and presumed abort becomes
	// correct again.
	mu       sync.Mutex
	inflight map[string]struct{}
}

// NewManager returns a manager minting action IDs from origin; log may be
// nil, in which case a fresh stable-storage-backed log over an in-memory
// backend is used.
func NewManager(origin string, log Log) *Manager {
	if log == nil {
		log = NewBackendLog(storage.NewMem())
	}
	return &Manager{gen: uid.NewGenerator(origin, 1), log: log}
}

// Log returns the manager's outcome log.
func (m *Manager) Log() Log { return m.log }

// beginCommitWindow marks tx as inside commit processing.
func (m *Manager) beginCommitWindow(tx string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.inflight == nil {
		m.inflight = make(map[string]struct{})
	}
	m.inflight[tx] = struct{}{}
}

// endCommitWindow clears the in-flight marker once tx's fate is settled
// (outcome recorded, or finished without a record).
func (m *Manager) endCommitWindow(tx string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.inflight, tx)
}

// Lookup implements store.OutcomeLog with in-flight awareness: a
// transaction currently inside its coordinator's commit processing
// answers OutcomeUnavailable — the decision point has not passed, so
// neither commit nor presumed abort may be inferred yet; the asking
// participant keeps its intention pending and retries later. Expose THIS
// (not the raw log) as the coordinator's recovery-query surface.
func (m *Manager) Lookup(tx string) store.Outcome {
	m.mu.Lock()
	_, fl := m.inflight[tx]
	m.mu.Unlock()
	if fl {
		return store.OutcomeUnavailable
	}
	return m.log.Lookup(tx)
}

var _ store.OutcomeLog = (*Manager)(nil)

// Action is one atomic action. Use Manager.BeginTop or Begin to create.
type Action struct {
	mgr    *Manager
	id     string
	parent *Action

	mu           sync.Mutex
	status       Status
	children     int
	childSeq     int
	participants []Participant
	mergeHooks   []func(parent *Action)
	resolveHooks []func(committed bool)
	stash        map[string]any
	retainLog    bool
}

// BeginTop starts a top-level action. Called from within another action's
// dynamic extent, it is a *nested top-level action* (Figure 8): it commits
// or aborts independently of the enclosing action.
func (m *Manager) BeginTop() *Action {
	return &Action{mgr: m, id: m.gen.New().String(), status: StatusRunning}
}

// Begin starts a nested action under parent; with a nil parent it is
// equivalent to BeginTop.
func (m *Manager) Begin(parent *Action) (*Action, error) {
	if parent == nil {
		return m.BeginTop(), nil
	}
	parent.mu.Lock()
	defer parent.mu.Unlock()
	if parent.status != StatusRunning {
		return nil, fmt.Errorf("begin under %s (%s): %w", parent.id, parent.status, ErrNotRunning)
	}
	parent.childSeq++
	parent.children++
	return &Action{
		mgr:    m,
		id:     parent.id + "/" + strconv.Itoa(parent.childSeq),
		parent: parent,
		status: StatusRunning,
	}, nil
}

// ID returns the action's hierarchical identifier.
func (a *Action) ID() string { return a.id }

// Owner returns the action's lock-owner identity.
func (a *Action) Owner() lockmgr.Owner { return lockmgr.Owner(a.id) }

// Parent returns the enclosing action, or nil for a top-level action.
func (a *Action) Parent() *Action { return a.parent }

// Top returns the top-level ancestor (itself if top-level).
func (a *Action) Top() *Action {
	t := a
	for t.parent != nil {
		t = t.parent
	}
	return t
}

// IsTopLevel reports whether the action has no parent.
func (a *Action) IsTopLevel() bool { return a.parent == nil }

// Status returns the current lifecycle state.
func (a *Action) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.status
}

// Enlist registers a two-phase-commit participant. On nested commit the
// participant is inherited by the parent; 2PC runs only at top level.
func (a *Action) Enlist(p Participant) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.status != StatusRunning {
		return fmt.Errorf("enlist %s in %s (%s): %w", p.Name(), a.id, a.status, ErrNotRunning)
	}
	a.participants = append(a.participants, p)
	return nil
}

// OnMerge registers a hook invoked when this (nested) action commits into
// its parent — e.g. lock inheritance. Never invoked for top-level commits.
func (a *Action) OnMerge(f func(parent *Action)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.mergeHooks = append(a.mergeHooks, f)
}

// OnResolve registers a hook invoked when the action's fate is decided at
// its own level: nested abort (false), top-level commit (true) or abort
// (false). A nested commit transfers nothing to resolve hooks — the work
// moves to the parent via OnMerge.
func (a *Action) OnResolve(f func(committed bool)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.resolveHooks = append(a.resolveHooks, f)
}

// RetainOutcome marks the action's commit record as still needed after
// phase two: some lower-level resource — typically a store that was
// excluded from St with a prepared intention on board — may query the
// outcome at its own recovery, even though every Participant acked.
// Participants call this during phase two; it suppresses the outcome-log
// GC for this action.
func (a *Action) RetainOutcome() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.retainLog = true
}

func (a *Action) outcomeRetained() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.retainLog
}

// StashOnce stores v under key if the key is empty and reports whether it
// stored. It lets per-action resources (e.g. lock trackers) register
// exactly once.
func (a *Action) StashOnce(key string, v any) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stash == nil {
		a.stash = make(map[string]any)
	}
	if _, ok := a.stash[key]; ok {
		return false
	}
	a.stash[key] = v
	return true
}

// Stashed returns the value stored under key, if any.
func (a *Action) Stashed(key string) (any, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.stash[key]
	return v, ok
}

// Commit ends the action successfully.
//
// Nested: effects, participants, and merge hooks transfer to the parent.
// Top-level: two-phase commit over all participants; the commit record is
// written to the manager's log between the phases. A prepare failure
// aborts the action and returns ErrPrepareFailed. Phase-two failures do
// not undo the commit — crashed participants learn the outcome from the
// log at recovery; such errors are reported via the returned CommitReport.
func (a *Action) Commit(ctx context.Context) (*CommitReport, error) {
	a.mu.Lock()
	if a.status != StatusRunning {
		st := a.status
		a.mu.Unlock()
		return nil, fmt.Errorf("commit %s (%s): %w", a.id, st, ErrNotRunning)
	}
	if a.children > 0 {
		n := a.children
		a.mu.Unlock()
		return nil, fmt.Errorf("commit %s with %d running children: %w", a.id, n, ErrChildrenActive)
	}
	if a.parent != nil {
		return a.commitNestedLocked(ctx)
	}
	return a.commitTopLocked(ctx)
}

// commitNestedLocked finishes a nested commit; a.mu is held on entry.
func (a *Action) commitNestedLocked(_ context.Context) (*CommitReport, error) {
	a.status = StatusCommitted
	participants := a.participants
	mergeHooks := a.mergeHooks
	resolveHooks := a.resolveHooks
	a.participants = nil
	a.mergeHooks = nil
	a.resolveHooks = nil
	parent := a.parent
	a.mu.Unlock()

	parent.mu.Lock()
	parentRunning := parent.status == StatusRunning
	if parentRunning {
		parent.participants = append(parent.participants, participants...)
		parent.resolveHooks = append(parent.resolveHooks, resolveHooks...)
		parent.children--
	}
	parent.mu.Unlock()
	if !parentRunning {
		// The parent ended while the child was committing — a programming
		// error in callers; treat the child's work as aborted.
		for _, f := range resolveHooks {
			f(false)
		}
		return nil, fmt.Errorf("commit %s: parent %s already ended: %w", a.id, parent.id, ErrNotRunning)
	}
	for _, f := range mergeHooks {
		f(parent)
	}
	return &CommitReport{}, nil
}

// CommitReport describes the aftermath of a commit — including the vote
// anatomy, so callers (and benchmarks) can see which round-trip
// eliminations fired.
type CommitReport struct {
	// PhaseTwoErrors lists participants whose Commit call failed after the
	// commit point. The action IS committed; these participants recover
	// via the outcome log.
	PhaseTwoErrors []error
	// ReadOnlyVoters and CommitVoters count the phase-one votes. Read-only
	// voters were released after phase one and took no part in phase two.
	ReadOnlyVoters int
	CommitVoters   int
	// OnePhase reports that the commit ran as a single combined
	// prepare+commit round with the action's only participant.
	OnePhase bool
	// OutcomeLogged reports whether a commit record was written. All-read-
	// only and one-phase commits skip it (presumed abort makes this safe).
	OutcomeLogged bool
	// OutcomePruned reports that the commit record was garbage-collected
	// right after phase two: every commit voter acked and no participant
	// asked for retention, so no recovery can ever query this record.
	OutcomePruned bool
}

// commitTopLocked runs top-level commitment; a.mu is held on entry. Both
// phases fan out to all participants concurrently: participants are
// independent resources, so commit latency is that of the slowest
// participant rather than the sum over participants.
//
// Three round-trip eliminations apply (§4.1.2):
//
//   - a participant that voted VoteReadOnly is released during phase one
//     and is excluded from phase two;
//   - when every participant voted read-only, the outcome-log write is
//     skipped too — there is nothing any recovery would ask about;
//   - an action with a single participant that implements OnePhaser
//     commits in one combined prepare+commit round with no log write:
//     the decision is delegated to the participant.
func (a *Action) commitTopLocked(ctx context.Context) (*CommitReport, error) {
	a.status = StatusPreparing
	participants := a.participants
	resolveHooks := a.resolveHooks
	a.mu.Unlock()

	// Read-only fast path: nothing to prepare.
	if len(participants) == 0 {
		a.finish(StatusCommitted, resolveHooks)
		return &CommitReport{}, nil
	}

	// Open the in-flight window BEFORE any prepare can create remote
	// state: recovery lookups racing this commit must see "undecided",
	// never a premature "no record" (see Manager.Lookup).
	a.mgr.beginCommitWindow(a.id)
	defer a.mgr.endCommitWindow(a.id)

	// One-phase fast path: a single participant needs no coordination.
	if len(participants) == 1 {
		if op, ok := participants[0].(OnePhaser); ok {
			report, err := a.commitOnePhase(ctx, participants[0], op, resolveHooks)
			if !errors.Is(err, ErrOnePhaseIneligible) {
				return report, err
			}
			// Ineligible: the participant is untouched; run ordinary 2PC.
		}
	}

	// Phase one: concurrent, with first-failure abort — the first prepare
	// refusal cancels the prepares still in flight.
	votes, rolledBack, err := a.prepareAll(ctx, participants)
	if err != nil {
		a.recordAbort(rolledBack)
		a.finish(StatusAborted, resolveHooks)
		return nil, err
	}
	report := &CommitReport{}
	var voters []Participant
	for i, v := range votes {
		if v == VoteReadOnly {
			report.ReadOnlyVoters++
			continue
		}
		report.CommitVoters++
		voters = append(voters, participants[i])
	}

	// All participants voted read-only: they are already released, and
	// presumed abort means no recovery will ever consult the log for this
	// action — skip the outcome-log write and the whole of phase two.
	if len(voters) == 0 {
		a.finish(StatusCommitted, resolveHooks)
		return report, nil
	}

	// Commit point: the durable record. A failed write means the commit
	// never happened — no recovery could learn it — so the action aborts
	// and the prepared participants are rolled back.
	if err := a.mgr.log.Record(a.id, store.OutcomeCommitted); err != nil {
		rolledBack := a.rollbackAll(ctx, participants, a.id)
		a.recordAbort(rolledBack)
		a.finish(StatusAborted, resolveHooks)
		return nil, fmt.Errorf("%s: %v: %w", a.id, err, ErrOutcomeLog)
	}
	report.OutcomeLogged = true
	a.mu.Lock()
	a.status = StatusCommitted
	a.mu.Unlock()

	// Phase two: concurrent over the commit voters only, best effort;
	// failures are survivable and aggregated in participant order so the
	// report is deterministic.
	errs := conc.DoErr(len(voters), func(i int) error {
		if err := voters[i].Commit(ctx, a.id); err != nil {
			return fmt.Errorf("phase-2 commit at %s: %w", voters[i].Name(), err)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			report.PhaseTwoErrors = append(report.PhaseTwoErrors, err)
		}
	}
	// Outcome-log GC: once every commit voter has acked phase two —
	// and no participant flagged a lower-level straggler via
	// RetainOutcome — nobody can ever query this record again (a
	// participant only asks when it holds an unresolved intention, and
	// an acked Commit resolved it). Presumed abort makes the pruned
	// state indistinguishable from "never asked".
	if len(report.PhaseTwoErrors) == 0 && !a.outcomeRetained() {
		if a.mgr.log.Forget(a.id) == nil {
			report.OutcomePruned = true
		}
	}
	for _, f := range resolveHooks {
		f(true)
	}
	return report, nil
}

// recordAbort writes the abort record and immediately prunes it when
// every participant acknowledged its rollback: with all intentions gone
// no recovery will ask, and even for stragglers presumed abort gives the
// same answer with no record at all — the record is kept only as a
// diagnostic breadcrumb while some participant is still unaccounted for.
func (a *Action) recordAbort(rolledBack bool) {
	_ = a.mgr.log.Record(a.id, store.OutcomeAborted)
	if rolledBack {
		_ = a.mgr.log.Forget(a.id)
	}
}

// rollbackAll aborts every participant under the given transaction ID
// and reports whether all of them acknowledged.
func (a *Action) rollbackAll(ctx context.Context, participants []Participant, tx string) bool {
	errs := conc.DoErr(len(participants), func(i int) error {
		return participants[i].Abort(ctx, tx)
	})
	for _, err := range errs {
		if err != nil {
			return false
		}
	}
	return true
}

// commitOnePhase delegates the commit decision to the action's only
// participant in a single combined round. No outcome log record is
// written on either path: the participant resolves its own fate before
// the call returns, and anything it left prepared-but-undecided (a crash
// mid-call) resolves to abort under the presumed-abort rule.
func (a *Action) commitOnePhase(ctx context.Context, p Participant, op OnePhaser, resolveHooks []func(bool)) (*CommitReport, error) {
	vote, err := op.CommitOnePhase(ctx, a.id)
	if errors.Is(err, ErrOnePhaseIneligible) {
		return nil, err
	}
	if err != nil {
		// Roll the participant back (idempotent if it already did).
		_ = p.Abort(ctx, a.id)
		a.finish(StatusAborted, resolveHooks)
		return nil, fmt.Errorf("%s: %s: %w: %w", a.id, p.Name(), err, ErrPrepareFailed)
	}
	report := &CommitReport{OnePhase: true}
	if vote == VoteReadOnly {
		report.ReadOnlyVoters = 1
	} else {
		report.CommitVoters = 1
	}
	a.finish(StatusCommitted, resolveHooks)
	return report, nil
}

// finish records the final status and fires the resolve hooks.
func (a *Action) finish(st Status, resolveHooks []func(bool)) {
	a.mu.Lock()
	a.status = st
	a.mu.Unlock()
	for _, f := range resolveHooks {
		f(st == StatusCommitted)
	}
}

// prepareAll runs phase one across all participants concurrently and
// collects their votes. On the first failure the remaining in-flight
// prepares are cancelled and every participant is rolled back — including
// ones whose prepare may have half-happened (e.g. a lost reply), ones
// that never prepared, and read-only voters already released (Abort is a
// no-op for them, per the Participant contract). The roll-back uses the
// caller's context, not the cancelled one; rolledBack reports whether
// every participant acknowledged it (which licenses pruning the abort
// record).
func (a *Action) prepareAll(ctx context.Context, participants []Participant) (votes []Vote, rolledBack bool, err error) {
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		firstIdx int
	)
	votes = make([]Vote, len(participants))
	conc.Do(len(participants), func(i int) {
		v, err := participants[i].Prepare(pctx, a.id)
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
				firstIdx = i
			}
			mu.Unlock()
			cancel()
			return
		}
		votes[i] = v
	})
	if firstErr == nil {
		return votes, false, nil
	}
	rolledBack = a.rollbackAll(ctx, participants, a.id)
	// Wrap with %w so sentinel causes survive — a participant reporting
	// ErrOutcomeUnknown must stay visible through this chain or the
	// caller would misread an in-doubt commit as a definite abort.
	return nil, rolledBack, fmt.Errorf("%s: %s: %w: %w", a.id, participants[firstIdx].Name(), firstErr, ErrPrepareFailed)
}

// Abort ends the action, undoing its effects. Active children are aborted
// first (outermost call wins).
func (a *Action) Abort(ctx context.Context) error {
	a.mu.Lock()
	if a.status != StatusRunning {
		st := a.status
		a.mu.Unlock()
		return fmt.Errorf("abort %s (%s): %w", a.id, st, ErrNotRunning)
	}
	a.status = StatusAborted
	participants := a.participants
	resolveHooks := a.resolveHooks
	a.participants = nil
	a.mergeHooks = nil
	a.resolveHooks = nil
	parent := a.parent
	a.mu.Unlock()

	allAcked := a.rollbackAll(ctx, participants, a.Top().id)
	if parent == nil {
		a.recordAbort(allAcked)
	} else {
		parent.mu.Lock()
		if parent.status == StatusRunning {
			parent.children--
		}
		parent.mu.Unlock()
	}
	for _, f := range resolveHooks {
		f(false)
	}
	return nil
}

// TrackLocks ties lock ownership on lm to the action's lifecycle:
// locks inherited by the parent on nested commit, released on abort and at
// top-level completion. Safe to call repeatedly; registration happens once
// per (action, manager) pair.
func TrackLocks(a *Action, lm *lockmgr.Manager) {
	key := fmt.Sprintf("lockmgr:%p", lm)
	if !a.StashOnce(key, lm) {
		return
	}
	a.OnMerge(func(parent *Action) {
		lm.Inherit(a.Owner(), parent.Owner())
		TrackLocks(parent, lm)
	})
	a.OnResolve(func(bool) {
		lm.ReleaseAll(a.Owner())
	})
}

// StoreParticipant adapts a (possibly remote) object store to the
// Participant interface. Writes is evaluated at prepare time so that the
// final object state of the action is captured.
type StoreParticipant struct {
	// Label names the participant in errors (typically the store node).
	Label string
	// Remote is the store being driven.
	Remote store.RemoteStore
	// Writes yields the object versions to install.
	Writes func() []store.Write
}

// Name implements Participant.
func (p *StoreParticipant) Name() string { return p.Label }

// Prepare implements Participant. A participant with nothing to write
// votes read-only without touching the store at all — there is no
// intention to record, so the prepare round trip vanishes along with the
// phase-two one.
func (p *StoreParticipant) Prepare(ctx context.Context, tx string) (Vote, error) {
	writes := p.Writes()
	if len(writes) == 0 {
		return VoteReadOnly, nil
	}
	if err := p.Remote.Prepare(ctx, tx, writes); err != nil {
		return 0, err
	}
	return VoteCommit, nil
}

// Commit implements Participant.
func (p *StoreParticipant) Commit(ctx context.Context, tx string) error {
	return p.Remote.Commit(ctx, tx)
}

// Abort implements Participant.
func (p *StoreParticipant) Abort(ctx context.Context, tx string) error {
	return p.Remote.Abort(ctx, tx)
}

// CommitOnePhase implements OnePhaser: a single store applies the writes
// atomically under its own mutex, so a sole participant needs neither a
// prepare round nor an outcome-log record.
func (p *StoreParticipant) CommitOnePhase(ctx context.Context, tx string) (Vote, error) {
	writes := p.Writes()
	if len(writes) == 0 {
		return VoteReadOnly, nil
	}
	if err := p.Remote.CommitOnePhase(ctx, tx, writes); err != nil {
		return 0, err
	}
	return VoteCommit, nil
}
