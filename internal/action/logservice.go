package action

import (
	"context"

	"repro/internal/rpc"
	"repro/internal/store"
	"repro/internal/transport"
)

// LogServiceName is the RPC service name for outcome-log lookups.
const LogServiceName = "outcomelog"

// LogMethodLookup is the lookup method name.
const LogMethodLookup = "Lookup"

// LookupReq asks for the outcome of a transaction.
type LookupReq struct{ Tx string }

// LookupResp carries an outcome.
type LookupResp struct{ Outcome int }

// RegisterLogService exposes log lookups over RPC so that recovering store
// nodes can resolve their pending intentions (presumed abort).
func RegisterLogService(srv *rpc.Server, log Log) {
	srv.Handle(LogServiceName, LogMethodLookup, rpc.Method(func(ctx context.Context, from transport.Addr, req LookupReq) (LookupResp, error) {
		return LookupResp{Outcome: int(log.Lookup(req.Tx))}, nil
	}))
}

// RemoteLog queries a log on another node. It implements store.OutcomeLog;
// lookup failures are reported as OutcomeUnknown, which recovery treats as
// abort (presumed abort is safe: an unreachable coordinator means the
// transaction cannot have been acknowledged as committed to the client
// without a commit record surviving somewhere we can eventually read).
type RemoteLog struct {
	Client rpc.Client
	Node   transport.Addr
}

var _ store.OutcomeLog = RemoteLog{}

// Lookup implements store.OutcomeLog.
func (r RemoteLog) Lookup(tx string) store.Outcome {
	resp, err := rpc.Invoke[LookupReq, LookupResp](context.Background(), r.Client, r.Node, LogServiceName, LogMethodLookup, LookupReq{Tx: tx})
	if err != nil {
		return store.OutcomeUnknown
	}
	return store.Outcome(resp.Outcome)
}
