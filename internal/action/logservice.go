package action

import (
	"context"
	"strings"

	"repro/internal/rpc"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
)

// LogServiceName is the RPC service name for outcome-log lookups.
const LogServiceName = "outcomelog"

// LogMethodLookup is the lookup method name.
const LogMethodLookup = "Lookup"

// LookupReq asks for the outcome of a transaction.
type LookupReq struct{ Tx string }

// LookupResp carries an outcome.
type LookupResp struct{ Outcome int }

// RegisterLogService exposes log lookups over RPC so that recovering store
// nodes can resolve their pending intentions (presumed abort). Pass the
// coordinator's *Manager (not its raw Log): the manager's Lookup answers
// OutcomeUnavailable for transactions whose commit processing is still
// in flight, so a restart racing a live commit cannot mistake the
// not-yet-written record for an affirmative abort.
func RegisterLogService(srv *rpc.Server, log store.OutcomeLog) {
	srv.Handle(LogServiceName, LogMethodLookup, rpc.Method(func(ctx context.Context, from transport.Addr, req LookupReq) (LookupResp, error) {
		return LookupResp{Outcome: int(log.Lookup(req.Tx))}, nil
	}))
}

// RemoteLog queries a log on another node. It implements store.OutcomeLog.
// Lookup failures are reported as OutcomeUnavailable — NOT as unknown: an
// unreachable coordinator may well hold a commit record, so the recovering
// participant must keep its intention pending rather than presume abort.
// Only an affirmative "no record" answer from the coordinator licenses the
// presumption.
type RemoteLog struct {
	Client rpc.Client
	Node   transport.Addr
}

var _ store.OutcomeLog = RemoteLog{}

// Lookup implements store.OutcomeLog.
func (r RemoteLog) Lookup(tx string) store.Outcome {
	resp, err := rpc.Invoke[LookupReq, LookupResp](context.Background(), r.Client, r.Node, LogServiceName, LogMethodLookup, LookupReq{Tx: tx})
	if err != nil {
		return store.OutcomeUnavailable
	}
	return store.Outcome(resp.Outcome)
}

// TxOrigin extracts the coordinator origin from an action identifier as
// minted by a Manager: the UID's origin, with any nested-action "/suffix"
// stripped. It reports false for identifiers in no recognisable form.
func TxOrigin(tx string) (string, bool) {
	if i := strings.IndexByte(tx, '/'); i >= 0 {
		tx = tx[:i]
	}
	u, err := uid.Parse(tx)
	if err != nil || u.Origin == "" {
		return "", false
	}
	return u.Origin, true
}

// OriginLog is a store.OutcomeLog that answers each lookup by querying the
// outcome-log RPC service at the transaction's own coordinator, identified
// by the transaction ID's origin. It is the recovery-side half of the
// paper's presumed-abort commit protocol: a restarting participant with a
// prepared-but-undecided intention asks the coordinator for the recorded
// outcome. "No record" — the coordinator's affirmative answer, or an
// origin that names no coordinator at all — means abort: a transaction is
// only acknowledged as committed after its commit record is written. An
// UNREACHABLE coordinator is different: it may hold a commit record we
// cannot read right now, so the lookup reports OutcomeUnavailable and the
// intention stays pending until a later retry gets an answer.
type OriginLog struct {
	// Client issues the lookup RPCs (conventionally the recovering node's
	// own client).
	Client rpc.Client
	// Resolve maps a transaction origin to the coordinator's address. A nil
	// Resolve uses the origin verbatim as the address.
	Resolve func(origin string) (transport.Addr, bool)
}

var _ store.OutcomeLog = OriginLog{}

// Lookup implements store.OutcomeLog.
func (l OriginLog) Lookup(tx string) store.Outcome {
	origin, ok := TxOrigin(tx)
	if !ok {
		return store.OutcomeUnknown
	}
	addr := transport.Addr(origin)
	if l.Resolve != nil {
		if addr, ok = l.Resolve(origin); !ok {
			return store.OutcomeUnknown
		}
	}
	return RemoteLog{Client: l.Client, Node: addr}.Lookup(tx)
}
