package action

import (
	"testing"

	"repro/internal/rpc"
	"repro/internal/store"
	"repro/internal/transport"
)

func TestTxOrigin(t *testing.T) {
	mgr := NewManager("c7", nil)
	top := mgr.BeginTop()
	child, err := mgr.Begin(top)
	if err != nil {
		t.Fatal(err)
	}
	for _, tx := range []string{top.ID(), child.ID()} {
		origin, ok := TxOrigin(tx)
		if !ok || origin != "c7" {
			t.Fatalf("TxOrigin(%q) = %q, %v; want c7, true", tx, origin, ok)
		}
	}
	for _, bad := range []string{"", "noseps", "a/b", ":1:2"} {
		if origin, ok := TxOrigin(bad); ok {
			t.Fatalf("TxOrigin(%q) = %q, true; want false", bad, origin)
		}
	}
	// An origin containing slashes (recovery managers use "node/role")
	// truncates at the first slash — the node part routes the query.
	if origin, ok := TxOrigin("st1/st-recovery:1:4"); ok || origin != "" {
		// "st1" alone is not a parseable UID prefix here because the
		// truncation removes the epoch/seq parts too.
		t.Fatalf("TxOrigin(st1/st-recovery:1:4) = %q, %v", origin, ok)
	}
}

func TestOriginLogRoutesToCoordinator(t *testing.T) {
	net := transport.NewMem(transport.MemOptions{}, nil)
	cli := rpc.Client{Net: net, From: "st1"}

	// Coordinator c1 exposes its log; c2 exposes a different log.
	for _, c := range []struct {
		node transport.Addr
		log  *MemLog
		tx   string
	}{
		{"c1", NewMemLog(), "c1:1:1"},
		{"c2", NewMemLog(), "c2:1:1"},
	} {
		srv := rpc.NewServer()
		c.log.Record(c.tx, store.OutcomeCommitted)
		RegisterLogService(srv, c.log)
		net.Register(c.node, srv.Handler())
	}

	l := OriginLog{Client: cli}
	if got := l.Lookup("c1:1:1"); got != store.OutcomeCommitted {
		t.Fatalf("c1:1:1 = %v, want committed", got)
	}
	if got := l.Lookup("c2:1:1"); got != store.OutcomeCommitted {
		t.Fatalf("c2:1:1 = %v, want committed", got)
	}
	// Unknown transaction at a reachable coordinator: the affirmative "no
	// record" answer — presumed abort applies.
	if got := l.Lookup("c1:1:99"); got != store.OutcomeUnknown {
		t.Fatalf("unknown tx = %v, want unknown", got)
	}
	// Unreachable coordinator: NOT presumed abort — the record may exist
	// but be unreadable; the intention must stay pending.
	if got := l.Lookup("ghost:1:1"); got != store.OutcomeUnavailable {
		t.Fatalf("unreachable coordinator = %v, want unavailable", got)
	}
	// Malformed tx names no coordinator that could ever answer: abort.
	if got := l.Lookup("not-a-uid"); got != store.OutcomeUnknown {
		t.Fatalf("malformed tx = %v, want unknown", got)
	}
	// A Resolve hook can veto origins that are not coordinators.
	vetoed := OriginLog{Client: cli, Resolve: func(origin string) (transport.Addr, bool) {
		return "", false
	}}
	if got := vetoed.Lookup("c1:1:1"); got != store.OutcomeUnknown {
		t.Fatalf("vetoed origin = %v, want unknown", got)
	}
}
