package action

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/lockmgr"
	"repro/internal/rpc"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
)

// fakeParticipant records lifecycle calls and can be told to fail prepare
// or vote read-only.
type fakeParticipant struct {
	name        string
	failPrepare bool
	readOnly    bool

	mu       sync.Mutex
	prepares []string
	commits  []string
	aborts   []string
}

func (p *fakeParticipant) Name() string { return p.name }

func (p *fakeParticipant) Prepare(_ context.Context, tx string) (Vote, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.prepares = append(p.prepares, tx)
	if p.failPrepare {
		return 0, errors.New("refusing to prepare")
	}
	if p.readOnly {
		return VoteReadOnly, nil
	}
	return VoteCommit, nil
}

func (p *fakeParticipant) Commit(_ context.Context, tx string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.commits = append(p.commits, tx)
	return nil
}

func (p *fakeParticipant) Abort(_ context.Context, tx string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.aborts = append(p.aborts, tx)
	return nil
}

func counts(p *fakeParticipant) (int, int, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.prepares), len(p.commits), len(p.aborts)
}

func TestTopLevelCommitRunsTwoPhase(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	p1 := &fakeParticipant{name: "s1"}
	p2 := &fakeParticipant{name: "s2"}
	if err := a.Enlist(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Enlist(p2); err != nil {
		t.Fatal(err)
	}
	rep, err := a.Commit(context.Background())
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if len(rep.PhaseTwoErrors) != 0 {
		t.Fatalf("phase-2 errors: %v", rep.PhaseTwoErrors)
	}
	for _, p := range []*fakeParticipant{p1, p2} {
		pr, cm, ab := counts(p)
		if pr != 1 || cm != 1 || ab != 0 {
			t.Fatalf("%s lifecycle = %d/%d/%d, want 1/1/0", p.name, pr, cm, ab)
		}
	}
	if !rep.OutcomeLogged || !rep.OutcomePruned {
		t.Fatalf("report = %+v, want outcome logged then pruned (all voters acked)", rep)
	}
	if m.Log().Lookup(a.ID()) != store.OutcomeUnknown {
		t.Fatal("fully-acked commit record must be garbage-collected")
	}
	if a.Status() != StatusCommitted {
		t.Fatalf("status = %v", a.Status())
	}
}

func TestPrepareFailureAbortsAll(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	good := &fakeParticipant{name: "good"}
	bad := &fakeParticipant{name: "bad", failPrepare: true}
	_ = a.Enlist(good)
	_ = a.Enlist(bad)
	_, err := a.Commit(context.Background())
	if !errors.Is(err, ErrPrepareFailed) {
		t.Fatalf("err = %v, want ErrPrepareFailed", err)
	}
	if a.Status() != StatusAborted {
		t.Fatalf("status = %v", a.Status())
	}
	_, gc, ga := counts(good)
	if gc != 0 || ga != 1 {
		t.Fatalf("good commits=%d aborts=%d, want 0/1", gc, ga)
	}
	_, _, ba := counts(bad)
	if ba != 1 {
		t.Fatalf("bad aborts=%d, want 1", ba)
	}
	// Every participant acknowledged its rollback, so the abort record is
	// pruned right away — presumed abort answers any later query the same.
	if m.Log().Lookup(a.ID()) != store.OutcomeUnknown {
		t.Fatal("fully-acked abort record must be garbage-collected")
	}
}

func TestReadOnlyCommitSkipsTwoPhase(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	resolved := false
	a.OnResolve(func(committed bool) { resolved = committed })
	if _, err := a.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !resolved {
		t.Fatal("resolve hook not fired with commit=true")
	}
	// Read-only actions leave no record (presumed abort makes this safe).
	if m.Log().Lookup(a.ID()) != store.OutcomeUnknown {
		t.Fatal("read-only commit should not write a record")
	}
}

func TestReadOnlyVoterReleasedAfterPhaseOne(t *testing.T) {
	// §4.1.2 read optimisation: a participant that votes read-only is
	// excluded from phase two; with every participant read-only the
	// outcome-log write is skipped too — zero phase-two calls, zero log
	// records.
	m := NewManager("client", nil)
	a := m.BeginTop()
	p1 := &fakeParticipant{name: "r1", readOnly: true}
	p2 := &fakeParticipant{name: "r2", readOnly: true}
	_ = a.Enlist(p1)
	_ = a.Enlist(p2)
	rep, err := a.Commit(context.Background())
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	for _, p := range []*fakeParticipant{p1, p2} {
		pr, cm, ab := counts(p)
		if pr != 1 || cm != 0 || ab != 0 {
			t.Fatalf("%s lifecycle = %d/%d/%d, want 1/0/0 (no phase two)", p.name, pr, cm, ab)
		}
	}
	if rep.ReadOnlyVoters != 2 || rep.CommitVoters != 0 {
		t.Fatalf("votes = %d read-only / %d commit, want 2/0", rep.ReadOnlyVoters, rep.CommitVoters)
	}
	if rep.OutcomeLogged {
		t.Fatal("all-read-only commit must not write the outcome log")
	}
	if m.Log().Lookup(a.ID()) != store.OutcomeUnknown {
		t.Fatal("outcome log must stay empty for an all-read-only commit")
	}
	if a.Status() != StatusCommitted {
		t.Fatalf("status = %v", a.Status())
	}
}

func TestMixedVotesRunPhaseTwoOnCommitVotersOnly(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	ro := &fakeParticipant{name: "reader", readOnly: true}
	rw := &fakeParticipant{name: "writer"}
	_ = a.Enlist(ro)
	_ = a.Enlist(rw)
	rep, err := a.Commit(context.Background())
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if rep.ReadOnlyVoters != 1 || rep.CommitVoters != 1 || !rep.OutcomeLogged {
		t.Fatalf("report = %+v, want 1 read-only, 1 commit voter, outcome logged", rep)
	}
	if _, cm, _ := counts(ro); cm != 0 {
		t.Fatal("read-only voter must not see phase two")
	}
	if _, cm, _ := counts(rw); cm != 1 {
		t.Fatal("commit voter must see phase two")
	}
	if !rep.OutcomePruned || m.Log().Lookup(a.ID()) != store.OutcomeUnknown {
		t.Fatalf("report = %+v, lookup = %v; the record must be written for phase two and pruned once the commit voter acked",
			rep, m.Log().Lookup(a.ID()))
	}
}

// onePhaseParticipant counts combined rounds and can refuse eligibility
// or fail outright.
type onePhaseParticipant struct {
	fakeParticipant
	ineligible   bool
	failCombined bool
	combined     int
}

func (p *onePhaseParticipant) CommitOnePhase(_ context.Context, tx string) (Vote, error) {
	if p.ineligible {
		return 0, ErrOnePhaseIneligible
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.combined++
	if p.failCombined {
		return 0, errors.New("combined round failed")
	}
	if p.readOnly {
		return VoteReadOnly, nil
	}
	return VoteCommit, nil
}

func TestSingleParticipantCommitsOnePhase(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	p := &onePhaseParticipant{fakeParticipant: fakeParticipant{name: "solo"}}
	_ = a.Enlist(p)
	rep, err := a.Commit(context.Background())
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if !rep.OnePhase || rep.CommitVoters != 1 || rep.OutcomeLogged {
		t.Fatalf("report = %+v, want one-phase commit with no log write", rep)
	}
	pr, cm, _ := counts(&p.fakeParticipant)
	if pr != 0 || cm != 0 || p.combined != 1 {
		t.Fatalf("lifecycle prepare/commit/combined = %d/%d/%d, want 0/0/1", pr, cm, p.combined)
	}
	if m.Log().Lookup(a.ID()) != store.OutcomeUnknown {
		t.Fatal("one-phase commit must not write the outcome log")
	}
}

func TestOnePhaseIneligibleFallsBackToTwoPhase(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	p := &onePhaseParticipant{fakeParticipant: fakeParticipant{name: "solo"}, ineligible: true}
	_ = a.Enlist(p)
	rep, err := a.Commit(context.Background())
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if rep.OnePhase {
		t.Fatal("ineligible one-phase must fall back to 2PC")
	}
	pr, cm, _ := counts(&p.fakeParticipant)
	if pr != 1 || cm != 1 {
		t.Fatalf("fallback lifecycle = %d/%d, want full 2PC 1/1", pr, cm)
	}
	if !rep.OutcomeLogged || !rep.OutcomePruned {
		t.Fatalf("report = %+v, want fallback 2PC to log the outcome and prune it after the ack", rep)
	}
}

func TestOnePhaseFailureAbortsAction(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	p := &onePhaseParticipant{fakeParticipant: fakeParticipant{name: "solo"}, failCombined: true}
	_ = a.Enlist(p)
	_, err := a.Commit(context.Background())
	if !errors.Is(err, ErrPrepareFailed) {
		t.Fatalf("err = %v, want ErrPrepareFailed", err)
	}
	if a.Status() != StatusAborted {
		t.Fatalf("status = %v", a.Status())
	}
	if _, _, ab := counts(&p.fakeParticipant); ab != 1 {
		t.Fatalf("aborts = %d, want 1 (roll-back after failed combined round)", ab)
	}
}

func TestNestedCommitTransfersToParent(t *testing.T) {
	m := NewManager("client", nil)
	top := m.BeginTop()
	child, err := m.Begin(top)
	if err != nil {
		t.Fatal(err)
	}
	p := &fakeParticipant{name: "s"}
	_ = child.Enlist(p)
	merged := false
	child.OnMerge(func(parent *Action) {
		if parent != top {
			t.Errorf("merge parent = %s", parent.ID())
		}
		merged = true
	})
	if _, err := child.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !merged {
		t.Fatal("merge hook not fired")
	}
	// The participant has not prepared yet.
	pr, _, _ := counts(p)
	if pr != 0 {
		t.Fatal("nested commit must not run 2PC")
	}
	// Top-level commit drives it, keyed by the top-level ID.
	if _, err := top.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.prepares) != 1 || p.prepares[0] != top.ID() {
		t.Fatalf("prepares = %v, want [%s]", p.prepares, top.ID())
	}
}

func TestNestedAbortDoesNotTouchParent(t *testing.T) {
	m := NewManager("client", nil)
	top := m.BeginTop()
	child, _ := m.Begin(top)
	p := &fakeParticipant{name: "s"}
	_ = child.Enlist(p)
	resolvedFalse := false
	child.OnResolve(func(c bool) { resolvedFalse = !c })
	if err := child.Abort(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !resolvedFalse {
		t.Fatal("child resolve(false) not fired")
	}
	_, _, ab := counts(p)
	if ab != 1 {
		t.Fatal("child participant not aborted")
	}
	// Parent can still commit with no participants.
	if _, err := top.Commit(context.Background()); err != nil {
		t.Fatalf("parent commit after child abort: %v", err)
	}
}

func TestCommitWithRunningChildrenRefused(t *testing.T) {
	m := NewManager("client", nil)
	top := m.BeginTop()
	if _, err := m.Begin(top); err != nil {
		t.Fatal(err)
	}
	if _, err := top.Commit(context.Background()); !errors.Is(err, ErrChildrenActive) {
		t.Fatalf("err = %v, want ErrChildrenActive", err)
	}
}

func TestDoubleEndRefused(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	if _, err := a.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(context.Background()); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("second commit: %v", err)
	}
	if err := a.Abort(context.Background()); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestBeginUnderEndedParentRefused(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	_ = a.Abort(context.Background())
	if _, err := m.Begin(a); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("err = %v", err)
	}
}

func TestEnlistAfterEndRefused(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	_ = a.Abort(context.Background())
	if err := a.Enlist(&fakeParticipant{name: "x"}); !errors.Is(err, ErrNotRunning) {
		t.Fatalf("err = %v", err)
	}
}

func TestNestedTopLevelActionIndependent(t *testing.T) {
	// Figure 8: a top-level action begun inside another commits even if
	// the enclosing action later aborts.
	m := NewManager("client", nil)
	outer := m.BeginTop()
	inner := m.BeginTop() // nested top-level: structurally independent
	p := &fakeParticipant{name: "db"}
	_ = inner.Enlist(p)
	if _, err := inner.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := outer.Abort(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, cm, ab := counts(p)
	if cm != 1 || ab != 0 {
		t.Fatalf("inner effects disturbed by outer abort: commits=%d aborts=%d", cm, ab)
	}
	if m.Log().Lookup(inner.ID()) == store.OutcomeAborted {
		t.Fatal("inner commit must not be recorded as aborted by the outer abort")
	}
}

func TestAncestryMatchesIDScheme(t *testing.T) {
	m := NewManager("client", nil)
	top := m.BeginTop()
	c1, _ := m.Begin(top)
	c2, _ := m.Begin(c1)
	other := m.BeginTop()
	if !Ancestry.IsAncestorOf(top.Owner(), c1.Owner()) {
		t.Fatal("top should be ancestor of child")
	}
	if !Ancestry.IsAncestorOf(top.Owner(), c2.Owner()) {
		t.Fatal("top should be ancestor of grandchild")
	}
	if !Ancestry.IsAncestorOf(c1.Owner(), c2.Owner()) {
		t.Fatal("child should be ancestor of grandchild")
	}
	if Ancestry.IsAncestorOf(c2.Owner(), c1.Owner()) {
		t.Fatal("descendant is not an ancestor")
	}
	if Ancestry.IsAncestorOf(top.Owner(), other.Owner()) {
		t.Fatal("unrelated tops are not ancestors")
	}
	if Ancestry.IsAncestorOf(top.Owner(), top.Owner()) {
		t.Fatal("self is not a proper ancestor")
	}
}

func TestTrackLocksLifecycle(t *testing.T) {
	m := NewManager("client", nil)
	lm := lockmgr.New(Ancestry)
	ctx := context.Background()

	// Nested commit inherits locks to the parent.
	top := m.BeginTop()
	child, _ := m.Begin(top)
	if err := lm.Acquire(ctx, child.Owner(), "entry", lockmgr.Write); err != nil {
		t.Fatal(err)
	}
	TrackLocks(child, lm)
	TrackLocks(child, lm) // idempotent
	if _, err := child.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if !lm.Holds(top.Owner(), "entry", lockmgr.Write) {
		t.Fatal("lock not inherited by parent")
	}
	// Top-level commit releases.
	if _, err := top.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := lm.TryAcquire("stranger", "entry", lockmgr.Write); err != nil {
		t.Fatalf("lock not released at top commit: %v", err)
	}

	// Abort releases immediately.
	a2 := m.BeginTop()
	lm.ReleaseAll("stranger")
	if err := lm.Acquire(ctx, a2.Owner(), "entry", lockmgr.Write); err != nil {
		t.Fatal(err)
	}
	TrackLocks(a2, lm)
	_ = a2.Abort(ctx)
	if err := lm.TryAcquire("stranger2", "entry", lockmgr.Write); err != nil {
		t.Fatalf("lock not released at abort: %v", err)
	}
}

func TestStoreParticipantAgainstRealStore(t *testing.T) {
	net := transport.NewMem(transport.MemOptions{}, nil)
	srv := rpc.NewServer()
	st := store.New("beta")
	store.RegisterService(srv, st)
	net.Register("beta", srv.Handler())

	gen := uid.NewGenerator("obj", 1)
	id := gen.New()
	st.Put(id, []byte("v0"), 1)

	m := NewManager("client", nil)
	a := m.BeginTop()
	part := &StoreParticipant{
		Label:  "beta",
		Remote: store.RemoteStore{Client: rpc.Client{Net: net, From: "client"}, Node: "beta"},
		Writes: func() []store.Write {
			return []store.Write{{UID: id, Data: []byte("v1"), Seq: 2}}
		},
	}
	_ = a.Enlist(part)
	if _, err := a.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	v, err := st.Read(id)
	if err != nil || string(v.Data) != "v1" || v.Seq != 2 {
		t.Fatalf("store after commit: %+v err=%v", v, err)
	}
}

func TestCrashBeforePhaseTwoRecoversViaLog(t *testing.T) {
	// The classic 2PC recovery flow: participant prepares, coordinator
	// records commit, participant "crashes" before phase 2 (we simply do
	// not deliver the Commit), then recovery applies it from the log.
	// A second commit-voting participant keeps the action off the
	// single-participant one-phase fast path.
	net := transport.NewMem(transport.MemOptions{}, nil)
	srv := rpc.NewServer()
	st := store.New("beta")
	store.RegisterService(srv, st)
	net.Register("beta", srv.Handler())

	gen := uid.NewGenerator("obj", 1)
	id := gen.New()
	st.Put(id, []byte("v0"), 1)

	m := NewManager("client", nil)
	RegisterLogService(srv, m.Log())
	a := m.BeginTop()
	part := &StoreParticipant{
		Label:  "beta",
		Remote: store.RemoteStore{Client: rpc.Client{Net: net, From: "client"}, Node: "beta"},
		Writes: func() []store.Write {
			return []store.Write{{UID: id, Data: []byte("v1"), Seq: 2}}
		},
	}
	_ = a.Enlist(part)
	_ = a.Enlist(&fakeParticipant{name: "other"})
	// Drop the phase-2 Commit request: store keeps its intention.
	net.Faults().DropRequests(1, func(req transport.Request) bool {
		return req.Service == store.ServiceName && req.Method == store.MethodCommit
	})
	rep, err := a.Commit(context.Background())
	if err != nil {
		t.Fatalf("commit: %v", err)
	}
	if len(rep.PhaseTwoErrors) != 1 {
		t.Fatalf("expected one phase-2 error, got %v", rep.PhaseTwoErrors)
	}
	// Intention still pending, state unchanged.
	if v, _ := st.Read(id); string(v.Data) != "v0" {
		t.Fatal("state should be unchanged before recovery")
	}
	// Recovery consults the (remote) log and applies.
	rlog := RemoteLog{Client: rpc.Client{Net: net, From: "beta"}, Node: "beta"}
	applied, aborted := st.Recover(rlog)
	if len(applied) != 1 || len(aborted) != 0 {
		t.Fatalf("recover applied=%v aborted=%v", applied, aborted)
	}
	if v, _ := st.Read(id); string(v.Data) != "v1" {
		t.Fatal("recovery did not apply committed intention")
	}
}

func TestChildIDsUnique(t *testing.T) {
	m := NewManager("client", nil)
	top := m.BeginTop()
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		c, err := m.Begin(top)
		if err != nil {
			t.Fatal(err)
		}
		if seen[c.ID()] {
			t.Fatalf("duplicate child id %s", c.ID())
		}
		seen[c.ID()] = true
		_ = c.Abort(context.Background())
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusRunning:   "running",
		StatusPreparing: "preparing",
		StatusCommitted: "committed",
		StatusAborted:   "aborted",
		Status(0):       "status(0)",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestConcurrentChildren(t *testing.T) {
	m := NewManager("client", nil)
	top := m.BeginTop()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := m.Begin(top)
			if err != nil {
				t.Errorf("begin: %v", err)
				return
			}
			if i%2 == 0 {
				if _, err := c.Commit(context.Background()); err != nil {
					t.Errorf("commit: %v", err)
				}
			} else if err := c.Abort(context.Background()); err != nil {
				t.Errorf("abort: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if _, err := top.Commit(context.Background()); err != nil {
		t.Fatalf("top commit after children: %v", err)
	}
}

func TestMemLogZeroValue(t *testing.T) {
	var l MemLog
	l.Record("t", store.OutcomeCommitted)
	if l.Lookup("t") != store.OutcomeCommitted {
		t.Fatal("zero-value MemLog should work")
	}
	if l.Lookup("unknown") != store.OutcomeUnknown {
		t.Fatal("unknown tx should be OutcomeUnknown")
	}
}

func ExampleManager_nested() {
	m := NewManager("demo", nil)
	top := m.BeginTop()
	child, _ := m.Begin(top)
	fmt.Println(Ancestry.IsAncestorOf(top.Owner(), child.Owner()))
	_, _ = child.Commit(context.Background())
	_, _ = top.Commit(context.Background())
	fmt.Println(top.Status())
	// Output:
	// true
	// committed
}

// rendezvousParticipant blocks in Prepare until every sibling has also
// entered Prepare — it can only ever succeed if phase one runs the
// participants concurrently.
type rendezvousParticipant struct {
	name    string
	arrive  chan struct{}
	release chan struct{}
}

func (p *rendezvousParticipant) Name() string { return p.name }

func (p *rendezvousParticipant) Prepare(ctx context.Context, tx string) (Vote, error) {
	p.arrive <- struct{}{}
	select {
	case <-p.release:
		return VoteCommit, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	case <-time.After(5 * time.Second):
		return 0, errors.New("prepare never released: phase one is not concurrent")
	}
}

func (p *rendezvousParticipant) Commit(context.Context, string) error { return nil }
func (p *rendezvousParticipant) Abort(context.Context, string) error  { return nil }

func TestPrepareRunsParticipantsConcurrently(t *testing.T) {
	// One slow participant must not delay the others' Prepare: all three
	// participants rendezvous inside phase one. Under the old serial
	// phase one the first Prepare would block forever waiting for the
	// other two, which would never be invoked.
	const n = 3
	arrive := make(chan struct{}, n)
	release := make(chan struct{})
	m := NewManager("conc2pc", nil)
	act := m.BeginTop()
	for i := 0; i < n; i++ {
		if err := act.Enlist(&rendezvousParticipant{
			name: fmt.Sprintf("p%d", i), arrive: arrive, release: release,
		}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := act.Commit(context.Background())
		done <- err
	}()
	for i := 0; i < n; i++ {
		select {
		case <-arrive:
		case <-time.After(2 * time.Second):
			t.Fatalf("only %d of %d participants entered Prepare concurrently", i, n)
		}
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("commit: %v", err)
	}
	if act.Status() != StatusCommitted {
		t.Fatalf("status = %v", act.Status())
	}
}

func TestPrepareFirstFailureCancelsInFlightPrepares(t *testing.T) {
	// One participant refuses while another is still preparing: the
	// cancellation must release the in-flight Prepare (via its context)
	// and the action must abort everyone.
	arrive := make(chan struct{}, 1)
	release := make(chan struct{}) // never closed: only ctx can release
	slow := &rendezvousParticipant{name: "slow", arrive: arrive, release: release}
	bad := &fakeParticipant{name: "bad", failPrepare: true}
	m := NewManager("cancel2pc", nil)
	act := m.BeginTop()
	for _, p := range []Participant{slow, bad} {
		if err := act.Enlist(p); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := act.Commit(context.Background())
		done <- err
	}()
	<-arrive
	select {
	case err := <-done:
		if !errors.Is(err, ErrPrepareFailed) {
			t.Fatalf("commit err = %v, want ErrPrepareFailed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("commit hung: first failure did not cancel the in-flight prepare")
	}
	if act.Status() != StatusAborted {
		t.Fatalf("status = %v, want aborted", act.Status())
	}
	if _, _, aborts := counts(bad); aborts != 1 {
		t.Fatalf("failed participant aborted %d times, want 1", aborts)
	}
	// The slow participant's rollback used the live context and acked, as
	// did the failed one — so the abort record is pruned under presumed
	// abort rather than retained.
	if m.Log().Lookup(act.ID()) == store.OutcomeCommitted {
		t.Fatal("cancelled commit must never be recorded as committed")
	}
}

// stubbornParticipant fails its Commit and/or Abort calls — the phase-two
// straggler whose outstanding ack must keep the outcome record alive.
type stubbornParticipant struct {
	fakeParticipant
	failCommit bool
	failAbort  bool
}

func (p *stubbornParticipant) Commit(ctx context.Context, tx string) error {
	_ = p.fakeParticipant.Commit(ctx, tx)
	if p.failCommit {
		return errors.New("commit lost")
	}
	return nil
}

func (p *stubbornParticipant) Abort(ctx context.Context, tx string) error {
	_ = p.fakeParticipant.Abort(ctx, tx)
	if p.failAbort {
		return errors.New("abort lost")
	}
	return nil
}

// TestOutcomeLogGC: the satellite requirement in one place — records do
// not accumulate. A run of fully-acked commits and aborts leaves the
// coordinator log empty.
func TestOutcomeLogGC(t *testing.T) {
	log := NewMemLog()
	m := NewManager("gc", log)
	for i := 0; i < 5; i++ {
		a := m.BeginTop()
		_ = a.Enlist(&fakeParticipant{name: "p1"})
		_ = a.Enlist(&fakeParticipant{name: "p2"})
		rep, err := a.Commit(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OutcomeLogged || !rep.OutcomePruned {
			t.Fatalf("commit %d: report = %+v, want logged and pruned", i, rep)
		}
	}
	for i := 0; i < 5; i++ {
		a := m.BeginTop()
		_ = a.Enlist(&fakeParticipant{name: "p1"})
		if err := a.Abort(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if n := log.Len(); n != 0 {
		t.Fatalf("outcome log holds %d records after fully-acked actions, want 0", n)
	}
}

// TestOutcomeLogGCRetainsUnackedPhaseTwo: a participant whose Commit
// failed may hold an unresolved intention; its record must survive GC so
// recovery can still learn the commit.
func TestOutcomeLogGCRetainsUnackedPhaseTwo(t *testing.T) {
	log := NewMemLog()
	m := NewManager("gc", log)
	a := m.BeginTop()
	_ = a.Enlist(&fakeParticipant{name: "ok"})
	_ = a.Enlist(&stubbornParticipant{fakeParticipant: fakeParticipant{name: "gone"}, failCommit: true})
	rep, err := a.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PhaseTwoErrors) != 1 || rep.OutcomePruned {
		t.Fatalf("report = %+v, want one phase-two error and no pruning", rep)
	}
	if log.Lookup(a.ID()) != store.OutcomeCommitted {
		t.Fatal("commit record pruned while a participant never acked phase two")
	}
	if log.Len() != 1 {
		t.Fatalf("log size = %d, want the retained record alone", log.Len())
	}
}

// TestOutcomeLogGCRetainsOnRequest: RetainOutcome (the hook store-level
// exclusion uses) vetoes pruning even when every Participant acked.
func TestOutcomeLogGCRetainsOnRequest(t *testing.T) {
	log := NewMemLog()
	m := NewManager("gc", log)
	a := m.BeginTop()
	p := &fakeParticipant{name: "p"}
	_ = a.Enlist(p)
	a.RetainOutcome()
	rep, err := a.Commit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.OutcomePruned {
		t.Fatalf("report = %+v: RetainOutcome must suppress pruning", rep)
	}
	if log.Lookup(a.ID()) != store.OutcomeCommitted {
		t.Fatal("retained commit record missing")
	}
}

// TestOutcomeLogGCRetainsUnackedAbort: an abort whose rollback fan-out
// was not fully acknowledged keeps its record as a breadcrumb.
func TestOutcomeLogGCRetainsUnackedAbort(t *testing.T) {
	log := NewMemLog()
	m := NewManager("gc", log)
	a := m.BeginTop()
	_ = a.Enlist(&stubbornParticipant{fakeParticipant: fakeParticipant{name: "gone"}, failAbort: true})
	if err := a.Abort(context.Background()); err != nil {
		t.Fatal(err)
	}
	if log.Lookup(a.ID()) != store.OutcomeAborted {
		t.Fatal("abort record pruned while a participant never acked the rollback")
	}
}

// failingLog refuses Record — the disk-full coordinator.
type failingLog struct{ MemLog }

func (l *failingLog) Record(string, store.Outcome) error {
	return errors.New("log device full")
}

// TestCommitPointWriteFailureAborts: if the commit record cannot be made
// durable there IS no commit — the action must abort and roll its
// prepared participants back, reporting ErrOutcomeLog.
func TestCommitPointWriteFailureAborts(t *testing.T) {
	m := NewManager("sick", &failingLog{})
	a := m.BeginTop()
	p := &fakeParticipant{name: "p"}
	_ = a.Enlist(p)
	_, err := a.Commit(context.Background())
	if !errors.Is(err, ErrOutcomeLog) {
		t.Fatalf("err = %v, want ErrOutcomeLog", err)
	}
	if a.Status() != StatusAborted {
		t.Fatalf("status = %v, want aborted", a.Status())
	}
	if _, cm, ab := counts(p); cm != 0 || ab != 1 {
		t.Fatalf("participant commits/aborts = %d/%d, want 0/1 (rolled back)", cm, ab)
	}
}

// TestBackendLogDurability: the default coordinator log runs over a
// storage backend; with a disk backend commit records survive a close
// and replay on reopen.
func TestBackendLogDurability(t *testing.T) {
	dir := t.TempDir()
	b, err := storage.OpenDisk(dir, storage.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	log := NewBackendLog(b)
	if err := log.Record("tx-1", store.OutcomeCommitted); err != nil {
		t.Fatal(err)
	}
	if err := log.Record("tx-2", store.OutcomeAborted); err != nil {
		t.Fatal(err)
	}
	if err := log.Forget("tx-2"); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// While closed, the log answers "unavailable" — never "no record".
	if got := log.Lookup("tx-1"); got != store.OutcomeUnavailable {
		t.Fatalf("closed-backend lookup = %v, want unavailable", got)
	}
	b2, err := storage.OpenDisk(dir, storage.DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	log2 := NewBackendLog(b2)
	if got := log2.Lookup("tx-1"); got != store.OutcomeCommitted {
		t.Fatalf("replayed tx-1 = %v, want committed", got)
	}
	if got := log2.Lookup("tx-2"); got != store.OutcomeUnknown {
		t.Fatalf("pruned tx-2 = %v, want unknown after replay", got)
	}
}

// gatedParticipant blocks in Prepare until released, so a test can probe
// coordinator state mid-phase-one.
type gatedParticipant struct {
	fakeParticipant
	entered chan struct{}
	release chan struct{}
}

func (p *gatedParticipant) Prepare(ctx context.Context, tx string) (Vote, error) {
	p.entered <- struct{}{}
	<-p.release
	return p.fakeParticipant.Prepare(ctx, tx)
}

// TestLookupDuringCommitIsUnavailable pins the decision-point guard: a
// recovery lookup racing a LIVE commit — after a participant may hold a
// prepared intention, before the record is written — must answer
// "unavailable" (keep the intention pending), never "no record". Reading
// the empty log as presumed abort in that window rolls back a commit
// vote whose transaction then commits: the chain fork chaos seed 8
// found.
func TestLookupDuringCommitIsUnavailable(t *testing.T) {
	m := NewManager("client", nil)
	a := m.BeginTop()
	p := &gatedParticipant{entered: make(chan struct{}), release: make(chan struct{})}
	_ = a.Enlist(p)
	done := make(chan error, 1)
	go func() {
		_, err := a.Commit(context.Background())
		done <- err
	}()
	<-p.entered
	if got := m.Lookup(a.ID()); got != store.OutcomeUnavailable {
		t.Fatalf("mid-commit lookup = %v, want unavailable", got)
	}
	// The raw log still has no record — the guard lives in the manager.
	if got := m.Log().Lookup(a.ID()); got != store.OutcomeUnknown {
		t.Fatalf("raw log mid-commit = %v, want unknown", got)
	}
	close(p.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Window closed: the (pruned, fully-acked) record answers unknown —
	// presumed abort is safe again because the decision point has passed.
	if got := m.Lookup(a.ID()); got == store.OutcomeUnavailable {
		t.Fatal("lookup still unavailable after commit finished")
	}
}
