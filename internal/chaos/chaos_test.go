package chaos

import (
	"context"
	"flag"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/object"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/transport"
)

// seedFlag replays one specific schedule:
//
//	go test ./internal/chaos -run TestChaos -seed=N -v
var seedFlag = flag.Int64("seed", 0, "run only this chaos seed (0 = the pinned seed sets)")

// backendFlag forces every chaos run onto a stable-storage backend:
//
//	go test ./internal/chaos -run TestChaos -backend=disk
//
// "disk" gives each run a hermetic t.TempDir data directory; the
// default keeps each test's own configuration (in-memory unless the
// test pins DataDir itself).
var backendFlag = flag.String("backend", "", `stable-storage backend for all runs ("disk" or "" = per-test default)`)

// transportFlag forces every chaos run onto a message carrier:
//
//	go test ./internal/chaos -run TestChaos -transport=mux
//
// "mux" runs the schedules over the real-socket multiplexed TCP
// transport (wrapped in transport.Faulty so the nemesis still fires);
// the default keeps the in-memory simulator.
var transportFlag = flag.String("transport", "", `message carrier for all runs ("mux", "mem" or "" = in-memory)`)

// runSeed executes one schedule and fails the test with a full replay
// recipe if any invariant broke.
func runSeed(t *testing.T, cfg Config) *Report {
	t.Helper()
	if *backendFlag == "disk" && cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if *transportFlag != "" && cfg.Transport == "" {
		cfg.Transport = *transportFlag
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("seed %d: harness: %v", cfg.Seed, err)
	}
	t.Logf("seed %d: committed=%d aborted=%d uncertain=%d in-doubt-resolved=%d repairs=%d",
		rep.Seed, rep.Committed, rep.Aborted, rep.Uncertain, rep.InDoubtResolved, len(rep.Repairs))
	if len(rep.Violations) > 0 {
		t.Errorf("seed %d violated invariants:\n  %s\nschedule:\n  %s\nnotes:\n  %s\nreproduce with:\n  go test ./internal/chaos -run %s -seed=%d -v",
			cfg.Seed,
			strings.Join(rep.Violations, "\n  "),
			strings.Join(rep.Schedule, "\n  "),
			strings.Join(rep.Notes, "\n  "),
			t.Name(), cfg.Seed)
	}
	return rep
}

// seeds returns the pinned seed set for a test, or just the -seed
// override when one was given.
func seeds(base int64, n int) []int64 {
	if *seedFlag != 0 {
		return []int64{*seedFlag}
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// TestChaosCounter: randomized schedules against concurrent counter
// increments — value conservation, view consistency, outcome convergence.
func TestChaosCounter(t *testing.T) {
	for _, seed := range seeds(1, 8) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSeed(t, Config{Seed: seed, Workload: WorkloadCounter})
		})
	}
}

// TestChaosBank: randomized schedules against concurrent two-account
// transfers — exact conservation of the total (failure atomicity across
// participants), plus all the shared invariants.
func TestChaosBank(t *testing.T) {
	for _, seed := range seeds(101, 8) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSeed(t, Config{Seed: seed, Workload: WorkloadBank, Scheme: core.SchemeStandard})
		})
	}
}

// TestChaosCrashDuringCommit: schedules biased so half the events kill a
// store between its commit vote and the outcome, covering both the
// commit-side and abort-side in-doubt shapes. The run must resolve every
// injected in-doubt participant to the logged outcome (or presumed
// abort) — checked by the no-unresolved-intentions and conservation
// invariants.
func TestChaosCrashDuringCommit(t *testing.T) {
	for _, seed := range seeds(201, 6) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep := runSeed(t, Config{Seed: seed, Workload: WorkloadCounter, BiasInDoubt: true})
			injected := 0
			for _, e := range rep.Schedule {
				if strings.Contains(e, "crash-during-commit") {
					injected++
				}
			}
			if injected == 0 {
				t.Errorf("seed %d: biased schedule applied no crash-during-commit event:\n  %s",
					seed, strings.Join(rep.Schedule, "\n  "))
			}
		})
	}
}

// TestChaosDiskRecovery: pinned disk-backed seeds biased toward
// crash-during-commit, so recovery repeatedly reloads committed versions
// from WAL+snapshot, replays prepared intentions and resolves them
// through the in-doubt protocol — with seeded torn-tail corruption and
// kill-at-byte injections on top. Crashes here drop the whole process
// image; only the per-node directories survive.
func TestChaosDiskRecovery(t *testing.T) {
	for _, seed := range seeds(301, 4) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep := runSeed(t, Config{Seed: seed, Workload: WorkloadCounter, BiasInDoubt: true, DataDir: t.TempDir()})
			injected := 0
			for _, e := range rep.Schedule {
				if strings.Contains(e, "crash-during-commit") {
					injected++
				}
			}
			if injected == 0 {
				t.Errorf("seed %d: biased disk schedule applied no crash-during-commit event:\n  %s",
					seed, strings.Join(rep.Schedule, "\n  "))
			}
		})
	}
}

// TestChaosDiskBank: exact conservation across real crash-restart
// cycles — transfers stay failure-atomic when the participants' stable
// state lives on disk.
func TestChaosDiskBank(t *testing.T) {
	for _, seed := range seeds(401, 3) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSeed(t, Config{Seed: seed, Workload: WorkloadBank, Scheme: core.SchemeStandard, DataDir: t.TempDir()})
		})
	}
}

// TestChaosShardedCounter: pinned seeds against a three-shard placement
// deployment. Clients route each increment through the placement binder,
// so actions land on whichever shard owns the object, and the nemesis
// crashes/partitions nodes across all three groups. Value conservation
// and view consistency must hold per shard exactly as they do for one.
func TestChaosShardedCounter(t *testing.T) {
	for _, seed := range seeds(501, 4) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSeed(t, Config{Seed: seed, Workload: WorkloadCounter, Shards: 3})
		})
	}
}

// TestChaosShardedBank: transfers whose two accounts may live on
// different shards — the coordinator enlists participants from multiple
// groups, so conservation of the total is exactly the cross-shard
// failure-atomicity guarantee under faults.
func TestChaosShardedBank(t *testing.T) {
	for _, seed := range seeds(601, 4) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runSeed(t, Config{Seed: seed, Workload: WorkloadBank, Scheme: core.SchemeStandard, Shards: 3})
		})
	}
}

// TestChaosLeasedCounter: randomized schedules against a read-heavy
// leased counter — lease-served reads race increments, crashes,
// partitions and restarts, and I7 (lease-read freshness) must hold on
// every one: a read served from a lease cache may never observe a value
// older than the newest committed value some client had already seen
// acknowledged when the read began.
func TestChaosLeasedCounter(t *testing.T) {
	leased := 0
	for _, seed := range seeds(701, 5) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep := runSeed(t, Config{Seed: seed, Workload: WorkloadLeasedCounter})
			leased += rep.LeasedReads
		})
	}
	// Per-seed counts vary with the schedule, but a pinned set that never
	// serves a single read from cache is exercising nothing.
	if *seedFlag == 0 && leased == 0 {
		t.Error("no lease-served read across the pinned seed set")
	}
}

// TestLeaseFenceServerCrashMidInvalidation pins the phase-two half of I7
// deterministically: the lease-granting primary crashes at the instant
// phase two reaches it, so its commit-time fence never runs and no
// server is left that even knows the holder exists. The commit is still
// durable — the client repairs the stores directly — but its
// acknowledgement must first wait out the lease clock, so that by the
// time any client sees the commit as definite, every lease the dead
// primary could have granted has expired. The holder's next read must
// therefore observe the committed value through the surviving server,
// never its cached pre-commit snapshot.
func TestLeaseFenceServerCrashMidInvalidation(t *testing.T) {
	const ttl = 100 * time.Millisecond
	// Three stores make one-phase commit ineligible, forcing the true
	// 2PC shape whose phase-two failure is the hazard under test.
	w, err := harness.New(harness.Options{Servers: 2, Stores: 3, Clients: 2, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	lc2 := w.LeaseLocal("c2", 0)
	b2 := w.Binder("c2", core.SchemeStandard, replica.SingleCopyPassive, 1)

	// Objects are pre-seeded at seq 1, so the first read harvests a
	// grant without any commit (and without the first-commit grace).
	if res := w.RunLeasedReadAction(ctx, b2, lc2, 0); !res.Committed || res.Leased {
		t.Fatalf("harvest read: committed=%v leased=%v err=%v", res.Committed, res.Leased, res.Err)
	}
	if res := w.RunLeasedReadAction(ctx, b2, lc2, 0); !res.Leased || string(res.Result) != "0" {
		t.Fatalf("leased read = %q (leased=%v), want cached 0", res.Result, res.Leased)
	}

	// Crash the primary the moment the phase-two Commit reaches it.
	sv1 := w.Cluster.Node("sv1")
	w.Cluster.Faults().OnRequest(1,
		transport.ToMethod("sv1", object.ServiceName, object.MethodCommit),
		func(transport.Request) { sv1.Crash() })
	b1 := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 1)
	res := w.RunCounterAction(ctx, b1, 0, 1)
	if !res.Committed {
		t.Fatalf("increment did not commit despite store repair: %v", res.Err)
	}

	// The ack above was delayed past every grant the primary could have
	// issued, so the holder's lease is expired NOW — the read takes the
	// server path (sv2, activated from the repaired stores) and sees 1.
	got := w.RunLeasedReadAction(ctx, b2, lc2, 0)
	if !got.Committed {
		t.Fatalf("post-crash read failed: %v", got.Err)
	}
	if got.Leased || string(got.Result) != "1" {
		t.Fatalf("read after unfenced commit = %q (leased=%v), want 1 via the server — stale lease outlived the commit ack",
			got.Result, got.Leased)
	}
}

// TestLeaseFencePartitionedHolderWaitout pins the other degraded fence
// shape: the holder is partitioned from the server, so the commit's
// invalidation multicast cannot be delivered and the server must wait
// the lease out before completing commit processing. The writer's ack is
// delayed past the lease's expiry, and the healed holder's next read
// observes the committed value.
func TestLeaseFencePartitionedHolderWaitout(t *testing.T) {
	const ttl = 100 * time.Millisecond
	w, err := harness.New(harness.Options{Servers: 1, Stores: 1, Clients: 2, LeaseTTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	lc2 := w.LeaseLocal("c2", 0)
	b2 := w.Binder("c2", core.SchemeStandard, replica.SingleCopyPassive, 0)
	if res := w.RunLeasedReadAction(ctx, b2, lc2, 0); !res.Committed || res.Leased {
		t.Fatalf("harvest read: committed=%v leased=%v err=%v", res.Committed, res.Leased, res.Err)
	}
	if res := w.RunLeasedReadAction(ctx, b2, lc2, 0); !res.Leased {
		t.Fatal("second read not lease-served")
	}

	waitsBefore := w.Metrics.Counter("lease.waitouts").Value()
	w.Cluster.Faults().Partition("sv1", "c2")
	b1 := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 0)
	res := w.RunCounterAction(ctx, b1, 0, 1)
	if !res.Committed {
		t.Fatalf("increment did not commit: %v", res.Err)
	}
	if w.Metrics.Counter("lease.waitouts").Value() == waitsBefore {
		t.Fatal("commit with an unreachable holder recorded no lease waitout")
	}

	w.Cluster.Faults().Heal("sv1", "c2")
	got := w.RunLeasedReadAction(ctx, b2, lc2, 0)
	if !got.Committed {
		t.Fatalf("post-heal read failed: %v", got.Err)
	}
	if got.Leased || string(got.Result) != "1" {
		t.Fatalf("read after waited-out commit = %q (leased=%v), want 1 via the server",
			got.Result, got.Leased)
	}
}

// TestScheduleIsSeedDeterministic: the fault plan is a pure function of
// the seed — the property every "reproduce with -seed=N" claim rests on.
func TestScheduleIsSeedDeterministic(t *testing.T) {
	cfg := Config{Seed: 42}
	a := GenerateSchedule(42, cfg)
	b := GenerateSchedule(42, cfg)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("schedule lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("same seed diverged at event %d: %s vs %s", i, a[i], b[i])
		}
	}
	c := GenerateSchedule(43, cfg)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i].String() != c[i].String() {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	// Thresholds are non-decreasing (events apply in order) and every
	// schedule includes the crash-during-commit shape.
	haveInDoubt := false
	for i := range a {
		if i > 0 && a[i].After < a[i-1].After {
			t.Fatalf("schedule not ordered by threshold: %s before %s", a[i-1], a[i])
		}
		if a[i].Kind == KindCrashDuringCommit {
			haveInDoubt = true
		}
	}
	if !haveInDoubt {
		t.Fatal("schedule omitted the crash-during-commit shape")
	}
}

// TestInDoubtParticipantConvergesDeterministic pins the two
// crash-during-commit shapes without randomness, asserting per-transaction
// convergence directly (the randomized runs assert it in aggregate).
func TestInDoubtParticipantConvergesDeterministic(t *testing.T) {
	for _, abortSide := range []bool{false, true} {
		name := "commit-side"
		if abortSide {
			name = "abort-side"
		}
		t.Run(name, func(t *testing.T) {
			w := newInDoubtWorld(t, abortSide, "")
			st2 := w.Cluster.Node("st2")
			if pend := st2.Store().PendingTxs(); len(pend) != 1 {
				t.Fatalf("pending = %v, want exactly one in-doubt tx", pend)
			}
			tx := st2.Store().PendingTxs()[0]
			logged := w.Mgrs["c1"].Log().Lookup(tx)
			st2.Recover(nil)
			if pend := st2.Store().PendingTxs(); len(pend) != 0 {
				t.Fatalf("in-doubt tx unresolved after restart: %v", pend)
			}
			v, err := st2.Store().Read(w.Objects[0])
			if err != nil {
				t.Fatal(err)
			}
			if abortSide {
				if logged == store.OutcomeCommitted {
					t.Fatal("abort-side injection unexpectedly logged committed")
				}
				if string(v.Data) != "0" || v.Seq != 1 {
					t.Fatalf("abort-side: %q/%d, want rolled back 0/1", v.Data, v.Seq)
				}
			} else {
				if logged != store.OutcomeCommitted {
					t.Fatalf("commit-side injection logged %v, want committed", logged)
				}
				if string(v.Data) != "1" || v.Seq != 2 {
					t.Fatalf("commit-side: %q/%d, want applied 1/2", v.Data, v.Seq)
				}
			}
		})
	}
}

// TestInDoubtDiskParticipantConverges is the disk-backed twin of the
// deterministic crash-during-commit shapes: st2's crash drops its whole
// process image, so the prepared intention and the committed base state
// must come back from the WAL before the in-doubt protocol can resolve
// them against the coordinator's log.
func TestInDoubtDiskParticipantConverges(t *testing.T) {
	for _, abortSide := range []bool{false, true} {
		name := "commit-side"
		if abortSide {
			name = "abort-side"
		}
		t.Run(name, func(t *testing.T) {
			w := newInDoubtWorld(t, abortSide, t.TempDir())
			st2 := w.Cluster.Node("st2")
			// Crashed: no object or intention state in process memory.
			if _, ok := st2.Store().SeqOf(w.Objects[0]); ok {
				t.Fatal("crashed disk store still answers from process memory")
			}
			if pend := st2.Store().PendingTxs(); len(pend) != 0 {
				t.Fatalf("crashed disk store still holds intentions in memory: %v", pend)
			}
			// The durable image holds exactly the in-doubt intention.
			if err := st2.ReopenStable(); err != nil {
				t.Fatal(err)
			}
			if pend := st2.Store().PendingTxs(); len(pend) != 1 {
				t.Fatalf("replayed pending = %v, want exactly one in-doubt tx", pend)
			}
			st2.Recover(nil)
			if pend := st2.Store().PendingTxs(); len(pend) != 0 {
				t.Fatalf("in-doubt tx unresolved after disk restart: %v", pend)
			}
			v, err := st2.Store().Read(w.Objects[0])
			if err != nil {
				t.Fatal(err)
			}
			if abortSide && (string(v.Data) != "0" || v.Seq != 1) {
				t.Fatalf("abort-side: %q/%d, want rolled back 0/1", v.Data, v.Seq)
			}
			if !abortSide && (string(v.Data) != "1" || v.Seq != 2) {
				t.Fatalf("commit-side: %q/%d, want applied 1/2", v.Data, v.Seq)
			}
		})
	}
}

// newInDoubtWorld builds a 1-server/2-store world, injects the chosen
// crash-during-commit variant at st2, and runs one increment. A
// non-empty dataDir puts every node on disk-backed stable storage.
func newInDoubtWorld(t *testing.T, abortSide bool, dataDir string) *harness.World {
	t.Helper()
	w, err := harness.New(harness.Options{Servers: 1, Stores: 2, Clients: 1, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	st2 := w.Cluster.Node("st2")
	rule := transport.ToMethod("st2", store.ServiceName, store.MethodPrepare)
	if abortSide {
		// Lose st1's prepare too so the action cannot commit elsewhere.
		w.Cluster.Faults().DropRequests(1, transport.ToMethod("st1", store.ServiceName, store.MethodPrepare))
		w.Cluster.Faults().DropReplies(1, rule)
	}
	w.Cluster.Faults().OnReply(1, rule, func(transport.Request) { st2.Crash() })
	b := w.Binder("c1", core.SchemeStandard, replica.SingleCopyPassive, 0)
	res := w.RunCounterAction(context.Background(), b, 0, 1)
	if abortSide && res.Committed {
		t.Fatal("abort-side run must abort")
	}
	if !abortSide && !res.Committed {
		t.Fatalf("commit-side run must commit: %v", res.Err)
	}
	return w
}
