package chaos

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/object"
	"repro/internal/placement"
	"repro/internal/rpc"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
)

// checkInvariants runs after quiesce and returns every breach found. The
// checks quantify over all interleavings, so any non-empty result is a
// real protocol bug (or a broken repair path), reproducible from the
// seed's fault plan.
func (r *runner) checkInvariants() []string {
	var violations []string
	bad := func(format string, args ...any) {
		violations = append(violations, fmt.Sprintf(format, args...))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// I1 + I2: St view consistency and conservation, per object.
	total := 0
	for i, id := range r.w.Objects {
		view, err := r.w.CurrentStView(ctx, i)
		if err != nil {
			bad("obj%d: cannot read final St view: %v", i, err)
			continue
		}
		if len(view) == 0 {
			bad("obj%d: final St view is empty", i)
			continue
		}
		var (
			refVal  string
			refSeq  uint64
			haveRef bool
		)
		for _, st := range view {
			n := r.w.Cluster.Node(st)
			if n == nil || !n.Up() {
				bad("obj%d: St view member %s is down after quiesce", i, st)
				continue
			}
			v, err := n.Store().Read(id)
			if err != nil {
				bad("obj%d: St view member %s has no state: %v", i, st, err)
				continue
			}
			if !haveRef {
				refVal, refSeq, haveRef = string(v.Data), v.Seq, true
				continue
			}
			if string(v.Data) != refVal || v.Seq != refSeq {
				bad("obj%d: St view diverged: %s has %q/%d, expected %q/%d",
					i, st, v.Data, v.Seq, refVal, refSeq)
			}
		}
		if !haveRef {
			continue
		}
		val, err := strconv.Atoi(refVal)
		if err != nil {
			bad("obj%d: corrupt final state %q", i, refVal)
			continue
		}
		r.report.FinalValues["obj"+strconv.Itoa(i)] = val
		total += val

		if r.cfg.Workload == WorkloadCounter || r.cfg.Workload == WorkloadLeasedCounter {
			// No lost committed update, no phantom: the settled value
			// covers every delta a client saw commit, and exceeds that
			// only by deltas whose outcome no client could observe.
			t := r.tallies[i]
			if val < t.committed || val > t.committed+t.uncertain {
				bad("obj%d: value %d outside [committed=%d, committed+uncertain=%d] — lost or phantom update",
					i, val, t.committed, t.committed+t.uncertain)
				// Breadcrumbs for replay: the observed post-increment values
				// of every committed action on this object (a duplicated
				// value means two actions committed over the same base on
				// different store chains — split brain; a value above the
				// final one means a committed suffix was lost), plus each
				// store's final state so the diverged chain is visible.
				r.note("obj%d committed chain: %s", i, r.chainFor(i))
				r.note("obj%d non-committed ops: %s", i, r.lostFor(i))
				r.note("obj%d final St view %v; per-store states: %s", i, view, r.storeStates(id))
			}
		}
	}
	if r.cfg.Workload == WorkloadBank {
		// Conservation is exact for transfers regardless of uncertain
		// outcomes: each action moves value atomically or not at all.
		if total != 0 {
			bad("bank total = %d, want 0 — money created or destroyed", total)
		}
	}

	// I3: outcome convergence — no store may still hold a
	// prepared-but-undecided intention after the recovery sweep.
	for _, st := range r.w.Sts {
		if pend := r.w.Cluster.Node(st).Store().PendingTxs(); len(pend) > 0 {
			bad("%s: unresolved intentions after recovery: %v", st, pend)
		}
	}

	// I4: server quiescence — every surviving instance has released every
	// action (wedged ones were repaired during quiesce and reported).
	cli := r.w.Cluster.Node(r.w.Clients[0]).Client()
	for _, sv := range r.w.Svs {
		if !r.w.Cluster.Node(sv).Up() {
			bad("%s: server still down after quiesce", sv)
			continue
		}
		for i, id := range r.w.Objects {
			stat, err := object.ServerRef{Client: cli, Node: sv, UID: id}.Status(ctx)
			if err != nil {
				bad("obj%d@%s: status query failed: %v", i, sv, err)
				continue
			}
			if stat.Active && (stat.Users > 0 || stat.Prepared > 0) {
				bad("obj%d@%s: instance not quiescent (users=%d prepared=%d)", i, sv, stat.Users, stat.Prepared)
			}
		}
	}

	// I5: outcome-log agreement — what a client observed never
	// contradicts what its coordinator logged.
	r.mu.Lock()
	ops := append([]opRec(nil), r.ops...)
	r.mu.Unlock()
	for _, op := range ops {
		logged := r.lookupLog(op.client, op.tx)
		switch op.class {
		case opCommitted:
			if logged == store.OutcomeAborted {
				bad("tx %s: client observed commit, log says aborted", op.tx)
			}
		case opAborted:
			if logged == store.OutcomeCommitted {
				bad("tx %s: client observed abort, log says committed", op.tx)
			}
		}
	}

	// I7: lease-read freshness — no lease-served read may observe a value
	// older than the newest committed value some client had already seen
	// acknowledged when the read began. The floor is conservative (it
	// misses commits acknowledged concurrently with the read), so any
	// breach is a stale lease that outlived its object's commit fence.
	if r.cfg.Workload == WorkloadLeasedCounter {
		r.mu.Lock()
		reads := append([]leaseReadRec(nil), r.leaseReads...)
		r.mu.Unlock()
		for _, rec := range reads {
			if rec.leased && rec.saw < rec.floor {
				bad("obj%d: lease-served read observed %d after %d was acknowledged committed — stale lease outlived the commit fence",
					rec.obj, rec.saw, rec.floor)
			}
		}
	}

	// I6: placement replica convergence — after quiesce every placement
	// replica's directory (override records with their epochs) must equal
	// the primary's; a diverged replica would route future binds of a
	// rebalanced object to a stale shard forever.
	if len(r.w.PlaceAddrs) > 1 {
		pcli := r.w.Cluster.Node(r.w.Clients[0]).Client()
		canon := func(recs []placement.SyncRec) string {
			sort.Slice(recs, func(i, j int) bool { return recs[i].UID < recs[j].UID })
			parts := make([]string, len(recs))
			for i, rec := range recs {
				parts[i] = fmt.Sprintf("%s=%d@%d", rec.UID, rec.Shard, rec.Epoch)
			}
			return strings.Join(parts, " ")
		}
		primary := ""
		for i, addr := range r.w.PlaceAddrs {
			resp, err := rpc.Invoke[placement.StateReq, placement.StateResp](
				ctx, pcli, addr, placement.ServiceName, placement.MethodState, placement.StateReq{})
			if err != nil {
				bad("placement replica %s unreachable after quiesce: %v", addr, err)
				continue
			}
			state := canon(resp.Records)
			if i == 0 {
				primary = state
				continue
			}
			if state != primary {
				bad("placement replica %s diverged from primary: %q vs %q", addr, state, primary)
			}
		}
	}
	return violations
}

func (r *runner) lookupLog(client transport.Addr, tx string) store.Outcome {
	mgr := r.w.Mgrs[client]
	if mgr == nil {
		return store.OutcomeUnknown
	}
	return mgr.Lookup(tx)
}

// storeStates renders every store node's committed (value, seq, tx) for
// id — the per-replica view a diverged chain shows up in.
func (r *runner) storeStates(id uid.UID) string {
	var parts []string
	for _, st := range r.w.Sts {
		n := r.w.Cluster.Node(st)
		v, err := n.Store().Read(id)
		if err != nil {
			parts = append(parts, fmt.Sprintf("%s=<%v>", st, err))
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%s@%d(%s)", st, v.Data, v.Seq, v.TxID))
	}
	return strings.Join(parts, " ")
}

// chainFor renders the committed (value, tx) pairs of one counter object
// in value order — the trace a replay reads to see which committed
// update diverged or vanished.
func (r *runner) chainFor(obj int) string {
	r.mu.Lock()
	ops := append([]opRec(nil), r.ops...)
	r.mu.Unlock()
	var chain []opRec
	for _, op := range ops {
		if op.class == opCommitted && op.obj == obj && !op.read {
			chain = append(chain, op)
		}
	}
	sort.Slice(chain, func(i, j int) bool { return chain[i].val < chain[j].val })
	parts := make([]string, len(chain))
	for i, op := range chain {
		shape := ""
		if op.onePhase {
			shape = " one-phase"
		}
		parts[i] = fmt.Sprintf("%d=%s%s prepared=%v excluded=%d", op.val, op.tx, shape, op.prepared, op.excluded)
	}
	return strings.Join(parts, "\n    ")
}

// lostFor renders the NON-committed ops of one counter object with the
// value each observed (0 = the invoke never returned) and the error it
// ended on — the trace that identifies an aborted action whose increment
// nonetheless leaked into the committed history.
func (r *runner) lostFor(obj int) string {
	r.mu.Lock()
	ops := append([]opRec(nil), r.ops...)
	r.mu.Unlock()
	var parts []string
	for _, op := range ops {
		if op.class == opCommitted || op.obj != obj || op.read {
			continue
		}
		class := "aborted"
		if op.class == opUncertain {
			class = "uncertain"
		}
		parts = append(parts, fmt.Sprintf("%s %s saw=%d err=%q", op.tx, class, op.val, op.errMsg))
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, "\n    ")
}
