package chaos

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/action"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/lease"
	"repro/internal/object"
	"repro/internal/replica"
	"repro/internal/storage"
	"repro/internal/store"
	"repro/internal/transport"
)

// Workload selects what the concurrent clients do while the nemesis runs.
type Workload int

// Workloads.
const (
	// WorkloadCounter: each action increments one randomly chosen counter
	// object by one. Invariant: each counter's final value equals the
	// number of increments its clients saw commit (bounded above by the
	// outcomes a client could not observe).
	WorkloadCounter Workload = iota + 1
	// WorkloadBank: each action atomically moves an amount between two
	// randomly chosen accounts. Invariant: the total over all accounts is
	// exactly conserved — transfers are failure-atomic across their two
	// participants, so no failure pattern may create or destroy money.
	WorkloadBank
	// WorkloadLeasedCounter: counter increments mixed with leased reads
	// served from each client's tiered lease cache. Adds invariant I7: no
	// lease-served read may observe a value older than the newest
	// committed value acknowledged to any client before the read began —
	// the commit fence must kill (or wait out) every stale lease before
	// the commit is acknowledged, even when the nemesis crashes the
	// granting server mid-invalidation.
	WorkloadLeasedCounter
)

// String implements fmt.Stringer.
func (w Workload) String() string {
	switch w {
	case WorkloadCounter:
		return "counter"
	case WorkloadBank:
		return "bank"
	case WorkloadLeasedCounter:
		return "leased-counter"
	default:
		return fmt.Sprintf("workload(%d)", int(w))
	}
}

// Config sizes one chaos run. The zero value of every field is replaced
// by a sensible default (see withDefaults); Seed alone distinguishes
// schedules.
type Config struct {
	// Seed determines the fault schedule, the workload content, the
	// network jitter and the per-message fault coin flips.
	Seed int64
	// Cluster shape. With Shards > 1, Servers and Stores are per-shard
	// counts (as in harness.Options) and the namespace is partitioned
	// across that many groups behind the placement service.
	Servers, Stores, Clients, Objects int
	Shards                            int
	// ActionsPerClient is each client's action count.
	ActionsPerClient int
	// Events is the nemesis schedule length.
	Events int
	// Workload selects the client behaviour (default counter).
	Workload Workload
	// Scheme and Policy configure the binding layer.
	Scheme core.Scheme
	Policy replica.Policy
	// ActionTimeout bounds one client action (faults may stall locks and
	// binds; the timeout turns a stall into an abort).
	ActionTimeout time.Duration
	// LeaseTTL is the read-lease duration for WorkloadLeasedCounter
	// (default 80ms there; ignored by other workloads). Long enough that
	// a lease outlives the slow read path that harvested it (an enhanced
	// bind runs ~25ms of database actions), yet short enough relative to
	// ActionTimeout that the 2×TTL first-commit grace and fence waitouts
	// cannot turn every version advance into a timeout.
	LeaseTTL time.Duration
	// Jitter randomizes per-message latency to vary interleavings.
	Jitter time.Duration
	// BiasInDoubt converts half the schedule into crash-during-commit
	// injections — the dedicated in-doubt convergence configuration.
	BiasInDoubt bool
	// GrayFailures adds gray-failure injections to the schedule: a node
	// keeps accepting requests and executing them but holds every reply
	// past the callers' deadlines. The flag gates every extra rng draw,
	// so classic schedules replay bit-identically with it off.
	GrayFailures bool
	// PlacementChaos adds placement-replica crash/recover events to
	// sharded schedules (ignored with Shards <= 1), plus the
	// placement-convergence invariant check after quiesce. Gated like
	// GrayFailures to keep classic seeds stable.
	PlacementChaos bool
	// Transport selects the message carrier: "" or "mem" runs over the
	// in-memory simulator (jittered per Seed), "mux" over the real-socket
	// multiplexed TCP transport wrapped in transport.Faulty so the same
	// seeded nemesis schedules fire. Jitter is ignored on mux — the real
	// sockets bring their own scheduling nondeterminism — so only the
	// fault coin flips, not message timings, replay identically.
	Transport string
	// DataDir switches the run onto disk-backed stable storage rooted
	// here (tests pass t.TempDir() to stay hermetic): crashes drop whole
	// process images, recovery replays WAL+snapshot, and the schedule
	// gains kill-at-byte injections plus seeded torn-tail corruption at
	// restarts. Empty keeps the in-memory backend. Only DataDir's
	// emptiness influences the schedule, never its value, so replays
	// from fresh temp dirs reproduce the same fault plan.
	DataDir string
	// Disk tunes the disk engine when DataDir is set.
	Disk storage.DiskOptions
}

func (c Config) withDefaults() Config {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.Servers, 2)
	def(&c.Stores, 3)
	def(&c.Clients, 3)
	def(&c.Objects, 3)
	def(&c.Shards, 1)
	def(&c.ActionsPerClient, 15)
	def(&c.Events, 10)
	if c.Workload == 0 {
		c.Workload = WorkloadCounter
	}
	if c.Scheme == 0 {
		c.Scheme = core.SchemeIndependent
	}
	if c.Policy == 0 {
		c.Policy = replica.SingleCopyPassive
	}
	if c.ActionTimeout <= 0 {
		c.ActionTimeout = 300 * time.Millisecond
	}
	if c.Workload == WorkloadLeasedCounter && c.LeaseTTL <= 0 {
		c.LeaseTTL = 80 * time.Millisecond
	}
	if c.Jitter <= 0 {
		c.Jitter = 200 * time.Microsecond
	}
	return c
}

// Report summarises one chaos run. Violations empty means every invariant
// held; anything else is a reproducible bug (re-run the seed).
type Report struct {
	Seed int64
	// Schedule lists the nemesis events actually applied, in order.
	Schedule []string
	// Notes records non-fatal observations (e.g. an online recovery that
	// had to be retried at quiesce because the DB was partitioned).
	Notes []string
	// Committed/Aborted/Uncertain count client actions by observed
	// outcome. Uncertain actions ran out of time mid-commit: the client
	// cannot know the outcome, so conservation is checked as a bound.
	Committed, Aborted, Uncertain int
	// InDoubtResolved counts prepared-but-undecided intentions that
	// recovery resolved against coordinator outcome logs.
	InDoubtResolved int
	// LeasedReads counts committed read actions WorkloadLeasedCounter
	// served straight from a lease cache (zero RPCs).
	LeasedReads int
	// Repairs lists quiesce-time interventions (restarting wedged server
	// instances whose phase-two traffic was lost).
	Repairs []string
	// FinalValues holds each object's settled value ("obj<i>" keys).
	FinalValues map[string]int
	// Violations lists every invariant breach found after quiesce.
	Violations []string
}

type outcomeClass int

const (
	opCommitted outcomeClass = iota + 1
	opAborted
	opUncertain
)

type opRec struct {
	tx     string
	client transport.Addr
	class  outcomeClass
	// obj and val trace committed counter increments: val is the value
	// the client observed the counter at after its add — the replay
	// breadcrumb that pinpoints WHICH committed update went missing.
	obj int
	val int
	// onePhase, prepared and excluded annotate a committed op's commit
	// shape, so a forked chain's trace shows WHERE each branch lived.
	onePhase bool
	prepared []transport.Addr
	excluded int
	// errMsg captures a non-committed op's error — the breadcrumb that
	// distinguishes "aborted on bind" from "aborted after its invoke
	// already observed a value" when hunting a phantom update.
	errMsg string
	// read marks a read-only op (leased-counter workload), excluded from
	// the committed-increment chain breadcrumbs.
	read bool
}

// leaseReadRec traces one committed read of the leased-counter workload
// for I7: floor is the newest committed counter value some client had
// already seen acknowledged when the read BEGAN, saw the value the read
// returned, leased whether it was served from a lease cache.
type leaseReadRec struct {
	obj    int
	floor  int
	saw    int
	leased bool
}

type objTally struct {
	committed int // sum of deltas the clients saw commit
	uncertain int // sum of deltas with unobservable outcomes
}

type runner struct {
	cfg    Config
	w      *harness.World
	faults *transport.Faults

	progress atomic.Int64

	mu          sync.Mutex
	report      *Report
	tallies     []objTally
	ops         []opRec
	ackedMax    []int // per object: newest acknowledged committed value (I7 floor)
	leaseReads  []leaseReadRec
	partitions  map[[2]transport.Addr]bool
	everCrashed map[transport.Addr]bool
	// placementDown tracks crashed placement replicas separately from
	// everCrashed: they have no St/Sv views to rejoin — recovery is the
	// replica's own catch-up, run by its OnRecover hook.
	placementDown map[transport.Addr]bool
	// armed tracks disk backends carrying a live kill-at-byte injection,
	// for disarming (or crash-confirming) at quiesce.
	armed map[transport.Addr]*storage.Disk
	// tornRng drives the seeded torn-tail corruption injected into
	// crashed stores' WALs before they reopen.
	tornRng *rand.Rand
}

// Run executes one seeded chaos schedule and returns its report. The
// error return covers harness construction only; invariant breaches are
// reported in Report.Violations.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	opts := harness.Options{
		Servers:  cfg.Servers,
		Stores:   cfg.Stores,
		Clients:  cfg.Clients,
		Objects:  cfg.Objects,
		Shards:   cfg.Shards,
		Net:      transport.MemOptions{Jitter: cfg.Jitter, Seed: cfg.Seed},
		DataDir:  cfg.DataDir,
		Disk:     cfg.Disk,
		LeaseTTL: cfg.LeaseTTL,
	}
	var muxNet *transport.TCPMux
	switch cfg.Transport {
	case "", "mem":
	case "mux":
		muxNet = transport.NewTCPMux()
		opts.Network = transport.NewFaulty(muxNet, transport.NewFaultsSeeded(cfg.Seed))
	default:
		return nil, fmt.Errorf("chaos: unknown transport %q", cfg.Transport)
	}
	w, err := harness.New(opts)
	if err != nil {
		return nil, err
	}
	if muxNet != nil {
		defer muxNet.Close()
	}
	faults := w.Cluster.Faults()
	faults.Reseed(cfg.Seed)
	r := &runner{
		cfg:    cfg,
		w:      w,
		faults: faults,
		report: &Report{
			Seed:        cfg.Seed,
			FinalValues: make(map[string]int),
		},
		tallies:       make([]objTally, cfg.Objects),
		ackedMax:      make([]int, cfg.Objects),
		partitions:    make(map[[2]transport.Addr]bool),
		everCrashed:   make(map[transport.Addr]bool),
		placementDown: make(map[transport.Addr]bool),
		armed:         make(map[transport.Addr]*storage.Disk),
		tornRng:       rand.New(rand.NewSource(cfg.Seed ^ 0x70524e5441494c)),
	}

	events := GenerateSchedule(cfg.Seed, cfg)
	nemesisCtx, stopNemesis := context.WithCancel(context.Background())
	var nemesisDone sync.WaitGroup
	nemesisDone.Add(1)
	go func() {
		defer nemesisDone.Done()
		r.nemesis(nemesisCtx, events)
	}()

	var workers sync.WaitGroup
	for i := range w.Clients {
		workers.Add(1)
		go func(idx int) {
			defer workers.Done()
			r.worker(idx)
		}(i)
	}
	workers.Wait()
	stopNemesis()
	nemesisDone.Wait()

	r.quiesce()
	r.report.Violations = r.checkInvariants()
	return r.report, nil
}

// --- workload ---

func (r *runner) worker(idx int) {
	client := r.w.Clients[idx]
	b := r.w.AnyBinder(client, r.cfg.Scheme, r.cfg.Policy, 0)
	var lc *lease.Local
	if r.cfg.Workload == WorkloadLeasedCounter {
		lc = r.w.LeaseLocal(client, 0)
	}
	// Per-client source: decorrelated from the schedule rng but still a
	// pure function of the seed.
	rng := rand.New(rand.NewSource(r.cfg.Seed ^ int64(idx+1)*0x5851F42D4C957F2D))
	for i := 0; i < r.cfg.ActionsPerClient; i++ {
		switch r.cfg.Workload {
		case WorkloadBank:
			r.bankOp(b, client, rng)
		case WorkloadLeasedCounter:
			r.leasedOp(b, lc, client, rng)
		default:
			r.counterOp(b, client, rng)
		}
		r.progress.Add(1)
	}
}

func (r *runner) record(client transport.Addr, tx string, class outcomeClass, deltas map[int]int) {
	r.mu.Lock()
	r.ops = append(r.ops, opRec{tx: tx, client: client, class: class})
	r.mu.Unlock()
	r.recordTally(class, deltas)
}

func (r *runner) recordTally(class outcomeClass, deltas map[int]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch class {
	case opCommitted:
		r.report.Committed++
		for obj, d := range deltas {
			r.tallies[obj].committed += d
		}
	case opAborted:
		r.report.Aborted++
	case opUncertain:
		r.report.Uncertain++
		for obj, d := range deltas {
			r.tallies[obj].uncertain += d
		}
	}
}

// classify maps a harness ActionResult to an outcome class: commits and
// runner-resolved aborts are certain; a Commit that itself failed is
// uncertain when the caller's context was dead OR the coordinator
// affirmatively reported the outcome unknown (an ambiguous one-phase
// round whose two-phase fallback could not resolve the doubt) — either
// way the one-phase fast path may have committed at the store with no
// way to report it.
func classify(ctx context.Context, res harness.ActionResult) outcomeClass {
	switch {
	case res.Committed:
		return opCommitted
	case res.CommitFailed && (ctx.Err() != nil || errors.Is(res.Err, action.ErrOutcomeUnknown)):
		return opUncertain
	default:
		return opAborted
	}
}

func (r *runner) counterOp(b core.ActionBinder, client transport.Addr, rng *rand.Rand) {
	obj := rng.Intn(r.cfg.Objects)
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ActionTimeout)
	defer cancel()
	res := r.w.RunCounterAction(ctx, b, obj, 1)
	class := classify(ctx, res)
	val, _ := strconv.Atoi(string(res.Result))
	var errMsg string
	if res.Err != nil {
		errMsg = res.Err.Error()
	}
	r.mu.Lock()
	r.ops = append(r.ops, opRec{tx: res.Tx, client: client, class: class, obj: obj, val: val,
		onePhase: res.OnePhase, prepared: res.PreparedStores, excluded: res.ExcludedStores,
		errMsg: errMsg})
	r.mu.Unlock()
	r.recordTally(class, map[int]int{obj: 1})
}

// leasedOp runs one leased-counter action: ~60% leased reads, the rest
// plain increments. Reads snapshot the I7 floor — the newest committed
// value already acknowledged on this object — BEFORE starting, so the
// floor is a sound lower bound on what the read "could have observed";
// increments raise the floor only after their commit is acknowledged.
func (r *runner) leasedOp(b core.ActionBinder, lc *lease.Local, client transport.Addr, rng *rand.Rand) {
	obj := rng.Intn(r.cfg.Objects)
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ActionTimeout)
	defer cancel()

	if rng.Intn(5) < 3 {
		// Reads come in pairs — the locality a lease cache exists for: the
		// first read harvests a grant on a miss, the second typically hits
		// it. Both are I7-checked against their own floor snapshot.
		for k := 0; k < 2; k++ {
			r.mu.Lock()
			floor := r.ackedMax[obj]
			r.mu.Unlock()
			res := r.w.RunLeasedReadAction(ctx, b, lc, obj)
			class := classify(ctx, res)
			var errMsg string
			if res.Err != nil {
				errMsg = res.Err.Error()
			}
			val, _ := strconv.Atoi(string(res.Result))
			r.mu.Lock()
			r.ops = append(r.ops, opRec{tx: res.Tx, client: client, class: class, obj: obj, val: val,
				errMsg: errMsg, read: true})
			if class == opCommitted {
				r.leaseReads = append(r.leaseReads, leaseReadRec{obj: obj, floor: floor, saw: val, leased: res.Leased})
				if res.Leased {
					r.report.LeasedReads++
				}
			}
			r.mu.Unlock()
			r.recordTally(class, nil)
		}
		return
	}

	res := r.w.RunCounterAction(ctx, b, obj, 1)
	class := classify(ctx, res)
	val, _ := strconv.Atoi(string(res.Result))
	var errMsg string
	if res.Err != nil {
		errMsg = res.Err.Error()
	}
	r.mu.Lock()
	r.ops = append(r.ops, opRec{tx: res.Tx, client: client, class: class, obj: obj, val: val,
		onePhase: res.OnePhase, prepared: res.PreparedStores, excluded: res.ExcludedStores,
		errMsg: errMsg})
	if class == opCommitted && val > r.ackedMax[obj] {
		r.ackedMax[obj] = val
	}
	r.mu.Unlock()
	r.recordTally(class, map[int]int{obj: 1})
}

func (r *runner) bankOp(b core.ActionBinder, client transport.Addr, rng *rand.Rand) {
	from := rng.Intn(r.cfg.Objects)
	to := (from + 1 + rng.Intn(r.cfg.Objects-1)) % r.cfg.Objects
	amount := 1 + rng.Intn(5)
	ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ActionTimeout)
	defer cancel()
	res := r.w.RunTransferAction(ctx, b, from, to, amount)
	r.record(client, res.Tx, classify(ctx, res), map[int]int{from: -amount, to: amount})
}

// --- nemesis ---

func (r *runner) nemesis(ctx context.Context, events []Event) {
	for _, e := range events {
		for r.progress.Load() < int64(e.After) {
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Millisecond):
			}
		}
		r.apply(e)
		r.mu.Lock()
		r.report.Schedule = append(r.report.Schedule, e.String())
		r.mu.Unlock()
	}
}

func (r *runner) note(format string, args ...any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.report.Notes = append(r.report.Notes, fmt.Sprintf(format, args...))
}

func (r *runner) markCrashed(addr transport.Addr) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.everCrashed[addr] = true
}

func (r *runner) apply(e Event) {
	switch e.Kind {
	case KindCrashStore, KindCrashServer:
		r.markCrashed(e.Target)
		r.w.Cluster.Node(e.Target).Crash()
	case KindRecoverNode:
		r.recoverNode(e.Target)
	case KindPartition:
		r.faults.Partition(e.Target, e.Peer)
		r.mu.Lock()
		r.partitions[[2]transport.Addr{e.Target, e.Peer}] = true
		r.mu.Unlock()
	case KindHealAll:
		r.mu.Lock()
		pairs := r.partitions
		r.partitions = make(map[[2]transport.Addr]bool)
		r.mu.Unlock()
		for p := range pairs {
			r.faults.Heal(p[0], p[1])
		}
	case KindDropRequests:
		r.faults.DropRequestsP(e.P, e.Count, transport.ToMethod(e.Target, e.Service, e.Method))
	case KindDropReplies:
		r.faults.DropRepliesP(e.P, e.Count, transport.ToMethod(e.Target, e.Service, e.Method))
	case KindDelay:
		r.faults.DelayRequests(e.P, e.Count, e.Hold, transport.To(e.Target))
	case KindDuplicate:
		r.faults.DuplicateRequests(e.P, e.Count, transport.ToMethod(e.Target, e.Service, e.Method))
	case KindReorder:
		r.faults.ReorderRequests(e.P, e.Count, e.Hold, transport.To(e.Target))
	case KindCrashDuringCommit:
		// The in-doubt injection: the target store dies the instant its
		// prepare acknowledgement is on the wire — it has voted commit and
		// will only ever learn the outcome from the coordinator's log at
		// restart. The abort-side variant loses the acknowledgement too,
		// so the coordinator aborts while the dead store holds a prepared
		// intention (presumed abort must clean it up).
		r.markCrashed(e.Target)
		n := r.w.Cluster.Node(e.Target)
		rule := transport.ToMethod(e.Target, store.ServiceName, store.MethodPrepare)
		if e.AbortSide {
			r.faults.DropRepliesP(1, 1, rule)
		}
		r.faults.OnReply(1, rule, func(transport.Request) { n.Crash() })
	case KindGrayFail:
		// Gray failure: the target executes everything it is sent but
		// holds every reply for Hold — callers' deadlines expire while
		// the side effects stand. Cleared (with all rules) at quiesce.
		r.faults.DelayReplies(1, -1, e.Hold, transport.To(e.Target))
	case KindCrashPlacement:
		if n := r.w.Cluster.Node(e.Target); n != nil {
			r.mu.Lock()
			r.placementDown[e.Target] = true
			r.mu.Unlock()
			n.Crash()
		}
	case KindRecoverPlacement:
		if n := r.w.Cluster.Node(e.Target); n != nil && !n.Up() {
			// Recover runs the replica's OnRecover catch-up hook against
			// the primary.
			n.Recover(nil)
			r.mu.Lock()
			delete(r.placementDown, e.Target)
			r.mu.Unlock()
		}
	case KindKillAtByte:
		// Only meaningful on a live disk-backed store: the WAL is armed
		// to tear once it grows e.Bytes further, and the node dies at the
		// torn write (FailAfter fires the callback asynchronously, as a
		// real power cut would interleave with the writer).
		r.markCrashed(e.Target)
		n := r.w.Cluster.Node(e.Target)
		if d, ok := n.Store().Backend().(*storage.Disk); ok {
			// The kill callback runs async (FailAfter fires it in its own
			// goroutine); guard it with the node's incarnation so a
			// late-scheduled callback cannot crash the node AGAIN after
			// quiesce has already restarted it — the kill belongs to this
			// epoch only.
			epoch := n.Epoch()
			d.FailAfter(d.WALSize()+e.Bytes, func() {
				if n.Epoch() == epoch {
					n.Crash()
				}
			})
			r.mu.Lock()
			r.armed[e.Target] = d
			r.mu.Unlock()
		}
	}
}

// recoverNode attempts an online recovery mid-run: restart (which
// resolves in-doubt intentions against coordinator logs via the cluster's
// outcome resolver) followed by the store/server recovery protocol.
// Protocol failures under active faults are notes, not errors — quiesce
// retries them in a clean network.
func (r *runner) recoverNode(target transport.Addr) {
	n := r.w.Cluster.Node(target)
	if n == nil || n.Up() {
		return
	}
	r.maybeTearWAL(target)
	r.countInDoubt(target)
	n.Recover(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*r.cfg.ActionTimeout)
	defer cancel()
	g := r.w.GroupFor(target)
	var err error
	if r.isStore(target) {
		err = core.RecoverStoreNode(ctx, n, g.DB.Addr(), g.DB.Objects())
	} else {
		err = core.RecoverServerNode(ctx, n, g.DB.Addr(), g.DB.Objects())
	}
	if err != nil {
		r.note("online recovery of %s deferred: %v", target, err)
	}
}

func (r *runner) isStore(addr transport.Addr) bool {
	for _, st := range r.w.Sts {
		if st == addr {
			return true
		}
	}
	return false
}

func (r *runner) countInDoubt(addr transport.Addr) {
	if !r.isStore(addr) {
		return
	}
	n := r.w.Cluster.Node(addr)
	// A crashed disk-backed node holds nothing in process memory; reload
	// its durable state (without bringing it up) so the pending
	// intentions it will resolve at restart are countable.
	if !n.Up() {
		if err := n.ReopenStable(); err != nil {
			r.note("reopen %s for in-doubt accounting failed: %v", addr, err)
			return
		}
	}
	if pend := n.Store().PendingTxs(); len(pend) > 0 {
		r.mu.Lock()
		r.report.InDoubtResolved += len(pend)
		r.mu.Unlock()
	}
}

// maybeTearWAL injects a seeded torn write — a frame header promising
// more bytes than follow — into a crashed disk-backed store's WAL before
// it reopens. Recovery must truncate it and lose nothing acknowledged;
// the invariant checks prove that.
func (r *runner) maybeTearWAL(target transport.Addr) {
	if r.cfg.DataDir == "" || !r.isStore(target) {
		return
	}
	if n := r.w.Cluster.Node(target); n == nil || n.Up() {
		return
	}
	r.mu.Lock()
	tear := r.tornRng.Float64() < 0.5
	junk := make([]byte, 5+r.tornRng.Intn(24))
	binary.LittleEndian.PutUint32(junk, 64) // promises 64 payload bytes
	for i := 4; i < len(junk); i++ {
		junk[i] = byte(r.tornRng.Intn(256))
	}
	r.mu.Unlock()
	if !tear {
		return
	}
	dir := filepath.Join(r.cfg.DataDir, string(target))
	if err := storage.CorruptWALTail(dir, junk); err != nil {
		r.note("torn-tail injection at %s failed: %v", target, err)
		return
	}
	r.note("torn WAL tail injected at %s (%d junk bytes)", target, len(junk))
}

// --- quiesce ---

// quiesce drains the chaos: heal the network, restart every crashed node
// (stores before servers, so catch-up has sources), sweep any intention
// still pending on a live store (the restart-equivalent resolution), and
// restart wedged server instances. After quiesce the cluster must satisfy
// every invariant.
func (r *runner) quiesce() {
	r.faults.Clear()
	resolver := func(n transport.Addr) store.OutcomeLog {
		return r.w.OutcomeLogFor(r.w.Cluster.Node(n))
	}

	// Settle kill-at-byte injections: a tripped one's node must be down
	// (the async crash callback may still be in flight — force it); an
	// untripped one is disarmed so recovery-time WAL writes cannot die.
	r.mu.Lock()
	armed := r.armed
	r.armed = make(map[transport.Addr]*storage.Disk)
	r.mu.Unlock()
	for target, d := range armed {
		d.ClearFail()
		if d.Failed() {
			r.w.Cluster.Node(target).Crash()
		}
	}

	// Placement replicas rejoin first: the recovery protocols and the
	// invariant checks below bind through the placement service. The
	// OnRecover hook pulls the directory from the primary.
	for _, p := range r.w.PlaceAddrs {
		if n := r.w.Cluster.Node(p); n != nil && !n.Up() {
			n.Recover(nil)
		}
	}
	r.mu.Lock()
	r.placementDown = make(map[transport.Addr]bool)
	r.mu.Unlock()

	// Restart crashed stores; their pending intentions resolve against
	// coordinator logs inside Recover.
	for _, st := range r.w.Sts {
		n := r.w.Cluster.Node(st)
		if !n.Up() {
			r.maybeTearWAL(st)
			r.countInDoubt(st)
			n.Recover(nil)
		}
	}
	// Live stores may hold intentions whose phase-two or abort message
	// was lost; resolve them the same way a restart would.
	for _, st := range r.w.Sts {
		n := r.w.Cluster.Node(st)
		if pend := n.Store().PendingTxs(); len(pend) > 0 {
			r.mu.Lock()
			r.report.InDoubtResolved += len(pend)
			r.mu.Unlock()
			applied, aborted := n.Store().Recover(resolver(st))
			r.note("swept %s: applied %v, aborted %v", st, applied, aborted)
		}
	}
	// Restart crashed servers (their volatile instances are gone; the
	// recovery protocol re-Inserts them into Sv).
	for _, sv := range r.w.Svs {
		if n := r.w.Cluster.Node(sv); !n.Up() {
			n.Recover(nil)
		}
	}
	// Wedged instances: a server that missed an action's phase-two or
	// abort message keeps its users/prepared entries (and the action's
	// locks) forever. Model the operator restart: force-passivate; the
	// stores hold the durable truth.
	cli := r.w.Cluster.Node(r.w.Clients[0]).Client()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, sv := range r.w.Svs {
		for i, id := range r.w.Objects {
			ref := object.ServerRef{Client: cli, Node: sv, UID: id}
			stat, err := ref.Status(ctx)
			if err != nil || !stat.Active {
				continue
			}
			if stat.Users > 0 || stat.Prepared > 0 {
				if _, err := ref.Passivate(ctx, true); err == nil {
					r.mu.Lock()
					r.report.Repairs = append(r.report.Repairs,
						fmt.Sprintf("restarted wedged instance obj%d@%s (users=%d prepared=%d)", i, sv, stat.Users, stat.Prepared))
					r.mu.Unlock()
				}
			}
		}
	}
	// Catch-up protocols for every node that ever crashed, now that the
	// network is clean and intentions are settled. A few retries paper
	// over ordering between mutually-dependent recoveries.
	r.mu.Lock()
	crashed := make([]transport.Addr, 0, len(r.everCrashed))
	for a := range r.everCrashed {
		crashed = append(crashed, a)
	}
	r.mu.Unlock()
	for attempt := 0; attempt < 3; attempt++ {
		ok := true
		for _, a := range crashed {
			if r.isStore(a) {
				g := r.w.GroupFor(a)
				if err := core.RecoverStoreNode(ctx, r.w.Cluster.Node(a), g.DB.Addr(), g.DB.Objects()); err != nil {
					ok = false
					if attempt == 2 {
						r.note("quiesce store recovery %s failed: %v", a, err)
					}
				}
			}
		}
		for _, a := range crashed {
			if !r.isStore(a) {
				g := r.w.GroupFor(a)
				if err := core.RecoverServerNode(ctx, r.w.Cluster.Node(a), g.DB.Addr(), g.DB.Objects()); err != nil {
					ok = false
					if attempt == 2 {
						r.note("quiesce server recovery %s failed: %v", a, err)
					}
				}
			}
		}
		if ok {
			break
		}
	}
}
