// Package chaos is a seed-deterministic nemesis harness for the
// replicated-object stack: it derives a randomized fault schedule from a
// single integer seed, applies it to a simulated cluster while concurrent
// clients run counter or bank workloads, and then checks a set of
// invariants that must hold under ANY failure pattern the paper's
// protocols claim to tolerate.
//
// # Seeds and schedules
//
// Everything random is derived from Config.Seed:
//
//   - the fault schedule — which nodes crash and when, which node pairs
//     partition, which RPC methods get probabilistic drop / delay /
//     duplicate / reorder rules, and where an in-doubt participant is
//     injected (GenerateSchedule is a pure function of seed and config);
//   - the workload content — which object each client action touches,
//     which accounts a transfer moves money between (per-client sources
//     derived from the seed);
//   - the network — jitter and the per-message fault coin flips share the
//     seed (transport.Faults.Reseed).
//
// Goroutine interleaving is NOT controlled, so two runs of the same seed
// may commit different subsets of actions. That is the point: the
// invariants quantify over every interleaving, so a seed that produced a
// violation replays the exact fault plan that found it, which in practice
// reproduces the failure within a few runs. Every failing test prints its
// seed and the one-line reproduce command:
//
//	go test ./internal/chaos -run TestChaos -seed=N -v
//
// # Fault schedule events
//
// Schedules are sequences of events applied when the cluster-wide count
// of finished actions crosses per-event thresholds (so a schedule stays
// meaningful regardless of machine speed). Event kinds: crash-store,
// crash-server, recover-node (runs the §4.1.2/§4.2 recovery protocols),
// partition, heal-all, drop-requests, drop-replies, delay, duplicate
// (idempotent store methods only), reorder, and crash-during-commit — the
// in-doubt injection: the target store node is killed the instant its
// prepare acknowledgement is on the wire, i.e. after it voted commit and
// before it can learn the outcome; the abort-side variant additionally
// loses the acknowledgement so the action aborts instead.
//
// # Disk-backed runs
//
// Setting Config.DataDir (tests pass t.TempDir()) moves every node's
// stable storage onto the internal/storage WAL+snapshot engine. Crashes
// then drop the target's entire process image — recovery must replay
// committed versions and prepared intentions from its directory before
// the in-doubt protocol can resolve anything — and two storage-level
// injections join the schedule: kill-at-byte (the store's WAL tears
// mid-frame once it grows a seeded number of bytes, and the node dies at
// that torn write) and seeded torn-tail corruption (junk appended to a
// crashed store's WAL before it reopens, which open-time truncation must
// shave off without losing anything acknowledged). Only whether DataDir
// is set influences the schedule, never its value, so -seed replays from
// fresh temp directories reproduce the same fault plan. The -backend=disk
// test flag forces every chaos test onto disk storage.
//
// # Invariants
//
// After the workload drains, the harness heals the network, restarts
// every crashed node (restart-time in-doubt resolution queries each
// pending transaction's coordinator via action.OriginLog — presumed abort
// when no record exists), re-runs the store/server recovery protocols,
// sweeps any remaining prepared-but-undecided intentions, and checks:
//
//   - St view consistency: every store in an object's final St view holds
//     the same value and sequence number (the paper's mutual-consistency
//     guarantee for St sets);
//   - conservation / no lost committed updates: for counters, the final
//     value equals the initial value plus the sum of deltas of every
//     action a client saw commit (bounded above by the few outcomes the
//     client could not observe — see Report.Uncertain); for the bank
//     workload, the total across all accounts is exactly conserved, since
//     transfers are failure-atomic across two participants;
//   - outcome convergence: no store holds a pending intention after the
//     recovery sweep — every in-doubt participant resolved to the logged
//     outcome (or presumed abort);
//   - outcome-log agreement: an action observed committed is never logged
//     aborted, and vice versa;
//   - server quiescence: no object server instance is left with bound
//     users or unresolved prepared state (instances wedged by lost
//     phase-two traffic are restarted and reported in Report.Repairs).
//
// # Replaying a failure
//
// Re-run the failing test with -seed=N. The printed Report.Schedule shows
// the fault plan in applied order; Report.Repairs and the per-object
// final values narrow down which invariant broke and where.
package chaos
