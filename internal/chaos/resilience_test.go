package chaos

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/transport"
)

// TestChaosGrayFailure: schedules extended with gray-failure injections —
// nodes that execute everything but answer past every deadline. The
// invariants must hold even though the sick nodes' side effects stand
// while their callers time out.
func TestChaosGrayFailure(t *testing.T) {
	for _, seed := range seeds(701, 4) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep := runSeed(t, Config{Seed: seed, Workload: WorkloadCounter, GrayFailures: true})
			applied := 0
			for _, e := range rep.Schedule {
				if strings.Contains(e, "gray-fail") {
					applied++
				}
			}
			if applied == 0 {
				t.Errorf("seed %d: extended schedule applied no gray-fail event:\n  %s",
					seed, strings.Join(rep.Schedule, "\n  "))
			}
		})
	}
}

// TestChaosPlacementFailover: sharded schedules extended with
// placement-replica crash/recover events. Binds must keep working with a
// replica down (reads fail over), and the replica-convergence invariant
// (I6) must hold after its catch-up.
func TestChaosPlacementFailover(t *testing.T) {
	for _, seed := range seeds(801, 4) {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rep := runSeed(t, Config{Seed: seed, Workload: WorkloadCounter, Shards: 3, PlacementChaos: true})
			applied := 0
			for _, e := range rep.Schedule {
				if strings.Contains(e, "crash-placement") {
					applied++
				}
			}
			if applied == 0 {
				t.Errorf("seed %d: extended schedule applied no crash-placement event:\n  %s",
					seed, strings.Join(rep.Schedule, "\n  "))
			}
		})
	}
}

// latP99 returns ~the p99 of a latency sample (max of all but the top 1%,
// which for small n is simply the max).
func latP99(durs []time.Duration) time.Duration {
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := len(s) * 99 / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// TestGrayFailureTailBound is the acceptance bound for gray failures: one
// store gray-failed with a 5s reply hold must not drag the tail of
// actions that never touch it. Non-involved (other-shard) actions keep
// p99 under 10× the healthy baseline even while involved callers are
// timing out against the sick store concurrently.
func TestGrayFailureTailBound(t *testing.T) {
	w, err := harness.New(harness.Options{Servers: 1, Stores: 1, Clients: 2, Objects: 8, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Find one object per shard.
	shardObj := map[int]int{}
	for i, id := range w.Objects {
		if _, ok := shardObj[w.GroupOf(id).ID]; !ok {
			shardObj[w.GroupOf(id).ID] = i
		}
	}
	if len(shardObj) < 2 {
		t.Fatal("objects did not hash onto both shards")
	}
	healthyObj, sickObj := shardObj[1], shardObj[2]
	sickStore := w.Groups[1].Sts[0]

	run := func(b core.ActionBinder, obj int, timeout time.Duration) (time.Duration, bool) {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		start := time.Now()
		res := w.RunCounterAction(ctx, b, obj, 1)
		return time.Since(start), res.Committed
	}

	// Healthy baseline on shard 1.
	b1 := w.AnyBinder(w.Clients[0], core.SchemeIndependent, replica.SingleCopyPassive, 0)
	var healthy []time.Duration
	for i := 0; i < 40; i++ {
		d, ok := run(b1, healthyObj, 2*time.Second)
		if !ok {
			t.Fatalf("healthy action %d did not commit", i)
		}
		healthy = append(healthy, d)
	}
	baseline := latP99(healthy)
	if floor := 2 * time.Millisecond; baseline < floor {
		baseline = floor
	}

	// Gray-fail shard 2's store: every reply held 5s, side effects stand.
	w.Cluster.Faults().DelayReplies(1, -1, 5*time.Second, transport.To(sickStore))

	// Involved load: a second client hammers the sick shard, each action
	// timing out against the held replies.
	stop := make(chan struct{})
	var involved sync.WaitGroup
	involved.Add(1)
	go func() {
		defer involved.Done()
		b2 := w.AnyBinder(w.Clients[1], core.SchemeIndependent, replica.SingleCopyPassive, 0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
			w.RunCounterAction(ctx, b2, sickObj, 1)
			cancel()
		}
	}()

	var sick []time.Duration
	for i := 0; i < 40; i++ {
		d, ok := run(b1, healthyObj, 2*time.Second)
		if !ok {
			t.Fatalf("non-involved action %d did not commit with %s gray-failed", i, sickStore)
		}
		sick = append(sick, d)
	}
	close(stop)
	involved.Wait()

	if got, bound := latP99(sick), 10*baseline; got > bound {
		t.Fatalf("non-involved p99 = %v with %s gray-failed, want < 10× healthy baseline %v",
			got, sickStore, baseline)
	}
}

// TestGrayFailureBreakerContainsSickStore shows a gray store turning
// from a per-action timeout tax into a one-off cost: the first actions
// burn their deadline against the held replies, then the store is
// contained — excluded from the St view by the §4.2 machinery, with the
// server's breaker fast-failing any later probe of it — and every
// subsequent action commits fast.
func TestGrayFailureBreakerContainsSickStore(t *testing.T) {
	w, err := harness.New(harness.Options{
		Servers: 1, Stores: 2, Clients: 1, Objects: 1,
		Breakers: rpc.BreakerConfig{Window: 4, Threshold: 2, Cooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Cluster.Faults().DelayReplies(1, -1, 5*time.Second, transport.To("st2"))

	b := w.AnyBinder("c1", core.SchemeIndependent, replica.SingleCopyPassive, 0)
	const actions = 20
	durs := make([]time.Duration, actions)
	committed := make([]bool, actions)
	for i := 0; i < actions; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
		start := time.Now()
		res := w.RunCounterAction(ctx, b, 0, 1)
		durs[i] = time.Since(start)
		committed[i] = res.Committed
		cancel()
	}
	// Steady state: the tail of the run commits fast — the sick store is
	// fast-failed and excluded, not waited for.
	for i := actions - 10; i < actions; i++ {
		if !committed[i] {
			t.Fatalf("action %d did not commit in degraded mode (durations %v)", i, durs)
		}
		if durs[i] >= 250*time.Millisecond {
			t.Fatalf("action %d took %v in degraded mode, want fast-fail (durations %v)", i, durs[i], durs)
		}
	}
	// The sick store was contained: either the §4.2 exclusion removed it
	// from the object's St view (one timeout was enough), or the server's
	// breaker toward it tripped open. Both stop further waits on it.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	view, err := w.CurrentStView(ctx, 0)
	if err != nil {
		t.Fatalf("final St view: %v", err)
	}
	excluded := true
	for _, st := range view {
		if st == "st2" {
			excluded = false
		}
	}
	if !excluded && w.Cluster.Node("sv1").Breakers().State("st2") != rpc.StateOpen {
		t.Fatalf("st2 neither excluded from St view %v nor breaker-open (%v)",
			view, w.Cluster.Node("sv1").Breakers().State("st2"))
	}
}

// TestPlacementFailoverKeepsBindsLive is the acceptance check for
// placement replication: killing any single placement replica leaves
// bind and re-bind live — a fresh binder with no cached placement must
// resolve through a surviving replica and commit.
func TestPlacementFailoverKeepsBindsLive(t *testing.T) {
	w, err := harness.New(harness.Options{Servers: 1, Stores: 1, Clients: 1, Objects: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.PlaceAddrs) != 3 {
		t.Fatalf("placement replicas = %v, want 3", w.PlaceAddrs)
	}
	for _, victim := range w.PlaceAddrs {
		n := w.Cluster.Node(victim)
		n.Crash()
		b := w.ShardBinder(w.Clients[0], core.SchemeIndependent, replica.SingleCopyPassive, 0)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		res := w.RunCounterAction(ctx, b, 0, 1)
		cancel()
		if !res.Committed {
			t.Fatalf("action did not commit with placement replica %s down: %s", victim, res.Err)
		}
		n.Recover(nil)
	}
}
