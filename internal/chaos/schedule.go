package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"time"

	"repro/internal/object"
	"repro/internal/store"
	"repro/internal/transport"
)

// EventKind classifies one nemesis action.
type EventKind int

// Nemesis event kinds.
const (
	KindCrashStore EventKind = iota + 1
	KindCrashServer
	KindRecoverNode
	KindPartition
	KindHealAll
	KindDropRequests
	KindDropReplies
	KindDelay
	KindDuplicate
	KindReorder
	KindCrashDuringCommit
	// KindKillAtByte (disk-backed runs only) arms the target store's WAL
	// to tear mid-frame once it grows Bytes further, crashing the node at
	// that instant — a process dying halfway through a write. Recovery
	// must truncate the torn record and lose nothing acknowledged.
	KindKillAtByte
	// KindGrayFail (Config.GrayFailures) makes the target sick rather
	// than dead: it accepts every request and executes it, but holds all
	// replies for Hold — past the callers' deadlines, so side effects
	// stand while the caller times out. The fail-silent detectors never
	// fire; only deadline expiry (and the circuit breakers built on it)
	// can contain the node.
	KindGrayFail
	// KindCrashPlacement / KindRecoverPlacement (Config.PlacementChaos,
	// sharded runs) kill and restart one placement service replica;
	// recovery runs the replica's catch-up against the primary.
	KindCrashPlacement
	KindRecoverPlacement
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case KindCrashStore:
		return "crash-store"
	case KindCrashServer:
		return "crash-server"
	case KindRecoverNode:
		return "recover-node"
	case KindPartition:
		return "partition"
	case KindHealAll:
		return "heal-all"
	case KindDropRequests:
		return "drop-requests"
	case KindDropReplies:
		return "drop-replies"
	case KindDelay:
		return "delay"
	case KindDuplicate:
		return "duplicate"
	case KindReorder:
		return "reorder"
	case KindCrashDuringCommit:
		return "crash-during-commit"
	case KindKillAtByte:
		return "kill-at-byte"
	case KindGrayFail:
		return "gray-fail"
	case KindCrashPlacement:
		return "crash-placement"
	case KindRecoverPlacement:
		return "recover-placement"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled nemesis action. A schedule is applied in order;
// each event fires once the cluster-wide count of finished actions
// reaches After, which keeps a schedule's shape independent of machine
// speed.
type Event struct {
	// After is the finished-action threshold that triggers the event.
	After int
	// Kind selects the nemesis action.
	Kind EventKind
	// Target is the node the event acts on (crashes, rules); Peer is the
	// second node of a partition.
	Target transport.Addr
	Peer   transport.Addr
	// Service/Method scope probabilistic rules to one RPC method.
	Service string
	Method  string
	// P is the per-match firing probability of an installed rule; Count
	// bounds how many times it fires.
	P     float64
	Count int
	// Hold sizes delay and reorder faults.
	Hold time.Duration
	// AbortSide selects the presumed-abort variant of a
	// crash-during-commit injection: the prepare acknowledgement is lost
	// along with the node, so the coordinator aborts while the dead
	// participant holds a prepared intention.
	AbortSide bool
	// Bytes is the WAL growth budget of a kill-at-byte event: the target
	// dies when its WAL has grown this many more bytes.
	Bytes int64
}

// String renders the event for schedule traces.
func (e Event) String() string {
	s := fmt.Sprintf("@%d %s", e.After, e.Kind)
	switch e.Kind {
	case KindPartition:
		return fmt.Sprintf("%s %s<->%s", s, e.Target, e.Peer)
	case KindHealAll:
		return s
	case KindDropRequests, KindDropReplies, KindDuplicate:
		return fmt.Sprintf("%s %s.%s@%s p=%.2f n=%d", s, e.Service, e.Method, e.Target, e.P, e.Count)
	case KindDelay, KindReorder:
		return fmt.Sprintf("%s %s p=%.2f n=%d hold=%s", s, e.Target, e.P, e.Count, e.Hold)
	case KindCrashDuringCommit:
		side := "commit-side"
		if e.AbortSide {
			side = "abort-side"
		}
		return fmt.Sprintf("%s %s (%s)", s, e.Target, side)
	case KindKillAtByte:
		return fmt.Sprintf("%s %s (+%d bytes)", s, e.Target, e.Bytes)
	case KindGrayFail:
		return fmt.Sprintf("%s %s hold=%s", s, e.Target, e.Hold)
	default:
		return fmt.Sprintf("%s %s", s, e.Target)
	}
}

// storeMethods are the store RPC methods probabilistic rules may target;
// duplicateMethods is the idempotent-by-contract subset that duplication
// faults are restricted to (duplicating a non-idempotent method is an
// application bug to hunt separately, not a harness feature).
var (
	storeDropMethods = []string{store.MethodPrepare, store.MethodCommit, store.MethodAbort, store.MethodRead}
	duplicateMethods = []string{store.MethodPrepare, store.MethodCommit, store.MethodAbort}
	objsrvMethods    = []string{object.MethodInvoke, object.MethodPrepare, object.MethodCommit, object.MethodAbort}
)

// GenerateSchedule derives the fault schedule for a seed: a pure function
// of (seed, cfg), so a failing run's schedule is reproduced exactly by its
// seed. The generator tracks a model of which nodes it has crashed so
// recover events name real victims and the cluster is never scheduled to
// lose every store at once.
func GenerateSchedule(seed int64, cfg Config) []Event {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	total := cfg.Clients * cfg.ActionsPerClient

	// Sharded configs have Shards×(Servers, Stores) nodes, numbered
	// contiguously across groups; the nemesis targets them all alike.
	stores := make([]transport.Addr, cfg.Stores*cfg.Shards)
	for i := range stores {
		stores[i] = transport.Addr("st" + strconv.Itoa(i+1))
	}
	servers := make([]transport.Addr, cfg.Servers*cfg.Shards)
	for i := range servers {
		servers[i] = transport.Addr("sv" + strconv.Itoa(i+1))
	}
	all := append(append([]transport.Addr{}, stores...), servers...)
	crashed := map[transport.Addr]bool{}
	crashedList := func() []transport.Addr {
		var out []transport.Addr
		for _, n := range all {
			if crashed[n] {
				out = append(out, n)
			}
		}
		return out
	}
	downStores := 0

	pick := func(from []transport.Addr) transport.Addr { return from[rng.Intn(len(from))] }

	// Draw all firing thresholds first and sort them, so the crash/recover
	// model below is maintained in the SAME order the events apply at
	// runtime — a model tracked in generation order would let a
	// late-threshold crash be "paid for" by an earlier-generated but
	// later-applied recover, scheduling the cluster into losing every
	// store at once. Thresholds spread over the first three quarters of
	// the run so late events still see traffic.
	afters := make([]int, cfg.Events)
	for i := range afters {
		afters[i] = 1 + rng.Intn(max(1, total*3/4))
	}
	sort.Ints(afters)

	crashStore := func(target transport.Addr) {
		if !crashed[target] {
			crashed[target] = true
			downStores++
		}
	}
	events := make([]Event, 0, cfg.Events)
	haveInDoubt := false
	for i := 0; i < cfg.Events; i++ {
		// The in-doubt injection is decided up front so its model
		// bookkeeping composes with everything after it.
		if inject := cfg.BiasInDoubt && i%2 == 0 || !haveInDoubt && rng.Float64() < 0.25; inject && downStores < len(stores)-1 {
			e := Event{After: afters[i], Kind: KindCrashDuringCommit, Target: pick(stores), AbortSide: rng.Intn(2) == 0}
			crashStore(e.Target)
			haveInDoubt = true
			events = append(events, e)
			continue
		}
		var e Event
		switch k := rng.Intn(12); {
		case k < 2 && downStores < len(stores)-1: // keep one store up
			e = Event{Kind: KindCrashStore, Target: pick(stores)}
			// Disk-backed runs spend half their store crashes as
			// kill-at-byte injections: the store dies mid-WAL-write
			// instead of between operations. The model bookkeeping is the
			// same — the target counts as crashed from here on (it dies
			// as soon as its WAL grows; a target that never writes again
			// is disarmed at quiesce).
			if cfg.DataDir != "" && rng.Intn(2) == 0 {
				e.Kind = KindKillAtByte
				e.Bytes = int64(1 + rng.Intn(96))
			}
			crashStore(e.Target)
		case k < 3 && len(servers) > 1:
			e = Event{Kind: KindCrashServer, Target: pick(servers)}
			crashed[e.Target] = true
		case k < 5 && len(crashedList()) > 0:
			e = Event{Kind: KindRecoverNode, Target: pick(crashedList())}
			delete(crashed, e.Target)
			for _, st := range stores {
				if st == e.Target {
					downStores--
				}
			}
		case k < 6:
			a := pick(all)
			b := pick(all)
			if a == b {
				e = Event{Kind: KindHealAll}
			} else {
				e = Event{Kind: KindPartition, Target: a, Peer: b}
			}
		case k < 7:
			e = Event{Kind: KindHealAll}
		case k < 8:
			e = Event{Kind: KindDropRequests, Target: pick(stores),
				Service: store.ServiceName, Method: storeDropMethods[rng.Intn(len(storeDropMethods))],
				P: 0.3 + 0.6*rng.Float64(), Count: 1 + rng.Intn(3)}
		case k < 9:
			e = Event{Kind: KindDropReplies, Target: pick(servers),
				Service: object.ServiceName, Method: objsrvMethods[rng.Intn(len(objsrvMethods))],
				P: 0.3 + 0.6*rng.Float64(), Count: 1 + rng.Intn(2)}
		case k < 10:
			e = Event{Kind: KindDelay, Target: pick(all),
				P: 0.5, Count: 2 + rng.Intn(4), Hold: time.Duration(1+rng.Intn(15)) * time.Millisecond}
		case k < 11:
			e = Event{Kind: KindDuplicate, Target: pick(stores),
				Service: store.ServiceName, Method: duplicateMethods[rng.Intn(len(duplicateMethods))],
				P: 0.5 + 0.5*rng.Float64(), Count: 1 + rng.Intn(3)}
		default:
			e = Event{Kind: KindReorder, Target: pick(all),
				P: 0.5, Count: 1 + rng.Intn(2), Hold: time.Duration(2+rng.Intn(10)) * time.Millisecond}
		}
		e.After = afters[i]
		events = append(events, e)
	}
	// Every schedule exercises the crash-during-commit shape at least
	// once: convert the last event if the mix happened to omit it.
	// Nothing follows the last event, so no model bookkeeping is needed.
	if !haveInDoubt && len(events) > 0 {
		last := &events[len(events)-1]
		*last = Event{After: last.After, Kind: KindCrashDuringCommit, Target: pick(stores), AbortSide: rng.Intn(2) == 0}
	}

	// Flag-gated extensions. Every extra rng draw sits behind its flag,
	// AFTER all classic draws, so a pinned seed's classic schedule is
	// bit-identical with the flags off — the property every existing
	// "reproduce with -seed=N" recipe rests on.
	extended := false
	if cfg.GrayFailures {
		extended = true
		// At least one gray failure per schedule, held well past the
		// action timeout so every involved caller's deadline expires
		// while the sick node's side effects stand.
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			events = append(events, Event{
				After:  1 + rng.Intn(max(1, total/2)),
				Kind:   KindGrayFail,
				Target: pick(all),
				Hold:   time.Duration(3+rng.Intn(6)) * cfg.ActionTimeout,
			})
		}
	}
	if cfg.PlacementChaos && cfg.Shards > 1 {
		extended = true
		// Kill one placement replica mid-run and restart it later; binds
		// must keep working throughout and the replica must converge.
		replicas := []transport.Addr{"placement", "placement2", "placement3"}
		victim := replicas[rng.Intn(len(replicas))]
		at := 1 + rng.Intn(max(1, total/2))
		events = append(events, Event{After: at, Kind: KindCrashPlacement, Target: victim})
		events = append(events, Event{
			After: at + 1 + rng.Intn(max(1, total/4)),
			Kind:  KindRecoverPlacement, Target: victim,
		})
	}
	if extended {
		// Appended events carry their own thresholds; restore apply order
		// (stable, so same-threshold classic events keep their order).
		sort.SliceStable(events, func(i, j int) bool { return events[i].After < events[j].After })
	}
	return events
}
