package group

import (
	"reflect"
	"testing"

	"repro/internal/rpc"
)

// TestWireRoundTrip round-trips every binary codec in this package through
// rpc.Encode/Decode with representative populated values.
func TestWireRoundTrip(t *testing.T) {
	cases := []struct{ in, out any }{
		{&sequenceReq{
			Group: "g1", MsgID: "m1", Kind: "invoke",
			Payload: []byte{1, 2}, Members: []string{"n1", "n2"},
		}, &sequenceReq{}},
		{&sequenceResp{
			Seq: 4,
			Replies: []Reply{
				{Member: "n1", Payload: []byte{7}},
				{Member: "n2", Err: "boom"},
			},
			Failed: []string{"n3"},
		}, &sequenceResp{}},
		{&deliverReq{Group: "g1", MsgID: "m2", Kind: "invoke", Payload: []byte{3}, Seq: 5, Stable: 4}, &deliverReq{}},
		{&deliverResp{Payload: []byte{8, 9}}, &deliverResp{}},
		{&deliverBatchReq{
			Group: "g1",
			Items: []batchItem{
				{MsgID: "m3", Kind: "invoke", Payload: []byte{1}, Seq: 6},
				{MsgID: "m4", Kind: "install", Seq: 7},
			},
			Stable: 5,
		}, &deliverBatchReq{}},
		{&deliverBatchResp{
			Results: []batchResult{{Payload: []byte{2}}, {Err: "nope"}},
		}, &deliverBatchResp{}},
	}
	for _, c := range cases {
		data, err := rpc.Encode(c.in)
		if err != nil {
			t.Fatalf("%T: encode: %v", c.in, err)
		}
		if data[0] != rpc.WireMagic {
			t.Fatalf("%T: not binary-coded (first byte %#x)", c.in, data[0])
		}
		if err := rpc.Decode(data, c.out); err != nil {
			t.Fatalf("%T: decode: %v", c.in, err)
		}
		if !reflect.DeepEqual(c.in, c.out) {
			t.Errorf("%T mismatch:\n in: %+v\nout: %+v", c.in, c.in, c.out)
		}
	}
}

// TestWireTagsUnique catches accidental tag reuse inside this package's block.
func TestWireTagsUnique(t *testing.T) {
	types := []rpc.Wire{
		&sequenceReq{}, &sequenceResp{}, &deliverReq{}, &deliverResp{},
		&deliverBatchReq{}, &deliverBatchResp{},
	}
	seen := map[byte]string{}
	for _, w := range types {
		tag, ver := w.WireTag()
		if ver == 0 {
			t.Errorf("%T: version 0 is reserved", w)
		}
		if prev, dup := seen[tag]; dup {
			t.Errorf("tag %#x reused by %T and %s", tag, w, prev)
		}
		seen[tag] = reflect.TypeOf(w).String()
	}
}
