package group

import (
	"repro/internal/rpc"
	"repro/internal/transport"
)

// Binary codecs (rpc.Wire) for the multicast wire frames: sequencing
// requests, single deliveries and the batched deliver frames the
// pipelined sequencer emits. Tags live in the 0x50–0x5f block of the
// registry in internal/rpc/doc.go. All codecs are at version 1.
const (
	wireTagSequenceReq byte = 0x50 + iota
	wireTagSequenceResp
	wireTagDeliverReq
	wireTagDeliverResp
	wireTagDeliverBatchReq
	wireTagDeliverBatchResp
)

// sequenceReq

// WireTag implements rpc.Wire.
func (*sequenceReq) WireTag() (byte, byte) { return wireTagSequenceReq, 1 }

// WireSizeHint implements rpc.WireSizer.
func (q *sequenceReq) WireSizeHint() int {
	return len(q.Group) + len(q.MsgID) + len(q.Kind) + len(q.Payload) + 16*len(q.Members) + 32
}

// AppendWire implements rpc.Wire.
func (q *sequenceReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.Group)
	dst = rpc.AppendString(dst, q.MsgID)
	dst = rpc.AppendString(dst, q.Kind)
	dst = rpc.AppendBytes(dst, q.Payload)
	return rpc.AppendStrings(dst, q.Members)
}

// ParseWire implements rpc.Wire.
func (q *sequenceReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.Group = r.String()
	q.MsgID = r.String()
	q.Kind = r.String()
	q.Payload = r.Bytes()
	q.Members = r.Strings()
	return nil
}

// sequenceResp

// WireTag implements rpc.Wire.
func (*sequenceResp) WireTag() (byte, byte) { return wireTagSequenceResp, 1 }

// WireSizeHint implements rpc.WireSizer.
func (p *sequenceResp) WireSizeHint() int {
	n := 32
	for _, rep := range p.Replies {
		n += len(rep.Member) + len(rep.Payload) + len(rep.Err) + 16
	}
	for _, f := range p.Failed {
		n += len(f) + 8
	}
	return n
}

// AppendWire implements rpc.Wire.
func (p *sequenceResp) AppendWire(dst []byte) []byte {
	dst = rpc.AppendUvarint(dst, p.Seq)
	dst = rpc.AppendUvarint(dst, uint64(len(p.Replies)))
	for _, rep := range p.Replies {
		dst = rpc.AppendString(dst, string(rep.Member))
		dst = rpc.AppendBytes(dst, rep.Payload)
		dst = rpc.AppendString(dst, rep.Err)
	}
	return rpc.AppendStrings(dst, p.Failed)
}

// ParseWire implements rpc.Wire.
func (p *sequenceResp) ParseWire(_ byte, r *rpc.WireReader) error {
	p.Seq = r.Uvarint()
	n := r.Uvarint()
	if r.Err() != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		return rpc.ErrWire
	}
	if n > 0 {
		p.Replies = make([]Reply, 0, n)
		for i := uint64(0); i < n; i++ {
			p.Replies = append(p.Replies, Reply{
				Member:  transport.Addr(r.String()),
				Payload: r.Bytes(),
				Err:     r.String(),
			})
		}
	}
	p.Failed = r.Strings()
	return nil
}

// deliverReq

// WireTag implements rpc.Wire.
func (*deliverReq) WireTag() (byte, byte) { return wireTagDeliverReq, 1 }

// WireSizeHint implements rpc.WireSizer.
func (q *deliverReq) WireSizeHint() int {
	return len(q.Group) + len(q.MsgID) + len(q.Kind) + len(q.Payload) + 40
}

// AppendWire implements rpc.Wire.
func (q *deliverReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.Group)
	dst = rpc.AppendString(dst, q.MsgID)
	dst = rpc.AppendString(dst, q.Kind)
	dst = rpc.AppendBytes(dst, q.Payload)
	dst = rpc.AppendUvarint(dst, q.Seq)
	return rpc.AppendUvarint(dst, q.Stable)
}

// ParseWire implements rpc.Wire.
func (q *deliverReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.Group = r.String()
	q.MsgID = r.String()
	q.Kind = r.String()
	q.Payload = r.Bytes()
	q.Seq = r.Uvarint()
	q.Stable = r.Uvarint()
	return nil
}

// deliverResp

// WireTag implements rpc.Wire.
func (*deliverResp) WireTag() (byte, byte) { return wireTagDeliverResp, 1 }

// WireSizeHint implements rpc.WireSizer.
func (p *deliverResp) WireSizeHint() int { return len(p.Payload) + 8 }

// AppendWire implements rpc.Wire.
func (p *deliverResp) AppendWire(dst []byte) []byte { return rpc.AppendBytes(dst, p.Payload) }

// ParseWire implements rpc.Wire.
func (p *deliverResp) ParseWire(_ byte, r *rpc.WireReader) error {
	p.Payload = r.Bytes()
	return nil
}

// deliverBatchReq

// WireTag implements rpc.Wire.
func (*deliverBatchReq) WireTag() (byte, byte) { return wireTagDeliverBatchReq, 1 }

// WireSizeHint implements rpc.WireSizer.
func (q *deliverBatchReq) WireSizeHint() int {
	n := len(q.Group) + 32
	for _, it := range q.Items {
		n += len(it.MsgID) + len(it.Kind) + len(it.Payload) + 24
	}
	return n
}

// AppendWire implements rpc.Wire.
func (q *deliverBatchReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.Group)
	dst = rpc.AppendUvarint(dst, uint64(len(q.Items)))
	for _, it := range q.Items {
		dst = rpc.AppendString(dst, it.MsgID)
		dst = rpc.AppendString(dst, it.Kind)
		dst = rpc.AppendBytes(dst, it.Payload)
		dst = rpc.AppendUvarint(dst, it.Seq)
	}
	return rpc.AppendUvarint(dst, q.Stable)
}

// ParseWire implements rpc.Wire.
func (q *deliverBatchReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.Group = r.String()
	n := r.Uvarint()
	if r.Err() != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		return rpc.ErrWire
	}
	if n > 0 {
		q.Items = make([]batchItem, 0, n)
		for i := uint64(0); i < n; i++ {
			q.Items = append(q.Items, batchItem{
				MsgID:   r.String(),
				Kind:    r.String(),
				Payload: r.Bytes(),
				Seq:     r.Uvarint(),
			})
		}
	}
	q.Stable = r.Uvarint()
	return nil
}

// deliverBatchResp

// WireTag implements rpc.Wire.
func (*deliverBatchResp) WireTag() (byte, byte) { return wireTagDeliverBatchResp, 1 }

// WireSizeHint implements rpc.WireSizer.
func (p *deliverBatchResp) WireSizeHint() int {
	n := 16
	for _, res := range p.Results {
		n += len(res.Payload) + len(res.Err) + 16
	}
	return n
}

// AppendWire implements rpc.Wire.
func (p *deliverBatchResp) AppendWire(dst []byte) []byte {
	dst = rpc.AppendUvarint(dst, uint64(len(p.Results)))
	for _, res := range p.Results {
		dst = rpc.AppendBytes(dst, res.Payload)
		dst = rpc.AppendString(dst, res.Err)
	}
	return dst
}

// ParseWire implements rpc.Wire.
func (p *deliverBatchResp) ParseWire(_ byte, r *rpc.WireReader) error {
	n := r.Uvarint()
	if r.Err() != nil || n == 0 {
		return r.Err()
	}
	if n > uint64(r.Remaining()) {
		return rpc.ErrWire
	}
	p.Results = make([]batchResult, 0, n)
	for i := uint64(0); i < n; i++ {
		p.Results = append(p.Results, batchResult{Payload: r.Bytes(), Err: r.String()})
	}
	return nil
}
