package group

import (
	"context"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/transport"
)

// mustEncodeBatch builds a valid wire frame for the seed corpus.
func mustEncodeBatch(f *testing.F, req deliverBatchReq) []byte {
	f.Helper()
	raw, err := rpc.Encode(&req)
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzDeliverBatchDecode hardens the batched-delivery decode path: the
// gob decode of a deliverBatchReq must never panic on arbitrary bytes,
// and any frame that decodes is fed through a real member's
// handleDeliverBatch (with a short deadline so hold-back on sequence gaps
// cannot stall the fuzzer) — the handler must survive arbitrary seq/dedup
// shapes without panicking.
func FuzzDeliverBatchDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add(mustEncodeBatch(f, deliverBatchReq{Group: "g", Items: []batchItem{
		{MsgID: "m1", Kind: "k", Payload: []byte("p"), Seq: 1},
		{MsgID: "m2", Kind: "k", Payload: []byte("q"), Seq: 2},
	}, Stable: 1}))
	f.Add(mustEncodeBatch(f, deliverBatchReq{Group: "g", Items: []batchItem{
		{MsgID: "dup", Seq: 5}, {MsgID: "dup", Seq: 5}, {MsgID: "gap", Seq: 9},
	}}))
	f.Add(mustEncodeBatch(f, deliverBatchReq{Group: "missing", Stable: ^uint64(0)}))

	net := transport.NewMem(transport.MemOptions{}, nil)
	srv := rpc.NewServer()
	h := NewHost(srv, rpc.Client{Net: net, From: "member"})
	h.Join("g", func(ctx context.Context, msg Delivered) ([]byte, error) {
		return msg.Payload, nil
	})

	f.Fuzz(func(t *testing.T, raw []byte) {
		var req deliverBatchReq
		if err := rpc.Decode(raw, &req); err != nil {
			return // malformed input correctly rejected
		}
		// Re-encode: anything we accepted must be encodable again.
		if _, err := rpc.Encode(&req); err != nil {
			t.Fatalf("decoded batch frame not re-encodable: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		defer cancel()
		resp, err := h.handleDeliverBatch(ctx, "seq", req)
		if err != nil {
			return // unknown group, gap hold-back timeout, … all fine
		}
		if len(resp.Results) != len(req.Items) {
			t.Fatalf("results = %d for %d items", len(resp.Results), len(req.Items))
		}
	})
}
