package group

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/transport"
)

// member is a test replica: it appends every delivered message to a log.
type member struct {
	mu  sync.Mutex
	log []string
}

func (m *member) apply(_ context.Context, msg Delivered) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.log = append(m.log, msg.Kind+":"+string(msg.Payload))
	return []byte("ack-" + msg.Kind), nil
}

func (m *member) history() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return strings.Join(m.log, ",")
}

type fixture struct {
	cluster *sim.Cluster
	members map[transport.Addr]*member
	hosts   map[transport.Addr]*Host
	grp     Group
}

func newFixture(t *testing.T, names ...transport.Addr) *fixture {
	t.Helper()
	return newFixtureOn(t, sim.NewCluster(transport.MemOptions{}), names...)
}

func newFixtureOn(t *testing.T, cluster *sim.Cluster, names ...transport.Addr) *fixture {
	t.Helper()
	f := &fixture{
		cluster: cluster,
		members: make(map[transport.Addr]*member),
		hosts:   make(map[transport.Addr]*Host),
		grp:     Group{ID: "G", Members: names},
	}
	for _, name := range names {
		n := f.cluster.Add(name)
		h := NewHost(n.Server(), n.Client())
		m := &member{}
		h.Join("G", m.apply)
		f.members[name] = m
		f.hosts[name] = h
	}
	// A separate client node.
	f.cluster.Add("client")
	return f
}

func (f *fixture) client() rpc.Client { return f.cluster.Node("client").Client() }

func TestMulticastDeliversToAllInOrder(t *testing.T) {
	f := newFixture(t, "a1", "a2", "a3")
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		res, err := Multicast(ctx, f.client(), f.grp, "op", []byte{byte('0' + i)})
		if err != nil {
			t.Fatalf("multicast %d: %v", i, err)
		}
		if res.Seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", res.Seq, i+1)
		}
		if len(res.Replies) != 3 || len(res.Failed) != 0 {
			t.Fatalf("replies=%d failed=%v", len(res.Replies), res.Failed)
		}
	}
	want := f.members["a1"].history()
	if want == "" {
		t.Fatal("no deliveries")
	}
	for name, m := range f.members {
		if got := m.history(); got != want {
			t.Fatalf("member %s history %q != %q", name, got, want)
		}
	}
}

func TestMulticastReportsCrashedMember(t *testing.T) {
	f := newFixture(t, "a1", "a2", "a3")
	f.cluster.Node("a3").Crash()
	res, err := Multicast(context.Background(), f.client(), f.grp, "op", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != "a3" {
		t.Fatalf("failed = %v, want [a3]", res.Failed)
	}
	if len(res.Replies) != 2 {
		t.Fatalf("replies = %d", len(res.Replies))
	}
}

func TestMulticastSequencerFailover(t *testing.T) {
	f := newFixture(t, "a1", "a2", "a3")
	// The deterministic sequencer (first member) is down: callers fail
	// over to a2, and surviving members still agree.
	f.cluster.Node("a1").Crash()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		res, err := Multicast(ctx, f.client(), f.grp, "op", []byte{byte('a' + i)})
		if err != nil {
			t.Fatalf("multicast: %v", err)
		}
		if len(res.Failed) != 1 || res.Failed[0] != "a1" {
			t.Fatalf("failed = %v", res.Failed)
		}
	}
	if f.members["a2"].history() != f.members["a3"].history() {
		t.Fatalf("divergence after failover: %q vs %q",
			f.members["a2"].history(), f.members["a3"].history())
	}
}

func TestMulticastAllMembersDown(t *testing.T) {
	f := newFixture(t, "a1", "a2")
	f.cluster.Node("a1").Crash()
	f.cluster.Node("a2").Crash()
	_, err := Multicast(context.Background(), f.client(), f.grp, "op", nil)
	if err == nil {
		t.Fatal("expected error with no reachable sequencer")
	}
}

func TestMulticastRetryDeduplicates(t *testing.T) {
	f := newFixture(t, "a1", "a2")
	ctx := context.Background()
	msgID := "stable-id/1"
	first, err := MulticastWithID(ctx, f.client(), f.grp, "op", []byte("x"), msgID)
	if err != nil {
		t.Fatal(err)
	}
	// Retry of the same logical message: members must not apply twice.
	retry, err := MulticastWithID(ctx, f.client(), f.grp, "op", []byte("x"), msgID)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.members["a1"].history(); got != "op:x" {
		t.Fatalf("a1 history = %q, want single delivery", got)
	}
	if got := f.members["a2"].history(); got != "op:x" {
		t.Fatalf("a2 history = %q, want single delivery", got)
	}
	// The retried multicast must return the complete fan-out outcome —
	// the same seq and every member's cached reply, not a bare Seq.
	if retry.Seq != first.Seq {
		t.Fatalf("retry seq = %d, want %d", retry.Seq, first.Seq)
	}
	if len(retry.Replies) != 2 || len(retry.Failed) != 0 {
		t.Fatalf("retry replies=%d failed=%v, want full replies", len(retry.Replies), retry.Failed)
	}
	for _, r := range retry.Replies {
		if r.Err != "" || string(r.Payload) != "ack-op" {
			t.Fatalf("retry reply from %s = (%q, %q), want cached ack", r.Member, r.Payload, r.Err)
		}
	}
}

func TestMulticastRetryAfterSequencerCrashReturnsFullReplies(t *testing.T) {
	// The first multicast succeeds through sequencer a1; a1 then crashes,
	// and the retry fails over to a2. a2 only ever saw the message as a
	// receiver, yet the retry must still return the full fan-out outcome
	// under the original sequence number (a2 re-relays; survivors answer
	// from their dedup caches).
	f := newFixture(t, "a1", "a2", "a3")
	ctx := context.Background()
	msgID := "stable-id/2"
	first, err := MulticastWithID(ctx, f.client(), f.grp, "op", []byte("x"), msgID)
	if err != nil {
		t.Fatal(err)
	}
	f.cluster.Node("a1").Crash()
	retry, err := MulticastWithID(ctx, f.client(), f.grp, "op", []byte("x"), msgID)
	if err != nil {
		t.Fatal(err)
	}
	if retry.Seq != first.Seq {
		t.Fatalf("retry seq = %d, want original %d", retry.Seq, first.Seq)
	}
	if len(retry.Replies) != 2 {
		t.Fatalf("retry replies = %d, want the 2 surviving members", len(retry.Replies))
	}
	for _, r := range retry.Replies {
		if r.Err != "" || string(r.Payload) != "ack-op" {
			t.Fatalf("retry reply from %s = (%q, %q), want cached ack", r.Member, r.Payload, r.Err)
		}
	}
	if got := f.members["a2"].history(); got != "op:x" {
		t.Fatalf("a2 applied twice: history %q", got)
	}
}

func TestConcurrentMulticastsSameTotalOrderEverywhere(t *testing.T) {
	f := newFixture(t, "a1", "a2", "a3")
	var wg sync.WaitGroup
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := Multicast(ctx, f.client(), f.grp, "op", []byte(fmt.Sprintf("%d", i))); err != nil {
				t.Errorf("multicast %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	h1 := f.members["a1"].history()
	for _, name := range []transport.Addr{"a2", "a3"} {
		if got := f.members[name].history(); got != h1 {
			t.Fatalf("total order violated:\n a1: %s\n %s: %s", h1, name, got)
		}
	}
	if got := len(f.members["a1"].log); got != 10 {
		t.Fatalf("deliveries = %d, want 10", got)
	}
}

func TestConcurrentMulticastsFiveMembersConvergeUnderParallelFanout(t *testing.T) {
	// The concurrent-fan-out invariant: with parallel delivery at the
	// sequencer, many concurrent callers on a 5-member group must still
	// produce identical apply histories at every member (total order is
	// carried by the assigned seq, not by delivery timing). Run with
	// -race to check the fan-out's memory discipline too.
	f := newFixture(t, "b1", "b2", "b3", "b4", "b5")
	ctx := context.Background()
	const callers = 16
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Multicast(ctx, f.client(), f.grp, "op", []byte(fmt.Sprintf("%d", i)))
			if err != nil {
				t.Errorf("multicast %d: %v", i, err)
				return
			}
			if len(res.Replies) != 5 || len(res.Failed) != 0 {
				t.Errorf("multicast %d: replies=%d failed=%v", i, len(res.Replies), res.Failed)
			}
		}(i)
	}
	wg.Wait()
	h1 := f.members["b1"].history()
	if h1 == "" {
		t.Fatal("no deliveries")
	}
	for _, name := range []transport.Addr{"b2", "b3", "b4", "b5"} {
		if got := f.members[name].history(); got != h1 {
			t.Fatalf("total order violated:\n b1: %s\n %s: %s", h1, name, got)
		}
	}
	if got := len(f.members["b1"].log); got != callers {
		t.Fatalf("deliveries = %d, want %d", got, callers)
	}
}

func TestFanOutRepliesSortedByMember(t *testing.T) {
	// Parallel fan-out must not make reply order a race: replies come
	// back sorted by member address regardless of completion order.
	f := newFixture(t, "c3", "c1", "c2")
	res, err := Multicast(context.Background(), f.client(), f.grp, "op", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	want := []transport.Addr{"c1", "c2", "c3"}
	if len(res.Replies) != len(want) {
		t.Fatalf("replies = %d", len(res.Replies))
	}
	for i, r := range res.Replies {
		if r.Member != want[i] {
			t.Fatalf("reply %d from %s, want %s", i, r.Member, want[i])
		}
	}
}

func TestNaiveMulticastDivergesOnReplyLoss(t *testing.T) {
	// Figure 1 in miniature: the naive fan-out loses the reply from a2;
	// the sender believes a2 failed while a2 actually applied the message.
	// A subsequent compensating action at the "failed" member only (as a
	// real application would do) diverges the replicas. The reliable
	// multicast cannot produce this state: the sender's single sequencer
	// call either orders the message for everyone or no one.
	f := newFixture(t, "a1", "a2")
	f.cluster.Faults().DropReplies(1, transport.Between("client", "a2"))
	res := NaiveMulticast(context.Background(), f.client(), f.grp, "op", []byte("x"))
	// The sender cannot distinguish this from a crashed member; but the
	// member state shows the message WAS applied.
	sawA2 := false
	for _, r := range res.Replies {
		if r.Member == "a2" && r.Err == "" {
			sawA2 = true
		}
	}
	if sawA2 {
		t.Fatal("sender should not have received a2's reply")
	}
	if got := f.members["a2"].history(); got != "op:x" {
		t.Fatalf("a2 should have applied despite lost reply, history=%q", got)
	}
	// Histories are equal only by luck of this single message; the
	// sender's *knowledge* has diverged from reality, which is the seed of
	// the Figure 1 anomaly. The E1 experiment quantifies the resulting
	// state divergence.
}

func TestDeliverToNonMemberRefused(t *testing.T) {
	f := newFixture(t, "a1")
	// The client node has a Host? No — invoking Deliver at a node that
	// never joined must yield not-found.
	n := f.cluster.Node("client")
	NewHost(n.Server(), n.Client()) // host exists but no membership
	cli := f.cluster.Node("a1").Client()
	_, err := rpc.Invoke[deliverReq, deliverResp](context.Background(), cli, "client", ServiceName, MethodDeliver,
		deliverReq{Group: "G", MsgID: "m", Kind: "k", Seq: 1})
	if rpc.CodeOf(err) != rpc.CodeNotFound {
		t.Fatalf("err = %v, want not-found", err)
	}
}

func TestLeaveStopsDelivery(t *testing.T) {
	f := newFixture(t, "a1", "a2")
	f.hosts["a2"].Leave("G")
	res, err := Multicast(context.Background(), f.client(), f.grp, "op", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	// a2 replies with an application error (not a failure) — it is
	// reachable but not a member.
	var a2Err string
	for _, r := range res.Replies {
		if r.Member == "a2" {
			a2Err = r.Err
		}
	}
	if a2Err == "" {
		t.Fatalf("expected a2 to refuse delivery, res=%+v", res)
	}
	if f.members["a2"].history() != "" {
		t.Fatal("a2 applied after leaving")
	}
}

func TestHoldbackDeliversInSeqOrder(t *testing.T) {
	// Drive Deliver directly with out-of-order sequence numbers: seq 2
	// must wait until seq 1 has been applied.
	f := newFixture(t, "a1")
	cli := f.client()
	ctx := context.Background()

	done2 := make(chan error, 1)
	go func() {
		_, err := rpc.Invoke[deliverReq, deliverResp](ctx, cli, "a1", ServiceName, MethodDeliver,
			deliverReq{Group: "G", MsgID: "m2", Kind: "op", Payload: []byte("second"), Seq: 2})
		done2 <- err
	}()
	// seq 2 is held back.
	select {
	case err := <-done2:
		t.Fatalf("seq 2 delivered before seq 1 (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := rpc.Invoke[deliverReq, deliverResp](ctx, cli, "a1", ServiceName, MethodDeliver,
		deliverReq{Group: "G", MsgID: "m1", Kind: "op", Payload: []byte("first"), Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done2:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("held-back message never delivered")
	}
	if got := f.members["a1"].history(); got != "op:first,op:second" {
		t.Fatalf("history = %q", got)
	}
}

func TestHoldbackRespectsContext(t *testing.T) {
	f := newFixture(t, "a1")
	cli := f.client()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := rpc.Invoke[deliverReq, deliverResp](ctx, cli, "a1", ServiceName, MethodDeliver,
		deliverReq{Group: "G", MsgID: "gap", Kind: "op", Seq: 5})
	if err == nil {
		t.Fatal("gapped delivery should fail when the context expires")
	}
}

func TestDeliveredCounter(t *testing.T) {
	f := newFixture(t, "a1", "a2")
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := Multicast(ctx, f.client(), f.grp, "op", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.hosts["a1"].Delivered("G"); got != 3 {
		t.Fatalf("delivered = %d, want 3", got)
	}
	if got := f.hosts["a1"].Delivered("nope"); got != 0 {
		t.Fatalf("unknown group delivered = %d", got)
	}
}

func TestBatchedSequencerOrdersMultiplePerRound(t *testing.T) {
	// Pipelined load: with a per-leg latency, concurrent multicasts arrive
	// while the first fan-out is on the wire, so the sequencer must batch —
	// more than one message ordered per round — while every member still
	// applies the identical history exactly once (the gap/hold-back
	// invariant over batched frames).
	cluster := sim.NewCluster(transport.MemOptions{BaseLatency: 500 * time.Microsecond})
	names := []transport.Addr{"m1", "m2", "m3"}
	members := make(map[transport.Addr]*member)
	var seqHost *Host
	for _, name := range names {
		n := cluster.Add(name)
		h := NewHost(n.Server(), n.Client())
		m := &member{}
		h.Join("G", m.apply)
		members[name] = m
		if name == "m1" {
			seqHost = h
		}
	}
	cluster.Add("client")
	grp := Group{ID: "G", Members: names}
	cli := cluster.Node("client").Client()

	const callers = 24
	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := Multicast(ctx, cli, grp, "op", []byte(fmt.Sprintf("%d", i)))
			if err != nil {
				t.Errorf("multicast %d: %v", i, err)
				return
			}
			if len(res.Replies) != 3 || len(res.Failed) != 0 {
				t.Errorf("multicast %d: replies=%d failed=%v", i, len(res.Replies), res.Failed)
			}
		}(i)
	}
	wg.Wait()

	h1 := members["m1"].history()
	for _, name := range names[1:] {
		if got := members[name].history(); got != h1 {
			t.Fatalf("total order violated:\n m1: %s\n %s: %s", h1, name, got)
		}
	}
	if got := len(members["m1"].log); got != callers {
		t.Fatalf("deliveries = %d, want %d (once each)", got, callers)
	}
	rounds, msgs := seqHost.SequencerStats()
	if msgs != callers {
		t.Fatalf("ordered messages = %d, want %d", msgs, callers)
	}
	if rounds >= msgs {
		t.Fatalf("rounds = %d for %d messages: sequencer never batched", rounds, msgs)
	}
	t.Logf("sequencer: %d messages in %d rounds (%.1f msgs/round)", msgs, rounds, float64(msgs)/float64(rounds))
}

func TestDedupStateBoundedUnderSustainedTraffic(t *testing.T) {
	// The per-msgID dedup cache must not grow without limit: once every
	// member has acknowledged delivery past a message's seq (plus the
	// retry grace margin), its entry is evicted via the stability
	// watermark shipped with later deliveries.
	f := newFixture(t, "a1", "a2", "a3")
	ctx := context.Background()
	const msgs = 4 * dedupRetention
	for i := 0; i < msgs; i++ {
		if _, err := Multicast(ctx, f.client(), f.grp, "op", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for name, h := range f.hosts {
		h.mu.Lock()
		m := h.groups["G"]
		h.mu.Unlock()
		m.mu.Lock()
		size := len(m.seen)
		m.mu.Unlock()
		if size > dedupRetention+4 {
			t.Fatalf("%s dedup cache holds %d of %d entries: unbounded growth", name, size, msgs)
		}
	}
}

func TestBatchedDeliveryHoldsBackGaps(t *testing.T) {
	// A batch frame whose predecessor has not arrived yet must hold back
	// until the gap is filled, then apply the whole frame in order.
	f := newFixture(t, "a1")
	cli := f.client()
	ctx := context.Background()

	done := make(chan error, 1)
	go func() {
		_, err := rpc.Invoke[deliverBatchReq, deliverBatchResp](ctx, cli, "a1", ServiceName, MethodDeliverBatch,
			deliverBatchReq{Group: "G", Items: []batchItem{
				{MsgID: "m2", Kind: "op", Payload: []byte("second"), Seq: 2},
				{MsgID: "m3", Kind: "op", Payload: []byte("third"), Seq: 3},
			}})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("batch delivered before seq 1 (err=%v)", err)
	case <-time.After(20 * time.Millisecond):
	}
	if _, err := rpc.Invoke[deliverReq, deliverResp](ctx, cli, "a1", ServiceName, MethodDeliver,
		deliverReq{Group: "G", MsgID: "m1", Kind: "op", Payload: []byte("first"), Seq: 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("held-back batch never delivered")
	}
	if got := f.members["a1"].history(); got != "op:first,op:second,op:third" {
		t.Fatalf("history = %q", got)
	}
}

func TestBatchedDeliveryDeduplicates(t *testing.T) {
	// An item already seen (retry folded into a batch) returns its cached
	// reply and is not applied twice; fresh items in the same frame apply.
	f := newFixture(t, "a1")
	cli := f.client()
	ctx := context.Background()
	if _, err := rpc.Invoke[deliverReq, deliverResp](ctx, cli, "a1", ServiceName, MethodDeliver,
		deliverReq{Group: "G", MsgID: "m1", Kind: "op", Payload: []byte("x"), Seq: 1}); err != nil {
		t.Fatal(err)
	}
	resp, err := rpc.Invoke[deliverBatchReq, deliverBatchResp](ctx, cli, "a1", ServiceName, MethodDeliverBatch,
		deliverBatchReq{Group: "G", Items: []batchItem{
			{MsgID: "m1", Kind: "op", Payload: []byte("x"), Seq: 1},
			{MsgID: "m2", Kind: "op", Payload: []byte("y"), Seq: 2},
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || string(resp.Results[0].Payload) != "ack-op" || resp.Results[0].Err != "" {
		t.Fatalf("results = %+v, want cached reply for m1", resp.Results)
	}
	if got := f.members["a1"].history(); got != "op:x,op:y" {
		t.Fatalf("history = %q (m1 must apply once)", got)
	}
}
