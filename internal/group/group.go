// Package group provides group communication for replicated objects.
//
// The paper (§2.3(2)) observes that communication *between replica groups*
// requires "reliable distribution and ordering guarantees not associated
// with non-replicated systems": reliability ensures all correctly
// functioning members of a group receive messages intended for the group,
// ordering ensures the messages are received in an identical order at each
// functioning member — otherwise replica states can diverge, as in the
// paper's Figure 1 where a reply reaches replica A1 but not A2.
//
// Two disciplines are implemented:
//
//   - Multicast — reliable, totally ordered: the sender hands the message
//     to a deterministic sequencer member, which assigns the next sequence
//     number and relays to every member. The sender makes a single call, so
//     a sender failure cannot cause partial delivery; a sequencer failure
//     is handled by retrying through the next member with the same message
//     ID, which receivers deduplicate.
//   - NaiveMulticast — the baseline that reproduces the Figure 1 anomaly:
//     the sender fans out to the members itself, so a failure (of the
//     sender, or of reply delivery) midway leaves the group inconsistent.
//
// Sequence numbers are per group. Receivers deliver strictly in sequence
// order, holding back out-of-order arrivals.
package group

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/conc"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/uid"
)

// ServiceName is the RPC service name for group communication endpoints.
const ServiceName = "group"

// RPC method names.
const (
	// MethodSequence is invoked on the sequencer member to order and relay
	// a multicast.
	MethodSequence = "Sequence"
	// MethodDeliver is invoked on each member to deliver one message.
	MethodDeliver = "Deliver"
	// MethodDeliverBatch delivers several sequenced messages in one frame —
	// the sequencer's batched ordering under pipelined load.
	MethodDeliverBatch = "DeliverBatch"
)

// Group is a (caller-held) view of a replica group: an identifier plus the
// ordered member list. The first functioning member acts as sequencer.
type Group struct {
	ID      string
	Members []transport.Addr
}

// Delivered is a message as seen by a member's apply callback.
type Delivered struct {
	Group   string
	MsgID   string
	Kind    string
	Payload []byte
	// Seq is the total-order position (0 for naive, unordered delivery).
	Seq uint64
}

// Apply is a member's delivery callback; its reply is returned to the
// multicast caller.
type Apply func(ctx context.Context, msg Delivered) ([]byte, error)

// Reply is one member's response to a multicast.
type Reply struct {
	Member  transport.Addr
	Payload []byte
	Err     string
}

// Result summarises a multicast.
type Result struct {
	// Seq is the assigned sequence number (0 for naive multicast).
	Seq uint64
	// Replies holds one entry per member that received the message.
	Replies []Reply
	// Failed lists members that could not be reached; per the paper's
	// commit protocol these are the nodes to exclude from the view.
	Failed []transport.Addr
}

// sequenceReq is the wire form of a sequencing request.
type sequenceReq struct {
	Group   string
	MsgID   string
	Kind    string
	Payload []byte
	Members []string
}

// deliverReq is the wire form of a delivery.
type deliverReq struct {
	Group   string
	MsgID   string
	Kind    string
	Payload []byte
	Seq     uint64
	// Stable is the sequencer's stability watermark: every current member
	// has acknowledged delivery up to this sequence number, so receivers
	// may evict dedup state at or below it.
	Stable uint64
}

// deliverResp carries a member's reply.
type deliverResp struct{ Payload []byte }

// batchItem is one sequenced message inside a batched deliver frame.
type batchItem struct {
	MsgID   string
	Kind    string
	Payload []byte
	Seq     uint64
}

// deliverBatchReq is the wire form of a batched delivery: all messages
// the sequencer ordered in one round, sorted by ascending Seq.
type deliverBatchReq struct {
	Group  string
	Items  []batchItem
	Stable uint64
}

// batchResult is one member's per-message outcome within a batch.
type batchResult struct {
	Payload []byte
	Err     string
}

// deliverBatchResp carries the member's reply for every item, in item
// order.
type deliverBatchResp struct {
	Results []batchResult
}

// sequenceResp carries the fan-out outcome back to the caller.
type sequenceResp struct {
	Seq     uint64
	Replies []Reply
	Failed  []string
}

// Host manages a node's group memberships: per-group apply callbacks,
// delivery ordering, deduplication, and the sequencer role.
type Host struct {
	client rpc.Client
	msgGen *uid.Generator

	// rounds counts sequencer fan-out rounds run by this host; orderedMsgs
	// counts the messages those rounds carried. msgs/rounds > 1 means the
	// batcher is amortising legs under pipelined load.
	rounds      atomic.Uint64
	orderedMsgs atomic.Uint64

	mu     sync.Mutex
	groups map[string]*membership
}

// SequencerStats reports how many fan-out rounds this host has run as a
// sequencer and how many messages they carried in total. Under pipelined
// load messages exceed rounds: requests that arrive while a fan-out is in
// flight are ordered and delivered together in the next round.
func (h *Host) SequencerStats() (rounds, messages uint64) {
	return h.rounds.Load(), h.orderedMsgs.Load()
}

// seenEntry caches one delivered message: the reply returned to the
// relaying sequencer and the sequence number the message was assigned, so
// a fail-over sequencer can re-relay under the original number.
type seenEntry struct {
	reply []byte
	seq   uint64
}

// pendingSeq is one sequencing request waiting for a fan-out round. The
// round leader fills resp/err and closes done. A queued waiter may
// instead be elected the next round's leader (lead closed, elected set
// under the membership mutex); a waiter whose context expires marks
// itself abandoned so it is never elected.
type pendingSeq struct {
	req  sequenceReq
	done chan struct{}
	lead chan struct{}
	resp sequenceResp
	err  error

	// elected and abandoned are guarded by the membership mutex.
	elected   bool
	abandoned bool
}

type membership struct {
	apply Apply

	mu        sync.Mutex
	nextSeq   uint64 // sequencer counter: next seq to assign is nextSeq+1
	delivered uint64 // receiver: highest seq applied
	seen      map[string]seenEntry
	applied   chan struct{} // closed & renewed after each in-order apply
	// relaying marks a fan-out round in flight; sequence requests arriving
	// meanwhile queue up and are ordered+delivered together in the next
	// round by the current leader (batched sequencer ordering).
	relaying bool
	queue    []*pendingSeq
	// acked tracks, per member, the highest sequence number that member
	// has acknowledged delivering (sequencer-role state). The minimum over
	// the current membership is the stability watermark shipped with every
	// delivery so receivers can evict dedup entries.
	acked map[string]uint64
	// stable is the receiver-side eviction watermark already applied to
	// the seen map.
	stable uint64
}

// stableLocked returns the stability watermark for the given member
// list: the highest seq every one of them has acknowledged. m.mu held.
func (m *membership) stableLocked(members []string) uint64 {
	low := ^uint64(0)
	for _, mem := range members {
		a, ok := m.acked[mem]
		if !ok {
			return 0
		}
		if a < low {
			low = a
		}
	}
	if low == ^uint64(0) {
		return 0
	}
	return low
}

// dedupRetention is how many sequence numbers of already-stable dedup
// entries each member retains beyond the stability watermark. Stability
// says every member acknowledged delivery — but the *caller's* reply may
// still have been lost, and its retry (typically a few rounds later)
// must still find the entry or the message would be re-sequenced and
// applied twice. The margin buys the retry that time while keeping the
// cache bounded at roughly the in-flight window plus the margin.
const dedupRetention = 16

// evictLocked applies a stability watermark: dedup entries more than
// dedupRetention below it are dropped — every member has acknowledged
// delivery past them and the retry grace window has passed. m.mu held.
//
// This is the bounded-memory trade-off: a retry that arrives after its
// message has aged out of the horizon would be re-sequenced as a new
// message. Callers retry within a few rounds, so the horizon closes
// only behind them.
func (m *membership) evictLocked(stable uint64) {
	if stable <= m.stable {
		return
	}
	m.stable = stable
	if stable <= dedupRetention {
		return
	}
	cutoff := stable - dedupRetention
	for id, se := range m.seen {
		if se.seq < cutoff {
			delete(m.seen, id)
		}
	}
}

// NewHost creates a Host for a node and registers its RPC handlers on srv.
// client must originate from the node's own address (used for relaying).
func NewHost(srv *rpc.Server, client rpc.Client) *Host {
	h := &Host{
		client: client,
		msgGen: uid.NewGenerator(string(client.From)+"/mc", 1),
		groups: make(map[string]*membership),
	}
	srv.Handle(ServiceName, MethodDeliver, rpc.Method(h.handleDeliver))
	srv.Handle(ServiceName, MethodDeliverBatch, rpc.Method(h.handleDeliverBatch))
	srv.Handle(ServiceName, MethodSequence, rpc.Method(h.handleSequence))
	return h
}

// Join registers the node as a member of groupID with the given apply
// callback, replacing any previous membership.
func (h *Host) Join(groupID string, apply Apply) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.groups[groupID] = &membership{
		apply:   apply,
		seen:    make(map[string]seenEntry),
		applied: make(chan struct{}),
		acked:   make(map[string]uint64),
	}
}

// Leave removes the node from groupID.
func (h *Host) Leave(groupID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.groups, groupID)
}

// Delivered returns the highest sequence number applied for groupID.
func (h *Host) Delivered(groupID string) uint64 {
	h.mu.Lock()
	m := h.groups[groupID]
	h.mu.Unlock()
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered
}

func (h *Host) lookup(groupID string) (*membership, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.groups[groupID]
	if !ok {
		return nil, rpc.Errorf(rpc.CodeNotFound, "not a member of group %q", groupID)
	}
	return m, nil
}

// handleDeliver applies one message respecting total order and dedup.
func (h *Host) handleDeliver(ctx context.Context, from transport.Addr, req deliverReq) (deliverResp, error) {
	m, err := h.lookup(req.Group)
	if err != nil {
		return deliverResp{}, err
	}
	msg := Delivered{Group: req.Group, MsgID: req.MsgID, Kind: req.Kind, Payload: req.Payload, Seq: req.Seq}

	// Naive (unsequenced) messages apply immediately, no ordering or dedup.
	if req.Seq == 0 {
		out, err := m.apply(ctx, msg)
		return deliverResp{Payload: out}, err
	}
	return h.applyOrdered(ctx, m, msg, req.Stable)
}

// handleDeliverBatch applies every message of one sequencer round, in
// ascending sequence order. Per-message outcomes are reported in item
// order; the whole call fails only when the member itself cannot proceed
// (not a group member, context expired holding back a gap).
func (h *Host) handleDeliverBatch(ctx context.Context, from transport.Addr, req deliverBatchReq) (deliverBatchResp, error) {
	m, err := h.lookup(req.Group)
	if err != nil {
		return deliverBatchResp{}, err
	}
	resp := deliverBatchResp{Results: make([]batchResult, len(req.Items))}
	for i, it := range req.Items {
		msg := Delivered{Group: req.Group, MsgID: it.MsgID, Kind: it.Kind, Payload: it.Payload, Seq: it.Seq}
		dr, aerr := h.applyOrdered(ctx, m, msg, req.Stable)
		if aerr != nil {
			if ctx.Err() != nil {
				// The member is stuck (gap hold-back timed out): fail the
				// whole call so the sequencer counts it unreachable.
				return deliverBatchResp{}, aerr
			}
			resp.Results[i] = batchResult{Err: aerr.Error()}
			continue
		}
		resp.Results[i] = batchResult{Payload: dr.Payload}
	}
	return resp, nil
}

// applyOrdered applies one sequenced message respecting total order and
// dedup, and applies the stability watermark to the dedup state.
func (h *Host) applyOrdered(ctx context.Context, m *membership, msg Delivered, stable uint64) (deliverResp, error) {
	for {
		m.mu.Lock()
		m.evictLocked(stable)
		if prev, ok := m.seen[msg.MsgID]; ok {
			// Duplicate (sequencer retry): return the cached reply.
			m.mu.Unlock()
			return deliverResp{Payload: prev.reply}, nil
		}
		if msg.Seq <= m.delivered {
			// Superseded sequence number from a failed-over sequencer;
			// deliver anyway (dedup above did not match, so it is new) to
			// preserve reliability, but in arrival order at this point.
			out, aerr := m.apply(ctx, msg)
			if aerr == nil {
				m.seen[msg.MsgID] = seenEntry{reply: out, seq: msg.Seq}
			}
			m.mu.Unlock()
			return deliverResp{Payload: out}, aerr
		}
		if msg.Seq == m.delivered+1 {
			out, aerr := m.apply(ctx, msg)
			if aerr == nil {
				m.seen[msg.MsgID] = seenEntry{reply: out, seq: msg.Seq}
			}
			m.delivered = msg.Seq
			close(m.applied)
			m.applied = make(chan struct{})
			m.mu.Unlock()
			return deliverResp{Payload: out}, aerr
		}
		// Gap: hold back until the predecessor is applied.
		wait := m.applied
		m.mu.Unlock()
		select {
		case <-ctx.Done():
			return deliverResp{}, ctx.Err()
		case <-wait:
		}
	}
}

// handleSequence runs on the sequencer member. The first request to
// arrive while no fan-out is in flight becomes the round leader; requests
// arriving while the leader's round is on the wire queue up, and the
// leader orders and delivers them together as one batched frame when the
// round completes — so the sequencer orders more than one message per
// round under pipelined load instead of serialising one round trip per
// message.
func (h *Host) handleSequence(ctx context.Context, from transport.Addr, req sequenceReq) (sequenceResp, error) {
	m, err := h.lookup(req.Group)
	if err != nil {
		return sequenceResp{}, err
	}
	m.mu.Lock()
	// Dedup retried sequencing requests by MsgID: this host already
	// delivered the message, so it was already sequenced. Re-relay under
	// the original sequence number instead of answering with a bare Seq —
	// members that saw it return their cached replies (so the retrying
	// caller still receives the full fan-out outcome), and any member the
	// first fan-out missed is repaired.
	if prev, ok := m.seen[req.MsgID]; ok {
		stable := m.stableLocked(req.Members)
		m.mu.Unlock()
		h.rounds.Add(1)
		h.orderedMsgs.Add(1)
		return h.fanOut(ctx, m, req, prev.seq, stable)
	}
	p := &pendingSeq{req: req, done: make(chan struct{}), lead: make(chan struct{})}
	m.queue = append(m.queue, p)
	if m.relaying {
		// A round is in flight: its leader will either deliver this message
		// with the next batch or elect this caller to lead that batch.
		m.mu.Unlock()
		select {
		case <-p.done:
			return p.resp, p.err
		case <-p.lead:
			h.drain(ctx, m)
			<-p.done
			return p.resp, p.err
		case <-ctx.Done():
			m.mu.Lock()
			elected := p.elected
			p.abandoned = true
			m.mu.Unlock()
			if elected {
				// Lost the race with our election. Serving the round under
				// our dead context would assign sequence numbers to live
				// callers' messages and then fail every delivery, leaving a
				// hole in the sequence stream — so hand leadership to a
				// live waiter instead, and only if none exists serve the
				// remaining (all-abandoned) entries under a detached
				// context so their assigned numbers really get delivered.
				if !h.handOff(m) {
					h.drain(context.WithoutCancel(ctx), m)
				}
				<-p.done
				return p.resp, p.err
			}
			return sequenceResp{}, ctx.Err()
		}
	}
	m.relaying = true
	m.mu.Unlock()

	h.drain(ctx, m)
	<-p.done
	return p.resp, p.err
}

// drain runs fan-out rounds; the caller must hold leadership (m.relaying
// set, or its lead channel closed). Each round snapshots the queue,
// assigns a contiguous sequence range to the new messages (retried ones
// keep their original numbers), and relays them as one frame. After its
// round — the one carrying its own message — the leader hands the
// remaining queue to an elected successor (a live queued waiter) rather
// than serving the whole burst itself, so no caller is held past its own
// round and every round runs under a live caller's context.
func (h *Host) drain(ctx context.Context, m *membership) {
	for {
		m.mu.Lock()
		if len(m.queue) == 0 {
			m.relaying = false
			m.mu.Unlock()
			return
		}
		batch := m.queue
		m.queue = nil
		// Initialise the counter from what this member has observed, so a
		// fail-over sequencer continues the stream rather than reusing
		// numbers.
		if m.nextSeq < m.delivered {
			m.nextSeq = m.delivered
		}
		// Coalesce duplicate MsgIDs (concurrent retries of one logical
		// message): one delivery, every waiter gets the outcome. Assigning
		// a duplicate a fresh number would leave a hole in the sequence no
		// delivery ever fills.
		type roundEntry struct {
			req     sequenceReq
			seq     uint64
			waiters []*pendingSeq
		}
		var entries []*roundEntry
		byID := make(map[string]*roundEntry, len(batch))
		for _, p := range batch {
			if e, ok := byID[p.req.MsgID]; ok {
				e.waiters = append(e.waiters, p)
				continue
			}
			e := &roundEntry{req: p.req, waiters: []*pendingSeq{p}}
			if prev, ok := m.seen[p.req.MsgID]; ok {
				e.seq = prev.seq
			} else {
				m.nextSeq++
				e.seq = m.nextSeq
			}
			byID[p.req.MsgID] = e
			entries = append(entries, e)
		}
		// The member set of the round is the union of the batch's views;
		// per-entry results are filtered back to each caller's own view.
		var members []string
		memberSet := make(map[string]bool)
		for _, e := range entries {
			for _, mem := range e.req.Members {
				if !memberSet[mem] {
					memberSet[mem] = true
					members = append(members, mem)
				}
			}
		}
		stable := m.stableLocked(members)
		m.mu.Unlock()

		h.rounds.Add(1)
		h.orderedMsgs.Add(uint64(len(entries)))
		if len(entries) == 1 {
			e := entries[0]
			resp, err := h.fanOut(ctx, m, e.req, e.seq, stable)
			for _, p := range e.waiters {
				p.resp, p.err = resp, err
				close(p.done)
			}
			if h.handOff(m) {
				return
			}
			continue
		}
		items := make([]batchItem, len(entries))
		for i, e := range entries {
			items[i] = batchItem{MsgID: e.req.MsgID, Kind: e.req.Kind, Payload: e.req.Payload, Seq: e.seq}
		}
		sort.Slice(items, func(a, b int) bool { return items[a].Seq < items[b].Seq })
		frame := deliverBatchReq{Group: entries[0].req.Group, Items: items, Stable: stable}
		type slot struct {
			dr  deliverBatchResp
			err error
		}
		slots := make([]slot, len(members))
		payload, err := rpc.Encode(&frame)
		if err != nil {
			for _, e := range entries {
				for _, p := range e.waiters {
					p.err = err
					close(p.done)
				}
			}
			if h.handOff(m) {
				return
			}
			continue
		}
		conc.DoLimited(len(members), fanOutConcurrency, func(i int) {
			addr := transport.Addr(members[i])
			if addr == h.client.From {
				// Local delivery skips the network round trip.
				slots[i].dr, slots[i].err = h.handleDeliverBatch(ctx, h.client.From, frame)
				return
			}
			body, err := h.client.Call(ctx, addr, ServiceName, MethodDeliverBatch, payload)
			if err != nil {
				slots[i].err = err
				return
			}
			slots[i].err = rpc.Decode(body, &slots[i].dr)
		})

		// Index item results by MsgID per member, record delivery acks, and
		// assemble each entry's sequenceResp over its own member view.
		itemIdx := make(map[string]int, len(items))
		for i, it := range items {
			itemIdx[it.MsgID] = i
		}
		m.mu.Lock()
		for i, mem := range members {
			if slots[i].err != nil {
				continue
			}
			high := uint64(0)
			for j, it := range items {
				if j < len(slots[i].dr.Results) && slots[i].dr.Results[j].Err == "" && it.Seq > high {
					high = it.Seq
				}
			}
			if high > m.acked[mem] {
				m.acked[mem] = high
			}
		}
		m.mu.Unlock()
		for _, e := range entries {
			resp := sequenceResp{Seq: e.seq}
			order := make([]string, len(e.req.Members))
			copy(order, e.req.Members)
			sort.Strings(order)
			for _, mem := range order {
				var si int
				for si = range members {
					if members[si] == mem {
						break
					}
				}
				s := slots[si]
				if s.err != nil {
					if isMemberFailure(s.err) {
						resp.Failed = append(resp.Failed, mem)
					} else {
						resp.Replies = append(resp.Replies, Reply{Member: transport.Addr(mem), Err: s.err.Error()})
					}
					continue
				}
				idx := itemIdx[e.req.MsgID]
				r := Reply{Member: transport.Addr(mem)}
				if idx < len(s.dr.Results) {
					r.Payload = s.dr.Results[idx].Payload
					r.Err = s.dr.Results[idx].Err
				}
				resp.Replies = append(resp.Replies, r)
			}
			for _, p := range e.waiters {
				p.resp = resp
				close(p.done)
			}
		}
		if h.handOff(m) {
			return
		}
	}
}

// handOff ends the caller's leadership after its round: it elects the
// first live queued waiter to lead the next round (closing its lead
// channel) and returns true. With an empty queue it clears the relaying
// flag and returns true. It returns false only when every queued entry
// has been abandoned by its caller — those messages still deserve
// delivery, so the current leader keeps serving.
func (h *Host) handOff(m *membership) bool {
	m.mu.Lock()
	if len(m.queue) == 0 {
		m.relaying = false
		m.mu.Unlock()
		return true
	}
	var successor *pendingSeq
	for _, q := range m.queue {
		if !q.abandoned {
			successor = q
			break
		}
	}
	if successor == nil {
		m.mu.Unlock()
		return false
	}
	successor.elected = true
	m.mu.Unlock()
	close(successor.lead)
	return true
}

// fanOutConcurrency bounds the parallel deliveries of one relayed
// multicast, so very large groups cannot stampede the relay node.
const fanOutConcurrency = 16

// fanOut relays one message to every member concurrently. Total order is
// carried by the assigned seq, not by delivery timing: receivers hold
// back out-of-order arrivals, so parallel delivery preserves the
// identical-order guarantee while the latency is that of the slowest
// member rather than the sum over members. The payload is encoded once
// and shared by all deliveries; Replies and Failed are collected in
// member-sorted order so results are deterministic. Successful
// deliveries advance the per-member ack watermark on m.
func (h *Host) fanOut(ctx context.Context, m *membership, req sequenceReq, seq, stable uint64) (sequenceResp, error) {
	d := deliverReq{Group: req.Group, MsgID: req.MsgID, Kind: req.Kind, Payload: req.Payload, Seq: seq, Stable: stable}
	payload, err := rpc.Encode(&d)
	if err != nil {
		return sequenceResp{}, err
	}
	type slot struct {
		dr  deliverResp
		err error
	}
	slots := make([]slot, len(req.Members))
	conc.DoLimited(len(req.Members), fanOutConcurrency, func(i int) {
		addr := transport.Addr(req.Members[i])
		if addr == h.client.From {
			// Local delivery skips the network round trip.
			slots[i].dr, slots[i].err = h.handleDeliver(ctx, h.client.From, d)
			return
		}
		body, err := h.client.Call(ctx, addr, ServiceName, MethodDeliver, payload)
		if err != nil {
			slots[i].err = err
			return
		}
		slots[i].err = rpc.Decode(body, &slots[i].dr)
	})

	m.mu.Lock()
	for i, mem := range req.Members {
		if slots[i].err == nil && seq > m.acked[mem] {
			m.acked[mem] = seq
		}
	}
	m.mu.Unlock()

	order := make([]int, len(req.Members))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return req.Members[order[a]] < req.Members[order[b]] })
	resp := sequenceResp{Seq: seq}
	for _, i := range order {
		s := slots[i]
		if s.err != nil && isMemberFailure(s.err) {
			resp.Failed = append(resp.Failed, req.Members[i])
			continue
		}
		r := Reply{Member: transport.Addr(req.Members[i]), Payload: s.dr.Payload}
		if s.err != nil {
			r.Err = s.err.Error()
		}
		resp.Replies = append(resp.Replies, r)
	}
	return resp, nil
}

// isMemberFailure reports whether err means the member did not (provably)
// receive the message.
func isMemberFailure(err error) bool {
	return errors.Is(err, transport.ErrUnreachable) ||
		errors.Is(err, transport.ErrRequestLost) ||
		errors.Is(err, context.DeadlineExceeded)
}

// msgCounter disambiguates message IDs minted by Multicast within one
// process.
var msgCounter atomic.Uint64

// Multicast reliably delivers (kind, payload) to g in total order, on
// behalf of cli. It tries each member in view order as sequencer until one
// accepts; receivers deduplicate by message ID, so retries are safe. It
// fails only when no member of the group is reachable.
func Multicast(ctx context.Context, cli rpc.Client, g Group, kind string, payload []byte) (*Result, error) {
	msgID := fmt.Sprintf("%s/%d/%s", cli.From, msgCounter.Add(1), kind)
	return multicastWithID(ctx, cli, g, kind, payload, msgID)
}

// NewMsgID mints a stable message ID for callers that need to retry one
// logical multicast across higher-level attempts.
func (h *Host) NewMsgID(kind string) string {
	return h.msgGen.New().String() + "/" + kind
}

// MulticastWithID is Multicast with a caller-chosen message ID (for retry
// across higher-level attempts).
func MulticastWithID(ctx context.Context, cli rpc.Client, g Group, kind string, payload []byte, msgID string) (*Result, error) {
	return multicastWithID(ctx, cli, g, kind, payload, msgID)
}

func multicastWithID(ctx context.Context, cli rpc.Client, g Group, kind string, payload []byte, msgID string) (*Result, error) {
	members := make([]string, len(g.Members))
	for i, m := range g.Members {
		members[i] = string(m)
	}
	req := sequenceReq{Group: g.ID, MsgID: msgID, Kind: kind, Payload: payload, Members: members}
	var lastErr error
	for _, seqr := range g.Members {
		resp, err := rpc.Invoke[sequenceReq, sequenceResp](ctx, cli, seqr, ServiceName, MethodSequence, req)
		if err != nil {
			if isMemberFailure(err) || errors.Is(err, transport.ErrReplyLost) {
				lastErr = err
				continue // fail over to the next member as sequencer
			}
			return nil, fmt.Errorf("group %s: sequence at %s: %w", g.ID, seqr, err)
		}
		out := &Result{Seq: resp.Seq, Replies: resp.Replies}
		for _, f := range resp.Failed {
			out.Failed = append(out.Failed, transport.Addr(f))
		}
		return out, nil
	}
	return nil, fmt.Errorf("group %s: no reachable sequencer: %w", g.ID, lastErr)
}

// NaiveMulticast fans out directly from the caller with no ordering,
// dedup, or relay — the baseline whose inconsistency Figure 1 illustrates.
// A reply lost from one member leaves that member's state applied but
// reported in Failed-like terms to the caller (Err set), and a caller
// crash midway simply stops the loop.
func NaiveMulticast(ctx context.Context, cli rpc.Client, g Group, kind string, payload []byte) *Result {
	msgID := string(cli.From) + "/naive/" + kind
	out := &Result{}
	for _, member := range g.Members {
		resp, err := rpc.Invoke[deliverReq, deliverResp](ctx, cli, member, ServiceName, MethodDeliver,
			deliverReq{Group: g.ID, MsgID: msgID, Kind: kind, Payload: payload, Seq: 0})
		if err != nil {
			if isMemberFailure(err) {
				out.Failed = append(out.Failed, member)
			} else {
				out.Replies = append(out.Replies, Reply{Member: member, Err: err.Error()})
			}
			continue
		}
		out.Replies = append(out.Replies, Reply{Member: member, Payload: resp.Payload})
	}
	return out
}

// SortedFailed returns the failed members sorted, for deterministic
// reporting.
func (r *Result) SortedFailed() []transport.Addr {
	out := make([]transport.Addr, len(r.Failed))
	copy(out, r.Failed)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
