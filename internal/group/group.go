// Package group provides group communication for replicated objects.
//
// The paper (§2.3(2)) observes that communication *between replica groups*
// requires "reliable distribution and ordering guarantees not associated
// with non-replicated systems": reliability ensures all correctly
// functioning members of a group receive messages intended for the group,
// ordering ensures the messages are received in an identical order at each
// functioning member — otherwise replica states can diverge, as in the
// paper's Figure 1 where a reply reaches replica A1 but not A2.
//
// Two disciplines are implemented:
//
//   - Multicast — reliable, totally ordered: the sender hands the message
//     to a deterministic sequencer member, which assigns the next sequence
//     number and relays to every member. The sender makes a single call, so
//     a sender failure cannot cause partial delivery; a sequencer failure
//     is handled by retrying through the next member with the same message
//     ID, which receivers deduplicate.
//   - NaiveMulticast — the baseline that reproduces the Figure 1 anomaly:
//     the sender fans out to the members itself, so a failure (of the
//     sender, or of reply delivery) midway leaves the group inconsistent.
//
// Sequence numbers are per group. Receivers deliver strictly in sequence
// order, holding back out-of-order arrivals.
package group

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/conc"
	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/uid"
)

// ServiceName is the RPC service name for group communication endpoints.
const ServiceName = "group"

// RPC method names.
const (
	// MethodSequence is invoked on the sequencer member to order and relay
	// a multicast.
	MethodSequence = "Sequence"
	// MethodDeliver is invoked on each member to deliver one message.
	MethodDeliver = "Deliver"
)

// Group is a (caller-held) view of a replica group: an identifier plus the
// ordered member list. The first functioning member acts as sequencer.
type Group struct {
	ID      string
	Members []transport.Addr
}

// Delivered is a message as seen by a member's apply callback.
type Delivered struct {
	Group   string
	MsgID   string
	Kind    string
	Payload []byte
	// Seq is the total-order position (0 for naive, unordered delivery).
	Seq uint64
}

// Apply is a member's delivery callback; its reply is returned to the
// multicast caller.
type Apply func(ctx context.Context, msg Delivered) ([]byte, error)

// Reply is one member's response to a multicast.
type Reply struct {
	Member  transport.Addr
	Payload []byte
	Err     string
}

// Result summarises a multicast.
type Result struct {
	// Seq is the assigned sequence number (0 for naive multicast).
	Seq uint64
	// Replies holds one entry per member that received the message.
	Replies []Reply
	// Failed lists members that could not be reached; per the paper's
	// commit protocol these are the nodes to exclude from the view.
	Failed []transport.Addr
}

// sequenceReq is the wire form of a sequencing request.
type sequenceReq struct {
	Group   string
	MsgID   string
	Kind    string
	Payload []byte
	Members []string
}

// deliverReq is the wire form of a delivery.
type deliverReq struct {
	Group   string
	MsgID   string
	Kind    string
	Payload []byte
	Seq     uint64
}

// deliverResp carries a member's reply.
type deliverResp struct{ Payload []byte }

// sequenceResp carries the fan-out outcome back to the caller.
type sequenceResp struct {
	Seq     uint64
	Replies []Reply
	Failed  []string
}

// Host manages a node's group memberships: per-group apply callbacks,
// delivery ordering, deduplication, and the sequencer role.
type Host struct {
	client rpc.Client
	msgGen *uid.Generator

	mu     sync.Mutex
	groups map[string]*membership
}

// seenEntry caches one delivered message: the reply returned to the
// relaying sequencer and the sequence number the message was assigned, so
// a fail-over sequencer can re-relay under the original number.
type seenEntry struct {
	reply []byte
	seq   uint64
}

type membership struct {
	apply Apply

	mu        sync.Mutex
	nextSeq   uint64 // sequencer counter: next seq to assign is nextSeq+1
	delivered uint64 // receiver: highest seq applied
	seen      map[string]seenEntry
	applied   chan struct{} // closed & renewed after each in-order apply
}

// NewHost creates a Host for a node and registers its RPC handlers on srv.
// client must originate from the node's own address (used for relaying).
func NewHost(srv *rpc.Server, client rpc.Client) *Host {
	h := &Host{
		client: client,
		msgGen: uid.NewGenerator(string(client.From)+"/mc", 1),
		groups: make(map[string]*membership),
	}
	srv.Handle(ServiceName, MethodDeliver, rpc.Method(h.handleDeliver))
	srv.Handle(ServiceName, MethodSequence, rpc.Method(h.handleSequence))
	return h
}

// Join registers the node as a member of groupID with the given apply
// callback, replacing any previous membership.
func (h *Host) Join(groupID string, apply Apply) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.groups[groupID] = &membership{
		apply:   apply,
		seen:    make(map[string]seenEntry),
		applied: make(chan struct{}),
	}
}

// Leave removes the node from groupID.
func (h *Host) Leave(groupID string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.groups, groupID)
}

// Delivered returns the highest sequence number applied for groupID.
func (h *Host) Delivered(groupID string) uint64 {
	h.mu.Lock()
	m := h.groups[groupID]
	h.mu.Unlock()
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivered
}

func (h *Host) lookup(groupID string) (*membership, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.groups[groupID]
	if !ok {
		return nil, rpc.Errorf(rpc.CodeNotFound, "not a member of group %q", groupID)
	}
	return m, nil
}

// handleDeliver applies one message respecting total order and dedup.
func (h *Host) handleDeliver(ctx context.Context, from transport.Addr, req deliverReq) (deliverResp, error) {
	m, err := h.lookup(req.Group)
	if err != nil {
		return deliverResp{}, err
	}
	msg := Delivered{Group: req.Group, MsgID: req.MsgID, Kind: req.Kind, Payload: req.Payload, Seq: req.Seq}

	// Naive (unsequenced) messages apply immediately, no ordering or dedup.
	if req.Seq == 0 {
		out, err := m.apply(ctx, msg)
		return deliverResp{Payload: out}, err
	}

	for {
		m.mu.Lock()
		if prev, ok := m.seen[req.MsgID]; ok {
			// Duplicate (sequencer retry): return the cached reply.
			m.mu.Unlock()
			return deliverResp{Payload: prev.reply}, nil
		}
		if req.Seq <= m.delivered {
			// Superseded sequence number from a failed-over sequencer;
			// deliver anyway (dedup above did not match, so it is new) to
			// preserve reliability, but in arrival order at this point.
			out, aerr := m.apply(ctx, msg)
			if aerr == nil {
				m.seen[req.MsgID] = seenEntry{reply: out, seq: req.Seq}
			}
			m.mu.Unlock()
			return deliverResp{Payload: out}, aerr
		}
		if req.Seq == m.delivered+1 {
			out, aerr := m.apply(ctx, msg)
			if aerr == nil {
				m.seen[req.MsgID] = seenEntry{reply: out, seq: req.Seq}
			}
			m.delivered = req.Seq
			close(m.applied)
			m.applied = make(chan struct{})
			m.mu.Unlock()
			return deliverResp{Payload: out}, aerr
		}
		// Gap: hold back until the predecessor is applied.
		wait := m.applied
		m.mu.Unlock()
		select {
		case <-ctx.Done():
			return deliverResp{}, ctx.Err()
		case <-wait:
		}
	}
}

// handleSequence runs on the sequencer member: assign the next sequence
// number and relay to every member concurrently, collecting replies and
// failures.
func (h *Host) handleSequence(ctx context.Context, from transport.Addr, req sequenceReq) (sequenceResp, error) {
	m, err := h.lookup(req.Group)
	if err != nil {
		return sequenceResp{}, err
	}
	m.mu.Lock()
	// Dedup retried sequencing requests by MsgID: this host already
	// delivered the message, so it was already sequenced. Re-relay under
	// the original sequence number instead of answering with a bare Seq —
	// members that saw it return their cached replies (so the retrying
	// caller still receives the full fan-out outcome), and any member the
	// first fan-out missed is repaired.
	if prev, ok := m.seen[req.MsgID]; ok {
		m.mu.Unlock()
		return h.fanOut(ctx, req, prev.seq)
	}
	// Initialise the counter from what this member has observed, so a
	// fail-over sequencer continues the stream rather than reusing
	// numbers.
	if m.nextSeq < m.delivered {
		m.nextSeq = m.delivered
	}
	m.nextSeq++
	seq := m.nextSeq
	m.mu.Unlock()

	return h.fanOut(ctx, req, seq)
}

// fanOutConcurrency bounds the parallel deliveries of one relayed
// multicast, so very large groups cannot stampede the relay node.
const fanOutConcurrency = 16

// fanOut relays the message to every member concurrently. Total order is
// carried by the assigned seq, not by delivery timing: receivers hold
// back out-of-order arrivals, so parallel delivery preserves the
// identical-order guarantee while the latency is that of the slowest
// member rather than the sum over members. The payload is encoded once
// and shared by all deliveries; Replies and Failed are collected in
// member-sorted order so results are deterministic.
func (h *Host) fanOut(ctx context.Context, req sequenceReq, seq uint64) (sequenceResp, error) {
	d := deliverReq{Group: req.Group, MsgID: req.MsgID, Kind: req.Kind, Payload: req.Payload, Seq: seq}
	payload, err := rpc.Encode(&d)
	if err != nil {
		return sequenceResp{}, err
	}
	type slot struct {
		dr  deliverResp
		err error
	}
	slots := make([]slot, len(req.Members))
	conc.DoLimited(len(req.Members), fanOutConcurrency, func(i int) {
		addr := transport.Addr(req.Members[i])
		if addr == h.client.From {
			// Local delivery skips the network round trip.
			slots[i].dr, slots[i].err = h.handleDeliver(ctx, h.client.From, d)
			return
		}
		body, err := h.client.Call(ctx, addr, ServiceName, MethodDeliver, payload)
		if err != nil {
			slots[i].err = err
			return
		}
		slots[i].err = rpc.Decode(body, &slots[i].dr)
	})

	order := make([]int, len(req.Members))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return req.Members[order[a]] < req.Members[order[b]] })
	resp := sequenceResp{Seq: seq}
	for _, i := range order {
		s := slots[i]
		if s.err != nil && isMemberFailure(s.err) {
			resp.Failed = append(resp.Failed, req.Members[i])
			continue
		}
		r := Reply{Member: transport.Addr(req.Members[i]), Payload: s.dr.Payload}
		if s.err != nil {
			r.Err = s.err.Error()
		}
		resp.Replies = append(resp.Replies, r)
	}
	return resp, nil
}

// isMemberFailure reports whether err means the member did not (provably)
// receive the message.
func isMemberFailure(err error) bool {
	return errors.Is(err, transport.ErrUnreachable) ||
		errors.Is(err, transport.ErrRequestLost) ||
		errors.Is(err, context.DeadlineExceeded)
}

// msgCounter disambiguates message IDs minted by Multicast within one
// process.
var msgCounter atomic.Uint64

// Multicast reliably delivers (kind, payload) to g in total order, on
// behalf of cli. It tries each member in view order as sequencer until one
// accepts; receivers deduplicate by message ID, so retries are safe. It
// fails only when no member of the group is reachable.
func Multicast(ctx context.Context, cli rpc.Client, g Group, kind string, payload []byte) (*Result, error) {
	msgID := fmt.Sprintf("%s/%d/%s", cli.From, msgCounter.Add(1), kind)
	return multicastWithID(ctx, cli, g, kind, payload, msgID)
}

// NewMsgID mints a stable message ID for callers that need to retry one
// logical multicast across higher-level attempts.
func (h *Host) NewMsgID(kind string) string {
	return h.msgGen.New().String() + "/" + kind
}

// MulticastWithID is Multicast with a caller-chosen message ID (for retry
// across higher-level attempts).
func MulticastWithID(ctx context.Context, cli rpc.Client, g Group, kind string, payload []byte, msgID string) (*Result, error) {
	return multicastWithID(ctx, cli, g, kind, payload, msgID)
}

func multicastWithID(ctx context.Context, cli rpc.Client, g Group, kind string, payload []byte, msgID string) (*Result, error) {
	members := make([]string, len(g.Members))
	for i, m := range g.Members {
		members[i] = string(m)
	}
	req := sequenceReq{Group: g.ID, MsgID: msgID, Kind: kind, Payload: payload, Members: members}
	var lastErr error
	for _, seqr := range g.Members {
		resp, err := rpc.Invoke[sequenceReq, sequenceResp](ctx, cli, seqr, ServiceName, MethodSequence, req)
		if err != nil {
			if isMemberFailure(err) || errors.Is(err, transport.ErrReplyLost) {
				lastErr = err
				continue // fail over to the next member as sequencer
			}
			return nil, fmt.Errorf("group %s: sequence at %s: %w", g.ID, seqr, err)
		}
		out := &Result{Seq: resp.Seq, Replies: resp.Replies}
		for _, f := range resp.Failed {
			out.Failed = append(out.Failed, transport.Addr(f))
		}
		return out, nil
	}
	return nil, fmt.Errorf("group %s: no reachable sequencer: %w", g.ID, lastErr)
}

// NaiveMulticast fans out directly from the caller with no ordering,
// dedup, or relay — the baseline whose inconsistency Figure 1 illustrates.
// A reply lost from one member leaves that member's state applied but
// reported in Failed-like terms to the caller (Err set), and a caller
// crash midway simply stops the loop.
func NaiveMulticast(ctx context.Context, cli rpc.Client, g Group, kind string, payload []byte) *Result {
	msgID := string(cli.From) + "/naive/" + kind
	out := &Result{}
	for _, member := range g.Members {
		resp, err := rpc.Invoke[deliverReq, deliverResp](ctx, cli, member, ServiceName, MethodDeliver,
			deliverReq{Group: g.ID, MsgID: msgID, Kind: kind, Payload: payload, Seq: 0})
		if err != nil {
			if isMemberFailure(err) {
				out.Failed = append(out.Failed, member)
			} else {
				out.Replies = append(out.Replies, Reply{Member: member, Err: err.Error()})
			}
			continue
		}
		out.Replies = append(out.Replies, Reply{Member: member, Payload: resp.Payload})
	}
	return out
}

// SortedFailed returns the failed members sorted, for deterministic
// reporting.
func (r *Result) SortedFailed() []transport.Addr {
	out := make([]transport.Addr, len(r.Failed))
	copy(out, r.Failed)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
