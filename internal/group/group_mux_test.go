package group

import (
	"context"
	"testing"

	"repro/internal/sim"
	"repro/internal/transport"
)

// TestMulticastRetryDeduplicatesAcrossMuxStreams pins the dedup contract
// on the multiplexed transport: a retried multicast under the original
// MsgID that arrives over a DIFFERENT mux stream — every connection the
// first round used is severed, so the retry redials — must still hit the
// receivers' dedup caches (keyed by MsgID, not by connection) and return
// the complete fan-out outcome under the original sequence number.
func TestMulticastRetryDeduplicatesAcrossMuxStreams(t *testing.T) {
	mux := transport.NewTCPMux()
	defer mux.Close()
	members := []transport.Addr{"a1", "a2", "a3"}
	f := newFixtureOn(t, sim.NewClusterOn(mux), members...)
	ctx := context.Background()
	msgID := "stable-id/mux-1"

	first, err := MulticastWithID(ctx, f.client(), f.grp, "op", []byte("x"), msgID)
	if err != nil {
		t.Fatal(err)
	}

	// Sever every connection the first round established: the client's
	// link to the sequencer and the sequencer's relay links to the
	// members. The retry must transparently run over fresh streams.
	nodes := append([]transport.Addr{"client"}, members...)
	for _, from := range nodes {
		for _, to := range nodes {
			if from != to {
				mux.KillConns(from, to)
			}
		}
	}

	retry, err := MulticastWithID(ctx, f.client(), f.grp, "op", []byte("x"), msgID)
	if err != nil {
		t.Fatal(err)
	}
	if retry.Seq != first.Seq {
		t.Fatalf("retry seq = %d, want original %d", retry.Seq, first.Seq)
	}
	if len(retry.Replies) != len(members) || len(retry.Failed) != 0 {
		t.Fatalf("retry replies=%d failed=%v, want full cached replies from all %d members",
			len(retry.Replies), retry.Failed, len(members))
	}
	for _, r := range retry.Replies {
		if r.Err != "" || string(r.Payload) != "ack-op" {
			t.Fatalf("retry reply from %s = (%q, %q), want cached ack", r.Member, r.Payload, r.Err)
		}
	}
	for _, m := range members {
		if got := f.members[m].history(); got != "op:x" {
			t.Fatalf("%s history = %q, want single delivery despite stream change", m, got)
		}
	}
}
