package store

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/uid"
)

// ServiceName is the RPC service name under which a node's object store is
// exported.
const ServiceName = "objectstore"

// RPC method names.
const (
	MethodRead    = "Read"
	MethodPut     = "Put"
	MethodSeqOf   = "SeqOf"
	MethodPrepare = "Prepare"
	MethodCommit  = "Commit"
	MethodAbort   = "Abort"
	// MethodCommitOnePhase validates and applies a transaction's writes in
	// one round — the single-participant 2PC fast path.
	MethodCommitOnePhase = "CommitOnePhase"
	// MethodResolveDecided asks the store to resolve pending intentions
	// with affirmatively recorded outcomes against its node's outcome
	// resolver. The handler is registered by the simulation layer (it
	// needs the node's coordinator routing); see sim.Cluster.Add.
	MethodResolveDecided = "ResolveDecided"
)

// CodeStaleVersion is the RPC error code carrying ErrStaleVersion across
// the wire.
const CodeStaleVersion = "stale-version"

// Request/response records. All fields exported for gob.

// ReadReq asks for the committed version of an object.
type ReadReq struct{ UID string }

// ReadResp carries a committed version.
type ReadResp struct {
	Data []byte
	Seq  uint64
	TxID string
}

// PutReq installs a committed version directly.
type PutReq struct {
	UID  string
	Data []byte
	Seq  uint64
}

// SeqOfReq asks for an object's committed sequence number.
type SeqOfReq struct{ UID string }

// SeqOfResp carries the result of SeqOf.
type SeqOfResp struct {
	Seq uint64
	OK  bool
}

// PrepareReq carries a transaction's intended writes.
type PrepareReq struct {
	Tx     string
	Writes []WriteRec
}

// WriteRec is the wire form of Write.
type WriteRec struct {
	UID  string
	Data []byte
	Seq  uint64
}

// TxReq names a transaction for Commit/Abort.
type TxReq struct{ Tx string }

// ResolveReq asks for a ResolveDecided pass.
type ResolveReq struct{}

// ResolveResp reports what a ResolveDecided pass settled.
type ResolveResp struct {
	Applied []string
	Aborted []string
}

// Ack is an empty successful response.
type Ack struct{}

// RegisterService exposes s on srv under ServiceName.
func RegisterService(srv *rpc.Server, s *Store) {
	srv.Handle(ServiceName, MethodRead, rpc.Method(func(ctx context.Context, from transport.Addr, req ReadReq) (ReadResp, error) {
		id, err := uid.Parse(req.UID)
		if err != nil {
			return ReadResp{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
		}
		v, err := s.Read(id)
		if err != nil {
			if errors.Is(err, ErrNoState) {
				return ReadResp{}, rpc.Errorf(rpc.CodeNotFound, "%v", err)
			}
			return ReadResp{}, err
		}
		return ReadResp{Data: v.Data, Seq: v.Seq, TxID: v.TxID}, nil
	}))
	srv.Handle(ServiceName, MethodPut, rpc.Method(func(ctx context.Context, from transport.Addr, req PutReq) (Ack, error) {
		id, err := uid.Parse(req.UID)
		if err != nil {
			return Ack{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
		}
		return Ack{}, s.Put(id, req.Data, req.Seq)
	}))
	srv.Handle(ServiceName, MethodSeqOf, rpc.Method(func(ctx context.Context, from transport.Addr, req SeqOfReq) (SeqOfResp, error) {
		id, err := uid.Parse(req.UID)
		if err != nil {
			return SeqOfResp{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
		}
		seq, ok := s.SeqOf(id)
		return SeqOfResp{Seq: seq, OK: ok}, nil
	}))
	srv.Handle(ServiceName, MethodPrepare, rpc.Method(func(ctx context.Context, from transport.Addr, req PrepareReq) (Ack, error) {
		writes := make([]Write, 0, len(req.Writes))
		for _, w := range req.Writes {
			id, err := uid.Parse(w.UID)
			if err != nil {
				return Ack{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
			}
			writes = append(writes, Write{UID: id, Data: w.Data, Seq: w.Seq})
		}
		if err := s.Prepare(req.Tx, writes); err != nil {
			if errors.Is(err, ErrBusy) {
				return Ack{}, rpc.Errorf(rpc.CodeConflict, "%v", err)
			}
			if errors.Is(err, ErrStaleVersion) {
				return Ack{}, rpc.Errorf(CodeStaleVersion, "%v", err)
			}
			return Ack{}, err
		}
		return Ack{}, nil
	}))
	srv.Handle(ServiceName, MethodCommitOnePhase, rpc.Method(func(ctx context.Context, from transport.Addr, req PrepareReq) (Ack, error) {
		writes := make([]Write, 0, len(req.Writes))
		for _, w := range req.Writes {
			id, err := uid.Parse(w.UID)
			if err != nil {
				return Ack{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
			}
			writes = append(writes, Write{UID: id, Data: w.Data, Seq: w.Seq})
		}
		if err := s.CommitOnePhase(req.Tx, writes); err != nil {
			if errors.Is(err, ErrBusy) {
				return Ack{}, rpc.Errorf(rpc.CodeConflict, "%v", err)
			}
			if errors.Is(err, ErrStaleVersion) {
				return Ack{}, rpc.Errorf(CodeStaleVersion, "%v", err)
			}
			return Ack{}, err
		}
		return Ack{}, nil
	}))
	srv.Handle(ServiceName, MethodCommit, rpc.Method(func(ctx context.Context, from transport.Addr, req TxReq) (Ack, error) {
		return Ack{}, s.Commit(req.Tx)
	}))
	srv.Handle(ServiceName, MethodAbort, rpc.Method(func(ctx context.Context, from transport.Addr, req TxReq) (Ack, error) {
		return Ack{}, s.Abort(req.Tx)
	}))
}

// RemoteStore is a typed client for a store exported on another node.
type RemoteStore struct {
	Client rpc.Client
	Node   transport.Addr
}

// Read fetches a committed version from the remote store.
func (r RemoteStore) Read(ctx context.Context, id uid.UID) (Version, error) {
	resp, err := rpc.Invoke[ReadReq, ReadResp](ctx, r.Client, r.Node, ServiceName, MethodRead, ReadReq{UID: id.String()})
	if err != nil {
		if rpc.CodeOf(err) == rpc.CodeNotFound {
			return Version{}, ErrNoState
		}
		return Version{}, err
	}
	return Version{Data: resp.Data, Seq: resp.Seq, TxID: resp.TxID}, nil
}

// Put installs a committed version on the remote store.
func (r RemoteStore) Put(ctx context.Context, id uid.UID, data []byte, seq uint64) error {
	_, err := rpc.Invoke[PutReq, Ack](ctx, r.Client, r.Node, ServiceName, MethodPut, PutReq{UID: id.String(), Data: data, Seq: seq})
	return err
}

// SeqOf fetches the committed sequence number of id from the remote store.
func (r RemoteStore) SeqOf(ctx context.Context, id uid.UID) (uint64, bool, error) {
	resp, err := rpc.Invoke[SeqOfReq, SeqOfResp](ctx, r.Client, r.Node, ServiceName, MethodSeqOf, SeqOfReq{UID: id.String()})
	if err != nil {
		return 0, false, err
	}
	return resp.Seq, resp.OK, nil
}

// Prepare records intentions at the remote store. Stale-version refusals
// are mapped back to ErrStaleVersion for errors.Is.
func (r RemoteStore) Prepare(ctx context.Context, tx string, writes []Write) error {
	recs := make([]WriteRec, len(writes))
	for i, w := range writes {
		recs[i] = WriteRec{UID: w.UID.String(), Data: w.Data, Seq: w.Seq}
	}
	_, err := rpc.Invoke[PrepareReq, Ack](ctx, r.Client, r.Node, ServiceName, MethodPrepare, PrepareReq{Tx: tx, Writes: recs})
	if rpc.CodeOf(err) == CodeStaleVersion {
		return fmt.Errorf("%v: %w", err, ErrStaleVersion)
	}
	return err
}

// CommitOnePhase validates and applies tx's writes at the remote store in
// a single round. Stale-version refusals map back to ErrStaleVersion.
func (r RemoteStore) CommitOnePhase(ctx context.Context, tx string, writes []Write) error {
	recs := make([]WriteRec, len(writes))
	for i, w := range writes {
		recs[i] = WriteRec{UID: w.UID.String(), Data: w.Data, Seq: w.Seq}
	}
	_, err := rpc.Invoke[PrepareReq, Ack](ctx, r.Client, r.Node, ServiceName, MethodCommitOnePhase, PrepareReq{Tx: tx, Writes: recs})
	if rpc.CodeOf(err) == CodeStaleVersion {
		return fmt.Errorf("%v: %w", err, ErrStaleVersion)
	}
	return err
}

// ResolveDecided asks the remote store to settle pending intentions
// whose outcomes are affirmatively recorded at their coordinators.
func (r RemoteStore) ResolveDecided(ctx context.Context) (ResolveResp, error) {
	return rpc.Invoke[ResolveReq, ResolveResp](ctx, r.Client, r.Node, ServiceName, MethodResolveDecided, ResolveReq{})
}

// Commit applies tx at the remote store.
func (r RemoteStore) Commit(ctx context.Context, tx string) error {
	_, err := rpc.Invoke[TxReq, Ack](ctx, r.Client, r.Node, ServiceName, MethodCommit, TxReq{Tx: tx})
	return err
}

// Abort discards tx at the remote store.
func (r RemoteStore) Abort(ctx context.Context, tx string) error {
	_, err := rpc.Invoke[TxReq, Ack](ctx, r.Client, r.Node, ServiceName, MethodAbort, TxReq{Tx: tx})
	return err
}
