package store

import (
	"context"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/uid"
)

var gen = uid.NewGenerator("test", 1)

func TestReadUnknownObject(t *testing.T) {
	s := New("beta")
	_, err := s.Read(gen.New())
	if !errors.Is(err, ErrNoState) {
		t.Fatalf("err = %v, want ErrNoState", err)
	}
}

func TestPutReadRoundTrip(t *testing.T) {
	s := New("beta")
	id := gen.New()
	s.Put(id, []byte("state-1"), 7)
	v, err := s.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Data) != "state-1" || v.Seq != 7 {
		t.Fatalf("version = %+v", v)
	}
	// Mutating the returned data must not affect the store.
	v.Data[0] = 'X'
	v2, _ := s.Read(id)
	if string(v2.Data) != "state-1" {
		t.Fatal("Read aliases internal buffer")
	}
}

func TestPrepareCommitApplies(t *testing.T) {
	s := New("beta")
	id := gen.New()
	s.Put(id, []byte("v0"), 1)
	if err := s.Prepare("tx1", []Write{{UID: id, Data: []byte("v1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	// Not yet visible.
	if v, _ := s.Read(id); string(v.Data) != "v0" {
		t.Fatalf("prepared write visible early: %q", v.Data)
	}
	if err := s.Commit("tx1"); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Read(id)
	if string(v.Data) != "v1" || v.Seq != 2 || v.TxID != "tx1" {
		t.Fatalf("after commit: %+v", v)
	}
	if len(s.PendingTxs()) != 0 {
		t.Fatal("intention not cleared after commit")
	}
}

func TestPrepareAbortDiscards(t *testing.T) {
	s := New("beta")
	id := gen.New()
	s.Put(id, []byte("v0"), 1)
	if err := s.Prepare("tx1", []Write{{UID: id, Data: []byte("v1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort("tx1"); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Read(id)
	if string(v.Data) != "v0" {
		t.Fatalf("abort leaked write: %q", v.Data)
	}
	// The pin is released: another tx may prepare.
	if err := s.Prepare("tx2", []Write{{UID: id, Data: []byte("v2"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
}

func TestConflictingPrepareRefused(t *testing.T) {
	s := New("beta")
	id := gen.New()
	if err := s.Prepare("tx1", []Write{{UID: id, Data: []byte("a"), Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	err := s.Prepare("tx2", []Write{{UID: id, Data: []byte("b"), Seq: 1}})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	// Same tx re-prepare is allowed (idempotent retry).
	if err := s.Prepare("tx1", []Write{{UID: id, Data: []byte("a2"), Seq: 1}}); err != nil {
		t.Fatalf("re-prepare: %v", err)
	}
}

func TestPrepareStaleVersionRefused(t *testing.T) {
	s := New("beta")
	id := gen.New()
	s.Put(id, []byte("v5"), 5)
	// Extending the chain by one is accepted.
	if err := s.Prepare("tx-good", []Write{{UID: id, Data: []byte("v6"), Seq: 6}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort("tx-good"); err != nil {
		t.Fatal(err)
	}
	// A stale writer (based on an old version) is refused.
	for _, seq := range []uint64{2, 5, 8} {
		err := s.Prepare("tx-stale", []Write{{UID: id, Data: []byte("x"), Seq: seq}})
		if !errors.Is(err, ErrStaleVersion) {
			t.Fatalf("seq %d: err = %v, want ErrStaleVersion", seq, err)
		}
	}
	// Unknown objects accept any starting seq.
	if err := s.Prepare("tx-new", []Write{{UID: gen.New(), Data: []byte("a"), Seq: 3}}); err != nil {
		t.Fatal(err)
	}
}

func TestRemotePrepareStaleVersionCode(t *testing.T) {
	net := transport.NewMem(transport.MemOptions{}, nil)
	srv := rpc.NewServer()
	s := New("beta")
	RegisterService(srv, s)
	net.Register("beta", srv.Handler())
	remote := RemoteStore{Client: rpc.Client{Net: net, From: "alpha"}, Node: "beta"}
	ctx := context.Background()
	id := gen.New()
	s.Put(id, []byte("v5"), 5)
	err := remote.Prepare(ctx, "tx", []Write{{UID: id, Data: []byte("x"), Seq: 9}})
	if !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("remote stale err = %v", err)
	}
}

func TestCommitAbortUnknownTxNoOp(t *testing.T) {
	s := New("beta")
	if err := s.Commit("ghost"); err != nil {
		t.Fatal(err)
	}
	if err := s.Abort("ghost"); err != nil {
		t.Fatal(err)
	}
}

type mapLog map[string]Outcome

func (m mapLog) Lookup(tx string) Outcome { return m[tx] }

func TestRecoverPresumedAbort(t *testing.T) {
	s := New("beta")
	idA, idB := gen.New(), gen.New()
	s.Put(idA, []byte("a0"), 1)
	s.Put(idB, []byte("b0"), 1)
	if err := s.Prepare("committed-tx", []Write{{UID: idA, Data: []byte("a1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare("undecided-tx", []Write{{UID: idB, Data: []byte("b1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	applied, aborted := s.Recover(mapLog{"committed-tx": OutcomeCommitted})
	if len(applied) != 1 || applied[0] != "committed-tx" {
		t.Fatalf("applied = %v", applied)
	}
	if len(aborted) != 1 || aborted[0] != "undecided-tx" {
		t.Fatalf("aborted = %v", aborted)
	}
	if v, _ := s.Read(idA); string(v.Data) != "a1" {
		t.Fatalf("committed tx not applied: %q", v.Data)
	}
	if v, _ := s.Read(idB); string(v.Data) != "b0" {
		t.Fatalf("undecided tx applied: %q", v.Data)
	}
}

func TestRecoverNilLogAbortsAll(t *testing.T) {
	s := New("beta")
	id := gen.New()
	if err := s.Prepare("tx", []Write{{UID: id, Data: []byte("x"), Seq: 1}}); err != nil {
		t.Fatal(err)
	}
	applied, aborted := s.Recover(nil)
	if len(applied) != 0 || len(aborted) != 1 {
		t.Fatalf("applied=%v aborted=%v", applied, aborted)
	}
}

func TestObjectsSorted(t *testing.T) {
	s := New("beta")
	a := uid.UID{Origin: "n", Epoch: 1, Seq: 2}
	b := uid.UID{Origin: "n", Epoch: 1, Seq: 1}
	s.Put(a, nil, 1)
	s.Put(b, nil, 1)
	got := s.Objects()
	if len(got) != 2 || got[0] != b {
		t.Fatalf("objects = %v", got)
	}
	s.Remove(a)
	if got := s.Objects(); len(got) != 1 {
		t.Fatalf("after remove: %v", got)
	}
}

func TestRemoteStoreOverRPC(t *testing.T) {
	net := transport.NewMem(transport.MemOptions{}, nil)
	srv := rpc.NewServer()
	s := New("beta")
	RegisterService(srv, s)
	net.Register("beta", srv.Handler())

	remote := RemoteStore{Client: rpc.Client{Net: net, From: "alpha"}, Node: "beta"}
	ctx := context.Background()
	id := gen.New()

	if _, err := remote.Read(ctx, id); !errors.Is(err, ErrNoState) {
		t.Fatalf("remote read missing: %v", err)
	}
	if err := remote.Put(ctx, id, []byte("s0"), 1); err != nil {
		t.Fatal(err)
	}
	v, err := remote.Read(ctx, id)
	if err != nil || string(v.Data) != "s0" || v.Seq != 1 {
		t.Fatalf("remote read: %+v err=%v", v, err)
	}
	seq, ok, err := remote.SeqOf(ctx, id)
	if err != nil || !ok || seq != 1 {
		t.Fatalf("remote seqof: %d %v %v", seq, ok, err)
	}
	if err := remote.Prepare(ctx, "tx9", []Write{{UID: id, Data: []byte("s1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	// Conflicting remote prepare maps to CodeConflict.
	err = remote.Prepare(ctx, "other", []Write{{UID: id, Data: []byte("zz"), Seq: 2}})
	if rpc.CodeOf(err) != rpc.CodeConflict {
		t.Fatalf("conflict code = %q (%v)", rpc.CodeOf(err), err)
	}
	if err := remote.Commit(ctx, "tx9"); err != nil {
		t.Fatal(err)
	}
	v, _ = remote.Read(ctx, id)
	if string(v.Data) != "s1" || v.Seq != 2 {
		t.Fatalf("after remote commit: %+v", v)
	}
	if err := remote.Abort(ctx, "never-started"); err != nil {
		t.Fatal(err)
	}
}

// Property: a prepare followed by abort never changes committed state; a
// prepare followed by commit installs exactly the prepared data and seq.
func TestPropertyPrepareCommitAbort(t *testing.T) {
	f := func(initial, next []byte, commit bool) bool {
		s := New("n")
		id := uid.UID{Origin: "p", Epoch: 1, Seq: 1}
		s.Put(id, initial, 1)
		if err := s.Prepare("t", []Write{{UID: id, Data: next, Seq: 2}}); err != nil {
			return false
		}
		if commit {
			if err := s.Commit("t"); err != nil {
				return false
			}
			v, err := s.Read(id)
			return err == nil && string(v.Data) == string(next) && v.Seq == 2
		}
		if err := s.Abort("t"); err != nil {
			return false
		}
		v, err := s.Read(id)
		return err == nil && string(v.Data) == string(initial) && v.Seq == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCommitOnePhaseApplies(t *testing.T) {
	s := New("beta")
	id := gen.New()
	s.Put(id, []byte("v0"), 1)
	if err := s.CommitOnePhase("tx1", []Write{{UID: id, Data: []byte("v1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Read(id)
	if string(v.Data) != "v1" || v.Seq != 2 || v.TxID != "tx1" {
		t.Fatalf("after one-phase commit: %+v", v)
	}
	if len(s.PendingTxs()) != 0 {
		t.Fatal("one-phase commit must leave nothing pending")
	}
}

func TestCommitOnePhaseChecksAdmission(t *testing.T) {
	s := New("beta")
	id := gen.New()
	s.Put(id, []byte("v0"), 1)
	// Stale chain refused.
	if err := s.CommitOnePhase("tx1", []Write{{UID: id, Data: []byte("v9"), Seq: 9}}); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("err = %v, want ErrStaleVersion", err)
	}
	if v, _ := s.Read(id); string(v.Data) != "v0" {
		t.Fatal("failed one-phase commit must not change state")
	}
	// Pinned by another tx refused.
	if err := s.Prepare("other", []Write{{UID: id, Data: []byte("v1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitOnePhase("tx1", []Write{{UID: id, Data: []byte("v1"), Seq: 2}}); !errors.Is(err, ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
}

func TestCommitOnePhaseMergesOwnIntentions(t *testing.T) {
	// A one-phase commit for a tx that already prepared writes (merge
	// semantics) applies both the old intentions and the new writes.
	s := New("beta")
	a, b := gen.New(), gen.New()
	s.Put(a, []byte("a0"), 1)
	s.Put(b, []byte("b0"), 1)
	if err := s.Prepare("tx1", []Write{{UID: a, Data: []byte("a1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.CommitOnePhase("tx1", []Write{{UID: b, Data: []byte("b1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	va, _ := s.Read(a)
	vb, _ := s.Read(b)
	if string(va.Data) != "a1" || string(vb.Data) != "b1" {
		t.Fatalf("after merge commit: a=%q b=%q", va.Data, vb.Data)
	}
	if len(s.PendingTxs()) != 0 {
		t.Fatal("intentions not cleared")
	}
}

func TestRemoteCommitOnePhase(t *testing.T) {
	net := transport.NewMem(transport.MemOptions{}, nil)
	srv := rpc.NewServer()
	s := New("beta")
	RegisterService(srv, s)
	net.Register("beta", srv.Handler())
	cli := rpc.Client{Net: net, From: "alpha"}
	id := gen.New()
	s.Put(id, []byte("v0"), 1)
	r := RemoteStore{Client: cli, Node: "beta"}
	if err := r.CommitOnePhase(context.Background(), "tx1", []Write{{UID: id, Data: []byte("v1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	v, _ := s.Read(id)
	if string(v.Data) != "v1" || v.Seq != 2 {
		t.Fatalf("after remote one-phase commit: %+v", v)
	}
	// Stale refusal maps back to the sentinel.
	if err := r.CommitOnePhase(context.Background(), "tx2", []Write{{UID: id, Data: []byte("vX"), Seq: 9}}); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("err = %v, want ErrStaleVersion", err)
	}
}
