// Package store implements the Object Storage service of the paper (§2.2):
// a stable-storage repository for the states of persistent objects, named
// by UIDs.
//
// A Store models one node's stable object store. Data written through the
// two-phase interface (Prepare/Commit/Abort) or directly (Put) survives
// node crashes. The working state lives in maps, and every mutation is
// mirrored through a storage.Backend before it is acknowledged: with the
// default in-memory backend the simulation keeps the backend value across
// Crash() — matching the paper's failure assumptions (§2.1) — while a
// disk backend (storage.OpenDisk) makes the state survive real process
// death: Shutdown drops every map and closes the files, Reopen replays
// them. Prepared-but-undecided intentions are stable too, and are
// resolved at recovery against the commit log (presumed abort).
//
// Each committed object version carries a sequence number; two store nodes
// hold *mutually consistent* states of an object exactly when their
// sequence numbers for it are equal, which is the property the Object
// State database's St sets are maintained to guarantee.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/storage"
	"repro/internal/uid"
)

// ErrNoState reports that a store holds no committed state for a UID.
var ErrNoState = errors.New("store: no state for object")

// ErrBusy reports that a conflicting prepared intention exists for a UID.
var ErrBusy = errors.New("store: object has a prepared intention")

// ErrClosed reports an operation on a store whose backend is shut down
// (the owning node is crashed).
var ErrClosed = errors.New("store: stable storage is shut down")

// ErrStaleVersion reports a prepared write whose sequence number does not
// extend this store's committed chain (it must be committed seq + 1). A
// server whose write-back is refused as stale everywhere has been serving
// an out-of-date activated copy and must re-activate from the current
// state; a single store refusing as stale is itself lagging and is
// excluded from St by the caller.
var ErrStaleVersion = errors.New("store: stale version chain")

// Version is one committed object state.
type Version struct {
	// Data is the serialized object state.
	Data []byte
	// Seq is the state's version number; replicas with equal Seq for a UID
	// are mutually consistent.
	Seq uint64
	// TxID is the action that committed this version ("" for direct puts).
	TxID string
}

// Write is one intended object-state update inside a transaction.
type Write struct {
	UID  uid.UID
	Data []byte
	// Seq is assigned by the committing action so that all replica stores
	// record the same version number.
	Seq uint64
}

// Store is one node's stable object store. It is safe for concurrent use.
type Store struct {
	name    string
	factory storage.Factory

	mu        sync.Mutex
	backend   storage.Backend
	closed    bool
	committed map[uid.UID]Version
	// intentions maps a transaction ID to its stable, prepared writes,
	// keyed by object so that repeated prepares for the same transaction
	// merge (last write per object wins).
	intentions map[string]map[uid.UID]Write
	// pinned maps a UID to the transaction that has prepared a write for
	// it, to refuse conflicting prepares.
	pinned map[uid.UID]string
}

// New returns an empty store for the named node over a fresh in-memory
// backend — the simulation default, where "stable" means the backend
// value is kept across the simulated crash.
func New(name string) *Store {
	s, err := OpenWith(name, storage.MemFactory())
	if err != nil {
		// The in-memory factory cannot fail.
		panic(fmt.Sprintf("store: open %s: %v", name, err))
	}
	return s
}

// OpenWith opens the named node's store over the backend the factory
// yields, loading any persisted state. The factory is kept for Reopen:
// after a Shutdown (crash) it opens the backend again.
func OpenWith(name string, f storage.Factory) (*Store, error) {
	s := &Store{name: name, factory: f, closed: true}
	if err := s.Reopen(); err != nil {
		return nil, err
	}
	return s, nil
}

// Name returns the owning node's name.
func (s *Store) Name() string { return s.name }

// Backend returns the store's current storage backend (nil while shut
// down). The coordinator outcome log of a node conventionally shares it,
// so commit records live on the same stable storage as object state.
func (s *Store) Backend() storage.Backend {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.backend
}

// Shutdown models the stable-storage side of a node crash: the backend
// is closed and every in-process map is dropped. With a disk backend
// nothing of the store's contents remains in memory; with the in-memory
// backend the data lives on inside the (kept) backend value. Shutdown is
// idempotent.
func (s *Store) Shutdown() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.backend.Close()
	s.backend = nil
	s.committed = nil
	s.intentions = nil
	s.pinned = nil
	return err
}

// Reopen reverses a Shutdown: the factory opens the backend (replaying
// its contents, for a disk backend) and the working maps are rebuilt
// from it. Reopening an open store is a no-op.
func (s *Store) Reopen() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		return nil
	}
	b, err := s.factory()
	if err != nil {
		return fmt.Errorf("store: reopen %s: %w", s.name, err)
	}
	st, err := b.Load()
	if err != nil {
		return fmt.Errorf("store: load %s: %w", s.name, err)
	}
	committed := make(map[uid.UID]Version, len(st.Versions))
	for id, v := range st.Versions {
		u, err := uid.Parse(id)
		if err != nil {
			return fmt.Errorf("store: load %s: bad uid %q: %w", s.name, id, err)
		}
		committed[u] = Version{Data: v.Data, Seq: v.Seq, TxID: v.Tx}
	}
	intentions := make(map[string]map[uid.UID]Write, len(st.Intentions))
	pinned := make(map[uid.UID]string)
	for tx, m := range st.Intentions {
		in := make(map[uid.UID]Write, len(m))
		for id, w := range m {
			u, err := uid.Parse(id)
			if err != nil {
				return fmt.Errorf("store: load %s: bad uid %q: %w", s.name, id, err)
			}
			in[u] = Write{UID: u, Data: w.Data, Seq: w.Seq}
			pinned[u] = tx
		}
		intentions[tx] = in
	}
	s.backend = b
	s.committed = committed
	s.intentions = intentions
	s.pinned = pinned
	s.closed = false
	return nil
}

// Read returns the committed version of id.
func (s *Store) Read(id uid.UID) (Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Version{}, fmt.Errorf("%s: %w", s.name, ErrClosed)
	}
	v, ok := s.committed[id]
	if !ok {
		return Version{}, fmt.Errorf("%s: %v: %w", s.name, id, ErrNoState)
	}
	// Copy data so callers cannot alias the store's buffer.
	out := v
	out.Data = append([]byte(nil), v.Data...)
	return out, nil
}

// SeqOf returns the committed sequence number for id, or (0, false).
func (s *Store) SeqOf(id uid.UID) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, false
	}
	v, ok := s.committed[id]
	return v.Seq, ok
}

// Put writes a committed version directly, outside any transaction — used
// to install initial states and by recovery catch-up. The write is
// durable when Put returns.
//
// Mutating methods follow one discipline: validate, append the backend
// records and apply the in-memory update under the store mutex — so WAL
// order always matches memory order — then Sync OUTSIDE the mutex before
// returning. Nothing is acknowledged before it is durable, and because a
// WAL is prefix-durable (an fsync covers everything appended before it),
// any state a later operation built on is durable by the time that
// operation acks. Releasing the mutex across the fsync is what lets a
// disk backend's group commit coalesce concurrent transactions' syncs.
func (s *Store) Put(id uid.UID, data []byte, seq uint64) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%s: put %v: %w", s.name, id, ErrClosed)
	}
	b := s.backend
	copied := append([]byte(nil), data...)
	if err := b.PutVersion(id.String(), storage.Version{Data: copied, Seq: seq}); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("%s: put %v: %w", s.name, id, err)
	}
	s.committed[id] = Version{Data: copied, Seq: seq}
	s.mu.Unlock()
	if err := b.Sync(); err != nil {
		return fmt.Errorf("%s: put %v: %w", s.name, id, err)
	}
	return nil
}

// Remove deletes any committed state for id.
func (s *Store) Remove(id uid.UID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%s: remove %v: %w", s.name, id, ErrClosed)
	}
	if err := s.backend.DeleteVersion(id.String()); err != nil {
		return fmt.Errorf("%s: remove %v: %w", s.name, id, err)
	}
	delete(s.committed, id)
	return nil
}

// Prepare stably records the writes of transaction tx: the intentions
// are durable — synced through the backend — before Prepare returns,
// which is what entitles the store to vote commit. It refuses with
// ErrBusy if another transaction has a prepared intention on any of the
// same objects. Prepares for the same tx merge: a later write to the same
// object replaces the earlier one, writes to new objects accumulate. This
// makes both idempotent retries and multiple per-object participants of
// one action safe.
func (s *Store) Prepare(tx string, writes []Write) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%s: prepare %s: %w", s.name, tx, ErrClosed)
	}
	for _, w := range writes {
		if other, ok := s.pinned[w.UID]; ok && other != tx {
			s.mu.Unlock()
			return fmt.Errorf("%s: %v pinned by %s: %w", s.name, w.UID, other, ErrBusy)
		}
		// Version-chain check: a write must extend the committed chain by
		// exactly one, guarding against stale activated copies writing
		// back over newer state.
		if cur, ok := s.committed[w.UID]; ok && w.Seq != cur.Seq+1 {
			s.mu.Unlock()
			return fmt.Errorf("%s: %v write seq %d, committed seq %d: %w",
				s.name, w.UID, w.Seq, cur.Seq, ErrStaleVersion)
		}
	}
	b := s.backend
	copies := make([]Write, len(writes))
	for i, w := range writes {
		copies[i] = Write{UID: w.UID, Data: append([]byte(nil), w.Data...), Seq: w.Seq}
		if err := b.PutIntention(tx, w.UID.String(), storage.Write{Data: copies[i].Data, Seq: w.Seq}); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("%s: prepare %s: %w", s.name, tx, err)
		}
	}
	m, ok := s.intentions[tx]
	if !ok {
		m = make(map[uid.UID]Write, len(writes))
		s.intentions[tx] = m
	}
	for _, w := range copies {
		m[w.UID] = w
		s.pinned[w.UID] = tx
	}
	s.mu.Unlock()
	// Sync outside the mutex (see Put); the intention must be durable
	// before the vote this return represents.
	if err := b.Sync(); err != nil {
		return fmt.Errorf("%s: prepare %s: %w", s.name, tx, err)
	}
	return nil
}

// Commit applies tx's prepared intentions; the commit is durable when it
// returns. Committing an unknown tx is a no-op (the intention may have
// already been applied — idempotent retry).
func (s *Store) Commit(tx string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%s: commit %s: %w", s.name, tx, ErrClosed)
	}
	b := s.backend
	writes, ok := s.intentions[tx]
	if ok {
		if err := b.CommitTx(tx); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("%s: commit %s: %w", s.name, tx, err)
		}
		for _, w := range writes {
			s.committed[w.UID] = Version{Data: w.Data, Seq: w.Seq, TxID: tx}
		}
		s.clearLocked(tx)
	}
	s.mu.Unlock()
	// Sync even on the unknown-tx no-op path: a duplicate Commit racing
	// the original must not acknowledge before the original's record is
	// durable (the ack licenses the coordinator to prune its outcome
	// record).
	if err := b.Sync(); err != nil {
		return fmt.Errorf("%s: commit %s: %w", s.name, tx, err)
	}
	return nil
}

// CommitOnePhase validates and applies writes for tx in one step — the
// single-participant combined prepare+commit of the voting 2PC fast
// path. The same admission checks as Prepare apply (conflicting pinned
// intentions, version-chain extension); on success the writes are
// committed atomically under the store mutex, together with any
// intentions previously prepared under the same tx, and nothing is left
// pending. On failure the store is untouched except that earlier
// intentions of tx remain (the coordinator's roll-back clears them).
func (s *Store) CommitOnePhase(tx string, writes []Write) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("%s: commit-one-phase %s: %w", s.name, tx, ErrClosed)
	}
	for _, w := range writes {
		if other, ok := s.pinned[w.UID]; ok && other != tx {
			s.mu.Unlock()
			return fmt.Errorf("%s: %v pinned by %s: %w", s.name, w.UID, other, ErrBusy)
		}
		if cur, ok := s.committed[w.UID]; ok && w.Seq != cur.Seq+1 {
			s.mu.Unlock()
			return fmt.Errorf("%s: %v write seq %d, committed seq %d: %w",
				s.name, w.UID, w.Seq, cur.Seq, ErrStaleVersion)
		}
	}
	b := s.backend
	copies := make([]Write, len(writes))
	for i, w := range writes {
		copies[i] = Write{UID: w.UID, Data: append([]byte(nil), w.Data...), Seq: w.Seq}
	}
	// Earlier intentions of tx fold in, then the combined round's writes
	// land as committed versions; one sync (outside the mutex) covers it
	// all.
	if err := b.CommitTx(tx); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("%s: commit-one-phase %s: %w", s.name, tx, err)
	}
	for _, w := range copies {
		if err := b.PutVersion(w.UID.String(), storage.Version{Data: w.Data, Seq: w.Seq, Tx: tx}); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("%s: commit-one-phase %s: %w", s.name, tx, err)
		}
	}
	for _, w := range s.intentions[tx] {
		s.committed[w.UID] = Version{Data: w.Data, Seq: w.Seq, TxID: tx}
	}
	for _, w := range copies {
		s.committed[w.UID] = Version{Data: w.Data, Seq: w.Seq, TxID: tx}
	}
	s.clearLocked(tx)
	s.mu.Unlock()
	if err := b.Sync(); err != nil {
		return fmt.Errorf("%s: commit-one-phase %s: %w", s.name, tx, err)
	}
	return nil
}

// PendingWrites returns the number of distinct objects with prepared
// writes under tx (0 if unknown). Exposed for tests and recovery tooling.
func (s *Store) PendingWrites(tx string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.intentions[tx])
}

// Abort discards tx's prepared intentions; unknown tx is a no-op. The
// abort record is appended but not synced: losing it to a crash merely
// leaves an intention that presumed abort rolls back at recovery.
func (s *Store) Abort(tx string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("%s: abort %s: %w", s.name, tx, ErrClosed)
	}
	if _, ok := s.intentions[tx]; ok {
		if err := s.backend.AbortTx(tx); err != nil {
			return fmt.Errorf("%s: abort %s: %w", s.name, tx, err)
		}
	}
	s.clearLocked(tx)
	return nil
}

func (s *Store) clearLocked(tx string) {
	for _, w := range s.intentions[tx] {
		if s.pinned[w.UID] == tx {
			delete(s.pinned, w.UID)
		}
	}
	delete(s.intentions, tx)
}

// PendingTxs returns the transaction IDs with prepared, undecided
// intentions, sorted for determinism. Recovery resolves these against the
// commit log.
func (s *Store) PendingTxs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.intentions))
	for tx := range s.intentions {
		out = append(out, tx)
	}
	sort.Strings(out)
	return out
}

// Objects returns the UIDs with committed state, sorted by string form.
func (s *Store) Objects() []uid.UID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uid.UID, 0, len(s.committed))
	for id := range s.committed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Outcome is a transaction's decided fate, as recorded by the commit log.
type Outcome int

// Transaction outcomes.
const (
	// OutcomeUnknown is the coordinator's AFFIRMATIVE "no record" answer:
	// the transaction never reached its commit point, so presumed abort
	// applies.
	OutcomeUnknown Outcome = iota
	OutcomeCommitted
	OutcomeAborted
	// OutcomeUnavailable means the log could not be consulted at all (the
	// coordinator is unreachable or the query failed). It is NOT a license
	// to presume abort — a participant that voted commit must keep its
	// intention pending until an affirmative answer arrives; rolling back
	// on a transient partition could undo a committed transaction.
	OutcomeUnavailable
)

// OutcomeLog answers recovery-time outcome queries — the minimal "commit
// record" service of a 2PC coordinator.
type OutcomeLog interface {
	Lookup(tx string) Outcome
}

// ResolveDecided resolves pending intentions that have an AFFIRMATIVE
// recorded outcome — committed ones apply, aborted ones roll back — and
// leaves everything else (no record, coordinator unreachable) pending.
// Unlike Recover it never presumes abort: it runs against LIVE stores —
// the write-back busy-retry path, where a store still pinned by a
// transaction whose phase-two message was lost must learn the real
// outcome before a new transaction gives up on it — and a transaction
// with no record yet may simply be mid-flight between its commit vote
// and its commit record; only a recovering participant may read "no
// record" as abort. A nil log resolves nothing.
func (s *Store) ResolveDecided(log OutcomeLog) (applied, aborted []string) {
	if log == nil {
		return nil, nil
	}
	for _, tx := range s.PendingTxs() {
		switch log.Lookup(tx) {
		case OutcomeCommitted:
			_ = s.Commit(tx)
			applied = append(applied, tx)
		case OutcomeAborted:
			_ = s.Abort(tx)
			aborted = append(aborted, tx)
		}
	}
	return applied, aborted
}

// Recover resolves every pending intention against log: committed
// transactions are applied, unknown/aborted ones rolled back (presumed
// abort — OutcomeUnknown is the coordinator's affirmative "no commit
// record" answer), and intentions whose coordinator could not be
// consulted (OutcomeUnavailable) are left pending for a later retry. A
// nil log rolls everything back (no coordinator will ever answer — the
// caller asserts presumed abort). It returns the transactions applied
// and aborted; still-pending ones remain visible via PendingTxs.
func (s *Store) Recover(log OutcomeLog) (applied, aborted []string) {
	for _, tx := range s.PendingTxs() {
		outcome := OutcomeUnknown
		if log != nil {
			outcome = log.Lookup(tx)
		}
		switch outcome {
		case OutcomeCommitted:
			// Commit never fails for a known tx on healthy storage.
			_ = s.Commit(tx)
			applied = append(applied, tx)
		case OutcomeUnavailable:
			// In doubt and unanswerable: keep the intention.
		default:
			_ = s.Abort(tx)
			aborted = append(aborted, tx)
		}
	}
	return applied, aborted
}
