// Package store implements the Object Storage service of the paper (§2.2):
// a stable-storage repository for the states of persistent objects, named
// by UIDs.
//
// A Store models one node's stable object store. Data written through the
// two-phase interface (Prepare/Commit/Abort) or directly (Put) survives
// node crashes — the simulation keeps the Store value across Crash() and
// only discards volatile state — matching the paper's failure assumptions
// (§2.1). Prepared-but-undecided intentions are stable too, and are
// resolved at recovery against the commit log (presumed abort).
//
// Each committed object version carries a sequence number; two store nodes
// hold *mutually consistent* states of an object exactly when their
// sequence numbers for it are equal, which is the property the Object
// State database's St sets are maintained to guarantee.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/uid"
)

// ErrNoState reports that a store holds no committed state for a UID.
var ErrNoState = errors.New("store: no state for object")

// ErrBusy reports that a conflicting prepared intention exists for a UID.
var ErrBusy = errors.New("store: object has a prepared intention")

// ErrStaleVersion reports a prepared write whose sequence number does not
// extend this store's committed chain (it must be committed seq + 1). A
// server whose write-back is refused as stale everywhere has been serving
// an out-of-date activated copy and must re-activate from the current
// state; a single store refusing as stale is itself lagging and is
// excluded from St by the caller.
var ErrStaleVersion = errors.New("store: stale version chain")

// Version is one committed object state.
type Version struct {
	// Data is the serialized object state.
	Data []byte
	// Seq is the state's version number; replicas with equal Seq for a UID
	// are mutually consistent.
	Seq uint64
	// TxID is the action that committed this version ("" for direct puts).
	TxID string
}

// Write is one intended object-state update inside a transaction.
type Write struct {
	UID  uid.UID
	Data []byte
	// Seq is assigned by the committing action so that all replica stores
	// record the same version number.
	Seq uint64
}

// Store is one node's stable object store. It is safe for concurrent use.
type Store struct {
	name string

	mu        sync.Mutex
	committed map[uid.UID]Version
	// intentions maps a transaction ID to its stable, prepared writes,
	// keyed by object so that repeated prepares for the same transaction
	// merge (last write per object wins).
	intentions map[string]map[uid.UID]Write
	// pinned maps a UID to the transaction that has prepared a write for
	// it, to refuse conflicting prepares.
	pinned map[uid.UID]string
}

// New returns an empty store for the named node.
func New(name string) *Store {
	return &Store{
		name:       name,
		committed:  make(map[uid.UID]Version),
		intentions: make(map[string]map[uid.UID]Write),
		pinned:     make(map[uid.UID]string),
	}
}

// Name returns the owning node's name.
func (s *Store) Name() string { return s.name }

// Read returns the committed version of id.
func (s *Store) Read(id uid.UID) (Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.committed[id]
	if !ok {
		return Version{}, fmt.Errorf("%s: %v: %w", s.name, id, ErrNoState)
	}
	// Copy data so callers cannot alias the store's buffer.
	out := v
	out.Data = append([]byte(nil), v.Data...)
	return out, nil
}

// SeqOf returns the committed sequence number for id, or (0, false).
func (s *Store) SeqOf(id uid.UID) (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.committed[id]
	return v.Seq, ok
}

// Put writes a committed version directly, outside any transaction — used
// to install initial states and by recovery catch-up.
func (s *Store) Put(id uid.UID, data []byte, seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.committed[id] = Version{Data: append([]byte(nil), data...), Seq: seq}
}

// Remove deletes any committed state for id.
func (s *Store) Remove(id uid.UID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.committed, id)
}

// Prepare stably records the writes of transaction tx. It refuses with
// ErrBusy if another transaction has a prepared intention on any of the
// same objects. Prepares for the same tx merge: a later write to the same
// object replaces the earlier one, writes to new objects accumulate. This
// makes both idempotent retries and multiple per-object participants of
// one action safe.
func (s *Store) Prepare(tx string, writes []Write) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range writes {
		if other, ok := s.pinned[w.UID]; ok && other != tx {
			return fmt.Errorf("%s: %v pinned by %s: %w", s.name, w.UID, other, ErrBusy)
		}
		// Version-chain check: a write must extend the committed chain by
		// exactly one, guarding against stale activated copies writing
		// back over newer state.
		if cur, ok := s.committed[w.UID]; ok && w.Seq != cur.Seq+1 {
			return fmt.Errorf("%s: %v write seq %d, committed seq %d: %w",
				s.name, w.UID, w.Seq, cur.Seq, ErrStaleVersion)
		}
	}
	m, ok := s.intentions[tx]
	if !ok {
		m = make(map[uid.UID]Write, len(writes))
		s.intentions[tx] = m
	}
	for _, w := range writes {
		m[w.UID] = Write{UID: w.UID, Data: append([]byte(nil), w.Data...), Seq: w.Seq}
		s.pinned[w.UID] = tx
	}
	return nil
}

// Commit applies tx's prepared intentions. Committing an unknown tx is a
// no-op (the intention may have already been applied — idempotent retry).
func (s *Store) Commit(tx string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	writes, ok := s.intentions[tx]
	if !ok {
		return nil
	}
	for _, w := range writes {
		s.committed[w.UID] = Version{Data: w.Data, Seq: w.Seq, TxID: tx}
	}
	s.clearLocked(tx)
	return nil
}

// CommitOnePhase validates and applies writes for tx in one step — the
// single-participant combined prepare+commit of the voting 2PC fast
// path. The same admission checks as Prepare apply (conflicting pinned
// intentions, version-chain extension); on success the writes are
// committed atomically under the store mutex, together with any
// intentions previously prepared under the same tx, and nothing is left
// pending. On failure the store is untouched except that earlier
// intentions of tx remain (the coordinator's roll-back clears them).
func (s *Store) CommitOnePhase(tx string, writes []Write) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range writes {
		if other, ok := s.pinned[w.UID]; ok && other != tx {
			return fmt.Errorf("%s: %v pinned by %s: %w", s.name, w.UID, other, ErrBusy)
		}
		if cur, ok := s.committed[w.UID]; ok && w.Seq != cur.Seq+1 {
			return fmt.Errorf("%s: %v write seq %d, committed seq %d: %w",
				s.name, w.UID, w.Seq, cur.Seq, ErrStaleVersion)
		}
	}
	for _, w := range s.intentions[tx] {
		s.committed[w.UID] = Version{Data: w.Data, Seq: w.Seq, TxID: tx}
	}
	for _, w := range writes {
		s.committed[w.UID] = Version{Data: append([]byte(nil), w.Data...), Seq: w.Seq, TxID: tx}
	}
	s.clearLocked(tx)
	return nil
}

// PendingWrites returns the number of distinct objects with prepared
// writes under tx (0 if unknown). Exposed for tests and recovery tooling.
func (s *Store) PendingWrites(tx string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.intentions[tx])
}

// Abort discards tx's prepared intentions; unknown tx is a no-op.
func (s *Store) Abort(tx string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clearLocked(tx)
	return nil
}

func (s *Store) clearLocked(tx string) {
	for _, w := range s.intentions[tx] {
		if s.pinned[w.UID] == tx {
			delete(s.pinned, w.UID)
		}
	}
	delete(s.intentions, tx)
}

// PendingTxs returns the transaction IDs with prepared, undecided
// intentions, sorted for determinism. Recovery resolves these against the
// commit log.
func (s *Store) PendingTxs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.intentions))
	for tx := range s.intentions {
		out = append(out, tx)
	}
	sort.Strings(out)
	return out
}

// Objects returns the UIDs with committed state, sorted by string form.
func (s *Store) Objects() []uid.UID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uid.UID, 0, len(s.committed))
	for id := range s.committed {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Outcome is a transaction's decided fate, as recorded by the commit log.
type Outcome int

// Transaction outcomes.
const (
	// OutcomeUnknown is the coordinator's AFFIRMATIVE "no record" answer:
	// the transaction never reached its commit point, so presumed abort
	// applies.
	OutcomeUnknown Outcome = iota
	OutcomeCommitted
	OutcomeAborted
	// OutcomeUnavailable means the log could not be consulted at all (the
	// coordinator is unreachable or the query failed). It is NOT a license
	// to presume abort — a participant that voted commit must keep its
	// intention pending until an affirmative answer arrives; rolling back
	// on a transient partition could undo a committed transaction.
	OutcomeUnavailable
)

// OutcomeLog answers recovery-time outcome queries — the minimal "commit
// record" service of a 2PC coordinator.
type OutcomeLog interface {
	Lookup(tx string) Outcome
}

// Recover resolves every pending intention against log: committed
// transactions are applied, unknown/aborted ones rolled back (presumed
// abort — OutcomeUnknown is the coordinator's affirmative "no commit
// record" answer), and intentions whose coordinator could not be
// consulted (OutcomeUnavailable) are left pending for a later retry. A
// nil log rolls everything back (no coordinator will ever answer — the
// caller asserts presumed abort). It returns the transactions applied
// and aborted; still-pending ones remain visible via PendingTxs.
func (s *Store) Recover(log OutcomeLog) (applied, aborted []string) {
	for _, tx := range s.PendingTxs() {
		outcome := OutcomeUnknown
		if log != nil {
			outcome = log.Lookup(tx)
		}
		switch outcome {
		case OutcomeCommitted:
			// Commit never fails for a known tx.
			_ = s.Commit(tx)
			applied = append(applied, tx)
		case OutcomeUnavailable:
			// In doubt and unanswerable: keep the intention.
		default:
			_ = s.Abort(tx)
			aborted = append(aborted, tx)
		}
	}
	return applied, aborted
}
