package store

import (
	"reflect"
	"testing"

	"repro/internal/rpc"
)

// TestWireRoundTrip round-trips every binary codec in this package through
// rpc.Encode/Decode with representative populated values.
func TestWireRoundTrip(t *testing.T) {
	cases := []struct{ in, out any }{
		{&Ack{}, &Ack{}},
		{&ReadReq{UID: "obj"}, &ReadReq{}},
		{&ReadResp{Data: []byte{1, 2}, Seq: 9, TxID: "tx-1"}, &ReadResp{}},
		{&PutReq{UID: "obj", Data: []byte{3}, Seq: 10}, &PutReq{}},
		{&SeqOfReq{UID: "obj"}, &SeqOfReq{}},
		{&SeqOfResp{Seq: 11, OK: true}, &SeqOfResp{}},
		{&PrepareReq{
			Tx:     "tx-2",
			Writes: []WriteRec{{UID: "o1", Data: []byte{4, 5}, Seq: 12}, {UID: "o2", Seq: 13}},
		}, &PrepareReq{}},
		{&TxReq{Tx: "tx-3"}, &TxReq{}},
	}
	for _, c := range cases {
		data, err := rpc.Encode(c.in)
		if err != nil {
			t.Fatalf("%T: encode: %v", c.in, err)
		}
		if data[0] != rpc.WireMagic {
			t.Fatalf("%T: not binary-coded (first byte %#x)", c.in, data[0])
		}
		if err := rpc.Decode(data, c.out); err != nil {
			t.Fatalf("%T: decode: %v", c.in, err)
		}
		if !reflect.DeepEqual(c.in, c.out) {
			t.Errorf("%T mismatch:\n in: %+v\nout: %+v", c.in, c.in, c.out)
		}
	}
}

// TestWireTagsUnique catches accidental tag reuse inside this package's block.
func TestWireTagsUnique(t *testing.T) {
	types := []rpc.Wire{
		&Ack{}, &ReadReq{}, &ReadResp{}, &PutReq{}, &SeqOfReq{}, &SeqOfResp{},
		&PrepareReq{}, &TxReq{},
	}
	seen := map[byte]string{}
	for _, w := range types {
		tag, ver := w.WireTag()
		if ver == 0 {
			t.Errorf("%T: version 0 is reserved", w)
		}
		if prev, dup := seen[tag]; dup {
			t.Errorf("tag %#x reused by %T and %s", tag, w, prev)
		}
		seen[tag] = reflect.TypeOf(w).String()
	}
}
