package store

import "repro/internal/rpc"

// Binary codecs (rpc.Wire) for the object-store wire records: the 2PC
// prepare/commit/abort legs every dirty commit fans out, plus the read
// path activation rides. Tags live in the 0x40–0x4f block of the registry
// in internal/rpc/doc.go. All codecs are at version 1.
const (
	wireTagAck byte = 0x40 + iota
	wireTagReadReq
	wireTagReadResp
	wireTagPutReq
	wireTagSeqOfReq
	wireTagSeqOfResp
	wireTagPrepareReq
	wireTagTxReq
)

// Ack

// WireTag implements rpc.Wire.
func (*Ack) WireTag() (byte, byte) { return wireTagAck, 1 }

// AppendWire implements rpc.Wire.
func (*Ack) AppendWire(dst []byte) []byte { return dst }

// ParseWire implements rpc.Wire.
func (*Ack) ParseWire(byte, *rpc.WireReader) error { return nil }

// ReadReq

// WireTag implements rpc.Wire.
func (*ReadReq) WireTag() (byte, byte) { return wireTagReadReq, 1 }

// AppendWire implements rpc.Wire.
func (q *ReadReq) AppendWire(dst []byte) []byte { return rpc.AppendString(dst, q.UID) }

// ParseWire implements rpc.Wire.
func (q *ReadReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.UID = r.String()
	return nil
}

// ReadResp

// WireTag implements rpc.Wire.
func (*ReadResp) WireTag() (byte, byte) { return wireTagReadResp, 1 }

// WireSizeHint implements rpc.WireSizer.
func (p *ReadResp) WireSizeHint() int { return len(p.Data) + len(p.TxID) + 24 }

// AppendWire implements rpc.Wire.
func (p *ReadResp) AppendWire(dst []byte) []byte {
	dst = rpc.AppendBytes(dst, p.Data)
	dst = rpc.AppendUvarint(dst, p.Seq)
	return rpc.AppendString(dst, p.TxID)
}

// ParseWire implements rpc.Wire.
func (p *ReadResp) ParseWire(_ byte, r *rpc.WireReader) error {
	p.Data = r.Bytes()
	p.Seq = r.Uvarint()
	p.TxID = r.String()
	return nil
}

// PutReq

// WireTag implements rpc.Wire.
func (*PutReq) WireTag() (byte, byte) { return wireTagPutReq, 1 }

// WireSizeHint implements rpc.WireSizer.
func (q *PutReq) WireSizeHint() int { return len(q.UID) + len(q.Data) + 24 }

// AppendWire implements rpc.Wire.
func (q *PutReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.UID)
	dst = rpc.AppendBytes(dst, q.Data)
	return rpc.AppendUvarint(dst, q.Seq)
}

// ParseWire implements rpc.Wire.
func (q *PutReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.UID = r.String()
	q.Data = r.Bytes()
	q.Seq = r.Uvarint()
	return nil
}

// SeqOfReq

// WireTag implements rpc.Wire.
func (*SeqOfReq) WireTag() (byte, byte) { return wireTagSeqOfReq, 1 }

// AppendWire implements rpc.Wire.
func (q *SeqOfReq) AppendWire(dst []byte) []byte { return rpc.AppendString(dst, q.UID) }

// ParseWire implements rpc.Wire.
func (q *SeqOfReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.UID = r.String()
	return nil
}

// SeqOfResp

// WireTag implements rpc.Wire.
func (*SeqOfResp) WireTag() (byte, byte) { return wireTagSeqOfResp, 1 }

// AppendWire implements rpc.Wire.
func (p *SeqOfResp) AppendWire(dst []byte) []byte {
	dst = rpc.AppendUvarint(dst, p.Seq)
	return rpc.AppendBool(dst, p.OK)
}

// ParseWire implements rpc.Wire.
func (p *SeqOfResp) ParseWire(_ byte, r *rpc.WireReader) error {
	p.Seq = r.Uvarint()
	p.OK = r.Bool()
	return nil
}

// PrepareReq

// WireTag implements rpc.Wire.
func (*PrepareReq) WireTag() (byte, byte) { return wireTagPrepareReq, 1 }

// WireSizeHint implements rpc.WireSizer.
func (q *PrepareReq) WireSizeHint() int {
	n := len(q.Tx) + 16
	for _, w := range q.Writes {
		n += len(w.UID) + len(w.Data) + 24
	}
	return n
}

// AppendWire implements rpc.Wire.
func (q *PrepareReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.Tx)
	dst = rpc.AppendUvarint(dst, uint64(len(q.Writes)))
	for _, w := range q.Writes {
		dst = rpc.AppendString(dst, w.UID)
		dst = rpc.AppendBytes(dst, w.Data)
		dst = rpc.AppendUvarint(dst, w.Seq)
	}
	return dst
}

// ParseWire implements rpc.Wire.
func (q *PrepareReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.Tx = r.String()
	n := r.Uvarint()
	if r.Err() != nil || n == 0 {
		return r.Err()
	}
	if n > uint64(r.Remaining()) {
		return rpc.ErrWire
	}
	q.Writes = make([]WriteRec, 0, n)
	for i := uint64(0); i < n; i++ {
		q.Writes = append(q.Writes, WriteRec{UID: r.String(), Data: r.Bytes(), Seq: r.Uvarint()})
	}
	return nil
}

// TxReq

// WireTag implements rpc.Wire.
func (*TxReq) WireTag() (byte, byte) { return wireTagTxReq, 1 }

// AppendWire implements rpc.Wire.
func (q *TxReq) AppendWire(dst []byte) []byte { return rpc.AppendString(dst, q.Tx) }

// ParseWire implements rpc.Wire.
func (q *TxReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.Tx = r.String()
	return nil
}
