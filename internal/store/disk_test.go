package store

import (
	"errors"
	"testing"

	"repro/internal/storage"
	"repro/internal/uid"
)

// stubLog answers every lookup with a fixed outcome.
type stubLog Outcome

func (l stubLog) Lookup(string) Outcome { return Outcome(l) }

func diskStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := OpenWith("st-disk", storage.DiskFactory(dir, storage.DiskOptions{}))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDiskStoreShutdownDropsProcessState: after Shutdown nothing of the
// store's contents is reachable in process memory — reads fail closed —
// and Reopen replays everything from the directory.
func TestDiskStoreShutdownDropsProcessState(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	id := uid.UID{Origin: "obj", Epoch: 1, Seq: 1}
	if err := s.Put(id, []byte("v1"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare("tx-1", []Write{{UID: id, Data: []byte("v2"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(id); !errors.Is(err, ErrClosed) {
		t.Fatalf("read on shut-down store = %v, want ErrClosed", err)
	}
	if _, ok := s.SeqOf(id); ok {
		t.Fatal("SeqOf found state on a shut-down store")
	}
	if pend := s.PendingTxs(); len(pend) != 0 {
		t.Fatalf("pending intentions visible after shutdown: %v", pend)
	}
	if err := s.Prepare("tx-2", []Write{{UID: id, Data: []byte("x"), Seq: 2}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("prepare on shut-down store = %v, want ErrClosed", err)
	}

	if err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(id)
	if err != nil || string(v.Data) != "v1" || v.Seq != 1 {
		t.Fatalf("reloaded = %q/%d (%v), want v1/1", v.Data, v.Seq, err)
	}
	if pend := s.PendingTxs(); len(pend) != 1 || pend[0] != "tx-1" {
		t.Fatalf("reloaded pending = %v, want [tx-1]", pend)
	}
	// The reloaded intention still pins its object against other txs.
	if err := s.Prepare("tx-2", []Write{{UID: id, Data: []byte("x"), Seq: 2}}); !errors.Is(err, ErrBusy) {
		t.Fatalf("conflicting prepare after reload = %v, want ErrBusy", err)
	}
}

// TestDiskIntentionSurvivesUnavailableThenResolves: the in-doubt
// protocol over a real restart — a replayed prepared intention stays
// pending while the coordinator is unreachable (OutcomeUnavailable) and
// resolves once an affirmative answer arrives.
func TestDiskIntentionSurvivesUnavailableThenResolves(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	id := uid.UID{Origin: "obj", Epoch: 1, Seq: 1}
	if err := s.Put(id, []byte("0"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare("tx-doubt", []Write{{UID: id, Data: []byte("1"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reopen(); err != nil {
		t.Fatal(err)
	}

	// Coordinator unreachable: the intention must survive the sweep.
	applied, aborted := s.Recover(stubLog(OutcomeUnavailable))
	if len(applied)+len(aborted) != 0 {
		t.Fatalf("unavailable coordinator resolved applied=%v aborted=%v", applied, aborted)
	}
	if pend := s.PendingTxs(); len(pend) != 1 {
		t.Fatalf("in-doubt intention gone: %v", pend)
	}

	// Another restart in between: still pending, still durable.
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	if pend := s.PendingTxs(); len(pend) != 1 {
		t.Fatalf("in-doubt intention lost across second restart: %v", pend)
	}

	// The coordinator finally answers: committed — the replayed intention
	// applies and the result is durable.
	applied, _ = s.Recover(stubLog(OutcomeCommitted))
	if len(applied) != 1 || applied[0] != "tx-doubt" {
		t.Fatalf("applied = %v, want [tx-doubt]", applied)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(id)
	if err != nil || string(v.Data) != "1" || v.Seq != 2 || v.TxID != "tx-doubt" {
		t.Fatalf("final state = %+v (%v), want committed 1/2 by tx-doubt", v, err)
	}
	if pend := s.PendingTxs(); len(pend) != 0 {
		t.Fatalf("resolved intention still pending: %v", pend)
	}
}

// TestDiskReopenAfterTornTail: a torn write (junk after the last synced
// record) loses nothing that was acknowledged.
func TestDiskReopenAfterTornTail(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	id := uid.UID{Origin: "obj", Epoch: 1, Seq: 1}
	if err := s.Put(id, []byte("acked"), 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Prepare("tx-p", []Write{{UID: id, Data: []byte("next"), Seq: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append: a frame header promising bytes that never made
	// it to the platter.
	if err := storage.CorruptWALTail(dir, []byte{0x40, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(id)
	if err != nil || string(v.Data) != "acked" || v.Seq != 1 {
		t.Fatalf("state after torn tail = %q/%d (%v), want acked/1", v.Data, v.Seq, err)
	}
	if pend := s.PendingTxs(); len(pend) != 1 || pend[0] != "tx-p" {
		t.Fatalf("acked intention lost to torn tail: %v", pend)
	}
	// The store keeps working: resolve and extend the chain.
	if err := s.Commit("tx-p"); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.Read(id); string(v.Data) != "next" || v.Seq != 2 {
		t.Fatalf("post-recovery commit = %q/%d, want next/2", v.Data, v.Seq)
	}
}

// TestDiskStoreCompacts: a long commit history stays bounded on disk and
// replays correctly through the snapshot.
func TestDiskStoreCompacts(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenWith("st-disk", storage.DiskFactory(dir, storage.DiskOptions{Sync: storage.SyncNone, CompactAt: 1024}))
	if err != nil {
		t.Fatal(err)
	}
	id := uid.UID{Origin: "obj", Epoch: 1, Seq: 1}
	if err := s.Put(id, []byte("0"), 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		tx := uid.UID{Origin: "c1", Epoch: 1, Seq: uint64(i + 1)}.String()
		data := []byte{byte('a' + i%26)}
		if err := s.Prepare(tx, []Write{{UID: id, Data: data, Seq: uint64(i + 2)}}); err != nil {
			t.Fatalf("prepare %d: %v", i, err)
		}
		if err := s.Commit(tx); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := s.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reopen(); err != nil {
		t.Fatal(err)
	}
	v, err := s.Read(id)
	if err != nil || v.Seq != 301 {
		t.Fatalf("after 300 commits: %+v (%v), want seq 301", v, err)
	}
}
