package object

import (
	"context"
	"testing"

	"repro/internal/transport"
)

func TestPassivateQuiescentSweep(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	// Find the manager: newWorld created one per sv node but did not keep
	// it; re-create a manager view via a fresh one on a new node instead.
	n := w.cluster.Add("svP")
	mgr := NewManager(n, w.reg)
	refP := ServerRef{Client: w.cluster.Node("client").Client(), Node: "svP", UID: w.id}
	if _, err := refP.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if mgr.ActiveCount() != 1 {
		t.Fatalf("active = %d", mgr.ActiveCount())
	}

	// A user is active: the sweep must skip the instance.
	if _, err := refP.Invoke(ctx, "a1", "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	rep := mgr.PassivateQuiescent()
	if len(rep.Passivated) != 0 || rep.Busy != 1 {
		t.Fatalf("sweep with user = %+v", rep)
	}
	if mgr.ActiveCount() != 1 {
		t.Fatal("busy instance passivated")
	}

	// After the action ends the object is quiescent and is swept. The
	// action's new state must be checkpointed (Prepare) before Commit so
	// that passivation does not lose it.
	if _, err := refP.Prepare(ctx, "a1", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := refP.Commit(ctx, "a1"); err != nil {
		t.Fatal(err)
	}
	rep = mgr.PassivateQuiescent()
	if len(rep.Passivated) != 1 || rep.Passivated[0] != w.id {
		t.Fatalf("sweep after commit = %+v", rep)
	}
	if mgr.ActiveCount() != 0 {
		t.Fatal("instance survived sweep")
	}

	// Re-activation works afterwards (state still in the stores).
	resp, err := refP.Activate(ctx, "counter", []transport.Addr{"st1", "st2"})
	if err != nil || !resp.Fresh {
		t.Fatalf("re-activate: %+v %v", resp, err)
	}
	got, err := refP.Invoke(ctx, "a2", "get", nil)
	if err != nil || string(got) != "1" {
		t.Fatalf("state after passivation cycle = %q %v", got, err)
	}
	if _, err := refP.Commit(ctx, "a2"); err != nil {
		t.Fatal(err)
	}
}

func TestDescribe(t *testing.T) {
	w := newWorld(t)
	n := w.cluster.Add("svD")
	mgr := NewManager(n, w.reg)
	if got := mgr.Describe(); got == "" {
		t.Fatal("empty describe")
	}
	ref := ServerRef{Client: w.cluster.Node("client").Client(), Node: "svD", UID: w.id}
	if _, err := ref.Activate(context.Background(), "counter", []transport.Addr{"st1"}); err != nil {
		t.Fatal(err)
	}
	if got := mgr.Describe(); got == "" {
		t.Fatal("empty describe with instance")
	}
}
