// Package object implements persistent objects and their servers (§2.2,
// §3.1 of the paper).
//
// An object is an instance of a Class: serialized state plus named methods.
// Persistent objects normally rest passive in object stores; a node in
// Sv_A activates an object by creating a server for it and loading its
// state from a store node in St_A. Atomic actions control all state
// changes: invocations take read or write locks owned by the invoking
// action, modified state is snapshotted for abort, and at commit time the
// server copies the new state to the St nodes (prepare/commit through the
// stores' two-phase interface). A quiescent server (no users) can
// passivate itself (§2.3(3)).
package object

import (
	"fmt"
	"sort"
	"sync"
)

// Method is one operation of a class: it receives the current serialized
// state and serialized arguments, and returns the new state (which may be
// the input state unchanged) and a serialized result.
type Method func(state, args []byte) (newState, result []byte, err error)

// Class defines the behaviour of a kind of persistent object. In the
// paper's terms the class's code is available at every node in Sv (the
// "executable binary of the code for the object's methods", §3.1); here
// that is modelled by registering the class in every node's Registry.
type Class struct {
	// Name identifies the class system-wide.
	Name string
	// Init produces the serialized initial state for new instances.
	Init func() []byte
	// Methods maps operation names to implementations.
	Methods map[string]Method
	// ReadOnly marks methods that never modify state; invocations of these
	// take read locks and need no commit-time state copy (the read
	// optimisation of §4.1.2/§4.2.1).
	ReadOnly map[string]bool
	// Commutative marks methods whose invocations commute with each other:
	// applying any set of them in any order yields the same final state
	// (e.g. a counter's add). The object server may fold queued commutative
	// invocations behind the same write lock into one execution and one
	// commit, provided each declares itself its action's entire write set.
	// Every method marked here must commute with every OTHER marked method
	// of the class, not just with itself.
	Commutative map[string]bool
}

// Method looks up a method by name.
func (c *Class) Method(name string) (Method, error) {
	m, ok := c.Methods[name]
	if !ok {
		return nil, fmt.Errorf("object: class %s has no method %q", c.Name, name)
	}
	return m, nil
}

// IsReadOnly reports whether the named method is marked read-only.
func (c *Class) IsReadOnly(name string) bool { return c.ReadOnly[name] }

// IsCommutative reports whether the named method is declared commutative.
func (c *Class) IsCommutative(name string) bool { return c.Commutative[name] }

// Registry maps class names to classes. It is safe for concurrent use.
type Registry struct {
	mu      sync.RWMutex
	classes map[string]*Class
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{classes: make(map[string]*Class)}
}

// Register adds or replaces a class.
func (r *Registry) Register(c *Class) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.classes[c.Name] = c
}

// Lookup returns the named class.
func (r *Registry) Lookup(name string) (*Class, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.classes[name]
	if !ok {
		return nil, fmt.Errorf("object: unknown class %q", name)
	}
	return c, nil
}

// Names returns the registered class names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.classes))
	for name := range r.classes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
