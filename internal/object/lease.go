package object

import (
	"context"
	"sort"
	"strings"
	"time"

	"repro/internal/conc"
	"repro/internal/group"
	"repro/internal/lease"
	"repro/internal/rpc"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
)

// LeaseGrant is a leased read snapshot piggybacked on an InvokeResp:
// the holder may serve read-only methods from State locally until the
// lease expires (TTL after the request was sent) or an invalidation
// record arrives on the ordered multicast. See internal/lease for the
// holder side and the safety argument.
type LeaseGrant struct {
	// Class names the object's type, so the holder can run its
	// read-only methods without a bind.
	Class string
	// State is the committed object state at version Seq.
	State []byte
	Seq   uint64
	// TTL is the lease duration, anchored at the holder's send instant.
	TTL time.Duration
}

// EnableLeases makes this node's object servers grant read leases with
// the given TTL and enforce the matching commit-time fence: a commit
// that advances an object's version is not acknowledged until every
// lease at the old version is provably dead — eagerly invalidated over
// the multicast, or waited out. Call during deployment setup, before
// traffic. A zero TTL leaves leasing disabled.
func (m *Manager) EnableLeases(ttl time.Duration) { m.leaseTTL = ttl }

// maybeGrant issues a read lease to holder for in's current state, or
// returns nil when the copy cannot be vouched for. Called with the
// invoking action holding the object's read lock, which excludes any
// concurrent version advance.
//
// Fence: this server may only vouch that its copy is the latest
// committed version if it has confirmed that against the stores within
// the last TTL — via a majority-acknowledged write-back of its own, or
// via the probe below. The window arithmetic is what makes a foreign
// committer's wait sound: every grant's expiry is bounded by
// confirmedAt + 2*TTL, and any commit elsewhere refutes this server's
// next confirmation, so confirmedAt < commit time and a committer that
// waits 2*TTL after its store write outlives every lease this server
// could have granted.
func (m *Manager) maybeGrant(ctx context.Context, in *instance, holder transport.Addr) *LeaseGrant {
	now := time.Now()
	in.mu.Lock()
	if len(in.dirty) > 0 {
		// Uncommitted writes in memory (necessarily the invoking
		// action's own: any other writer's lock would have excluded
		// this read) — the state is not a committed snapshot.
		in.mu.Unlock()
		return nil
	}
	seq := in.seq
	confirmed := in.confirmedAt
	stNodes := in.stNodes
	in.mu.Unlock()

	if now.After(confirmed.Add(m.leaseTTL)) {
		t0 := time.Now()
		if !m.probeLatest(ctx, in.id, seq, stNodes) {
			m.stats.Counter("lease.fence").Inc()
			return nil
		}
		in.mu.Lock()
		if t0.After(in.confirmedAt) {
			in.confirmedAt = t0
		}
		in.mu.Unlock()
	}

	in.mu.Lock()
	defer in.mu.Unlock()
	if in.seq != seq || len(in.dirty) > 0 {
		return nil
	}
	in.leaseSeq = seq
	in.leaseHolders[holder] = time.Now().Add(m.leaseTTL)
	m.stats.Counter("lease.grants").Inc()
	return &LeaseGrant{
		Class: in.class.Name,
		State: append([]byte(nil), in.state...),
		Seq:   seq,
		TTL:   m.leaseTTL,
	}
}

// markConfirmed records that at t0 this server's copy at seq was
// acknowledged latest by a majority of its activation-time St view.
// Called after a successful majority store prepare of the server's own
// write-back (the write-back's acceptance proves the base version was
// current at every accepting store).
func (in *instance) markConfirmed(t0 time.Time, acked, total int) {
	if total == 0 || acked < total/2+1 {
		return
	}
	in.mu.Lock()
	if t0.After(in.confirmedAt) {
		in.confirmedAt = t0
	}
	in.mu.Unlock()
}

// probeLatest confirms, against the activation-time St view, that seq
// is still the object's latest committed version: a majority must
// respond and every response must carry exactly seq. Sound whenever
// the stores carrying the latest version are reachable — any
// acknowledged newer commit prepared at at least one St member, and a
// response with a newer seq (or a majority that cannot be assembled)
// refuses the grant. If every store carrying a newer version is
// unreachable while a stale majority responds, the probe can pass
// spuriously; that needs store faults overlapping a view exclusion,
// outside the fault model leases are specified for (see the package
// doc in pkg/arjuna).
func (m *Manager) probeLatest(ctx context.Context, id uid.UID, seq uint64, stNodes []string) bool {
	if len(stNodes) == 0 {
		return false
	}
	seqs := make([]uint64, len(stNodes))
	oks := make([]bool, len(stNodes))
	conc.Do(len(stNodes), func(i int) {
		remote := store.RemoteStore{Client: m.node.Client(), Node: transport.Addr(stNodes[i])}
		v, err := remote.Read(ctx, id)
		if err != nil {
			return
		}
		seqs[i], oks[i] = v.Seq, true
	})
	responded := 0
	for i := range stNodes {
		if !oks[i] {
			continue
		}
		if seqs[i] != seq {
			return false
		}
		responded++
	}
	return responded >= len(stNodes)/2+1
}

// leaseCommitFence runs the lease side of a version advance that
// became durable at the stores at tc: no acknowledgement may leave
// this server until every read lease at the old version is provably
// dead. Known holders get an eager invalidation record on the ordered
// multicast; if any holder cannot confirm, the commit waits out the
// lease clock instead (tc + 2*TTL bounds every grant's expiry — see
// maybeGrant). withGrace additionally enforces the first-commit grace:
// until this instance has advanced the version once, leases granted by
// a prior incarnation of the object's server may still be live, so the
// first advance always waits out the clock. Returns an error only when
// ctx dies mid-fence — the commit itself already stands, so the caller
// must report ambiguity, not refusal.
func (m *Manager) leaseCommitFence(ctx context.Context, in *instance, tc time.Time, withGrace bool) error {
	if m.leaseTTL == 0 {
		return nil
	}
	window := 2 * m.leaseTTL
	in.mu.Lock()
	holders := in.leaseHolders
	seq := in.leaseSeq
	in.leaseHolders = make(map[transport.Addr]time.Time)
	var deadline time.Time
	if withGrace {
		if in.graceUntil.IsZero() {
			in.graceUntil = tc.Add(window)
		}
		deadline = in.graceUntil
	}
	in.mu.Unlock()

	now := time.Now()
	var members []transport.Addr
	for addr, exp := range holders {
		if exp.After(now) {
			members = append(members, addr)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if len(members) > 0 && !m.invalidateHolders(ctx, in.id, seq, members) {
		m.stats.Counter("lease.waitouts").Inc()
		if d := tc.Add(window); d.After(deadline) {
			deadline = d
		}
	}
	return m.leaseWait(ctx, in, deadline)
}

// leasePassivateFence invalidates every outstanding lease before the
// instance is destroyed — without this, a moved or passivated object's
// holders would keep serving until expiry with no committer left to
// fence them (the placement.Move stale-lease hazard). Unconfirmed
// holders are waited out only to their recorded expiries: this
// instance was the sole granter of the leases it knows about, and
// foreign ones are the next activation's first-commit grace to cover.
func (m *Manager) leasePassivateFence(ctx context.Context, in *instance) error {
	if m.leaseTTL == 0 {
		return nil
	}
	in.mu.Lock()
	holders := in.leaseHolders
	seq := in.leaseSeq
	in.leaseHolders = make(map[transport.Addr]time.Time)
	in.mu.Unlock()

	now := time.Now()
	var members []transport.Addr
	var deadline time.Time
	for addr, exp := range holders {
		if !exp.After(now) {
			continue
		}
		members = append(members, addr)
		if exp.After(deadline) {
			deadline = exp
		}
	}
	if len(members) == 0 {
		return nil
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if m.invalidateHolders(ctx, in.id, seq, members) {
		return nil
	}
	m.stats.Counter("lease.waitouts").Inc()
	return m.leaseWait(ctx, in, deadline)
}

// leaseWait sleeps until deadline, surfacing an ambiguity error if ctx
// dies first (the fence was not completed, so the caller must not
// acknowledge success).
func (m *Manager) leaseWait(ctx context.Context, in *instance, deadline time.Time) error {
	wait := time.Until(deadline)
	if wait <= 0 {
		return nil
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return rpc.Errorf(CodeCommitUncertain,
			"object %s: outcome durable but lease fence interrupted: %v", in.id, ctx.Err())
	}
}

// invalidateHolders multicasts one Inval record to the lease group for
// (id, seq) and reports whether EVERY member provably discarded its
// lease. A member that already dropped the lease answers not-found
// (it left the group) — that is a confirmation, including when the
// member was acting as sequencer, in which case the multicast is
// retried through the remaining holders.
//
// Treating not-found as "discarded" leans on a grant-side ordering
// invariant: a holder joins the invalidation group BEFORE its lease
// entry becomes servable (lease.Cache.Put joins first, then installs),
// so a holder that answers not-found either never completed the grant —
// its entry can never serve — or already retired it. The remaining
// window is the grant response still in flight toward a holder that has
// not run Put at all; that holder is unreachable by ANY group name, and
// safety there rests on lock order: this fence runs while the committing
// action still holds the object's write lock, strict 2PL keeps that lock
// out of a reader's hands until the reader's action ended (its harvest,
// and hence its Join, has run), and the force-passivate/crash paths are
// covered by the first-commit grace window instead. A change to
// lock-break or abort semantics must revisit this branch.
func (m *Manager) invalidateHolders(ctx context.Context, id uid.UID, seq uint64, members []transport.Addr) bool {
	payload, err := lease.EncodeInval(&lease.Inval{UID: id.String(), Seq: seq})
	if err != nil {
		return false
	}
	gid := lease.GroupID(id, seq)
	for len(members) > 0 {
		res, merr := group.Multicast(ctx, m.node.Client(), group.Group{ID: gid, Members: members},
			lease.KindInval, payload)
		if merr != nil {
			if rpc.CodeOf(merr) == rpc.CodeNotFound {
				// The sequencer (first member) no longer holds the
				// lease: confirmed dead, retry with the rest.
				members = members[1:]
				continue
			}
			return false
		}
		if len(res.Failed) > 0 {
			return false
		}
		for _, rep := range res.Replies {
			if rep.Err != "" && !strings.HasPrefix(rep.Err, rpc.CodeNotFound+":") {
				return false
			}
		}
		m.stats.Counter("lease.invalidations").Inc()
		return true
	}
	return true
}
