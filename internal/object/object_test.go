package object

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro/internal/group"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/uid"
)

// counterClass is a tiny persistent object: state is a decimal integer.
func counterClass() *Class {
	parse := func(state []byte) int {
		n, _ := strconv.Atoi(string(state))
		return n
	}
	return &Class{
		Name: "counter",
		Init: func() []byte { return []byte("0") },
		Methods: map[string]Method{
			"add": func(state, args []byte) ([]byte, []byte, error) {
				delta, err := strconv.Atoi(string(args))
				if err != nil {
					return nil, nil, err
				}
				n := parse(state) + delta
				out := []byte(strconv.Itoa(n))
				return out, out, nil
			},
			"get": func(state, args []byte) ([]byte, []byte, error) {
				return state, state, nil
			},
			"fail": func(state, args []byte) ([]byte, []byte, error) {
				return nil, nil, errors.New("intentional failure")
			},
		},
		ReadOnly: map[string]bool{"get": true},
	}
}

type world struct {
	cluster *sim.Cluster
	reg     *Registry
	id      uid.UID
}

// newWorld builds: server nodes sv1,sv2; store nodes st1,st2; client node.
// The counter object's initial state "0" (seq 1) is installed at both
// stores.
func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{cluster: sim.NewCluster(transport.MemOptions{}), reg: NewRegistry()}
	w.reg.Register(counterClass())
	for _, name := range []transport.Addr{"sv1", "sv2"} {
		n := w.cluster.Add(name)
		NewManager(n, w.reg)
	}
	for _, name := range []transport.Addr{"st1", "st2"} {
		w.cluster.Add(name)
	}
	w.cluster.Add("client")
	gen := uid.NewGenerator("test", 1)
	w.id = gen.New()
	w.cluster.Node("st1").Store().Put(w.id, []byte("0"), 1)
	w.cluster.Node("st2").Store().Put(w.id, []byte("0"), 1)
	return w
}

func (w *world) ref(node transport.Addr) ServerRef {
	return ServerRef{Client: w.cluster.Node("client").Client(), Node: node, UID: w.id}
}

func TestActivateLoadsFromStore(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	resp, err := w.ref("sv1").Activate(ctx, "counter", []transport.Addr{"st1", "st2"})
	if err != nil {
		t.Fatalf("activate: %v", err)
	}
	if !resp.Fresh || resp.Seq != 1 || resp.LoadedFrom != "st1" {
		t.Fatalf("resp = %+v", resp)
	}
	// Second activation is idempotent.
	resp2, err := w.ref("sv1").Activate(ctx, "counter", []transport.Addr{"st1"})
	if err != nil || resp2.Fresh {
		t.Fatalf("re-activate: %+v %v", resp2, err)
	}
}

func TestActivateFallsBackAcrossStores(t *testing.T) {
	w := newWorld(t)
	w.cluster.Node("st1").Crash()
	resp, err := w.ref("sv1").Activate(context.Background(), "counter", []transport.Addr{"st1", "st2"})
	if err != nil {
		t.Fatalf("activate: %v", err)
	}
	if resp.LoadedFrom != "st2" {
		t.Fatalf("loaded from %s, want st2", resp.LoadedFrom)
	}
}

func TestActivateNoStoreAvailable(t *testing.T) {
	w := newWorld(t)
	w.cluster.Node("st1").Crash()
	w.cluster.Node("st2").Crash()
	_, err := w.ref("sv1").Activate(context.Background(), "counter", []transport.Addr{"st1", "st2"})
	if rpc.CodeOf(err) != CodeUnavailable {
		t.Fatalf("err = %v, want unavailable", err)
	}
}

func TestActivateUnknownClass(t *testing.T) {
	w := newWorld(t)
	_, err := w.ref("sv1").Activate(context.Background(), "nonesuch", []transport.Addr{"st1"})
	if rpc.CodeOf(err) != rpc.CodeNotFound {
		t.Fatalf("err = %v", err)
	}
}

func TestInvokeRequiresActivation(t *testing.T) {
	w := newWorld(t)
	_, err := w.ref("sv1").Invoke(context.Background(), "a1", "get", nil)
	if !IsNotActive(err) {
		t.Fatalf("err = %v, want not-active", err)
	}
}

func TestInvokeCommitWritesBackToAllStores(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	res, err := ref.Invoke(ctx, "act1", "add", []byte("5"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "5" {
		t.Fatalf("result = %q", res)
	}
	prep, err := ref.Prepare(ctx, "act1", []transport.Addr{"st1", "st2"})
	if err != nil {
		t.Fatal(err)
	}
	if !prep.Dirty || prep.NewSeq != 2 || len(prep.PreparedNodes) != 2 || len(prep.FailedNodes) != 0 {
		t.Fatalf("prepare = %+v", prep)
	}
	if _, err := ref.Commit(ctx, "act1"); err != nil {
		t.Fatal(err)
	}
	for _, st := range []transport.Addr{"st1", "st2"} {
		v, err := w.cluster.Node(st).Store().Read(w.id)
		if err != nil || string(v.Data) != "5" || v.Seq != 2 {
			t.Fatalf("%s: %+v %v", st, v, err)
		}
	}
	// Server's base version advanced.
	status, _ := ref.Status(ctx)
	if status.Seq != 2 || status.Users != 0 {
		t.Fatalf("status = %+v", status)
	}
}

func TestPrepareReportsFailedStores(t *testing.T) {
	// §3.2(2): "the names of all those nodes for which the copy operation
	// failed must be removed from St" — the server reports them.
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "act1", "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	w.cluster.Node("st2").Crash()
	prep, err := ref.Prepare(ctx, "act1", []transport.Addr{"st1", "st2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(prep.PreparedNodes) != 1 || prep.PreparedNodes[0] != "st1" {
		t.Fatalf("prepared = %v", prep.PreparedNodes)
	}
	if len(prep.FailedNodes) != 1 || prep.FailedNodes[0] != "st2" {
		t.Fatalf("failed = %v", prep.FailedNodes)
	}
	if _, err := ref.Commit(ctx, "act1"); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.cluster.Node("st1").Store().Read(w.id); string(v.Data) != "1" {
		t.Fatal("surviving store missed the commit")
	}
}

func TestPrepareAllStoresDownAborts(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "act1", "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	w.cluster.Node("st1").Crash()
	w.cluster.Node("st2").Crash()
	_, err := ref.Prepare(ctx, "act1", []transport.Addr{"st1", "st2"})
	if rpc.CodeOf(err) != CodeUnavailable {
		t.Fatalf("err = %v, want unavailable", err)
	}
}

func TestAbortRestoresSnapshotAndStores(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "act1", "add", []byte("7")); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Prepare(ctx, "act1", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Abort(ctx, "act1"); err != nil {
		t.Fatal(err)
	}
	// In-memory state restored.
	res, err := ref.Invoke(ctx, "act2", "get", nil)
	if err != nil || string(res) != "0" {
		t.Fatalf("after abort get = %q, %v", res, err)
	}
	// Stores unchanged (intentions rolled back).
	if v, _ := w.cluster.Node("st1").Store().Read(w.id); string(v.Data) != "0" || v.Seq != 1 {
		t.Fatalf("st1 = %+v", v)
	}
	if got := w.cluster.Node("st1").Store().PendingTxs(); len(got) != 0 {
		t.Fatalf("leftover intentions: %v", got)
	}
}

func TestReadOnlyActionNeedsNoCopy(t *testing.T) {
	// §4.2.1: "if the client has not changed the state of the object, then
	// no copying to object stores is necessary."
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "ro-act", "get", nil); err != nil {
		t.Fatal(err)
	}
	prep, err := ref.Prepare(ctx, "ro-act", []transport.Addr{"st1", "st2"})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Dirty {
		t.Fatal("read-only action reported dirty")
	}
	if _, err := ref.Commit(ctx, "ro-act"); err != nil {
		t.Fatal(err)
	}
}

func TestWriteLockSerializesActions(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "writer1", "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// A second action's write blocks until the first ends.
	blockedCtx, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	_, err := ref.Invoke(blockedCtx, "writer2", "add", []byte("1"))
	if rpc.CodeOf(err) != rpc.CodeRefused {
		t.Fatalf("expected lock refusal, got %v", err)
	}
	// After the first action ends, the second proceeds.
	if _, err := ref.Commit(ctx, "writer1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "writer2", "add", []byte("1")); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if _, err := ref.Abort(ctx, "writer2"); err != nil {
		t.Fatal(err)
	}
}

func TestSharedReadersDontBlock(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		act := fmt.Sprintf("reader%d", i)
		if _, err := ref.Invoke(ctx, act, "get", nil); err != nil {
			t.Fatalf("%s: %v", act, err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := ref.Commit(ctx, fmt.Sprintf("reader%d", i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFailedMethodLeavesStateIntact(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "a", "fail", nil); rpc.CodeOf(err) != rpc.CodeInternal {
		t.Fatalf("err = %v", err)
	}
	if _, err := ref.Abort(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	res, err := ref.Invoke(ctx, "b", "get", nil)
	if err != nil || string(res) != "0" {
		t.Fatalf("get = %q %v", res, err)
	}
	if _, err := ref.Commit(ctx, "b"); err != nil {
		t.Fatal(err)
	}
}

func TestPassivationQuiescence(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "user1", "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Not quiescent: refuse.
	if _, err := ref.Passivate(ctx, false); rpc.CodeOf(err) != CodeBusy {
		t.Fatalf("err = %v, want busy", err)
	}
	if _, err := ref.Commit(ctx, "user1"); err != nil {
		t.Fatal(err)
	}
	ok, err := ref.Passivate(ctx, false)
	if err != nil || !ok {
		t.Fatalf("passivate: %v %v", ok, err)
	}
	st, _ := ref.Status(ctx)
	if st.Active {
		t.Fatal("still active after passivation")
	}
	// Passivating again reports false, no error.
	ok, err = ref.Passivate(ctx, false)
	if err != nil || ok {
		t.Fatalf("double passivate: %v %v", ok, err)
	}
}

func TestCrashDestroysActivatedObjects(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	node := w.cluster.Node("sv1")
	node.Crash()
	node.Recover(nil)
	st, err := ref.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Active {
		t.Fatal("activated object survived a crash — volatile storage leak")
	}
}

func TestGroupInvocationTotalOrderAcrossReplicas(t *testing.T) {
	// Two server replicas process the same ordered stream of invocations
	// (active replication, §2.3) and stay identical.
	w := newWorld(t)
	ctx := context.Background()
	for _, sv := range []transport.Addr{"sv1", "sv2"} {
		n := w.cluster.Node(sv)
		mgr := NewManager(n, w.reg) // fresh manager with group support
		host := group.NewHost(n.Server(), n.Client())
		mgr.EnableGroupInvocation(host)
		ref := ServerRef{Client: w.cluster.Node("client").Client(), Node: sv, UID: w.id}
		if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
			t.Fatal(err)
		}
	}
	g := group.Group{ID: GroupPrefix + w.id.String(), Members: []transport.Addr{"sv1", "sv2"}}
	cli := w.cluster.Node("client").Client()
	for i := 0; i < 5; i++ {
		payload, err := rpc.Encode(&InvokeReq{UID: w.id.String(), Action: "act", Method: "add", Args: []byte("1")})
		if err != nil {
			t.Fatal(err)
		}
		res, err := group.Multicast(ctx, cli, g, KindInvoke, payload)
		if err != nil {
			t.Fatalf("multicast %d: %v", i, err)
		}
		if len(res.Replies) != 2 {
			t.Fatalf("replies = %d", len(res.Replies))
		}
	}
	// End the writing action first (it holds the write lock), then verify
	// both replicas hold the same value.
	for _, sv := range []transport.Addr{"sv1", "sv2"} {
		ref := ServerRef{Client: cli, Node: sv, UID: w.id}
		if _, err := ref.Commit(ctx, "act"); err != nil {
			t.Fatal(err)
		}
		got, err := ref.Invoke(ctx, "check", "get", nil)
		if err != nil || string(got) != "5" {
			t.Fatalf("%s value = %q, %v", sv, got, err)
		}
		if _, err := ref.Commit(ctx, "check"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(counterClass())
	if _, err := r.Lookup("counter"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("nope"); err == nil {
		t.Fatal("expected unknown class error")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "counter" {
		t.Fatalf("names = %v", names)
	}
	c, _ := r.Lookup("counter")
	if !c.IsReadOnly("get") || c.IsReadOnly("add") {
		t.Fatal("readonly flags wrong")
	}
	if _, err := c.Method("nope"); err == nil {
		t.Fatal("expected missing method error")
	}
}

func TestReadOnlyPrepareReleasesServer(t *testing.T) {
	// The §4.1.2 voting fast path: a read-only prepare releases the action
	// at the server — user entry dropped, locks freed — so no phase-two
	// RPC is ever needed.
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1", "st2"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "reader", "get", nil); err != nil {
		t.Fatal(err)
	}
	prep, err := ref.Prepare(ctx, "reader", []transport.Addr{"st1", "st2"})
	if err != nil {
		t.Fatal(err)
	}
	if prep.Dirty {
		t.Fatal("read-only action reported dirty")
	}
	st, err := ref.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Users != 0 {
		t.Fatalf("users after read-only prepare = %d, want 0 (released)", st.Users)
	}
	// The read lock is gone: a writer acquires immediately.
	if _, err := ref.Invoke(ctx, "writer", "add", []byte("1")); err != nil {
		t.Fatalf("write after read-only release: %v", err)
	}
}

func TestPrepareCommitOnePhaseSingleStore(t *testing.T) {
	// Combined prepare+commit against a single St node: one client→server
	// RPC, one server→store RPC, state committed and the action released.
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "op-act", "add", []byte("7")); err != nil {
		t.Fatal(err)
	}
	resp, err := ref.PrepareCommit(ctx, "op-act", []transport.Addr{"st1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Dirty || resp.NewSeq != 2 || len(resp.FailedNodes) != 0 {
		t.Fatalf("resp = %+v, want dirty commit at seq 2", resp)
	}
	v, err := w.cluster.Node("st1").Store().Read(w.id)
	if err != nil || string(v.Data) != "7" || v.Seq != 2 {
		t.Fatalf("store state = %+v err=%v, want 7@2", v, err)
	}
	if n := w.cluster.Node("st1").Store().PendingWrites("op-act"); n != 0 {
		t.Fatalf("pending writes after one-phase commit = %d, want 0", n)
	}
	st, err := ref.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Users != 0 || st.Seq != 2 {
		t.Fatalf("server status = %+v, want released at seq 2", st)
	}
}

func TestPrepareCommitReadOnlyReleases(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "ro", "get", nil); err != nil {
		t.Fatal(err)
	}
	resp, err := ref.PrepareCommit(ctx, "ro", []transport.Addr{"st1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Dirty {
		t.Fatal("read-only combined round reported dirty")
	}
	st, err := ref.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Users != 0 {
		t.Fatalf("users = %d, want 0", st.Users)
	}
}

func TestPrepareCommitStaleSingleStoreAborts(t *testing.T) {
	// A stale activated copy taking the one-phase path must be refused and
	// destroyed, exactly like the two-phase stale-server handling.
	w := newWorld(t)
	ctx := context.Background()
	ref := w.ref("sv1")
	if _, err := ref.Activate(ctx, "counter", []transport.Addr{"st1"}); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke(ctx, "stale-act", "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Another server commits seq 2 behind this copy's back.
	w.cluster.Node("st1").Store().Put(w.id, []byte("9"), 2)
	_, err := ref.PrepareCommit(ctx, "stale-act", []transport.Addr{"st1"}, nil)
	if rpc.CodeOf(err) != CodeStaleServer {
		t.Fatalf("err = %v, want stale-server", err)
	}
	st, err := ref.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Active {
		t.Fatal("stale instance should have been destroyed")
	}
}
