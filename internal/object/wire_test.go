package object

import (
	"reflect"
	"testing"

	"repro/internal/rpc"
)

// TestWireRoundTrip round-trips every binary codec in this package through
// rpc.Encode/Decode with representative populated values.
func TestWireRoundTrip(t *testing.T) {
	cases := []struct{ in, out any }{
		{&ActivateReq{UID: "obj", Class: "Counter", StNodes: []string{"s1", "s2"}}, &ActivateReq{}},
		{&ActivateResp{Seq: 42, Fresh: true, LoadedFrom: "s1"}, &ActivateResp{}},
		{&InvokeReq{UID: "obj", Action: "a1", Method: "incr", Args: []byte{1, 2, 3}, Solo: true}, &InvokeReq{}},
		{&InvokeResp{Result: []byte("ok"), Modified: true, Batched: true, BatchSize: 5, WaitNanos: -250}, &InvokeResp{}},
		{&PrepareReq{UID: "obj", Action: "a1", StNodes: []string{"s1"}}, &PrepareReq{}},
		{&PrepareResp{Dirty: true, NewSeq: 7, PreparedNodes: []string{"s1"}, FailedNodes: []string{"s2"}, BatchSize: 3}, &PrepareResp{}},
		{&EndReq{UID: "obj", Action: "a1", CheckpointTo: []string{"s1"}}, &EndReq{}},
		{&EndResp{FailedNodes: []string{"s2"}}, &EndResp{}},
		{&InstallReq{UID: "obj", Class: "Counter", State: []byte{9, 9}, Seq: 3}, &InstallReq{}},
		{&InstallResp{Installed: true}, &InstallResp{}},
		{&PrepareCommitReq{UID: "obj", Action: "a1", StNodes: []string{"s1"}, CheckpointTo: []string{"s2"}}, &PrepareCommitReq{}},
		{&PrepareCommitResp{Dirty: true, NewSeq: 8, FailedNodes: []string{"s1"}, BatchSize: 2}, &PrepareCommitResp{}},
		{&LeaseCheckReq{UID: "obj", Action: "a1"}, &LeaseCheckReq{}},
		{&LeaseCheckResp{Seq: 11}, &LeaseCheckResp{}},
	}
	for _, c := range cases {
		data, err := rpc.Encode(c.in)
		if err != nil {
			t.Fatalf("%T: encode: %v", c.in, err)
		}
		if data[0] != rpc.WireMagic {
			t.Fatalf("%T: not binary-coded (first byte %#x)", c.in, data[0])
		}
		if err := rpc.Decode(data, c.out); err != nil {
			t.Fatalf("%T: decode: %v", c.in, err)
		}
		if !reflect.DeepEqual(c.in, c.out) {
			t.Errorf("%T mismatch:\n in: %+v\nout: %+v", c.in, c.in, c.out)
		}
	}
}

// TestWireTagsUnique catches accidental tag reuse inside this package's block.
func TestWireTagsUnique(t *testing.T) {
	types := []rpc.Wire{
		&ActivateReq{}, &ActivateResp{}, &InvokeReq{}, &InvokeResp{},
		&PrepareReq{}, &PrepareResp{}, &EndReq{}, &EndResp{},
		&InstallReq{}, &InstallResp{}, &PrepareCommitReq{}, &PrepareCommitResp{},
		&LeaseCheckReq{}, &LeaseCheckResp{},
	}
	seen := map[byte]string{}
	for _, w := range types {
		tag, ver := w.WireTag()
		if ver == 0 {
			t.Errorf("%T: version 0 is reserved", w)
		}
		if prev, dup := seen[tag]; dup {
			t.Errorf("tag %#x reused by %T and %s", tag, w, prev)
		}
		seen[tag] = reflect.TypeOf(w).String()
	}
}
