package object

import (
	"sync"
	"time"
)

// This file implements commutative-operation batching ("flat combining")
// at the object server. A solo commutative invocation — one whose action
// will perform no other work, declared via InvokeReq.Solo on a method the
// class marks Commutative — that loses the race for the object's write
// lock does not join the lock queue. It enqueues its operation with the
// instance's combiner instead. The current write-lock holder drains the
// combiner when its own commit processing reaches the prepare step: each
// queued operation is folded into the holder's state write-back and rides
// the holder's single 2PC round. When that round commits, every folded
// operation's pending Invoke RPC is answered with its own result and
// Batched=true; the follower's action then commits locally with nothing
// left to do. N lock waits + N commits become 1.
//
// Atomicity: folded operations are applied AFTER the leader's pre-write
// snapshot was taken, so the leader's abort path (snapshot restore)
// undoes the whole batch; the store write-back carries the folded state,
// so the batch commits exactly when the leader commits. All-or-nothing.
//
// Fairness: when the lock frees, the release path kicks the combiner,
// which promotes the queue head to leader only via TryAcquire — and
// TryAcquire refuses to overtake the lock manager's own FIFO waiters, so
// batched traffic cannot starve ordinary actions.

// opOutcome is the resolution of one queued operation.
type opOutcome struct {
	result []byte
	// batchSize is the total number of operations the carrying commit
	// folded (leader's own included).
	batchSize int
	// leader reports that the operation was not folded: the combiner
	// promoted it to lock holder and its own action must drive the commit.
	leader bool
	err    error
}

// pendingOp is one operation parked in a combiner queue. done is buffered
// so the resolver never blocks on an abandoned waiter. result is filled
// at fold time (under the instance mutex) and delivered on commit.
type pendingOp struct {
	action string
	method string
	args   []byte
	result []byte
	done   chan opOutcome
}

func newPendingOp(action, method string, args []byte) *pendingOp {
	return &pendingOp{action: action, method: method, args: args, done: make(chan opOutcome, 1)}
}

// combiner is the per-instance queue of foldable operations.
//
// Lock order: in.mu may be held when taking comb.mu (the prepare-time
// drain); never the reverse. The kick path takes comb.mu alone, and
// releases it before touching in.mu.
type combiner struct {
	mu    sync.Mutex
	queue []*pendingOp
}

// depth returns the current queue length.
func (c *combiner) depth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// push appends op unless the queue is at cap (maxQueue > 0). It reports
// whether the op was enqueued and the resulting depth.
func (c *combiner) push(op *pendingOp, maxQueue int) (bool, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if maxQueue > 0 && len(c.queue) >= maxQueue {
		return false, len(c.queue)
	}
	c.queue = append(c.queue, op)
	return true, len(c.queue)
}

// remove deletes op from the queue if still present. A false return means
// a leader already claimed it: its fate will arrive on op.done.
func (c *combiner) remove(op *pendingOp) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, q := range c.queue {
		if q == op {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return true
		}
	}
	return false
}

// takeAll claims the whole queue (the prepare-time drain).
func (c *combiner) takeAll() []*pendingOp {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queue
	c.queue = nil
	return q
}

// pop claims the queue head.
func (c *combiner) pop() *pendingOp {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.queue) == 0 {
		return nil
	}
	op := c.queue[0]
	c.queue = c.queue[1:]
	return op
}

// waitOutcome blocks until the op resolves, the deadline passes, or stop
// fires. A zero maxWait waits indefinitely.
func (op *pendingOp) waitOutcome(maxWait time.Duration, stop <-chan struct{}) (opOutcome, bool, bool) {
	var deadline <-chan time.Time
	if maxWait > 0 {
		t := time.NewTimer(maxWait)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case out := <-op.done:
		return out, false, false
	case <-deadline:
		return opOutcome{}, true, false
	case <-stop:
		return opOutcome{}, false, true
	}
}
