package object

import (
	"time"

	"repro/internal/rpc"
)

// Binary codecs (rpc.Wire) for the object-server wire records — the
// invoke request/reply and the 2PC prepare/commit/abort messages are the
// hottest payloads in the system. Tags live in the 0x20–0x3f block of the
// registry in internal/rpc/doc.go. The invoke records are at version 2
// (read-lease fields); everything else is at version 1.
const (
	wireTagActivateReq byte = 0x20 + iota
	wireTagActivateResp
	wireTagInvokeReq
	wireTagInvokeResp
	wireTagPrepareReq
	wireTagPrepareResp
	wireTagEndReq
	wireTagEndResp
	wireTagInstallReq
	wireTagInstallResp
	wireTagPrepareCommitReq
	wireTagPrepareCommitResp
	wireTagLeaseCheckReq
	wireTagLeaseCheckResp
)

// ActivateReq

// WireTag implements rpc.Wire.
func (*ActivateReq) WireTag() (byte, byte) { return wireTagActivateReq, 1 }

// AppendWire implements rpc.Wire.
func (q *ActivateReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.UID)
	dst = rpc.AppendString(dst, q.Class)
	return rpc.AppendStrings(dst, q.StNodes)
}

// ParseWire implements rpc.Wire.
func (q *ActivateReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.UID = r.String()
	q.Class = r.String()
	q.StNodes = r.Strings()
	return nil
}

// ActivateResp

// WireTag implements rpc.Wire.
func (*ActivateResp) WireTag() (byte, byte) { return wireTagActivateResp, 1 }

// AppendWire implements rpc.Wire.
func (p *ActivateResp) AppendWire(dst []byte) []byte {
	dst = rpc.AppendUvarint(dst, p.Seq)
	dst = rpc.AppendBool(dst, p.Fresh)
	return rpc.AppendString(dst, p.LoadedFrom)
}

// ParseWire implements rpc.Wire.
func (p *ActivateResp) ParseWire(_ byte, r *rpc.WireReader) error {
	p.Seq = r.Uvarint()
	p.Fresh = r.Bool()
	p.LoadedFrom = r.String()
	return nil
}

// InvokeReq (version 2 appends the read-lease request field)

// WireTag implements rpc.Wire.
func (*InvokeReq) WireTag() (byte, byte) { return wireTagInvokeReq, 2 }

// WireSizeHint implements rpc.WireSizer.
func (q *InvokeReq) WireSizeHint() int {
	return len(q.UID) + len(q.Action) + len(q.Method) + len(q.Args) + len(q.LeaseHolder) + 24
}

// AppendWire implements rpc.Wire.
func (q *InvokeReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.UID)
	dst = rpc.AppendString(dst, q.Action)
	dst = rpc.AppendString(dst, q.Method)
	dst = rpc.AppendBytes(dst, q.Args)
	dst = rpc.AppendBool(dst, q.Solo)
	return rpc.AppendString(dst, q.LeaseHolder)
}

// ParseWire implements rpc.Wire.
func (q *InvokeReq) ParseWire(ver byte, r *rpc.WireReader) error {
	q.UID = r.String()
	q.Action = r.String()
	q.Method = r.String()
	q.Args = r.Bytes()
	q.Solo = r.Bool()
	if ver >= 2 {
		q.LeaseHolder = r.String()
	}
	return nil
}

// InvokeResp (version 2 appends the optional lease grant)

// WireTag implements rpc.Wire.
func (*InvokeResp) WireTag() (byte, byte) { return wireTagInvokeResp, 2 }

// WireSizeHint implements rpc.WireSizer.
func (p *InvokeResp) WireSizeHint() int {
	n := len(p.Result) + 32
	if p.Lease != nil {
		n += len(p.Lease.Class) + len(p.Lease.State) + 24
	}
	return n
}

// AppendWire implements rpc.Wire.
func (p *InvokeResp) AppendWire(dst []byte) []byte {
	dst = rpc.AppendBytes(dst, p.Result)
	dst = rpc.AppendBool(dst, p.Modified)
	dst = rpc.AppendBool(dst, p.Batched)
	dst = rpc.AppendUvarint(dst, uint64(p.BatchSize))
	dst = rpc.AppendVarint(dst, p.WaitNanos)
	dst = rpc.AppendBool(dst, p.Lease != nil)
	if p.Lease != nil {
		dst = rpc.AppendString(dst, p.Lease.Class)
		dst = rpc.AppendBytes(dst, p.Lease.State)
		dst = rpc.AppendUvarint(dst, p.Lease.Seq)
		dst = rpc.AppendVarint(dst, int64(p.Lease.TTL))
	}
	return dst
}

// ParseWire implements rpc.Wire.
func (p *InvokeResp) ParseWire(ver byte, r *rpc.WireReader) error {
	p.Result = r.Bytes()
	p.Modified = r.Bool()
	p.Batched = r.Bool()
	p.BatchSize = int(r.Uvarint())
	p.WaitNanos = r.Varint()
	if ver >= 2 && r.Bool() {
		p.Lease = &LeaseGrant{
			Class: r.String(),
			State: r.Bytes(),
			Seq:   r.Uvarint(),
			TTL:   time.Duration(r.Varint()),
		}
	}
	return nil
}

// PrepareReq

// WireTag implements rpc.Wire.
func (*PrepareReq) WireTag() (byte, byte) { return wireTagPrepareReq, 1 }

// AppendWire implements rpc.Wire.
func (q *PrepareReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.UID)
	dst = rpc.AppendString(dst, q.Action)
	return rpc.AppendStrings(dst, q.StNodes)
}

// ParseWire implements rpc.Wire.
func (q *PrepareReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.UID = r.String()
	q.Action = r.String()
	q.StNodes = r.Strings()
	return nil
}

// PrepareResp

// WireTag implements rpc.Wire.
func (*PrepareResp) WireTag() (byte, byte) { return wireTagPrepareResp, 1 }

// AppendWire implements rpc.Wire.
func (p *PrepareResp) AppendWire(dst []byte) []byte {
	dst = rpc.AppendBool(dst, p.Dirty)
	dst = rpc.AppendUvarint(dst, p.NewSeq)
	dst = rpc.AppendStrings(dst, p.PreparedNodes)
	dst = rpc.AppendStrings(dst, p.FailedNodes)
	return rpc.AppendUvarint(dst, uint64(p.BatchSize))
}

// ParseWire implements rpc.Wire.
func (p *PrepareResp) ParseWire(_ byte, r *rpc.WireReader) error {
	p.Dirty = r.Bool()
	p.NewSeq = r.Uvarint()
	p.PreparedNodes = r.Strings()
	p.FailedNodes = r.Strings()
	p.BatchSize = int(r.Uvarint())
	return nil
}

// EndReq

// WireTag implements rpc.Wire.
func (*EndReq) WireTag() (byte, byte) { return wireTagEndReq, 1 }

// AppendWire implements rpc.Wire.
func (q *EndReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.UID)
	dst = rpc.AppendString(dst, q.Action)
	return rpc.AppendStrings(dst, q.CheckpointTo)
}

// ParseWire implements rpc.Wire.
func (q *EndReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.UID = r.String()
	q.Action = r.String()
	q.CheckpointTo = r.Strings()
	return nil
}

// EndResp

// WireTag implements rpc.Wire.
func (*EndResp) WireTag() (byte, byte) { return wireTagEndResp, 1 }

// AppendWire implements rpc.Wire.
func (p *EndResp) AppendWire(dst []byte) []byte { return rpc.AppendStrings(dst, p.FailedNodes) }

// ParseWire implements rpc.Wire.
func (p *EndResp) ParseWire(_ byte, r *rpc.WireReader) error {
	p.FailedNodes = r.Strings()
	return nil
}

// InstallReq

// WireTag implements rpc.Wire.
func (*InstallReq) WireTag() (byte, byte) { return wireTagInstallReq, 1 }

// WireSizeHint implements rpc.WireSizer.
func (q *InstallReq) WireSizeHint() int {
	return len(q.UID) + len(q.Class) + len(q.State) + 24
}

// AppendWire implements rpc.Wire.
func (q *InstallReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.UID)
	dst = rpc.AppendString(dst, q.Class)
	dst = rpc.AppendBytes(dst, q.State)
	return rpc.AppendUvarint(dst, q.Seq)
}

// ParseWire implements rpc.Wire.
func (q *InstallReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.UID = r.String()
	q.Class = r.String()
	q.State = r.Bytes()
	q.Seq = r.Uvarint()
	return nil
}

// InstallResp

// WireTag implements rpc.Wire.
func (*InstallResp) WireTag() (byte, byte) { return wireTagInstallResp, 1 }

// AppendWire implements rpc.Wire.
func (p *InstallResp) AppendWire(dst []byte) []byte { return rpc.AppendBool(dst, p.Installed) }

// ParseWire implements rpc.Wire.
func (p *InstallResp) ParseWire(_ byte, r *rpc.WireReader) error {
	p.Installed = r.Bool()
	return nil
}

// PrepareCommitReq

// WireTag implements rpc.Wire.
func (*PrepareCommitReq) WireTag() (byte, byte) { return wireTagPrepareCommitReq, 1 }

// AppendWire implements rpc.Wire.
func (q *PrepareCommitReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.UID)
	dst = rpc.AppendString(dst, q.Action)
	dst = rpc.AppendStrings(dst, q.StNodes)
	return rpc.AppendStrings(dst, q.CheckpointTo)
}

// ParseWire implements rpc.Wire.
func (q *PrepareCommitReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.UID = r.String()
	q.Action = r.String()
	q.StNodes = r.Strings()
	q.CheckpointTo = r.Strings()
	return nil
}

// PrepareCommitResp

// WireTag implements rpc.Wire.
func (*PrepareCommitResp) WireTag() (byte, byte) { return wireTagPrepareCommitResp, 1 }

// AppendWire implements rpc.Wire.
func (p *PrepareCommitResp) AppendWire(dst []byte) []byte {
	dst = rpc.AppendBool(dst, p.Dirty)
	dst = rpc.AppendUvarint(dst, p.NewSeq)
	dst = rpc.AppendStrings(dst, p.FailedNodes)
	return rpc.AppendUvarint(dst, uint64(p.BatchSize))
}

// ParseWire implements rpc.Wire.
func (p *PrepareCommitResp) ParseWire(_ byte, r *rpc.WireReader) error {
	p.Dirty = r.Bool()
	p.NewSeq = r.Uvarint()
	p.FailedNodes = r.Strings()
	p.BatchSize = int(r.Uvarint())
	return nil
}

// LeaseCheckReq

// WireTag implements rpc.Wire.
func (*LeaseCheckReq) WireTag() (byte, byte) { return wireTagLeaseCheckReq, 1 }

// AppendWire implements rpc.Wire.
func (q *LeaseCheckReq) AppendWire(dst []byte) []byte {
	dst = rpc.AppendString(dst, q.UID)
	return rpc.AppendString(dst, q.Action)
}

// ParseWire implements rpc.Wire.
func (q *LeaseCheckReq) ParseWire(_ byte, r *rpc.WireReader) error {
	q.UID = r.String()
	q.Action = r.String()
	return nil
}

// LeaseCheckResp

// WireTag implements rpc.Wire.
func (*LeaseCheckResp) WireTag() (byte, byte) { return wireTagLeaseCheckResp, 1 }

// AppendWire implements rpc.Wire.
func (p *LeaseCheckResp) AppendWire(dst []byte) []byte { return rpc.AppendUvarint(dst, p.Seq) }

// ParseWire implements rpc.Wire.
func (p *LeaseCheckResp) ParseWire(_ byte, r *rpc.WireReader) error {
	p.Seq = r.Uvarint()
	return nil
}
