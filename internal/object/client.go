package object

import (
	"context"

	"repro/internal/rpc"
	"repro/internal/transport"
	"repro/internal/uid"
)

// ServerRef is a typed client for the object server of one object at one
// node.
type ServerRef struct {
	Client rpc.Client
	Node   transport.Addr
	UID    uid.UID
}

// Activate asks the node to activate the object, loading state from one of
// stNodes.
func (r ServerRef) Activate(ctx context.Context, class string, stNodes []transport.Addr) (ActivateResp, error) {
	return rpc.Invoke[ActivateReq, ActivateResp](ctx, r.Client, r.Node, ServiceName, MethodActivate, ActivateReq{
		UID:     r.UID.String(),
		Class:   class,
		StNodes: addrsToStrings(stNodes),
	})
}

// Invoke calls a method under the given (top-level) action.
func (r ServerRef) Invoke(ctx context.Context, action, method string, args []byte) ([]byte, error) {
	resp, err := rpc.Invoke[InvokeReq, InvokeResp](ctx, r.Client, r.Node, ServiceName, MethodInvoke, InvokeReq{
		UID:    r.UID.String(),
		Action: action,
		Method: method,
		Args:   args,
	})
	if err != nil {
		return nil, err
	}
	return resp.Result, nil
}

// InvokeFull calls a method under the given action and returns the full
// response. leaseHolder, when non-empty, names the client node
// requesting a read lease on the object; a granted lease arrives in
// InvokeResp.Lease.
func (r ServerRef) InvokeFull(ctx context.Context, action, method string, args []byte, leaseHolder string) (InvokeResp, error) {
	return rpc.Invoke[InvokeReq, InvokeResp](ctx, r.Client, r.Node, ServiceName, MethodInvoke, InvokeReq{
		UID:         r.UID.String(),
		Action:      action,
		Method:      method,
		Args:        args,
		LeaseHolder: leaseHolder,
	})
}

// InvokeSolo calls a method under the given action, declaring that the
// invocation is the action's entire write set. That permits the server to
// fold a commutative method into another action's commit (flat
// combining); the full response is returned so the caller can see whether
// the operation was batched.
func (r ServerRef) InvokeSolo(ctx context.Context, action, method string, args []byte) (InvokeResp, error) {
	return rpc.Invoke[InvokeReq, InvokeResp](ctx, r.Client, r.Node, ServiceName, MethodInvoke, InvokeReq{
		UID:    r.UID.String(),
		Action: action,
		Method: method,
		Args:   args,
		Solo:   true,
	})
}

// Prepare runs the server's commit-time state copy to stNodes (phase one).
func (r ServerRef) Prepare(ctx context.Context, action string, stNodes []transport.Addr) (PrepareResp, error) {
	return rpc.Invoke[PrepareReq, PrepareResp](ctx, r.Client, r.Node, ServiceName, MethodPrepare, PrepareReq{
		UID:     r.UID.String(),
		Action:  action,
		StNodes: addrsToStrings(stNodes),
	})
}

// Commit finishes the action at this server (phase two). checkpointTo, if
// non-empty, asks the server to push its committed state to those cohort
// nodes afterwards.
func (r ServerRef) Commit(ctx context.Context, action string, checkpointTo ...transport.Addr) (EndResp, error) {
	return rpc.Invoke[EndReq, EndResp](ctx, r.Client, r.Node, ServiceName, MethodCommit, EndReq{
		UID:          r.UID.String(),
		Action:       action,
		CheckpointTo: addrsToStrings(checkpointTo),
	})
}

// PrepareCommit runs the combined prepare+commit round: the server copies
// and commits its state to stNodes and releases the action, in one RPC.
// checkpointTo asks for coordinator-cohort checkpoints on commit.
func (r ServerRef) PrepareCommit(ctx context.Context, action string, stNodes, checkpointTo []transport.Addr) (PrepareCommitResp, error) {
	return rpc.Invoke[PrepareCommitReq, PrepareCommitResp](ctx, r.Client, r.Node, ServiceName, MethodPrepareCommit, PrepareCommitReq{
		UID:          r.UID.String(),
		Action:       action,
		StNodes:      addrsToStrings(stNodes),
		CheckpointTo: addrsToStrings(checkpointTo),
	})
}

// LeaseCheck acquires the object's read lock under the action and returns
// the committed version the server holds — commit-time revalidation for a
// transaction that mixed leased reads with writes.
func (r ServerRef) LeaseCheck(ctx context.Context, action string) (uint64, error) {
	resp, err := rpc.Invoke[LeaseCheckReq, LeaseCheckResp](ctx, r.Client, r.Node, ServiceName, MethodLeaseCheck, LeaseCheckReq{
		UID:    r.UID.String(),
		Action: action,
	})
	if err != nil {
		return 0, err
	}
	return resp.Seq, nil
}

// Install pushes a committed state snapshot into the server, creating the
// instance if necessary.
func (r ServerRef) Install(ctx context.Context, class string, state []byte, seq uint64) error {
	_, err := rpc.Invoke[InstallReq, InstallResp](ctx, r.Client, r.Node, ServiceName, MethodInstall, InstallReq{
		UID:   r.UID.String(),
		Class: class,
		State: state,
		Seq:   seq,
	})
	return err
}

// Abort undoes the action at this server.
func (r ServerRef) Abort(ctx context.Context, action string) (EndResp, error) {
	return rpc.Invoke[EndReq, EndResp](ctx, r.Client, r.Node, ServiceName, MethodAbort, EndReq{UID: r.UID.String(), Action: action})
}

// Passivate destroys the server instance if quiescent (or unconditionally
// with force).
func (r ServerRef) Passivate(ctx context.Context, force bool) (bool, error) {
	resp, err := rpc.Invoke[PassivateReq, PassivateResp](ctx, r.Client, r.Node, ServiceName, MethodPassivate, PassivateReq{UID: r.UID.String(), Force: force})
	if err != nil {
		return false, err
	}
	return resp.Passivated, nil
}

// Status queries the server instance.
func (r ServerRef) Status(ctx context.Context) (StatusResp, error) {
	return rpc.Invoke[StatusReq, StatusResp](ctx, r.Client, r.Node, ServiceName, MethodStatus, StatusReq{UID: r.UID.String()})
}

func addrsToStrings(in []transport.Addr) []string {
	out := make([]string, len(in))
	for i, a := range in {
		out[i] = string(a)
	}
	return out
}
