package object

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/conc"
	"repro/internal/group"
	"repro/internal/lockmgr"
	"repro/internal/metrics"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
)

// ServiceName is the RPC service under which a node's object servers are
// reachable.
const ServiceName = "objsrv"

// RPC method names.
const (
	MethodActivate  = "Activate"
	MethodInvoke    = "Invoke"
	MethodPrepare   = "Prepare"
	MethodCommit    = "Commit"
	MethodAbort     = "Abort"
	MethodPassivate = "Passivate"
	MethodStatus    = "Status"
	MethodInstall   = "Install"
	// MethodPrepareCommit runs prepare and commit as one combined round —
	// the single-participant 2PC fast path.
	MethodPrepareCommit = "PrepareCommit"
	// MethodLeaseCheck acquires the object's read lock under an action and
	// returns the committed version — the commit-time revalidation a
	// transaction that mixed leased reads with writes performs.
	MethodLeaseCheck = "LeaseCheck"
)

// Application error codes specific to object servers.
const (
	// CodeNotActive reports an invocation on an object with no server at
	// this node — the caller must activate first.
	CodeNotActive = "not-active"
	// CodeUnavailable reports that activation failed because no St node
	// could supply the object's state.
	CodeUnavailable = "unavailable"
	// CodeBusy reports a refused passivation (the object is not quiescent).
	CodeBusy = "busy"
	// CodeStaleServer reports that this node's activated copy was refused
	// by every reachable store as stale; the instance has been destroyed
	// and the calling action must abort (a retry re-activates fresh).
	CodeStaleServer = "stale-server"
	// CodeOverloaded reports admission-control refusal: the object's lock
	// wait queue or combiner queue is at its cap, or an op's queueing time
	// exceeded the wait deadline. The caller should back off and retry.
	CodeOverloaded = "overloaded"
	// CodeCommitUncertain reports that a one-phase commit attempt ended
	// ambiguously: the server's CommitOnePhase call to the St node failed
	// with an error that does not rule out the store having durably applied
	// the write (context cancellation, deadline, or a lost reply). The
	// caller must NOT treat this as a definite refusal — the outcome is
	// unknown and has to be resolved (or reported as unknown) upstream.
	CodeCommitUncertain = "commit-uncertain"
)

// GroupPrefix prefixes the group ID servers join for an object when group
// invocation is enabled: GroupPrefix + UID.String().
const GroupPrefix = "obj/"

// KindInvoke is the multicast message kind for group-ordered invocations.
const KindInvoke = "invoke"

// instance is one activated object replica living in a node's volatile
// memory.
type instance struct {
	class *Class
	id    uid.UID
	locks *lockmgr.Manager

	mu    sync.Mutex
	state []byte
	// seq is the committed version this state derives from.
	seq uint64
	// snaps maps an action to the pre-action state (for abort).
	snaps map[string][]byte
	// dirty marks actions that modified the state.
	dirty map[string]bool
	// prepared maps an action to the St nodes where its write-back has
	// been prepared, and preparedSeq to the version number used.
	prepared    map[string][]transport.Addr
	preparedSeq map[string]uint64
	// users is the set of actions currently bound (invoked at least once
	// and not yet ended); the object is quiescent when empty.
	users map[string]bool
	// batches maps a lock-holding action to the commutative ops folded
	// into its state write-back at prepare time, awaiting the outcome.
	batches map[string][]*pendingOp

	// Read-lease state (see lease.go; all guarded by mu). stNodes is
	// the St view captured at activation, for grant-time probes.
	// confirmedAt is the last instant this copy was confirmed latest
	// against a store majority (zero until first confirmed — a freshly
	// activated copy loaded from ONE store may be stale, so the first
	// grant always probes). leaseHolders maps each holder's client node
	// to its grant expiry by this server's clock; leaseSeq is the
	// version those holders were granted at. graceUntil is the instant
	// before which no version-advancing commit may be acknowledged
	// (zero until the instance's first advance sets it).
	stNodes      []string
	confirmedAt  time.Time
	leaseSeq     uint64
	leaseHolders map[transport.Addr]time.Time
	graceUntil   time.Time

	// comb queues solo commutative ops that lost the write-lock race;
	// it has its own mutex (see combine.go for the lock order).
	comb combiner
}

// volatileKey is where a node's activated instances live; being volatile,
// every activated object disappears when the node crashes (§2.1).
const volatileKey = "objsrv.instances"

// instanceTable is the volatile map of activated objects.
type instanceTable struct {
	mu sync.Mutex
	m  map[uid.UID]*instance
}

// Manager runs a node's object servers: it activates passive objects,
// executes invocations under action-held locks, and drives commit-time
// state copy-back to the object stores.
type Manager struct {
	node     *sim.Node
	registry *Registry
	ghost    *group.Host // nil unless group invocation is enabled
	// limits bounds each instance's lock wait queue and combiner queue;
	// zero means unbounded. Set before any activation.
	limits lockmgr.Limits
	stats  *metrics.Registry
	// leaseTTL enables read leases when non-zero (see lease.go). Set
	// before any traffic.
	leaseTTL time.Duration
}

// NewManager installs an object-server manager on node, registering its
// RPC handlers. The registry supplies method code — the paper's assumption
// that server nodes hold the executable binary for the objects they serve.
func NewManager(node *sim.Node, registry *Registry) *Manager {
	m := &Manager{node: node, registry: registry, stats: node.Metrics()}
	srv := node.Server()
	srv.Handle(ServiceName, MethodActivate, rpc.Method(m.handleActivate))
	srv.Handle(ServiceName, MethodInvoke, rpc.Method(m.handleInvoke))
	srv.Handle(ServiceName, MethodPrepare, rpc.Method(m.handlePrepare))
	srv.Handle(ServiceName, MethodCommit, rpc.Method(m.handleCommit))
	srv.Handle(ServiceName, MethodAbort, rpc.Method(m.handleAbort))
	srv.Handle(ServiceName, MethodPassivate, rpc.Method(m.handlePassivate))
	srv.Handle(ServiceName, MethodStatus, rpc.Method(m.handleStatus))
	srv.Handle(ServiceName, MethodInstall, rpc.Method(m.handleInstall))
	srv.Handle(ServiceName, MethodPrepareCommit, rpc.Method(m.handlePrepareCommit))
	srv.Handle(ServiceName, MethodLeaseCheck, rpc.Method(m.handleLeaseCheck))
	return m
}

// EnableGroupInvocation joins activated objects to a per-object group so
// that invocations can be delivered in total order across all replica
// servers — required by active replication (§2.3(2)).
func (m *Manager) EnableGroupInvocation(host *group.Host) { m.ghost = host }

// SetLockLimits bounds every subsequently activated instance's lock wait
// queue and combiner queue. Call during deployment setup, before traffic;
// already-activated instances keep their original limits.
func (m *Manager) SetLockLimits(l lockmgr.Limits) { m.limits = l }

// newLocks builds an instance's lock manager under the configured limits,
// with this manager observing queue events.
func (m *Manager) newLocks() *lockmgr.Manager {
	lm := lockmgr.NewLimited(lockmgr.NoNesting, m.limits)
	lm.SetObserver(m)
	return lm
}

// Lock-queue observability (lockmgr.Observer). The recorded series appear
// in System.StatsSnapshot alongside the RPC counters.
var _ lockmgr.Observer = (*Manager)(nil)

// LockQueued implements lockmgr.Observer.
func (m *Manager) LockQueued(depth int) {
	m.stats.Histogram("objsrv.lock.queue_depth").Record(float64(depth))
}

// LockGranted implements lockmgr.Observer.
func (m *Manager) LockGranted(wait time.Duration) {
	m.stats.Histogram("objsrv.lock.wait_ms").RecordDuration(wait)
}

// LockOverloaded implements lockmgr.Observer.
func (m *Manager) LockOverloaded() {
	m.stats.Counter("objsrv.lock.overload").Inc()
}

// Node returns the manager's node.
func (m *Manager) Node() *sim.Node { return m.node }

func (m *Manager) table() *instanceTable {
	if v, ok := m.node.Volatile(volatileKey); ok {
		return v.(*instanceTable)
	}
	t := &instanceTable{m: make(map[uid.UID]*instance)}
	m.node.SetVolatile(volatileKey, t)
	return t
}

func (m *Manager) lookup(id uid.UID) (*instance, bool) {
	t := m.table()
	t.mu.Lock()
	defer t.mu.Unlock()
	in, ok := t.m[id]
	return in, ok
}

// --- wire records ---

// ActivateReq activates an object at this node, loading state from one of
// the StNodes.
type ActivateReq struct {
	UID     string
	Class   string
	StNodes []string
}

// ActivateResp reports the activation result.
type ActivateResp struct {
	// Seq is the committed version loaded (or already in memory).
	Seq uint64
	// Fresh is true when this call created the server (false: already
	// active).
	Fresh bool
	// LoadedFrom is the St node that supplied the state ("" if already
	// active).
	LoadedFrom string
}

// InvokeReq invokes a method under an action.
type InvokeReq struct {
	UID    string
	Action string
	Method string
	Args   []byte
	// Solo declares that this invocation is the action's ENTIRE write set:
	// the action touches no other object and performs no further writes.
	// For a method the class marks Commutative, that permission lets the
	// server fold the op into a concurrent holder's commit instead of
	// queueing for the lock. Callers that cannot promise this must leave
	// it false.
	Solo bool
	// LeaseHolder, when non-empty, names the client node that would
	// like a read lease on the object: if the invocation takes the read
	// path and the server can vouch its copy is the latest committed
	// version, the reply carries a LeaseGrant (see lease.go).
	LeaseHolder string
}

// InvokeResp carries the method result. Modified reports whether the
// invocation took the write path (clients use it to decide whether a
// checkpoint or state copy will be needed).
type InvokeResp struct {
	Result   []byte
	Modified bool
	// Batched reports that the op was folded into another action's commit,
	// which has ALREADY COMMITTED: the effect is durable and the invoking
	// action has nothing left to write or prepare.
	Batched bool
	// BatchSize is the number of ops the carrying commit folded (set only
	// when Batched).
	BatchSize int
	// WaitNanos is how long the op waited for the lock or in the combiner
	// queue before resolving, for client-side queue-wait stats.
	WaitNanos int64
	// Lease, when non-nil, is the read lease granted for this
	// invocation (requested via InvokeReq.LeaseHolder).
	Lease *LeaseGrant
}

// PrepareReq asks the server to prepare its commit-time state copy to the
// given St nodes (phase one of the client action's 2PC).
type PrepareReq struct {
	UID     string
	Action  string
	StNodes []string
}

// PrepareResp reports the write-back prepare outcome.
type PrepareResp struct {
	// Dirty is false when the action never modified the object: no state
	// copy is needed, and the server has already released the action (the
	// §4.1.2 read optimisation — no phase-two round trip follows).
	Dirty bool
	// NewSeq is the version number the new state will commit as.
	NewSeq uint64
	// PreparedNodes successfully recorded the intention.
	PreparedNodes []string
	// FailedNodes could not be reached or refused; the paper requires the
	// caller to Exclude these from St_A.
	FailedNodes []string
	// BatchSize counts the operations this prepare's state copy carries:
	// 1 for an ordinary action, 1+N when N queued commutative ops were
	// folded into the write-back.
	BatchSize int
}

// EndReq commits or aborts an action at this server.
type EndReq struct {
	UID    string
	Action string
	// CheckpointTo, on commit, asks the server to push its newly committed
	// state to these nodes via Install — the coordinator-cohort
	// checkpointing of §2.3(ii).
	CheckpointTo []string
}

// InstallReq pushes a committed state snapshot into a node's server for an
// object, creating the instance if needed (a cohort receiving a
// checkpoint).
type InstallReq struct {
	UID   string
	Class string
	State []byte
	Seq   uint64
}

// InstallResp acknowledges an install.
type InstallResp struct{ Installed bool }

// EndResp reports fan-out failures during phase two (informational; the
// outcome stands).
type EndResp struct {
	FailedNodes []string
}

// PrepareCommitReq runs prepare and commit as one combined round — used
// by a client action whose only voting participant is this binding, so
// the commit decision can be delegated to the server (one RPC instead of
// two, no coordinator outcome-log write).
type PrepareCommitReq struct {
	UID     string
	Action  string
	StNodes []string
	// CheckpointTo asks the server, on commit, to push the newly committed
	// state to these cohort nodes (coordinator-cohort checkpointing).
	CheckpointTo []string
}

// PrepareCommitResp reports the combined outcome.
type PrepareCommitResp struct {
	// Dirty is false when the action never modified the object; the server
	// released it with no store traffic at all.
	Dirty bool
	// NewSeq is the version number the new state committed as (when Dirty).
	NewSeq uint64
	// FailedNodes lists store nodes that refused/missed the write-back and
	// cohorts whose checkpoint failed, for §4.2 exclusion.
	FailedNodes []string
	// BatchSize counts the operations the committed state carried (see
	// PrepareResp.BatchSize).
	BatchSize int
}

// LeaseCheckReq asks the server for the object's committed version under
// the action's READ LOCK — the commit-time revalidation of a leased read
// in a transaction that also wrote. Acquiring the lock (strict 2PL: held
// until the action ends) is the point: a writer that superseded the
// leased version cannot release its write lock before its lease fence
// completes, so a granted read lock plus a matching version proves the
// leased snapshot is still the latest committed state — and keeps it so
// through the checking action's own commit.
type LeaseCheckReq struct {
	UID    string
	Action string
}

// LeaseCheckResp carries the committed version observed under the lock.
type LeaseCheckResp struct {
	Seq uint64
}

// PassivateReq asks the server to destroy a quiescent instance.
type PassivateReq struct {
	UID string
	// Force destroys the instance even with users (simulates an abrupt
	// server shutdown without a node crash).
	Force bool
}

// PassivateResp reports whether the instance was destroyed.
type PassivateResp struct{ Passivated bool }

// StatusReq queries an object's server at this node.
type StatusReq struct{ UID string }

// StatusResp describes an instance.
type StatusResp struct {
	Active bool
	Seq    uint64
	Users  int
	// Prepared counts actions whose commit-time write-back was prepared at
	// the stores but whose outcome this server has not yet processed. A
	// quiescent instance has Users == 0 and Prepared == 0; anything else
	// after all actions have terminated marks a wedged instance (e.g. a
	// phase-two message that never arrived) — the chaos invariant checkers
	// look for exactly that.
	Prepared int
}

// --- handlers ---

func (m *Manager) handleActivate(ctx context.Context, from transport.Addr, req ActivateReq) (ActivateResp, error) {
	id, err := uid.Parse(req.UID)
	if err != nil {
		return ActivateResp{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
	}
	t := m.table()
	t.mu.Lock()
	if in, ok := t.m[id]; ok {
		t.mu.Unlock()
		in.mu.Lock()
		defer in.mu.Unlock()
		return ActivateResp{Seq: in.seq, Fresh: false}, nil
	}
	t.mu.Unlock()

	class, err := m.registry.Lookup(req.Class)
	if err != nil {
		return ActivateResp{}, rpc.Errorf(rpc.CodeNotFound, "%v", err)
	}
	// Load the state from any store node in St (§3.2(4): "each server is
	// free to load the state of the object from any of the nodes ∈ St").
	var (
		loaded     store.Version
		loadedFrom string
		found      bool
	)
	for _, st := range req.StNodes {
		remote := store.RemoteStore{Client: m.node.Client(), Node: transport.Addr(st)}
		v, err := remote.Read(ctx, id)
		if err != nil {
			continue
		}
		loaded, loadedFrom, found = v, st, true
		break
	}
	if !found {
		return ActivateResp{}, rpc.Errorf(CodeUnavailable, "object %s: no reachable store in %v has its state", req.UID, req.StNodes)
	}
	in := &instance{
		class:        class,
		id:           id,
		locks:        m.newLocks(),
		state:        loaded.Data,
		seq:          loaded.Seq,
		snaps:        make(map[string][]byte),
		dirty:        make(map[string]bool),
		prepared:     make(map[string][]transport.Addr),
		preparedSeq:  make(map[string]uint64),
		users:        make(map[string]bool),
		batches:      make(map[string][]*pendingOp),
		stNodes:      append([]string(nil), req.StNodes...),
		leaseHolders: make(map[transport.Addr]time.Time),
	}
	t.mu.Lock()
	if existing, ok := t.m[id]; ok {
		// Lost a race with a concurrent activation; use the winner.
		t.mu.Unlock()
		existing.mu.Lock()
		defer existing.mu.Unlock()
		return ActivateResp{Seq: existing.seq, Fresh: false}, nil
	}
	t.m[id] = in
	t.mu.Unlock()
	if m.ghost != nil {
		m.ghost.Join(GroupPrefix+id.String(), m.groupApply(in))
	}
	return ActivateResp{Seq: loaded.Seq, Fresh: true, LoadedFrom: loadedFrom}, nil
}

// groupApply adapts group deliveries of KindInvoke to instance invocation.
func (m *Manager) groupApply(in *instance) group.Apply {
	return func(ctx context.Context, msg group.Delivered) ([]byte, error) {
		if msg.Kind != KindInvoke {
			return nil, rpc.Errorf(rpc.CodeNoSuchMethod, "unsupported group message kind %q", msg.Kind)
		}
		var req InvokeReq
		if err := rpc.Decode(msg.Payload, &req); err != nil {
			return nil, err
		}
		// Batching is a coordinator-path optimisation; under active
		// replication the drain would run on one replica only and diverge
		// the copies, so group-delivered invokes never take the solo path.
		// Leases are likewise a single-copy-passive feature: a grant from
		// one replica of an actively replicated object would bypass the
		// total order, so group-delivered invokes never grant.
		req.Solo = false
		req.LeaseHolder = ""
		resp, err := m.invokeOn(ctx, in, req)
		if err != nil {
			return nil, err
		}
		return rpc.Encode(&resp)
	}
}

func (m *Manager) handleInvoke(ctx context.Context, from transport.Addr, req InvokeReq) (InvokeResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return InvokeResp{}, err
	}
	return m.invokeOn(ctx, in, req)
}

func (m *Manager) invokeOn(ctx context.Context, in *instance, req InvokeReq) (InvokeResp, error) {
	method, err := in.class.Method(req.Method)
	if err != nil {
		return InvokeResp{}, rpc.Errorf(rpc.CodeNoSuchMethod, "%v", err)
	}
	mode := lockmgr.Write
	if in.class.IsReadOnly(req.Method) {
		mode = lockmgr.Read
	}
	if req.Solo && mode == lockmgr.Write && in.class.IsCommutative(req.Method) {
		return m.invokeSolo(ctx, in, req, method)
	}
	// Strict two-phase locking: the lock is owned by the client action and
	// held until that action ends (Commit/Abort RPC).
	start := time.Now()
	if err := in.locks.Acquire(ctx, lockmgr.Owner(req.Action), "state", mode); err != nil {
		if errors.Is(err, lockmgr.ErrOverloaded) {
			return InvokeResp{}, rpc.Errorf(CodeOverloaded, "lock: %v", err)
		}
		return InvokeResp{}, rpc.Errorf(rpc.CodeRefused, "lock: %v", err)
	}
	result, err := in.runMethod(req.Action, method, req.Args, mode == lockmgr.Write)
	if err != nil {
		// A failed method leaves the state untouched; the lock stays held
		// (the action will abort or retry).
		return InvokeResp{}, rpc.Errorf(rpc.CodeInternal, "method %s: %v", req.Method, err)
	}
	resp := InvokeResp{Result: result, Modified: mode == lockmgr.Write, WaitNanos: int64(time.Since(start))}
	if mode == lockmgr.Read && m.leaseTTL > 0 && req.LeaseHolder != "" {
		resp.Lease = m.maybeGrant(ctx, in, transport.Addr(req.LeaseHolder))
	}
	return resp, nil
}

// runMethod executes method under in.mu with strict-2PL bookkeeping: the
// caller must hold the appropriate lock for action. A failed method
// leaves state, snapshot, and dirty flags exactly as they were except for
// the users entry, which records that the action touched this server.
func (in *instance) runMethod(action string, method Method, args []byte, write bool) ([]byte, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.users[action] = true
	if write {
		if _, ok := in.snaps[action]; !ok {
			in.snaps[action] = append([]byte(nil), in.state...)
		}
	}
	newState, result, err := method(in.state, args)
	if err != nil {
		return nil, err
	}
	if write {
		in.state = newState
		in.dirty[action] = true
	}
	return result, nil
}

// invokeSolo handles a solo commutative write: take the write lock if
// free (leader — proceeds exactly like an ordinary invoke and will drain
// the combiner at its prepare), otherwise park the op in the combiner to
// ride the current holder's commit. See combine.go for the scheme.
func (m *Manager) invokeSolo(ctx context.Context, in *instance, req InvokeReq, method Method) (InvokeResp, error) {
	owner := lockmgr.Owner(req.Action)
	start := time.Now()
	if err := in.locks.TryAcquire(owner, "state", lockmgr.Write); err == nil {
		result, merr := in.runMethod(req.Action, method, req.Args, true)
		if merr != nil {
			return InvokeResp{}, rpc.Errorf(rpc.CodeInternal, "method %s: %v", req.Method, merr)
		}
		return InvokeResp{Result: result, Modified: true, WaitNanos: int64(time.Since(start))}, nil
	}
	lim := in.locks.Limits()
	op := newPendingOp(req.Action, req.Method, req.Args)
	queued, depth := in.comb.push(op, lim.MaxQueue)
	if !queued {
		m.stats.Counter("objsrv.lock.overload").Inc()
		return InvokeResp{}, rpc.Errorf(CodeOverloaded,
			"object %s at %s: %d ops already queued", req.UID, m.node.Name(), depth)
	}
	m.stats.Histogram("objsrv.lock.queue_depth").Record(float64(depth))
	// Self-kick: the lock may have been released between the TryAcquire
	// above and the enqueue; without this the op could sit forever on an
	// idle lock.
	m.kickCombiner(in)

	out, timedOut, cancelled := op.waitOutcome(lim.MaxWait, ctx.Done())
	if timedOut || cancelled {
		if in.comb.remove(op) {
			// Still queued: cleanly withdrawn, nothing happened.
			if timedOut {
				m.stats.Counter("objsrv.lock.overload").Inc()
				return InvokeResp{}, rpc.Errorf(CodeOverloaded,
					"object %s at %s: op waited %s unserved", req.UID, m.node.Name(), lim.MaxWait)
			}
			return InvokeResp{}, rpc.Errorf(rpc.CodeRefused, "object %s: op abandoned: %v", req.UID, ctx.Err())
		}
		// A leader claimed the op in the same instant: its fate is tied to
		// that leader's commit now, so wait for the verdict rather than
		// reporting an outcome that may be wrong.
		out = <-op.done
	}
	wait := int64(time.Since(start))
	m.stats.Histogram("objsrv.lock.wait_ms").RecordDuration(time.Duration(wait))
	if out.err != nil {
		return InvokeResp{}, out.err
	}
	if out.leader {
		// Promoted to lock holder: the op is applied and this action drives
		// its own commit, draining whatever queued behind it meanwhile.
		return InvokeResp{Result: out.result, Modified: true, WaitNanos: wait}, nil
	}
	m.stats.Counter("objsrv.batch.folded").Inc()
	return InvokeResp{Result: out.result, Modified: true, Batched: true, BatchSize: out.batchSize, WaitNanos: wait}, nil
}

// kickCombiner promotes the combiner queue head to write-lock holder when
// the lock is free. Called after every lock release and after an enqueue
// (the self-kick). TryAcquire's no-barging keeps promotion fair with the
// lock manager's own FIFO waiters: if an ordinary action is queued ahead,
// promotion refuses, that action wins the lock, and its prepare drains
// the combiner instead.
func (m *Manager) kickCombiner(in *instance) {
	for {
		in.comb.mu.Lock()
		if len(in.comb.queue) == 0 {
			in.comb.mu.Unlock()
			return
		}
		head := in.comb.queue[0]
		if err := in.locks.TryAcquire(lockmgr.Owner(head.action), "state", lockmgr.Write); err != nil {
			in.comb.mu.Unlock()
			return
		}
		in.comb.queue = in.comb.queue[1:]
		in.comb.mu.Unlock()

		method, err := in.class.Method(head.method)
		if err != nil {
			in.locks.ReleaseAll(lockmgr.Owner(head.action))
			head.done <- opOutcome{err: rpc.Errorf(rpc.CodeNoSuchMethod, "%v", err)}
			continue
		}
		result, merr := in.runMethod(head.action, method, head.args, true)
		if merr != nil {
			// Same contract as a failed ordinary invoke: state untouched,
			// lock held, the client aborts the action and that abort cleans
			// up. The abort's release will kick the next head.
			head.done <- opOutcome{err: rpc.Errorf(rpc.CodeInternal, "method %s: %v", head.method, merr)}
			return
		}
		head.done <- opOutcome{result: result, leader: true}
		return
	}
}

// drainCombinerLocked folds every queued commutative op into the state
// under the given lock-holding action. Caller holds in.mu; the action
// holds the write lock and its pre-write snapshot is already recorded, so
// the action's abort undoes the whole fold. Ops whose method fails are
// resolved immediately (their individual failure does not poison the
// batch); the rest park in in.batches awaiting the action's outcome.
// Returns the total op count the write-back now carries (1 + folded).
func (m *Manager) drainCombinerLocked(in *instance, action string) int {
	ops := in.comb.takeAll()
	for _, op := range ops {
		method, err := in.class.Method(op.method)
		if err != nil {
			op.done <- opOutcome{err: rpc.Errorf(rpc.CodeNoSuchMethod, "%v", err)}
			continue
		}
		newState, result, merr := method(in.state, op.args)
		if merr != nil {
			op.done <- opOutcome{err: rpc.Errorf(rpc.CodeInternal, "method %s: %v", op.method, merr)}
			continue
		}
		in.state = newState
		op.result = result
		in.batches[action] = append(in.batches[action], op)
	}
	return 1 + len(in.batches[action])
}

// resolveBatch answers every op folded into action's write-back. Commit:
// each op receives its result and the batch size. Abort: each receives a
// retryable refusal — its effect was undone with the leader's snapshot
// restore, and a retry re-runs it fresh.
func (m *Manager) resolveBatch(in *instance, action string, committed bool) {
	in.mu.Lock()
	batch := in.batches[action]
	delete(in.batches, action)
	in.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	if committed {
		total := 1 + len(batch)
		m.stats.Counter("objsrv.batch.commits").Inc()
		m.stats.Histogram("objsrv.batch.size").Record(float64(total))
		for _, op := range batch {
			op.done <- opOutcome{result: op.result, batchSize: total}
		}
		return
	}
	for _, op := range batch {
		op.done <- opOutcome{err: rpc.Errorf(rpc.CodeRefused,
			"object %s: carrying action %s aborted; retry", in.id, action)}
	}
}

// failPending resolves every queued and folded op with a retryable
// refusal — the instance is being destroyed (force passivation, stale
// server) and nobody will ever drain or commit them.
func (m *Manager) failPending(in *instance, why string) {
	in.mu.Lock()
	var folded []*pendingOp
	for action, batch := range in.batches {
		folded = append(folded, batch...)
		delete(in.batches, action)
	}
	in.mu.Unlock()
	for _, op := range append(in.comb.takeAll(), folded...) {
		op.done <- opOutcome{err: rpc.Errorf(rpc.CodeRefused, "object %s: %s; retry", in.id, why)}
	}
}

func (m *Manager) mustLookup(uidStr string) (*instance, error) {
	id, err := uid.Parse(uidStr)
	if err != nil {
		return nil, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
	}
	in, ok := m.lookup(id)
	if !ok {
		return nil, rpc.Errorf(CodeNotActive, "object %s not active at %s", uidStr, m.node.Name())
	}
	return in, nil
}

func (m *Manager) handlePrepare(ctx context.Context, from transport.Addr, req PrepareReq) (PrepareResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return PrepareResp{}, err
	}
	in.mu.Lock()
	if !in.dirty[req.Action] {
		// The action only read here: release it right now — drop its user
		// entry and its locks — so the read-only vote ends this server's
		// involvement with no phase-two round trip (§4.1.2).
		delete(in.snaps, req.Action)
		delete(in.users, req.Action)
		in.mu.Unlock()
		in.locks.ReleaseAll(lockmgr.Owner(req.Action))
		m.kickCombiner(in)
		return PrepareResp{Dirty: false}, nil
	}
	// Fold queued commutative ops into this write-back before snapshotting:
	// they ride this action's single 2PC round (one lock hold, one commit,
	// N replies).
	batchSize := m.drainCombinerLocked(in, req.Action)
	newSeq := in.seq + 1
	state := append([]byte(nil), in.state...)
	in.mu.Unlock()

	// Copy the new state to all functioning St nodes (§3.2(2)) in
	// parallel — the copies are independent, so the write-back costs one
	// store round trip instead of one per store. Outcomes are collected in
	// StNodes order so PreparedNodes/FailedNodes stay deterministic.
	// Remember which prepared so commit/abort can address exactly those.
	resp := PrepareResp{Dirty: true, NewSeq: newSeq, BatchSize: batchSize}
	var preparedAddrs []transport.Addr
	staleRefusals, reachable := 0, 0
	prepareStart := time.Now()
	copyErrs := conc.DoErr(len(req.StNodes), func(i int) error {
		remote := store.RemoteStore{Client: m.node.Client(), Node: transport.Addr(req.StNodes[i])}
		writes := []store.Write{{UID: in.id, Data: state, Seq: newSeq}}
		err := remote.Prepare(ctx, req.Action, writes)
		if rpc.CodeOf(err) == rpc.CodeConflict {
			// The object is pinned by another transaction's prepared
			// intention. That pin may be an ACKNOWLEDGED COMMIT whose
			// phase-two message this store never received — giving up here
			// would exclude the one store carrying the latest state and
			// fork the version chain. Ask the store to resolve pins with
			// affirmatively recorded outcomes (never presuming abort on a
			// live, undecided transaction) and retry once: a resolved
			// commit either unblocks us or correctly refuses us as stale.
			if _, rerr := remote.ResolveDecided(ctx); rerr == nil {
				err = remote.Prepare(ctx, req.Action, writes)
			}
		}
		return err
	})
	for i, st := range req.StNodes {
		if err := copyErrs[i]; err != nil {
			if errors.Is(err, store.ErrStaleVersion) {
				staleRefusals++
				reachable++
			}
			resp.FailedNodes = append(resp.FailedNodes, st)
			continue
		}
		reachable++
		resp.PreparedNodes = append(resp.PreparedNodes, st)
		preparedAddrs = append(preparedAddrs, transport.Addr(st))
	}
	in.mu.Lock()
	in.prepared[req.Action] = preparedAddrs
	in.preparedSeq[req.Action] = newSeq
	in.mu.Unlock()
	if m.leaseTTL > 0 {
		// A store accepting the prepare validated its base version, so a
		// majority acceptance confirms this copy was latest at
		// prepareStart — refreshing the no-probe grant window.
		in.markConfirmed(prepareStart, len(resp.PreparedNodes), len(req.StNodes))
	}
	if reachable > 0 && staleRefusals == reachable {
		// Every reachable store refused the write as stale: this activated
		// copy has been left behind (commits went through other servers
		// while it sat idle). Destroy the instance so the next activation
		// reloads the latest committed state, and abort this action.
		_, _ = m.handlePassivate(ctx, from, PassivateReq{UID: req.UID, Force: true})
		return resp, rpc.Errorf(CodeStaleServer, "object %s at %s: activated copy is stale (base seq %d)", req.UID, m.node.Name(), newSeq-1)
	}
	if len(resp.PreparedNodes) == 0 {
		// No store holds the new state: the action cannot commit (§3.2(2):
		// abort if all the nodes ∈ St are down).
		return resp, rpc.Errorf(CodeUnavailable, "object %s: no St node accepted the new state", req.UID)
	}
	return resp, nil
}

func (m *Manager) handleCommit(ctx context.Context, from transport.Addr, req EndReq) (EndResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return EndResp{}, err
	}
	in.mu.Lock()
	prepared := in.prepared[req.Action]
	newSeq, hasPrepared := in.preparedSeq[req.Action]
	advanced := in.dirty[req.Action] && hasPrepared
	if advanced {
		in.seq = newSeq
	}
	ckptState := append([]byte(nil), in.state...)
	ckptSeq := in.seq
	className := in.class.Name
	delete(in.snaps, req.Action)
	delete(in.dirty, req.Action)
	delete(in.prepared, req.Action)
	delete(in.preparedSeq, req.Action)
	delete(in.users, req.Action)
	in.mu.Unlock()
	// The commit decision is already durable upstream (this is phase two),
	// so folded ops can be answered before the store fan-out completes.
	m.resolveBatch(in, req.Action, true)

	// Phase-two store commits and coordinator-cohort checkpoints
	// (§2.3(ii): push the committed state to the cohorts so one of them
	// can take over without touching the object stores) are independent —
	// run them all in parallel, collecting failures in deterministic
	// order. Checkpoint failures break the cohort binding, which the
	// caller observes via FailedNodes.
	var resp EndResp
	commitStart := time.Now()
	storeErrs := make([]error, len(prepared))
	ckptErrs := make([]error, len(req.CheckpointTo))
	conc.Do(len(prepared)+len(req.CheckpointTo), func(i int) {
		if i < len(prepared) {
			remote := store.RemoteStore{Client: m.node.Client(), Node: prepared[i]}
			storeErrs[i] = remote.Commit(ctx, req.Action)
			return
		}
		j := i - len(prepared)
		ref := ServerRef{Client: m.node.Client(), Node: transport.Addr(req.CheckpointTo[j]), UID: in.id}
		ckptErrs[j] = ref.Install(ctx, className, ckptState, ckptSeq)
	})
	for i, st := range prepared {
		if storeErrs[i] != nil {
			resp.FailedNodes = append(resp.FailedNodes, string(st))
		}
	}
	for j, cohort := range req.CheckpointTo {
		if ckptErrs[j] != nil {
			resp.FailedNodes = append(resp.FailedNodes, cohort)
		}
	}
	if m.leaseTTL > 0 && advanced {
		committed := 0
		for i := range prepared {
			if storeErrs[i] == nil {
				committed++
			}
		}
		in.markConfirmed(commitStart, committed, len(prepared))
	}
	// The new version is durable: fence every read lease at the old one
	// BEFORE releasing the action's locks. The order matters — a lock
	// released first could admit a conflicting action that commits
	// against this object while the invalidation multicast is still in
	// flight, so delivery-confirmed invalidation (or the waitout) must
	// precede any conflicting lock grant here. Even a fence interrupted
	// by ctx still releases: the commit stands, and holding the locks
	// past this handler would wedge the object forever.
	var fenceErr error
	if advanced {
		fenceErr = m.leaseCommitFence(ctx, in, time.Now(), true)
	}
	in.locks.ReleaseAll(lockmgr.Owner(req.Action))
	m.kickCombiner(in)
	return resp, fenceErr
}

func (m *Manager) handleInstall(ctx context.Context, from transport.Addr, req InstallReq) (InstallResp, error) {
	id, err := uid.Parse(req.UID)
	if err != nil {
		return InstallResp{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
	}
	if in, ok := m.lookup(id); ok {
		in.mu.Lock()
		if len(in.users) > 0 {
			in.mu.Unlock()
			return InstallResp{}, rpc.Errorf(CodeBusy, "object %s has active users", req.UID)
		}
		if req.Seq <= in.seq {
			// Stale checkpoint: keep the newer state.
			in.mu.Unlock()
			return InstallResp{Installed: false}, nil
		}
		in.state = append([]byte(nil), req.State...)
		in.seq = req.Seq
		in.mu.Unlock()
		// The version advanced past any leases this server granted:
		// fence them before acknowledging (the committer pushing this
		// checkpoint acks its client only after this reply).
		if err := m.leaseCommitFence(ctx, in, time.Now(), false); err != nil {
			return InstallResp{}, err
		}
		return InstallResp{Installed: true}, nil
	}
	class, err := m.registry.Lookup(req.Class)
	if err != nil {
		return InstallResp{}, rpc.Errorf(rpc.CodeNotFound, "%v", err)
	}
	in := &instance{
		class:        class,
		id:           id,
		locks:        m.newLocks(),
		state:        append([]byte(nil), req.State...),
		seq:          req.Seq,
		snaps:        make(map[string][]byte),
		dirty:        make(map[string]bool),
		prepared:     make(map[string][]transport.Addr),
		preparedSeq:  make(map[string]uint64),
		users:        make(map[string]bool),
		batches:      make(map[string][]*pendingOp),
		leaseHolders: make(map[transport.Addr]time.Time),
	}
	t := m.table()
	t.mu.Lock()
	if _, exists := t.m[id]; !exists {
		t.m[id] = in
	}
	t.mu.Unlock()
	if m.ghost != nil {
		m.ghost.Join(GroupPrefix+id.String(), m.groupApply(in))
	}
	return InstallResp{Installed: true}, nil
}

func (m *Manager) handleAbort(ctx context.Context, from transport.Addr, req EndReq) (EndResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return EndResp{}, err
	}
	in.mu.Lock()
	prepared := in.prepared[req.Action]
	if snap, ok := in.snaps[req.Action]; ok {
		in.state = snap
	} else {
	}
	delete(in.snaps, req.Action)
	delete(in.dirty, req.Action)
	delete(in.prepared, req.Action)
	delete(in.preparedSeq, req.Action)
	delete(in.users, req.Action)
	in.mu.Unlock()
	// The snapshot restore above undid the whole fold; tell the folded ops
	// to retry.
	m.resolveBatch(in, req.Action, false)

	var resp EndResp
	abortErrs := conc.DoErr(len(prepared), func(i int) error {
		remote := store.RemoteStore{Client: m.node.Client(), Node: prepared[i]}
		return remote.Abort(ctx, req.Action)
	})
	for i, st := range prepared {
		if abortErrs[i] != nil {
			resp.FailedNodes = append(resp.FailedNodes, string(st))
		}
	}
	in.locks.ReleaseAll(lockmgr.Owner(req.Action))
	m.kickCombiner(in)
	return resp, nil
}

// handlePrepareCommit composes handlePrepare and handleCommit into one
// round. The caller (replica.Handle.CommitOnePhase) only takes this path
// when the write-back lands on at most one stable store, so there is no
// multi-store atomic-commitment problem for the missing outcome log to
// solve: the single store's apply is atomic, and a crash between the
// store prepare and its commit resolves to abort under presumed abort —
// exactly what the coordinator reports for a failed one-phase call.
func (m *Manager) handlePrepareCommit(ctx context.Context, from transport.Addr, req PrepareCommitReq) (PrepareCommitResp, error) {
	if len(req.StNodes) == 1 {
		return m.prepareCommitSingleStore(ctx, from, req)
	}
	presp, err := m.handlePrepare(ctx, from, PrepareReq{UID: req.UID, Action: req.Action, StNodes: req.StNodes})
	if err != nil {
		return PrepareCommitResp{Dirty: presp.Dirty, FailedNodes: presp.FailedNodes}, err
	}
	resp := PrepareCommitResp{Dirty: presp.Dirty, NewSeq: presp.NewSeq, FailedNodes: presp.FailedNodes}
	if !presp.Dirty {
		// Read-only: handlePrepare already released the action here.
		return resp, nil
	}
	eresp, err := m.handleCommit(ctx, from, EndReq{UID: req.UID, Action: req.Action, CheckpointTo: req.CheckpointTo})
	resp.FailedNodes = append(resp.FailedNodes, eresp.FailedNodes...)
	return resp, err
}

// prepareCommitSingleStore is the fully collapsed one-phase path: with
// exactly one St node the store's CommitOnePhase applies the write-back
// atomically, so the server→store leg shrinks to a single round trip
// too. A failed store call leaves nothing persisted — the caller's
// action aborts, and the subsequent Abort RPC restores the snapshot.
func (m *Manager) prepareCommitSingleStore(ctx context.Context, from transport.Addr, req PrepareCommitReq) (PrepareCommitResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return PrepareCommitResp{}, err
	}
	in.mu.Lock()
	if !in.dirty[req.Action] {
		// Read-only: release immediately, exactly as handlePrepare does.
		delete(in.snaps, req.Action)
		delete(in.users, req.Action)
		in.mu.Unlock()
		in.locks.ReleaseAll(lockmgr.Owner(req.Action))
		m.kickCombiner(in)
		return PrepareCommitResp{Dirty: false}, nil
	}
	// Fold queued commutative ops into the one-phase write-back (see
	// handlePrepare).
	batchSize := m.drainCombinerLocked(in, req.Action)
	newSeq := in.seq + 1
	state := append([]byte(nil), in.state...)
	in.mu.Unlock()

	remote := store.RemoteStore{Client: m.node.Client(), Node: transport.Addr(req.StNodes[0])}
	onePhaseStart := time.Now()
	if err := remote.CommitOnePhase(ctx, req.Action, []store.Write{{UID: in.id, Data: state, Seq: newSeq}}); err != nil {
		if errors.Is(err, store.ErrStaleVersion) {
			// This activated copy has been left behind; destroy it so the
			// next activation reloads, and abort this action.
			_, _ = m.handlePassivate(ctx, from, PassivateReq{UID: req.UID, Force: true})
			return PrepareCommitResp{Dirty: true}, rpc.Errorf(CodeStaleServer,
				"object %s at %s: activated copy is stale (base seq %d)", req.UID, m.node.Name(), newSeq-1)
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, transport.ErrReplyLost) {
			// The request may have reached the store and committed before
			// the failure was observed (e.g. the server is being torn down
			// and its base context was canceled mid-call). A definite
			// refusal here would let the coordinator record an abort over
			// a durably committed write, so report ambiguity instead.
			return PrepareCommitResp{Dirty: true, FailedNodes: []string{req.StNodes[0]}},
				rpc.Errorf(CodeCommitUncertain, "object %s: one-phase commit outcome unknown: %v", req.UID, err)
		}
		return PrepareCommitResp{Dirty: true, FailedNodes: []string{req.StNodes[0]}},
			rpc.Errorf(CodeUnavailable, "object %s: no St node accepted the new state: %v", req.UID, err)
	}

	in.mu.Lock()
	in.seq = newSeq
	className := in.class.Name
	delete(in.snaps, req.Action)
	delete(in.dirty, req.Action)
	delete(in.prepared, req.Action)
	delete(in.preparedSeq, req.Action)
	delete(in.users, req.Action)
	in.mu.Unlock()
	if m.leaseTTL > 0 {
		// A single-store view: the one accepting store IS the majority.
		in.markConfirmed(onePhaseStart, 1, 1)
	}
	// The store's one-phase apply succeeded: the batch is durable.
	m.resolveBatch(in, req.Action, true)

	resp := PrepareCommitResp{Dirty: true, NewSeq: newSeq, BatchSize: batchSize}
	// The write locks are still held, so `state` (snapshotted above) IS the
	// committed state — reuse it for the cohort checkpoints.
	ckptErrs := conc.DoErr(len(req.CheckpointTo), func(j int) error {
		ref := ServerRef{Client: m.node.Client(), Node: transport.Addr(req.CheckpointTo[j]), UID: in.id}
		return ref.Install(ctx, className, state, newSeq)
	})
	for j, cohort := range req.CheckpointTo {
		if ckptErrs[j] != nil {
			resp.FailedNodes = append(resp.FailedNodes, cohort)
		}
	}
	// Commit is durable: fence old-version leases before the lock release
	// (same ordering argument as handleCommit — no conflicting lock grant
	// until every stale lease is provably dead) and before acknowledging.
	fenceErr := m.leaseCommitFence(ctx, in, time.Now(), true)
	in.locks.ReleaseAll(lockmgr.Owner(req.Action))
	m.kickCombiner(in)
	return resp, fenceErr
}

// handleLeaseCheck serves the mixed-transaction revalidation read: take
// the object's read lock under the action (queueing behind any committing
// writer, whose lease fence precedes its lock release) and report the
// committed version. The action is registered as a user so prepare sees
// and releases it exactly like a plain read — a read-only vote with no
// phase-two round trip.
func (m *Manager) handleLeaseCheck(ctx context.Context, from transport.Addr, req LeaseCheckReq) (LeaseCheckResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return LeaseCheckResp{}, err
	}
	if err := in.locks.Acquire(ctx, lockmgr.Owner(req.Action), "state", lockmgr.Read); err != nil {
		if errors.Is(err, lockmgr.ErrOverloaded) {
			return LeaseCheckResp{}, rpc.Errorf(CodeOverloaded, "lock: %v", err)
		}
		return LeaseCheckResp{}, rpc.Errorf(rpc.CodeRefused, "lock: %v", err)
	}
	in.mu.Lock()
	in.users[req.Action] = true
	seq := in.seq
	in.mu.Unlock()
	return LeaseCheckResp{Seq: seq}, nil
}

func (m *Manager) handlePassivate(ctx context.Context, from transport.Addr, req PassivateReq) (PassivateResp, error) {
	id, err := uid.Parse(req.UID)
	if err != nil {
		return PassivateResp{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
	}
	t := m.table()
	t.mu.Lock()
	in, ok := t.m[id]
	if !ok {
		t.mu.Unlock()
		return PassivateResp{Passivated: false}, nil
	}
	in.mu.Lock()
	busy := len(in.users) > 0
	in.mu.Unlock()
	if in.comb.depth() > 0 {
		busy = true
	}
	if busy && !req.Force {
		t.mu.Unlock()
		return PassivateResp{}, rpc.Errorf(CodeBusy, "object %s has %s", req.UID, "active users")
	}
	delete(t.m, id)
	t.mu.Unlock()
	m.failPending(in, "server passivated")
	if m.ghost != nil {
		m.ghost.Leave(GroupPrefix + id.String())
	}
	// Fence outstanding read leases before confirming: once the
	// instance is gone no commit through this server will ever
	// invalidate them (the placement.Move stale-lease hazard).
	if err := m.leasePassivateFence(ctx, in); err != nil {
		return PassivateResp{}, err
	}
	return PassivateResp{Passivated: true}, nil
}

func (m *Manager) handleStatus(ctx context.Context, from transport.Addr, req StatusReq) (StatusResp, error) {
	id, err := uid.Parse(req.UID)
	if err != nil {
		return StatusResp{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
	}
	in, ok := m.lookup(id)
	if !ok {
		return StatusResp{Active: false}, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return StatusResp{Active: true, Seq: in.seq, Users: len(in.users), Prepared: len(in.prepared)}, nil
}

// errNotActive exposes a sentinel check helper for clients.
var errNotActive = errors.New(CodeNotActive)

// IsNotActive reports whether err is an object-not-active application
// error.
func IsNotActive(err error) bool {
	if errors.Is(err, errNotActive) {
		return true
	}
	return rpc.CodeOf(err) == CodeNotActive
}

// Describe returns a human-readable summary of the node's activated
// objects, for the CLI.
func (m *Manager) Describe() string {
	t := m.table()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) == 0 {
		return fmt.Sprintf("%s: no active objects", m.node.Name())
	}
	out := fmt.Sprintf("%s: %d active object(s)", m.node.Name(), len(t.m))
	for id, in := range t.m {
		in.mu.Lock()
		out += fmt.Sprintf("\n  %s class=%s seq=%d users=%d", id, in.class.Name, in.seq, len(in.users))
		in.mu.Unlock()
	}
	return out
}
