package object

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/conc"
	"repro/internal/group"
	"repro/internal/lockmgr"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
)

// ServiceName is the RPC service under which a node's object servers are
// reachable.
const ServiceName = "objsrv"

// RPC method names.
const (
	MethodActivate  = "Activate"
	MethodInvoke    = "Invoke"
	MethodPrepare   = "Prepare"
	MethodCommit    = "Commit"
	MethodAbort     = "Abort"
	MethodPassivate = "Passivate"
	MethodStatus    = "Status"
	MethodInstall   = "Install"
	// MethodPrepareCommit runs prepare and commit as one combined round —
	// the single-participant 2PC fast path.
	MethodPrepareCommit = "PrepareCommit"
)

// Application error codes specific to object servers.
const (
	// CodeNotActive reports an invocation on an object with no server at
	// this node — the caller must activate first.
	CodeNotActive = "not-active"
	// CodeUnavailable reports that activation failed because no St node
	// could supply the object's state.
	CodeUnavailable = "unavailable"
	// CodeBusy reports a refused passivation (the object is not quiescent).
	CodeBusy = "busy"
	// CodeStaleServer reports that this node's activated copy was refused
	// by every reachable store as stale; the instance has been destroyed
	// and the calling action must abort (a retry re-activates fresh).
	CodeStaleServer = "stale-server"
)

// GroupPrefix prefixes the group ID servers join for an object when group
// invocation is enabled: GroupPrefix + UID.String().
const GroupPrefix = "obj/"

// KindInvoke is the multicast message kind for group-ordered invocations.
const KindInvoke = "invoke"

// instance is one activated object replica living in a node's volatile
// memory.
type instance struct {
	class *Class
	id    uid.UID
	locks *lockmgr.Manager

	mu    sync.Mutex
	state []byte
	// seq is the committed version this state derives from.
	seq uint64
	// snaps maps an action to the pre-action state (for abort).
	snaps map[string][]byte
	// dirty marks actions that modified the state.
	dirty map[string]bool
	// prepared maps an action to the St nodes where its write-back has
	// been prepared, and preparedSeq to the version number used.
	prepared    map[string][]transport.Addr
	preparedSeq map[string]uint64
	// users is the set of actions currently bound (invoked at least once
	// and not yet ended); the object is quiescent when empty.
	users map[string]bool
}

// volatileKey is where a node's activated instances live; being volatile,
// every activated object disappears when the node crashes (§2.1).
const volatileKey = "objsrv.instances"

// instanceTable is the volatile map of activated objects.
type instanceTable struct {
	mu sync.Mutex
	m  map[uid.UID]*instance
}

// Manager runs a node's object servers: it activates passive objects,
// executes invocations under action-held locks, and drives commit-time
// state copy-back to the object stores.
type Manager struct {
	node     *sim.Node
	registry *Registry
	ghost    *group.Host // nil unless group invocation is enabled
}

// NewManager installs an object-server manager on node, registering its
// RPC handlers. The registry supplies method code — the paper's assumption
// that server nodes hold the executable binary for the objects they serve.
func NewManager(node *sim.Node, registry *Registry) *Manager {
	m := &Manager{node: node, registry: registry}
	srv := node.Server()
	srv.Handle(ServiceName, MethodActivate, rpc.Method(m.handleActivate))
	srv.Handle(ServiceName, MethodInvoke, rpc.Method(m.handleInvoke))
	srv.Handle(ServiceName, MethodPrepare, rpc.Method(m.handlePrepare))
	srv.Handle(ServiceName, MethodCommit, rpc.Method(m.handleCommit))
	srv.Handle(ServiceName, MethodAbort, rpc.Method(m.handleAbort))
	srv.Handle(ServiceName, MethodPassivate, rpc.Method(m.handlePassivate))
	srv.Handle(ServiceName, MethodStatus, rpc.Method(m.handleStatus))
	srv.Handle(ServiceName, MethodInstall, rpc.Method(m.handleInstall))
	srv.Handle(ServiceName, MethodPrepareCommit, rpc.Method(m.handlePrepareCommit))
	return m
}

// EnableGroupInvocation joins activated objects to a per-object group so
// that invocations can be delivered in total order across all replica
// servers — required by active replication (§2.3(2)).
func (m *Manager) EnableGroupInvocation(host *group.Host) { m.ghost = host }

// Node returns the manager's node.
func (m *Manager) Node() *sim.Node { return m.node }

func (m *Manager) table() *instanceTable {
	if v, ok := m.node.Volatile(volatileKey); ok {
		return v.(*instanceTable)
	}
	t := &instanceTable{m: make(map[uid.UID]*instance)}
	m.node.SetVolatile(volatileKey, t)
	return t
}

func (m *Manager) lookup(id uid.UID) (*instance, bool) {
	t := m.table()
	t.mu.Lock()
	defer t.mu.Unlock()
	in, ok := t.m[id]
	return in, ok
}

// --- wire records ---

// ActivateReq activates an object at this node, loading state from one of
// the StNodes.
type ActivateReq struct {
	UID     string
	Class   string
	StNodes []string
}

// ActivateResp reports the activation result.
type ActivateResp struct {
	// Seq is the committed version loaded (or already in memory).
	Seq uint64
	// Fresh is true when this call created the server (false: already
	// active).
	Fresh bool
	// LoadedFrom is the St node that supplied the state ("" if already
	// active).
	LoadedFrom string
}

// InvokeReq invokes a method under an action.
type InvokeReq struct {
	UID    string
	Action string
	Method string
	Args   []byte
}

// InvokeResp carries the method result. Modified reports whether the
// invocation took the write path (clients use it to decide whether a
// checkpoint or state copy will be needed).
type InvokeResp struct {
	Result   []byte
	Modified bool
}

// PrepareReq asks the server to prepare its commit-time state copy to the
// given St nodes (phase one of the client action's 2PC).
type PrepareReq struct {
	UID     string
	Action  string
	StNodes []string
}

// PrepareResp reports the write-back prepare outcome.
type PrepareResp struct {
	// Dirty is false when the action never modified the object: no state
	// copy is needed, and the server has already released the action (the
	// §4.1.2 read optimisation — no phase-two round trip follows).
	Dirty bool
	// NewSeq is the version number the new state will commit as.
	NewSeq uint64
	// PreparedNodes successfully recorded the intention.
	PreparedNodes []string
	// FailedNodes could not be reached or refused; the paper requires the
	// caller to Exclude these from St_A.
	FailedNodes []string
}

// EndReq commits or aborts an action at this server.
type EndReq struct {
	UID    string
	Action string
	// CheckpointTo, on commit, asks the server to push its newly committed
	// state to these nodes via Install — the coordinator-cohort
	// checkpointing of §2.3(ii).
	CheckpointTo []string
}

// InstallReq pushes a committed state snapshot into a node's server for an
// object, creating the instance if needed (a cohort receiving a
// checkpoint).
type InstallReq struct {
	UID   string
	Class string
	State []byte
	Seq   uint64
}

// InstallResp acknowledges an install.
type InstallResp struct{ Installed bool }

// EndResp reports fan-out failures during phase two (informational; the
// outcome stands).
type EndResp struct {
	FailedNodes []string
}

// PrepareCommitReq runs prepare and commit as one combined round — used
// by a client action whose only voting participant is this binding, so
// the commit decision can be delegated to the server (one RPC instead of
// two, no coordinator outcome-log write).
type PrepareCommitReq struct {
	UID     string
	Action  string
	StNodes []string
	// CheckpointTo asks the server, on commit, to push the newly committed
	// state to these cohort nodes (coordinator-cohort checkpointing).
	CheckpointTo []string
}

// PrepareCommitResp reports the combined outcome.
type PrepareCommitResp struct {
	// Dirty is false when the action never modified the object; the server
	// released it with no store traffic at all.
	Dirty bool
	// NewSeq is the version number the new state committed as (when Dirty).
	NewSeq uint64
	// FailedNodes lists store nodes that refused/missed the write-back and
	// cohorts whose checkpoint failed, for §4.2 exclusion.
	FailedNodes []string
}

// PassivateReq asks the server to destroy a quiescent instance.
type PassivateReq struct {
	UID string
	// Force destroys the instance even with users (simulates an abrupt
	// server shutdown without a node crash).
	Force bool
}

// PassivateResp reports whether the instance was destroyed.
type PassivateResp struct{ Passivated bool }

// StatusReq queries an object's server at this node.
type StatusReq struct{ UID string }

// StatusResp describes an instance.
type StatusResp struct {
	Active bool
	Seq    uint64
	Users  int
	// Prepared counts actions whose commit-time write-back was prepared at
	// the stores but whose outcome this server has not yet processed. A
	// quiescent instance has Users == 0 and Prepared == 0; anything else
	// after all actions have terminated marks a wedged instance (e.g. a
	// phase-two message that never arrived) — the chaos invariant checkers
	// look for exactly that.
	Prepared int
}

// --- handlers ---

func (m *Manager) handleActivate(ctx context.Context, from transport.Addr, req ActivateReq) (ActivateResp, error) {
	id, err := uid.Parse(req.UID)
	if err != nil {
		return ActivateResp{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
	}
	t := m.table()
	t.mu.Lock()
	if in, ok := t.m[id]; ok {
		t.mu.Unlock()
		in.mu.Lock()
		defer in.mu.Unlock()
		return ActivateResp{Seq: in.seq, Fresh: false}, nil
	}
	t.mu.Unlock()

	class, err := m.registry.Lookup(req.Class)
	if err != nil {
		return ActivateResp{}, rpc.Errorf(rpc.CodeNotFound, "%v", err)
	}
	// Load the state from any store node in St (§3.2(4): "each server is
	// free to load the state of the object from any of the nodes ∈ St").
	var (
		loaded     store.Version
		loadedFrom string
		found      bool
	)
	for _, st := range req.StNodes {
		remote := store.RemoteStore{Client: m.node.Client(), Node: transport.Addr(st)}
		v, err := remote.Read(ctx, id)
		if err != nil {
			continue
		}
		loaded, loadedFrom, found = v, st, true
		break
	}
	if !found {
		return ActivateResp{}, rpc.Errorf(CodeUnavailable, "object %s: no reachable store in %v has its state", req.UID, req.StNodes)
	}
	in := &instance{
		class:       class,
		id:          id,
		locks:       lockmgr.New(lockmgr.NoNesting),
		state:       loaded.Data,
		seq:         loaded.Seq,
		snaps:       make(map[string][]byte),
		dirty:       make(map[string]bool),
		prepared:    make(map[string][]transport.Addr),
		preparedSeq: make(map[string]uint64),
		users:       make(map[string]bool),
	}
	t.mu.Lock()
	if existing, ok := t.m[id]; ok {
		// Lost a race with a concurrent activation; use the winner.
		t.mu.Unlock()
		existing.mu.Lock()
		defer existing.mu.Unlock()
		return ActivateResp{Seq: existing.seq, Fresh: false}, nil
	}
	t.m[id] = in
	t.mu.Unlock()
	if m.ghost != nil {
		m.ghost.Join(GroupPrefix+id.String(), m.groupApply(in))
	}
	return ActivateResp{Seq: loaded.Seq, Fresh: true, LoadedFrom: loadedFrom}, nil
}

// groupApply adapts group deliveries of KindInvoke to instance invocation.
func (m *Manager) groupApply(in *instance) group.Apply {
	return func(ctx context.Context, msg group.Delivered) ([]byte, error) {
		if msg.Kind != KindInvoke {
			return nil, rpc.Errorf(rpc.CodeNoSuchMethod, "unsupported group message kind %q", msg.Kind)
		}
		var req InvokeReq
		if err := rpc.Decode(msg.Payload, &req); err != nil {
			return nil, err
		}
		resp, err := m.invokeOn(ctx, in, req)
		if err != nil {
			return nil, err
		}
		return rpc.Encode(&resp)
	}
}

func (m *Manager) handleInvoke(ctx context.Context, from transport.Addr, req InvokeReq) (InvokeResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return InvokeResp{}, err
	}
	return m.invokeOn(ctx, in, req)
}

func (m *Manager) invokeOn(ctx context.Context, in *instance, req InvokeReq) (InvokeResp, error) {
	method, err := in.class.Method(req.Method)
	if err != nil {
		return InvokeResp{}, rpc.Errorf(rpc.CodeNoSuchMethod, "%v", err)
	}
	mode := lockmgr.Write
	if in.class.IsReadOnly(req.Method) {
		mode = lockmgr.Read
	}
	// Strict two-phase locking: the lock is owned by the client action and
	// held until that action ends (Commit/Abort RPC).
	if err := in.locks.Acquire(ctx, lockmgr.Owner(req.Action), "state", mode); err != nil {
		return InvokeResp{}, rpc.Errorf(rpc.CodeRefused, "lock: %v", err)
	}

	in.mu.Lock()
	defer in.mu.Unlock()
	in.users[req.Action] = true
	if mode == lockmgr.Write {
		if _, ok := in.snaps[req.Action]; !ok {
			in.snaps[req.Action] = append([]byte(nil), in.state...)
		}
	}
	newState, result, err := method(in.state, req.Args)
	if err != nil {
		// A failed method leaves the state untouched; the lock stays held
		// (the action will abort or retry).
		return InvokeResp{}, rpc.Errorf(rpc.CodeInternal, "method %s: %v", req.Method, err)
	}
	if mode == lockmgr.Write {
		in.state = newState
		in.dirty[req.Action] = true
	}
	return InvokeResp{Result: result, Modified: mode == lockmgr.Write}, nil
}

func (m *Manager) mustLookup(uidStr string) (*instance, error) {
	id, err := uid.Parse(uidStr)
	if err != nil {
		return nil, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
	}
	in, ok := m.lookup(id)
	if !ok {
		return nil, rpc.Errorf(CodeNotActive, "object %s not active at %s", uidStr, m.node.Name())
	}
	return in, nil
}

func (m *Manager) handlePrepare(ctx context.Context, from transport.Addr, req PrepareReq) (PrepareResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return PrepareResp{}, err
	}
	in.mu.Lock()
	if !in.dirty[req.Action] {
		// The action only read here: release it right now — drop its user
		// entry and its locks — so the read-only vote ends this server's
		// involvement with no phase-two round trip (§4.1.2).
		delete(in.snaps, req.Action)
		delete(in.users, req.Action)
		in.mu.Unlock()
		in.locks.ReleaseAll(lockmgr.Owner(req.Action))
		return PrepareResp{Dirty: false}, nil
	}
	newSeq := in.seq + 1
	state := append([]byte(nil), in.state...)
	in.mu.Unlock()

	// Copy the new state to all functioning St nodes (§3.2(2)) in
	// parallel — the copies are independent, so the write-back costs one
	// store round trip instead of one per store. Outcomes are collected in
	// StNodes order so PreparedNodes/FailedNodes stay deterministic.
	// Remember which prepared so commit/abort can address exactly those.
	resp := PrepareResp{Dirty: true, NewSeq: newSeq}
	var preparedAddrs []transport.Addr
	staleRefusals, reachable := 0, 0
	copyErrs := conc.DoErr(len(req.StNodes), func(i int) error {
		remote := store.RemoteStore{Client: m.node.Client(), Node: transport.Addr(req.StNodes[i])}
		writes := []store.Write{{UID: in.id, Data: state, Seq: newSeq}}
		err := remote.Prepare(ctx, req.Action, writes)
		if rpc.CodeOf(err) == rpc.CodeConflict {
			// The object is pinned by another transaction's prepared
			// intention. That pin may be an ACKNOWLEDGED COMMIT whose
			// phase-two message this store never received — giving up here
			// would exclude the one store carrying the latest state and
			// fork the version chain. Ask the store to resolve pins with
			// affirmatively recorded outcomes (never presuming abort on a
			// live, undecided transaction) and retry once: a resolved
			// commit either unblocks us or correctly refuses us as stale.
			if _, rerr := remote.ResolveDecided(ctx); rerr == nil {
				err = remote.Prepare(ctx, req.Action, writes)
			}
		}
		return err
	})
	for i, st := range req.StNodes {
		if err := copyErrs[i]; err != nil {
			if errors.Is(err, store.ErrStaleVersion) {
				staleRefusals++
				reachable++
			}
			resp.FailedNodes = append(resp.FailedNodes, st)
			continue
		}
		reachable++
		resp.PreparedNodes = append(resp.PreparedNodes, st)
		preparedAddrs = append(preparedAddrs, transport.Addr(st))
	}
	in.mu.Lock()
	in.prepared[req.Action] = preparedAddrs
	in.preparedSeq[req.Action] = newSeq
	in.mu.Unlock()
	if reachable > 0 && staleRefusals == reachable {
		// Every reachable store refused the write as stale: this activated
		// copy has been left behind (commits went through other servers
		// while it sat idle). Destroy the instance so the next activation
		// reloads the latest committed state, and abort this action.
		_, _ = m.handlePassivate(ctx, from, PassivateReq{UID: req.UID, Force: true})
		return resp, rpc.Errorf(CodeStaleServer, "object %s at %s: activated copy is stale (base seq %d)", req.UID, m.node.Name(), newSeq-1)
	}
	if len(resp.PreparedNodes) == 0 {
		// No store holds the new state: the action cannot commit (§3.2(2):
		// abort if all the nodes ∈ St are down).
		return resp, rpc.Errorf(CodeUnavailable, "object %s: no St node accepted the new state", req.UID)
	}
	return resp, nil
}

func (m *Manager) handleCommit(ctx context.Context, from transport.Addr, req EndReq) (EndResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return EndResp{}, err
	}
	in.mu.Lock()
	prepared := in.prepared[req.Action]
	newSeq, hasPrepared := in.preparedSeq[req.Action]
	if in.dirty[req.Action] && hasPrepared {
		in.seq = newSeq
	}
	ckptState := append([]byte(nil), in.state...)
	ckptSeq := in.seq
	className := in.class.Name
	delete(in.snaps, req.Action)
	delete(in.dirty, req.Action)
	delete(in.prepared, req.Action)
	delete(in.preparedSeq, req.Action)
	delete(in.users, req.Action)
	in.mu.Unlock()

	// Phase-two store commits and coordinator-cohort checkpoints
	// (§2.3(ii): push the committed state to the cohorts so one of them
	// can take over without touching the object stores) are independent —
	// run them all in parallel, collecting failures in deterministic
	// order. Checkpoint failures break the cohort binding, which the
	// caller observes via FailedNodes.
	var resp EndResp
	storeErrs := make([]error, len(prepared))
	ckptErrs := make([]error, len(req.CheckpointTo))
	conc.Do(len(prepared)+len(req.CheckpointTo), func(i int) {
		if i < len(prepared) {
			remote := store.RemoteStore{Client: m.node.Client(), Node: prepared[i]}
			storeErrs[i] = remote.Commit(ctx, req.Action)
			return
		}
		j := i - len(prepared)
		ref := ServerRef{Client: m.node.Client(), Node: transport.Addr(req.CheckpointTo[j]), UID: in.id}
		ckptErrs[j] = ref.Install(ctx, className, ckptState, ckptSeq)
	})
	for i, st := range prepared {
		if storeErrs[i] != nil {
			resp.FailedNodes = append(resp.FailedNodes, string(st))
		}
	}
	for j, cohort := range req.CheckpointTo {
		if ckptErrs[j] != nil {
			resp.FailedNodes = append(resp.FailedNodes, cohort)
		}
	}
	in.locks.ReleaseAll(lockmgr.Owner(req.Action))
	return resp, nil
}

func (m *Manager) handleInstall(ctx context.Context, from transport.Addr, req InstallReq) (InstallResp, error) {
	id, err := uid.Parse(req.UID)
	if err != nil {
		return InstallResp{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
	}
	if in, ok := m.lookup(id); ok {
		in.mu.Lock()
		defer in.mu.Unlock()
		if len(in.users) > 0 {
			return InstallResp{}, rpc.Errorf(CodeBusy, "object %s has active users", req.UID)
		}
		if req.Seq <= in.seq {
			// Stale checkpoint: keep the newer state.
			return InstallResp{Installed: false}, nil
		}
		in.state = append([]byte(nil), req.State...)
		in.seq = req.Seq
		return InstallResp{Installed: true}, nil
	}
	class, err := m.registry.Lookup(req.Class)
	if err != nil {
		return InstallResp{}, rpc.Errorf(rpc.CodeNotFound, "%v", err)
	}
	in := &instance{
		class:       class,
		id:          id,
		locks:       lockmgr.New(lockmgr.NoNesting),
		state:       append([]byte(nil), req.State...),
		seq:         req.Seq,
		snaps:       make(map[string][]byte),
		dirty:       make(map[string]bool),
		prepared:    make(map[string][]transport.Addr),
		preparedSeq: make(map[string]uint64),
		users:       make(map[string]bool),
	}
	t := m.table()
	t.mu.Lock()
	if _, exists := t.m[id]; !exists {
		t.m[id] = in
	}
	t.mu.Unlock()
	if m.ghost != nil {
		m.ghost.Join(GroupPrefix+id.String(), m.groupApply(in))
	}
	return InstallResp{Installed: true}, nil
}

func (m *Manager) handleAbort(ctx context.Context, from transport.Addr, req EndReq) (EndResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return EndResp{}, err
	}
	in.mu.Lock()
	prepared := in.prepared[req.Action]
	if snap, ok := in.snaps[req.Action]; ok {
		in.state = snap
	}
	delete(in.snaps, req.Action)
	delete(in.dirty, req.Action)
	delete(in.prepared, req.Action)
	delete(in.preparedSeq, req.Action)
	delete(in.users, req.Action)
	in.mu.Unlock()

	var resp EndResp
	abortErrs := conc.DoErr(len(prepared), func(i int) error {
		remote := store.RemoteStore{Client: m.node.Client(), Node: prepared[i]}
		return remote.Abort(ctx, req.Action)
	})
	for i, st := range prepared {
		if abortErrs[i] != nil {
			resp.FailedNodes = append(resp.FailedNodes, string(st))
		}
	}
	in.locks.ReleaseAll(lockmgr.Owner(req.Action))
	return resp, nil
}

// handlePrepareCommit composes handlePrepare and handleCommit into one
// round. The caller (replica.Handle.CommitOnePhase) only takes this path
// when the write-back lands on at most one stable store, so there is no
// multi-store atomic-commitment problem for the missing outcome log to
// solve: the single store's apply is atomic, and a crash between the
// store prepare and its commit resolves to abort under presumed abort —
// exactly what the coordinator reports for a failed one-phase call.
func (m *Manager) handlePrepareCommit(ctx context.Context, from transport.Addr, req PrepareCommitReq) (PrepareCommitResp, error) {
	if len(req.StNodes) == 1 {
		return m.prepareCommitSingleStore(ctx, from, req)
	}
	presp, err := m.handlePrepare(ctx, from, PrepareReq{UID: req.UID, Action: req.Action, StNodes: req.StNodes})
	if err != nil {
		return PrepareCommitResp{Dirty: presp.Dirty, FailedNodes: presp.FailedNodes}, err
	}
	resp := PrepareCommitResp{Dirty: presp.Dirty, NewSeq: presp.NewSeq, FailedNodes: presp.FailedNodes}
	if !presp.Dirty {
		// Read-only: handlePrepare already released the action here.
		return resp, nil
	}
	eresp, err := m.handleCommit(ctx, from, EndReq{UID: req.UID, Action: req.Action, CheckpointTo: req.CheckpointTo})
	resp.FailedNodes = append(resp.FailedNodes, eresp.FailedNodes...)
	return resp, err
}

// prepareCommitSingleStore is the fully collapsed one-phase path: with
// exactly one St node the store's CommitOnePhase applies the write-back
// atomically, so the server→store leg shrinks to a single round trip
// too. A failed store call leaves nothing persisted — the caller's
// action aborts, and the subsequent Abort RPC restores the snapshot.
func (m *Manager) prepareCommitSingleStore(ctx context.Context, from transport.Addr, req PrepareCommitReq) (PrepareCommitResp, error) {
	in, err := m.mustLookup(req.UID)
	if err != nil {
		return PrepareCommitResp{}, err
	}
	in.mu.Lock()
	if !in.dirty[req.Action] {
		// Read-only: release immediately, exactly as handlePrepare does.
		delete(in.snaps, req.Action)
		delete(in.users, req.Action)
		in.mu.Unlock()
		in.locks.ReleaseAll(lockmgr.Owner(req.Action))
		return PrepareCommitResp{Dirty: false}, nil
	}
	newSeq := in.seq + 1
	state := append([]byte(nil), in.state...)
	in.mu.Unlock()

	remote := store.RemoteStore{Client: m.node.Client(), Node: transport.Addr(req.StNodes[0])}
	if err := remote.CommitOnePhase(ctx, req.Action, []store.Write{{UID: in.id, Data: state, Seq: newSeq}}); err != nil {
		if errors.Is(err, store.ErrStaleVersion) {
			// This activated copy has been left behind; destroy it so the
			// next activation reloads, and abort this action.
			_, _ = m.handlePassivate(ctx, from, PassivateReq{UID: req.UID, Force: true})
			return PrepareCommitResp{Dirty: true}, rpc.Errorf(CodeStaleServer,
				"object %s at %s: activated copy is stale (base seq %d)", req.UID, m.node.Name(), newSeq-1)
		}
		return PrepareCommitResp{Dirty: true, FailedNodes: []string{req.StNodes[0]}},
			rpc.Errorf(CodeUnavailable, "object %s: no St node accepted the new state", req.UID)
	}

	in.mu.Lock()
	in.seq = newSeq
	className := in.class.Name
	delete(in.snaps, req.Action)
	delete(in.dirty, req.Action)
	delete(in.prepared, req.Action)
	delete(in.preparedSeq, req.Action)
	delete(in.users, req.Action)
	in.mu.Unlock()

	resp := PrepareCommitResp{Dirty: true, NewSeq: newSeq}
	// The write locks are still held, so `state` (snapshotted above) IS the
	// committed state — reuse it for the cohort checkpoints.
	ckptErrs := conc.DoErr(len(req.CheckpointTo), func(j int) error {
		ref := ServerRef{Client: m.node.Client(), Node: transport.Addr(req.CheckpointTo[j]), UID: in.id}
		return ref.Install(ctx, className, state, newSeq)
	})
	for j, cohort := range req.CheckpointTo {
		if ckptErrs[j] != nil {
			resp.FailedNodes = append(resp.FailedNodes, cohort)
		}
	}
	in.locks.ReleaseAll(lockmgr.Owner(req.Action))
	return resp, nil
}

func (m *Manager) handlePassivate(ctx context.Context, from transport.Addr, req PassivateReq) (PassivateResp, error) {
	id, err := uid.Parse(req.UID)
	if err != nil {
		return PassivateResp{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
	}
	t := m.table()
	t.mu.Lock()
	defer t.mu.Unlock()
	in, ok := t.m[id]
	if !ok {
		return PassivateResp{Passivated: false}, nil
	}
	in.mu.Lock()
	busy := len(in.users) > 0
	in.mu.Unlock()
	if busy && !req.Force {
		return PassivateResp{}, rpc.Errorf(CodeBusy, "object %s has %s", req.UID, "active users")
	}
	delete(t.m, id)
	if m.ghost != nil {
		m.ghost.Leave(GroupPrefix + id.String())
	}
	return PassivateResp{Passivated: true}, nil
}

func (m *Manager) handleStatus(ctx context.Context, from transport.Addr, req StatusReq) (StatusResp, error) {
	id, err := uid.Parse(req.UID)
	if err != nil {
		return StatusResp{}, rpc.Errorf(rpc.CodeInternal, "bad uid: %v", err)
	}
	in, ok := m.lookup(id)
	if !ok {
		return StatusResp{Active: false}, nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return StatusResp{Active: true, Seq: in.seq, Users: len(in.users), Prepared: len(in.prepared)}, nil
}

// errNotActive exposes a sentinel check helper for clients.
var errNotActive = errors.New(CodeNotActive)

// IsNotActive reports whether err is an object-not-active application
// error.
func IsNotActive(err error) bool {
	if errors.Is(err, errNotActive) {
		return true
	}
	return rpc.CodeOf(err) == CodeNotActive
}

// Describe returns a human-readable summary of the node's activated
// objects, for the CLI.
func (m *Manager) Describe() string {
	t := m.table()
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.m) == 0 {
		return fmt.Sprintf("%s: no active objects", m.node.Name())
	}
	out := fmt.Sprintf("%s: %d active object(s)", m.node.Name(), len(t.m))
	for id, in := range t.m {
		in.mu.Lock()
		out += fmt.Sprintf("\n  %s class=%s seq=%d users=%d", id, in.class.Name, in.seq, len(in.users))
		in.mu.Unlock()
	}
	return out
}
