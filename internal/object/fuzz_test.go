package object

import (
	"reflect"
	"testing"

	"repro/internal/rpc"
)

// FuzzBinaryInvokeDecode hardens the hottest binary codecs in the system:
// decoding arbitrary bytes as an invoke request or reply must never panic,
// over-read or over-allocate, and whatever decodes cleanly must survive a
// decode -> re-encode -> decode round trip unchanged. Torn and mutated
// frames (also checked in under testdata/fuzz/FuzzBinaryInvokeDecode) must
// be rejected, never half-accepted.
func FuzzBinaryInvokeDecode(f *testing.F) {
	reqFrame, err := rpc.Encode(&InvokeReq{UID: "obj-1", Action: "act-1", Method: "incr", Args: []byte{1, 2, 3}, Solo: true})
	if err != nil {
		f.Fatal(err)
	}
	respFrame, err := rpc.Encode(&InvokeResp{Result: []byte("r"), Modified: true, Batched: true, BatchSize: 4, WaitNanos: -9})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(reqFrame)
	f.Add(respFrame)
	f.Add(reqFrame[:len(reqFrame)/2]) // torn mid-body
	f.Add([]byte{})
	f.Add([]byte{rpc.WireMagic})
	f.Add([]byte{rpc.WireMagic, 0x22, 0x00})                 // version 0
	f.Add([]byte{rpc.WireMagic, 0x22, 0x7f})                 // future version
	f.Add(append(reqFrame[:len(reqFrame):len(reqFrame)], 0)) // trailing byte

	f.Fuzz(func(t *testing.T, raw []byte) {
		var req InvokeReq
		if err := rpc.Decode(raw, &req); err == nil {
			re, err := rpc.Encode(&req)
			if err != nil {
				t.Fatalf("re-encode accepted request: %v", err)
			}
			var req2 InvokeReq
			if err := rpc.Decode(re, &req2); err != nil {
				t.Fatalf("re-encoded request undecodable: %v", err)
			}
			if !reflect.DeepEqual(&req, &req2) {
				t.Fatalf("request round trip changed content:\n 1: %+v\n 2: %+v", req, req2)
			}
		}
		var resp InvokeResp
		if err := rpc.Decode(raw, &resp); err == nil {
			re, err := rpc.Encode(&resp)
			if err != nil {
				t.Fatalf("re-encode accepted reply: %v", err)
			}
			var resp2 InvokeResp
			if err := rpc.Decode(re, &resp2); err != nil {
				t.Fatalf("re-encoded reply undecodable: %v", err)
			}
			if !reflect.DeepEqual(&resp, &resp2) {
				t.Fatalf("reply round trip changed content:\n 1: %+v\n 2: %+v", resp, resp2)
			}
		}
	})
}
