package object

import (
	"sort"

	"repro/internal/uid"
)

// PassivationReport summarises one passivation sweep.
type PassivationReport struct {
	// Passivated lists the objects whose servers were destroyed, sorted.
	Passivated []uid.UID
	// Busy counts instances skipped because they had active users.
	Busy int
}

// PassivateQuiescent implements the §2.3(3) behaviour: "an active copy of
// an object which is no longer in use will be said to be in a quiescent
// state; a quiescent object can passivate itself by destroying the
// server". It scans this node's activated instances and destroys every
// quiescent one. The caller (or a periodic daemon) decides the cadence;
// the naming and binding system needs no update because activation state
// is not recorded there — only Sv membership and use lists, which are
// already empty for a quiescent object.
func (m *Manager) PassivateQuiescent() PassivationReport {
	t := m.table()
	t.mu.Lock()
	defer t.mu.Unlock()
	var report PassivationReport
	for id, in := range t.m {
		in.mu.Lock()
		busy := len(in.users) > 0
		in.mu.Unlock()
		if busy {
			report.Busy++
			continue
		}
		delete(t.m, id)
		if m.ghost != nil {
			m.ghost.Leave(GroupPrefix + id.String())
		}
		report.Passivated = append(report.Passivated, id)
	}
	sort.Slice(report.Passivated, func(i, j int) bool {
		return report.Passivated[i].String() < report.Passivated[j].String()
	})
	return report
}

// ActiveCount reports how many objects are currently activated at this
// node.
func (m *Manager) ActiveCount() int {
	t := m.table()
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
