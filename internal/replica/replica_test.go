package replica

import (
	"context"
	"errors"
	"strconv"
	"testing"

	"repro/internal/action"
	"repro/internal/group"
	"repro/internal/object"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/uid"
)

func counterClass() *object.Class {
	return &object.Class{
		Name: "counter",
		Init: func() []byte { return []byte("0") },
		Methods: map[string]object.Method{
			"add": func(state, args []byte) ([]byte, []byte, error) {
				n, _ := strconv.Atoi(string(state))
				d, _ := strconv.Atoi(string(args))
				out := []byte(strconv.Itoa(n + d))
				return out, out, nil
			},
			"get": func(state, args []byte) ([]byte, []byte, error) {
				return state, state, nil
			},
		},
		ReadOnly: map[string]bool{"get": true},
	}
}

type world struct {
	cluster *sim.Cluster
	id      uid.UID
	mgr     *action.Manager
	svs     []transport.Addr
	sts     []transport.Addr
}

func newWorld(t *testing.T, nServers, nStores int) *world {
	t.Helper()
	w := &world{
		cluster: sim.NewCluster(transport.MemOptions{}),
		mgr:     action.NewManager("client", nil),
	}
	reg := object.NewRegistry()
	reg.Register(counterClass())
	for i := 0; i < nServers; i++ {
		name := transport.Addr("sv" + strconv.Itoa(i+1))
		n := w.cluster.Add(name)
		m := object.NewManager(n, reg)
		m.EnableGroupInvocation(group.NewHost(n.Server(), n.Client()))
		w.svs = append(w.svs, name)
	}
	gen := uid.NewGenerator("t", 1)
	w.id = gen.New()
	for i := 0; i < nStores; i++ {
		name := transport.Addr("st" + strconv.Itoa(i+1))
		n := w.cluster.Add(name)
		n.Store().Put(w.id, []byte("0"), 1)
		w.sts = append(w.sts, name)
	}
	w.cluster.Add("client")
	return w
}

func (w *world) handle(t *testing.T, p Policy) *Handle {
	t.Helper()
	h, err := New(Config{
		UID:     w.id,
		Class:   "counter",
		Policy:  p,
		Servers: w.svs,
		StNodes: w.sts,
		Client:  w.cluster.Node("client").Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func (w *world) storeValue(t *testing.T, st transport.Addr) (string, uint64) {
	t.Helper()
	v, err := w.cluster.Node(st).Store().Read(w.id)
	if err != nil {
		t.Fatalf("read %s: %v", st, err)
	}
	return string(v.Data), v.Seq
}

func TestPolicyString(t *testing.T) {
	if SingleCopyPassive.String() != "single-copy-passive" ||
		Active.String() != "active" ||
		CoordinatorCohort.String() != "coordinator-cohort" {
		t.Fatal("policy strings wrong")
	}
}

func TestNewRejectsEmptyServers(t *testing.T) {
	_, err := New(Config{})
	if !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v", err)
	}
}

func TestSingleCopyPassiveCommitCheckpointsAllStores(t *testing.T) {
	w := newWorld(t, 1, 3)
	ctx := context.Background()
	h := w.handle(t, SingleCopyPassive)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	res, err := h.Invoke(ctx, a, "add", []byte("7"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "7" {
		t.Fatalf("result = %q", res)
	}
	if _, err := a.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	for _, st := range w.sts {
		val, seq := w.storeValue(t, st)
		if val != "7" || seq != 2 {
			t.Fatalf("%s = %q seq=%d", st, val, seq)
		}
	}
}

func TestSingleCopyAbortLeavesStores(t *testing.T) {
	w := newWorld(t, 1, 2)
	ctx := context.Background()
	h := w.handle(t, SingleCopyPassive)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "add", []byte("7")); err != nil {
		t.Fatal(err)
	}
	if err := a.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	for _, st := range w.sts {
		val, seq := w.storeValue(t, st)
		if val != "0" || seq != 1 {
			t.Fatalf("%s = %q seq=%d after abort", st, val, seq)
		}
	}
}

func TestSingleCopyServerCrashAbortsAction(t *testing.T) {
	// §3.2(1)/(2): the action must abort if the (single) server crashes
	// during execution.
	w := newWorld(t, 1, 2)
	ctx := context.Background()
	h := w.handle(t, SingleCopyPassive)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	w.cluster.Node("sv1").Crash()
	if _, err := h.Invoke(ctx, a, "add", []byte("1")); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v, want ErrNoServers", err)
	}
	if err := a.Abort(ctx); err != nil {
		t.Fatal(err)
	}
	if got := h.Broken(); len(got) != 1 || got[0] != "sv1" {
		t.Fatalf("broken = %v", got)
	}
}

func TestActiveReplicationMasksServerCrash(t *testing.T) {
	// §3.2(3): with k activated replicas, up to k-1 server failures are
	// masked during execution.
	w := newWorld(t, 3, 2)
	ctx := context.Background()
	h := w.handle(t, Active)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Two of three replicas die mid-action.
	w.cluster.Node("sv1").Crash()
	w.cluster.Node("sv3").Crash()
	res, err := h.Invoke(ctx, a, "add", []byte("1"))
	if err != nil {
		t.Fatalf("masked invoke failed: %v", err)
	}
	if string(res) != "2" {
		t.Fatalf("result = %q", res)
	}
	if _, err := a.Commit(ctx); err != nil {
		t.Fatalf("commit with surviving replica: %v", err)
	}
	for _, st := range w.sts {
		val, seq := w.storeValue(t, st)
		if val != "2" || seq != 2 {
			t.Fatalf("%s = %q seq=%d", st, val, seq)
		}
	}
	if got := h.Broken(); len(got) != 2 {
		t.Fatalf("broken = %v", got)
	}
}

func TestActiveReplicationAllCrashAborts(t *testing.T) {
	w := newWorld(t, 2, 1)
	ctx := context.Background()
	h := w.handle(t, Active)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	w.cluster.Node("sv1").Crash()
	w.cluster.Node("sv2").Crash()
	if _, err := h.Invoke(ctx, a, "add", []byte("1")); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v", err)
	}
	_ = a.Abort(ctx)
}

func TestActiveReplicasConverge(t *testing.T) {
	w := newWorld(t, 2, 1)
	ctx := context.Background()
	h := w.handle(t, Active)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	for i := 0; i < 4; i++ {
		if _, err := h.Invoke(ctx, a, "add", []byte("1")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// Both replicas report the same committed value.
	for _, sv := range w.svs {
		a2 := w.mgr.BeginTop()
		h2 := w.handle(t, SingleCopyPassive)
		h2.cfg.Servers = []transport.Addr{sv}
		if err := h2.Activate(ctx); err != nil {
			t.Fatal(err)
		}
		got, err := h2.Invoke(ctx, a2, "get", nil)
		if err != nil || string(got) != "4" {
			t.Fatalf("%s value = %q %v", sv, got, err)
		}
		if _, err := a2.Commit(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCommitTimeStoreFailureRecordedForExclude(t *testing.T) {
	// §3.2(2): nodes whose copy failed must be removed from St; the handle
	// surfaces them.
	w := newWorld(t, 1, 3)
	ctx := context.Background()
	h := w.handle(t, SingleCopyPassive)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "add", []byte("5")); err != nil {
		t.Fatal(err)
	}
	w.cluster.Node("st2").Crash()
	if _, err := a.Commit(ctx); err != nil {
		t.Fatalf("commit should survive one store failure: %v", err)
	}
	if got := h.FailedStores(); len(got) != 1 || got[0] != "st2" {
		t.Fatalf("failed stores = %v", got)
	}
	for _, st := range []transport.Addr{"st1", "st3"} {
		val, _ := w.storeValue(t, st)
		if val != "5" {
			t.Fatalf("%s = %q", st, val)
		}
	}
}

func TestAllStoresDownAbortsAction(t *testing.T) {
	w := newWorld(t, 1, 2)
	ctx := context.Background()
	h := w.handle(t, SingleCopyPassive)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "add", []byte("5")); err != nil {
		t.Fatal(err)
	}
	w.cluster.Node("st1").Crash()
	w.cluster.Node("st2").Crash()
	_, err := a.Commit(ctx)
	if !errors.Is(err, action.ErrPrepareFailed) {
		t.Fatalf("err = %v, want prepare failure", err)
	}
	if a.Status() != action.StatusAborted {
		t.Fatalf("status = %v", a.Status())
	}
}

func TestCoordinatorCohortCheckpointAndFailover(t *testing.T) {
	// §2.3(ii): the coordinator checkpoints committed state to cohorts; on
	// coordinator failure the next action continues at a cohort — without
	// reading the object stores.
	w := newWorld(t, 3, 1)
	ctx := context.Background()
	h := w.handle(t, CoordinatorCohort)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "add", []byte("9")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	// Coordinator and the only store die.
	w.cluster.Node("sv1").Crash()
	w.cluster.Node("st1").Crash()
	// A new action binds to the surviving cohorts (sv2 is now
	// coordinator); the checkpointed state carries the day.
	h2 := w.handle(t, CoordinatorCohort)
	h2.markBroken("sv1")
	if err := h2.Activate(ctx); err != nil {
		t.Fatalf("cohort activation should not need the store: %v", err)
	}
	a2 := w.mgr.BeginTop()
	got, err := h2.Invoke(ctx, a2, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "9" {
		t.Fatalf("cohort state = %q, want 9 (checkpoint lost?)", got)
	}
	if _, err := a2.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCoordinatorCrashMidActionAborts(t *testing.T) {
	w := newWorld(t, 2, 1)
	ctx := context.Background()
	h := w.handle(t, CoordinatorCohort)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "add", []byte("3")); err != nil {
		t.Fatal(err)
	}
	w.cluster.Node("sv1").Crash()
	// The binding broke; this action cannot continue (uncommitted state
	// died with the coordinator).
	if _, err := h.Invoke(ctx, a, "add", []byte("1")); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v", err)
	}
	_ = a.Abort(ctx)
	// Store still holds the original value.
	val, _ := w.storeValue(t, "st1")
	if val != "0" {
		t.Fatalf("store = %q after aborted action", val)
	}
}

func TestReadOnlyActionNoStoreTraffic(t *testing.T) {
	w := newWorld(t, 1, 2)
	ctx := context.Background()
	h := w.handle(t, SingleCopyPassive)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "get", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	for _, st := range w.sts {
		_, seq := w.storeValue(t, st)
		if seq != 1 {
			t.Fatalf("%s seq = %d; read-only action must not bump versions", st, seq)
		}
	}
}

func TestActivateAllServersDown(t *testing.T) {
	w := newWorld(t, 2, 1)
	w.cluster.Node("sv1").Crash()
	w.cluster.Node("sv2").Crash()
	h := w.handle(t, Active)
	if err := h.Activate(context.Background()); !errors.Is(err, ErrNoServers) {
		t.Fatalf("err = %v", err)
	}
}

func TestMutualConsistencyOfStoresAfterMixedFailures(t *testing.T) {
	// Invariant behind the St set: every store that remains "in" holds the
	// same committed seq. Run several actions with store crashes between
	// them and verify all surviving stores agree.
	w := newWorld(t, 1, 3)
	ctx := context.Background()
	stView := append([]transport.Addr(nil), w.sts...)
	total := 0
	for round := 0; round < 3; round++ {
		h, err := New(Config{
			UID: w.id, Class: "counter", Policy: SingleCopyPassive,
			Servers: w.svs, StNodes: stView,
			Client: w.cluster.Node("client").Client(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Activate(ctx); err != nil {
			t.Fatal(err)
		}
		a := w.mgr.BeginTop()
		if _, err := h.Invoke(ctx, a, "add", []byte("1")); err != nil {
			t.Fatal(err)
		}
		if round == 1 {
			w.cluster.Node("st3").Crash()
		}
		if _, err := a.Commit(ctx); err != nil {
			t.Fatal(err)
		}
		total++
		// Remove failed stores from the view, as the Exclude protocol
		// would.
		for _, bad := range h.FailedStores() {
			var next []transport.Addr
			for _, st := range stView {
				if st != bad {
					next = append(next, st)
				}
			}
			stView = next
		}
	}
	if len(stView) != 2 {
		t.Fatalf("view = %v, want st3 excluded", stView)
	}
	var seqs []uint64
	for _, st := range stView {
		val, seq := w.storeValue(t, st)
		if val != strconv.Itoa(total) {
			t.Fatalf("%s = %q, want %d", st, val, total)
		}
		seqs = append(seqs, seq)
	}
	if seqs[0] != seqs[1] {
		t.Fatalf("surviving stores disagree on seq: %v", seqs)
	}
}

func TestOnePhaseReplyLostResolvedByReprepare(t *testing.T) {
	// Figure-1 ambiguity, resolved: the combined prepare+commit round
	// executes at the server (the store durably commits) but the reply is
	// lost. The coordinator must not report an abort — the 2PC fallback
	// re-prepares, the server answers clean (it released the action when
	// the one-phase round committed), and the store's committed TxID
	// affirms the outcome, so the commit stands.
	w := newWorld(t, 1, 1)
	ctx := context.Background()
	w.cluster.Faults().DropReplies(1,
		transport.ToMethod("sv1", object.ServiceName, object.MethodPrepareCommit))
	h := w.handle(t, SingleCopyPassive)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "add", []byte("7")); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(ctx); err != nil {
		t.Fatalf("commit should resolve the lost reply affirmatively, got %v", err)
	}
	val, seq := w.storeValue(t, "st1")
	if val != "7" || seq != 2 {
		t.Fatalf("st1 = %q seq=%d, want 7 seq=2", val, seq)
	}
}

func TestOnePhaseReplyLostThenCrashReportsOutcomeUnknown(t *testing.T) {
	// Figure-1 ambiguity, unresolvable: the one-phase round commits at the
	// store, the reply is lost, and the server crashes before the fallback
	// can re-prepare. No definite answer exists anywhere the coordinator
	// can reach, so the commit must fail with ErrOutcomeUnknown — a plain
	// "aborted" here would deny a durably committed write (the phantom
	// update a mux-transport chaos seed caught).
	w := newWorld(t, 1, 1)
	ctx := context.Background()
	rule := transport.ToMethod("sv1", object.ServiceName, object.MethodPrepareCommit)
	w.cluster.Faults().OnReply(1, rule, func(transport.Request) {
		w.cluster.Node("sv1").Crash()
	})
	w.cluster.Faults().DropReplies(1, rule)
	h := w.handle(t, SingleCopyPassive)
	if err := h.Activate(ctx); err != nil {
		t.Fatal(err)
	}
	a := w.mgr.BeginTop()
	if _, err := h.Invoke(ctx, a, "add", []byte("7")); err != nil {
		t.Fatal(err)
	}
	_, err := a.Commit(ctx)
	if err == nil {
		t.Fatal("commit reported success with the only witness crashed")
	}
	if !errors.Is(err, action.ErrOutcomeUnknown) {
		t.Fatalf("err = %v, want ErrOutcomeUnknown", err)
	}
	// The write really is durable at the store — the exact state a
	// definite abort report would contradict.
	val, seq := w.storeValue(t, "st1")
	if val != "7" || seq != 2 {
		t.Fatalf("st1 = %q seq=%d, want committed 7 seq=2", val, seq)
	}
}
