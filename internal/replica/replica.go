// Package replica implements the paper's three object replication policies
// (§2.3) over the object-server substrate:
//
//   - SingleCopyPassive — one activated copy; its state is checkpointed to
//     the object stores as part of commit processing [Alsberg & Day]. A
//     server crash aborts the affected action; restarting the action
//     activates a new copy (§2.3(iii)).
//   - Active — k activated copies all perform processing; invocations are
//     delivered through reliable totally-ordered multicast so replicas stay
//     identical, masking up to k−1 server crashes during an action (§2.3(i),
//     §3.2(3)).
//   - CoordinatorCohort — k activated copies, only the coordinator
//     processes; it checkpoints committed state to the cohorts, so after a
//     coordinator crash the next action continues at a cohort without
//     touching the object stores (§2.3(ii)). Per the binding rules of §3.1,
//     a crash mid-action still aborts that action: a broken binding stays
//     broken until the action terminates.
//
// A Handle is the per-action client-side facade over the bound servers
// (the set Sv_A' of §3.2). It is an action.Participant: at commit time the
// bound servers copy the object's new state to every functioning node in
// St_A, and the Handle records which St nodes failed so the naming and
// binding layer can Exclude them (§4.2).
package replica

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/action"
	"repro/internal/conc"
	"repro/internal/group"
	"repro/internal/object"
	"repro/internal/rpc"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/uid"
)

// Policy selects a replication discipline.
type Policy int

// Replication policies (§2.3).
const (
	SingleCopyPassive Policy = iota + 1
	Active
	CoordinatorCohort
)

// ParsePolicy maps a flag/config spelling to a Policy. Both the short
// spellings used by command-line flags ("single", "active", "cohort") and
// the full String() forms are accepted.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "single", "single-copy-passive", "passive":
		return SingleCopyPassive, nil
	case "active":
		return Active, nil
	case "cohort", "coordinator-cohort":
		return CoordinatorCohort, nil
	default:
		return 0, fmt.Errorf("replica: unknown policy %q (want single | active | cohort)", s)
	}
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case SingleCopyPassive:
		return "single-copy-passive"
	case Active:
		return "active"
	case CoordinatorCohort:
		return "coordinator-cohort"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ErrNoServers reports that no bound server is functioning, so the action
// must abort (§3.2).
var ErrNoServers = errors.New("replica: no functioning servers")

// Config describes one replicated-object binding for one client action.
type Config struct {
	// UID and Class identify the persistent object.
	UID   uid.UID
	Class string
	// Policy selects the replication discipline.
	Policy Policy
	// Servers is Sv_A': the chosen server nodes, in preference order (the
	// first functioning one is the coordinator where relevant).
	Servers []transport.Addr
	// Degree is the desired number of activated replicas (|Sv_A'| in
	// §3.2); 0 means all of Servers. Activate probes Servers in order
	// until Degree replicas are running — a client with a stale Sv view
	// discovers crashed nodes "the hard way" here (§4.1.2).
	Degree int
	// StNodes is the St_A view used for activation and commit-time copy.
	StNodes []transport.Addr
	// Client is the invoking node's RPC client.
	Client rpc.Client
	// LeaseHolder, when non-empty, names the client node to request read
	// leases for. Leases are only requested from the view-primary
	// coordinator (Servers[0]) under single-copy passive replication: a
	// fallback coordinator is already a degraded path, and keeping the
	// primary the sole granter is what lets its commits invalidate every
	// known lease without a granter handshake.
	LeaseHolder transport.Addr
	// LeaseTTL is the deployment's read-lease duration; zero when leases
	// are disabled. It is set whether or not THIS client holds leases:
	// phase two needs it to wait out the lease clock before acknowledging
	// a commit whose fence at the granting primary could not be confirmed
	// (see Commit).
	LeaseTTL time.Duration
}

// Handle is the client-side representation of a bound, activated,
// replicated object for the duration of one application action.
type Handle struct {
	cfg Config

	mu sync.Mutex
	// activated lists servers where Activate succeeded, in preference
	// order; only these participate in invocation and commit.
	activated []transport.Addr
	// broken marks servers whose binding failed (crash detected); per
	// §3.1 a broken binding is never repaired within the action.
	broken map[transport.Addr]bool
	// failedStores accumulates St nodes whose commit-time copy failed and
	// must be excluded from St_A.
	failedStores map[transport.Addr]bool
	// preparedStores accumulates St nodes that stably recorded the
	// action's new state during phase one — the set whose membership in
	// the post-exclusion view the binding layer validates before the
	// commit point.
	preparedStores map[transport.Addr]bool
	// prepared lists servers that acknowledged a dirty prepare (phase-two
	// commit targets). Servers that reported the action read-only release
	// it during prepare and are never addressed again.
	prepared []transport.Addr
	// released marks the handle done with commit processing before phase
	// two — a read-only vote, a completed one-phase commit, or a solo
	// invocation folded into another action's commit. Commit and Abort
	// become no-ops then.
	released bool
	// onePhaseDoubt records that a one-phase commit attempt ended
	// ambiguously (reply lost after the request may have been delivered):
	// the combined round may have committed at the coordinator. The
	// two-phase fallback resolves the doubt only when the coordinator
	// answers the re-prepare; if it cannot be reached, Prepare reports
	// action.ErrOutcomeUnknown instead of a definite-looking failure — a
	// crashed coordinator's surviving handler goroutine may have completed
	// the store commit after the client gave the server up for dead.
	onePhaseDoubt bool
	// batchSize records how many operations the commit round that carried
	// this handle's write folded (0 when unknown or unbatched).
	batchSize int
	// queueWaitNanos records the longest server-side lock/combiner wait
	// observed across this handle's invocations.
	queueWaitNanos int64
	// noAutoEnlist suppresses self-enlistment in Invoke; set by callers
	// that compose the handle into a larger participant (the naming and
	// binding layer wraps it to add Exclude/Remove processing).
	noAutoEnlist bool
	// lastGrant holds the most recent read lease granted across this
	// handle's invocations (nil when none).
	lastGrant *object.LeaseGrant
}

// New creates a handle. Call Activate before Invoke.
func New(cfg Config) (*Handle, error) {
	if len(cfg.Servers) == 0 {
		return nil, fmt.Errorf("replica %v: empty server set: %w", cfg.UID, ErrNoServers)
	}
	if cfg.Policy == SingleCopyPassive {
		// §3.2(2): single-copy passive means exactly one activated copy;
		// the remaining candidates are fallbacks probed only if earlier
		// ones cannot activate.
		cfg.Degree = 1
	}
	return &Handle{
		cfg:            cfg,
		broken:         make(map[transport.Addr]bool),
		failedStores:   make(map[transport.Addr]bool),
		preparedStores: make(map[transport.Addr]bool),
	}, nil
}

// Policy returns the handle's replication policy.
func (h *Handle) Policy() Policy { return h.cfg.Policy }

// Activate probes the candidate servers in preference order until Degree
// of them (all, when Degree is 0) run a server for the object, loading
// state from St as needed. Candidates that cannot activate are marked
// broken — the "hard way" failure discovery of §4.1.2. The call fails only
// when no server at all could be activated.
func (h *Handle) Activate(ctx context.Context) error {
	want := h.cfg.Degree
	if want <= 0 || want > len(h.cfg.Servers) {
		want = len(h.cfg.Servers)
	}
	got := 0
	var lastErr error
	for _, sv := range h.cfg.Servers {
		if got >= want {
			break
		}
		h.mu.Lock()
		bad := h.broken[sv]
		h.mu.Unlock()
		if bad {
			continue
		}
		if _, err := h.ref(sv).Activate(ctx, h.cfg.Class, h.cfg.StNodes); err != nil {
			h.markBroken(sv)
			lastErr = err
			continue
		}
		h.mu.Lock()
		h.activated = append(h.activated, sv)
		h.mu.Unlock()
		got++
	}
	if got == 0 {
		// Keep the last per-server cause on the chain: callers distinguish
		// "every server breaker-open" (fast-fail, retry later) from other
		// total-failure modes.
		if lastErr != nil {
			return fmt.Errorf("replica %v: activation failed at all of %v: %w: %w", h.cfg.UID, h.cfg.Servers, ErrNoServers, lastErr)
		}
		return fmt.Errorf("replica %v: activation failed at all of %v: %w", h.cfg.UID, h.cfg.Servers, ErrNoServers)
	}
	return nil
}

func (h *Handle) ref(sv transport.Addr) object.ServerRef {
	return object.ServerRef{Client: h.cfg.Client, Node: sv, UID: h.cfg.UID}
}

func (h *Handle) markBroken(sv transport.Addr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.broken[sv] = true
}

// live returns the activated servers whose bindings are intact, in
// preference order.
func (h *Handle) live() []transport.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []transport.Addr
	for _, sv := range h.activated {
		if !h.broken[sv] {
			out = append(out, sv)
		}
	}
	return out
}

// Bound returns the currently live server bindings (a copy).
func (h *Handle) Bound() []transport.Addr { return h.live() }

// Coordinator returns the first live server (the processing replica for
// single-copy and coordinator-cohort policies).
func (h *Handle) Coordinator() (transport.Addr, error) {
	live := h.live()
	if len(live) == 0 {
		return "", fmt.Errorf("replica %v: %w", h.cfg.UID, ErrNoServers)
	}
	return live[0], nil
}

// Broken returns the servers whose bindings broke during the action,
// sorted — input for the §4.1.3 Remove repairs.
func (h *Handle) Broken() []transport.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]transport.Addr, 0, len(h.broken))
	for sv := range h.broken {
		out = append(out, sv)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FailedStores returns the St nodes whose commit-time copy failed, sorted
// — input for the §4.2 Exclude.
func (h *Handle) FailedStores() []transport.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]transport.Addr, 0, len(h.failedStores))
	for st := range h.failedStores {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PreparedStores returns the St nodes that hold the action's prepared new
// state, sorted — the set the binding layer checks the post-exclusion St
// view against before committing.
func (h *Handle) PreparedStores() []transport.Addr {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]transport.Addr, 0, len(h.preparedStores))
	for st := range h.preparedStores {
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Invoke performs one operation under act. The handle enlists itself as
// the action's participant on first use, so commit/abort processing runs
// automatically with the action's two-phase commit.
func (h *Handle) Invoke(ctx context.Context, act *action.Action, method string, args []byte) ([]byte, error) {
	if !h.enlistOnce(act) {
		return nil, fmt.Errorf("replica %v: enlist in %s: action not running", h.cfg.UID, act.ID())
	}
	owner := act.Top().ID()
	switch h.cfg.Policy {
	case Active:
		return h.invokeActive(ctx, owner, method, args)
	default:
		return h.invokeCoordinator(ctx, owner, method, args)
	}
}

// InvokeSolo performs one operation under act, declaring it the action's
// entire write set at this object. For a commutative method contending on
// the write lock, the server may fold the operation into the current lock
// holder's commit round (flat combining); the second return reports that:
// the operation's durability is then tied to the carrying action's
// already-decided commit, the handle is released, and the caller's own
// commit processing completes locally with no further RPCs.
//
// Active replication never batches (folding at one replica would diverge
// the others), so the call degrades to a plain Invoke there.
func (h *Handle) InvokeSolo(ctx context.Context, act *action.Action, method string, args []byte) ([]byte, bool, error) {
	if h.cfg.Policy == Active {
		res, err := h.Invoke(ctx, act, method, args)
		return res, false, err
	}
	if !h.enlistOnce(act) {
		return nil, false, fmt.Errorf("replica %v: enlist in %s: action not running", h.cfg.UID, act.ID())
	}
	owner := act.Top().ID()
	coord, err := h.Coordinator()
	if err != nil {
		return nil, false, err
	}
	resp, err := h.ref(coord).InvokeSolo(ctx, owner, method, args)
	if err != nil {
		if isCrashError(err) || object.IsNotActive(err) {
			h.markBroken(coord)
			return nil, false, fmt.Errorf("replica %v: coordinator %s failed: %w", h.cfg.UID, coord, ErrNoServers)
		}
		return nil, false, err
	}
	h.mu.Lock()
	if resp.WaitNanos > h.queueWaitNanos {
		h.queueWaitNanos = resp.WaitNanos
	}
	if resp.Batched {
		// The op rode another action's commit, which is already durable;
		// this handle has nothing left to prepare or commit.
		h.released = true
		h.batchSize = resp.BatchSize
	}
	h.mu.Unlock()
	return resp.Result, resp.Batched, nil
}

// BatchSize returns the number of operations folded into the commit round
// that carried this handle's write (0 when none was observed).
func (h *Handle) BatchSize() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.batchSize
}

// QueueWait returns the longest server-side lock or combiner wait
// observed across this handle's invocations.
func (h *Handle) QueueWait() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return time.Duration(h.queueWaitNanos)
}

func (h *Handle) noteQueueWait(nanos int64) {
	h.mu.Lock()
	if nanos > h.queueWaitNanos {
		h.queueWaitNanos = nanos
	}
	h.mu.Unlock()
}

// CheckSeq acquires the object's read lock under act at the coordinator
// and returns the committed version it holds — the server-backed
// revalidation of a leased read. The lock, held until the action ends,
// is what makes the answer durable for the caller's commit: leases are a
// single-copy-passive feature, so the coordinator is the one server
// whose version can advance.
func (h *Handle) CheckSeq(ctx context.Context, act *action.Action) (uint64, error) {
	if !h.enlistOnce(act) {
		return 0, fmt.Errorf("replica %v: enlist in %s: action not running", h.cfg.UID, act.ID())
	}
	owner := act.Top().ID()
	coord, err := h.Coordinator()
	if err != nil {
		return 0, err
	}
	seq, err := h.ref(coord).LeaseCheck(ctx, owner)
	if err != nil {
		if isCrashError(err) || object.IsNotActive(err) {
			h.markBroken(coord)
			return 0, fmt.Errorf("replica %v: coordinator %s failed: %w", h.cfg.UID, coord, ErrNoServers)
		}
		return 0, err
	}
	return seq, nil
}

// LeaseGrant returns the most recent read lease granted across this
// handle's invocations, if any, and clears it — each grant is harvested
// into the caller's cache exactly once.
func (h *Handle) LeaseGrant() (object.LeaseGrant, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lastGrant == nil {
		return object.LeaseGrant{}, false
	}
	g := *h.lastGrant
	h.lastGrant = nil
	return g, true
}

// DisableAutoEnlist stops Invoke from enlisting the handle into the
// action; the caller then drives Prepare/Commit/Abort itself (directly or
// via a composing participant).
func (h *Handle) DisableAutoEnlist() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.noAutoEnlist = true
}

func (h *Handle) enlistOnce(act *action.Action) bool {
	h.mu.Lock()
	skip := h.noAutoEnlist
	h.mu.Unlock()
	if skip {
		return true
	}
	top := act.Top()
	if !top.StashOnce("replica:"+h.cfg.UID.String(), h) {
		return true
	}
	return top.Enlist(h) == nil
}

// invokeCoordinator drives single-copy-passive and coordinator-cohort
// invocation: only the coordinator processes.
func (h *Handle) invokeCoordinator(ctx context.Context, owner, method string, args []byte) ([]byte, error) {
	coord, err := h.Coordinator()
	if err != nil {
		return nil, err
	}
	// Request a read lease only from the view-primary coordinator under
	// single-copy passive replication (see Config.LeaseHolder).
	leaseHolder := ""
	if h.cfg.LeaseHolder != "" && h.cfg.Policy == SingleCopyPassive &&
		len(h.cfg.Servers) > 0 && coord == h.cfg.Servers[0] {
		leaseHolder = string(h.cfg.LeaseHolder)
	}
	resp, err := h.ref(coord).InvokeFull(ctx, owner, method, args, leaseHolder)
	if err == nil {
		if resp.Lease != nil {
			h.mu.Lock()
			h.lastGrant = resp.Lease
			h.mu.Unlock()
		}
		if resp.WaitNanos > 0 {
			h.noteQueueWait(resp.WaitNanos)
		}
		return resp.Result, nil
	}
	if isCrashError(err) || object.IsNotActive(err) {
		// The binding broke (§3.1) — it stays broken for this action.
		// For coordinator-cohort the paper's cohorts elect a new
		// coordinator for FUTURE actions; the current action must abort
		// because the coordinator's uncommitted state died with it.
		h.markBroken(coord)
		return nil, fmt.Errorf("replica %v: coordinator %s failed: %w", h.cfg.UID, coord, ErrNoServers)
	}
	return nil, err
}

// invokeActive drives active replication: the invocation is delivered to
// all live replicas in total order; any replica's reply serves as the
// result; unreachable replicas are masked (binding broken) so long as one
// replica survives.
func (h *Handle) invokeActive(ctx context.Context, owner, method string, args []byte) ([]byte, error) {
	live := h.live()
	if len(live) == 0 {
		return nil, fmt.Errorf("replica %v: %w", h.cfg.UID, ErrNoServers)
	}
	payload, err := rpc.Encode(&object.InvokeReq{
		UID:    h.cfg.UID.String(),
		Action: owner,
		Method: method,
		Args:   args,
	})
	if err != nil {
		return nil, err
	}
	g := group.Group{ID: object.GroupPrefix + h.cfg.UID.String(), Members: live}
	res, err := group.Multicast(ctx, h.cfg.Client, g, object.KindInvoke, payload)
	if err != nil {
		// No sequencer reachable: every replica is gone.
		for _, sv := range live {
			h.markBroken(sv)
		}
		return nil, fmt.Errorf("replica %v: %v: %w", h.cfg.UID, err, ErrNoServers)
	}
	for _, sv := range res.Failed {
		h.markBroken(sv)
	}
	var (
		result  []byte
		gotOK   bool
		lastErr string
	)
	for _, r := range res.Replies {
		if r.Err != "" {
			lastErr = r.Err
			h.markBroken(r.Member) // replica diverged or refused: drop it
			continue
		}
		var ir object.InvokeResp
		if err := rpc.Decode(r.Payload, &ir); err != nil {
			return nil, err
		}
		result, gotOK = ir.Result, true
	}
	if !gotOK {
		if lastErr != "" {
			return nil, fmt.Errorf("replica %v: all replicas failed the method: %s", h.cfg.UID, lastErr)
		}
		return nil, fmt.Errorf("replica %v: %w", h.cfg.UID, ErrNoServers)
	}
	return result, nil
}

// --- action.Participant ---

var _ action.Participant = (*Handle)(nil)

// Name implements action.Participant.
func (h *Handle) Name() string {
	return fmt.Sprintf("replica(%s,%s)", h.cfg.UID, h.cfg.Policy)
}

// Prepare implements action.Participant: every live server copies the new
// object state to the functioning St nodes (§3.2(2)/(4)), all servers in
// parallel — their store prepares merge idempotently, so concurrent
// write-back is safe and the latency is that of the slowest server.
// Server failures are masked per policy; St failures are recorded for
// exclusion. Prepare fails (aborting the action) when no server can
// complete the copy.
//
// A server the action never modified releases it during the prepare call
// (§4.1.2); when every server reports that, the handle votes read-only —
// its commit processing is over with zero phase-two round trips.
func (h *Handle) Prepare(ctx context.Context, tx string) (action.Vote, error) {
	h.mu.Lock()
	released := h.released
	h.mu.Unlock()
	if released {
		// A batched solo invocation already committed with its carrying
		// action; the servers have forgotten this action.
		return action.VoteReadOnly, nil
	}
	targets, err := h.prepareTargets()
	if err != nil {
		return 0, err
	}
	type result struct {
		resp object.PrepareResp
		err  error
	}
	results := make([]result, len(targets))
	conc.Do(len(targets), func(i int) {
		results[i].resp, results[i].err = h.ref(targets[i]).Prepare(ctx, tx, h.cfg.StNodes)
	})
	okCount, dirtyCount := 0, 0
	var firstErr error
	for i, sv := range targets {
		if err := results[i].err; err != nil {
			if isCrashError(err) || object.IsNotActive(err) {
				h.markBroken(sv)
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		okCount++
		if !results[i].resp.Dirty {
			// Server released the read-only action during prepare; it is not
			// a phase-two target.
			continue
		}
		dirtyCount++
		h.mu.Lock()
		h.prepared = append(h.prepared, sv)
		if results[i].resp.BatchSize > h.batchSize {
			h.batchSize = results[i].resp.BatchSize
		}
		for _, st := range results[i].resp.FailedNodes {
			h.failedStores[transport.Addr(st)] = true
		}
		for _, st := range results[i].resp.PreparedNodes {
			h.preparedStores[transport.Addr(st)] = true
		}
		h.mu.Unlock()
	}
	if okCount == 0 {
		h.mu.Lock()
		doubt := h.onePhaseDoubt
		h.mu.Unlock()
		if doubt {
			// An ambiguous one-phase attempt preceded this fallback and no
			// server answered the re-prepare: the combined round may have
			// committed at the store before the coordinator died. Reporting
			// a plain failure here would let the caller claim a definite
			// abort over a committed write (a phantom update — a mux-
			// transport chaos seed found exactly this); surface the doubt.
			return 0, fmt.Errorf("replica %v: one-phase doubt unresolved, prepare failed everywhere: %v: %w: %w",
				h.cfg.UID, firstErr, ErrNoServers, action.ErrOutcomeUnknown)
		}
		return 0, fmt.Errorf("replica %v: prepare failed everywhere: %v: %w", h.cfg.UID, firstErr, ErrNoServers)
	}
	if dirtyCount == 0 {
		h.mu.Lock()
		doubt := h.onePhaseDoubt
		h.mu.Unlock()
		if doubt && !h.onePhaseCommitVisible(ctx, tx) {
			// Every server answered "clean", but under one-phase doubt that
			// answer is trustworthy only from a server that actually
			// released this action after committing it — a server that
			// crashed and recovered in between reports clean about actions
			// it never saw. The store's committed TxID is the ground truth;
			// when it does not affirm this tx, the outcome stays unknown
			// (claiming commit here could report an update that never
			// happened).
			return 0, fmt.Errorf("replica %v: one-phase doubt unresolved, servers report clean: %w",
				h.cfg.UID, action.ErrOutcomeUnknown)
		}
		h.mu.Lock()
		h.released = true
		h.mu.Unlock()
		return action.VoteReadOnly, nil
	}
	return action.VoteCommit, nil
}

// onePhaseCommitVisible reports whether the single St node's committed
// version carries tx — the affirmative evidence that an ambiguous
// one-phase round did commit. A read failure, a different TxID (which may
// merely mean a later action already committed on top), or a multi-store
// view (the one-phase shape no longer holds) all answer false: the caller
// then reports the outcome unknown rather than guessing.
func (h *Handle) onePhaseCommitVisible(ctx context.Context, tx string) bool {
	if len(h.cfg.StNodes) != 1 {
		return false
	}
	v, err := store.RemoteStore{Client: h.cfg.Client, Node: h.cfg.StNodes[0]}.Read(ctx, h.cfg.UID)
	return err == nil && v.TxID == tx
}

// CommitOnePhase implements action.OnePhaser: when commit processing
// involves exactly one server and at most one St store, the prepare and
// commit rounds collapse into a single combined RPC, and the store-side
// legs collapse too. Any other shape is ineligible — a multi-store
// write-back needs the coordinator's outcome log to stay atomic across
// stores, and multiple active replicas must all prepare before any may
// commit — and falls back to ordinary 2PC untouched.
func (h *Handle) CommitOnePhase(ctx context.Context, tx string) (action.Vote, error) {
	h.mu.Lock()
	if h.released {
		h.mu.Unlock()
		return action.VoteReadOnly, nil
	}
	h.mu.Unlock()
	targets, err := h.prepareTargets()
	if err != nil {
		return 0, err
	}
	if len(targets) != 1 || len(h.cfg.StNodes) > 1 {
		return 0, action.ErrOnePhaseIneligible
	}
	coord := targets[0]
	var checkpointTo []transport.Addr
	if h.cfg.Policy == CoordinatorCohort {
		for _, cohort := range h.live() {
			if cohort != coord {
				checkpointTo = append(checkpointTo, cohort)
			}
		}
	}
	resp, err := h.ref(coord).PrepareCommit(ctx, tx, h.cfg.StNodes, checkpointTo)
	if err != nil {
		if errors.Is(err, transport.ErrReplyLost) ||
			errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) ||
			rpc.CodeOf(err) == object.CodeCommitUncertain {
			// Ambiguous: the combined round may have committed at the server
			// with only the reply lost — or the server itself reported that
			// its store write ended in doubt (CodeCommitUncertain).
			// Reporting an abort here would lie.
			// Declare the one-phase attempt ineligible so the coordinator
			// falls back to ordinary 2PC, which resolves the doubt: a
			// re-prepare finds either the still-pending action (normal
			// commit proceeds) or an already-released one (the server
			// reports it clean — a read-only vote — and the committed state
			// stands). If the fallback cannot reach the server either, the
			// doubt is unresolvable and Prepare reports
			// action.ErrOutcomeUnknown (see onePhaseDoubt) — it cannot
			// cause cross-store inconsistency (|St| = 1 here), and the
			// next activation observes the true state.
			h.mu.Lock()
			h.onePhaseDoubt = true
			h.mu.Unlock()
			return 0, fmt.Errorf("replica %v: one-phase outcome unknown (%v): %w",
				h.cfg.UID, err, action.ErrOnePhaseIneligible)
		}
		if isCrashError(err) || object.IsNotActive(err) {
			h.markBroken(coord)
		}
		return 0, err
	}
	for _, f := range resp.FailedNodes {
		h.recordFailure(transport.Addr(f))
	}
	h.mu.Lock()
	h.released = true
	if resp.BatchSize > h.batchSize {
		h.batchSize = resp.BatchSize
	}
	h.mu.Unlock()
	if !resp.Dirty {
		return action.VoteReadOnly, nil
	}
	return action.VoteCommit, nil
}

// prepareTargets returns the servers that take part in commit processing:
// every live replica under active replication (they hold identical state
// and their store prepares merge idempotently), only the coordinator
// otherwise — cohorts and passive copies never processed anything.
func (h *Handle) prepareTargets() ([]transport.Addr, error) {
	if h.cfg.Policy == Active {
		live := h.live()
		if len(live) == 0 {
			return nil, fmt.Errorf("replica %v: %w", h.cfg.UID, ErrNoServers)
		}
		return live, nil
	}
	coord, err := h.Coordinator()
	if err != nil {
		return nil, err
	}
	return []transport.Addr{coord}, nil
}

// Commit implements action.Participant: phase two at every prepared
// server. For coordinator-cohort the coordinator also checkpoints its
// committed state to the cohorts. A handle released at phase one (a
// read-only vote or a one-phase commit) has nothing left to do.
//
// A prepared server that is gone at phase two — crashed, restarted (its
// volatile instance lost), or unreachable — cannot relay the commit to
// the stores, yet the new state already sits there as stable prepared
// intentions. Commit falls back to committing those intentions directly:
// store Commit is idempotent and a no-op for unknown transactions, so the
// fallback composes safely with servers that did relay, and the committed
// update is never stranded behind a server failure. Stores the fallback
// cannot reach resolve the in-doubt intention at their own restart via
// the outcome log.
func (h *Handle) Commit(ctx context.Context, tx string) error {
	h.mu.Lock()
	released := h.released
	prepared := append([]transport.Addr(nil), h.prepared...)
	h.mu.Unlock()
	if released {
		return nil
	}
	if len(prepared) == 0 {
		// Defensive: a commit with no dirty prepare (legacy callers driving
		// the handle directly) still tells the participating servers to end
		// the action (release locks, drop use counts).
		if targets, err := h.prepareTargets(); err == nil {
			prepared = targets
		}
	}
	type result struct {
		resp object.EndResp
		err  error
	}
	results := make([]result, len(prepared))
	conc.Do(len(prepared), func(i int) {
		var checkpointTo []transport.Addr
		if h.cfg.Policy == CoordinatorCohort && i == 0 {
			for _, cohort := range h.live() {
				if cohort != prepared[i] {
					checkpointTo = append(checkpointTo, cohort)
				}
			}
		}
		results[i].resp, results[i].err = h.ref(prepared[i]).Commit(ctx, tx, checkpointTo...)
	})
	var firstErr error
	fenceDoubt := false
	for i := range prepared {
		if err := results[i].err; err != nil {
			// A successful server Commit implies its lease fence ran
			// before the reply; a failed one at the view primary — the
			// sole lease granter — leaves the fence unconfirmed.
			if h.cfg.LeaseTTL > 0 && h.cfg.Policy == SingleCopyPassive &&
				len(h.cfg.Servers) > 0 && prepared[i] == h.cfg.Servers[0] {
				fenceDoubt = true
			}
			if isCrashError(err) || object.IsNotActive(err) {
				h.markBroken(prepared[i])
				if h.commitStoresDirect(ctx, tx) {
					continue
				}
			}
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		// FailedNodes may name store nodes (phase-two copy failures) or
		// cohort servers (checkpoint failures); file each in its bucket.
		// A failed STORE commit gets one direct retry from here first:
		// the server's path to the store may be partitioned while the
		// client's is fine, and a store left holding the acknowledged
		// commit only as a pending intention is a chain fork waiting to
		// happen — a later action can find the store busy, exclude it
		// (the only holder of the latest state), and rebuild the same
		// version on a stale base, silently dropping this committed
		// update. Store Commit is idempotent, so retrying a relay whose
		// reply (rather than request) was lost is safe.
		for _, f := range results[i].resp.FailedNodes {
			addr := transport.Addr(f)
			if h.isStore(addr) {
				direct := store.RemoteStore{Client: h.cfg.Client, Node: addr}
				if direct.Commit(ctx, tx) == nil {
					continue
				}
			}
			h.recordFailure(addr)
		}
	}
	if fenceDoubt {
		// The commit is durable, but the primary never confirmed its lease
		// fence — it may have crashed with granted read leases outstanding,
		// and nobody is left to invalidate them. Wait the lease clock out
		// before acknowledging: every grant the primary could have issued
		// expires by confirmedAt + 2·TTL, and confirmedAt predates this
		// commit's store durability, so sleeping 2·TTL from here outlives
		// them all. Deliberately not ctx-interruptible — cutting the wait
		// short would let a caller observe a definite commit while a stale
		// lease still serves the old state.
		time.Sleep(2 * h.cfg.LeaseTTL)
	}
	return firstErr
}

// isStore reports whether addr is one of the handle's St nodes.
func (h *Handle) isStore(addr transport.Addr) bool {
	for _, st := range h.cfg.StNodes {
		if st == addr {
			return true
		}
	}
	return false
}

// commitStoresDirect commits tx's prepared intentions at every St node,
// bypassing a gone server. It reports whether every store acknowledged;
// stores that could not be reached are recorded as failed (for Exclude)
// and will resolve the intention at restart via the outcome log.
func (h *Handle) commitStoresDirect(ctx context.Context, tx string) bool {
	errs := conc.DoErr(len(h.cfg.StNodes), func(i int) error {
		return store.RemoteStore{Client: h.cfg.Client, Node: h.cfg.StNodes[i]}.Commit(ctx, tx)
	})
	ok := true
	for i, err := range errs {
		if err != nil {
			ok = false
			h.recordFailure(h.cfg.StNodes[i])
		}
	}
	return ok
}

// recordFailure classifies a failed node as a broken server binding or a
// failed store, based on which set it belongs to.
func (h *Handle) recordFailure(addr transport.Addr) {
	for _, sv := range h.cfg.Servers {
		if sv == addr {
			h.markBroken(addr)
			return
		}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.failedStores[addr] = true
}

// Abort implements action.Participant; all live servers abort in
// parallel. A handle already released (read-only vote) is a no-op — the
// servers forgot the action when they released it.
func (h *Handle) Abort(ctx context.Context, tx string) error {
	h.mu.Lock()
	released := h.released
	h.mu.Unlock()
	if released {
		return nil
	}
	live := h.live()
	errs := conc.DoErr(len(live), func(i int) error {
		_, err := h.ref(live[i]).Abort(ctx, tx)
		return err
	})
	for _, err := range errs {
		if err != nil && !isCrashError(err) && !object.IsNotActive(err) {
			return err
		}
	}
	return nil
}

// isCrashError reports whether err indicates the callee is gone rather
// than an application-level refusal.
func isCrashError(err error) bool {
	return errors.Is(err, transport.ErrUnreachable) ||
		errors.Is(err, transport.ErrRequestLost) ||
		errors.Is(err, transport.ErrReplyLost) ||
		errors.Is(err, context.DeadlineExceeded)
}
