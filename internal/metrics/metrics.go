// Package metrics provides light-weight counters and histograms used by the
// experiment harness to measure the behaviours the paper describes
// qualitatively (abort rates, bind latencies, divergence counts, …).
//
// The package is deliberately tiny and allocation-light so that recording a
// sample does not perturb the benchmarks that use it.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which may be negative only in tests; production callers
// should treat counters as monotonic).
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Histogram accumulates float64 samples and reports summary statistics.
// It stores raw samples; experiments here record at most a few hundred
// thousand points, so the simplicity is worth the memory.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, v)
	h.sorted = false
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank, or 0 if empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Max returns the maximum sample, or 0 if empty.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Latency is a fixed-memory latency aggregate: count, sum and max in
// atomics. Unlike Histogram it stores no samples, so it can sit on a hot
// RPC path without growing memory or perturbing allocation benchmarks.
type Latency struct {
	count    atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
}

// Observe records one duration.
func (l *Latency) Observe(d time.Duration) {
	l.count.Add(1)
	l.sumNanos.Add(int64(d))
	for {
		cur := l.maxNanos.Load()
		if int64(d) <= cur || l.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (l *Latency) Count() int64 { return l.count.Load() }

// Mean returns the mean observed duration, or 0 if empty.
func (l *Latency) Mean() time.Duration {
	n := l.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(l.sumNanos.Load() / n)
}

// Max returns the largest observed duration.
func (l *Latency) Max() time.Duration { return time.Duration(l.maxNanos.Load()) }

// Registry is a named collection of counters, histograms and latency
// aggregates. The zero value is ready to use. Lookups are lock-free in
// the steady state so concurrent hot paths (e.g. every RPC of a parallel
// fan-out) do not serialize on a registry mutex.
type Registry struct {
	counters   sync.Map // string -> *Counter
	histograms sync.Map // string -> *Histogram
	latencies  sync.Map // string -> *Latency
	memos      sync.Map // string -> any (caller-derived handle bundles)
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// LookupCounter returns the named counter without creating it.
func (r *Registry) LookupCounter(name string) (*Counter, bool) {
	v, ok := r.counters.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Counter), true
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if v, ok := r.histograms.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.histograms.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// Latency returns (creating on first use) the named latency aggregate.
func (r *Registry) Latency(name string) *Latency {
	if v, ok := r.latencies.Load(name); ok {
		return v.(*Latency)
	}
	v, _ := r.latencies.LoadOrStore(name, &Latency{})
	return v.(*Latency)
}

// LookupLatency returns the named latency aggregate without creating it.
func (r *Registry) LookupLatency(name string) (*Latency, bool) {
	v, ok := r.latencies.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Latency), true
}

// MemoLoad returns the handle bundle cached under key, if any. Together
// with MemoStore it lets hot-path callers cache derived handle sets
// (e.g. the RPC layer's per-service counter+latency bundle) on the
// registry itself, avoiding name concatenation and repeated lookups.
func (r *Registry) MemoLoad(key string) (any, bool) { return r.memos.Load(key) }

// MemoStore caches v under key unless another value was stored first, and
// returns the cached value.
func (r *Registry) MemoStore(key string, v any) any {
	actual, _ := r.memos.LoadOrStore(key, v)
	return actual
}

// CounterNames returns the names of all registered counters, sorted.
func (r *Registry) CounterNames() []string {
	var names []string
	r.counters.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// Snapshot renders all metrics as a deterministic multi-line string,
// suitable for experiment reports.
func (r *Registry) Snapshot() string {
	var counterNames, histNames, latNames []string
	r.counters.Range(func(k, _ any) bool {
		counterNames = append(counterNames, k.(string))
		return true
	})
	r.histograms.Range(func(k, _ any) bool {
		histNames = append(histNames, k.(string))
		return true
	})
	r.latencies.Range(func(k, _ any) bool {
		latNames = append(latNames, k.(string))
		return true
	})
	sort.Strings(counterNames)
	sort.Strings(histNames)
	sort.Strings(latNames)
	var b strings.Builder
	for _, name := range counterNames {
		c, _ := r.LookupCounter(name)
		fmt.Fprintf(&b, "counter %-40s %d\n", name, c.Value())
	}
	for _, name := range histNames {
		h := r.Histogram(name)
		fmt.Fprintf(&b, "hist    %-40s n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f\n",
			name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
	}
	for _, name := range latNames {
		l, _ := r.LookupLatency(name)
		fmt.Fprintf(&b, "latency %-40s n=%d mean=%v max=%v\n",
			name, l.Count(), l.Mean(), l.Max())
	}
	return b.String()
}
