// Package metrics provides light-weight counters and histograms used by the
// experiment harness to measure the behaviours the paper describes
// qualitatively (abort rates, bind latencies, divergence counts, …).
//
// The package is deliberately tiny and allocation-light so that recording a
// sample does not perturb the benchmarks that use it.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which may be negative only in tests; production callers
// should treat counters as monotonic).
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Histogram bucket geometry: values are placed in geometrically growing
// buckets, histBucketsPerOctave per power of two, covering 2^histOctaveMin
// up to 2^histOctaveMax (values outside clamp to the edge buckets; values
// ≤ 0 land in a dedicated zero bucket). With 16 sub-buckets per octave the
// representative (geometric bucket midpoint) is within ±2.2% of any sample
// in the bucket — HDR-style accuracy at fixed memory.
const (
	histBucketsPerOctave = 16
	histOctaveMin        = -20 // 2^-20 ≈ 1e-6: sub-microsecond when recording ms
	histOctaveMax        = 44  // 2^44 ≈ 1.8e13: ~500 years when recording ms
	histBuckets          = (histOctaveMax - histOctaveMin) * histBucketsPerOctave
)

// Histogram is a log-bucketed latency/value histogram: fixed memory
// (~8 KiB), lock-free recording, and percentile queries with bounded
// relative error (±2.2%). Unlike the Latency aggregate it answers
// Percentile, so tail latencies (p99/p999) are first-class; unlike a
// raw-sample store it never grows, so thousands of closed-loop load
// generator clients can each own one and Merge them at the end of a run.
// The zero value is ready to use and safe for concurrent use.
type Histogram struct {
	total  atomic.Int64
	zero   atomic.Int64  // samples ≤ 0
	sum    atomic.Uint64 // float64 bits
	max    atomic.Uint64 // float64 bits (exact, not bucketed)
	counts [histBuckets]atomic.Int64
}

// bucketOf maps a positive sample to its bucket index.
func bucketOf(v float64) int {
	i := int(math.Floor(math.Log2(v)*histBucketsPerOctave)) - histOctaveMin*histBucketsPerOctave
	if i < 0 {
		return 0
	}
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Record adds one sample.
func (h *Histogram) Record(v float64) {
	h.total.Add(1)
	for {
		cur := h.sum.Load()
		if h.sum.CompareAndSwap(cur, math.Float64bits(math.Float64frombits(cur)+v)) {
			break
		}
	}
	if v <= 0 || math.IsNaN(v) {
		h.zero.Add(1)
		return
	}
	for {
		cur := h.max.Load()
		if v <= math.Float64frombits(cur) || h.max.CompareAndSwap(cur, math.Float64bits(v)) {
			break
		}
	}
	h.counts[bucketOf(v)].Add(1)
}

// RecordDuration records a duration in milliseconds — the unit every
// latency histogram in this module uses.
func (h *Histogram) RecordDuration(d time.Duration) {
	h.Record(float64(d) / float64(time.Millisecond))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return math.Float64frombits(h.sum.Load()) / float64(n)
}

// Percentile returns the value at or below which q (0 ≤ q ≤ 1) of the
// samples fall, or 0 if empty. The answer is a bucket representative —
// within ±2.2% of the true order statistic — except at the top, where the
// exact maximum caps it.
func (h *Histogram) Percentile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	mx := math.Float64frombits(h.max.Load())
	if rank >= total {
		return mx
	}
	cum := h.zero.Load()
	if rank <= cum {
		return 0
	}
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if rank <= cum {
			if v := bucketValueAt(i); v < mx {
				return v
			}
			return mx
		}
	}
	return mx
}

// bucketValueAt is bucket i's representative: the geometric midpoint of
// its bounds, with the octave offset folded into the exponent. Index i
// spans [2^((i+off)/16), 2^((i+off+1)/16)) where off = histOctaveMin*16.
func bucketValueAt(i int) float64 {
	return math.Exp2((float64(i+histOctaveMin*histBucketsPerOctave) + 0.5) / histBucketsPerOctave)
}

// Quantile is an alias for Percentile, mirroring the old raw-sample API.
func (h *Histogram) Quantile(q float64) float64 { return h.Percentile(q) }

// Max returns the exact maximum positive sample, or 0 if empty.
func (h *Histogram) Max() float64 { return math.Float64frombits(h.max.Load()) }

// Merge folds other's samples into h. Merging is additive bucket-wise, so
// per-client histograms combine into a run-wide one without precision
// loss. Merge reads other without synchronisation barriers beyond the
// individual atomics — merge quiescent histograms (e.g. after workers
// have stopped) for exact totals.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	h.total.Add(other.total.Load())
	h.zero.Add(other.zero.Load())
	ov := math.Float64frombits(other.sum.Load())
	for {
		cur := h.sum.Load()
		if h.sum.CompareAndSwap(cur, math.Float64bits(math.Float64frombits(cur)+ov)) {
			break
		}
	}
	om := math.Float64frombits(other.max.Load())
	for {
		cur := h.max.Load()
		if om <= math.Float64frombits(cur) || h.max.CompareAndSwap(cur, math.Float64bits(om)) {
			break
		}
	}
	for i := 0; i < histBuckets; i++ {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
}

// Latency is a fixed-memory latency aggregate: count, sum and max in
// atomics. Unlike Histogram it stores no samples, so it can sit on a hot
// RPC path without growing memory or perturbing allocation benchmarks.
type Latency struct {
	count    atomic.Int64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
}

// Observe records one duration.
func (l *Latency) Observe(d time.Duration) {
	l.count.Add(1)
	l.sumNanos.Add(int64(d))
	for {
		cur := l.maxNanos.Load()
		if int64(d) <= cur || l.maxNanos.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Count returns the number of observations.
func (l *Latency) Count() int64 { return l.count.Load() }

// Mean returns the mean observed duration, or 0 if empty.
func (l *Latency) Mean() time.Duration {
	n := l.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(l.sumNanos.Load() / n)
}

// Max returns the largest observed duration.
func (l *Latency) Max() time.Duration { return time.Duration(l.maxNanos.Load()) }

// Registry is a named collection of counters, histograms and latency
// aggregates. The zero value is ready to use. Lookups are lock-free in
// the steady state so concurrent hot paths (e.g. every RPC of a parallel
// fan-out) do not serialize on a registry mutex.
type Registry struct {
	counters   sync.Map // string -> *Counter
	histograms sync.Map // string -> *Histogram
	latencies  sync.Map // string -> *Latency
	memos      sync.Map // string -> any (caller-derived handle bundles)
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// LookupCounter returns the named counter without creating it.
func (r *Registry) LookupCounter(name string) (*Counter, bool) {
	v, ok := r.counters.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Counter), true
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if v, ok := r.histograms.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.histograms.LoadOrStore(name, &Histogram{})
	return v.(*Histogram)
}

// LookupHistogram returns the named histogram without creating it.
func (r *Registry) LookupHistogram(name string) (*Histogram, bool) {
	v, ok := r.histograms.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Histogram), true
}

// Latency returns (creating on first use) the named latency aggregate.
func (r *Registry) Latency(name string) *Latency {
	if v, ok := r.latencies.Load(name); ok {
		return v.(*Latency)
	}
	v, _ := r.latencies.LoadOrStore(name, &Latency{})
	return v.(*Latency)
}

// LookupLatency returns the named latency aggregate without creating it.
func (r *Registry) LookupLatency(name string) (*Latency, bool) {
	v, ok := r.latencies.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Latency), true
}

// MemoLoad returns the handle bundle cached under key, if any. Together
// with MemoStore it lets hot-path callers cache derived handle sets
// (e.g. the RPC layer's per-service counter+latency bundle) on the
// registry itself, avoiding name concatenation and repeated lookups.
func (r *Registry) MemoLoad(key string) (any, bool) { return r.memos.Load(key) }

// MemoStore caches v under key unless another value was stored first, and
// returns the cached value.
func (r *Registry) MemoStore(key string, v any) any {
	actual, _ := r.memos.LoadOrStore(key, v)
	return actual
}

// CounterNames returns the names of all registered counters, sorted.
func (r *Registry) CounterNames() []string {
	var names []string
	r.counters.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// Snapshot renders all metrics as a deterministic multi-line string,
// suitable for experiment reports.
func (r *Registry) Snapshot() string {
	var counterNames, histNames, latNames []string
	r.counters.Range(func(k, _ any) bool {
		counterNames = append(counterNames, k.(string))
		return true
	})
	r.histograms.Range(func(k, _ any) bool {
		histNames = append(histNames, k.(string))
		return true
	})
	r.latencies.Range(func(k, _ any) bool {
		latNames = append(latNames, k.(string))
		return true
	})
	sort.Strings(counterNames)
	sort.Strings(histNames)
	sort.Strings(latNames)
	var b strings.Builder
	for _, name := range counterNames {
		c, _ := r.LookupCounter(name)
		fmt.Fprintf(&b, "counter %-40s %d\n", name, c.Value())
	}
	for _, name := range histNames {
		h := r.Histogram(name)
		fmt.Fprintf(&b, "hist    %-40s n=%d mean=%.3f p50=%.3f p99=%.3f p999=%.3f max=%.3f\n",
			name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Quantile(0.999), h.Max())
	}
	for _, name := range latNames {
		l, _ := r.LookupLatency(name)
		fmt.Fprintf(&b, "latency %-40s n=%d mean=%v max=%v\n",
			name, l.Count(), l.Mean(), l.Max())
	}
	return b.String()
}
