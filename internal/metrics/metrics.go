// Package metrics provides light-weight counters and histograms used by the
// experiment harness to measure the behaviours the paper describes
// qualitatively (abort rates, bind latencies, divergence counts, …).
//
// The package is deliberately tiny and allocation-light so that recording a
// sample does not perturb the benchmarks that use it.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for concurrent use.
type Counter struct {
	n atomic.Int64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which may be negative only in tests; production callers
// should treat counters as monotonic).
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Histogram accumulates float64 samples and reports summary statistics.
// It stores raw samples; experiments here record at most a few hundred
// thousand points, so the simplicity is worth the memory.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, v)
	h.sorted = false
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank, or 0 if empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Max returns the maximum sample, or 0 if empty.
func (h *Histogram) Max() float64 { return h.Quantile(1) }

// Registry is a named collection of counters and histograms. The zero value
// is ready to use.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
}

// Counter returns (creating on first use) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns (creating on first use) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot renders all metrics as a deterministic multi-line string,
// suitable for experiment reports.
func (r *Registry) Snapshot() string {
	r.mu.Lock()
	counterNames := make([]string, 0, len(r.counters))
	for name := range r.counters {
		counterNames = append(counterNames, name)
	}
	histNames := make([]string, 0, len(r.histograms))
	for name := range r.histograms {
		histNames = append(histNames, name)
	}
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.Unlock()

	sort.Strings(counterNames)
	sort.Strings(histNames)
	var b strings.Builder
	for _, name := range counterNames {
		fmt.Fprintf(&b, "counter %-40s %d\n", name, counters[name].Value())
	}
	for _, name := range histNames {
		h := hists[name]
		fmt.Fprintf(&b, "hist    %-40s n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f\n",
			name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
	}
	return b.String()
}
