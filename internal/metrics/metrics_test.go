package metrics

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 10000 {
		t.Fatalf("counter = %d, want 10000", got)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("mean = %v, want 50.5", got)
	}
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("p50 = %v, want 50", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v, want 100", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.9) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("duration sample = %v ms, want 1.5", got)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	h.Observe(7)
	if h.Quantile(0) != 7 || h.Quantile(1) != 7 {
		t.Fatal("single-sample quantiles should be the sample")
	}
}

func TestRegistryIdentity(t *testing.T) {
	var r Registry
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name should return same counter")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name should return same histogram")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Fatal("different names should return different counters")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	var r Registry
	r.Counter("aborts").Add(3)
	r.Histogram("bind_ms").Observe(2.0)
	snap := r.Snapshot()
	if !strings.Contains(snap, "aborts") || !strings.Contains(snap, "bind_ms") {
		t.Fatalf("snapshot missing entries:\n%s", snap)
	}
	if !strings.Contains(snap, "3") {
		t.Fatalf("snapshot missing counter value:\n%s", snap)
	}
}

func TestHistogramMeanBetweenMinMaxProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var h Histogram
		lo, hi := 0.0, 0.0
		n := 0
		for _, v := range vals {
			// Skip NaN/Inf which have no meaningful ordering.
			if v != v || v > 1e300 || v < -1e300 {
				continue
			}
			if n == 0 || v < lo {
				lo = v
			}
			if n == 0 || v > hi {
				hi = v
			}
			h.Observe(v)
			n++
		}
		if n == 0 {
			return true
		}
		m := h.Mean()
		return m >= lo-1e-9*(1+hi-lo) && m <= hi+1e-9*(1+hi-lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
