package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// histTolerance is the histogram's worst-case relative error: with 16
// buckets per octave a bucket spans a factor of 2^(1/16) ≈ 1.0443, so the
// geometric midpoint is within ±2.2% of any sample in the bucket.
const histTolerance = 0.025

func approxEq(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want) <= histTolerance*math.Abs(want)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 10000 {
		t.Fatalf("counter = %d, want 10000", got)
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("mean = %v, want 50.5 (mean is exact, not bucketed)", got)
	}
	if got := h.Percentile(0.5); !approxEq(got, 50) {
		t.Fatalf("p50 = %v, want ≈50", got)
	}
	if got := h.Percentile(0.99); !approxEq(got, 99) {
		t.Fatalf("p99 = %v, want ≈99", got)
	}
	if got := h.Max(); got != 100 {
		t.Fatalf("max = %v, want 100 (max is exact)", got)
	}
	if got := h.Percentile(1); got != 100 {
		t.Fatalf("p100 = %v, want exactly max", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(0.9) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramRecordDuration(t *testing.T) {
	var h Histogram
	h.RecordDuration(1500 * time.Microsecond)
	if got := h.Mean(); got != 1.5 {
		t.Fatalf("duration sample = %v ms, want 1.5", got)
	}
	if got := h.Percentile(0.5); !approxEq(got, 1.5) {
		t.Fatalf("p50 = %v, want ≈1.5", got)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(7)
	if got := h.Percentile(0); !approxEq(got, 7) {
		t.Fatalf("p0 = %v, want ≈7", got)
	}
	if got := h.Percentile(1); got != 7 {
		t.Fatalf("p100 = %v, want exactly 7", got)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-3)
	h.Record(10)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	// Two of three samples are ≤0, so the median is the zero bucket.
	if got := h.Percentile(0.5); got != 0 {
		t.Fatalf("p50 = %v, want 0", got)
	}
	if got := h.Percentile(1); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
}

func TestHistogramRelativeErrorBound(t *testing.T) {
	// Percentiles of a log-uniform sample set must track the true order
	// statistics within the advertised relative error.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.Float64()*14 - 7) // ~1e-3 .. ~1e3
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Float64s(vals)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		idx := int(math.Ceil(q*float64(len(vals)))) - 1
		want := vals[idx]
		got := h.Percentile(q)
		if math.Abs(got-want)/want > histTolerance {
			t.Fatalf("p%v = %v, true order statistic %v (rel err %.4f > %.4f)",
				q*100, got, want, math.Abs(got-want)/want, histTolerance)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, all Histogram
	for i := 1; i <= 500; i++ {
		a.Record(float64(i))
		all.Record(float64(i))
	}
	for i := 501; i <= 1000; i++ {
		b.Record(float64(i))
		all.Record(float64(i))
	}
	var merged Histogram
	merged.Merge(&a)
	merged.Merge(&b)
	merged.Merge(nil) // no-op
	if merged.Count() != all.Count() {
		t.Fatalf("merged count = %d, want %d", merged.Count(), all.Count())
	}
	if merged.Mean() != all.Mean() {
		t.Fatalf("merged mean = %v, want %v", merged.Mean(), all.Mean())
	}
	if merged.Max() != all.Max() {
		t.Fatalf("merged max = %v, want %v", merged.Max(), all.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		if merged.Percentile(q) != all.Percentile(q) {
			t.Fatalf("merged p%v = %v, direct p%v = %v — bucket-wise merge must be lossless",
				q*100, merged.Percentile(q), q*100, all.Percentile(q))
		}
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(rng.Float64() * 100)
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	m := h.Mean()
	if m < 40 || m > 60 {
		t.Fatalf("mean of uniform(0,100) samples = %v, want ≈50", m)
	}
}

func TestRegistryIdentity(t *testing.T) {
	var r Registry
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name should return same counter")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name should return same histogram")
	}
	if r.Counter("a") == r.Counter("b") {
		t.Fatal("different names should return different counters")
	}
	if _, ok := r.LookupHistogram("absent"); ok {
		t.Fatal("LookupHistogram must not create")
	}
	if got, ok := r.LookupHistogram("h"); !ok || got != r.Histogram("h") {
		t.Fatal("LookupHistogram should find the registered histogram")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	var r Registry
	r.Counter("aborts").Add(3)
	r.Histogram("bind_ms").Record(2.0)
	snap := r.Snapshot()
	if !strings.Contains(snap, "aborts") || !strings.Contains(snap, "bind_ms") {
		t.Fatalf("snapshot missing entries:\n%s", snap)
	}
	if !strings.Contains(snap, "3") {
		t.Fatalf("snapshot missing counter value:\n%s", snap)
	}
	if !strings.Contains(snap, "p999") {
		t.Fatalf("snapshot missing p999 column:\n%s", snap)
	}
}
