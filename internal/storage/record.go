package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Record tags. The tag travels as the first payload byte; replay applies
// records in file order.
const (
	recVersion byte = iota + 1
	recDeleteVersion
	recIntention
	recCommitTx
	recAbortTx
	recOutcome
	recDeleteOutcome
	recMaxTag = recDeleteOutcome
)

// maxPayload bounds a single record so a corrupt length prefix cannot
// demand gigabytes; object states in this system are small.
const maxPayload = 1 << 26

// errCorrupt reports an undecodable record payload; the scanner treats
// it like a torn tail and truncates.
var errCorrupt = errors.New("storage: corrupt record")

// record is the WAL/snapshot unit. Fields are used per tag; unused ones
// stay empty.
type record struct {
	tag  byte
	tx   string
	id   string
	seq  uint64 // version/intention seq, or the outcome code
	data []byte
}

// appendRecord appends r's frame (length, payload, CRC) to dst.
func appendRecord(dst []byte, r record) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length, patched below
	payloadStart := len(dst)
	dst = append(dst, r.tag)
	dst = binary.AppendUvarint(dst, uint64(len(r.tx)))
	dst = append(dst, r.tx...)
	dst = binary.AppendUvarint(dst, uint64(len(r.id)))
	dst = append(dst, r.id...)
	dst = binary.AppendUvarint(dst, r.seq)
	dst = binary.AppendUvarint(dst, uint64(len(r.data)))
	dst = append(dst, r.data...)
	payload := dst[payloadStart:]
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(payload)))
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// decodePayload decodes one record payload (the bytes between the length
// prefix and the CRC). It is strict: unknown tags, short fields and
// trailing bytes are all errCorrupt.
func decodePayload(p []byte) (record, error) {
	if len(p) == 0 {
		return record{}, fmt.Errorf("%w: empty payload", errCorrupt)
	}
	r := record{tag: p[0]}
	if r.tag == 0 || r.tag > recMaxTag {
		return record{}, fmt.Errorf("%w: unknown tag %d", errCorrupt, r.tag)
	}
	p = p[1:]
	takeBytes := func() ([]byte, bool) {
		n, used := binary.Uvarint(p)
		if used <= 0 || n > uint64(len(p)-used) {
			return nil, false
		}
		b := p[used : used+int(n)]
		p = p[used+int(n):]
		return b, true
	}
	tx, ok := takeBytes()
	if !ok {
		return record{}, fmt.Errorf("%w: truncated tx field", errCorrupt)
	}
	id, ok := takeBytes()
	if !ok {
		return record{}, fmt.Errorf("%w: truncated id field", errCorrupt)
	}
	seq, used := binary.Uvarint(p)
	if used <= 0 {
		return record{}, fmt.Errorf("%w: truncated seq field", errCorrupt)
	}
	p = p[used:]
	data, ok := takeBytes()
	if !ok {
		return record{}, fmt.Errorf("%w: truncated data field", errCorrupt)
	}
	if len(p) != 0 {
		return record{}, fmt.Errorf("%w: %d trailing payload bytes", errCorrupt, len(p))
	}
	r.tx, r.id, r.seq = string(tx), string(id), seq
	if len(data) > 0 {
		r.data = data
	}
	return r, nil
}

// scanRecords applies every decodable record in buf, in order, and
// returns the byte length of the clean prefix. It stops — without error —
// at the first incomplete frame, CRC mismatch or undecodable payload:
// that is the torn tail a crash mid-append leaves, and the caller
// truncates the file there. strict mode instead reports such a tail as
// an error (snapshots are written atomically, so any damage is real
// corruption, not a torn write).
func scanRecords(buf []byte, strict bool, apply func(record)) (int64, error) {
	off := 0
	for {
		rest := buf[off:]
		if len(rest) < 4 {
			break
		}
		n := binary.LittleEndian.Uint32(rest)
		if n == 0 || n > maxPayload || uint64(len(rest)-4) < uint64(n)+4 {
			break
		}
		payload := rest[4 : 4+n]
		crc := binary.LittleEndian.Uint32(rest[4+n:])
		if crc32.ChecksumIEEE(payload) != crc {
			break
		}
		r, err := decodePayload(payload)
		if err != nil {
			break
		}
		apply(r)
		off += 4 + int(n) + 4
	}
	if strict && off != len(buf) {
		return int64(off), fmt.Errorf("%w: undecodable record at byte %d of %d", errCorrupt, off, len(buf))
	}
	return int64(off), nil
}

// applyRecord folds one record into st — the single replay semantics the
// WAL, the snapshot and the live Disk state all share.
func applyRecord(st *State, r record) {
	switch r.tag {
	case recVersion:
		st.Versions[r.id] = Version{Data: r.data, Seq: r.seq, Tx: r.tx}
	case recDeleteVersion:
		delete(st.Versions, r.id)
	case recIntention:
		in := st.Intentions[r.tx]
		if in == nil {
			in = make(map[string]Write)
			st.Intentions[r.tx] = in
		}
		in[r.id] = Write{Data: r.data, Seq: r.seq}
	case recCommitTx:
		for id, w := range st.Intentions[r.tx] {
			st.Versions[id] = Version{Data: w.Data, Seq: w.Seq, Tx: r.tx}
		}
		delete(st.Intentions, r.tx)
	case recAbortTx:
		delete(st.Intentions, r.tx)
	case recOutcome:
		st.Outcomes[r.tx] = uint8(r.seq)
	case recDeleteOutcome:
		delete(st.Outcomes, r.tx)
	}
}

// encodeState renders st as a record stream (the snapshot body), in a
// deterministic order: versions, intentions, outcomes, each sorted by
// key.
func encodeState(st *State) []byte {
	var buf []byte
	for _, id := range sortedKeys(st.Versions) {
		v := st.Versions[id]
		buf = appendRecord(buf, record{tag: recVersion, id: id, tx: v.Tx, seq: v.Seq, data: v.Data})
	}
	for _, tx := range sortedKeys(st.Intentions) {
		in := st.Intentions[tx]
		for _, id := range sortedKeys(in) {
			w := in[id]
			buf = appendRecord(buf, record{tag: recIntention, tx: tx, id: id, seq: w.Seq, data: w.Data})
		}
	}
	for _, tx := range sortedKeys(st.Outcomes) {
		buf = appendRecord(buf, record{tag: recOutcome, tx: tx, seq: uint64(st.Outcomes[tx])})
	}
	return buf
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
