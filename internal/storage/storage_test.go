package storage

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
)

// fill applies a representative mutation history: direct versions, an
// intention that commits, an intention that aborts, one left pending,
// outcomes recorded and one pruned.
func fill(t *testing.T, b Backend) {
	t.Helper()
	steps := []error{
		b.PutVersion("obj:1:1", Version{Data: []byte("v1"), Seq: 1}),
		b.PutVersion("obj:1:2", Version{Data: []byte("x"), Seq: 1}),
		b.DeleteVersion("obj:1:2"),
		b.PutIntention("tx-c", "obj:1:1", Write{Data: []byte("v2"), Seq: 2}),
		b.CommitTx("tx-c"),
		b.PutIntention("tx-a", "obj:1:1", Write{Data: []byte("bad"), Seq: 3}),
		b.AbortTx("tx-a"),
		b.PutIntention("tx-p", "obj:1:3", Write{Data: []byte("pending"), Seq: 1}),
		b.PutOutcome("tx-c", 1),
		b.PutOutcome("tx-old", 2),
		b.DeleteOutcome("tx-old"),
		b.Sync(),
	}
	for i, err := range steps {
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

// checkFilled asserts the state fill must produce, on any backend and
// across any number of close/reopen cycles.
func checkFilled(t *testing.T, st *State) {
	t.Helper()
	if v := st.Versions["obj:1:1"]; string(v.Data) != "v2" || v.Seq != 2 || v.Tx != "tx-c" {
		t.Fatalf("obj:1:1 = %+v, want committed v2/2 by tx-c", v)
	}
	if _, ok := st.Versions["obj:1:2"]; ok {
		t.Fatal("deleted version resurrected")
	}
	if len(st.Intentions) != 1 || len(st.Intentions["tx-p"]) != 1 {
		t.Fatalf("intentions = %+v, want only tx-p pending", st.Intentions)
	}
	if w := st.Intentions["tx-p"]["obj:1:3"]; string(w.Data) != "pending" || w.Seq != 1 {
		t.Fatalf("pending write = %+v", w)
	}
	if o, ok := st.Outcomes["tx-c"]; !ok || o != 1 {
		t.Fatalf("outcome tx-c = %d,%v want 1,true", o, ok)
	}
	if _, ok := st.Outcomes["tx-old"]; ok {
		t.Fatal("pruned outcome resurrected")
	}
}

func TestMemBackendRoundTrip(t *testing.T) {
	f := MemFactory()
	b, _ := f()
	fill(t, b)
	st, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkFilled(t, st)
	// Close keeps the data; the factory hands back the same instance.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, _ := f()
	st2, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkFilled(t, st2)
}

func TestDiskReplayAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	for _, mode := range []SyncMode{SyncGroup, SyncEach, SyncNone} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := fmt.Sprintf("%s/%s", dir, mode)
			b, err := OpenDisk(dir, DiskOptions{Sync: mode})
			if err != nil {
				t.Fatal(err)
			}
			fill(t, b)
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			b2, err := OpenDisk(dir, DiskOptions{Sync: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer b2.Close()
			st, err := b2.Load()
			if err != nil {
				t.Fatal(err)
			}
			checkFilled(t, st)
			if o, ok, _ := b2.Outcome("tx-c"); !ok || o != 1 {
				t.Fatalf("Outcome(tx-c) = %d,%v", o, ok)
			}
		})
	}
}

// TestDiskTornTailTruncated: junk after the last full record — the image
// a crash mid-append leaves — is truncated at open and everything before
// it survives.
func TestDiskTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, b)
	b.Close()
	for i, junk := range [][]byte{
		{0x01},                         // short length prefix
		{0x64, 0x00, 0x00, 0x00, 0xAA}, // promises 100 bytes, has 1
		bytes.Repeat([]byte{0xFF}, 64), // garbage "length" and body
		append([]byte{9, 0, 0, 0}, bytes.Repeat([]byte{0}, 13)...), // full frame, bad CRC
	} {
		if err := CorruptWALTail(dir, junk); err != nil {
			t.Fatal(err)
		}
		b2, err := OpenDisk(dir, DiskOptions{})
		if err != nil {
			t.Fatalf("junk %d: open: %v", i, err)
		}
		if b2.TruncatedAtOpen() == 0 {
			t.Fatalf("junk %d: no torn tail detected", i)
		}
		st, err := b2.Load()
		if err != nil {
			t.Fatal(err)
		}
		checkFilled(t, st)
		b2.Close() // next iteration corrupts the now-clean file again
	}
}

// TestDiskKillAtByte drives the kill-at-byte injection at every byte
// offset of a known WAL: whatever prefix survives, reopening yields a
// consistent state containing exactly the fully-acked records.
func TestDiskKillAtByte(t *testing.T) {
	// First measure the WAL a reference history produces.
	ref := t.TempDir()
	b, err := OpenDisk(ref, DiskOptions{Sync: SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	history := func(b Backend) []error {
		return []error{
			b.PutVersion("obj:1:1", Version{Data: []byte("a"), Seq: 1}),
			b.PutIntention("tx", "obj:1:1", Write{Data: []byte("b"), Seq: 2}),
			b.CommitTx("tx"),
		}
	}
	for _, err := range history(b) {
		if err != nil {
			t.Fatal(err)
		}
	}
	total := b.WALSize()
	b.Close()

	fired := false
	for limit := int64(1); limit < total; limit += 7 {
		dir := fmt.Sprintf("%s/kill-%d", t.TempDir(), limit)
		b, err := OpenDisk(dir, DiskOptions{Sync: SyncNone})
		if err != nil {
			t.Fatal(err)
		}
		killed := make(chan struct{}, 1)
		b.FailAfter(limit, func() { killed <- struct{}{} })
		sawErr := false
		for _, err := range history(b) {
			if err != nil {
				sawErr = true
				break
			}
		}
		if !sawErr {
			t.Fatalf("limit %d: no append failed", limit)
		}
		<-killed
		fired = true
		b.Close()
		re, err := OpenDisk(dir, DiskOptions{Sync: SyncNone})
		if err != nil {
			t.Fatalf("limit %d: reopen: %v", limit, err)
		}
		st, err := re.Load()
		if err != nil {
			t.Fatal(err)
		}
		// Consistency: a version is either absent, the committed "a"/1, or
		// the committed-by-tx "b"/2 — and the commit only counts if its
		// intention also made it (records land in order).
		if v, ok := st.Versions["obj:1:1"]; ok {
			good := (string(v.Data) == "a" && v.Seq == 1) || (string(v.Data) == "b" && v.Seq == 2 && v.Tx == "tx")
			if !good {
				t.Fatalf("limit %d: inconsistent replay %+v", limit, v)
			}
		}
		re.Close()
	}
	if !fired {
		t.Fatal("kill callback never fired")
	}
}

// TestDiskCompactionAndCrashBetweenRenameAndTruncate: compaction
// snapshots and truncates; restoring the pre-compaction WAL next to the
// new snapshot (the crash-between-rename-and-truncate image) must replay
// to the same state.
func TestDiskCompactionAndCrashBetweenRenameAndTruncate(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir, DiskOptions{CompactAt: -1})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, b)
	walImage, err := os.ReadFile(WALPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := b.WALSize(); got != 0 {
		t.Fatalf("WAL size after compact = %d, want 0", got)
	}
	// Post-compaction mutations land in the truncated WAL.
	if err := b.PutVersion("obj:1:9", Version{Data: []byte("late"), Seq: 1}); err != nil {
		t.Fatal(err)
	}
	b.Close()

	// Clean reopen: snapshot + fresh WAL.
	b2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkFilled(t, st)
	if v := st.Versions["obj:1:9"]; string(v.Data) != "late" {
		t.Fatalf("post-compaction write lost: %+v", v)
	}
	b2.Close()

	// Crash image: the old WAL (already folded into the snapshot) back in
	// place, plus nothing else. Replay must converge to the same state.
	if err := os.WriteFile(WALPath(dir), walImage, 0o644); err != nil {
		t.Fatal(err)
	}
	b3, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b3.Close()
	st3, err := b3.Load()
	if err != nil {
		t.Fatal(err)
	}
	checkFilled(t, st3)
}

// TestDiskAutoCompaction: the WAL stays bounded under a write stream
// once it crosses CompactAt.
func TestDiskAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir, DiskOptions{Sync: SyncNone, CompactAt: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("obj:1:%d", i%5)
		if err := b.PutVersion(id, Version{Data: bytes.Repeat([]byte{'x'}, 32), Seq: uint64(i + 1)}); err != nil {
			t.Fatal(err)
		}
		// Compaction triggers from Sync (it must never run under a
		// caller's mutex on the append path), as every store op syncs.
		if err := b.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if sz := b.WALSize(); sz >= 1024 {
		t.Fatalf("WAL grew to %d bytes despite CompactAt=512", sz)
	}
	if _, err := os.Stat(SnapshotPath(dir)); err != nil {
		t.Fatalf("no snapshot written: %v", err)
	}
	st, err := b.Load()
	if err != nil {
		t.Fatal(err)
	}
	if v := st.Versions["obj:1:4"]; v.Seq != 200 {
		t.Fatalf("latest version lost across compactions: %+v", v)
	}
}

// TestDiskGroupCommitCoalesces: concurrent Sync callers finish with
// every append durable, and group mode issues no more fsyncs than
// callers (typically far fewer — asserted loosely to stay robust).
func TestDiskGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir, DiskOptions{Sync: SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	const workers, rounds = 8, 25
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				id := fmt.Sprintf("obj:%d:%d", w+1, i+1)
				if err := b.PutVersion(id, Version{Data: []byte("d"), Seq: 1}); err != nil {
					errs[w] = err
					return
				}
				if err := b.Sync(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	b.Close()
	b2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b2.Close()
	st, err := b2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Versions) != workers*rounds {
		t.Fatalf("replayed %d versions, want %d", len(st.Versions), workers*rounds)
	}
}

// TestRecordRoundTrip: every tag survives encode → scan.
func TestRecordRoundTrip(t *testing.T) {
	recs := []record{
		{tag: recVersion, id: "obj:1:1", tx: "tx", seq: 7, data: []byte("payload")},
		{tag: recDeleteVersion, id: "obj:1:1"},
		{tag: recIntention, tx: "tx", id: "obj:1:2", seq: 9, data: []byte{}},
		{tag: recCommitTx, tx: "tx"},
		{tag: recAbortTx, tx: "tx"},
		{tag: recOutcome, tx: "tx", seq: 2},
		{tag: recDeleteOutcome, tx: "tx"},
	}
	var buf []byte
	for _, r := range recs {
		buf = appendRecord(buf, r)
	}
	var got []record
	n, err := scanRecords(buf, true, func(r record) { got = append(got, r) })
	if err != nil || n != int64(len(buf)) {
		t.Fatalf("scan = %d,%v want %d,nil", n, err, len(buf))
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		g := got[i]
		if g.tag != r.tag || g.tx != r.tx || g.id != r.id || g.seq != r.seq || !bytes.Equal(g.data, r.data) {
			t.Fatalf("record %d: %+v != %+v", i, g, r)
		}
	}
}

// TestDiskDirectoryLockedAgainstDualOpen: a directory admits one live
// backend; a second open is refused until the first closes (two writers
// interleaving one WAL would corrupt it).
func TestDiskDirectoryLockedAgainstDualOpen(t *testing.T) {
	dir := t.TempDir()
	b, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dir, DiskOptions{}); err == nil {
		t.Fatal("second open of a live directory succeeded")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	b2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	b2.Close()
}
