package storage

import (
	"bytes"
	"testing"
)

// FuzzWALDecode hardens the WAL/snapshot record codec: scanning
// arbitrary bytes must never panic or over-consume, every record it
// accepts must re-encode into a frame that decodes back to the same
// record, and the clean prefix must be stable (rescanning it consumes it
// entirely).
func FuzzWALDecode(f *testing.F) {
	// Seed corpus: every tag, plus the classic damage shapes (also
	// checked in under testdata/fuzz/FuzzWALDecode).
	f.Add([]byte{})
	f.Add(appendRecord(nil, record{tag: recVersion, id: "obj:1:1", tx: "tx", seq: 3, data: []byte("state")}))
	f.Add(appendRecord(nil, record{tag: recDeleteVersion, id: "obj:1:1"}))
	f.Add(appendRecord(nil, record{tag: recIntention, tx: "tx", id: "obj:1:2", seq: 4, data: []byte("w")}))
	f.Add(appendRecord(appendRecord(nil, record{tag: recCommitTx, tx: "tx"}), record{tag: recAbortTx, tx: "tx2"}))
	f.Add(appendRecord(nil, record{tag: recOutcome, tx: "tx", seq: 1}))
	f.Add(appendRecord(nil, record{tag: recDeleteOutcome, tx: "tx"}))
	full := appendRecord(nil, record{tag: recVersion, id: "obj:1:1", seq: 1, data: []byte("v")})
	f.Add(full[:len(full)-1])          // torn CRC
	f.Add(full[:5])                    // torn payload
	f.Add([]byte{0x64, 0, 0, 0, 0xAA}) // length promises more than present
	bad := bytes.Clone(full)
	bad[len(bad)-1] ^= 0xFF // corrupt CRC
	f.Add(bad)
	tagged := bytes.Clone(full)
	tagged[4] = 0x7F // unknown tag under a valid CRC? (CRC now mismatches — still must not panic)
	f.Add(tagged)

	f.Fuzz(func(t *testing.T, raw []byte) {
		var recs []record
		n, err := scanRecords(raw, false, func(r record) { recs = append(recs, r) })
		if err != nil {
			t.Fatalf("tolerant scan returned error: %v", err)
		}
		if n < 0 || n > int64(len(raw)) {
			t.Fatalf("consumed %d of %d bytes", n, len(raw))
		}
		// Accepted records round-trip through the canonical encoder.
		for i, r := range recs {
			re := appendRecord(nil, r)
			var back []record
			m, _ := scanRecords(re, true, func(r record) { back = append(back, r) })
			if m != int64(len(re)) || len(back) != 1 {
				t.Fatalf("record %d: re-encoded frame undecodable", i)
			}
			g := back[0]
			if g.tag != r.tag || g.tx != r.tx || g.id != r.id || g.seq != r.seq || !bytes.Equal(g.data, r.data) {
				t.Fatalf("record %d changed across round trip: %+v -> %+v", i, r, g)
			}
		}
		// The clean prefix is self-consistent: rescanning consumes it all.
		count := 0
		m, err := scanRecords(raw[:n], true, func(record) { count++ })
		if err != nil || m != n || count != len(recs) {
			t.Fatalf("clean prefix rescan: %d bytes/%d records (%v), want %d/%d", m, count, err, n, len(recs))
		}
		// Applying accepted records must never panic, whatever their shape.
		st := NewState()
		for _, r := range recs {
			applyRecord(st, r)
		}
	})
}
