//go:build unix

package storage

import (
	"fmt"
	"os"
	"syscall"
)

// lockDir takes an exclusive, non-blocking flock on dir's lock file and
// returns the held file. The kernel releases the lock when the process
// dies, so a crash never leaves a stale lock — exactly the lifetime a
// stable-storage directory lease needs.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(LockPath(dir), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w (held by another live backend?): %v", ErrLocked, err)
	}
	return f, nil
}
