package storage

import (
	"errors"
	"sync"
)

// ErrClosed reports an operation on a closed backend.
var ErrClosed = errors.New("storage: backend is closed")

// Version is one committed object state as the backend records it.
type Version struct {
	// Data is the serialized object state.
	Data []byte
	// Seq is the version-chain sequence number.
	Seq uint64
	// Tx is the transaction that committed this version ("" for direct
	// installs).
	Tx string
}

// Write is one prepared (undecided) object write of a transaction.
type Write struct {
	Data []byte
	Seq  uint64
}

// State is a full image of a backend's contents. Load returns a copy the
// caller owns; the byte slices are shared and must not be mutated.
type State struct {
	// Versions maps an object UID (string form) to its committed version.
	Versions map[string]Version
	// Intentions maps a transaction ID to its prepared writes by object.
	Intentions map[string]map[string]Write
	// Outcomes maps a transaction ID to its recorded outcome code.
	Outcomes map[string]uint8
}

// NewState returns an empty state.
func NewState() *State {
	return &State{
		Versions:   make(map[string]Version),
		Intentions: make(map[string]map[string]Write),
		Outcomes:   make(map[string]uint8),
	}
}

func (s *State) clone() *State {
	out := &State{
		Versions:   make(map[string]Version, len(s.Versions)),
		Intentions: make(map[string]map[string]Write, len(s.Intentions)),
		Outcomes:   make(map[string]uint8, len(s.Outcomes)),
	}
	for id, v := range s.Versions {
		out.Versions[id] = v
	}
	for tx, m := range s.Intentions {
		c := make(map[string]Write, len(m))
		for id, w := range m {
			c[id] = w
		}
		out.Intentions[tx] = c
	}
	for tx, o := range s.Outcomes {
		out.Outcomes[tx] = o
	}
	return out
}

// Backend is a stable-storage engine: it persists committed versions,
// prepared intentions and outcome records, replays them at open, and
// makes mutations durable on Sync. Implementations are safe for
// concurrent use.
type Backend interface {
	// Load returns a copy of the backend's current contents.
	Load() (*State, error)
	// PutVersion records a committed version of an object.
	PutVersion(id string, v Version) error
	// DeleteVersion removes an object's committed state.
	DeleteVersion(id string) error
	// PutIntention records one prepared write of tx (merging with any
	// earlier write of tx to the same object).
	PutIntention(tx, id string, w Write) error
	// CommitTx folds tx's accumulated intentions into committed versions
	// and drops the intentions.
	CommitTx(tx string) error
	// AbortTx drops tx's intentions.
	AbortTx(tx string) error
	// PutOutcome records tx's outcome code.
	PutOutcome(tx string, outcome uint8) error
	// DeleteOutcome prunes tx's outcome record.
	DeleteOutcome(tx string) error
	// Outcome returns tx's recorded outcome code, if any.
	Outcome(tx string) (uint8, bool, error)
	// Sync makes every preceding mutation durable. It is the commit
	// point: a prepared intention must be Synced before the participant
	// votes commit, and an outcome record before phase two begins.
	Sync() error
	// Close releases the backend's resources. A Mem backend keeps its
	// data (reopening through the same Factory sees it again); a Disk
	// backend flushes and closes its files.
	Close() error
}

// Factory opens (or reopens) a Backend. A store holds its factory so
// that a simulated crash can Close the backend and a recovery can open
// it again: the Mem factory hands back the same live instance, the Disk
// factory replays the directory.
type Factory func() (Backend, error)

// Mem is the in-memory Backend: the simulation's "stable storage that
// survives the crash because we keep the value". The zero value is not
// usable; call NewMem.
type Mem struct {
	mu    sync.Mutex
	state *State
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{state: NewState()} }

// MemFactory returns a Factory that always hands back the same fresh
// Mem instance — close/reopen cycles see the same data, mirroring the
// simulation's crash model.
func MemFactory() Factory {
	m := NewMem()
	return func() (Backend, error) { return m, nil }
}

// Factory returns a Factory handing back this instance.
func (m *Mem) Factory() Factory {
	return func() (Backend, error) { return m, nil }
}

// Load implements Backend.
func (m *Mem) Load() (*State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state.clone(), nil
}

// PutVersion implements Backend.
func (m *Mem) PutVersion(id string, v Version) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state.Versions[id] = v
	return nil
}

// DeleteVersion implements Backend.
func (m *Mem) DeleteVersion(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.state.Versions, id)
	return nil
}

// PutIntention implements Backend.
func (m *Mem) PutIntention(tx, id string, w Write) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	in := m.state.Intentions[tx]
	if in == nil {
		in = make(map[string]Write)
		m.state.Intentions[tx] = in
	}
	in[id] = w
	return nil
}

// CommitTx implements Backend.
func (m *Mem) CommitTx(tx string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for id, w := range m.state.Intentions[tx] {
		m.state.Versions[id] = Version{Data: w.Data, Seq: w.Seq, Tx: tx}
	}
	delete(m.state.Intentions, tx)
	return nil
}

// AbortTx implements Backend.
func (m *Mem) AbortTx(tx string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.state.Intentions, tx)
	return nil
}

// PutOutcome implements Backend.
func (m *Mem) PutOutcome(tx string, outcome uint8) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state.Outcomes[tx] = outcome
	return nil
}

// DeleteOutcome implements Backend.
func (m *Mem) DeleteOutcome(tx string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.state.Outcomes, tx)
	return nil
}

// Outcome implements Backend.
func (m *Mem) Outcome(tx string) (uint8, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	o, ok := m.state.Outcomes[tx]
	return o, ok, nil
}

// OutcomeCount returns the number of recorded outcomes — the size the
// outcome-log GC test asserts shrinks.
func (m *Mem) OutcomeCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.state.Outcomes)
}

// Sync implements Backend; memory is "durable" by definition here.
func (m *Mem) Sync() error { return nil }

// Close implements Backend. The data is retained: the simulation's
// stable store survives the crash that closes it.
func (m *Mem) Close() error { return nil }
