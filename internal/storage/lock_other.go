//go:build !unix

package storage

import "os"

// lockDir on platforms without flock only creates the lock file; the
// dual-open protection is advisory there.
func lockDir(dir string) (*os.File, error) {
	return os.OpenFile(LockPath(dir), os.O_RDWR|os.O_CREATE, 0o644)
}
