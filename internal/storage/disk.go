package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// SyncMode selects how Disk.Sync reaches the platter.
type SyncMode int

// Sync modes.
const (
	// SyncGroup (the default) coalesces concurrent Sync calls: one
	// caller fsyncs on behalf of everyone whose mutations were already
	// appended when the fsync started.
	SyncGroup SyncMode = iota
	// SyncEach runs one fsync per Sync call — the naive per-commit
	// baseline.
	SyncEach
	// SyncNone never fsyncs; durability is left to the OS page cache.
	// For tests that only need the replay path.
	SyncNone
)

// String implements fmt.Stringer.
func (m SyncMode) String() string {
	switch m {
	case SyncGroup:
		return "group"
	case SyncEach:
		return "each"
	case SyncNone:
		return "none"
	default:
		return fmt.Sprintf("syncmode(%d)", int(m))
	}
}

// DiskOptions tunes a Disk backend.
type DiskOptions struct {
	// Sync selects the fsync discipline (default SyncGroup).
	Sync SyncMode
	// CompactAt is the WAL size in bytes that triggers a snapshot +
	// WAL truncation. 0 means the 1 MiB default; negative disables
	// compaction.
	CompactAt int64
}

const defaultCompactAt = 1 << 20

// ErrKilled reports that an injected kill-at-byte limit was hit: the
// append was torn mid-frame and the backend refuses further work, as a
// process dying mid-write would.
var ErrKilled = errors.New("storage: killed at injected byte limit")

// ErrLocked reports that another live backend holds the directory: two
// writers interleaving appends into one WAL would corrupt it, so a
// directory admits one open Disk at a time (the flock dies with its
// process, so crashes never leave a stale lock).
var ErrLocked = errors.New("storage: directory is locked")

// LockPath returns the lock file path inside a Disk backend directory.
func LockPath(dir string) string { return filepath.Join(dir, "lock") }

// WALPath returns the WAL file path inside a Disk backend directory.
func WALPath(dir string) string { return filepath.Join(dir, "wal") }

// SnapshotPath returns the snapshot file path inside a Disk backend
// directory.
func SnapshotPath(dir string) string { return filepath.Join(dir, "snapshot") }

// Disk is the durable Backend: one directory holding an append-only WAL
// and a periodic snapshot. See the package documentation for the record
// format and the crash-safety argument.
type Disk struct {
	dir  string
	opts DiskOptions

	// appendGen counts appended frames; the group-commit path reads it
	// outside mu to know which generation an fsync must cover.
	appendGen atomic.Uint64

	mu        sync.Mutex // guards the fields below and WAL writes
	lock      *os.File   // held flock on the directory
	wal       *os.File
	walSize   int64
	state     *State
	closed    bool
	truncated int64 // torn-tail bytes dropped at open
	scratch   []byte

	// Kill-at-byte injection (chaos harness): when armed, the append
	// that would carry the WAL past killAt is torn at the limit and the
	// backend fails sticky, firing killFn once in its own goroutine.
	killAt int64
	killFn func()
	failed error

	// Group commit.
	syncMu   sync.Mutex
	syncCond *sync.Cond
	synced   uint64 // highest appendGen known durable
	syncing  bool
}

// OpenDisk opens (creating if needed) the engine rooted at dir and
// replays snapshot + WAL, truncating any torn WAL tail.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	if opts.CompactAt == 0 {
		opts.CompactAt = defaultCompactAt
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %s: %w", dir, err)
	}
	d := &Disk{dir: dir, opts: opts, lock: lock, state: NewState()}
	d.syncCond = sync.NewCond(&d.syncMu)
	fail := func(err error) (*Disk, error) {
		lock.Close()
		return nil, err
	}

	if snap, err := os.ReadFile(SnapshotPath(dir)); err == nil {
		if _, err := scanRecords(snap, true, func(r record) { applyRecord(d.state, r) }); err != nil {
			return fail(fmt.Errorf("storage: snapshot %s: %w", dir, err))
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return fail(fmt.Errorf("storage: %w", err))
	}

	wal, err := os.OpenFile(WALPath(dir), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fail(fmt.Errorf("storage: %w", err))
	}
	buf, err := os.ReadFile(WALPath(dir))
	if err != nil {
		wal.Close()
		return fail(fmt.Errorf("storage: %w", err))
	}
	clean, _ := scanRecords(buf, false, func(r record) { applyRecord(d.state, r) })
	if clean < int64(len(buf)) {
		// Torn tail: a crash mid-append left a partial or corrupt frame.
		// Everything before it is intact; drop the tail.
		d.truncated = int64(len(buf)) - clean
		if err := wal.Truncate(clean); err != nil {
			wal.Close()
			return fail(fmt.Errorf("storage: truncate torn tail: %w", err))
		}
	}
	if _, err := wal.Seek(clean, 0); err != nil {
		wal.Close()
		return fail(fmt.Errorf("storage: %w", err))
	}
	d.wal, d.walSize = wal, clean
	return d, nil
}

// DiskFactory returns a Factory that opens dir with opts — the reopen
// hook a disk-backed node's recovery uses.
func DiskFactory(dir string, opts DiskOptions) Factory {
	return func() (Backend, error) { return OpenDisk(dir, opts) }
}

// Dir returns the backend's directory.
func (d *Disk) Dir() string { return d.dir }

// TruncatedAtOpen returns how many torn-tail bytes the open discarded.
func (d *Disk) TruncatedAtOpen() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.truncated
}

// append frames r, writes it to the WAL and applies it to the live
// state. The caller's later Sync makes it durable.
func (d *Disk) append(r record) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.failed != nil {
		return d.failed
	}
	d.scratch = appendRecord(d.scratch[:0], r)
	frame := d.scratch
	if d.killAt > 0 && d.walSize+int64(len(frame)) > d.killAt {
		// Injected death mid-write: tear the frame at the byte limit,
		// poison the backend, and fire the kill callback asynchronously
		// (it typically crashes the owning node, whose shutdown needs
		// locks the failing writer is holding).
		if keep := d.killAt - d.walSize; keep > 0 {
			_, _ = d.wal.Write(frame[:keep])
			d.walSize = d.killAt
		}
		d.failed = ErrKilled
		if fn := d.killFn; fn != nil {
			d.killFn = nil
			go fn()
		}
		return d.failed
	}
	n, err := d.wal.Write(frame)
	d.walSize += int64(n)
	if err != nil {
		d.failed = fmt.Errorf("storage: wal append: %w", err)
		return d.failed
	}
	d.appendGen.Add(1)
	applyRecord(d.state, r)
	return nil
}

// maybeCompact runs a compaction when the WAL has outgrown the
// threshold. It is called from Sync — after the caller's durability is
// settled and outside any caller-held mutex above the backend — so the
// multi-fsync snapshot write never sits on the append path. A failed
// compaction is retried at the next Sync (the WAL just stays longer).
func (d *Disk) maybeCompact() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.failed != nil || d.opts.CompactAt <= 0 || d.walSize < d.opts.CompactAt {
		return
	}
	_ = d.compactLocked()
}

// Load implements Backend.
func (d *Disk) Load() (*State, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	return d.state.clone(), nil
}

// PutVersion implements Backend.
func (d *Disk) PutVersion(id string, v Version) error {
	return d.append(record{tag: recVersion, id: id, tx: v.Tx, seq: v.Seq, data: v.Data})
}

// DeleteVersion implements Backend.
func (d *Disk) DeleteVersion(id string) error {
	return d.append(record{tag: recDeleteVersion, id: id})
}

// PutIntention implements Backend.
func (d *Disk) PutIntention(tx, id string, w Write) error {
	return d.append(record{tag: recIntention, tx: tx, id: id, seq: w.Seq, data: w.Data})
}

// CommitTx implements Backend.
func (d *Disk) CommitTx(tx string) error {
	return d.append(record{tag: recCommitTx, tx: tx})
}

// AbortTx implements Backend.
func (d *Disk) AbortTx(tx string) error {
	return d.append(record{tag: recAbortTx, tx: tx})
}

// PutOutcome implements Backend.
func (d *Disk) PutOutcome(tx string, outcome uint8) error {
	return d.append(record{tag: recOutcome, tx: tx, seq: uint64(outcome)})
}

// DeleteOutcome implements Backend.
func (d *Disk) DeleteOutcome(tx string) error {
	return d.append(record{tag: recDeleteOutcome, tx: tx})
}

// Outcome implements Backend.
func (d *Disk) Outcome(tx string) (uint8, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, false, ErrClosed
	}
	o, ok := d.state.Outcomes[tx]
	return o, ok, nil
}

// Sync implements Backend: it returns only once every mutation appended
// before the call is durable (per the configured SyncMode). It also
// triggers WAL compaction when the threshold is crossed — here rather
// than in append, so the snapshot's fsyncs never run under a caller's
// higher-level mutex.
func (d *Disk) Sync() error {
	if err := d.sync(); err != nil {
		return err
	}
	d.maybeCompact()
	return nil
}

func (d *Disk) sync() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if d.failed != nil {
		err := d.failed
		d.mu.Unlock()
		return err
	}
	mode, wal := d.opts.Sync, d.wal
	if mode == SyncEach {
		defer d.mu.Unlock()
		if err := wal.Sync(); err != nil {
			// A failed fsync may have dropped dirty pages the kernel will
			// never retry (the error flag is consumed); anything appended
			// but unsynced is now a potential hole, so the backend must
			// refuse further work rather than acknowledge records on top
			// of it. Reopen replays exactly the durable prefix.
			d.failed = fmt.Errorf("storage: wal fsync: %w", err)
			return d.failed
		}
		return nil
	}
	d.mu.Unlock()
	if mode == SyncNone {
		return nil
	}

	// Group commit: wait until an fsync round covers our generation,
	// running the round ourselves if nobody else is. A round's error is
	// reported only by the caller that ran it: a waiter woken by a
	// failed round sees synced still short of its target, takes over,
	// and retries the fsync itself — its own data may well be durable
	// regardless of someone else's failed round, and once covered by a
	// successful round it must return nil.
	target := d.appendGen.Load()
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	for d.synced < target {
		if d.syncing {
			d.syncCond.Wait()
			continue
		}
		// Before running a round, re-check the poison set by a failed
		// round: a later fsync returning nil cannot prove the dropped
		// pages made it, so a poisoned backend never re-acknowledges.
		d.syncMu.Unlock()
		d.mu.Lock()
		ferr := d.failed
		d.mu.Unlock()
		d.syncMu.Lock()
		if ferr != nil {
			return ferr
		}
		if d.syncing || d.synced >= target {
			continue // someone else moved while we checked
		}
		d.syncing = true
		d.syncMu.Unlock()
		// Everything appended up to here rides this fsync: bytes written
		// before the fsync starts are covered when it returns.
		cover := d.appendGen.Load()
		err := wal.Sync()
		if err != nil {
			// Poison the backend (see the SyncEach branch): a failed fsync
			// leaves an undetectable hole, and a retry that happens to
			// return nil must not resurrect the durability claim. Lock
			// order is syncMu→mu here; no path holds mu while taking
			// syncMu.
			d.mu.Lock()
			if d.failed == nil {
				d.failed = fmt.Errorf("storage: wal fsync: %w", err)
			}
			d.mu.Unlock()
		}
		d.syncMu.Lock()
		if err == nil && cover > d.synced {
			d.synced = cover
		}
		d.syncing = false
		d.syncCond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// Compact snapshots the current state and truncates the WAL. It runs
// automatically when the WAL passes DiskOptions.CompactAt; tests call it
// directly.
func (d *Disk) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if d.failed != nil {
		return d.failed
	}
	return d.compactLocked()
}

// compactLocked writes the snapshot (tmp + fsync + atomic rename) and
// then truncates the WAL. A crash between rename and truncate leaves
// already-snapshotted records in the WAL; replaying them over the
// snapshot converges to the same state (see the package doc), so the
// order is safe.
func (d *Disk) compactLocked() error {
	tmp := SnapshotPath(d.dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	_, werr := f.Write(encodeState(d.state))
	if werr == nil && d.opts.Sync != SyncNone {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: compact: %w", werr)
	}
	if err := os.Rename(tmp, SnapshotPath(d.dir)); err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	syncDir(d.dir)
	if err := d.wal.Truncate(0); err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	if _, err := d.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("storage: compact: %w", err)
	}
	d.walSize = 0
	return nil
}

// syncDir fsyncs a directory so a rename is durable; best effort on
// platforms where directories cannot be fsynced.
func syncDir(dir string) {
	if f, err := os.Open(dir); err == nil {
		_ = f.Sync()
		f.Close()
	}
}

// Close implements Backend: flush, then close the WAL. Further
// operations return ErrClosed; reopening the directory replays.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var err error
	if d.failed == nil && d.opts.Sync != SyncNone {
		err = d.wal.Sync()
	}
	if cerr := d.wal.Close(); err == nil {
		err = cerr
	}
	// Closing the lock file releases the flock, admitting the next open.
	if cerr := d.lock.Close(); err == nil {
		err = cerr
	}
	return err
}

// FailAfter arms the kill-at-byte injection: the append that would carry
// the WAL past limit bytes is torn mid-frame, the backend fails sticky
// with ErrKilled, and fn (if non-nil) runs once in its own goroutine —
// the chaos harness crashes the owning node there, modelling a process
// dying mid-write.
func (d *Disk) FailAfter(limit int64, fn func()) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.killAt = limit
	d.killFn = fn
}

// ClearFail disarms a FailAfter that has not tripped yet. A tripped
// backend stays failed — the node is expected to crash and reopen.
func (d *Disk) ClearFail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.killAt = 0
	d.killFn = nil
}

// Failed reports whether the backend is poisoned (a tripped injection or
// an I/O error); every further operation returns that error.
func (d *Disk) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed != nil
}

// WALSize returns the current WAL length in bytes.
func (d *Disk) WALSize() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.walSize
}

// CorruptWALTail appends junk bytes to the WAL file of a (closed) disk
// backend directory — the chaos harness's torn-write injection. The next
// open must truncate the junk away.
func CorruptWALTail(dir string, junk []byte) error {
	f, err := os.OpenFile(WALPath(dir), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(junk)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
