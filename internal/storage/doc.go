// Package storage is the stable-storage engine under the reproduction's
// "stable" state: committed object versions, prepared (undecided) 2PC
// intentions, and coordinator outcome records. Everything above it —
// store.Store, the action outcome log, sim node recovery — holds its
// working state in ordinary Go maps and mirrors every mutation through a
// Backend, so that what survives a crash is exactly what the backend made
// durable.
//
// # The Backend contract
//
// A Backend persists three record kinds keyed by strings (object UIDs and
// transaction IDs in their canonical string forms):
//
//   - committed versions       (object -> data, seq, committing tx)
//   - prepared intentions      (tx -> object -> data, seq)
//   - transaction outcomes     (tx -> outcome code)
//
// Mutations are appended in call order; Sync makes every preceding
// mutation durable and is the caller's commit point (a store must Sync a
// prepared intention before voting commit, and a coordinator must Sync
// the commit record before phase two). Load returns a copy of the current
// contents; the caller may mutate the returned maps freely.
//
// Two implementations exist:
//
//   - Mem: maps guarded by a mutex. Nothing touches the filesystem; Sync
//     and Close are no-ops and the data survives Close, which models the
//     paper's simulation default where "stable" means "kept across the
//     simulated crash". Zero-dependency tests run on it unchanged.
//   - Disk: a real per-directory engine — append-only WAL plus periodic
//     snapshot — whose contents survive actual process death.
//
// # WAL record format
//
// The WAL and the snapshot share one framing:
//
//	u32le payload length | payload | u32le CRC-32 (IEEE) of the payload
//
// and one payload layout:
//
//	tag byte
//	uvarint len | tx bytes
//	uvarint len | id bytes
//	uvarint seq            (the outcome code for outcome records)
//	uvarint len | data bytes
//
// Unused fields are empty. Tags: version, delete-version, intention,
// commit-tx, abort-tx, outcome, delete-outcome. A commit-tx record folds
// the transaction's accumulated intention records into committed
// versions at replay, exactly as Store.Commit does in memory; an
// abort-tx record drops them.
//
// # Crash safety
//
// Opening a Disk backend replays snapshot + WAL. The WAL tail is
// untrusted: replay stops at the first record whose frame is incomplete
// or whose CRC fails, and truncates the file there (a torn write from a
// crash mid-append loses only mutations that were never Synced — nothing
// the protocol acknowledged). The snapshot is written to a temporary
// file, fsynced and atomically renamed, so it is either absent or whole;
// WAL truncation happens after the rename. A crash between the two
// leaves pre-snapshot records in the WAL, which is harmless: every
// record's effect is deterministic and last-writer-wins per key, so
// replaying a WAL prefix that the snapshot already includes converges to
// the same state.
//
// # Group commit
//
// With DiskOptions.Sync == SyncGroup (the default), concurrent Sync
// callers coalesce: one caller runs the fsync while the others wait, and
// a single fsync acknowledges every mutation appended before it started.
// Under concurrent commit traffic this collapses N fsyncs into a few
// without weakening durability — a Sync never returns before the bytes
// it covers are on disk. SyncEach runs one fsync per Sync call (the
// naive baseline BenchmarkCommitDurability compares against) and
// SyncNone trusts the OS page cache (tests that only need the replay
// path).
package storage
