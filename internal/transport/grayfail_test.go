package transport

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestDelayRepliesModelsGrayFailure verifies the gray-failure primitive:
// the handler executes (the side effect stands) but the reply is held
// past the caller's deadline, so the caller observes a timeout — the
// worst-case ambiguity, not a clean refusal.
func TestDelayRepliesModelsGrayFailure(t *testing.T) {
	var executed atomic.Int64
	n := NewMem(MemOptions{}, NewFaultsSeeded(1))
	n.Register("b", func(ctx context.Context, req Request) ([]byte, error) {
		executed.Add(1)
		return []byte("ok"), nil
	})
	n.Faults().DelayReplies(1, -1, 500*time.Millisecond, To("b"))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Call(ctx, Request{From: "a", To: "b"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Fatalf("caller waited %v; the deadline should have cut the hold short", elapsed)
	}
	if executed.Load() != 1 {
		t.Fatalf("handler executed %d times, want 1 (gray failure executes, then stalls)", executed.Load())
	}

	// An unhurried caller gets the reply after the hold.
	start = time.Now()
	resp, err := n.Call(context.Background(), Request{From: "a", To: "b"})
	if err != nil || string(resp) != "ok" {
		t.Fatalf("patient call: resp=%q err=%v", resp, err)
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Fatalf("patient call returned in %v, want the full ~500ms hold", elapsed)
	}

	// Clear removes the rule.
	n.Faults().Clear()
	start = time.Now()
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); err != nil {
		t.Fatalf("post-clear call: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("post-clear call still delayed (%v)", elapsed)
	}
}
