package transport

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

// BenchmarkMuxPipelining measures concurrent call throughput between one
// node pair on the multiplexed transport versus the pooled conn-per-call
// transport. The mux variant rides a single connection regardless of
// parallelism; the pooled variant needs one socket per in-flight call.
func BenchmarkMuxPipelining(b *testing.B) {
	handler := func(ctx context.Context, req Request) ([]byte, error) {
		return req.Payload, nil
	}
	bench := func(b *testing.B, net Network) {
		payload := []byte("benchmark-payload-64-bytes-of-representative-invoke-args......")
		var failed atomic.Int64
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			ctx := context.Background()
			for pb.Next() {
				if _, err := net.Call(ctx, Request{From: "cli", To: "srv", Service: "s", Method: "m", Payload: payload}); err != nil {
					failed.Add(1)
				}
			}
		})
		b.StopTimer()
		if n := failed.Load(); n > 0 {
			b.Fatalf("%d calls failed", n)
		}
	}
	b.Run("mux", func(b *testing.B) {
		tm := NewTCPMux()
		defer tm.Close()
		tm.Register("srv", handler)
		bench(b, tm)
		if d := tm.dials.Load(); d != 1 {
			b.Fatalf("dials = %d, want 1", d)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		tn := NewTCP()
		defer tn.Close()
		tn.Register("srv", handler)
		bench(b, tn)
	})
	for _, inflight := range []int{4, 16} {
		b.Run(fmt.Sprintf("mux-inflight-%d", inflight), func(b *testing.B) {
			tm := NewTCPMux()
			defer tm.Close()
			tm.Register("srv", handler)
			b.SetParallelism(inflight)
			bench(b, tm)
		})
	}
}
