package transport

import (
	"context"
	"fmt"
)

// Faulty wraps any inner Network with a programmable Faults plan, applying
// the same fault pipeline Mem applies natively: partitions and request
// drops before delivery, observer hooks, reorder holds, injected delays,
// duplicate deliveries, and reply drops after the handler has executed.
// It exists so the chaos harness can run its seeded nemesis schedules over
// the real-socket transports (the mux transport in particular) instead of
// only over Mem.
type Faulty struct {
	inner  Network
	faults *Faults
}

var _ Network = (*Faulty)(nil)

// NewFaulty wraps inner with plan (a fresh empty plan when nil).
func NewFaulty(inner Network, plan *Faults) *Faulty {
	if plan == nil {
		plan = NewFaults()
	}
	return &Faulty{inner: inner, faults: plan}
}

// Faults returns the wrapper's fault plan.
func (f *Faulty) Faults() *Faults { return f.faults }

// Inner returns the wrapped network (for transport-specific teardown).
func (f *Faulty) Inner() Network { return f.inner }

// Register implements Network.
func (f *Faulty) Register(addr Addr, h Handler) { f.inner.Register(addr, h) }

// Unregister implements Network.
func (f *Faulty) Unregister(addr Addr) { f.inner.Unregister(addr) }

// Call implements Network: the fault pipeline runs around the inner
// network's delivery, in the same order as Mem.Call so a seeded schedule
// draws its coin flips identically on either carrier.
func (f *Faulty) Call(ctx context.Context, req Request) ([]byte, error) {
	if f.faults.partitioned(req.From, req.To) {
		return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
	}
	if f.faults.shouldDropRequest(req) {
		return nil, fmt.Errorf("%s -> %s %s.%s: %w", req.From, req.To, req.Service, req.Method, ErrRequestLost)
	}
	f.faults.runRequestHooks(req)
	if err := f.faults.holdForReorder(ctx, req); err != nil {
		return nil, err
	}
	if err := sleepCtx(ctx, f.faults.requestDelay(req)); err != nil {
		return nil, err
	}
	resp, err := f.inner.Call(ctx, req)
	if f.faults.shouldDuplicate(req) {
		// A duplicated network message: deliver the request a second time;
		// the caller sees the first delivery's reply (see Mem.Call).
		_, _ = f.inner.Call(ctx, req)
	}
	if derr := sleepCtx(ctx, f.faults.replyDelay(req)); derr != nil {
		return nil, derr
	}
	f.faults.runReplyHooks(req)
	if f.faults.shouldDropReply(req) {
		return nil, fmt.Errorf("%s -> %s %s.%s: %w", req.From, req.To, req.Service, req.Method, ErrReplyLost)
	}
	return resp, err
}
