package transport

import (
	"context"
	"errors"
	"os"
	"sync/atomic"
	"testing"
	"time"
)

// TestTCPSlowPeerCallTimeout covers the slow-peer hole: a peer that
// accepts the connection and then hangs mid-reply must fail the call at
// the per-call deadline instead of pinning the caller (and its pooled
// connection) forever.
func TestTCPSlowPeerCallTimeout(t *testing.T) {
	n := NewTCP()
	n.CallTimeout = 100 * time.Millisecond
	defer n.Close()
	var hang atomic.Bool
	release := make(chan struct{})
	n.Register("b", func(ctx context.Context, req Request) ([]byte, error) {
		if hang.Load() {
			<-release
		}
		return append([]byte("echo:"), req.Payload...), nil
	})
	defer close(release)

	hang.Store(true)
	start := time.Now()
	_, err := n.Call(context.Background(), Request{From: "a", To: "b", Payload: []byte("x")})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call to hanging peer succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline error", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("call took %v; the deadline did not bound it", elapsed)
	}

	// Pool hygiene: the wedged connection must NOT have been returned to
	// the pool, or the next call would inherit a dead gob stream.
	n.mu.RLock()
	ep := n.listeners["b"]
	n.mu.RUnlock()
	ep.poolMu.Lock()
	idle := len(ep.idle)
	ep.poolMu.Unlock()
	if idle != 0 {
		t.Fatalf("wedged connection returned to pool (idle=%d)", idle)
	}

	// The endpoint is healthy again: a fresh call must work first try.
	hang.Store(false)
	resp, err := n.Call(context.Background(), Request{From: "a", To: "b", Payload: []byte("y")})
	if err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
	if string(resp) != "echo:y" {
		t.Fatalf("resp = %q", resp)
	}
}

// TestTCPContextDeadlineWins verifies an earlier context deadline
// overrides the per-call timeout.
func TestTCPContextDeadlineWins(t *testing.T) {
	n := NewTCP()
	n.CallTimeout = 10 * time.Second
	defer n.Close()
	release := make(chan struct{})
	n.Register("b", func(ctx context.Context, req Request) ([]byte, error) {
		<-release
		return nil, nil
	})
	defer close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Call(ctx, Request{From: "a", To: "b"})
	if err == nil {
		t.Fatal("call succeeded past its context deadline")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("call took %v; the context deadline did not bound it", elapsed)
	}
}
