package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func echoHandler(ctx context.Context, req Request) ([]byte, error) {
	return append([]byte("echo:"), req.Payload...), nil
}

func TestMemCallRoundTrip(t *testing.T) {
	n := NewMem(MemOptions{}, nil)
	n.Register("b", echoHandler)
	resp, err := n.Call(context.Background(), Request{From: "a", To: "b", Service: "s", Method: "m", Payload: []byte("hi")})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "echo:hi" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestMemUnreachable(t *testing.T) {
	n := NewMem(MemOptions{}, nil)
	_, err := n.Call(context.Background(), Request{From: "a", To: "ghost"})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	n.Register("b", echoHandler)
	n.Unregister("b")
	_, err = n.Call(context.Background(), Request{From: "a", To: "b"})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("after unregister err = %v, want ErrUnreachable", err)
	}
}

func TestMemRequestLostMeansNoExecution(t *testing.T) {
	n := NewMem(MemOptions{}, nil)
	var executed atomic.Int32
	n.Register("b", func(ctx context.Context, req Request) ([]byte, error) {
		executed.Add(1)
		return nil, nil
	})
	n.Faults().DropRequests(1, To("b"))
	_, err := n.Call(context.Background(), Request{From: "a", To: "b"})
	if !errors.Is(err, ErrRequestLost) {
		t.Fatalf("err = %v, want ErrRequestLost", err)
	}
	if executed.Load() != 0 {
		t.Fatal("handler executed despite dropped request")
	}
	// Rule was one-shot: the next call succeeds.
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); err != nil {
		t.Fatalf("second call: %v", err)
	}
	if executed.Load() != 1 {
		t.Fatalf("executed = %d, want 1", executed.Load())
	}
}

func TestMemReplyLostMeansExecution(t *testing.T) {
	// The Figure 1 scenario: the operation happens but the caller cannot
	// observe it.
	n := NewMem(MemOptions{}, nil)
	var executed atomic.Int32
	n.Register("b", func(ctx context.Context, req Request) ([]byte, error) {
		executed.Add(1)
		return []byte("done"), nil
	})
	n.Faults().DropReplies(1, Between("a", "b"))
	_, err := n.Call(context.Background(), Request{From: "a", To: "b"})
	if !errors.Is(err, ErrReplyLost) {
		t.Fatalf("err = %v, want ErrReplyLost", err)
	}
	if executed.Load() != 1 {
		t.Fatal("handler should have executed before reply loss")
	}
}

func TestMemPartitionAndHeal(t *testing.T) {
	n := NewMem(MemOptions{}, nil)
	n.Register("b", echoHandler)
	n.Faults().Partition("a", "b")
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned err = %v", err)
	}
	// Partition is symmetric.
	n.Register("a", echoHandler)
	if _, err := n.Call(context.Background(), Request{From: "b", To: "a"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("reverse partitioned err = %v", err)
	}
	// Other pairs unaffected.
	n.Register("c", echoHandler)
	if _, err := n.Call(context.Background(), Request{From: "a", To: "c"}); err != nil {
		t.Fatalf("unrelated pair err = %v", err)
	}
	n.Faults().Heal("a", "b")
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); err != nil {
		t.Fatalf("healed err = %v", err)
	}
}

func TestMemFaultRuleScoping(t *testing.T) {
	n := NewMem(MemOptions{}, nil)
	n.Register("b", echoHandler)
	n.Register("c", echoHandler)
	n.Faults().DropRequests(-1, ToService("b", "svc1"))
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b", Service: "svc1"}); !errors.Is(err, ErrRequestLost) {
		t.Fatalf("svc1 err = %v", err)
	}
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b", Service: "svc2"}); err != nil {
		t.Fatalf("svc2 err = %v", err)
	}
	if _, err := n.Call(context.Background(), Request{From: "a", To: "c", Service: "svc1"}); err != nil {
		t.Fatalf("other node err = %v", err)
	}
}

func TestMemFaultsClear(t *testing.T) {
	n := NewMem(MemOptions{}, nil)
	n.Register("b", echoHandler)
	n.Faults().DropRequests(-1, To("b"))
	n.Faults().Partition("a", "b")
	n.Faults().Clear()
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); err != nil {
		t.Fatalf("after clear err = %v", err)
	}
}

func TestMemLatencyAndContextCancel(t *testing.T) {
	n := NewMem(MemOptions{BaseLatency: 50 * time.Millisecond}, nil)
	n.Register("b", echoHandler)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := n.Call(ctx, Request{From: "a", To: "b"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("cancel took too long: %v", elapsed)
	}
}

func TestMemJitterDeterministicWithSeed(t *testing.T) {
	measure := func(seed int64) []time.Duration {
		n := NewMem(MemOptions{Jitter: 5 * time.Millisecond, Seed: seed}, nil)
		n.Register("b", echoHandler)
		var out []time.Duration
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); err != nil {
				t.Fatalf("call: %v", err)
			}
			out = append(out, time.Since(start))
		}
		return out
	}
	// Just verify both seeds produce calls that complete; precise timing
	// equality is not assertable on a shared machine.
	if got := measure(1); len(got) != 3 {
		t.Fatal("expected 3 timings")
	}
}

func TestMemConcurrentCalls(t *testing.T) {
	n := NewMem(MemOptions{}, nil)
	var count atomic.Int64
	n.Register("b", func(ctx context.Context, req Request) ([]byte, error) {
		count.Add(1)
		return req.Payload, nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("p%d", i))
			resp, err := n.Call(context.Background(), Request{From: "a", To: "b", Payload: payload})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if string(resp) != string(payload) {
				t.Errorf("call %d: resp %q != payload %q", i, resp, payload)
			}
		}(i)
	}
	wg.Wait()
	if count.Load() != 32 {
		t.Fatalf("handler ran %d times, want 32", count.Load())
	}
}

func TestTCPRoundTrip(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	n.Register("b", echoHandler)
	resp, err := n.Call(context.Background(), Request{From: "a", To: "b", Service: "s", Method: "m", Payload: []byte("over-tcp")})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != "echo:over-tcp" {
		t.Fatalf("resp = %q", resp)
	}
}

func TestTCPErrorPropagation(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	n.Register("b", func(ctx context.Context, req Request) ([]byte, error) {
		return nil, errors.New("boom")
	})
	_, err := n.Call(context.Background(), Request{From: "a", To: "b"})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestTCPUnregisterUnreachable(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	n.Register("b", echoHandler)
	n.Unregister("b")
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
}

func TestTCPConcurrent(t *testing.T) {
	n := NewTCP()
	defer n.Close()
	n.Register("b", echoHandler)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := []byte(fmt.Sprintf("x%d", i))
			resp, err := n.Call(context.Background(), Request{From: "a", To: "b", Payload: p})
			if err != nil {
				t.Errorf("call: %v", err)
				return
			}
			if string(resp) != "echo:"+string(p) {
				t.Errorf("resp = %q", resp)
			}
		}(i)
	}
	wg.Wait()
}
