package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP is a Network implementation over real loopback sockets using
// encoding/gob framing. It exists to demonstrate that every protocol in the
// repository is transport-agnostic: the integration tests run the full
// naming-and-binding stack over TCP unchanged.
//
// Each registered address gets its own listener on 127.0.0.1; an internal
// directory maps Addr to the listener's host:port. Client connections are
// pooled per endpoint (with their gob stream state), so the steady-state
// cost of a call is one request/reply exchange rather than a fresh dial
// plus gob type-dictionary transfer every time. Faults and partitions are
// not supported on TCP (use Mem for fault experiments).
type TCP struct {
	// CallTimeout bounds every call's socket I/O when the caller's context
	// carries no (or a later) deadline: the connection deadline is the
	// earlier of ctx's deadline and now+CallTimeout. Without it a peer
	// that accepts the connection and then hangs mid-reply would pin the
	// calling goroutine — and its pooled connection — forever. Zero
	// selects DefaultCallTimeout; set it before issuing calls.
	CallTimeout time.Duration

	mu        sync.RWMutex
	listeners map[Addr]*tcpEndpoint
	closed    bool
}

// DefaultCallTimeout is the per-call socket deadline applied when neither
// TCP.CallTimeout nor the context bounds the call. Generous on purpose:
// it exists to turn "hangs forever" into "fails eventually", not to race
// legitimate slow operations (long lock waits ride TCP calls too).
const DefaultCallTimeout = 30 * time.Second

var _ Network = (*TCP)(nil)

// maxIdleConns bounds the pooled client connections kept per endpoint.
const maxIdleConns = 8

type tcpEndpoint struct {
	ln      net.Listener
	handler Handler
	done    chan struct{}
	wg      sync.WaitGroup

	poolMu sync.Mutex
	idle   []*tcpConn

	// servingMu guards the accepted server-side connections, which must be
	// closed on stop: pooled clients keep connections open between calls,
	// so the per-connection server goroutines no longer exit on their own.
	servingMu sync.Mutex
	serving   map[net.Conn]struct{}
}

// tcpConn is one pooled client connection with its gob stream state (the
// encoder/decoder pair must live as long as the connection: gob sends each
// type's wire description only once per stream).
type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// getConn returns a pooled connection or dials a new one. pooled reports
// whether the connection was reused (a write failure on a reused
// connection is safely retriable — the server never saw the request).
func (ep *tcpEndpoint) getConn(ctx context.Context) (c *tcpConn, pooled bool, err error) {
	ep.poolMu.Lock()
	if n := len(ep.idle); n > 0 {
		c = ep.idle[n-1]
		ep.idle = ep.idle[:n-1]
		ep.poolMu.Unlock()
		return c, true, nil
	}
	ep.poolMu.Unlock()
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", ep.ln.Addr().String())
	if err != nil {
		return nil, false, err
	}
	return &tcpConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, false, nil
}

// putConn returns a healthy connection to the pool (closing it instead if
// the endpoint stopped or the pool is full).
func (ep *tcpEndpoint) putConn(c *tcpConn) {
	select {
	case <-ep.done:
		c.conn.Close()
		return
	default:
	}
	ep.poolMu.Lock()
	if len(ep.idle) < maxIdleConns {
		ep.idle = append(ep.idle, c)
		ep.poolMu.Unlock()
		return
	}
	ep.poolMu.Unlock()
	c.conn.Close()
}

// closeIdle closes all pooled connections.
func (ep *tcpEndpoint) closeIdle() {
	ep.poolMu.Lock()
	idle := ep.idle
	ep.idle = nil
	ep.poolMu.Unlock()
	for _, c := range idle {
		c.conn.Close()
	}
}

// wireRequest is the on-the-wire request record.
type wireRequest struct {
	From    string
	To      string
	Service string
	Method  string
	Payload []byte
}

// wireReply is the on-the-wire reply record.
type wireReply struct {
	Payload []byte
	Err     string
	HasErr  bool
}

// NewTCP returns an empty TCP network.
func NewTCP() *TCP {
	return &TCP{listeners: make(map[Addr]*tcpEndpoint)}
}

// Register implements Network: it opens a loopback listener for addr and
// serves requests on it until Unregister or Close.
func (t *TCP) Register(addr Addr, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if old, ok := t.listeners[addr]; ok {
		old.stop()
		delete(t.listeners, addr)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		// Loopback listen failing means the host cannot run the suite at
		// all; surface loudly rather than return a half-registered network.
		panic(fmt.Sprintf("transport: tcp listen: %v", err))
	}
	ep := &tcpEndpoint{ln: ln, handler: h, done: make(chan struct{})}
	t.listeners[addr] = ep
	ep.wg.Add(1)
	go ep.serve()
}

func (ep *tcpEndpoint) stop() {
	close(ep.done)
	ep.ln.Close()
	ep.closeIdle()
	ep.servingMu.Lock()
	for conn := range ep.serving {
		conn.Close()
	}
	ep.servingMu.Unlock()
	ep.wg.Wait()
}

func (ep *tcpEndpoint) track(conn net.Conn) {
	ep.servingMu.Lock()
	if ep.serving == nil {
		ep.serving = make(map[net.Conn]struct{})
	}
	ep.serving[conn] = struct{}{}
	ep.servingMu.Unlock()
}

func (ep *tcpEndpoint) untrack(conn net.Conn) {
	ep.servingMu.Lock()
	delete(ep.serving, conn)
	ep.servingMu.Unlock()
}

func (ep *tcpEndpoint) serve() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			select {
			case <-ep.done:
				return
			default:
				return
			}
		}
		ep.track(conn)
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			defer ep.untrack(conn)
			defer conn.Close()
			ep.handleConn(conn)
		}()
	}
}

func (ep *tcpEndpoint) handleConn(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var wreq wireRequest
		if err := dec.Decode(&wreq); err != nil {
			return
		}
		resp, err := ep.handler(context.Background(), Request{
			From:    Addr(wreq.From),
			To:      Addr(wreq.To),
			Service: wreq.Service,
			Method:  wreq.Method,
			Payload: wreq.Payload,
		})
		wrep := wireReply{Payload: resp}
		if err != nil {
			wrep.HasErr = true
			wrep.Err = err.Error()
		}
		if err := enc.Encode(&wrep); err != nil {
			return
		}
	}
}

// Unregister implements Network.
func (t *TCP) Unregister(addr Addr) {
	t.mu.Lock()
	ep, ok := t.listeners[addr]
	if ok {
		delete(t.listeners, addr)
	}
	t.mu.Unlock()
	if ok {
		ep.stop()
	}
}

// Call implements Network over a pooled connection to the destination's
// listener. A stale pooled connection (closed by the server since its
// last use) fails on the request write before the server can have seen
// the request, so the call safely retries once on a freshly dialed
// connection; failures after the write are never retried — the operation
// may have executed, which is exactly the ambiguity the upper layers'
// commit protocols are built to handle.
func (t *TCP) Call(ctx context.Context, req Request) ([]byte, error) {
	t.mu.RLock()
	ep, ok := t.listeners[req.To]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
	}
	wreq := wireRequest{
		From:    string(req.From),
		To:      string(req.To),
		Service: req.Service,
		Method:  req.Method,
		Payload: req.Payload,
	}
	callTimeout := t.CallTimeout
	if callTimeout <= 0 {
		callTimeout = DefaultCallTimeout
	}
	for attempt := 0; ; attempt++ {
		c, pooled, err := ep.getConn(ctx)
		if err != nil {
			return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
		}
		// Per-call deadline: the earlier of the context's deadline and the
		// network's call timeout. A context WITHOUT a deadline previously
		// meant an unbounded read — a peer hanging mid-reply held both the
		// caller and the pooled connection until process death.
		deadline := time.Now().Add(callTimeout)
		if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
			deadline = dl
		}
		if err := c.conn.SetDeadline(deadline); err != nil {
			c.conn.Close()
			return nil, err
		}
		if err := c.enc.Encode(&wreq); err != nil {
			c.conn.Close()
			if pooled && attempt == 0 {
				continue // stale pooled connection; the server never saw the request
			}
			return nil, fmt.Errorf("%s -> %s: encode: %w", req.From, req.To, err)
		}
		var wrep wireReply
		if err := c.dec.Decode(&wrep); err != nil {
			c.conn.Close()
			return nil, fmt.Errorf("%s -> %s: decode: %w", req.From, req.To, err)
		}
		ep.putConn(c)
		if wrep.HasErr {
			return wrep.Payload, errors.New(wrep.Err)
		}
		return wrep.Payload, nil
	}
}

// Close shuts down all listeners. The network is unusable afterwards.
func (t *TCP) Close() {
	t.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(t.listeners))
	for _, ep := range t.listeners {
		eps = append(eps, ep)
	}
	t.listeners = make(map[Addr]*tcpEndpoint)
	t.closed = true
	t.mu.Unlock()
	for _, ep := range eps {
		ep.stop()
	}
}
