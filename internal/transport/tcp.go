package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// TCP is a Network implementation over real loopback sockets using
// encoding/gob framing. It exists to demonstrate that every protocol in the
// repository is transport-agnostic: the integration tests run the full
// naming-and-binding stack over TCP unchanged.
//
// Each registered address gets its own listener on 127.0.0.1; an internal
// directory maps Addr to the listener's host:port. Faults and partitions
// are not supported on TCP (use Mem for fault experiments).
type TCP struct {
	mu        sync.RWMutex
	listeners map[Addr]*tcpEndpoint
	closed    bool
}

var _ Network = (*TCP)(nil)

type tcpEndpoint struct {
	ln      net.Listener
	handler Handler
	done    chan struct{}
	wg      sync.WaitGroup
}

// wireRequest is the on-the-wire request record.
type wireRequest struct {
	From    string
	To      string
	Service string
	Method  string
	Payload []byte
}

// wireReply is the on-the-wire reply record.
type wireReply struct {
	Payload []byte
	Err     string
	HasErr  bool
}

// NewTCP returns an empty TCP network.
func NewTCP() *TCP {
	return &TCP{listeners: make(map[Addr]*tcpEndpoint)}
}

// Register implements Network: it opens a loopback listener for addr and
// serves requests on it until Unregister or Close.
func (t *TCP) Register(addr Addr, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if old, ok := t.listeners[addr]; ok {
		old.stop()
		delete(t.listeners, addr)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		// Loopback listen failing means the host cannot run the suite at
		// all; surface loudly rather than return a half-registered network.
		panic(fmt.Sprintf("transport: tcp listen: %v", err))
	}
	ep := &tcpEndpoint{ln: ln, handler: h, done: make(chan struct{})}
	t.listeners[addr] = ep
	ep.wg.Add(1)
	go ep.serve()
}

func (ep *tcpEndpoint) stop() {
	close(ep.done)
	ep.ln.Close()
	ep.wg.Wait()
}

func (ep *tcpEndpoint) serve() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			select {
			case <-ep.done:
				return
			default:
				return
			}
		}
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			defer conn.Close()
			ep.handleConn(conn)
		}()
	}
}

func (ep *tcpEndpoint) handleConn(conn net.Conn) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var wreq wireRequest
		if err := dec.Decode(&wreq); err != nil {
			return
		}
		resp, err := ep.handler(context.Background(), Request{
			From:    Addr(wreq.From),
			To:      Addr(wreq.To),
			Service: wreq.Service,
			Method:  wreq.Method,
			Payload: wreq.Payload,
		})
		wrep := wireReply{Payload: resp}
		if err != nil {
			wrep.HasErr = true
			wrep.Err = err.Error()
		}
		if err := enc.Encode(&wrep); err != nil {
			return
		}
	}
}

// Unregister implements Network.
func (t *TCP) Unregister(addr Addr) {
	t.mu.Lock()
	ep, ok := t.listeners[addr]
	if ok {
		delete(t.listeners, addr)
	}
	t.mu.Unlock()
	if ok {
		ep.stop()
	}
}

// Call implements Network by dialing the destination's listener per call.
// Per-call dialing is deliberately simple; connection pooling is an
// optimisation the experiments do not need.
func (t *TCP) Call(ctx context.Context, req Request) ([]byte, error) {
	t.mu.RLock()
	ep, ok := t.listeners[req.To]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", ep.ln.Addr().String())
	if err != nil {
		return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		if err := conn.SetDeadline(dl); err != nil {
			return nil, err
		}
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(&wireRequest{
		From:    string(req.From),
		To:      string(req.To),
		Service: req.Service,
		Method:  req.Method,
		Payload: req.Payload,
	}); err != nil {
		return nil, fmt.Errorf("%s -> %s: encode: %w", req.From, req.To, err)
	}
	var wrep wireReply
	if err := dec.Decode(&wrep); err != nil {
		return nil, fmt.Errorf("%s -> %s: decode: %w", req.From, req.To, err)
	}
	if wrep.HasErr {
		return wrep.Payload, errors.New(wrep.Err)
	}
	return wrep.Payload, nil
}

// Close shuts down all listeners. The network is unusable afterwards.
func (t *TCP) Close() {
	t.mu.Lock()
	eps := make([]*tcpEndpoint, 0, len(t.listeners))
	for _, ep := range t.listeners {
		eps = append(eps, ep)
	}
	t.listeners = make(map[Addr]*tcpEndpoint)
	t.closed = true
	t.mu.Unlock()
	for _, ep := range eps {
		ep.stop()
	}
}
