// Package transport provides the message-passing substrate for the
// simulated distributed system.
//
// The paper (§2.1) assumes fail-silent nodes connected by a local-area
// network, with operation invocation performed via RPC (§2.2). This package
// supplies the RPC carrier with exactly the failure modes the paper's
// protocols must tolerate:
//
//   - an unreachable callee (node crashed, unregistered, or partitioned),
//   - a lost request (the callee never executes the operation), and
//   - a lost reply (the callee DID execute the operation but the caller
//     cannot tell — the scenario of the paper's Figure 1).
//
// Two implementations are provided: Mem, an in-memory network with
// deterministic, injectable faults (used by all experiments), and TCP
// (tcp.go), a real-socket variant over loopback demonstrating that the
// protocol stack is transport-agnostic.
package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Addr names an endpoint, conventionally the node name (e.g. "alpha").
type Addr string

// Request is one RPC request. Service and Method select the handler-side
// dispatch; Payload is an opaque encoded argument record.
type Request struct {
	From    Addr
	To      Addr
	Service string
	Method  string
	Payload []byte
}

// Handler processes a request at the callee and returns an encoded reply.
type Handler func(ctx context.Context, req Request) ([]byte, error)

// Network is the carrier abstraction: endpoints register a handler under
// an address; Call performs a synchronous RPC.
type Network interface {
	// Register installs h as the handler for addr. Registering an address
	// twice replaces the handler.
	Register(addr Addr, h Handler)
	// Unregister removes the handler for addr; subsequent calls to it fail
	// with ErrUnreachable. Unregistering an unknown address is a no-op.
	Unregister(addr Addr)
	// Call sends req and waits for the reply or a failure.
	Call(ctx context.Context, req Request) ([]byte, error)
}

// Sentinel errors. Callers distinguish "operation certainly did not happen"
// (ErrUnreachable, ErrRequestLost) from "operation may have happened"
// (ErrReplyLost, context deadline) exactly as the paper's commit protocols
// must.
var (
	// ErrUnreachable reports that the destination has no live endpoint:
	// the node is crashed, never registered, or partitioned away.
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrRequestLost reports that the request was dropped before delivery;
	// the remote operation did not execute.
	ErrRequestLost = errors.New("transport: request lost")
	// ErrReplyLost reports that the remote operation executed but its reply
	// was dropped — the caller cannot observe the outcome.
	ErrReplyLost = errors.New("transport: reply lost")
	// ErrOverloaded reports client-side backpressure: the connection to
	// the destination already carries its maximum number of in-flight
	// calls. The request was never sent — the operation certainly did not
	// happen — and the caller should back off and retry rather than pile
	// more load onto the saturated link.
	ErrOverloaded = errors.New("transport: connection overloaded")
)

// FaultRule inspects a request and decides whether a fault fires for it.
type FaultRule func(req Request) bool

// Faults is a programmable fault plan shared by a Mem network. All methods
// are safe for concurrent use.
//
// Two rule families coexist. The deterministic rules (DropRequests,
// DropReplies, Partition) fire whenever they match, exactly as the
// hand-built experiment scenarios need. The probabilistic rules
// (DropRequestsP, DelayRequests, DuplicateRequests, ReorderRequests, …)
// additionally flip a coin drawn from a seeded source, which is what a
// randomized chaos schedule needs: the installed plan is fully determined
// by the seed, and the coin flips are reproducible in message-arrival
// order. Observer hooks (OnRequest/OnReply) let a nemesis react to traffic
// — e.g. crash a node the moment its prepare acknowledgement leaves —
// without perturbing it.
type Faults struct {
	mu           sync.Mutex
	rng          *rand.Rand
	dropRequests []*faultEntry
	dropReplies  []*faultEntry
	delays       []*faultEntry
	replyDelays  []*faultEntry
	duplicates   []*faultEntry
	reorders     []*faultEntry
	reqHooks     []*faultEntry
	replyHooks   []*faultEntry
	partitions   map[[2]Addr]bool
	// healHook, when set, observes Heal(a, b) calls and Clear (as two empty
	// addresses). The simulation layer uses it to reset circuit breakers
	// when the fault plan heals, so a breaker opened by an injected fault
	// does not outlive the fault itself.
	healHook func(a, b Addr)
}

type faultEntry struct {
	rule      FaultRule
	remaining int     // -1 = unlimited
	p         float64 // firing probability in [0, 1]; deterministic rules use 1
	delay     time.Duration
	hook      func(Request)
	// parked is the release channel of a request held back by a reorder
	// rule, nil when none is waiting. Closing it releases the request.
	parked chan struct{}
}

// NewFaults returns an empty fault plan. Probabilistic rules draw from a
// source seeded with 0; use NewFaultsSeeded or Reseed for chaos schedules.
func NewFaults() *Faults {
	return NewFaultsSeeded(0)
}

// NewFaultsSeeded returns an empty fault plan whose probabilistic rules
// draw from a source seeded with seed.
func NewFaultsSeeded(seed int64) *Faults {
	return &Faults{
		rng:        rand.New(rand.NewSource(seed)),
		partitions: make(map[[2]Addr]bool),
	}
}

// Reseed resets the source behind the probabilistic rules, so a chaos
// schedule replayed from the same seed draws the same coin flips (in
// message-arrival order).
func (f *Faults) Reseed(seed int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rng = rand.New(rand.NewSource(seed))
}

// DropRequests installs a rule that drops matching requests. count limits
// how many times the rule fires; count < 0 means unlimited.
func (f *Faults) DropRequests(count int, rule FaultRule) {
	f.addEntry(&f.dropRequests, &faultEntry{rule: rule, remaining: count, p: 1})
}

// DropRequestsP installs a rule that drops matching requests with
// probability p per match. count < 0 means unlimited.
func (f *Faults) DropRequestsP(p float64, count int, rule FaultRule) {
	f.addEntry(&f.dropRequests, &faultEntry{rule: rule, remaining: count, p: p})
}

// DropReplies installs a rule that drops the reply of matching requests
// after the handler has executed. count < 0 means unlimited.
func (f *Faults) DropReplies(count int, rule FaultRule) {
	f.addEntry(&f.dropReplies, &faultEntry{rule: rule, remaining: count, p: 1})
}

// DropRepliesP installs a rule that drops the reply of matching requests
// with probability p per match, after the handler has executed. count < 0
// means unlimited.
func (f *Faults) DropRepliesP(p float64, count int, rule FaultRule) {
	f.addEntry(&f.dropReplies, &faultEntry{rule: rule, remaining: count, p: p})
}

// DelayRequests installs a rule that adds an extra delay, drawn uniformly
// from [0, max), to the request leg of matching requests with probability
// p per match. count < 0 means unlimited.
func (f *Faults) DelayRequests(p float64, count int, max time.Duration, rule FaultRule) {
	f.addEntry(&f.delays, &faultEntry{rule: rule, remaining: count, p: p, delay: max})
}

// DelayReplies installs a rule that holds the reply of matching requests
// back for exactly hold, with probability p per match, AFTER the handler
// has executed. count < 0 means unlimited. Unlike DelayRequests the hold
// is deterministic, not drawn from [0, hold): the rule models a gray
// failure — a node that accepts connections and executes operations but
// is too sick to answer in time — where the defining property is that the
// caller's deadline expires while the operation's side effects stand.
func (f *Faults) DelayReplies(p float64, count int, hold time.Duration, rule FaultRule) {
	f.addEntry(&f.replyDelays, &faultEntry{rule: rule, remaining: count, p: p, delay: hold})
}

// DuplicateRequests installs a rule that delivers matching requests twice
// — the handler executes a second time after the first delivery, modelling
// a duplicated network message — with probability p per match. The caller
// receives the first reply. Target only methods that are idempotent by
// contract (store prepare/commit/abort, sequenced group deliveries);
// duplicating a non-idempotent method is the fault being tested for, not a
// harness feature. count < 0 means unlimited.
func (f *Faults) DuplicateRequests(p float64, count int, rule FaultRule) {
	f.addEntry(&f.duplicates, &faultEntry{rule: rule, remaining: count, p: p})
}

// ReorderRequests installs a rule that reorders matching requests: a
// matching request is parked until the next matching request arrives (and
// overtakes it) or until hold elapses, whichever is first. With concurrent
// traffic this swaps delivery order pairwise. count < 0 means unlimited;
// count is consumed per parked request.
func (f *Faults) ReorderRequests(p float64, count int, hold time.Duration, rule FaultRule) {
	f.addEntry(&f.reorders, &faultEntry{rule: rule, remaining: count, p: p, delay: hold})
}

// OnRequest installs an observer hook invoked (outside the fault plan's
// lock) for matching requests before delivery. count < 0 means unlimited.
func (f *Faults) OnRequest(count int, rule FaultRule, hook func(Request)) {
	f.addEntry(&f.reqHooks, &faultEntry{rule: rule, remaining: count, p: 1, hook: hook})
}

// OnReply installs an observer hook invoked (outside the fault plan's
// lock) for matching requests after the handler has executed — i.e. the
// callee's side effects are durable at that point — and before the reply
// is delivered or dropped. count < 0 means unlimited.
func (f *Faults) OnReply(count int, rule FaultRule, hook func(Request)) {
	f.addEntry(&f.replyHooks, &faultEntry{rule: rule, remaining: count, p: 1, hook: hook})
}

func (f *Faults) addEntry(list *[]*faultEntry, e *faultEntry) {
	f.mu.Lock()
	defer f.mu.Unlock()
	*list = append(*list, e)
}

// Partition blocks all traffic between a and b (both directions) until
// Heal is called for the pair.
func (f *Faults) Partition(a, b Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitions[pairKey(a, b)] = true
}

// Heal removes a partition between a and b.
func (f *Faults) Heal(a, b Addr) {
	f.mu.Lock()
	delete(f.partitions, pairKey(a, b))
	hook := f.healHook
	f.mu.Unlock()
	if hook != nil {
		hook(a, b)
	}
}

// SetHealHook installs fn, invoked (outside the plan's lock) after every
// Heal(a, b) with that pair and after Clear with two empty addresses. A
// nil fn removes the hook.
func (f *Faults) SetHealHook(fn func(a, b Addr)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.healHook = fn
}

// Clear removes all rules, hooks and partitions (the heal hook stays —
// it belongs to the cluster wiring, not to any one fault plan). Requests
// parked by a reorder rule are released.
func (f *Faults) Clear() {
	f.mu.Lock()
	for _, e := range f.reorders {
		if e.parked != nil {
			close(e.parked)
			e.parked = nil
		}
	}
	f.dropRequests = nil
	f.dropReplies = nil
	f.delays = nil
	f.replyDelays = nil
	f.duplicates = nil
	f.reorders = nil
	f.reqHooks = nil
	f.replyHooks = nil
	f.partitions = make(map[[2]Addr]bool)
	hook := f.healHook
	f.mu.Unlock()
	if hook != nil {
		hook("", "")
	}
}

func pairKey(a, b Addr) [2]Addr {
	if a > b {
		a, b = b, a
	}
	return [2]Addr{a, b}
}

func (f *Faults) partitioned(a, b Addr) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitions[pairKey(a, b)]
}

// fireLocked reports whether any entry fires for req, consuming one use.
// A probabilistic entry (p > 0) additionally flips a coin from the seeded
// source; the coin is only flipped — and the use only consumed — when the
// rule matches. f.mu must be held.
func (f *Faults) fireLocked(entries []*faultEntry, req Request) (*faultEntry, bool) {
	for _, e := range entries {
		if e.remaining == 0 {
			continue
		}
		if !e.rule(req) {
			continue
		}
		if e.p < 1 && (e.p <= 0 || f.rng.Float64() >= e.p) {
			continue
		}
		if e.remaining > 0 {
			e.remaining--
		}
		return e, true
	}
	return nil, false
}

func (f *Faults) shouldDropRequest(req Request) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.fireLocked(f.dropRequests, req)
	return ok
}

func (f *Faults) shouldDropReply(req Request) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.fireLocked(f.dropReplies, req)
	return ok
}

// requestDelay returns the extra delay the matching delay rules add to
// req's request leg, drawn from the seeded source.
func (f *Faults) requestDelay(req Request) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	var d time.Duration
	for _, e := range f.delays {
		if e.remaining == 0 || !e.rule(req) {
			continue
		}
		if e.p < 1 && (e.p <= 0 || f.rng.Float64() >= e.p) {
			continue
		}
		if e.remaining > 0 {
			e.remaining--
		}
		if e.delay > 0 {
			d += time.Duration(f.rng.Int63n(int64(e.delay)))
		}
	}
	return d
}

// replyDelay returns the extra hold the matching reply-delay rules add to
// req's reply leg. The holds are deterministic (see DelayReplies); only
// the p < 1 coin flips draw from the seeded source.
func (f *Faults) replyDelay(req Request) time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	var d time.Duration
	for _, e := range f.replyDelays {
		if e.remaining == 0 || !e.rule(req) {
			continue
		}
		if e.p < 1 && (e.p <= 0 || f.rng.Float64() >= e.p) {
			continue
		}
		if e.remaining > 0 {
			e.remaining--
		}
		d += e.delay
	}
	return d
}

func (f *Faults) shouldDuplicate(req Request) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.fireLocked(f.duplicates, req)
	return ok
}

// holdForReorder parks req if a reorder rule matches and no request is
// already parked on that rule; the parked request resumes when the next
// matching request overtakes it, when hold elapses, when the plan is
// cleared, or when ctx dies. A second matching request releases the parked
// one and proceeds immediately (the overtake).
func (f *Faults) holdForReorder(ctx context.Context, req Request) error {
	f.mu.Lock()
	var e *faultEntry
	for _, cand := range f.reorders {
		if cand.parked != nil && cand.rule(req) {
			// Overtake: release the parked request, let this one through.
			// Releasing needs only a rule match, not remaining budget — the
			// budget was spent parking.
			close(cand.parked)
			cand.parked = nil
			f.mu.Unlock()
			return nil
		}
		if cand.remaining == 0 || !cand.rule(req) {
			continue
		}
		if cand.p < 1 && (cand.p <= 0 || f.rng.Float64() >= cand.p) {
			continue
		}
		if cand.remaining > 0 {
			cand.remaining--
		}
		e = cand
		break
	}
	if e == nil {
		f.mu.Unlock()
		return nil
	}
	release := make(chan struct{})
	e.parked = release
	hold := e.delay
	f.mu.Unlock()

	t := time.NewTimer(hold)
	defer t.Stop()
	select {
	case <-release:
	case <-t.C:
	case <-ctx.Done():
	}
	f.mu.Lock()
	if e.parked == release {
		e.parked = nil
	}
	f.mu.Unlock()
	return ctx.Err()
}

// hooksFor collects the matching hooks without invoking them; the caller
// runs them outside the lock so a hook may safely call back into the fault
// plan or crash a node.
func (f *Faults) hooksFor(list *[]*faultEntry, req Request) []func(Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []func(Request)
	for _, e := range *list {
		if e.remaining == 0 || !e.rule(req) {
			continue
		}
		if e.remaining > 0 {
			e.remaining--
		}
		out = append(out, e.hook)
	}
	return out
}

func (f *Faults) runRequestHooks(req Request) {
	for _, h := range f.hooksFor(&f.reqHooks, req) {
		h(req)
	}
}

func (f *Faults) runReplyHooks(req Request) {
	for _, h := range f.hooksFor(&f.replyHooks, req) {
		h(req)
	}
}

// MemOptions configure a Mem network.
type MemOptions struct {
	// BaseLatency is added to every message leg (request and reply).
	BaseLatency time.Duration
	// Jitter, if positive, adds a uniformly distributed extra delay in
	// [0, Jitter) per leg, drawn from Seed for reproducibility.
	Jitter time.Duration
	// Seed seeds the jitter source; ignored when Jitter is zero.
	Seed int64
}

// Mem is an in-memory Network with programmable faults and latency.
// It is safe for concurrent use.
type Mem struct {
	opts   MemOptions
	faults *Faults

	mu       sync.RWMutex
	handlers map[Addr]Handler

	rngMu sync.Mutex
	rng   *rand.Rand
}

var _ Network = (*Mem)(nil)

// NewMem returns an in-memory network. faults may be nil, in which case a
// fresh empty fault plan, seeded from opts.Seed, is created (retrievable
// via Faults).
func NewMem(opts MemOptions, faults *Faults) *Mem {
	if faults == nil {
		faults = NewFaultsSeeded(opts.Seed)
	}
	return &Mem{
		opts:     opts,
		faults:   faults,
		handlers: make(map[Addr]Handler),
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
}

// Faults returns the network's fault plan.
func (m *Mem) Faults() *Faults { return m.faults }

// Register implements Network.
func (m *Mem) Register(addr Addr, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[addr] = h
}

// Unregister implements Network.
func (m *Mem) Unregister(addr Addr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, addr)
}

func (m *Mem) lookup(addr Addr) (Handler, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.handlers[addr]
	return h, ok
}

func (m *Mem) delay() time.Duration {
	d := m.opts.BaseLatency
	if m.opts.Jitter > 0 {
		m.rngMu.Lock()
		d += time.Duration(m.rng.Int63n(int64(m.opts.Jitter)))
		m.rngMu.Unlock()
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Call implements Network. The handler executes on the caller's goroutine
// after the request leg; a dropped reply therefore still implies the
// handler's side effects occurred.
func (m *Mem) Call(ctx context.Context, req Request) ([]byte, error) {
	if m.faults.partitioned(req.From, req.To) {
		return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
	}
	if m.faults.shouldDropRequest(req) {
		return nil, fmt.Errorf("%s -> %s %s.%s: %w", req.From, req.To, req.Service, req.Method, ErrRequestLost)
	}
	m.faults.runRequestHooks(req)
	if err := m.faults.holdForReorder(ctx, req); err != nil {
		return nil, err
	}
	if err := sleepCtx(ctx, m.delay()+m.faults.requestDelay(req)); err != nil {
		return nil, err
	}
	h, ok := m.lookup(req.To)
	if !ok {
		return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
	}
	resp, err := h(ctx, req)
	if m.faults.shouldDuplicate(req) {
		// A duplicated network message: the handler executes a second time;
		// the caller sees the first delivery's reply. Idempotent handlers
		// (the only sanctioned targets) make the second delivery a no-op.
		_, _ = h(ctx, req)
	}
	// The reply-leg sleep includes any gray-failure hold: the handler HAS
	// executed by now, so a caller whose deadline dies in this sleep is in
	// exactly the Figure-1 ambiguity — effects durable, outcome unobserved.
	if derr := sleepCtx(ctx, m.delay()+m.faults.replyDelay(req)); derr != nil {
		return nil, derr
	}
	m.faults.runReplyHooks(req)
	if m.faults.shouldDropReply(req) {
		return nil, fmt.Errorf("%s -> %s %s.%s: %w", req.From, req.To, req.Service, req.Method, ErrReplyLost)
	}
	return resp, err
}

// To returns a FaultRule matching requests destined for addr.
func To(addr Addr) FaultRule {
	return func(req Request) bool { return req.To == addr }
}

// Between returns a FaultRule matching requests from one specific sender to
// one specific receiver.
func Between(from, to Addr) FaultRule {
	return func(req Request) bool { return req.From == from && req.To == to }
}

// ToService returns a FaultRule matching requests for a service at an addr.
func ToService(addr Addr, service string) FaultRule {
	return func(req Request) bool { return req.To == addr && req.Service == service }
}

// ToMethod returns a FaultRule matching requests for one method of a
// service at an addr — the granularity per-method probabilistic chaos
// rules are written at.
func ToMethod(addr Addr, service, method string) FaultRule {
	return func(req Request) bool {
		return req.To == addr && req.Service == service && req.Method == method
	}
}
