// Package transport provides the message-passing substrate for the
// simulated distributed system.
//
// The paper (§2.1) assumes fail-silent nodes connected by a local-area
// network, with operation invocation performed via RPC (§2.2). This package
// supplies the RPC carrier with exactly the failure modes the paper's
// protocols must tolerate:
//
//   - an unreachable callee (node crashed, unregistered, or partitioned),
//   - a lost request (the callee never executes the operation), and
//   - a lost reply (the callee DID execute the operation but the caller
//     cannot tell — the scenario of the paper's Figure 1).
//
// Two implementations are provided: Mem, an in-memory network with
// deterministic, injectable faults (used by all experiments), and TCP
// (tcp.go), a real-socket variant over loopback demonstrating that the
// protocol stack is transport-agnostic.
package transport

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Addr names an endpoint, conventionally the node name (e.g. "alpha").
type Addr string

// Request is one RPC request. Service and Method select the handler-side
// dispatch; Payload is an opaque encoded argument record.
type Request struct {
	From    Addr
	To      Addr
	Service string
	Method  string
	Payload []byte
}

// Handler processes a request at the callee and returns an encoded reply.
type Handler func(ctx context.Context, req Request) ([]byte, error)

// Network is the carrier abstraction: endpoints register a handler under
// an address; Call performs a synchronous RPC.
type Network interface {
	// Register installs h as the handler for addr. Registering an address
	// twice replaces the handler.
	Register(addr Addr, h Handler)
	// Unregister removes the handler for addr; subsequent calls to it fail
	// with ErrUnreachable. Unregistering an unknown address is a no-op.
	Unregister(addr Addr)
	// Call sends req and waits for the reply or a failure.
	Call(ctx context.Context, req Request) ([]byte, error)
}

// Sentinel errors. Callers distinguish "operation certainly did not happen"
// (ErrUnreachable, ErrRequestLost) from "operation may have happened"
// (ErrReplyLost, context deadline) exactly as the paper's commit protocols
// must.
var (
	// ErrUnreachable reports that the destination has no live endpoint:
	// the node is crashed, never registered, or partitioned away.
	ErrUnreachable = errors.New("transport: destination unreachable")
	// ErrRequestLost reports that the request was dropped before delivery;
	// the remote operation did not execute.
	ErrRequestLost = errors.New("transport: request lost")
	// ErrReplyLost reports that the remote operation executed but its reply
	// was dropped — the caller cannot observe the outcome.
	ErrReplyLost = errors.New("transport: reply lost")
)

// FaultRule inspects a request and decides whether a fault fires for it.
type FaultRule func(req Request) bool

// Faults is a programmable fault plan shared by a Mem network. All methods
// are safe for concurrent use.
type Faults struct {
	mu           sync.Mutex
	dropRequests []*faultEntry
	dropReplies  []*faultEntry
	partitions   map[[2]Addr]bool
}

type faultEntry struct {
	rule      FaultRule
	remaining int // -1 = unlimited
}

// NewFaults returns an empty fault plan.
func NewFaults() *Faults {
	return &Faults{partitions: make(map[[2]Addr]bool)}
}

// DropRequests installs a rule that drops matching requests. count limits
// how many times the rule fires; count < 0 means unlimited.
func (f *Faults) DropRequests(count int, rule FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropRequests = append(f.dropRequests, &faultEntry{rule: rule, remaining: count})
}

// DropReplies installs a rule that drops the reply of matching requests
// after the handler has executed. count < 0 means unlimited.
func (f *Faults) DropReplies(count int, rule FaultRule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropReplies = append(f.dropReplies, &faultEntry{rule: rule, remaining: count})
}

// Partition blocks all traffic between a and b (both directions) until
// Heal is called for the pair.
func (f *Faults) Partition(a, b Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partitions[pairKey(a, b)] = true
}

// Heal removes a partition between a and b.
func (f *Faults) Heal(a, b Addr) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.partitions, pairKey(a, b))
}

// Clear removes all rules and partitions.
func (f *Faults) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dropRequests = nil
	f.dropReplies = nil
	f.partitions = make(map[[2]Addr]bool)
}

func pairKey(a, b Addr) [2]Addr {
	if a > b {
		a, b = b, a
	}
	return [2]Addr{a, b}
}

func (f *Faults) partitioned(a, b Addr) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitions[pairKey(a, b)]
}

func fire(entries []*faultEntry, req Request) bool {
	for _, e := range entries {
		if e.remaining == 0 {
			continue
		}
		if e.rule(req) {
			if e.remaining > 0 {
				e.remaining--
			}
			return true
		}
	}
	return false
}

func (f *Faults) shouldDropRequest(req Request) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fire(f.dropRequests, req)
}

func (f *Faults) shouldDropReply(req Request) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return fire(f.dropReplies, req)
}

// MemOptions configure a Mem network.
type MemOptions struct {
	// BaseLatency is added to every message leg (request and reply).
	BaseLatency time.Duration
	// Jitter, if positive, adds a uniformly distributed extra delay in
	// [0, Jitter) per leg, drawn from Seed for reproducibility.
	Jitter time.Duration
	// Seed seeds the jitter source; ignored when Jitter is zero.
	Seed int64
}

// Mem is an in-memory Network with programmable faults and latency.
// It is safe for concurrent use.
type Mem struct {
	opts   MemOptions
	faults *Faults

	mu       sync.RWMutex
	handlers map[Addr]Handler

	rngMu sync.Mutex
	rng   *rand.Rand
}

var _ Network = (*Mem)(nil)

// NewMem returns an in-memory network. faults may be nil, in which case a
// fresh empty fault plan is created (retrievable via Faults).
func NewMem(opts MemOptions, faults *Faults) *Mem {
	if faults == nil {
		faults = NewFaults()
	}
	return &Mem{
		opts:     opts,
		faults:   faults,
		handlers: make(map[Addr]Handler),
		rng:      rand.New(rand.NewSource(opts.Seed)),
	}
}

// Faults returns the network's fault plan.
func (m *Mem) Faults() *Faults { return m.faults }

// Register implements Network.
func (m *Mem) Register(addr Addr, h Handler) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.handlers[addr] = h
}

// Unregister implements Network.
func (m *Mem) Unregister(addr Addr) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.handlers, addr)
}

func (m *Mem) lookup(addr Addr) (Handler, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h, ok := m.handlers[addr]
	return h, ok
}

func (m *Mem) delay() time.Duration {
	d := m.opts.BaseLatency
	if m.opts.Jitter > 0 {
		m.rngMu.Lock()
		d += time.Duration(m.rng.Int63n(int64(m.opts.Jitter)))
		m.rngMu.Unlock()
	}
	return d
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Call implements Network. The handler executes on the caller's goroutine
// after the request leg; a dropped reply therefore still implies the
// handler's side effects occurred.
func (m *Mem) Call(ctx context.Context, req Request) ([]byte, error) {
	if m.faults.partitioned(req.From, req.To) {
		return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
	}
	if m.faults.shouldDropRequest(req) {
		return nil, fmt.Errorf("%s -> %s %s.%s: %w", req.From, req.To, req.Service, req.Method, ErrRequestLost)
	}
	if err := sleepCtx(ctx, m.delay()); err != nil {
		return nil, err
	}
	h, ok := m.lookup(req.To)
	if !ok {
		return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
	}
	resp, err := h(ctx, req)
	if derr := sleepCtx(ctx, m.delay()); derr != nil {
		return nil, derr
	}
	if m.faults.shouldDropReply(req) {
		return nil, fmt.Errorf("%s -> %s %s.%s: %w", req.From, req.To, req.Service, req.Method, ErrReplyLost)
	}
	return resp, err
}

// To returns a FaultRule matching requests destined for addr.
func To(addr Addr) FaultRule {
	return func(req Request) bool { return req.To == addr }
}

// Between returns a FaultRule matching requests from one specific sender to
// one specific receiver.
func Between(from, to Addr) FaultRule {
	return func(req Request) bool { return req.From == from && req.To == to }
}

// ToService returns a FaultRule matching requests for a service at an addr.
func ToService(addr Addr, service string) FaultRule {
	return func(req Request) bool { return req.To == addr && req.Service == service }
}
