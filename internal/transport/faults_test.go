package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestProbabilisticDropIsSeedDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		n := NewMem(MemOptions{}, NewFaultsSeeded(seed))
		n.Register("b", echoHandler)
		n.Faults().DropRequestsP(0.5, -1, To("b"))
		out := make([]bool, 40)
		for i := range out {
			_, err := n.Call(context.Background(), Request{From: "a", To: "b"})
			out[i] = err == nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a, b)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical coin flips (suspicious)")
	}
	// p=0.5 over 40 calls: both outcomes must occur.
	drops := 0
	for _, ok := range a {
		if !ok {
			drops++
		}
	}
	if drops == 0 || drops == len(a) {
		t.Fatalf("p=0.5 produced %d/%d drops", drops, len(a))
	}
}

func TestDelayRequestsAddsLatency(t *testing.T) {
	n := NewMem(MemOptions{}, NewFaultsSeeded(1))
	n.Register("b", echoHandler)
	n.Faults().DelayRequests(1, -1, 30*time.Millisecond, To("b"))
	start := time.Now()
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); err != nil {
			t.Fatal(err)
		}
	}
	// Uniform [0,30ms) per call: all five drawing ~0 is vanishingly
	// unlikely; just require SOME added latency and no errors.
	if time.Since(start) == 0 {
		t.Fatal("delay rule added no latency")
	}
	// The delayed call still respects context cancellation.
	n.Faults().Clear()
	n.Faults().DelayRequests(1, -1, 10*time.Second, To("b"))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := n.Call(ctx, Request{From: "a", To: "b"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestDuplicateRequestsDeliversTwice(t *testing.T) {
	n := NewMem(MemOptions{}, NewFaultsSeeded(1))
	var executed atomic.Int32
	n.Register("b", func(ctx context.Context, req Request) ([]byte, error) {
		executed.Add(1)
		return []byte("ok"), nil
	})
	n.Faults().DuplicateRequests(1, 1, To("b"))
	resp, err := n.Call(context.Background(), Request{From: "a", To: "b"})
	if err != nil || string(resp) != "ok" {
		t.Fatalf("call: %q, %v", resp, err)
	}
	if got := executed.Load(); got != 2 {
		t.Fatalf("handler executed %d times, want 2 (duplicate)", got)
	}
	// One-shot: the next call delivers once.
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 3 {
		t.Fatalf("handler executed %d times total, want 3", got)
	}
}

func TestReorderSwapsConcurrentRequests(t *testing.T) {
	n := NewMem(MemOptions{}, NewFaultsSeeded(1))
	var mu sync.Mutex
	var order []string
	n.Register("b", func(ctx context.Context, req Request) ([]byte, error) {
		mu.Lock()
		order = append(order, string(req.Payload))
		mu.Unlock()
		return nil, nil
	})
	n.Faults().ReorderRequests(1, 1, 5*time.Second, To("b"))

	// First request parks; the second overtakes and releases it.
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = n.Call(context.Background(), Request{From: "a", To: "b", Payload: []byte("first")})
	}()
	// Give the first call time to reach the park point.
	time.Sleep(20 * time.Millisecond)
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b", Payload: []byte("second")}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("parked request never released")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 {
		t.Fatalf("deliveries = %v", order)
	}
	if order[0] != "second" {
		t.Fatalf("delivery order = %v, want the second request to overtake", order)
	}
}

func TestReorderHoldExpiresWithoutTraffic(t *testing.T) {
	n := NewMem(MemOptions{}, NewFaultsSeeded(1))
	n.Register("b", echoHandler)
	n.Faults().ReorderRequests(1, 1, 30*time.Millisecond, To("b"))
	start := time.Now()
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("parked request released after %v, want ~30ms hold", elapsed)
	}
}

func TestClearReleasesParkedReorder(t *testing.T) {
	n := NewMem(MemOptions{}, NewFaultsSeeded(1))
	n.Register("b", echoHandler)
	n.Faults().ReorderRequests(1, 1, time.Hour, To("b"))
	done := make(chan error, 1)
	go func() {
		_, err := n.Call(context.Background(), Request{From: "a", To: "b"})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	n.Faults().Clear()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("released call failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Clear did not release the parked request")
	}
}

func TestObserverHooksSeeSideEffectOrdering(t *testing.T) {
	n := NewMem(MemOptions{}, NewFaultsSeeded(1))
	var handlerRan atomic.Bool
	n.Register("b", func(ctx context.Context, req Request) ([]byte, error) {
		handlerRan.Store(true)
		return nil, nil
	})
	var reqSaw, replySaw atomic.Bool
	n.Faults().OnRequest(1, To("b"), func(Request) { reqSaw.Store(handlerRan.Load()) })
	n.Faults().OnReply(1, To("b"), func(Request) { replySaw.Store(handlerRan.Load()) })
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); err != nil {
		t.Fatal(err)
	}
	if reqSaw.Load() {
		t.Fatal("OnRequest hook ran after the handler")
	}
	if !replySaw.Load() {
		t.Fatal("OnReply hook ran before the handler")
	}
}

// TestReplyHookMayUnregisterCallee is the nemesis idiom the chaos harness
// relies on: a reply hook crashes (unregisters) the callee after the
// handler's side effects are durable, while the in-flight reply still
// returns — "voted commit, then died before learning the outcome".
func TestReplyHookMayUnregisterCallee(t *testing.T) {
	n := NewMem(MemOptions{}, NewFaultsSeeded(1))
	n.Register("b", echoHandler)
	n.Faults().OnReply(1, To("b"), func(Request) { n.Unregister("b") })
	resp, err := n.Call(context.Background(), Request{From: "a", To: "b", Payload: []byte("x")})
	if err != nil || string(resp) != "echo:x" {
		t.Fatalf("in-flight reply lost: %q, %v", resp, err)
	}
	if _, err := n.Call(context.Background(), Request{From: "a", To: "b"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want unreachable after hook crash", err)
	}
}

// TestFaultsMutationUnderTraffic is the Clear/Heal race audit: rules,
// partitions, seeds and hooks are mutated from many goroutines while
// traffic flows. Run under -race; the assertions are secondary to the
// detector.
func TestFaultsMutationUnderTraffic(t *testing.T) {
	n := NewMem(MemOptions{}, NewFaultsSeeded(42))
	for i := 0; i < 4; i++ {
		n.Register(Addr(fmt.Sprintf("n%d", i)), echoHandler)
	}
	f := n.Faults()
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Traffic: every node calls every other node in a loop.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				to := Addr(fmt.Sprintf("n%d", j%4))
				ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
				_, _ = n.Call(ctx, Request{From: Addr(fmt.Sprintf("n%d", i)), To: to, Service: "s", Method: "m"})
				cancel()
			}
		}(i)
	}

	// Mutators: install every rule kind, partition/heal, reseed, clear.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				a := Addr(fmt.Sprintf("n%d", j%4))
				b := Addr(fmt.Sprintf("n%d", (j+1)%4))
				switch j % 10 {
				case 0:
					f.DropRequestsP(0.3, 4, To(a))
				case 1:
					f.DropRepliesP(0.3, 4, Between(a, b))
				case 2:
					f.DelayRequests(0.5, 4, time.Millisecond, To(a))
				case 3:
					f.DuplicateRequests(0.5, 2, ToMethod(a, "s", "m"))
				case 4:
					f.ReorderRequests(0.5, 2, time.Millisecond, To(a))
				case 5:
					f.Partition(a, b)
				case 6:
					f.Heal(a, b)
				case 7:
					f.OnReply(2, To(a), func(Request) {})
				case 8:
					f.Reseed(int64(j))
				case 9:
					f.Clear()
				}
			}
		}(i)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	f.Clear()
	// The network must still function after the storm.
	if _, err := n.Call(context.Background(), Request{From: "n0", To: "n1"}); err != nil {
		t.Fatalf("network broken after mutation storm: %v", err)
	}
}
