package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// TCPMux is a Network implementation over real loopback sockets with ONE
// multiplexed connection per (from, to) node pair. Calls are pipelined:
// each request frame carries a caller-assigned ID, the peer answers frames
// in whatever order its handlers finish, and a per-connection reader
// goroutine demultiplexes replies to the waiting callers. Compared to the
// pooled conn-per-call TCP transport this removes the head-of-line
// blocking between concurrent calls to the same node and caps the socket
// count at one per node pair.
//
// Frames are length-prefixed (big-endian u32) so a torn write can never be
// half-executed: a request either arrives whole or the connection dies
// before the handler runs, which is what makes the single retry on a
// request-write failure safe. Connection-state rules:
//
//   - A decode error or short read on the reply stream poisons the
//     connection: all in-flight calls fail, the socket is closed, and the
//     next call dials fresh. Framing state is unrecoverable after a torn
//     frame, exactly like a desynced gob stream.
//   - A context cancellation or per-call timeout does NOT poison the
//     connection. The caller abandons its pending slot; the late reply is
//     dropped by the demux when it arrives. This differs from the pooled
//     gob transport, which must discard the whole connection — the mux
//     framing keeps byte-stream state independent of any one call.
type TCPMux struct {
	// CallTimeout bounds each call when the caller's context carries no (or
	// a later) deadline. Zero selects DefaultCallTimeout.
	CallTimeout time.Duration
	// MaxPending caps the in-flight calls per connection: a call that
	// would exceed it fast-fails with ErrOverloaded instead of growing the
	// pending-reply map without bound. Zero selects DefaultMaxPending; the
	// field must be set before the first call.
	MaxPending int

	mu        sync.RWMutex
	listeners map[Addr]*muxEndpoint
	closed    bool

	connMu sync.Mutex
	conns  map[[2]Addr]*muxConn

	// dials counts fresh client dials (test observability: "the next call
	// after a poisoned connection runs on a fresh dial").
	dials atomic.Int64

	// mangleReply, when set (tests only), rewrites a server-side reply
	// frame body before it is framed and written; returning nil makes the
	// server drop the connection instead of replying — a torn frame.
	mangleReply func(body []byte) []byte
}

var _ Network = (*TCPMux)(nil)

// maxMuxFrame bounds a frame body; a length prefix beyond it poisons the
// connection instead of attempting a giant allocation.
const maxMuxFrame = 1 << 26

// muxHandlerGrace pads the propagated per-call deadline on the server
// side, guaranteeing the caller always times out strictly before the
// handler's context expires. See the frame-format comment above.
const muxHandlerGrace = 500 * time.Millisecond

// DefaultMaxPending is the per-connection in-flight call cap when
// TCPMux.MaxPending is zero. Far above any healthy working set — the cap
// is a backstop against unbounded pending-map growth when a server stops
// draining, not a tuning knob.
const DefaultMaxPending = 1024

// NewTCPMux returns an empty multiplexed TCP network.
func NewTCPMux() *TCPMux {
	return &TCPMux{
		listeners: make(map[Addr]*muxEndpoint),
		conns:     make(map[[2]Addr]*muxConn),
	}
}

// --- frame codecs ---

// Request frame body: id, deadline (milliseconds from receipt, 0 = none),
// from, to, service, method, payload.
// Reply frame body: id, status byte (0 ok / 1 app error), payload, error
// string. Strings and byte fields are uvarint-length-prefixed, matching the
// rpc binary codec idiom.
//
// The deadline travels in the frame because the server must bound its
// handlers itself: unlike the in-memory transport, where the handler runs
// inside the caller's goroutine and unwinds when the caller's context
// expires, a mux handler runs on the server with no native link to the
// caller. Without the propagated deadline, a handler parked on a lock whose
// holder died with a crashed node would wait forever — and endpoint
// shutdown, which waits for handlers to drain, would wedge behind it.
//
// The server enforces the deadline plus a grace margin (muxHandlerGrace),
// never the raw value: the bound exists to stop unbounded parking, not to
// race the caller. The caller's own timer must always fire first, so that
// a call whose outcome the server is still deciding surfaces as the
// caller's ambiguous timeout (the Figure-1 uncertainty), never as a
// definite-looking "context expired" application error from a handler that
// aborted partway through applying state. The server's clock starts at
// frame receipt, so its expiry is always at least the grace margin after
// the caller has stopped listening.

func muxAppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func muxAppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendMuxRequest(dst []byte, id, deadlineMillis uint64, req Request) []byte {
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, deadlineMillis)
	dst = muxAppendString(dst, string(req.From))
	dst = muxAppendString(dst, string(req.To))
	dst = muxAppendString(dst, req.Service)
	dst = muxAppendString(dst, req.Method)
	return muxAppendBytes(dst, req.Payload)
}

func appendMuxReply(dst []byte, id uint64, payload []byte, errMsg string, hasErr bool) []byte {
	dst = binary.AppendUvarint(dst, id)
	if hasErr {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = muxAppendBytes(dst, payload)
	return muxAppendString(dst, errMsg)
}

var errMuxFrame = errors.New("transport: malformed mux frame")

// muxParser is a failure-recording cursor over a frame body.
type muxParser struct {
	b  []byte
	ok bool
}

func (p *muxParser) uvarint() uint64 {
	if !p.ok {
		return 0
	}
	v, n := binary.Uvarint(p.b)
	if n <= 0 {
		p.ok = false
		return 0
	}
	p.b = p.b[n:]
	return v
}

func (p *muxParser) bytes() []byte {
	n := p.uvarint()
	if !p.ok || n > uint64(len(p.b)) {
		p.ok = false
		return nil
	}
	out := p.b[:n]
	p.b = p.b[n:]
	return out
}

func (p *muxParser) str() string { return string(p.bytes()) }

func (p *muxParser) done() bool { return p.ok && len(p.b) == 0 }

func parseMuxRequest(body []byte) (id, deadlineMillis uint64, req Request, err error) {
	p := muxParser{b: body, ok: true}
	id = p.uvarint()
	deadlineMillis = p.uvarint()
	req.From = Addr(p.str())
	req.To = Addr(p.str())
	req.Service = p.str()
	req.Method = p.str()
	req.Payload = p.bytes()
	if !p.done() {
		return 0, 0, Request{}, errMuxFrame
	}
	if len(req.Payload) == 0 {
		req.Payload = nil
	}
	return id, deadlineMillis, req, nil
}

func parseMuxReply(body []byte) (id uint64, res muxResult, err error) {
	p := muxParser{b: body, ok: true}
	id = p.uvarint()
	status := p.bytes1()
	res.payload = p.bytes()
	res.errMsg = p.str()
	if !p.done() || status > 1 {
		return 0, muxResult{}, errMuxFrame
	}
	res.hasErr = status == 1
	if len(res.payload) == 0 {
		res.payload = nil
	}
	return id, res, nil
}

func (p *muxParser) bytes1() byte {
	if !p.ok || len(p.b) < 1 {
		p.ok = false
		return 0xff
	}
	b := p.b[0]
	p.b = p.b[1:]
	return b
}

// writeFrame writes a length-prefixed frame to w.
func writeFrame(w net.Conn, body []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame body.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMuxFrame {
		return nil, fmt.Errorf("%w: %d-byte frame", errMuxFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// --- client side ---

type muxResult struct {
	payload []byte
	errMsg  string
	hasErr  bool
}

// muxConn is one client-side multiplexed connection. The reader goroutine
// owns the read half; writers serialize on writeMu; pending demux state is
// guarded by mu. Every pending channel has capacity 1 and is touched
// exactly once under mu — delivered to or closed (poison), never both.
type muxConn struct {
	conn       net.Conn
	maxPending int
	writeMu    sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan muxResult
	err     error // non-nil once poisoned
}

func newMuxConn(conn net.Conn, maxPending int) *muxConn {
	if maxPending <= 0 {
		maxPending = DefaultMaxPending
	}
	mc := &muxConn{conn: conn, maxPending: maxPending, pending: make(map[uint64]chan muxResult)}
	go mc.readLoop()
	return mc
}

func (mc *muxConn) broken() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.err != nil
}

// register allocates a request ID and its reply channel. It fails if the
// connection is already poisoned, or with ErrOverloaded when the
// connection already carries maxPending in-flight calls.
func (mc *muxConn) register() (uint64, chan muxResult, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.err != nil {
		return 0, nil, mc.err
	}
	if len(mc.pending) >= mc.maxPending {
		return 0, nil, ErrOverloaded
	}
	mc.nextID++
	id := mc.nextID
	ch := make(chan muxResult, 1)
	mc.pending[id] = ch
	return id, ch, nil
}

// unregister abandons a pending call (ctx cancel or timeout). The late
// reply, if it ever arrives, is dropped by the demux. The connection stays
// healthy — framing state is per-frame, not per-call.
func (mc *muxConn) unregister(id uint64) {
	mc.mu.Lock()
	delete(mc.pending, id)
	mc.mu.Unlock()
}

// poison marks the connection dead, fails every in-flight call and closes
// the socket. Idempotent.
func (mc *muxConn) poison(err error) {
	mc.mu.Lock()
	if mc.err != nil {
		mc.mu.Unlock()
		return
	}
	mc.err = err
	for id, ch := range mc.pending {
		close(ch)
		delete(mc.pending, id)
	}
	mc.mu.Unlock()
	mc.conn.Close()
}

// readLoop demultiplexes reply frames to their waiting callers until the
// stream breaks; any read or parse failure poisons the connection.
func (mc *muxConn) readLoop() {
	for {
		body, err := readFrame(mc.conn)
		if err != nil {
			mc.poison(fmt.Errorf("transport: mux conn broken: %w", err))
			return
		}
		id, res, err := parseMuxReply(body)
		if err != nil {
			mc.poison(err)
			return
		}
		mc.mu.Lock()
		ch, ok := mc.pending[id]
		if ok {
			delete(mc.pending, id)
			ch <- res // cap 1, never blocks
		}
		mc.mu.Unlock()
		// An unknown ID is a reply whose caller gave up; drop it.
	}
}

// getMuxConn returns the live connection for the pair, dialing if absent or
// poisoned. reused reports whether an existing connection was returned.
func (t *TCPMux) getMuxConn(ctx context.Context, from, to Addr, ep *muxEndpoint) (mc *muxConn, reused bool, err error) {
	key := [2]Addr{from, to}
	t.connMu.Lock()
	defer t.connMu.Unlock()
	if cur := t.conns[key]; cur != nil && !cur.broken() {
		return cur, true, nil
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", ep.ln.Addr().String())
	if err != nil {
		return nil, false, err
	}
	t.dials.Add(1)
	mc = newMuxConn(conn, t.MaxPending)
	t.conns[key] = mc
	return mc, false, nil
}

// discardConn drops the pair's connection if it is still mc.
func (t *TCPMux) discardConn(from, to Addr, mc *muxConn, err error) {
	mc.poison(err)
	key := [2]Addr{from, to}
	t.connMu.Lock()
	if t.conns[key] == mc {
		delete(t.conns, key)
	}
	t.connMu.Unlock()
}

// KillConns force-closes every established client connection dialed FROM
// from TO to. It is a fault-injection hook for tests: in-flight calls on
// the pair fail, and the next call transparently redials, arriving at the
// peer over a brand-new stream — the scenario that retried, deduplicated
// protocol messages must survive.
func (t *TCPMux) KillConns(from, to Addr) {
	t.connMu.Lock()
	var victims []*muxConn
	for key, mc := range t.conns {
		if key[0] == from && key[1] == to {
			victims = append(victims, mc)
			delete(t.conns, key)
		}
	}
	t.connMu.Unlock()
	for _, mc := range victims {
		mc.poison(errors.New("transport: connection killed"))
	}
}

// Call implements Network. The request is written as one frame on the
// pair's shared connection and the caller parks on its reply channel; a
// request-write failure retries once on a fresh connection (the length
// prefix guarantees a torn request never executed).
func (t *TCPMux) Call(ctx context.Context, req Request) ([]byte, error) {
	t.mu.RLock()
	ep, ok := t.listeners[req.To]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
	}
	callTimeout := t.CallTimeout
	if callTimeout <= 0 {
		callTimeout = DefaultCallTimeout
	}
	deadline := time.Now().Add(callTimeout)
	if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
		deadline = dl
	}
	for attempt := 0; ; attempt++ {
		mc, reused, err := t.getMuxConn(ctx, req.From, req.To, ep)
		if err != nil {
			return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
		}
		id, ch, err := mc.register()
		if err != nil {
			if errors.Is(err, ErrOverloaded) {
				// Backpressure, not sickness: the connection is healthy but
				// saturated. Fast-fail WITHOUT discarding it — poisoning
				// would fail the very calls creating the load, and a redial
				// would resell the capacity the cap just refused.
				return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrOverloaded)
			}
			// Poisoned between lookup and register; a fresh dial will work.
			t.discardConn(req.From, req.To, mc, err)
			if attempt == 0 {
				continue
			}
			return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrUnreachable)
		}
		millis := uint64(time.Until(deadline) / time.Millisecond)
		if millis == 0 {
			millis = 1
		}
		frame := appendMuxRequest(make([]byte, 0, 64+len(req.Payload)), id, millis, req)
		mc.writeMu.Lock()
		mc.conn.SetWriteDeadline(deadline)
		werr := writeFrame(mc.conn, frame)
		mc.writeMu.Unlock()
		if werr != nil {
			mc.unregister(id)
			t.discardConn(req.From, req.To, mc, fmt.Errorf("transport: mux write: %w", werr))
			if reused && attempt == 0 {
				// The connection went stale between calls; the server cannot
				// have executed a torn request, so one retry is safe.
				continue
			}
			return nil, fmt.Errorf("%s -> %s: write: %w", req.From, req.To, werr)
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case res, ok := <-ch:
			timer.Stop()
			if !ok {
				// Connection poisoned while we were parked: the reply is gone
				// and the outcome unobservable (the Figure-1 ambiguity).
				return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, ErrReplyLost)
			}
			if res.hasErr {
				return res.payload, errors.New(res.errMsg)
			}
			return res.payload, nil
		case <-ctx.Done():
			timer.Stop()
			mc.unregister(id)
			return nil, ctx.Err()
		case <-timer.C:
			mc.unregister(id)
			return nil, fmt.Errorf("%s -> %s: %w", req.From, req.To, context.DeadlineExceeded)
		}
	}
}

// --- server side ---

type muxEndpoint struct {
	ln      net.Listener
	handler Handler
	mux     *TCPMux
	done    chan struct{}
	wg      sync.WaitGroup

	// baseCtx parents every handler invocation; cancel fires on stop so
	// draining the endpoint unwinds parked handlers instead of waiting
	// behind them.
	baseCtx context.Context
	cancel  context.CancelFunc

	servingMu sync.Mutex
	serving   map[net.Conn]struct{}
}

// Register implements Network: it opens a loopback listener for addr and
// serves mux frames on it until Unregister or Close.
func (t *TCPMux) Register(addr Addr, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	if old, ok := t.listeners[addr]; ok {
		old.stop()
		delete(t.listeners, addr)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(fmt.Sprintf("transport: tcp listen: %v", err))
	}
	ep := &muxEndpoint{ln: ln, handler: h, mux: t, done: make(chan struct{})}
	ep.baseCtx, ep.cancel = context.WithCancel(context.Background())
	t.listeners[addr] = ep
	ep.wg.Add(1)
	go ep.serve()
}

// Unregister implements Network. Client connections into the address are
// dropped along with the listener, so in-flight calls fail fast instead of
// waiting out their deadlines against a dead endpoint.
func (t *TCPMux) Unregister(addr Addr) {
	t.mu.Lock()
	ep, ok := t.listeners[addr]
	if ok {
		delete(t.listeners, addr)
	}
	t.mu.Unlock()
	if !ok {
		return
	}
	ep.stop()
	t.connMu.Lock()
	var victims []*muxConn
	for key, mc := range t.conns {
		if key[1] == addr {
			victims = append(victims, mc)
			delete(t.conns, key)
		}
	}
	t.connMu.Unlock()
	for _, mc := range victims {
		mc.poison(fmt.Errorf("%s: %w", addr, ErrUnreachable))
	}
}

// Close shuts down all listeners and connections.
func (t *TCPMux) Close() {
	t.mu.Lock()
	eps := make([]*muxEndpoint, 0, len(t.listeners))
	for _, ep := range t.listeners {
		eps = append(eps, ep)
	}
	t.listeners = make(map[Addr]*muxEndpoint)
	t.closed = true
	t.mu.Unlock()
	for _, ep := range eps {
		ep.stop()
	}
	t.connMu.Lock()
	conns := t.conns
	t.conns = make(map[[2]Addr]*muxConn)
	t.connMu.Unlock()
	for _, mc := range conns {
		mc.poison(errors.New("transport: network closed"))
	}
}

func (ep *muxEndpoint) stop() {
	close(ep.done)
	ep.cancel()
	ep.ln.Close()
	ep.servingMu.Lock()
	for conn := range ep.serving {
		conn.Close()
	}
	ep.servingMu.Unlock()
	ep.wg.Wait()
}

func (ep *muxEndpoint) track(conn net.Conn) {
	ep.servingMu.Lock()
	if ep.serving == nil {
		ep.serving = make(map[net.Conn]struct{})
	}
	ep.serving[conn] = struct{}{}
	ep.servingMu.Unlock()
}

func (ep *muxEndpoint) untrack(conn net.Conn) {
	ep.servingMu.Lock()
	delete(ep.serving, conn)
	ep.servingMu.Unlock()
}

func (ep *muxEndpoint) serve() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return
		}
		ep.track(conn)
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			defer ep.untrack(conn)
			defer conn.Close()
			ep.handleConn(conn)
		}()
	}
}

// handleConn reads request frames and dispatches each to the handler on its
// own goroutine, so a slow call does not stall the calls pipelined behind
// it. Replies are written in completion order under a per-connection write
// lock. A malformed frame closes the connection: the stream offset is
// untrustworthy after it.
func (ep *muxEndpoint) handleConn(conn net.Conn) {
	var writeMu sync.Mutex
	var calls sync.WaitGroup
	defer calls.Wait()
	for {
		body, err := readFrame(conn)
		if err != nil {
			return
		}
		id, deadlineMillis, req, err := parseMuxRequest(body)
		if err != nil {
			return
		}
		calls.Add(1)
		ep.wg.Add(1)
		go func() {
			defer calls.Done()
			defer ep.wg.Done()
			ctx := ep.baseCtx
			if deadlineMillis > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx,
					time.Duration(deadlineMillis)*time.Millisecond+muxHandlerGrace)
				defer cancel()
			}
			payload, herr := ep.handler(ctx, req)
			var errMsg string
			hasErr := herr != nil
			if hasErr {
				errMsg = herr.Error()
			}
			rep := appendMuxReply(make([]byte, 0, 16+len(payload)), id, payload, errMsg, hasErr)
			if mangle := ep.mux.mangleReply; mangle != nil {
				if rep = mangle(rep); rep == nil {
					conn.Close() // torn frame injection: drop the link instead
					return
				}
			}
			// A stopped endpoint must never answer. stop() cancels baseCtx
			// mid-handler, so the result above may reflect a half-cancelled
			// execution (e.g. "context canceled" from an outbound call whose
			// side effects stand); racing that reply onto the dying
			// connection would hand the client a definite-looking error for
			// an ambiguous outcome. stop() closes ep.done before it cancels,
			// so a handler unwound by the cancellation always observes done
			// closed here and the client sees connection death (ErrReplyLost,
			// correctly ambiguous) instead.
			select {
			case <-ep.done:
				return
			default:
			}
			writeMu.Lock()
			werr := writeFrame(conn, rep)
			writeMu.Unlock()
			if werr != nil {
				conn.Close()
			}
		}()
	}
}
