package transport

import (
	"reflect"
	"testing"
)

// FuzzMuxFrameDecode hardens the mux transport's frame body codecs: parsing
// arbitrary bytes as a request or reply frame must never panic or
// over-read, torn frames must be rejected (no half-filled requests reach a
// handler), and every accepted frame must survive a decode -> re-encode ->
// decode round trip unchanged. Seed cases, including truncations and
// trailing garbage, are checked in under testdata/fuzz/FuzzMuxFrameDecode.
func FuzzMuxFrameDecode(f *testing.F) {
	reqBody := appendMuxRequest(nil, 7, 30000, Request{
		From: "alpha", To: "beta", Service: "object", Method: "Invoke", Payload: []byte{1, 2, 3},
	})
	repOK := appendMuxReply(nil, 7, []byte("result"), "", false)
	repErr := appendMuxReply(nil, 8, nil, "conflict: object pinned", true)
	f.Add(reqBody)
	f.Add(repOK)
	f.Add(repErr)
	f.Add(reqBody[:len(reqBody)/2])                          // torn mid-body
	f.Add(append(repOK[:len(repOK):len(repOK)], 0xde, 0xad)) // trailing garbage
	f.Add([]byte{})
	f.Add([]byte{0x07, 0x05})

	f.Fuzz(func(t *testing.T, raw []byte) {
		if id, dl, req, err := parseMuxRequest(raw); err == nil {
			re := appendMuxRequest(nil, id, dl, req)
			id2, dl2, req2, err2 := parseMuxRequest(re)
			if err2 != nil {
				t.Fatalf("re-encoded request undecodable: %v", err2)
			}
			if id2 != id || dl2 != dl || !reflect.DeepEqual(req, req2) {
				t.Fatalf("request round trip changed content: (%d, %d, %+v) -> (%d, %d, %+v)", id, dl, req, id2, dl2, req2)
			}
		}
		if id, res, err := parseMuxReply(raw); err == nil {
			re := appendMuxReply(nil, id, res.payload, res.errMsg, res.hasErr)
			id2, res2, err2 := parseMuxReply(re)
			if err2 != nil {
				t.Fatalf("re-encoded reply undecodable: %v", err2)
			}
			if id2 != id || !reflect.DeepEqual(res, res2) {
				t.Fatalf("reply round trip changed content: (%d, %+v) -> (%d, %+v)", id, res, id2, res2)
			}
		}
	})
}
