package transport

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMuxPendingCapHoldsUnderConcurrency hammers one connection with far
// more concurrent callers than MaxPending allows and checks, under the
// race detector, that (a) the in-flight call count never exceeds the
// cap, (b) the surplus callers fast-fail with ErrOverloaded, and (c) the
// connection survives the episode — no poison, no redial.
func TestMuxPendingCapHoldsUnderConcurrency(t *testing.T) {
	const cap = 8
	const callers = 64

	tm := NewTCPMux()
	tm.MaxPending = cap
	defer tm.Close()

	release := make(chan struct{})
	var inFlight, peak atomic.Int64
	tm.Register("srv", func(ctx context.Context, req Request) ([]byte, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer inFlight.Add(-1)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return req.Payload, nil
	})

	var wg sync.WaitGroup
	var ok, overloaded, other atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Payload: []byte("x")})
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			default:
				other.Add(1)
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	// Let the flood land, then drain the parked handlers.
	for deadline := time.Now().Add(2 * time.Second); inFlight.Load() < cap && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if p := peak.Load(); p > cap {
		t.Fatalf("peak in-flight %d exceeds cap %d", p, cap)
	}
	if overloaded.Load() == 0 {
		t.Fatal("no caller was refused with ErrOverloaded")
	}
	if got := ok.Load() + overloaded.Load(); got != callers {
		t.Fatalf("accounted for %d callers, want %d (others failed)", got, callers)
	}

	// The refusals must not have poisoned or replaced the connection:
	// the next call reuses it and succeeds.
	dials := tm.dials.Load()
	if _, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Payload: []byte("y")}); err != nil {
		t.Fatalf("call after overload episode: %v", err)
	}
	if tm.dials.Load() != dials {
		t.Fatal("overload fast-fail caused a redial")
	}
}

// TestMuxDefaultPendingCap checks the zero value picks the default cap
// rather than refusing everything (cap 0 must not mean "no calls").
func TestMuxDefaultPendingCap(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	tm.Register("srv", plainEcho)
	if _, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Payload: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
}
