package transport

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func plainEcho(ctx context.Context, req Request) ([]byte, error) {
	return req.Payload, nil
}

func TestMuxRoundTrip(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	tm.Register("srv", func(ctx context.Context, req Request) ([]byte, error) {
		if req.From != "cli" || req.Service != "svc" || req.Method != "m" {
			return nil, fmt.Errorf("bad request: %+v", req)
		}
		return append([]byte("re:"), req.Payload...), nil
	})
	got, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Service: "svc", Method: "m", Payload: []byte("hi")})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "re:hi" {
		t.Fatalf("got %q", got)
	}
}

func TestMuxErrorPropagation(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	tm.Register("srv", func(ctx context.Context, req Request) ([]byte, error) {
		return []byte("partial"), errors.New("app boom")
	})
	got, err := tm.Call(context.Background(), Request{From: "cli", To: "srv"})
	if err == nil || err.Error() != "app boom" {
		t.Fatalf("err = %v, want app boom", err)
	}
	if string(got) != "partial" {
		t.Fatalf("payload = %q", got)
	}
}

func TestMuxUnreachable(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	if _, err := tm.Call(context.Background(), Request{From: "cli", To: "ghost"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}
	tm.Register("srv", plainEcho)
	if _, err := tm.Call(context.Background(), Request{From: "cli", To: "srv"}); err != nil {
		t.Fatal(err)
	}
	tm.Unregister("srv")
	if _, err := tm.Call(context.Background(), Request{From: "cli", To: "srv"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v, want ErrUnreachable after unregister", err)
	}
}

// TestMuxPipelinedCallsShareOneConn is the core demux property: many
// concurrent calls between one node pair ride a single connection, overlap
// in flight, and every caller gets ITS reply back (no reply stealing).
func TestMuxPipelinedCallsShareOneConn(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	var inFlight, peak atomic.Int64
	tm.Register("srv", func(ctx context.Context, req Request) ([]byte, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond) // force overlap
		inFlight.Add(-1)
		return req.Payload, nil
	})
	const callers = 32
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("payload-%d", i)
			got, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Payload: []byte(want)})
			if err != nil {
				errs[i] = err
				return
			}
			if string(got) != want {
				errs[i] = fmt.Errorf("reply stolen: got %q, want %q", got, want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if d := tm.dials.Load(); d != 1 {
		t.Fatalf("dials = %d, want 1 (single mux conn per pair)", d)
	}
	if p := peak.Load(); p < 2 {
		t.Fatalf("peak in-flight = %d, want >= 2 (calls must pipeline)", p)
	}
}

// TestMuxTruncatedReplyDiscardsConn pins the connection-state rule: a torn
// reply frame (server closes mid-stream) poisons the mux connection, the
// in-flight call fails, and the NEXT call succeeds on a fresh dial.
func TestMuxTruncatedReplyDiscardsConn(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	var torn atomic.Bool
	torn.Store(true)
	tm.mangleReply = func(body []byte) []byte {
		if torn.Load() {
			return nil // server drops the conn instead of replying
		}
		return body
	}
	tm.Register("srv", plainEcho)

	_, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Payload: []byte("x")})
	if err == nil {
		t.Fatal("torn reply must fail the call")
	}
	torn.Store(false)
	got, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Payload: []byte("y")})
	if err != nil {
		t.Fatalf("call after torn reply: %v", err)
	}
	if string(got) != "y" {
		t.Fatalf("got %q", got)
	}
	if d := tm.dials.Load(); d != 2 {
		t.Fatalf("dials = %d, want 2 (poisoned conn must be replaced)", d)
	}
}

// TestMuxCorruptReplyFailsAllPending: a frame that parses as garbage (not
// just a short read) also poisons the connection, failing every pipelined
// in-flight call rather than leaving them parked forever.
func TestMuxCorruptReplyFailsAllPending(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	var corrupt atomic.Bool
	corrupt.Store(true)
	release := make(chan struct{})
	tm.mangleReply = func(body []byte) []byte {
		if corrupt.Load() {
			return []byte{0xff} // undecodable body
		}
		return body
	}
	tm.Register("srv", func(ctx context.Context, req Request) ([]byte, error) {
		<-release
		return req.Payload, nil
	})
	const callers = 4
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		go func() {
			_, err := tm.Call(context.Background(), Request{From: "cli", To: "srv"})
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let all callers enqueue
	close(release)
	for i := 0; i < callers; i++ {
		if err := <-errs; err == nil {
			t.Fatal("pending call must fail when the conn is poisoned")
		}
	}
	corrupt.Store(false)
	if _, err := tm.Call(context.Background(), Request{From: "cli", To: "srv"}); err != nil {
		t.Fatalf("call after poisoned conn: %v", err)
	}
}

// TestMuxCtxCancelKeepsConn pins the OTHER half of the connection-state
// rule: abandoning a call on ctx cancellation does NOT discard the mux
// connection — the demux drops the late reply and the conn stays usable.
func TestMuxCtxCancelKeepsConn(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	block := make(chan struct{})
	var calls atomic.Int64
	tm.Register("srv", func(ctx context.Context, req Request) ([]byte, error) {
		if calls.Add(1) == 1 {
			<-block // first call hangs until after the caller gave up
		}
		return req.Payload, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := tm.Call(ctx, Request{From: "cli", To: "srv", Payload: []byte("a")}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	close(block) // late reply arrives with no waiter; demux must drop it
	got, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Payload: []byte("b")})
	if err != nil {
		t.Fatalf("call after cancel: %v", err)
	}
	if string(got) != "b" {
		t.Fatalf("got %q (late reply delivered to wrong caller?)", got)
	}
	if d := tm.dials.Load(); d != 1 {
		t.Fatalf("dials = %d, want 1 (cancel must not discard the mux conn)", d)
	}
}

// TestMuxStaleConnRetriesOnce: a connection severed between calls fails the
// request write; the length-prefixed framing makes the retry safe and the
// caller never sees the blip.
func TestMuxStaleConnRetriesOnce(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	tm.Register("srv", plainEcho)
	if _, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Payload: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	tm.KillConns("cli", "srv")
	got, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Payload: []byte("b")})
	if err != nil {
		t.Fatalf("call after killed conn: %v", err)
	}
	if string(got) != "b" {
		t.Fatalf("got %q", got)
	}
}

// TestTCPPooledConnDiscardedAfterTruncatedReply is the satellite regression
// test for the POOLED transport: a truncated gob reply must close the
// connection (not return it to the pool), and the next call must succeed on
// a fresh dial. A rogue endpoint speaks the wire protocol but cuts the
// first reply in half.
func TestTCPPooledConnDiscardedAfterTruncatedReply(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var truncate atomic.Bool
	truncate.Store(true)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				dec := gob.NewDecoder(conn)
				for {
					var wreq wireRequest
					if err := dec.Decode(&wreq); err != nil {
						return
					}
					var buf bytes.Buffer
					if err := gob.NewEncoder(&buf).Encode(&wireReply{Payload: wreq.Payload}); err != nil {
						return
					}
					b := buf.Bytes()
					if truncate.Load() {
						conn.Write(b[:len(b)/2]) // torn reply, then hang up
						return
					}
					if _, err := conn.Write(b); err != nil {
						return
					}
				}
			}()
		}
	}()

	tn := NewTCP()
	defer tn.Close()
	// Splice the rogue listener in as the endpoint for "bad": Call only
	// consults ep.ln for the dial address and ep.idle for pooling.
	ep := &tcpEndpoint{ln: ln, done: make(chan struct{})}
	tn.listeners["bad"] = ep

	_, err = tn.Call(context.Background(), Request{From: "cli", To: "bad", Payload: []byte("x")})
	if err == nil {
		t.Fatal("truncated reply must fail the call")
	}
	ep.poolMu.Lock()
	idle := len(ep.idle)
	ep.poolMu.Unlock()
	if idle != 0 {
		t.Fatalf("%d conns pooled after decode error, want 0 (conn must be discarded)", idle)
	}
	truncate.Store(false)
	got, err := tn.Call(context.Background(), Request{From: "cli", To: "bad", Payload: []byte("y")})
	if err != nil {
		t.Fatalf("call after truncated reply: %v", err)
	}
	if string(got) != "y" {
		t.Fatalf("got %q", got)
	}
}

// TestTCPPooledConnDiscardedAfterCtxCancel: unlike the mux transport, the
// pooled gob transport CANNOT keep a connection whose reply it abandoned —
// the unread reply bytes would desync the next call's stream. A deadline
// that expires mid-reply must discard the conn and the next call must
// succeed fresh.
func TestTCPPooledConnDiscardedAfterCtxCancel(t *testing.T) {
	tn := NewTCP()
	defer tn.Close()
	var calls atomic.Int64
	block := make(chan struct{})
	tn.Register("srv", func(ctx context.Context, req Request) ([]byte, error) {
		if calls.Add(1) == 1 {
			<-block
		}
		return req.Payload, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := tn.Call(ctx, Request{From: "cli", To: "srv", Payload: []byte("a")}); err == nil {
		t.Fatal("expected deadline failure")
	}
	close(block)
	tn.mu.RLock()
	ep := tn.listeners["srv"]
	tn.mu.RUnlock()
	ep.poolMu.Lock()
	idle := len(ep.idle)
	ep.poolMu.Unlock()
	if idle != 0 {
		t.Fatalf("%d conns pooled after abandoned reply, want 0", idle)
	}
	got, err := tn.Call(context.Background(), Request{From: "cli", To: "srv", Payload: []byte("b")})
	if err != nil {
		t.Fatalf("call after abandoned reply: %v", err)
	}
	if string(got) != "b" {
		t.Fatalf("got %q (stream desync would corrupt this reply)", got)
	}
}

func TestMuxConcurrentPairs(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	for _, a := range []Addr{"n1", "n2", "n3"} {
		tm.Register(a, plainEcho)
	}
	var wg sync.WaitGroup
	var failed atomic.Int64
	for _, from := range []Addr{"n1", "n2", "n3"} {
		for _, to := range []Addr{"n1", "n2", "n3"} {
			for i := 0; i < 8; i++ {
				wg.Add(1)
				go func(from, to Addr, i int) {
					defer wg.Done()
					want := fmt.Sprintf("%s->%s/%d", from, to, i)
					got, err := tm.Call(context.Background(), Request{From: from, To: to, Payload: []byte(want)})
					if err != nil || string(got) != want {
						failed.Add(1)
					}
				}(from, to, i)
			}
		}
	}
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d calls failed or got wrong replies", n)
	}
	if d := tm.dials.Load(); d != 9 {
		t.Fatalf("dials = %d, want 9 (one per pair)", d)
	}
}

// TestFaultyWrapsMux: the chaos fault plan fires over the mux transport —
// drops, partitions and heals behave as on Mem.
func TestFaultyWrapsMux(t *testing.T) {
	inner := NewTCPMux()
	defer inner.Close()
	f := NewFaulty(inner, nil)
	var executed atomic.Int64
	f.Register("srv", func(ctx context.Context, req Request) ([]byte, error) {
		executed.Add(1)
		return req.Payload, nil
	})
	ctx := context.Background()

	f.Faults().Partition("cli", "srv")
	if _, err := f.Call(ctx, Request{From: "cli", To: "srv"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("partitioned: got %v", err)
	}
	f.Faults().Heal("cli", "srv")

	f.Faults().DropRequests(1, To("srv"))
	if _, err := f.Call(ctx, Request{From: "cli", To: "srv"}); !errors.Is(err, ErrRequestLost) {
		t.Fatalf("dropped request: got %v", err)
	}
	if executed.Load() != 0 {
		t.Fatal("dropped request must not execute")
	}

	f.Faults().DropReplies(1, To("srv"))
	if _, err := f.Call(ctx, Request{From: "cli", To: "srv"}); !errors.Is(err, ErrReplyLost) {
		t.Fatalf("dropped reply: got %v", err)
	}
	if executed.Load() != 1 {
		t.Fatal("dropped reply must still execute the handler")
	}

	got, err := f.Call(ctx, Request{From: "cli", To: "srv", Payload: []byte("ok")})
	if err != nil || string(got) != "ok" {
		t.Fatalf("clean call: %q, %v", got, err)
	}
}

// TestMuxPropagatesDeadlineToHandler pins the deadline field in the request
// frame: a handler parked on its context must unwind when the CALLER's
// deadline expires, even though the handler runs on the server with no
// native link to the caller's context. Without propagation the handler
// would park until the endpoint dies — and anything serialized behind it
// (locks, shutdown drains) would wedge with it.
func TestMuxPropagatesDeadlineToHandler(t *testing.T) {
	tm := NewTCPMux()
	defer tm.Close()
	unblocked := make(chan struct{})
	tm.Register("srv", func(ctx context.Context, req Request) ([]byte, error) {
		<-ctx.Done()
		close(unblocked)
		return nil, ctx.Err()
	})
	tm.Register("cli", plainEcho)

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := tm.Call(ctx, Request{From: "cli", To: "srv", Service: "s", Method: "m"})
	if err == nil {
		t.Fatal("call against a parked handler succeeded")
	}
	select {
	case <-unblocked:
		// The handler saw the caller's deadline and unwound.
	case <-time.After(5 * time.Second):
		t.Fatal("handler context never expired: caller deadline was not propagated")
	}
}

// TestMuxStopUnblocksParkedHandlers pins the shutdown half of the same
// contract: Unregister (crash, Close) must cancel the endpoint's base
// context so handlers still in flight unwind, instead of the endpoint's
// drain waiting behind them for their full propagated deadline.
func TestMuxStopUnblocksParkedHandlers(t *testing.T) {
	tm := NewTCPMux()
	tm.CallTimeout = time.Minute // far beyond the test's patience
	defer tm.Close()
	parked := make(chan struct{})
	tm.Register("srv", func(ctx context.Context, req Request) ([]byte, error) {
		close(parked)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	tm.Register("cli", plainEcho)

	callErr := make(chan error, 1)
	go func() {
		_, err := tm.Call(context.Background(), Request{From: "cli", To: "srv", Service: "s", Method: "m"})
		callErr <- err
	}()
	<-parked

	done := make(chan struct{})
	go func() {
		tm.Unregister("srv")
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Unregister wedged behind a parked handler")
	}
	if err := <-callErr; err == nil {
		t.Fatal("call against an unregistered endpoint succeeded")
	}
}
