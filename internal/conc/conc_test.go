package conc

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoRunsAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 17} {
		var seen sync.Map
		var count atomic.Int64
		Do(n, func(i int) {
			seen.Store(i, true)
			count.Add(1)
		})
		if got := count.Load(); got != int64(n) {
			t.Fatalf("n=%d: ran %d times", n, got)
		}
		for i := 0; i < n; i++ {
			if _, ok := seen.Load(i); !ok {
				t.Fatalf("n=%d: index %d never ran", n, i)
			}
		}
	}
}

func TestDoLimitedBoundsConcurrency(t *testing.T) {
	const n, limit = 64, 4
	var inFlight, maxSeen atomic.Int64
	DoLimited(n, limit, func(i int) {
		cur := inFlight.Add(1)
		for {
			m := maxSeen.Load()
			if cur <= m || maxSeen.CompareAndSwap(m, cur) {
				break
			}
		}
		inFlight.Add(-1)
	})
	if m := maxSeen.Load(); m > limit {
		t.Fatalf("in-flight peak %d exceeds limit %d", m, limit)
	}
}

func TestDoLimitedUnboundedWhenLimitZero(t *testing.T) {
	var count atomic.Int64
	DoLimited(8, 0, func(int) { count.Add(1) })
	if count.Load() != 8 {
		t.Fatalf("ran %d times, want 8", count.Load())
	}
}
