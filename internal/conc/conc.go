// Package conc holds the minimal fan-out helpers used by the parallel
// invocation/commit pipeline: run n independent pieces of work
// concurrently, wait for all, and let the caller collect results by index
// so the output order stays deterministic regardless of completion order.
package conc

import "sync"

// Do runs fn(0..n-1) concurrently and waits for all to finish. n <= 1
// runs inline, so degenerate fan-outs pay no goroutine cost.
func Do(n int, fn func(i int)) {
	if n <= 1 {
		if n == 1 {
			fn(0)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
}

// DoErr runs fn(0..n-1) concurrently, waits for all, and returns the
// per-index errors — the common "fan out, collect failures in input
// order" shape of the commit pipeline.
func DoErr(n int, fn func(i int) error) []error {
	errs := make([]error, n)
	Do(n, func(i int) { errs[i] = fn(i) })
	return errs
}

// DoLimited is Do with at most limit invocations in flight at once (a
// bounded errgroup-style fan-out). limit <= 0 means unbounded.
func DoLimited(n, limit int, fn func(i int)) {
	if limit <= 0 || limit >= n {
		Do(n, fn)
		return
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			fn(i)
		}(i)
	}
	wg.Wait()
}
