package core

import (
	"context"
	"testing"
	"time"

	"repro/internal/replica"
	"repro/internal/transport"
)

// TestAdjustModeIncrementsRunConcurrently: use-count adjustments from
// different actions share the Adjust lock — the second Increment is
// granted while the first action still holds on — and an abort undoes
// exactly its own deltas, leaving the concurrent action's committed
// counts intact.
func TestAdjustModeIncrementsRunConcurrently(t *testing.T) {
	w := newWorld(t, 1, 1, 2)
	ctx := context.Background()
	c1 := Client{RPC: w.cluster.Node("c1").Client(), DB: "db"}
	c2 := Client{RPC: w.cluster.Node("c2").Client(), DB: "db"}
	hosts := []transport.Addr{"sv1"}

	// Neither action ends before the other adjusts: with the old exclusive
	// discipline the second Increment would deadlock here (the test would
	// time out); under Adjust locks both are granted immediately.
	if err := c1.Increment(ctx, "actA", w.id, "c1", hosts); err != nil {
		t.Fatal(err)
	}
	if err := c2.Increment(ctx, "actB", w.id, "c2", hosts); err != nil {
		t.Fatal(err)
	}
	// Both pending adjusters keep the object non-quiescent for Insert: its
	// write lock conflicts with Adjust, so the attempt parks until the
	// short deadline expires.
	insCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	if err := c1.Insert(insCtx, "ins", w.id, "sv9"); err == nil {
		cancel()
		t.Fatal("Insert succeeded alongside pending adjusters")
	}
	cancel()

	// actA aborts: its +1 for c1 is rolled back by the inverse delta.
	// actB commits: its +1 for c2 stays.
	if err := c1.EndAction(ctx, "actA", false); err != nil {
		t.Fatal(err)
	}
	if err := c2.EndAction(ctx, "actB", true); err != nil {
		t.Fatal(err)
	}
	_, use, err := c1.GetServer(ctx, "check", w.id, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if n := use["sv1"]["c1"]; n != 0 {
		t.Fatalf("aborted increment left use count %d for c1", n)
	}
	if n := use["sv1"]["c2"]; n != 1 {
		t.Fatalf("committed increment lost: use count %d for c2, want 1", n)
	}
	if err := c1.EndAction(ctx, "check", true); err != nil {
		t.Fatal(err)
	}

	// Drain c2's count; the object is quiescent again and Insert succeeds.
	if err := c2.Decrement(ctx, "drain", w.id, "c2", hosts); err != nil {
		t.Fatal(err)
	}
	if err := c2.EndAction(ctx, "drain", true); err != nil {
		t.Fatal(err)
	}
	if !w.db.Quiescent(w.id) {
		t.Fatal("object should be quiescent after the drain")
	}
	if err := c1.Insert(ctx, "ins2", w.id, "sv9"); err != nil {
		t.Fatal(err)
	}
	if err := c1.EndAction(ctx, "ins2", true); err != nil {
		t.Fatal(err)
	}
}

// TestFastBindCommitsAndDrainsUseCounts: the FastBind binder runs the
// whole bind-invoke-commit cycle correctly and its Adjust-mode use counts
// drain to quiescence at the end of the action.
func TestFastBindCommitsAndDrainsUseCounts(t *testing.T) {
	w := newWorld(t, 1, 1, 1)
	b := w.binder("c1", SchemeIndependent, replica.SingleCopyPassive, 1)
	b.FastBind = true
	for i := 1; i <= 3; i++ {
		if _, err := w.runAction(b, 1); err != nil {
			t.Fatalf("action %d: %v", i, err)
		}
	}
	if got, _ := w.storeValue("st1"); got != "3" {
		t.Fatalf("counter = %q, want 3", got)
	}
	if !w.db.Quiescent(w.id) {
		t.Fatal("use counts did not drain to zero")
	}
}

// TestFastBindFallsBackToExclusivePassOnBrokenServer: when activation
// finds a dead server, the fast bind aborts its shared-lock pass and
// reruns the exclusive Figure 7 bind, whose Remove repairs Sv.
func TestFastBindFallsBackToExclusivePassOnBrokenServer(t *testing.T) {
	w := newWorld(t, 2, 1, 1)
	w.cluster.Node("sv1").Crash()
	b := w.binder("c1", SchemeIndependent, replica.Active, 0)
	b.FastBind = true
	if _, err := w.runAction(b, 5); err != nil {
		t.Fatalf("action with crashed sv1: %v", err)
	}
	if got, _ := w.storeValue("st1"); got != "5" {
		t.Fatalf("counter = %q, want 5", got)
	}
	ctx := context.Background()
	cli := Client{RPC: w.cluster.Node("c1").Client(), DB: "db"}
	sv, _, err := cli.GetServer(ctx, "check", w.id, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.EndAction(ctx, "check", true); err != nil {
		t.Fatal(err)
	}
	for _, h := range sv {
		if h == "sv1" {
			t.Fatalf("Sv still lists crashed sv1 after fallback bind: %v", sv)
		}
	}
	if len(sv) != 1 || sv[0] != "sv2" {
		t.Fatalf("Sv = %v, want [sv2]", sv)
	}
	if !w.db.Quiescent(w.id) {
		t.Fatal("use counts did not drain to zero")
	}
}

// TestAdjustAbortAtZeroClampExact: a decrement that clamps at zero must
// not over-restore on abort (the inverse applies what actually happened,
// not what was asked).
func TestAdjustAbortAtZeroClampExact(t *testing.T) {
	w := newWorld(t, 1, 1, 1)
	ctx := context.Background()
	cli := Client{RPC: w.cluster.Node("c1").Client(), DB: "db"}
	hosts := []transport.Addr{"sv1"}

	// Decrement at zero (clamped no-op), then increment, all in one action.
	if err := cli.Decrement(ctx, "act", w.id, "c1", hosts); err != nil {
		t.Fatal(err)
	}
	if err := cli.Increment(ctx, "act", w.id, "c1", hosts); err != nil {
		t.Fatal(err)
	}
	// Abort: the net effective delta is +1, so the rollback must land on
	// exactly zero — not at -1's clamped ghost or a stale +1.
	if err := cli.EndAction(ctx, "act", false); err != nil {
		t.Fatal(err)
	}
	if !w.db.Quiescent(w.id) {
		t.Fatal("abort did not restore use counts to zero")
	}
}
