package core

import (
	"context"
	"testing"

	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/uid"
)

func TestNameServerLocalOps(t *testing.T) {
	c := sim.NewCluster(transport.MemOptions{})
	ns := NewNameServer(c.Add("ns"))
	id := uid.UID{Origin: "x", Epoch: 1, Seq: 1}
	if got := ns.Get(id); len(got) != 0 {
		t.Fatalf("empty entry = %v", got)
	}
	ns.Set(id, []transport.Addr{"a", "b"})
	ns.Insert(id, "c")
	ns.Insert(id, "c") // idempotent
	if got := ns.Get(id); len(got) != 3 {
		t.Fatalf("after inserts = %v", got)
	}
	ns.Remove(id, "b")
	got := ns.Get(id)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("after remove = %v", got)
	}
	// Returned slice is a copy.
	got[0] = "mutated"
	if ns.Get(id)[0] != "a" {
		t.Fatal("Get aliases internal slice")
	}
}

func TestNameServerRPC(t *testing.T) {
	c := sim.NewCluster(transport.MemOptions{})
	NewNameServer(c.Add("ns"))
	c.Add("client")
	cli := NSClient{RPC: c.Node("client").Client(), Node: "ns"}
	ctx := context.Background()
	id := uid.UID{Origin: "x", Epoch: 1, Seq: 2}
	if err := cli.Set(ctx, id, []transport.Addr{"a"}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Insert(ctx, id, "b"); err != nil {
		t.Fatal(err)
	}
	if err := cli.Remove(ctx, id, "a"); err != nil {
		t.Fatal(err)
	}
	got, err := cli.Get(ctx, id)
	if err != nil || len(got) != 1 || got[0] != "b" {
		t.Fatalf("get = %v (%v)", got, err)
	}
}

func TestBinderNonAtomicSvBindsAndRepairs(t *testing.T) {
	w := newWorld(t, 2, 2, 1)
	ctx := context.Background()
	ns := NewNameServer(w.cluster.Node("db"))
	ns.Set(w.id, w.svs)
	b := w.binder("c1", SchemeStandard, replica.SingleCopyPassive, 1)
	b.NameServer = &NSClient{RPC: w.cluster.Node("c1").Client(), Node: "db"}

	// Normal action works through the non-atomic Sv path.
	if _, err := w.runAction(b, 1); err != nil {
		t.Fatal(err)
	}
	// A crash: the binder repairs the name server immediately.
	w.cluster.Node("sv1").Crash()
	if _, err := w.runAction(b, 1); err != nil {
		t.Fatal(err)
	}
	if got := ns.Get(w.id); len(got) != 1 || got[0] != "sv2" {
		t.Fatalf("name server after repair = %v", got)
	}
	// Empty name server entry fails cleanly.
	ns.Set(w.id, nil)
	act := b.Actions.BeginTop()
	if _, err := b.Bind(ctx, act, w.id); err == nil {
		t.Fatal("bind with empty Sv should fail")
	}
	_ = act.Abort(ctx)
}

func TestReadOnlyStandardSchemeBindsOneServer(t *testing.T) {
	w := newWorld(t, 3, 1, 1)
	ctx := context.Background()
	b := w.binder("c1", SchemeStandard, replica.SingleCopyPassive, 1)
	b.ReadOnly = true
	act := b.Actions.BeginTop()
	bd, err := b.Bind(ctx, act, w.id)
	if err != nil {
		t.Fatal(err)
	}
	if got := bd.Servers(); len(got) != 1 {
		t.Fatalf("read-only bound %v", got)
	}
	if _, err := bd.Invoke(ctx, "get", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := act.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRefusedWhileUseCountsHeld(t *testing.T) {
	// §4.1.3 quiescence via use lists: a client of an enhanced scheme is
	// mid-action (its locks are released but its counters are not); a
	// recovering server's Insert is refused until the Decrement runs.
	w := newWorld(t, 2, 1, 2)
	ctx := context.Background()
	b := w.binder("c1", SchemeIndependent, replica.SingleCopyPassive, 1)
	act := b.Actions.BeginTop()
	bd, err := b.Bind(ctx, act, w.id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bd.Invoke(ctx, "add", []byte("1")); err != nil {
		t.Fatal(err)
	}
	cli := Client{RPC: w.cluster.Node("c2").Client(), DB: "db"}
	err = cli.Insert(ctx, "ins", w.id, "sv2")
	_ = cli.EndAction(ctx, "ins", false)
	if got := errCode(err); got != CodeNotQuiescent {
		t.Fatalf("Insert mid-use err = %v (code %q), want not-quiescent", err, got)
	}
	// After the action (and its Decrement) the Insert goes through.
	if _, err := act.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	if err := cli.Insert(ctx, "ins2", w.id, "sv2"); err != nil {
		t.Fatalf("Insert after decrement: %v", err)
	}
	_ = cli.EndAction(ctx, "ins2", true)
}

func TestRemoveTryOnlyPaths(t *testing.T) {
	w := newWorld(t, 2, 1, 2)
	ctx := context.Background()
	cli := Client{RPC: w.cluster.Node("c1").Client(), DB: "db"}
	// tryOnly promotion from a held read lock succeeds when alone.
	if _, _, err := cli.GetServer(ctx, "a1", w.id, false, false); err != nil {
		t.Fatal(err)
	}
	if err := cli.Remove(ctx, "a1", w.id, "sv2", true); err != nil {
		t.Fatalf("solo tryOnly remove: %v", err)
	}
	if err := cli.EndAction(ctx, "a1", false); err != nil { // roll back
		t.Fatal(err)
	}
	// With another reader present the tryOnly promotion is refused.
	cli2 := Client{RPC: w.cluster.Node("c2").Client(), DB: "db"}
	if _, _, err := cli2.GetServer(ctx, "other", w.id, false, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cli.GetServer(ctx, "a2", w.id, false, false); err != nil {
		t.Fatal(err)
	}
	err := cli.Remove(ctx, "a2", w.id, "sv2", true)
	if got := errCode(err); got != CodeLockRefused {
		t.Fatalf("contended tryOnly remove err = %v (code %q)", err, got)
	}
	_ = cli.EndAction(ctx, "a2", false)
	_ = cli2.EndAction(ctx, "other", false)
	// Entry unchanged by the rolled-back remove.
	sv, _, err := cli.GetServer(ctx, "peek", w.id, false, false)
	if err != nil || len(sv) != 2 {
		t.Fatalf("sv = %v (%v)", sv, err)
	}
	_ = cli.EndAction(ctx, "peek", true)
}

func errCode(err error) string { return rpc.CodeOf(err) }
